# Tier-1 verification gate. `make check` is what CI and pre-merge runs:
# vet + build + the full test suite under the race detector, so the
# experiment harness's concurrency (internal/par, internal/exp, the
# parallel sweep drivers) is race-checked on every change.

GO ?= go

.PHONY: check vet build test race bench paperbench clean

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Quick end-to-end smoke: one figure, parallel, with artifacts.
paperbench:
	$(GO) run ./cmd/paperbench -radix 12 -exp fig5 -jobs 0 -out /tmp/ibcc-artifacts

clean:
	$(GO) clean ./...
