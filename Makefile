# Tier-1 verification gate. `make check` is what CI and pre-merge runs:
# formatting + vet + build + the full test suite under the race
# detector, so the experiment harness's concurrency (internal/par,
# internal/exp, the parallel sweep drivers) is race-checked on every
# change.

GO ?= go
GOFMT ?= gofmt

.PHONY: check fmt-check vet build test race bench bench-obs paperbench clean

check: fmt-check vet build race

fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Flight-recorder overhead: the disabled-bus benchmark must report
# 0 allocs/op, proving observability costs nothing when off.
bench-obs:
	$(GO) test ./internal/obs -bench=Bus -benchmem

# Quick end-to-end smoke: one figure, parallel, with artifacts.
paperbench:
	$(GO) run ./cmd/paperbench -radix 12 -exp fig5 -jobs 0 -out /tmp/ibcc-artifacts

clean:
	$(GO) clean ./...
