# Tier-1 verification gate. `make check` is what CI and pre-merge runs:
# formatting + vet + build (release and `-tags debug` ownership-checked
# variants) + the full test suite under the race detector, so the
# experiment harness's concurrency (internal/par, internal/exp, the
# parallel sweep drivers) is race-checked on every change.

GO ?= go
GOFMT ?= gofmt

.PHONY: check fmt-check vet build build-debug test race invariants degradation tournament telemetry resilience bench bench-obs bench-kernel bench-kernel-gate paperbench clean

check: fmt-check vet build build-debug race

fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# The debug build enables the packet-pool ownership checker (double
# release panics, poisoned freed packets); its tests exercise the
# checker itself.
build-debug:
	$(GO) build -tags debug ./...
	$(GO) test -tags debug ./internal/ib ./internal/fabric ./internal/cc

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Runtime invariant + differential kernel suite: the internal/check unit
# tests, the Table II wheel-vs-reference-heap trajectory comparison (run
# with -count=1 so the differential corpus always executes), and an
# end-to-end checked run through the paperbench CLI.
invariants:
	$(GO) test -count=1 ./internal/check
	$(GO) test -count=1 ./internal/core -run 'Kernel|Check|Differential'
	$(GO) run ./cmd/paperbench -radix 8 -diff-kernel -seeds 2

# Fault-injection smoke: the fault-layer unit suites, then a tiny
# graceful-degradation sweep (2 seeds, zero + nonzero intensity) through
# the paperbench CLI under the invariant checker — end to end over the
# Dropped custody ledger.
degradation:
	$(GO) test -count=1 ./internal/fault ./internal/fabric -run 'Fault|Drop|Link'
	$(GO) test -count=1 ./internal/core -run 'Fault|ZeroIntensity|CCSurvives|Degradation'
	$(GO) run ./cmd/paperbench -radix 8 -degradation /tmp/ibcc-degradation.json \
		-intensities 0,0.6 -seeds 2 -check

# Backend tournament smoke: the tournament unit suite, then a reduced
# bracket (radix 8, 2 seeds, 2 backends, one fault intensity) through
# the paperbench CLI under the invariant checker, rendered back from
# the JSON artifact with cctinspect.
tournament:
	$(GO) test -count=1 ./internal/tournament
	$(GO) test -count=1 ./internal/cc -run 'Backend|RCM|Registry|NoCC|Oracle'
	$(GO) run ./cmd/paperbench -radix 8 -tournament /tmp/ibcc-tournament.json \
		-cc ibcc,nocc -intensities 0.6 -seeds 2 -check
	$(GO) run ./cmd/cctinspect -tournament /tmp/ibcc-tournament.json

# Telemetry smoke: the telemetry unit suite (histogram quantile bounds,
# sampler zero-perturbation, span tracker, report schema, HTTP server),
# the obs-layer digest-stability guards, then end to end: a short sweep
# with the live dashboard on an ephemeral port, /metrics.json probed
# mid-sweep and after it, the unified run report written and finally
# validated + rendered back with cctinspect.
telemetry:
	$(GO) test -count=1 ./internal/telemetry
	$(GO) test -count=1 ./internal/obs -run 'Digest|Telemetry|MsgCompleted'
	$(GO) test -count=1 ./internal/core -run 'Telemetry'
	$(GO) run ./cmd/paperbench -radix 8 -degradation /tmp/ibcc-telemetry-deg.json \
		-intensities 0,0.6 -seeds 1 -serve 127.0.0.1:0 -serve-probe \
		-report /tmp/ibcc-telemetry-report.json
	$(GO) run ./cmd/cctinspect -report /tmp/ibcc-telemetry-report.json

# Crash-safety smoke: the checkpoint format + differential restore
# suites (byte-identical continuation), the executor's retry / watchdog
# / quarantine / manifest suite (including the always-panicking job that
# must end up quarantined while the sweep completes), then the CLI story
# end to end via scripts/resilience_smoke.sh: SIGKILL an in-flight
# checkpointing run and a sweep, resume both, require identical output
# and an identical artifact set.
resilience:
	$(GO) test -count=1 ./internal/ckpt ./internal/fault -run 'Decode|Encode|SaveAtomic|Validate|Keeper|Latest|Cadence|InjectorState'
	$(GO) test -count=1 ./internal/core -run 'Checkpoint'
	$(GO) test -count=1 ./internal/exp -run 'Retries|Retry|Timeout|Quarantine|Corrupt|CRC|Manifest'
	sh scripts/resilience_smoke.sh

bench:
	$(GO) test -bench=. -benchmem

# Flight-recorder overhead: the disabled-bus benchmark must report
# 0 allocs/op, proving observability costs nothing when off.
bench-obs:
	$(GO) test ./internal/obs -bench=Bus -benchmem

# Event kernel + packet lifecycle: the timing-wheel and pooled-packet
# hot paths, written machine-readably (events/s, allocs, speedup over
# the pinned pre-wheel baseline) to BENCH_kernel.json.
bench-kernel:
	$(GO) test ./internal/sim -run '^$$' -bench 'BenchmarkKernel' -benchmem
	$(GO) test ./internal/core -run '^$$' -bench BenchmarkPacketLifecycle -benchmem
	$(GO) run ./cmd/paperbench -bench-kernel BENCH_kernel.json

# Kernel performance regression gate: the in-tree best-of-N guard test
# against the committed BENCH_kernel.json, then a fresh paperbench
# measurement (reduced budget, best of 3) compared against the same
# committed baseline — either fails on a >10% steady-state regression.
bench-kernel-gate:
	$(GO) test -count=1 -timeout 20m ./internal/core -run TestKernelBenchGuard
	$(GO) run ./cmd/paperbench -bench-kernel /tmp/ibcc-bench-gate.json \
		-bench-events 8000000 -bench-baseline BENCH_kernel.json

# Quick end-to-end smoke: one figure, parallel, with artifacts.
paperbench:
	$(GO) run ./cmd/paperbench -radix 12 -exp fig5 -jobs 0 -out /tmp/ibcc-artifacts

clean:
	$(GO) clean ./...
