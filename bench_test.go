package ibcc

// One benchmark per table and figure of the paper's evaluation section,
// plus ablations over the model's design choices. Each benchmark runs
// the experiment at a reduced radix (the full sweeps at larger scale are
// produced by cmd/paperbench); the quantities the paper plots are
// attached as custom benchmark metrics, so a -bench run regenerates the
// headline numbers of every artifact:
//
//	x-total-gain     total-throughput improvement factor from CC
//	Gbps-*           receive rates of the plotted node classes
//	x-gain-long/short  moving-forest gain at long/short hotspot lifetime
//
// Shapes to expect (section V): CC never loses except at the windy
// extremes p=0/100 where it is neutral; the improvement factor is
// ∩-shaped in p with the peak near p=60; moving-forest gains shrink as
// the hotspot lifetime shrinks.

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// benchScenario is the reduced-scale base: a 72-node radix-12 fat-tree
// with windows past the CC convergence transient.
func benchScenario() Scenario {
	s := DefaultScenario(12)
	s.Warmup = 2 * Millisecond
	s.Measure = 4 * Millisecond
	return s
}

// BenchmarkTableII regenerates Table II (silent forest, 80% C / 20% V).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := RunTableII(benchScenario())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tab.TotalCC/tab.TotalNoCC, "x-total-gain")
		b.ReportMetric(tab.HotspotsCC.Hot, "Gbps-hot-cc")
		b.ReportMetric(tab.HotspotsCC.NonHot, "Gbps-nonhot-cc")
		b.ReportMetric(tab.HotspotsNoCC.NonHot, "Gbps-nonhot-nocc")
	}
}

// windyFigure runs the reduced sweep of one of figures 5–8 and reports
// the peak-region numbers.
func windyFigure(b *testing.B, fracB int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		pts, err := RunWindySweep(benchScenario(), fracB, []int{0, 60, 100})
		if err != nil {
			b.Fatal(err)
		}
		p0, p60, p100 := pts[0], pts[1], pts[2]
		b.ReportMetric(p60.Improvement, "x-gain-p60")
		b.ReportMetric(p0.Improvement, "x-gain-p0")
		b.ReportMetric(p100.Improvement, "x-gain-p100")
		b.ReportMetric(p60.NonHotOn, "Gbps-nonhot-cc-p60")
		b.ReportMetric(p60.NonHotOn/p60.TMax*100, "pct-of-tmax-p60")
		b.ReportMetric(p60.HotOn, "Gbps-hot-cc-p60")
	}
}

// BenchmarkFig5 regenerates figure 5 (windy forest, 25% B nodes).
func BenchmarkFig5(b *testing.B) { windyFigure(b, 25) }

// BenchmarkFig6 regenerates figure 6 (windy forest, 50% B nodes).
func BenchmarkFig6(b *testing.B) { windyFigure(b, 50) }

// BenchmarkFig7 regenerates figure 7 (windy forest, 75% B nodes).
func BenchmarkFig7(b *testing.B) { windyFigure(b, 75) }

// BenchmarkFig8 regenerates figure 8 (windy forest, 100% B nodes).
func BenchmarkFig8(b *testing.B) { windyFigure(b, 100) }

// movingFigure runs a reduced lifetime sweep and reports the gain at the
// longest and shortest lifetimes (the figure's left and right edges).
func movingFigure(b *testing.B, mutate func(*Scenario)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := benchScenario()
		s.Measure = 6 * Millisecond
		mutate(&s)
		pts, err := RunMovingSweep(s, []Duration{
			2 * Millisecond, 500 * Microsecond, 125 * Microsecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		long, short := pts[0], pts[len(pts)-1]
		b.ReportMetric(long.AllOn/long.AllOff, "x-gain-long")
		b.ReportMetric(short.AllOn/short.AllOff, "x-gain-short")
		b.ReportMetric(long.AllOn, "Gbps-all-cc-long")
		b.ReportMetric(short.AllOff, "Gbps-all-nocc-short")
	}
}

// BenchmarkFig9a regenerates figure 9(a): moving silent trees with
// 20% V / 80% C nodes.
func BenchmarkFig9a(b *testing.B) {
	movingFigure(b, func(s *Scenario) { s.FracCOfRestPct = 80 })
}

// BenchmarkFig9b regenerates figure 9(b): moving silent trees with
// 60% V / 40% C nodes.
func BenchmarkFig9b(b *testing.B) {
	movingFigure(b, func(s *Scenario) { s.FracCOfRestPct = 40 })
}

// BenchmarkFig10p30 regenerates figure 10(a): moving windy trees,
// 100% B nodes with p=30.
func BenchmarkFig10p30(b *testing.B) {
	movingFigure(b, func(s *Scenario) { s.FracBPct, s.PPercent = 100, 30 })
}

// BenchmarkFig10p60 regenerates figure 10(b): p=60.
func BenchmarkFig10p60(b *testing.B) {
	movingFigure(b, func(s *Scenario) { s.FracBPct, s.PPercent = 100, 60 })
}

// BenchmarkFig10p90 regenerates figure 10(c): p=90.
func BenchmarkFig10p90(b *testing.B) {
	movingFigure(b, func(s *Scenario) { s.FracBPct, s.PPercent = 100, 90 })
}

// BenchmarkAblationDepartureMarking compares the model's arrival-sampled
// congestion state against the literal departure-sampled reading of the
// spec on the Table II scenario: departure sampling keeps marking a
// draining backlog and overshoots the CCTI, starving the hotspots
// (DESIGN.md discusses this design choice).
func BenchmarkAblationDepartureMarking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScenario()
		// The overshoot mechanism needs the full Table I CCT and deep
		// switch buffers (long backlog drains): the reduced radix's
		// scaled table and the default shallow buffers both bound the
		// damage and would mask the difference.
		s.CC.CCTILimit = 127
		s.Fabric.SwitchIbufBytes = 64 << 10
		s.CC.MarkOnDeparture = true
		dep, err := Run(s)
		if err != nil {
			b.Fatal(err)
		}
		s.CC.MarkOnDeparture = false
		arr, err := Run(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(dep.Summary.HotspotAvgGbps, "Gbps-hot-departure")
		b.ReportMetric(arr.Summary.HotspotAvgGbps, "Gbps-hot-arrival")
		b.ReportMetric(float64(dep.CCStats.MaxCCTI), "maxccti-departure")
		b.ReportMetric(float64(arr.CCStats.MaxCCTI), "maxccti-arrival")
	}
}

// BenchmarkAblationVictimMask disables the Victim Mask on HCA-facing
// switch ports: the sink-limited hotspot ports then count as victims and
// never mark, so endpoint congestion goes undetected and the victims
// stay collapsed.
func BenchmarkAblationVictimMask(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScenario()
		s.CC.VictimMaskHostPorts = false
		off, err := Run(s)
		if err != nil {
			b.Fatal(err)
		}
		s.CC.VictimMaskHostPorts = true
		on, err := Run(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(off.Summary.NonHotspotAvgGbps, "Gbps-nonhot-nomask")
		b.ReportMetric(on.Summary.NonHotspotAvgGbps, "Gbps-nonhot-mask")
		b.ReportMetric(float64(off.CCStats.FECNMarked), "marks-nomask")
	}
}

// BenchmarkAblationThresholdWeight compares the paper's aggressive
// threshold weight 15 against the most tolerant weight 1, which detects
// congestion only after deep queues have formed.
func BenchmarkAblationThresholdWeight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScenario()
		s.CC.Threshold = 1
		w1, err := Run(s)
		if err != nil {
			b.Fatal(err)
		}
		s.CC.Threshold = 15
		w15, err := Run(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(w1.Summary.NonHotspotAvgGbps, "Gbps-nonhot-w1")
		b.ReportMetric(w15.Summary.NonHotspotAvgGbps, "Gbps-nonhot-w15")
	}
}

// BenchmarkAblationBECNOnACK compares the two notification paths the
// spec offers: explicit CNPs per FECN (the study's default) against
// BECNs piggybacked on per-message acknowledgements, which coalesce the
// feedback but add a constant reverse ACK stream.
func BenchmarkAblationBECNOnACK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScenario()
		s.CC.BECNOnACK = true
		ack, err := Run(s)
		if err != nil {
			b.Fatal(err)
		}
		s.CC.BECNOnACK = false
		cnp, err := Run(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ack.Summary.NonHotspotAvgGbps, "Gbps-nonhot-ack")
		b.ReportMetric(cnp.Summary.NonHotspotAvgGbps, "Gbps-nonhot-cnp")
		b.ReportMetric(ack.Summary.TotalGbps, "Gbps-total-ack")
		b.ReportMetric(cnp.Summary.TotalGbps, "Gbps-total-cnp")
	}
}

// BenchmarkAblationSLLevelCC compares CC at the QP level (the paper's
// choice) against the SL level on a windy forest: at the SL level a
// node's hotspot flow drags its uniform traffic down with it, costing
// the non-hotspots throughput — the degradation §II of the paper
// predicts.
func BenchmarkAblationSLLevelCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScenario()
		s.FracBPct, s.PPercent = 100, 60
		s.CC.SLLevel = true
		sl, err := Run(s)
		if err != nil {
			b.Fatal(err)
		}
		s.CC.SLLevel = false
		qp, err := Run(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sl.Summary.NonHotspotAvgGbps, "Gbps-nonhot-sl")
		b.ReportMetric(qp.Summary.NonHotspotAvgGbps, "Gbps-nonhot-qp")
		b.ReportMetric(sl.Summary.TotalGbps, "Gbps-total-sl")
		b.ReportMetric(qp.Summary.TotalGbps, "Gbps-total-qp")
	}
}

// BenchmarkAblationVLSeparation compares throttling-based CC against the
// set-aside-lane alternative the paper's introduction discusses: giving
// hotspot traffic its own VL protects the victims without any
// throttling, but leaves the congestion tree itself standing (and costs
// a second lane's buffers). Combining both is also measured.
func BenchmarkAblationVLSeparation(b *testing.B) {
	run := func(ccOn, sep bool) *Result {
		s := benchScenario()
		s.CCOn = ccOn
		s.SeparateHotspotVL = sep
		r, err := Run(s)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	for i := 0; i < b.N; i++ {
		plain := run(false, false)
		sep := run(false, true)
		cc := run(true, false)
		both := run(true, true)
		b.ReportMetric(plain.Summary.NonHotspotAvgGbps, "Gbps-nonhot-none")
		b.ReportMetric(sep.Summary.NonHotspotAvgGbps, "Gbps-nonhot-saq")
		b.ReportMetric(cc.Summary.NonHotspotAvgGbps, "Gbps-nonhot-cc")
		b.ReportMetric(both.Summary.NonHotspotAvgGbps, "Gbps-nonhot-both")
		b.ReportMetric(sep.Summary.HotspotAvgGbps, "Gbps-hot-saq")
	}
}

// BenchmarkAblationRecoveryTimer compares the paper's CCTI timer of 150
// against a 4x slower recovery, which leaves flows throttled long after
// congestion has cleared.
func BenchmarkAblationRecoveryTimer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScenario()
		s.CC.CCTITimer = 600
		slow, err := Run(s)
		if err != nil {
			b.Fatal(err)
		}
		s.CC.CCTITimer = 150
		paper, err := Run(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(slow.Summary.TotalGbps, "Gbps-total-timer600")
		b.ReportMetric(paper.Summary.TotalGbps, "Gbps-total-timer150")
	}
}

// BenchmarkDegradedFatTree measures the re-routing congestion scenario
// of the paper's introduction: a fat-tree with failed spines carrying
// uniform traffic. There are no victim flows, so the paper's CC
// parameters cost throughput relative to plain backpressure — the
// adverse-effect case documented in EXPERIMENTS.md.
func BenchmarkDegradedFatTree(b *testing.B) {
	run := func(ccOn bool, dead ...int) float64 {
		tp, err := topo.FatTreeDegraded(12, topo.DeadSpines(dead...))
		if err != nil {
			b.Fatal(err)
		}
		lft, err := topo.ComputeLFT(tp)
		if err != nil {
			b.Fatal(err)
		}
		cfg := fabric.DefaultConfig()
		simr := sim.New()
		net, err := fabric.New(simr, tp, lft, cfg, fabric.Hooks{})
		if err != nil {
			b.Fatal(err)
		}
		var throttle traffic.Throttle
		if ccOn {
			params := cc.PaperParams()
			params.CCTILimit = 15
			mgr, err := cc.New(net, params)
			if err != nil {
				b.Fatal(err)
			}
			net.SetHooks(mgr.Hooks())
			throttle = mgr
		}
		rng := sim.NewRNG(1)
		for s := 0; s < tp.NumHosts; s++ {
			gen, err := traffic.NewGenerator(traffic.NodeConfig{
				LID: ib.LID(s), NumNodes: tp.NumHosts, PPercent: 0,
				InjectionRate: cfg.InjectionRate, Throttle: throttle,
				RNG: rng.Derive(uint64(s)),
			})
			if err != nil {
				b.Fatal(err)
			}
			net.HCA(ib.LID(s)).SetSource(gen)
		}
		net.Start()
		window := 3 * sim.Millisecond
		simr.RunUntil(sim.Time(0).Add(window))
		var rx uint64
		for s := 0; s < tp.NumHosts; s++ {
			rx += net.HCA(ib.LID(s)).Counters().RxDataPayload
		}
		return float64(rx) * 8 / window.Seconds() / 1e9
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false), "Gbps-intact-nocc")
		b.ReportMetric(run(false, 0, 1, 2, 3), "Gbps-degraded-nocc")
		b.ReportMetric(run(true, 0, 1, 2, 3), "Gbps-degraded-cc")
	}
}

// BenchmarkEngine measures raw simulation speed on the Table II hotspot
// scenario (events per wall-clock second).
func BenchmarkEngine(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(benchScenario())
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}
