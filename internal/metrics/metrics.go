// Package metrics measures the quantities the paper reports: per-node
// receive and transmit rates over a measurement window that excludes
// warmup, aggregated over node classes (hotspots vs non-hotspots), and
// total network throughput.
package metrics

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/sim"
)

// Collector snapshots every host's counters at the start of the
// measurement window and computes rates at its end.
type Collector struct {
	net   *fabric.Network
	start sim.Time
	base  []fabric.HCACounters
}

// NewCollector arms a snapshot of all host counters at startAt on the
// network's simulator. Rates are later computed relative to it.
func NewCollector(net *fabric.Network, startAt sim.Time) *Collector {
	c := &Collector{net: net, start: startAt}
	net.Sim().ScheduleActionAt(startAt, &snapAct{c: c})
	return c
}

// snapAct is the warmup-snapshot event, a named action so a pending one
// can be serialized into a checkpoint and rebuilt on restore.
type snapAct struct{ c *Collector }

func (a *snapAct) Act() {
	c := a.c
	c.base = make([]fabric.HCACounters, c.net.NumHosts())
	for i := range c.base {
		c.base[i] = c.net.HCA(ib.LID(i)).Counters()
	}
}

// NodeRates are per-node rates in bits per second over the measurement
// window, indexed by LID.
type NodeRates struct {
	// Window is the measurement span the rates cover.
	Window sim.Duration
	// RxPayload is the delivered application-payload rate.
	RxPayload []float64
	// RxWire is the delivered wire rate (payload + headers + CNPs).
	RxWire []float64
	// TxPayload is the injected application-payload rate.
	TxPayload []float64
}

// Rates computes per-node rates from the warmup snapshot to the current
// simulation time. It panics if called before the snapshot fired or
// within a zero-length window.
func (c *Collector) Rates() NodeRates {
	now := c.net.Sim().Now()
	if c.base == nil {
		panic("metrics: rates requested before the warmup snapshot")
	}
	window := now.Sub(c.start)
	if window <= 0 {
		panic("metrics: empty measurement window")
	}
	n := c.net.NumHosts()
	r := NodeRates{
		Window:    window,
		RxPayload: make([]float64, n),
		RxWire:    make([]float64, n),
		TxPayload: make([]float64, n),
	}
	secs := window.Seconds()
	for i := 0; i < n; i++ {
		cur := c.net.HCA(ib.LID(i)).Counters()
		base := c.base[i]
		r.RxPayload[i] = float64(cur.RxDataPayload-base.RxDataPayload) * 8 / secs
		r.RxWire[i] = float64(cur.RxBytes-base.RxBytes) * 8 / secs
		r.TxPayload[i] = float64(cur.TxDataPayload-base.TxDataPayload) * 8 / secs
	}
	return r
}

// Avg returns the mean of vals over the given LIDs, or over all nodes
// when lids is nil.
func Avg(vals []float64, lids []ib.LID) float64 {
	if lids == nil {
		return Sum(vals, nil) / float64(len(vals))
	}
	if len(lids) == 0 {
		return 0
	}
	return Sum(vals, lids) / float64(len(lids))
}

// Sum returns the sum of vals over the given LIDs, or over all nodes
// when lids is nil.
func Sum(vals []float64, lids []ib.LID) float64 {
	var s float64
	if lids == nil {
		for _, v := range vals {
			s += v
		}
		return s
	}
	for _, l := range lids {
		s += vals[l]
	}
	return s
}

// Partition splits all LIDs of an n-node network into (members, rest)
// according to the membership set.
func Partition(n int, members map[ib.LID]bool) (in, out []ib.LID) {
	for i := 0; i < n; i++ {
		if members[ib.LID(i)] {
			in = append(in, ib.LID(i))
		} else {
			out = append(out, ib.LID(i))
		}
	}
	return
}

// Gbps converts bits per second to gigabits per second.
func Gbps(bps float64) float64 { return bps / 1e9 }

// Summary condenses a run into the row format of the paper's tables:
// average receive rates of hotspots and non-hotspots and the total
// network throughput, all in Gbit/s of application payload.
type Summary struct {
	HotspotAvgGbps    float64
	NonHotspotAvgGbps float64
	AllAvgGbps        float64
	TotalGbps         float64
}

// Summarize builds a Summary from per-node rates and the hotspot set.
func Summarize(r NodeRates, hotspots map[ib.LID]bool) Summary {
	hot, non := Partition(len(r.RxPayload), hotspots)
	return Summary{
		HotspotAvgGbps:    Gbps(Avg(r.RxPayload, hot)),
		NonHotspotAvgGbps: Gbps(Avg(r.RxPayload, non)),
		AllAvgGbps:        Gbps(Avg(r.RxPayload, nil)),
		TotalGbps:         Gbps(Sum(r.RxPayload, nil)),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("hot=%.3fG non=%.3fG all=%.3fG total=%.1fG",
		s.HotspotAvgGbps, s.NonHotspotAvgGbps, s.AllAvgGbps, s.TotalGbps)
}

// LatencySummary condenses the network-wide packet-latency distribution
// over the measurement window.
type LatencySummary struct {
	// Count is the number of delivered data packets measured.
	Count uint64
	// Mean, P50, P99 and Max are in simulated time; the quantiles are
	// log2-bucket upper bounds.
	Mean, P50, P99, Max sim.Duration
}

// Latency aggregates every host's latency histogram over the window
// since the warmup snapshot.
func (c *Collector) Latency() LatencySummary {
	if c.base == nil {
		panic("metrics: latency requested before the warmup snapshot")
	}
	var agg fabric.LatencyHist
	for i := 0; i < c.net.NumHosts(); i++ {
		h := c.net.HCA(ib.LID(i)).Counters().Latency.Sub(c.base[i].Latency)
		agg.Merge(&h)
	}
	return LatencySummary{
		Count: agg.Count,
		Mean:  agg.Mean(),
		P50:   agg.Quantile(0.50),
		P99:   agg.Quantile(0.99),
		Max:   agg.Max(),
	}
}

func (l LatencySummary) String() string {
	return fmt.Sprintf("lat{n=%d mean=%v p50<%v p99<%v max=%v}",
		l.Count, l.Mean, l.P50, l.P99, l.Max)
}

// Percentiles returns the requested percentiles (0–100) of vals, useful
// for fairness inspection in the examples.
func Percentiles(vals []float64, ps ...float64) []float64 {
	if len(vals) == 0 {
		return make([]float64, len(ps))
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 {
			p = 0
		}
		if p > 100 {
			p = 100
		}
		idx := int(p / 100 * float64(len(sorted)-1))
		out[i] = sorted[idx]
	}
	return out
}
