package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/topo"
)

// steadySource injects MTU packets to a fixed destination continuously.
type steadySource struct {
	src, dst ib.LID
	id       uint64
}

func (s *steadySource) Pull(now sim.Time) (*ib.Packet, sim.Time) {
	p := &ib.Packet{ID: s.id, Type: ib.DataPacket, Src: s.src, Dst: s.dst, PayloadBytes: ib.MTU}
	s.id++
	return p, 0
}

func buildPair(t *testing.T) *fabric.Network {
	t.Helper()
	tp, err := topo.SingleSwitch(4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := topo.ComputeLFT(tp)
	if err != nil {
		t.Fatal(err)
	}
	n, err := fabric.New(sim.New(), tp, r, fabric.DefaultConfig(), fabric.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestCollectorExcludesWarmup(t *testing.T) {
	n := buildPair(t)
	n.HCA(0).SetSource(&steadySource{src: 0, dst: 1})
	warmup := sim.Time(1 * sim.Millisecond)
	c := NewCollector(n, warmup)
	n.Start()
	n.Sim().RunUntil(warmup.Add(2 * sim.Millisecond))
	r := c.Rates()
	if r.Window != 2*sim.Millisecond {
		t.Fatalf("window = %v", r.Window)
	}
	// Rate over the window must match the steady injection-limited
	// goodput; if warmup traffic leaked in, it would be ~1.5x higher.
	want := 13.5e9 * float64(ib.MTU) / float64(ib.MTU+ib.HeaderBytes)
	if got := r.RxPayload[1]; math.Abs(got-want)/want > 0.03 {
		t.Fatalf("rx rate = %.4g, want ~%.4g", got, want)
	}
	if r.TxPayload[0] < want*0.97 {
		t.Fatalf("tx rate = %.4g", r.TxPayload[0])
	}
	if r.RxWire[1] <= r.RxPayload[1] {
		t.Fatal("wire rate must exceed payload rate")
	}
	// Idle nodes measure zero.
	if r.RxPayload[3] != 0 || r.TxPayload[3] != 0 {
		t.Fatal("idle node shows traffic")
	}
}

func TestRatesPanicsBeforeSnapshot(t *testing.T) {
	n := buildPair(t)
	c := NewCollector(n, sim.Time(sim.Millisecond))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Rates()
}

func TestRatesPanicsOnEmptyWindow(t *testing.T) {
	n := buildPair(t)
	c := NewCollector(n, sim.Time(sim.Millisecond))
	n.Sim().RunUntil(sim.Time(sim.Millisecond))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Rates()
}

func TestAvgSum(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	if got := Sum(vals, nil); got != 10 {
		t.Fatalf("Sum all = %v", got)
	}
	if got := Avg(vals, nil); got != 2.5 {
		t.Fatalf("Avg all = %v", got)
	}
	lids := []ib.LID{1, 3}
	if got := Sum(vals, lids); got != 6 {
		t.Fatalf("Sum subset = %v", got)
	}
	if got := Avg(vals, lids); got != 3 {
		t.Fatalf("Avg subset = %v", got)
	}
	if got := Avg(vals, []ib.LID{}); got != 0 {
		t.Fatalf("Avg empty = %v", got)
	}
}

func TestPartition(t *testing.T) {
	in, out := Partition(5, map[ib.LID]bool{1: true, 4: true})
	if len(in) != 2 || in[0] != 1 || in[1] != 4 {
		t.Fatalf("in = %v", in)
	}
	if len(out) != 3 || out[0] != 0 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("out = %v", out)
	}
}

func TestGbps(t *testing.T) {
	if Gbps(2.5e9) != 2.5 {
		t.Fatal("Gbps conversion")
	}
}

func TestSummarize(t *testing.T) {
	r := NodeRates{
		Window:    sim.Millisecond,
		RxPayload: []float64{10e9, 1e9, 1e9, 2e9},
	}
	s := Summarize(r, map[ib.LID]bool{0: true})
	if s.HotspotAvgGbps != 10 {
		t.Fatalf("hotspot avg = %v", s.HotspotAvgGbps)
	}
	if math.Abs(s.NonHotspotAvgGbps-4.0/3) > 1e-9 {
		t.Fatalf("non-hotspot avg = %v", s.NonHotspotAvgGbps)
	}
	if s.AllAvgGbps != 3.5 || s.TotalGbps != 14 {
		t.Fatalf("summary = %+v", s)
	}
	str := s.String()
	if !strings.Contains(str, "total=14.0G") {
		t.Fatalf("String = %q", str)
	}
}

func TestCollectorLatency(t *testing.T) {
	n := buildPair(t)
	n.HCA(0).SetSource(&steadySource{src: 0, dst: 1})
	warmup := sim.Time(500 * sim.Microsecond)
	c := NewCollector(n, warmup)
	n.Start()
	n.Sim().RunUntil(warmup.Add(1 * sim.Millisecond))
	lat := c.Latency()
	if lat.Count == 0 {
		t.Fatal("no latency samples")
	}
	// Uncongested single flow: ~1.5us network latency.
	if lat.Mean < sim.Microsecond || lat.Mean > 4*sim.Microsecond {
		t.Fatalf("mean latency = %v", lat.Mean)
	}
	if lat.P50 <= 0 || lat.P99 < lat.P50 || lat.Max < lat.Mean {
		t.Fatalf("quantile ordering broken: %+v", lat)
	}
	// Warmup samples are excluded: the count matches the window's
	// delivered packets, not the whole run's.
	total := n.HCA(1).Counters().Latency.Count
	if lat.Count >= total {
		t.Fatalf("warmup not excluded: %d of %d", lat.Count, total)
	}
	s := lat.String()
	if !strings.Contains(s, "p99") {
		t.Fatalf("String = %q", s)
	}
}

func TestLatencyPanicsBeforeSnapshot(t *testing.T) {
	n := buildPair(t)
	c := NewCollector(n, sim.Time(sim.Millisecond))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Latency()
}

func TestPercentiles(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	got := Percentiles(vals, 0, 50, 100)
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("percentiles = %v", got)
	}
	// Inputs untouched.
	if vals[0] != 5 {
		t.Fatal("input mutated")
	}
	if got := Percentiles(nil, 50); got[0] != 0 {
		t.Fatal("empty input")
	}
	got = Percentiles(vals, -5, 200)
	if got[0] != 1 || got[1] != 5 {
		t.Fatalf("clamped percentiles = %v", got)
	}
}
