package metrics

import (
	"encoding/json"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// kindSnap is the warmup-snapshot event's checkpoint kind (no args).
const kindSnap = "mSnap"

// collState is the collector's mutable state: the warmup counter
// snapshot, or null when the snapshot has not fired yet (in which case
// the pending mSnap event carries the rest).
type collState struct {
	Base []fabric.HCACounters `json:"base,omitempty"`
}

// ExportState returns the collector's mutable state as a package-owned
// JSON blob.
func (c *Collector) ExportState() ([]byte, error) {
	return json.Marshal(&collState{Base: c.base})
}

// RestoreState overlays an exported blob onto a freshly built collector
// with the same window start.
func (c *Collector) RestoreState(blob []byte) error {
	var st collState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("metrics: decoding collector state: %w", err)
	}
	if st.Base != nil && len(st.Base) != c.net.NumHosts() {
		return fmt.Errorf("metrics: snapshot for %d hosts, network has %d", len(st.Base), c.net.NumHosts())
	}
	c.base = st.Base
	return nil
}

// EncodeAction maps a pending collector-owned action to a checkpoint
// record; ok is false for foreign actions.
func (c *Collector) EncodeAction(a sim.Action) (ckpt.EventRecord, bool) {
	if s, ok := a.(*snapAct); ok && s.c == c {
		return ckpt.EventRecord{Kind: kindSnap}, true
	}
	return ckpt.EventRecord{}, false
}

// DecodeAction rebuilds an action from a record of the collector's
// kind; ok is false for foreign kinds.
func (c *Collector) DecodeAction(rec ckpt.EventRecord) (sim.Action, func(*sim.Event), bool, error) {
	if rec.Kind != kindSnap {
		return nil, nil, false, nil
	}
	return &snapAct{c: c}, nil, true, nil
}
