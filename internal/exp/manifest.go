package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// ManifestName is the filename WriteManifest produces inside the store
// directory. Store.Len ignores it.
const ManifestName = "MANIFEST.json"

// ManifestJob is one job's standing in a manifest.
type ManifestJob struct {
	// Name labels the job; Fingerprint keys its artifact.
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	// Artifact is the artifact filename relative to the store directory,
	// present only for completed jobs.
	Artifact string `json:"artifact,omitempty"`
	// Cached marks a completed job that was served from the store.
	Cached bool `json:"cached,omitempty"`
	// Error is the final failure text for failed and quarantined jobs.
	Error string `json:"error,omitempty"`
	// Attempts is how many times the job ran.
	Attempts int `json:"attempts,omitempty"`
}

// Manifest is the resumable record of an interrupted or finished sweep:
// which jobs completed (and where their artifacts are), which failed,
// which were quarantined, and which never ran. A sweep relaunched over
// the same store skips the Done set via the artifact cache, so the
// manifest's Pending list is exactly the remaining work.
type Manifest struct {
	// WrittenAt is the manifest's creation time (RFC 3339).
	WrittenAt string `json:"written_at"`
	// Interrupted marks a manifest flushed by a signal-triggered drain
	// rather than a completed sweep.
	Interrupted bool `json:"interrupted,omitempty"`
	// Totals.
	Total      int `json:"total"`
	NumDone    int `json:"num_done"`
	NumPending int `json:"num_pending"`
	NumFailed  int `json:"num_failed"`
	NumQuarant int `json:"num_quarantined"`
	// Job lists, each in submission order.
	Done        []ManifestJob `json:"done,omitempty"`
	Pending     []ManifestJob `json:"pending,omitempty"`
	Failed      []ManifestJob `json:"failed,omitempty"`
	Quarantined []ManifestJob `json:"quarantined,omitempty"`
}

// BuildManifest classifies a batch's results. Jobs whose result slot is
// still zero (skipped by a cancelled context, or the batch never reached
// them) land in Pending; quarantined jobs are listed separately from
// other failures because re-running them is known to be futile without a
// fix. jobs and results are parallel slices as produced by Runner.Run;
// results may be shorter or hold zero slots.
func BuildManifest(jobs []Job, results []JobResult, interrupted bool) *Manifest {
	m := &Manifest{
		WrittenAt:   time.Now().UTC().Format(time.RFC3339),
		Interrupted: interrupted,
		Total:       len(jobs),
	}
	for i, job := range jobs {
		name := job.Name
		if name == "" {
			name = job.Scenario.Name
		}
		fp := Fingerprint(job.Scenario)
		mj := ManifestJob{Name: name, Fingerprint: fp}
		var res JobResult
		if i < len(results) {
			res = results[i]
		}
		switch {
		case res.Result != nil && res.Err == nil:
			mj.Artifact = fp[:16] + ".json"
			mj.Cached = res.Cached
			mj.Attempts = res.Attempts
			m.Done = append(m.Done, mj)
		case res.Err != nil && res.Quarantined:
			mj.Error = res.Err.Error()
			mj.Attempts = res.Attempts
			m.Quarantined = append(m.Quarantined, mj)
		case res.Err != nil && res.Attempts > 0:
			mj.Error = res.Err.Error()
			mj.Attempts = res.Attempts
			m.Failed = append(m.Failed, mj)
		default:
			// Never ran: no attempts and no result (covers cancellation
			// errors stamped onto unrun slots).
			m.Pending = append(m.Pending, mj)
		}
	}
	m.NumDone, m.NumPending = len(m.Done), len(m.Pending)
	m.NumFailed, m.NumQuarant = len(m.Failed), len(m.Quarantined)
	return m
}

// WriteManifest builds the manifest for a batch and persists it
// crash-safely into the store directory, returning its path. Call it
// from a graceful drain (after Run returns with a context error) so the
// partial sweep is resumable, or after a completed sweep as a summary.
func (st *Store) WriteManifest(jobs []Job, results []JobResult, interrupted bool) (string, error) {
	return st.SaveManifest(BuildManifest(jobs, results, interrupted))
}

// SaveManifest persists an already-built manifest crash-safely into the
// store directory, returning its path.
func (st *Store) SaveManifest(m *Manifest) (string, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", fmt.Errorf("exp: manifest: %w", err)
	}
	path := filepath.Join(st.dir, ManifestName)
	if err := writeFileAtomic(st.dir, path, ".manifest-*.tmp", append(b, '\n')); err != nil {
		return "", fmt.Errorf("exp: manifest: %w", err)
	}
	return path, nil
}

// ReadManifest loads a previously written manifest from the store
// directory; ok is false when none exists.
func (st *Store) ReadManifest() (*Manifest, bool, error) {
	b, err := os.ReadFile(filepath.Join(st.dir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("exp: manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, false, fmt.Errorf("exp: manifest: %w", err)
	}
	return &m, true, nil
}
