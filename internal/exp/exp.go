// Package exp is the experiment-orchestration subsystem: it fans
// independent simulations out across a worker pool, recovers per-job
// panics into structured errors, reports progress, and persists every
// result as a JSON artifact keyed by a scenario fingerprint so sweeps
// are resumable.
//
// The package sits above internal/core (jobs carry a core.Scenario and
// produce a core.Result) and shares the ordered pool primitive of
// internal/par with core's own sweep drivers. Use it directly for
// ad-hoc job batches:
//
//	jobs := []exp.Job{{Name: "cc-on", Scenario: s1}, {Name: "cc-off", Scenario: s2}}
//	r := &exp.Runner{Workers: 8, Reporter: exp.NewProgress(os.Stderr, len(jobs))}
//	results, err := r.Run(ctx, jobs)
//
// or wire its Store and Progress into a core sweep via core.Opts
// (Lookup/OnResult) — cmd/paperbench does both.
package exp

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/telemetry"
)

// Job is one named, taggable simulation to run.
type Job struct {
	// Name labels the job in progress output and artifacts; it
	// defaults to the scenario name.
	Name string
	// Scenario is the simulation to run.
	Scenario core.Scenario
	// Tags carry free-form experiment metadata (figure id, sweep
	// coordinates, ...) into the artifact.
	Tags map[string]string
}

// JobResult is the outcome of one job, in submission order.
type JobResult struct {
	// Job echoes the submitted job.
	Job Job
	// Result is the simulation outcome; nil when Err is set.
	Result *core.Result
	// Err is the job's failure: a scenario/build error, or a
	// *par.PanicError when the simulation crashed. One job's error
	// never aborts the rest of the batch.
	Err error
	// Elapsed is the job's wall-clock time (zero for cache hits).
	Elapsed time.Duration
	// Cached reports that the result was loaded from the artifact
	// store instead of being simulated.
	Cached bool
}

// Runner executes job batches on a worker pool. The zero value runs
// with one worker per CPU, no progress output and no artifacts.
type Runner struct {
	// Workers is the pool size; <= 0 means one worker per CPU
	// (runtime.GOMAXPROCS), 1 runs serially.
	Workers int
	// Reporter, when non-nil, observes job completions; calls are
	// serialized.
	Reporter Reporter
	// Store, when non-nil, is consulted before each job (a hit skips
	// the simulation) and receives every fresh result afterwards.
	Store *Store
	// Spans, when non-nil, records an orchestration span per job
	// (worker id, wall time, event count, cache flag, error) for the
	// live sweep dashboard; Run also declares the batch total on it.
	Spans *telemetry.Tracker

	// mu serializes Reporter calls from the pool goroutines.
	mu sync.Mutex
	// runFn substitutes core.Run in tests.
	runFn func(core.Scenario) (*core.Result, error)
}

// Run executes the jobs and returns their results in submission order.
//
// Per-job failures — including panics inside a simulation, which are
// recovered and converted to *par.PanicError — are reported in the
// corresponding JobResult.Err and do not stop the batch. The returned
// error is reserved for orchestration-level failures: a cancelled
// context (ctx.Err()) or a nil runner invariant. Results slots are
// populated for every job that ran; jobs skipped by cancellation keep
// a zero JobResult with Err set to the context error.
func (r *Runner) Run(ctx context.Context, jobs []Job) ([]JobResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	total := len(jobs)
	if r.Reporter != nil {
		r.Reporter.Start(total)
		defer r.Reporter.Finish()
	}
	r.Spans.SetTotal(total)
	results, err := par.MapWorker(ctx, r.Workers, total, func(worker, i int) (JobResult, error) {
		return r.runJob(jobs[i], worker), nil
	})
	if err != nil {
		// Only cancellation can surface here (runJob never returns an
		// error); mark the unrun slots so callers can tell them apart.
		for i := range results {
			if results[i].Result == nil && results[i].Err == nil {
				results[i] = JobResult{Job: jobs[i], Err: err}
			}
		}
		return results, err
	}
	return results, nil
}

// runJob executes one job with cache lookup, panic recovery and
// artifact persistence; worker is the pool index running it.
func (r *Runner) runJob(job Job, worker int) JobResult {
	if job.Name == "" {
		job.Name = job.Scenario.Name
	}
	res := JobResult{Job: job}
	span := r.Spans.Begin(job.Name, worker)
	if r.Store != nil {
		if cached, ok := r.Store.Load(job.Scenario); ok {
			res.Result, res.Cached = cached, true
			r.Spans.End(span, cached.Events, true, "")
			r.report(res)
			return res
		}
	}
	start := time.Now()
	func() {
		defer func() {
			if v := recover(); v != nil {
				res.Err = &par.PanicError{Value: v, Stack: debug.Stack()}
			}
		}()
		run := r.runFn
		if run == nil {
			run = core.Run
		}
		res.Result, res.Err = run(job.Scenario)
	}()
	res.Elapsed = time.Since(start)
	if res.Err != nil {
		res.Err = fmt.Errorf("exp: job %q: %w", job.Name, res.Err)
	} else if r.Store != nil {
		if err := r.Store.Save(job, res.Result, res.Elapsed); err != nil {
			res.Err = fmt.Errorf("exp: job %q: artifact: %w", job.Name, err)
		}
	}
	var events uint64
	if res.Result != nil {
		events = res.Result.Events
	}
	errText := ""
	if res.Err != nil {
		errText = res.Err.Error()
	}
	r.Spans.End(span, events, false, errText)
	r.report(res)
	return res
}

func (r *Runner) report(res JobResult) {
	if r.Reporter != nil {
		r.mu.Lock()
		r.Reporter.Done(res)
		r.mu.Unlock()
	}
}

// Errs collects the per-job errors of a batch, in submission order.
func Errs(results []JobResult) []error {
	var out []error
	for _, r := range results {
		if r.Err != nil {
			out = append(out, r.Err)
		}
	}
	return out
}
