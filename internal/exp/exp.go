// Package exp is the experiment-orchestration subsystem: it fans
// independent simulations out across a worker pool, recovers per-job
// panics into structured errors, reports progress, and persists every
// result as a JSON artifact keyed by a scenario fingerprint so sweeps
// are resumable.
//
// The package sits above internal/core (jobs carry a core.Scenario and
// produce a core.Result) and shares the ordered pool primitive of
// internal/par with core's own sweep drivers. Use it directly for
// ad-hoc job batches:
//
//	jobs := []exp.Job{{Name: "cc-on", Scenario: s1}, {Name: "cc-off", Scenario: s2}}
//	r := &exp.Runner{Workers: 8, Reporter: exp.NewProgress(os.Stderr, len(jobs))}
//	results, err := r.Run(ctx, jobs)
//
// or wire its Store and Progress into a core sweep via core.Opts
// (Lookup/OnResult) — cmd/paperbench does both.
package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/telemetry"
)

// Job is one named, taggable simulation to run.
type Job struct {
	// Name labels the job in progress output and artifacts; it
	// defaults to the scenario name.
	Name string
	// Scenario is the simulation to run.
	Scenario core.Scenario
	// Tags carry free-form experiment metadata (figure id, sweep
	// coordinates, ...) into the artifact.
	Tags map[string]string
}

// JobResult is the outcome of one job, in submission order.
type JobResult struct {
	// Job echoes the submitted job.
	Job Job
	// Result is the simulation outcome; nil when Err is set.
	Result *core.Result
	// Err is the job's failure: a scenario/build error, a
	// *par.PanicError when the simulation crashed, or a *TimeoutError
	// when it outran the watchdog. One job's error never aborts the
	// rest of the batch.
	Err error
	// Elapsed is the job's wall-clock time (zero for cache hits,
	// cumulative over retries).
	Elapsed time.Duration
	// Cached reports that the result was loaded from the artifact
	// store instead of being simulated.
	Cached bool
	// Attempts is how many times the job ran (0 for cache hits).
	Attempts int
	// Quarantined reports that the job exhausted its retries and a
	// quarantine report was filed; the sweep completed without it.
	Quarantined bool
}

// TimeoutError is the failure of a job whose single attempt outran the
// runner's per-job watchdog. The abandoned attempt's goroutine is left
// to finish in the background (a deterministic simulation cannot be
// preempted mid-event); its eventual result is discarded.
type TimeoutError struct {
	// Name labels the job; Limit is the watchdog deadline it missed.
	Name  string
	Limit time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("exp: job %q exceeded the %v watchdog", e.Name, e.Limit)
}

// Runner executes job batches on a worker pool. The zero value runs
// with one worker per CPU, no progress output and no artifacts.
type Runner struct {
	// Workers is the pool size; <= 0 means one worker per CPU
	// (runtime.GOMAXPROCS), 1 runs serially.
	Workers int
	// Reporter, when non-nil, observes job completions; calls are
	// serialized.
	Reporter Reporter
	// Store, when non-nil, is consulted before each job (a hit skips
	// the simulation) and receives every fresh result afterwards.
	Store *Store
	// Spans, when non-nil, records an orchestration span per job
	// (worker id, wall time, event count, cache flag, error) for the
	// live sweep dashboard; Run also declares the batch total on it.
	Spans *telemetry.Tracker

	// Timeout, when positive, is the per-job wall-clock watchdog: an
	// attempt still running after this long is abandoned and counted as
	// failed (then retried like a panic).
	Timeout time.Duration
	// Retries is how many times a crashed or timed-out attempt is
	// re-run before the job is quarantined. Deterministic simulations
	// make the re-run exact — same fingerprint, same trajectory — so a
	// retry only helps against host-level trouble (OOM kill pressure,
	// watchdog near-misses), which is precisely the robustness target.
	// Build/validation errors are never retried: they are properties of
	// the scenario, not the host.
	Retries int
	// Backoff is the sleep before the first retry, doubling per
	// subsequent retry (0 retries immediately).
	Backoff time.Duration

	// mu serializes Reporter calls from the pool goroutines.
	mu sync.Mutex
	// runFn substitutes core.Run in tests.
	runFn func(core.Scenario) (*core.Result, error)
	// sleepFn substitutes the backoff sleep in tests.
	sleepFn func(time.Duration)
}

// Run executes the jobs and returns their results in submission order.
//
// Per-job failures — including panics inside a simulation, which are
// recovered and converted to *par.PanicError — are reported in the
// corresponding JobResult.Err and do not stop the batch. The returned
// error is reserved for orchestration-level failures: a cancelled
// context (ctx.Err()) or a nil runner invariant. Results slots are
// populated for every job that ran; jobs skipped by cancellation keep
// a zero JobResult with Err set to the context error.
func (r *Runner) Run(ctx context.Context, jobs []Job) ([]JobResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	total := len(jobs)
	if r.Reporter != nil {
		r.Reporter.Start(total)
		defer r.Reporter.Finish()
	}
	r.Spans.SetTotal(total)
	results, err := par.MapWorker(ctx, r.Workers, total, func(worker, i int) (JobResult, error) {
		return r.runJob(jobs[i], worker), nil
	})
	if err != nil {
		// Only cancellation can surface here (runJob never returns an
		// error); mark the unrun slots so callers can tell them apart.
		for i := range results {
			if results[i].Result == nil && results[i].Err == nil {
				results[i] = JobResult{Job: jobs[i], Err: err}
			}
		}
		// Graceful drain: leave a resumable record of what finished and
		// what didn't. Best-effort — the cancellation itself is the
		// batch's outcome.
		if r.Store != nil {
			_, _ = r.Store.WriteManifest(jobs, results, true)
		}
		return results, err
	}
	return results, nil
}

// runJob executes one job with cache lookup, panic/timeout recovery,
// bounded deterministic retry, quarantine and artifact persistence;
// worker is the pool index running it.
func (r *Runner) runJob(job Job, worker int) JobResult {
	if job.Name == "" {
		job.Name = job.Scenario.Name
	}
	res := JobResult{Job: job}
	span := r.Spans.Begin(job.Name, worker)
	if r.Store != nil {
		if cached, ok := r.Store.Load(job.Scenario); ok {
			res.Result, res.Cached = cached, true
			r.Spans.End(span, cached.Events, true, "")
			r.report(res)
			return res
		}
	}

	attempts := 1 + r.Retries
	if attempts < 1 {
		attempts = 1
	}
	for {
		start := time.Now()
		res.Result, res.Err = r.attempt(job)
		res.Elapsed += time.Since(start)
		res.Attempts++
		if res.Err == nil || !retryable(res.Err) || res.Attempts >= attempts {
			break
		}
		// Close the failed attempt's span — the tracker's re-Begin of
		// the same name is what counts it as a retry — back off, and go
		// again.
		r.Spans.End(span, 0, false, res.Err.Error())
		if r.Backoff > 0 {
			sleep := r.sleepFn
			if sleep == nil {
				sleep = time.Sleep
			}
			sleep(r.Backoff << (res.Attempts - 1))
		}
		span = r.Spans.Begin(job.Name, worker)
	}

	if res.Err != nil {
		exhausted := retryable(res.Err)
		res.Err = fmt.Errorf("exp: job %q: %w", job.Name, res.Err)
		if exhausted {
			// The job crashed or hung on every attempt: file it in
			// quarantine so the sweep completes around the gap and the
			// failure stays reproducible.
			res.Quarantined = true
			r.Spans.Quarantined(job.Name)
			if r.Store != nil {
				if _, qerr := r.Store.QuarantineJob(job, res.Err, res.Attempts); qerr != nil {
					res.Err = fmt.Errorf("%w (and quarantine report failed: %v)", res.Err, qerr)
				}
			}
		}
	} else if r.Store != nil {
		if err := r.Store.Save(job, res.Result, res.Elapsed); err != nil {
			res.Err = fmt.Errorf("exp: job %q: artifact: %w", job.Name, err)
		}
	}
	var events uint64
	if res.Result != nil {
		events = res.Result.Events
	}
	errText := ""
	if res.Err != nil {
		errText = res.Err.Error()
	}
	r.Spans.End(span, events, false, errText)
	r.report(res)
	return res
}

// attempt runs the simulation once, converting a panic into a
// *par.PanicError and enforcing the watchdog when one is configured.
func (r *Runner) attempt(job Job) (*core.Result, error) {
	run := r.runFn
	if run == nil {
		run = core.Run
	}
	if r.Timeout <= 0 {
		return protectRun(run, job.Scenario)
	}
	type outcome struct {
		res *core.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := protectRun(run, job.Scenario)
		done <- outcome{res, err}
	}()
	timer := time.NewTimer(r.Timeout)
	defer timer.Stop()
	select {
	case o := <-done:
		return o.res, o.err
	case <-timer.C:
		return nil, &TimeoutError{Name: job.Name, Limit: r.Timeout}
	}
}

// protectRun runs one simulation with panic recovery.
func protectRun(run func(core.Scenario) (*core.Result, error), s core.Scenario) (res *core.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &par.PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return run(s)
}

// retryable reports whether an attempt's failure is worth re-running:
// crashes and watchdog timeouts are (host-level trouble can be
// transient), deterministic scenario/build errors are not.
func retryable(err error) bool {
	var pe *par.PanicError
	var te *TimeoutError
	return errors.As(err, &pe) || errors.As(err, &te)
}

func (r *Runner) report(res JobResult) {
	if r.Reporter != nil {
		r.mu.Lock()
		r.Reporter.Done(res)
		r.mu.Unlock()
	}
}

// Errs collects the per-job errors of a batch, in submission order.
func Errs(results []JobResult) []error {
	var out []error
	for _, r := range results {
		if r.Err != nil {
			out = append(out, r.Err)
		}
	}
	return out
}
