package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
)

// QuarantineDirName is the subdirectory of an artifact store that
// receives corrupt artifacts and given-up job reports.
const QuarantineDirName = "quarantine"

// Artifact is the JSON document the store persists per simulation: the
// full result, the scenario that produced it, and the fingerprint that
// keys it.
type Artifact struct {
	// Name is the job or scenario label.
	Name string `json:"name"`
	// Fingerprint is the scenario's content hash (hex SHA-256).
	Fingerprint string `json:"fingerprint"`
	// Tags carry the job's metadata, if any.
	Tags map[string]string `json:"tags,omitempty"`
	// Scenario is the exact configuration that ran.
	Scenario core.Scenario `json:"scenario"`
	// Result is the complete simulation outcome.
	Result *core.Result `json:"result"`
	// ElapsedNS is the wall-clock simulation time in nanoseconds.
	ElapsedNS int64 `json:"elapsed_ns"`
	// SavedAt is the artifact's creation time (RFC 3339).
	SavedAt string `json:"saved_at"`
	// CRC32 is the IEEE checksum of the artifact's canonical JSON with
	// this field zeroed; Load verifies it, so a torn or bit-flipped
	// artifact is quarantined instead of silently substituting for a
	// run. Zero means the artifact predates checksumming.
	CRC32 uint32 `json:"crc32,omitempty"`
}

// encode marshals the artifact canonically with its checksum filled in.
func (a *Artifact) encode() ([]byte, error) {
	a.CRC32 = 0
	plain, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	a.CRC32 = crc32.ChecksumIEEE(plain)
	return json.MarshalIndent(a, "", "  ")
}

// verify re-derives the canonical checksum and compares. Artifacts
// written before checksumming (CRC32 == 0) pass.
func (a *Artifact) verify() error {
	got := a.CRC32
	if got == 0 {
		return nil
	}
	a.CRC32 = 0
	plain, err := json.MarshalIndent(a, "", "  ")
	a.CRC32 = got
	if err != nil {
		return err
	}
	if want := crc32.ChecksumIEEE(plain); want != got {
		return fmt.Errorf("crc %08x, want %08x", got, want)
	}
	return nil
}

// Fingerprint hashes every field of a scenario (via its canonical JSON
// encoding) into a stable hex key: two scenarios collide exactly when
// they would simulate identically, which is what makes artifacts safe
// to substitute for runs.
func Fingerprint(s core.Scenario) string {
	b, err := json.Marshal(s)
	if err != nil {
		// Scenario is a plain value struct; this cannot fail.
		panic(fmt.Sprintf("exp: fingerprint: %v", err))
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// Store persists one JSON artifact per simulated scenario in a
// directory, keyed by scenario fingerprint. A populated store makes
// sweeps resumable: re-running the same scenarios loads the saved
// results instead of simulating (see Runner.Store and core.Opts.Lookup).
type Store struct {
	dir string
	// onCorrupt, when set, observes every artifact quarantined by Load.
	onCorrupt func(path string)
}

// NewStore opens (creating if needed) an artifact directory.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exp: store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// QuarantineDir returns the store's quarantine directory (not
// necessarily existing yet).
func (st *Store) QuarantineDir() string { return filepath.Join(st.dir, QuarantineDirName) }

// OnCorrupt registers an observer for quarantined-artifact paths (the
// sweep trackers count them).
func (st *Store) OnCorrupt(fn func(path string)) { st.onCorrupt = fn }

// path returns the artifact filename for a fingerprint.
func (st *Store) path(fp string) string {
	return filepath.Join(st.dir, fp[:16]+".json")
}

// Save writes the job's artifact crash-safely: temp file in the store
// directory, write, fsync the file, rename over the final name, fsync
// the directory. An interrupted sweep therefore never leaves a torn
// artifact under the final name, and a completed Save survives a
// power cut.
func (st *Store) Save(job Job, r *core.Result, elapsed time.Duration) error {
	fp := Fingerprint(job.Scenario)
	name := job.Name
	if name == "" {
		name = job.Scenario.Name
	}
	a := Artifact{
		Name:        name,
		Fingerprint: fp,
		Tags:        job.Tags,
		Scenario:    job.Scenario,
		Result:      r,
		ElapsedNS:   elapsed.Nanoseconds(),
		SavedAt:     time.Now().UTC().Format(time.RFC3339),
	}
	b, err := a.encode()
	if err != nil {
		return fmt.Errorf("exp: store: encode %s: %w", name, err)
	}
	if err := writeFileAtomic(st.dir, st.path(fp), "."+fp[:16]+"-*.tmp", append(b, '\n')); err != nil {
		return fmt.Errorf("exp: store: %s: %w", name, err)
	}
	return nil
}

// writeFileAtomic is the store's durable-write primitive: temp file in
// dir, write, fsync, rename to path, fsync dir.
func writeFileAtomic(dir, path, tmpPattern string, data []byte) error {
	tmp, err := os.CreateTemp(dir, tmpPattern)
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return ckpt.SyncDir(dir)
}

// Load returns the stored result for a scenario, if a valid artifact
// with a matching fingerprint exists. A corrupt, truncated or
// mismatching artifact is moved into the quarantine directory — so the
// scenario re-runs and the bad file stays inspectable — instead of
// aborting or being silently trusted.
func (st *Store) Load(s core.Scenario) (*core.Result, bool) {
	fp := Fingerprint(s)
	path := st.path(fp)
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var a Artifact
	if err := json.Unmarshal(b, &a); err != nil {
		st.quarantineFile(path, fmt.Sprintf("invalid JSON: %v", err))
		return nil, false
	}
	switch {
	case a.Fingerprint != fp:
		st.quarantineFile(path, fmt.Sprintf("fingerprint %s under key %s", a.Fingerprint, fp))
		return nil, false
	case a.Result == nil:
		st.quarantineFile(path, "artifact carries no result")
		return nil, false
	}
	if err := a.verify(); err != nil {
		st.quarantineFile(path, err.Error())
		return nil, false
	}
	return a.Result, true
}

// quarantineFile moves a bad artifact aside with a sidecar note saying
// why. Failures to move are swallowed: quarantine is best-effort
// protection for the sweep, never a new way to abort it.
func (st *Store) quarantineFile(path, reason string) {
	qdir := st.QuarantineDir()
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	dst := filepath.Join(qdir, filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		return
	}
	note := fmt.Sprintf("{\"file\":%q,\"reason\":%q,\"at\":%q}\n",
		filepath.Base(path), reason, time.Now().UTC().Format(time.RFC3339))
	_ = os.WriteFile(dst+".reason.json", []byte(note), 0o644)
	if st.onCorrupt != nil {
		st.onCorrupt(dst)
	}
}

// QuarantineJob records a job the runner gave up on: the scenario, the
// final error and the attempt count land in the quarantine directory so
// the sweep's gap is reproducible afterwards. It returns the report
// path.
func (st *Store) QuarantineJob(job Job, jobErr error, attempts int) (string, error) {
	qdir := st.QuarantineDir()
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return "", fmt.Errorf("exp: quarantine: %w", err)
	}
	fp := Fingerprint(job.Scenario)
	name := job.Name
	if name == "" {
		name = job.Scenario.Name
	}
	rec := struct {
		Name        string            `json:"name"`
		Fingerprint string            `json:"fingerprint"`
		Tags        map[string]string `json:"tags,omitempty"`
		Scenario    core.Scenario     `json:"scenario"`
		Attempts    int               `json:"attempts"`
		Error       string            `json:"error"`
		At          string            `json:"at"`
	}{
		Name: name, Fingerprint: fp, Tags: job.Tags, Scenario: job.Scenario,
		Attempts: attempts, Error: jobErr.Error(),
		At: time.Now().UTC().Format(time.RFC3339),
	}
	b, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		return "", fmt.Errorf("exp: quarantine: encode %s: %w", name, err)
	}
	path := filepath.Join(qdir, fp[:16]+".job.json")
	if err := writeFileAtomic(qdir, path, "."+fp[:16]+"-*.tmp", append(b, '\n')); err != nil {
		return "", fmt.Errorf("exp: quarantine: %s: %w", name, err)
	}
	return path, nil
}

// Lookup adapts Load to the core.Opts.Lookup hook signature.
func (st *Store) Lookup(s core.Scenario) (*core.Result, bool) { return st.Load(s) }

// SaveResult adapts Save to the core.Opts.OnResult hook: fresh results
// are persisted, cache hits are left alone. Persistence errors are
// reported through errf (stderr logging in the CLIs) rather than
// aborting the sweep.
func (st *Store) SaveResult(errf func(error)) func(core.Scenario, *core.Result, bool) {
	return func(s core.Scenario, r *core.Result, cached bool) {
		if cached {
			return
		}
		if err := st.Save(Job{Name: s.Name, Scenario: s}, r, 0); err != nil && errf != nil {
			errf(err)
		}
	}
}

// Len counts the artifacts currently in the store.
func (st *Store) Len() int {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" && e.Name() != ManifestName {
			n++
		}
	}
	return n
}
