package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
)

// Artifact is the JSON document the store persists per simulation: the
// full result, the scenario that produced it, and the fingerprint that
// keys it.
type Artifact struct {
	// Name is the job or scenario label.
	Name string `json:"name"`
	// Fingerprint is the scenario's content hash (hex SHA-256).
	Fingerprint string `json:"fingerprint"`
	// Tags carry the job's metadata, if any.
	Tags map[string]string `json:"tags,omitempty"`
	// Scenario is the exact configuration that ran.
	Scenario core.Scenario `json:"scenario"`
	// Result is the complete simulation outcome.
	Result *core.Result `json:"result"`
	// ElapsedNS is the wall-clock simulation time in nanoseconds.
	ElapsedNS int64 `json:"elapsed_ns"`
	// SavedAt is the artifact's creation time (RFC 3339).
	SavedAt string `json:"saved_at"`
}

// Fingerprint hashes every field of a scenario (via its canonical JSON
// encoding) into a stable hex key: two scenarios collide exactly when
// they would simulate identically, which is what makes artifacts safe
// to substitute for runs.
func Fingerprint(s core.Scenario) string {
	b, err := json.Marshal(s)
	if err != nil {
		// Scenario is a plain value struct; this cannot fail.
		panic(fmt.Sprintf("exp: fingerprint: %v", err))
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// Store persists one JSON artifact per simulated scenario in a
// directory, keyed by scenario fingerprint. A populated store makes
// sweeps resumable: re-running the same scenarios loads the saved
// results instead of simulating (see Runner.Store and core.Opts.Lookup).
type Store struct {
	dir string
}

// NewStore opens (creating if needed) an artifact directory.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exp: store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// path returns the artifact filename for a fingerprint.
func (st *Store) path(fp string) string {
	return filepath.Join(st.dir, fp[:16]+".json")
}

// Save writes the job's artifact atomically (temp file + rename), so a
// concurrent or interrupted sweep never leaves a truncated artifact
// behind.
func (st *Store) Save(job Job, r *core.Result, elapsed time.Duration) error {
	fp := Fingerprint(job.Scenario)
	name := job.Name
	if name == "" {
		name = job.Scenario.Name
	}
	a := Artifact{
		Name:        name,
		Fingerprint: fp,
		Tags:        job.Tags,
		Scenario:    job.Scenario,
		Result:      r,
		ElapsedNS:   elapsed.Nanoseconds(),
		SavedAt:     time.Now().UTC().Format(time.RFC3339),
	}
	b, err := json.MarshalIndent(&a, "", "  ")
	if err != nil {
		return fmt.Errorf("exp: store: encode %s: %w", name, err)
	}
	tmp, err := os.CreateTemp(st.dir, "."+fp[:16]+"-*.tmp")
	if err != nil {
		return fmt.Errorf("exp: store: %w", err)
	}
	_, werr := tmp.Write(append(b, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: store: write %s: %w", name, firstErr(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), st.path(fp)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: store: %w", err)
	}
	return nil
}

// Load returns the stored result for a scenario, if an artifact with a
// matching fingerprint exists. Corrupt or mismatching artifacts are
// ignored (the scenario just re-runs).
func (st *Store) Load(s core.Scenario) (*core.Result, bool) {
	fp := Fingerprint(s)
	b, err := os.ReadFile(st.path(fp))
	if err != nil {
		return nil, false
	}
	var a Artifact
	if err := json.Unmarshal(b, &a); err != nil || a.Fingerprint != fp || a.Result == nil {
		return nil, false
	}
	return a.Result, true
}

// Lookup adapts Load to the core.Opts.Lookup hook signature.
func (st *Store) Lookup(s core.Scenario) (*core.Result, bool) { return st.Load(s) }

// SaveResult adapts Save to the core.Opts.OnResult hook: fresh results
// are persisted, cache hits are left alone. Persistence errors are
// reported through errf (stderr logging in the CLIs) rather than
// aborting the sweep.
func (st *Store) SaveResult(errf func(error)) func(core.Scenario, *core.Result, bool) {
	return func(s core.Scenario, r *core.Result, cached bool) {
		if cached {
			return
		}
		if err := st.Save(Job{Name: s.Name, Scenario: s}, r, 0); err != nil && errf != nil {
			errf(err)
		}
	}
}

// Len counts the artifacts currently in the store.
func (st *Store) Len() int {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
