package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// TestRunnerSpansTracker wires a span tracker into a stubbed Runner and
// checks the aggregated sweep stats: totals, cache hits, failures and
// event counts all flow from runJob into the tracker.
func TestRunnerSpansTracker(t *testing.T) {
	tr := telemetry.NewTracker()
	r := fakeRun(3, func(s core.Scenario) (*core.Result, error) {
		if s.Seed == 3 {
			return nil, errors.New("boom")
		}
		time.Sleep(time.Millisecond)
		return &core.Result{Name: s.Name, Events: 100 * s.Seed}, nil
	})
	r.Spans = tr
	js := jobs(6)
	results, err := r.Run(context.Background(), js)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("%d results", len(results))
	}
	st := tr.Stats()
	if st.Total != 6 || st.Done+st.Failed != 6 {
		t.Fatalf("stats totals: %+v", st)
	}
	if st.Failed != 1 {
		t.Fatalf("failed = %d, want 1 (seed-3 job errors)", st.Failed)
	}
	// 100*(1+2+4+5+6) from the five successful jobs.
	if want := uint64(100 * (1 + 2 + 4 + 5 + 6)); st.Events != want {
		t.Fatalf("events = %d, want %d", st.Events, want)
	}
	if st.Active != 0 || len(st.ActiveJobs) != 0 {
		t.Fatalf("active spans leaked: %+v", st)
	}
	if st.JobMS.Count != 6 {
		t.Fatalf("job histogram count = %d", st.JobMS.Count)
	}
	if st.Workers < 1 || st.Workers > 3 {
		t.Fatalf("workers = %d", st.Workers)
	}
	if len(st.Recent) != 6 {
		t.Fatalf("recent ring holds %d spans", len(st.Recent))
	}
	var failed *telemetry.JobSpan
	for i := range st.Recent {
		if st.Recent[i].Err != "" {
			failed = &st.Recent[i]
		}
	}
	if failed == nil || !strings.Contains(failed.Err, "boom") {
		t.Fatalf("failed span not recorded: %+v", st.Recent)
	}
}

// TestRunnerSpansCacheHit checks the cache-hit path marks spans cached
// and still credits their event counts.
func TestRunnerSpansCacheHit(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	runs := 0
	r := fakeRun(1, func(s core.Scenario) (*core.Result, error) {
		runs++
		return &core.Result{Name: s.Name, Events: 42}, nil
	})
	r.Store = store
	js := jobs(2)
	if _, err := r.Run(context.Background(), js); err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracker()
	r.Spans = tr
	if _, err := r.Run(context.Background(), js); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("runFn ran %d times, want 2 (second batch fully cached)", runs)
	}
	st := tr.Stats()
	if st.Cached != 2 || st.Done != 2 {
		t.Fatalf("cached stats: %+v", st)
	}
	if st.Events != 84 {
		t.Fatalf("cached events = %d, want 84", st.Events)
	}
}

// TestProgressJSONL checks the machine-readable progress mode: one
// parseable JSON object per completed job with the documented fields,
// and no trailing ANSI status line.
func TestProgressJSONL(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgressJSONL(&buf, 3)
	r := fakeRun(1, func(s core.Scenario) (*core.Result, error) {
		return &core.Result{Name: s.Name, Events: 10}, nil
	})
	r.Reporter = p
	if _, err := r.Run(context.Background(), jobs(3)); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimRight(buf.String(), "\n")
	if strings.Contains(out, "\r") || strings.Contains(out, "\x1b") {
		t.Fatalf("JSONL output contains terminal control codes: %q", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3: %q", len(lines), out)
	}
	for i, line := range lines {
		var rec struct {
			Done      int     `json:"done"`
			Total     int     `json:"total"`
			Events    uint64  `json:"events"`
			ElapsedMS float64 `json:"elapsed_ms"`
			MEPS      float64 `json:"meps"`
			ETAMS     float64 `json:"eta_ms"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v: %q", i, err, line)
		}
		if rec.Done != i+1 || rec.Total != 3 {
			t.Fatalf("line %d progress %d/%d", i, rec.Done, rec.Total)
		}
		if rec.Events != uint64(10*(i+1)) {
			t.Fatalf("line %d events = %d", i, rec.Events)
		}
		if rec.ElapsedMS < 0 || rec.MEPS < 0 {
			t.Fatalf("line %d negative rates: %+v", i, rec)
		}
		if i < 2 && rec.ETAMS < 0 {
			t.Fatalf("line %d negative ETA", i)
		}
		if i == 2 && rec.ETAMS != 0 {
			t.Fatalf("final line carries an ETA: %+v", rec)
		}
	}
}
