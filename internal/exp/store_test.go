package exp

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestFingerprintStability(t *testing.T) {
	a, b := quick(6), quick(6)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("identical scenarios fingerprint differently")
	}
	b.Seed = 2
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("seed change did not change the fingerprint")
	}
	c := a
	c.CC.Threshold++
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("CC parameter change did not change the fingerprint")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := quick(6)
	if _, ok := st.Load(s); ok {
		t.Fatal("empty store reported a hit")
	}
	res, err := core.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{Name: "round-trip", Scenario: s, Tags: map[string]string{"fig": "5"}}
	if err := st.Save(job, res, 0); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d artifacts", st.Len())
	}
	got, ok := st.Load(s)
	if !ok {
		t.Fatal("saved scenario not found")
	}
	if got.Summary != res.Summary || got.Events != res.Events || got.Name != res.Name {
		t.Fatalf("loaded result differs:\n%v\n%v", got.Summary, res.Summary)
	}
	// A different scenario misses.
	other := s
	other.Seed = 99
	if _, ok := st.Load(other); ok {
		t.Fatal("different scenario hit the same artifact")
	}
	// The artifact on disk is well-formed JSON with the expected keys.
	files, _ := filepath.Glob(filepath.Join(st.Dir(), "*.json"))
	if len(files) != 1 {
		t.Fatalf("artifact files: %v", files)
	}
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var a Artifact
	if err := json.Unmarshal(b, &a); err != nil {
		t.Fatal(err)
	}
	if a.Name != "round-trip" || a.Tags["fig"] != "5" || a.Fingerprint != Fingerprint(s) {
		t.Fatalf("artifact metadata: %+v", a)
	}
}

func TestStoreIgnoresCorruptArtifact(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := quick(6)
	fp := Fingerprint(s)
	if err := os.WriteFile(st.path(fp), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Load(s); ok {
		t.Fatal("corrupt artifact accepted")
	}
}

func TestRunnerSkipsCachedJobs(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	simulated := 0
	r := &Runner{Workers: 1, Store: st, runFn: func(s core.Scenario) (*core.Result, error) {
		simulated++
		return &core.Result{Name: s.Name, Events: 42}, nil
	}}
	js := jobs(3)
	first, err := r.Run(context.Background(), js)
	if err != nil {
		t.Fatal(err)
	}
	if simulated != 3 {
		t.Fatalf("first pass simulated %d", simulated)
	}
	for _, res := range first {
		if res.Cached {
			t.Fatal("first pass reported cache hits")
		}
	}
	second, err := r.Run(context.Background(), js)
	if err != nil {
		t.Fatal(err)
	}
	if simulated != 3 {
		t.Fatalf("resume re-simulated (%d total)", simulated)
	}
	for i, res := range second {
		if !res.Cached || res.Result == nil || res.Result.Events != 42 {
			t.Fatalf("job %d not served from cache: %+v", i, res)
		}
	}
}

func TestStoreCoreOptsIntegration(t *testing.T) {
	// The store's Lookup/SaveResult hooks plug into a core sweep and
	// make it resumable with identical aggregates.
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := quick(6)
	seeds := []uint64{1, 2}
	opts := core.Opts{
		Workers:  2,
		Lookup:   st.Lookup,
		OnResult: st.SaveResult(func(err error) { t.Error(err) }),
	}
	fresh, err := core.RunSeedsOpts(s, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != len(seeds) {
		t.Fatalf("store holds %d artifacts", st.Len())
	}
	resumed, err := core.RunSeedsOpts(s, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Total.Mean() != resumed.Total.Mean() || fresh.Events.Mean() != resumed.Events.Mean() {
		t.Fatal("resumed sweep differs from fresh sweep")
	}
}
