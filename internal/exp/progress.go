package exp

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
)

// Reporter observes a batch's lifecycle. Implementations need not be
// concurrency-safe when driven by a Runner (which serializes calls);
// Progress additionally locks internally so it can also be fed from
// core.Opts.OnResult hooks.
type Reporter interface {
	// Start announces the batch size (0 when unknown).
	Start(total int)
	// Done reports one completed job.
	Done(res JobResult)
	// Finish flushes any pending output.
	Finish()
}

// Progress is a line-oriented progress reporter: after every job it
// rewrites one status line ("done/total, events/sec, ETA") on its
// writer, typically stderr. It tolerates an unknown total (no ETA) and
// can be driven either as a Runner's Reporter or manually via Observe
// from a core sweep's OnResult hook.
type Progress struct {
	mu     sync.Mutex
	w      io.Writer
	total  int
	done   int
	failed int
	cached int
	events uint64
	start  time.Time
}

// NewProgress returns a Progress writing to w, expecting total jobs
// (0 = unknown).
func NewProgress(w io.Writer, total int) *Progress {
	return &Progress{w: w, total: total, start: time.Now()}
}

// Start implements Reporter; it (re)arms the clock and total.
func (p *Progress) Start(total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total = total
	p.done, p.failed, p.cached, p.events = 0, 0, 0, 0
	p.start = time.Now()
}

// Done implements Reporter.
func (p *Progress) Done(res JobResult) {
	var events uint64
	if res.Result != nil {
		events = res.Result.Events
	}
	p.observe(events, res.Cached, res.Err != nil)
}

// Observe records one completed simulation outside a Runner (the
// core.Opts.OnResult signature adapts directly:
// func(s, r, cached) { p.Observe(r.Events, cached) }).
func (p *Progress) Observe(events uint64, cached bool) {
	p.observe(events, cached, false)
}

func (p *Progress) observe(events uint64, cached, failed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	p.events += events
	if cached {
		p.cached++
	}
	if failed {
		p.failed++
	}
	p.line()
}

// Events returns the total simulated events observed so far.
func (p *Progress) Events() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.events
}

// Finish implements Reporter: it terminates the status line.
func (p *Progress) Finish() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done > 0 {
		fmt.Fprintln(p.w)
	}
}

// line rewrites the status line; the caller holds p.mu.
func (p *Progress) line() {
	elapsed := time.Since(p.start)
	rate := float64(p.events) / elapsed.Seconds() / 1e6
	fmt.Fprintf(p.w, "\r\x1b[K%s", p.status(elapsed, rate))
}

func (p *Progress) status(elapsed time.Duration, rate float64) string {
	var s string
	if p.total > 0 {
		s = fmt.Sprintf("[%d/%d]", p.done, p.total)
	} else {
		s = fmt.Sprintf("[%d]", p.done)
	}
	s += fmt.Sprintf(" %v, %.1fM events/s", elapsed.Round(time.Second), rate)
	if p.total > 0 && p.done > 0 && p.done < p.total {
		eta := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
		s += fmt.Sprintf(", ETA %v", eta.Round(time.Second))
	}
	if p.cached > 0 {
		s += fmt.Sprintf(", %d cached", p.cached)
	}
	if p.failed > 0 {
		s += fmt.Sprintf(", %d FAILED", p.failed)
	}
	return s
}

// OnResult returns a core.Opts.OnResult hook feeding this Progress, so
// core sweep drivers report through the same status line as Runner
// batches.
func (p *Progress) OnResult() func(core.Scenario, *core.Result, bool) {
	return func(_ core.Scenario, r *core.Result, cached bool) {
		var events uint64
		if r != nil {
			events = r.Events
		}
		p.Observe(events, cached)
	}
}
