package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
)

// Reporter observes a batch's lifecycle. Implementations need not be
// concurrency-safe when driven by a Runner (which serializes calls);
// Progress additionally locks internally so it can also be fed from
// core.Opts.OnResult hooks.
type Reporter interface {
	// Start announces the batch size (0 when unknown).
	Start(total int)
	// Done reports one completed job.
	Done(res JobResult)
	// Finish flushes any pending output.
	Finish()
}

// Progress is a line-oriented progress reporter: after every job it
// rewrites one status line ("done/total, events/sec, ETA") on its
// writer, typically stderr. It tolerates an unknown total (no ETA) and
// can be driven either as a Runner's Reporter or manually via Observe
// from a core sweep's OnResult hook.
type Progress struct {
	mu     sync.Mutex
	w      io.Writer
	total  int
	done   int
	failed int
	cached int
	events uint64
	start  time.Time
	jsonl  bool
}

// NewProgress returns a Progress writing to w, expecting total jobs
// (0 = unknown).
func NewProgress(w io.Writer, total int) *Progress {
	return &Progress{w: w, total: total, start: time.Now()}
}

// NewProgressJSONL returns a Progress in machine-readable mode: instead
// of rewriting one ANSI status line, every completed job appends a full
// JSON line, so a wrapper process (CI, a notebook, a supervisor) can
// track a sweep without terminal scraping.
func NewProgressJSONL(w io.Writer, total int) *Progress {
	return &Progress{w: w, total: total, start: time.Now(), jsonl: true}
}

// progressLine is the JSONL-mode record, one per completed job.
type progressLine struct {
	Done      int     `json:"done"`
	Total     int     `json:"total,omitempty"`
	Failed    int     `json:"failed,omitempty"`
	Cached    int     `json:"cached,omitempty"`
	Events    uint64  `json:"events"`
	ElapsedMS float64 `json:"elapsed_ms"`
	MEPS      float64 `json:"meps"`
	ETAMS     float64 `json:"eta_ms,omitempty"`
}

// Start implements Reporter; it (re)arms the clock and total.
func (p *Progress) Start(total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total = total
	p.done, p.failed, p.cached, p.events = 0, 0, 0, 0
	p.start = time.Now()
}

// Done implements Reporter.
func (p *Progress) Done(res JobResult) {
	var events uint64
	if res.Result != nil {
		events = res.Result.Events
	}
	p.observe(events, res.Cached, res.Err != nil)
}

// Observe records one completed simulation outside a Runner (the
// core.Opts.OnResult signature adapts directly:
// func(s, r, cached) { p.Observe(r.Events, cached) }).
func (p *Progress) Observe(events uint64, cached bool) {
	p.observe(events, cached, false)
}

func (p *Progress) observe(events uint64, cached, failed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	p.events += events
	if cached {
		p.cached++
	}
	if failed {
		p.failed++
	}
	p.line()
}

// Events returns the total simulated events observed so far.
func (p *Progress) Events() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.events
}

// Finish implements Reporter: it terminates the status line (JSONL
// lines are already complete).
func (p *Progress) Finish() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done > 0 && !p.jsonl {
		fmt.Fprintln(p.w)
	}
}

// line emits one progress update; the caller holds p.mu.
func (p *Progress) line() {
	elapsed := time.Since(p.start)
	rate := float64(p.events) / elapsed.Seconds() / 1e6
	if p.jsonl {
		rec := progressLine{
			Done: p.done, Total: p.total, Failed: p.failed, Cached: p.cached,
			Events: p.events, ElapsedMS: elapsed.Seconds() * 1e3, MEPS: rate,
		}
		if p.total > 0 && p.done > 0 && p.done < p.total {
			rec.ETAMS = elapsed.Seconds() * 1e3 / float64(p.done) * float64(p.total-p.done)
		}
		data, err := json.Marshal(&rec)
		if err == nil {
			fmt.Fprintf(p.w, "%s\n", data)
		}
		return
	}
	fmt.Fprintf(p.w, "\r\x1b[K%s", p.status(elapsed, rate))
}

func (p *Progress) status(elapsed time.Duration, rate float64) string {
	var s string
	if p.total > 0 {
		s = fmt.Sprintf("[%d/%d]", p.done, p.total)
	} else {
		s = fmt.Sprintf("[%d]", p.done)
	}
	s += fmt.Sprintf(" %v, %.1fM events/s", elapsed.Round(time.Second), rate)
	if p.total > 0 && p.done > 0 && p.done < p.total {
		eta := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
		s += fmt.Sprintf(", ETA %v", eta.Round(time.Second))
	}
	if p.cached > 0 {
		s += fmt.Sprintf(", %d cached", p.cached)
	}
	if p.failed > 0 {
		s += fmt.Sprintf(", %d FAILED", p.failed)
	}
	return s
}

// OnResult returns a core.Opts.OnResult hook feeding this Progress, so
// core sweep drivers report through the same status line as Runner
// batches.
func (p *Progress) OnResult() func(core.Scenario, *core.Result, bool) {
	return func(_ core.Scenario, r *core.Result, cached bool) {
		var events uint64
		if r != nil {
			events = r.Events
		}
		p.Observe(events, cached)
	}
}
