package exp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/sim"
)

// quick returns a small, fast real scenario.
func quick(radix int) core.Scenario {
	s := core.Default(radix)
	s.Warmup = 200 * sim.Microsecond
	s.Measure = 400 * sim.Microsecond
	return s
}

// fakeRun builds a Runner whose simulations are stubbed by fn.
func fakeRun(workers int, fn func(core.Scenario) (*core.Result, error)) *Runner {
	return &Runner{Workers: workers, runFn: fn}
}

func jobs(n int) []Job {
	out := make([]Job, n)
	for i := range out {
		s := quick(6)
		s.Seed = uint64(i + 1)
		out[i] = Job{Name: fmt.Sprintf("job-%d", i), Scenario: s}
	}
	return out
}

func TestRunnerOrderingAndConcurrency(t *testing.T) {
	var live, peak atomic.Int32
	r := fakeRun(4, func(s core.Scenario) (*core.Result, error) {
		c := live.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		live.Add(-1)
		return &core.Result{Name: s.Name, Events: s.Seed}, nil
	})
	js := jobs(16)
	results, err := r.Run(context.Background(), js)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(js) {
		t.Fatalf("%d results", len(results))
	}
	for i, res := range results {
		if res.Job.Name != js[i].Name || res.Result.Events != uint64(i+1) {
			t.Fatalf("result %d out of order: %+v", i, res)
		}
		if res.Err != nil || res.Elapsed <= 0 {
			t.Fatalf("result %d: err=%v elapsed=%v", i, res.Err, res.Elapsed)
		}
	}
	if peak.Load() < 2 {
		t.Fatalf("jobs never overlapped (peak %d)", peak.Load())
	}
}

func TestRunnerPanicRecovery(t *testing.T) {
	r := fakeRun(4, func(s core.Scenario) (*core.Result, error) {
		if s.Seed == 3 {
			panic("simulated crash")
		}
		return &core.Result{Name: s.Name}, nil
	})
	results, err := r.Run(context.Background(), jobs(8))
	if err != nil {
		t.Fatalf("batch error: %v (a job panic must not abort the batch)", err)
	}
	for i, res := range results {
		if i == 2 { // job with seed 3
			var pe *par.PanicError
			if !errors.As(res.Err, &pe) || pe.Value != "simulated crash" {
				t.Fatalf("job %d: err = %v, want PanicError", i, res.Err)
			}
			if !strings.Contains(res.Err.Error(), "job-2") {
				t.Fatalf("panic error lacks job name: %v", res.Err)
			}
			if res.Result != nil {
				t.Fatal("panicked job carries a result")
			}
			continue
		}
		if res.Err != nil || res.Result == nil {
			t.Fatalf("job %d poisoned by sibling panic: %v", i, res.Err)
		}
	}
	if n := len(Errs(results)); n != 1 {
		t.Fatalf("Errs = %d", n)
	}
}

func TestRunnerJobErrorDoesNotAbort(t *testing.T) {
	r := fakeRun(2, func(s core.Scenario) (*core.Result, error) {
		if s.Seed%2 == 0 {
			return nil, errors.New("bad scenario")
		}
		return &core.Result{Name: s.Name}, nil
	})
	results, err := r.Run(context.Background(), jobs(6))
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		wantErr := (i+1)%2 == 0
		if (res.Err != nil) != wantErr {
			t.Fatalf("job %d: err = %v", i, res.Err)
		}
	}
}

func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	r := fakeRun(2, func(s core.Scenario) (*core.Result, error) {
		if started.Add(1) == 2 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return &core.Result{Name: s.Name}, nil
	})
	results, err := r.Run(ctx, jobs(64))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if int(started.Load()) >= 64 {
		t.Fatal("cancellation did not stop dispatch")
	}
	// Unrun slots are marked with the context error.
	sawSkipped := false
	for _, res := range results {
		if res.Result == nil {
			sawSkipped = true
			if !errors.Is(res.Err, context.Canceled) {
				t.Fatalf("skipped job err = %v", res.Err)
			}
		}
	}
	if !sawSkipped {
		t.Fatal("no skipped slots after cancellation")
	}
}

func TestRunnerRealSimulation(t *testing.T) {
	// End to end with the actual simulator: parallel results must be
	// identical to serial ones, job by job.
	js := jobs(3)
	serial, err := (&Runner{Workers: 1}).Run(context.Background(), js)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Runner{Workers: 3}).Run(context.Background(), js)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		a, b := serial[i].Result, parallel[i].Result
		if a == nil || b == nil {
			t.Fatalf("job %d failed: %v %v", i, serial[i].Err, parallel[i].Err)
		}
		if a.Summary != b.Summary || a.Events != b.Events {
			t.Fatalf("job %d: serial %v (%d ev) != parallel %v (%d ev)",
				i, a.Summary, a.Events, b.Summary, b.Events)
		}
	}
}

func TestProgressReporter(t *testing.T) {
	var sb strings.Builder
	p := NewProgress(&sb, 2)
	r := fakeRun(1, func(s core.Scenario) (*core.Result, error) {
		return &core.Result{Name: s.Name, Events: 1000}, nil
	})
	r.Reporter = p
	if _, err := r.Run(context.Background(), jobs(2)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "[1/2]") || !strings.Contains(out, "[2/2]") {
		t.Fatalf("progress output missing counters:\n%q", out)
	}
	if !strings.Contains(out, "events/s") {
		t.Fatalf("progress output missing rate:\n%q", out)
	}
	if p.Events() != 2000 {
		t.Fatalf("events = %d", p.Events())
	}
}
