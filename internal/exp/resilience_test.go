package exp

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/telemetry"
)

func TestRunnerRetriesPanicsThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	var sleeps []time.Duration
	r := fakeRun(1, func(s core.Scenario) (*core.Result, error) {
		if calls.Add(1) < 3 {
			panic("transient crash")
		}
		return &core.Result{Name: s.Name, Events: 7}, nil
	})
	r.Retries = 3
	r.Backoff = time.Millisecond
	r.sleepFn = func(d time.Duration) { sleeps = append(sleeps, d) }
	r.Spans = telemetry.NewTracker()

	results, err := r.Run(context.Background(), jobs(1))
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if res.Err != nil || res.Result == nil || res.Result.Events != 7 {
		t.Fatalf("retried job did not recover: %+v", res)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Attempts)
	}
	if res.Quarantined {
		t.Fatal("recovered job marked quarantined")
	}
	// Exponential backoff: 1ms before attempt 2, 2ms before attempt 3.
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(sleeps) != len(want) || sleeps[0] != want[0] || sleeps[1] != want[1] {
		t.Fatalf("backoff sleeps = %v, want %v", sleeps, want)
	}
	st := r.Spans.Stats()
	if st.Retries != 2 {
		t.Fatalf("tracker retries = %d, want 2", st.Retries)
	}
	if st.Quarantined != 0 {
		t.Fatalf("tracker quarantined = %d, want 0", st.Quarantined)
	}
	// Two failed attempt spans plus the final success.
	if st.Failed != 2 || st.Done != 1 {
		t.Fatalf("tracker failed/done = %d/%d, want 2/1", st.Failed, st.Done)
	}
}

func TestRunnerDoesNotRetryScenarioErrors(t *testing.T) {
	var calls atomic.Int32
	r := fakeRun(1, func(s core.Scenario) (*core.Result, error) {
		calls.Add(1)
		return nil, errors.New("invalid scenario")
	})
	r.Retries = 5
	results, err := r.Run(context.Background(), jobs(1))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("deterministic scenario error ran %d times", calls.Load())
	}
	if results[0].Attempts != 1 || results[0].Quarantined {
		t.Fatalf("scenario error result: %+v", results[0])
	}
}

func TestRunnerTimeoutWatchdog(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	r := fakeRun(1, func(s core.Scenario) (*core.Result, error) {
		<-release
		return &core.Result{Name: s.Name}, nil
	})
	r.Timeout = 5 * time.Millisecond
	r.Spans = telemetry.NewTracker()
	results, err := r.Run(context.Background(), jobs(1))
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	var te *TimeoutError
	if !errors.As(res.Err, &te) {
		t.Fatalf("err = %v, want TimeoutError", res.Err)
	}
	if te.Limit != r.Timeout || !strings.Contains(res.Err.Error(), "watchdog") {
		t.Fatalf("timeout error: %v", res.Err)
	}
	if !res.Quarantined {
		t.Fatal("hung job not quarantined")
	}
	if st := r.Spans.Stats(); st.Quarantined != 1 {
		t.Fatalf("tracker quarantined = %d", st.Quarantined)
	}
}

func TestRunnerQuarantinesAfterExhaustion(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := fakeRun(2, func(s core.Scenario) (*core.Result, error) {
		if s.Seed == 2 {
			panic("always crashes")
		}
		return &core.Result{Name: s.Name, Events: 1}, nil
	})
	r.Retries = 2
	r.Store = st
	r.Spans = telemetry.NewTracker()
	js := jobs(4)
	results, err := r.Run(context.Background(), js)
	if err != nil {
		t.Fatal(err)
	}
	// The poisoned job (index 1, seed 2) is quarantined; the rest finish.
	for i, res := range results {
		if i == 1 {
			var pe *par.PanicError
			if !errors.As(res.Err, &pe) || !res.Quarantined || res.Attempts != 3 {
				t.Fatalf("poisoned job: %+v", res)
			}
			continue
		}
		if res.Err != nil || res.Result == nil {
			t.Fatalf("job %d poisoned by quarantined sibling: %v", i, res.Err)
		}
	}
	// The quarantine report is on disk and reproducible.
	fp := Fingerprint(js[1].Scenario)
	path := filepath.Join(st.QuarantineDir(), fp[:16]+".job.json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("quarantine report: %v", err)
	}
	if !bytes.Contains(b, []byte("always crashes")) || !bytes.Contains(b, []byte(`"attempts": 3`)) {
		t.Fatalf("quarantine report content:\n%s", b)
	}
	if got := r.Spans.Stats().Quarantined; got != 1 {
		t.Fatalf("tracker quarantined = %d", got)
	}
	// The quarantine dir does not pollute the artifact count.
	if st.Len() != 3 {
		t.Fatalf("store holds %d artifacts, want 3", st.Len())
	}
}

func TestStoreQuarantinesCorruptArtifact(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var corrupt []string
	st.OnCorrupt(func(path string) { corrupt = append(corrupt, path) })
	s := quick(6)
	fp := Fingerprint(s)
	if err := os.WriteFile(st.path(fp), []byte("{torn artifa"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Load(s); ok {
		t.Fatal("torn artifact accepted")
	}
	// Moved aside with a reason sidecar, not deleted.
	moved := filepath.Join(st.QuarantineDir(), filepath.Base(st.path(fp)))
	if _, err := os.Stat(moved); err != nil {
		t.Fatalf("corrupt artifact not quarantined: %v", err)
	}
	note, err := os.ReadFile(moved + ".reason.json")
	if err != nil {
		t.Fatalf("reason sidecar: %v", err)
	}
	if !bytes.Contains(note, []byte("invalid JSON")) {
		t.Fatalf("reason sidecar content: %s", note)
	}
	if len(corrupt) != 1 || corrupt[0] != moved {
		t.Fatalf("onCorrupt observed %v", corrupt)
	}
	// The slot is free again: a fresh save round-trips.
	if err := st.Save(Job{Name: "fresh", Scenario: s}, &core.Result{Name: "fresh", Events: 3}, 0); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Load(s); !ok || got.Events != 3 {
		t.Fatalf("fresh artifact after quarantine: %v %v", got, ok)
	}
}

func TestArtifactCRCDetectsTampering(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := quick(6)
	if err := st.Save(Job{Name: "crc", Scenario: s}, &core.Result{Name: "crc", Events: 9}, 0); err != nil {
		t.Fatal(err)
	}
	path := st.path(Fingerprint(s))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"crc32"`)) {
		t.Fatalf("saved artifact carries no checksum:\n%s", b)
	}
	// A bit flip that keeps the JSON valid: change the stored name.
	flipped := bytes.Replace(b, []byte(`"name": "crc"`), []byte(`"name": "cra"`), 1)
	if bytes.Equal(flipped, b) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Load(s); ok {
		t.Fatal("tampered artifact passed the checksum")
	}
	if _, err := os.Stat(filepath.Join(st.QuarantineDir(), filepath.Base(path))); err != nil {
		t.Fatalf("tampered artifact not quarantined: %v", err)
	}
}

func TestManifestClassifiesAndRoundTrips(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := fakeRun(1, func(s core.Scenario) (*core.Result, error) {
		switch s.Seed {
		case 2:
			return nil, errors.New("bad scenario")
		case 3:
			panic("poison")
		}
		return &core.Result{Name: s.Name, Events: 1}, nil
	})
	r.Store = st
	js := jobs(5)
	results, err := r.Run(context.Background(), js)
	if err != nil {
		t.Fatal(err)
	}
	// Pretend the drain interrupted before the last job ran.
	results[4] = JobResult{Job: js[4], Err: context.Canceled}

	path, err := st.WriteManifest(js, results, true)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != ManifestName {
		t.Fatalf("manifest path: %s", path)
	}
	m, ok, err := st.ReadManifest()
	if err != nil || !ok {
		t.Fatalf("read manifest: %v %v", ok, err)
	}
	if !m.Interrupted || m.Total != 5 {
		t.Fatalf("manifest header: %+v", m)
	}
	if m.NumDone != 2 || m.NumFailed != 1 || m.NumQuarant != 1 || m.NumPending != 1 {
		t.Fatalf("manifest counts: done=%d failed=%d quarantined=%d pending=%d",
			m.NumDone, m.NumFailed, m.NumQuarant, m.NumPending)
	}
	if m.Done[0].Artifact == "" || m.Done[0].Fingerprint != Fingerprint(js[0].Scenario) {
		t.Fatalf("done entry: %+v", m.Done[0])
	}
	if m.Quarantined[0].Name != "job-2" || !strings.Contains(m.Quarantined[0].Error, "poison") {
		t.Fatalf("quarantined entry: %+v", m.Quarantined[0])
	}
	if m.Pending[0].Name != "job-4" {
		t.Fatalf("pending entry: %+v", m.Pending[0])
	}
	// The manifest does not count as an artifact (3 jobs actually
	// completed and saved before the pretend interruption).
	if st.Len() != 3 {
		t.Fatalf("store holds %d artifacts, want 3", st.Len())
	}
	// A missing manifest reads as absent, not an error.
	st2, _ := NewStore(t.TempDir())
	if _, ok, err := st2.ReadManifest(); ok || err != nil {
		t.Fatalf("empty-store manifest: %v %v", ok, err)
	}
}

// TestRunnerWritesInterruptedManifestOnCancel proves the graceful-drain
// contract: a cancelled batch with a store leaves MANIFEST.json behind
// marking what finished and what is still pending, so a -resume-from
// run can pick up exactly there.
func TestRunnerWritesInterruptedManifestOnCancel(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int32
	r := fakeRun(1, func(s core.Scenario) (*core.Result, error) {
		if done.Add(1) == 2 {
			// Cancel mid-batch: the two running/finished jobs keep their
			// results, the rest are skipped.
			cancel()
		}
		return &core.Result{Name: s.Name, Events: 1}, nil
	})
	r.Store = st

	results, err := r.Run(ctx, jobs(5))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run() err = %v, want context.Canceled", err)
	}
	skipped := 0
	for _, res := range results {
		if errors.Is(res.Err, context.Canceled) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("cancellation skipped no jobs; test cannot observe a drain")
	}

	m, ok, err := st.ReadManifest()
	if err != nil || !ok {
		t.Fatalf("ReadManifest after cancel: ok=%v err=%v", ok, err)
	}
	if !m.Interrupted {
		t.Error("manifest not marked interrupted")
	}
	if m.Total != 5 {
		t.Errorf("manifest total = %d, want 5", m.Total)
	}
	if m.NumPending != skipped {
		t.Errorf("manifest pending = %d, want %d skipped jobs", m.NumPending, skipped)
	}
	if m.NumDone == 0 || m.NumDone != 5-skipped {
		t.Errorf("manifest done = %d, want %d", m.NumDone, 5-skipped)
	}
	// The done entries point at artifacts that actually exist.
	for _, j := range m.Done {
		if _, err := os.Stat(filepath.Join(st.Dir(), j.Artifact)); err != nil {
			t.Errorf("manifest done artifact %s: %v", j.Artifact, err)
		}
	}
}
