package core

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
)

// faultBase is the reduced-window radix-8 scenario the fault tests run:
// the default population floods 8 hotspots, so congestion control is
// active and its control traffic is there to lose.
func faultBase(seed uint64) Scenario {
	s := Default(8)
	s.Seed = seed
	s.Warmup = 200 * sim.Microsecond
	s.Measure = 400 * sim.Microsecond
	return s
}

// synthFor synthesizes a fault plan sized to s at the given intensity.
func synthFor(t *testing.T, s *Scenario, seed uint64, intensity float64) *fault.Plan {
	t.Helper()
	tp, err := topo.FatTree(s.Radix)
	if err != nil {
		t.Fatal(err)
	}
	horizon := sim.Time(0).Add(s.Warmup + s.Measure)
	plan, err := fault.Synth(fault.SynthConfig{
		Seed:        seed,
		Intensity:   intensity,
		Links:       fault.FabricLinks(tp),
		Horizon:     horizon,
		SampleEvery: (s.Warmup + s.Measure) / 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestFaultedRunDeterministic: the same (scenario seed, fault plan) pair
// replays the identical trajectory — full event-stream digest, not just
// aggregates — and the injector's stats replay with it.
func TestFaultedRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("faulted determinism corpus is not short")
	}
	s := faultBase(1)
	s.Faults = synthFor(t, &s, 99, 0.6)
	s.Name = "faulted determinism"

	sig1, _, err := signedRun(s, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	sig2, _, err := signedRun(s, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sig1 != sig2 {
		t.Fatalf("faulted trajectory not reproducible:\n  %s\n  %s", sig1, sig2)
	}

	r1, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Faults == nil || r1.Faults.DroppedPackets() == 0 {
		t.Fatalf("intensity-0.6 plan dropped nothing: %+v", r1.Faults)
	}
	if !reflect.DeepEqual(r1.Faults, r2.Faults) {
		t.Fatalf("fault stats diverge:\n  %+v\n  %+v", r1.Faults, r2.Faults)
	}
}

// TestZeroIntensityPlanMatchesAbsent: a zero-intensity plan produces a
// trajectory byte-identical to no plan at all. The no-plan trajectory is
// itself pinned by the determinism golden file, so this transitively
// guards the faulted builder against perturbing golden runs.
func TestZeroIntensityPlanMatchesAbsent(t *testing.T) {
	if testing.Short() {
		t.Skip("trajectory comparison is not short")
	}
	s := faultBase(1)
	s.Name = "zero-plan transparency"
	bare, _, err := signedRun(s, false, nil)
	if err != nil {
		t.Fatal(err)
	}

	z := s
	z.Faults = synthFor(t, &z, 99, 0)
	if !z.Faults.Zero() {
		t.Fatalf("intensity 0 synthesized a non-zero plan: %+v", z.Faults)
	}
	zero, _, err := signedRun(z, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bare != zero {
		t.Fatalf("zero-intensity plan perturbed the trajectory:\n  no plan: %s\n  zero:    %s", bare, zero)
	}
	r, err := Run(z)
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults != nil {
		t.Fatalf("zero plan produced fault stats: %+v", r.Faults)
	}
}

// TestFaultedCorpusChecked runs the Table II corpus under synthesized
// faults — flaps, stalls, degrades and every drop class — with the
// runtime invariant checker attached: custody conservation must balance
// through the Dropped ledger with zero violations.
func TestFaultedCorpusChecked(t *testing.T) {
	if testing.Short() {
		t.Skip("checked fault corpus is not short")
	}
	base := faultBase(2)
	plan := synthFor(t, &base, 77, 0.7)
	dropped := false
	for _, s := range TableIIScenarios(base) {
		s.Faults = plan
		res, rep, err := RunChecked(s, CheckOpts{})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if rep.Total != 0 {
			t.Errorf("%s: %d violation(s) under faults, first: %s", s.Name, rep.Total, rep.Violations[0])
		}
		if res.Faults == nil {
			t.Fatalf("%s: no fault stats", s.Name)
		}
		if res.Faults.DroppedPackets() > 0 {
			dropped = true
		}
		if res.Faults.LinkDowns == 0 || res.Faults.LinkDowns != res.Faults.LinkUps {
			t.Errorf("%s: link transitions unbalanced: %d down / %d up",
				s.Name, res.Faults.LinkDowns, res.Faults.LinkUps)
		}
	}
	if !dropped {
		t.Error("corpus dropped no packets anywhere; plan too weak to test the ledger")
	}
}

// TestCCSurvivesLostCNPs: losing the backward notification must degrade
// congestion control, not wedge it. With every CNP dropped the sources
// never see a BECN and never throttle; with half dropped the CCTI still
// rises on the survivors and the recovery timer decays it back.
func TestCCSurvivesLostCNPs(t *testing.T) {
	if testing.Short() {
		t.Skip("CC survival runs are not short")
	}
	base := faultBase(3)
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.CCStats.BECNReceived == 0 || ref.CCStats.MaxCCTI == 0 {
		t.Fatalf("baseline has no CC activity to disturb: %+v", ref.CCStats)
	}

	all := base
	all.Faults = &fault.Plan{Seed: 7, Drop: fault.DropProbs{CNP: 1}}
	all.Name = "all CNPs lost"
	res, err := Run(all)
	if err != nil {
		t.Fatal(err)
	}
	if res.CCStats.CNPSent == 0 || res.Faults.DroppedCNP == 0 {
		t.Fatalf("no CNPs sent/dropped: cc=%+v faults=%+v", res.CCStats, res.Faults)
	}
	if res.CCStats.BECNReceived != 0 || res.CCStats.MaxCCTI != 0 {
		t.Fatalf("BECNs delivered despite total CNP loss: becn=%d maxccti=%d",
			res.CCStats.BECNReceived, res.CCStats.MaxCCTI)
	}

	half := base
	half.Faults = &fault.Plan{Seed: 7, Drop: fault.DropProbs{CNP: 0.5}}
	half.Name = "half the CNPs lost"
	res, err = Run(half)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.DroppedCNP == 0 {
		t.Fatalf("partial loss dropped nothing: %+v", res.Faults)
	}
	if res.CCStats.BECNReceived == 0 || res.CCStats.MaxCCTI == 0 {
		t.Fatalf("surviving CNPs did not throttle: %+v", res.CCStats)
	}
	if res.CCStats.TimerDecrements == 0 {
		t.Fatalf("no CCTI decay under partial CNP loss: %+v", res.CCStats)
	}
}

// TestRunDegradationSweep: the sweep driver covers intensity × CC
// deterministically — the zero-intensity point is a clean baseline and
// nonzero intensities record their losses.
func TestRunDegradationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("degradation sweep is not short")
	}
	base := Default(4)
	base.NumHotspots = 2
	base.Warmup = 100 * sim.Microsecond
	base.Measure = 300 * sim.Microsecond

	run := func() []DegradationPoint {
		pts, err := RunDegradationOpts(base, []float64{0, 0.6}, []uint64{1, 2}, Opts{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	pts := run()
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	z, f := pts[0], pts[1]
	if z.Off.DroppedPackets != 0 || z.On.DroppedPackets != 0 {
		t.Fatalf("zero intensity dropped packets: %+v", z)
	}
	if z.Off.Seeds != 2 || z.Off.Recovered != 2 || z.On.Recovered != 2 {
		t.Fatalf("zero-intensity bookkeeping: %+v", z)
	}
	if f.Off.DroppedPackets == 0 && f.On.DroppedPackets == 0 {
		t.Fatalf("faulted point dropped nothing: %+v", f)
	}
	if f.Off.AllGbps <= 0 || f.On.AllGbps <= 0 {
		t.Fatalf("faulted point starved completely: %+v", f)
	}
	if !reflect.DeepEqual(pts, run()) {
		t.Fatal("degradation sweep not deterministic across runs")
	}
}
