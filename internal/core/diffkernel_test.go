package core

import (
	"testing"

	"repro/internal/sim"
)

// diffBase is the reduced-window radix-8 scenario corpus the
// differential and invariant tests sweep: small enough to run both
// kernels repeatedly, large enough to exercise hotspot congestion, CC
// notification loops and recovery timers.
func diffBase(seed uint64) Scenario {
	s := Default(8)
	s.Seed = seed
	s.Warmup = 200 * sim.Microsecond
	s.Measure = 400 * sim.Microsecond
	return s
}

// TestDifferentialKernelTableII runs every Table II configuration over
// three seeds on both event-list kernels and asserts byte-identical
// trajectories, that the runtime invariant checker finds nothing, and
// that the checked run's trajectory equals the unchecked one (the
// checker never perturbs).
func TestDifferentialKernelTableII(t *testing.T) {
	if testing.Short() {
		t.Skip("differential corpus is not short")
	}
	for seed := uint64(1); seed <= 3; seed++ {
		for _, s := range TableIIScenarios(diffBase(seed)) {
			d, err := RunDifferential(s)
			if err != nil {
				t.Fatalf("%s seed %d: %v", s.Name, seed, err)
			}
			if !d.Match() {
				t.Errorf("%s seed %d: kernel trajectories diverge:", s.Name, seed)
				for _, m := range d.Mismatches() {
					t.Errorf("  %s", m)
				}
				continue
			}
			if d.Wheel.Records == 0 {
				t.Errorf("%s seed %d: empty event stream", s.Name, seed)
			}

			checked, rep, err := signedRun(s, false, &CheckOpts{})
			if err != nil {
				t.Fatalf("%s seed %d checked: %v", s.Name, seed, err)
			}
			if err := rep.Err(); err != nil {
				t.Errorf("%s seed %d: %v", s.Name, seed, err)
				for _, v := range rep.Violations {
					t.Errorf("  %s", v)
				}
			}
			if rep.Sweeps == 0 || rep.EventsChecked == 0 {
				t.Errorf("%s seed %d: checker idle (sweeps=%d events=%d)",
					s.Name, seed, rep.Sweeps, rep.EventsChecked)
			}
			if s.CCOn && s.CNodesActive && rep.CCTISteps == 0 {
				t.Errorf("%s seed %d: no CCTI transitions validated", s.Name, seed)
			}
			if checked != d.Wheel {
				t.Errorf("%s seed %d: checked run diverged from unchecked wheel run:\n  checked %v\n  wheel   %v",
					s.Name, seed, checked, d.Wheel)
			}
		}
	}
}

// TestCheckedReferenceKernel closes the matrix: the ReferenceFEL kernel
// under the invariant checker also produces the unchecked wheel
// trajectory with zero violations.
func TestCheckedReferenceKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("differential corpus is not short")
	}
	s := TableIIScenarios(diffBase(1))[3] // CC on, hotspots on
	wheel, _, err := signedRun(s, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, rep, err := signedRun(s, true, &CheckOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Error(err)
	}
	if ref != wheel {
		t.Errorf("checked reference run diverged:\n  ref   %v\n  wheel %v", ref, wheel)
	}
}
