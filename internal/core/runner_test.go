package core

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// quick returns a fast reduced-scale scenario for integration tests.
func quick(radix int) Scenario {
	s := Default(radix)
	s.Warmup = 2 * sim.Millisecond
	s.Measure = 3 * sim.Millisecond
	return s
}

func TestRunRejectsInvalid(t *testing.T) {
	s := Default(12)
	s.Radix = 3
	if _, err := Run(s); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunBasicResult(t *testing.T) {
	s := quick(8)
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Events == 0 {
		t.Fatal("no events executed")
	}
	if r.PopB+r.PopC+r.PopV != s.NumNodes() {
		t.Fatalf("population %d+%d+%d != %d", r.PopB, r.PopC, r.PopV, s.NumNodes())
	}
	if len(r.Hotspots) != 8 {
		t.Fatalf("hotspots = %d", len(r.Hotspots))
	}
	if r.Summary.TotalGbps <= 0 {
		t.Fatal("no throughput")
	}
	if len(r.Rates.RxPayload) != s.NumNodes() {
		t.Fatal("rates not per-node")
	}
	if !r.CCOn || r.CCStats.FECNMarked == 0 {
		t.Fatal("CC did not engage under silent-forest congestion")
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() *Result {
		s := quick(8)
		s.Seed = 42
		r, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Events != b.Events {
		t.Fatalf("event counts diverged: %d vs %d", a.Events, b.Events)
	}
	if a.Summary != b.Summary {
		t.Fatalf("summaries diverged: %v vs %v", a.Summary, b.Summary)
	}
	if a.CCStats != b.CCStats {
		t.Fatal("CC stats diverged")
	}
}

func TestRunSeedMatters(t *testing.T) {
	s := quick(8)
	s.Seed = 1
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Seed = 2
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary == b.Summary {
		t.Fatal("different seeds produced identical summaries")
	}
}

func TestTableIIShape(t *testing.T) {
	tab, err := RunTableII(quick(12))
	if err != nil {
		t.Fatal(err)
	}
	// Baselines: uniform V-only traffic, unaffected by CC.
	if tab.NoHotspotsNoCC < 2 || tab.NoHotspotsNoCC > 4 {
		t.Fatalf("baseline = %.3f", tab.NoHotspotsNoCC)
	}
	if d := tab.NoHotspotsCC / tab.NoHotspotsNoCC; d < 0.97 || d > 1.03 {
		t.Fatalf("CC changed the uncongested baseline by %.3f", d)
	}
	// Hotspots saturate near the sink rate with and without CC.
	if tab.HotspotsNoCC.Hot < 12 {
		t.Fatalf("hotspot rate without CC = %.3f", tab.HotspotsNoCC.Hot)
	}
	if tab.HotspotsCC.Hot < 0.85*tab.HotspotsNoCC.Hot {
		t.Fatalf("CC costs the hotspots too much: %.3f vs %.3f",
			tab.HotspotsCC.Hot, tab.HotspotsNoCC.Hot)
	}
	// Without CC the victims collapse well below baseline; with CC they
	// recover most of it.
	if tab.HotspotsNoCC.NonHot > 0.7*tab.NoHotspotsNoCC {
		t.Fatalf("no collapse without CC: %.3f vs baseline %.3f",
			tab.HotspotsNoCC.NonHot, tab.NoHotspotsNoCC)
	}
	if tab.HotspotsCC.NonHot < 1.3*tab.HotspotsNoCC.NonHot {
		t.Fatalf("CC recovery too weak: %.3f vs %.3f",
			tab.HotspotsCC.NonHot, tab.HotspotsNoCC.NonHot)
	}
	if tab.HotspotsCC.NonHot < 0.7*tab.NoHotspotsNoCC {
		t.Fatalf("CC-on victims far below baseline: %.3f vs %.3f",
			tab.HotspotsCC.NonHot, tab.NoHotspotsNoCC)
	}
	// Total throughput strictly improves.
	if tab.TotalCC <= tab.TotalNoCC {
		t.Fatalf("total: CC %.1f <= no-CC %.1f", tab.TotalCC, tab.TotalNoCC)
	}
}

func TestWindyNoHarmAtExtremes(t *testing.T) {
	// 100% B nodes at p=0 is pure uniform traffic: enabling CC must be
	// near-harmless (paper: a negligible penalty, -3% at full scale).
	base := quick(12)
	pts, err := RunWindySweep(base, 100, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	pt := pts[0]
	if pt.Improvement < 0.90 || pt.Improvement > 1.10 {
		t.Fatalf("p=0 improvement = %.3f, want ~1", pt.Improvement)
	}
}

func TestWindyP60Improvement(t *testing.T) {
	base := quick(12)
	pts, err := RunWindySweep(base, 100, []int{60})
	if err != nil {
		t.Fatal(err)
	}
	pt := pts[0]
	if pt.Improvement < 1.15 {
		t.Fatalf("p=60 improvement = %.3f", pt.Improvement)
	}
	if pt.NonHotOn <= pt.NonHotOff {
		t.Fatalf("CC did not raise non-hotspot rate: %.3f vs %.3f",
			pt.NonHotOn, pt.NonHotOff)
	}
	if pt.NonHotOn > pt.TMax*1.05 {
		t.Fatalf("non-hotspot rate %.3f above tmax %.3f", pt.NonHotOn, pt.TMax)
	}
	if pt.HotOn < 0.8*pt.HotOff {
		t.Fatalf("hotspots starved: %.3f vs %.3f", pt.HotOn, pt.HotOff)
	}
}

func TestSeparateHotspotVLProtectsVictims(t *testing.T) {
	// The set-aside-lane alternative: with CC off, giving hotspot
	// traffic its own VL must recover the victims on its own.
	s := quick(12)
	s.CCOn = false
	plain, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	s.SeparateHotspotVL = true
	sep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if sep.Summary.NonHotspotAvgGbps < 1.5*plain.Summary.NonHotspotAvgGbps {
		t.Fatalf("VL separation did not protect victims: %.3f vs %.3f",
			sep.Summary.NonHotspotAvgGbps, plain.Summary.NonHotspotAvgGbps)
	}
	// The congestion tree itself is untouched: hotspots stay saturated.
	if sep.Summary.HotspotAvgGbps < 12 {
		t.Fatalf("hotspot rate %.3f under VL separation", sep.Summary.HotspotAvgGbps)
	}
}

func TestMovingGainShrinksWithLifetime(t *testing.T) {
	base := quick(12)
	base.Measure = 4 * sim.Millisecond
	long := 2 * sim.Millisecond
	short := 250 * sim.Microsecond
	pts, err := RunMovingSweep(base, []sim.Duration{long, short})
	if err != nil {
		t.Fatal(err)
	}
	gain := func(p MovingPoint) float64 { return p.AllOn / p.AllOff }
	if gain(pts[0]) <= gain(pts[1]) {
		t.Fatalf("gain did not shrink: %v=%.3f %v=%.3f",
			long, gain(pts[0]), short, gain(pts[1]))
	}
	// Receive rates generally rise as hotspots move faster (the traffic
	// spreads itself); check the no-CC series.
	if pts[1].AllOff <= pts[0].AllOff {
		t.Fatalf("no-CC rate did not rise with faster moves: %.3f vs %.3f",
			pts[0].AllOff, pts[1].AllOff)
	}
}

// Property: random scenarios conserve traffic (nothing is delivered
// that was not injected) and respect the physical rate caps.
func TestConservationProperty(t *testing.T) {
	trial := func(seed uint64, fracB, p, hotspots int, ccOn, moving bool) {
		t.Helper()
		s := Default(8)
		s.Seed = seed
		s.FracBPct = fracB
		s.PPercent = p
		s.NumHotspots = hotspots
		s.CCOn = ccOn
		if moving {
			s.HotspotLifetime = 300 * sim.Microsecond
		}
		s.Warmup = 200 * sim.Microsecond
		s.Measure = 800 * sim.Microsecond
		res, err := Run(s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var tx, rx float64
		for i := range res.Rates.RxPayload {
			rx += res.Rates.RxPayload[i]
			tx += res.Rates.TxPayload[i]
			// Per-node receive cannot exceed the sink rate.
			if res.Rates.RxPayload[i] > 13.6e9*1.01 {
				t.Fatalf("seed %d node %d rx %.3g above sink cap", seed, i, res.Rates.RxPayload[i])
			}
			if res.Rates.TxPayload[i] > 13.5e9*1.01 {
				t.Fatalf("seed %d node %d tx %.3g above injection cap", seed, i, res.Rates.TxPayload[i])
			}
		}
		// Delivered payload over the window cannot exceed injected
		// payload plus what was in flight at the warmup boundary
		// (bounded by the fabric's total buffering, far under 2% here).
		if rx > tx*1.02+1e9 {
			t.Fatalf("seed %d: delivered %.4g of injected %.4g", seed, rx, tx)
		}
	}
	rng := sim.NewRNG(2024)
	for i := 0; i < 12; i++ {
		trial(uint64(i+1),
			rng.Intn(101), rng.Intn(101), 1+rng.Intn(8),
			rng.Intn(2) == 0, rng.Intn(2) == 0)
	}
}

func TestPrintFormats(t *testing.T) {
	var sb strings.Builder
	tab := &TableII{NoHotspotsNoCC: 2.7, TotalNoCC: 216, TotalCC: 1543}
	tab.Print(&sb)
	out := sb.String()
	for _, want := range []string{"Table II", "2.700", "216.0", "1543.0", "7.14x"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II output missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	PrintWindy(&sb, "5", 25, []WindyPoint{{P: 60, NonHotOn: 3.5, TMax: 4, Improvement: 8.7}})
	out = sb.String()
	for _, want := range []string{"Figure 5", "25% B nodes", "60", "8.70x"} {
		if !strings.Contains(out, want) {
			t.Errorf("windy output missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	PrintMoving(&sb, "9(a)", "80% C", []MovingPoint{{Lifetime: sim.Millisecond, AllOff: 0.467, AllOn: 0.723}})
	out = sb.String()
	for _, want := range []string{"Figure 9(a)", "80% C", "0.467", "0.723", "1.55x"} {
		if !strings.Contains(out, want) {
			t.Errorf("moving output missing %q:\n%s", want, out)
		}
	}
}
