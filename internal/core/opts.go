package core

import (
	"context"
	"sync"

	"repro/internal/check"
	"repro/internal/par"
)

// Opts configures how a sweep driver executes its independent
// simulations. The zero value runs serially with no hooks; every
// driver's plain entry point (RunSeeds, RunTableII, ...) is equivalent
// to its Opts variant with the zero value.
//
// Determinism guarantee: a sweep's outcome depends only on its
// scenarios, never on Workers. Runs execute concurrently, but results
// are collected in submission order and every reduction (aggregation,
// pairing, improvement factors) happens serially afterwards, so
// Workers=4 produces bit-identical output to Workers=1.
type Opts struct {
	// Ctx cancels the sweep between simulations; nil means Background.
	// A cancelled sweep returns ctx.Err() (individual simulations are
	// not interruptible mid-run).
	Ctx context.Context
	// Workers is the simulation worker-pool size: 0 (the zero value)
	// and 1 run serially, larger values fan independent runs out
	// across goroutines, and WorkersAll (negative) uses one worker per
	// CPU.
	Workers int
	// Lookup, when non-nil, is consulted before each simulation; a hit
	// substitutes the returned Result and skips the run entirely
	// (artifact-based resume; see internal/exp's Store).
	Lookup func(Scenario) (*Result, bool)
	// OnResult, when non-nil, observes every completed run: fresh runs
	// and Lookup hits alike (cached reports which). Calls are
	// serialized by the driver but arrive in completion order, not
	// submission order.
	OnResult func(s Scenario, r *Result, cached bool)
	// Check runs every fresh simulation under the runtime invariant
	// checker (internal/check) at its default configuration; a run with
	// violations fails the sweep. Checking does not perturb
	// trajectories, so results stay bit-identical to an unchecked
	// sweep.
	Check bool
}

// WorkersAll requests one worker per available CPU (the pool resolves
// it via runtime.GOMAXPROCS).
const WorkersAll = -1

// workers returns the effective pool size: the zero Opts value means
// serial (matching the historical drivers), negative means all CPUs.
func (o *Opts) workers() int {
	switch {
	case o.Workers < 0:
		return 0 // par.Map resolves 0 to GOMAXPROCS
	case o.Workers == 0:
		return 1
	}
	return o.Workers
}

// runBatch executes the scenarios on a worker pool and returns their
// results in submission order. It is the single execution funnel of
// every sweep driver.
func runBatch(o Opts, scenarios []Scenario) ([]*Result, error) {
	var mu sync.Mutex
	return par.Map(o.Ctx, o.workers(), len(scenarios), func(i int) (*Result, error) {
		s := scenarios[i]
		cached := false
		var r *Result
		if o.Lookup != nil {
			r, cached = o.Lookup(s)
		}
		if !cached {
			var err error
			if o.Check {
				var rep *check.Report
				if r, rep, err = RunChecked(s, CheckOpts{}); err == nil {
					err = rep.Err()
				}
			} else {
				r, err = Run(s)
			}
			if err != nil {
				return nil, err
			}
		}
		if o.OnResult != nil {
			mu.Lock()
			o.OnResult(s, r, cached)
			mu.Unlock()
		}
		return r, nil
	})
}
