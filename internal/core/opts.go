package core

import (
	"context"
	"sync"

	"repro/internal/check"
	"repro/internal/par"
	"repro/internal/telemetry"
)

// Opts configures how a sweep driver executes its independent
// simulations. The zero value runs serially with no hooks; every
// driver's plain entry point (RunSeeds, RunTableII, ...) is equivalent
// to its Opts variant with the zero value.
//
// Determinism guarantee: a sweep's outcome depends only on its
// scenarios, never on Workers. Runs execute concurrently, but results
// are collected in submission order and every reduction (aggregation,
// pairing, improvement factors) happens serially afterwards, so
// Workers=4 produces bit-identical output to Workers=1.
type Opts struct {
	// Ctx cancels the sweep between simulations; nil means Background.
	// A cancelled sweep returns ctx.Err() (individual simulations are
	// not interruptible mid-run).
	Ctx context.Context
	// Workers is the simulation worker-pool size: 0 (the zero value)
	// and 1 run serially, larger values fan independent runs out
	// across goroutines, and WorkersAll (negative) uses one worker per
	// CPU.
	Workers int
	// Lookup, when non-nil, is consulted before each simulation; a hit
	// substitutes the returned Result and skips the run entirely
	// (artifact-based resume; see internal/exp's Store).
	Lookup func(Scenario) (*Result, bool)
	// OnResult, when non-nil, observes every completed run: fresh runs
	// and Lookup hits alike (cached reports which). Calls are
	// serialized by the driver but arrive in completion order, not
	// submission order.
	OnResult func(s Scenario, r *Result, cached bool)
	// Check runs every fresh simulation under the runtime invariant
	// checker (internal/check) at its default configuration; a run with
	// violations fails the sweep. Checking does not perturb
	// trajectories, so results stay bit-identical to an unchecked
	// sweep.
	Check bool
	// Telemetry, when non-nil, attaches one in-sim time-series sampler
	// per fresh run (cache hits have no event stream) and folds finished
	// runs into the hub's cross-run aggregates. Samplers are pure bus
	// consumers, so a telemetry-on sweep produces bit-identical results
	// to a telemetry-off one.
	Telemetry *telemetry.Hub
	// Spans, when non-nil, records an orchestration span per run (begin
	// on worker pickup, end with event count / cache flag / error) for
	// the live sweep dashboard.
	Spans *telemetry.Tracker
}

// WorkersAll requests one worker per available CPU (the pool resolves
// it via runtime.GOMAXPROCS).
const WorkersAll = -1

// workers returns the effective pool size: the zero Opts value means
// serial (matching the historical drivers), negative means all CPUs.
func (o *Opts) workers() int {
	switch {
	case o.Workers < 0:
		return 0 // par.Map resolves 0 to GOMAXPROCS
	case o.Workers == 0:
		return 1
	}
	return o.Workers
}

// runBatch executes the scenarios on a worker pool and returns their
// results in submission order. It is the single execution funnel of
// every sweep driver.
func runBatch(o Opts, scenarios []Scenario) ([]*Result, error) {
	var mu sync.Mutex
	return par.MapWorker(o.Ctx, o.workers(), len(scenarios), func(worker, i int) (*Result, error) {
		s := scenarios[i]
		span := o.Spans.Begin(s.Name, worker)
		cached := false
		var r *Result
		if o.Lookup != nil {
			r, cached = o.Lookup(s)
		}
		if !cached {
			var err error
			if r, err = o.runOne(s); err != nil {
				o.Spans.End(span, 0, false, err.Error())
				return nil, err
			}
		}
		o.Spans.End(span, r.Events, cached, "")
		if o.OnResult != nil {
			mu.Lock()
			o.OnResult(s, r, cached)
			mu.Unlock()
		}
		return r, nil
	})
}

// runOne executes one fresh scenario under the sweep's instrumentation:
// the invariant checker when Check is set, and a telemetry sampler when
// the sweep carries a hub. With neither, it is exactly Run.
func (o *Opts) runOne(s Scenario) (*Result, error) {
	if o.Telemetry == nil {
		// Preserve the historical paths byte for byte.
		if o.Check {
			r, rep, err := RunChecked(s, CheckOpts{})
			if err == nil {
				err = rep.Err()
			}
			return r, err
		}
		return Run(s)
	}
	in, err := Build(s)
	if err != nil {
		return nil, err
	}
	smp := o.Telemetry.StartRun(s.Name)
	smp.Attach(in.bus())
	var ck *check.Checker
	if o.Check {
		ck = in.Check(CheckOpts{})
	}
	res := in.Execute()
	o.Telemetry.FinishRun(smp)
	if ck != nil {
		if err := ck.Report().Err(); err != nil {
			return res, err
		}
	}
	return res, nil
}
