package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// The determinism golden test pins the exact simulation trajectory: the
// aggregates of Table II and of one windy point at radix 12, plus an
// order-sensitive digest of the full flight-recorder event stream, are
// compared byte-for-byte against a golden file captured from the seed
// implementation (binary-heap FEL, per-packet heap allocation). Any
// kernel or memory-lifecycle optimization must leave every value
// untouched: run with -update only when an intentional model change
// alters the trajectory, and say so in the commit.
var updateGolden = flag.Bool("update", false, "rewrite the determinism golden file")

const goldenPath = "testdata/determinism_golden.json"

// goldenRecord is the serialized trajectory fingerprint. Float fields
// are formatted to 12 significant digits at comparison time, so the file
// is stable across encoding details.
type goldenRecord struct {
	// TableII rows at radix 12 (reduced windows).
	TableII map[string]string `json:"table_ii"`
	// Windy point (B=25%, p=60) with CC on, flight recorder attached.
	WindySummary map[string]string `json:"windy_summary"`
	WindyEvents  uint64            `json:"windy_events"`
	// ObsDigest is the FNV-1a digest over every flight-recorder event's
	// fields in publication order.
	ObsDigest  string `json:"obs_digest"`
	ObsRecords uint64 `json:"obs_records"`
	// CC activity counters of the windy run.
	FECNMarked   uint64 `json:"fecn_marked"`
	BECNReceived uint64 `json:"becn_received"`
	CNPSent      uint64 `json:"cnp_sent"`
}

// goldenBase is the reduced-window radix-12 scenario the golden
// trajectories run on.
func goldenBase() Scenario {
	s := Default(12)
	s.Warmup = 400 * sim.Microsecond
	s.Measure = 800 * sim.Microsecond
	return s
}

func g9(v float64) string { return fmt.Sprintf("%.12g", v) }

// buildGolden runs the golden workloads and assembles the record. The
// event stream is fingerprinted by obs.Digest — the same comparator the
// differential kernel check uses — so the golden file pins the exact
// hashing the live cross-implementation check relies on.
func buildGolden(t *testing.T) *goldenRecord {
	t.Helper()
	base := goldenBase()

	tab, err := RunTableII(base)
	if err != nil {
		t.Fatal(err)
	}
	rec := &goldenRecord{
		TableII: map[string]string{
			"no_hotspots_no_cc": g9(tab.NoHotspotsNoCC),
			"no_hotspots_cc":    g9(tab.NoHotspotsCC),
			"hotspots_no_cc_h":  g9(tab.HotspotsNoCC.Hot),
			"hotspots_no_cc_n":  g9(tab.HotspotsNoCC.NonHot),
			"hotspots_cc_h":     g9(tab.HotspotsCC.Hot),
			"hotspots_cc_n":     g9(tab.HotspotsCC.NonHot),
			"total_no_cc":       g9(tab.TotalNoCC),
			"total_cc":          g9(tab.TotalCC),
		},
	}

	// One windy point, flight recorder attached: the digest covers the
	// complete ordered event stream, so it pins not just the aggregates
	// but the entire observable trajectory.
	s := base
	s.FracBPct = 25
	s.PPercent = 60
	s.CNodesActive = true
	s.CCOn = true
	s.Name = "golden windy B=25% p=60 ccOn"
	in, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	ob := in.Observe(ObserveOpts{})
	dig := obs.NewDigest()
	ob.Bus.Subscribe(dig)
	res := in.Execute()

	rec.WindySummary = map[string]string{
		"hot":    g9(res.Summary.HotspotAvgGbps),
		"nonhot": g9(res.Summary.NonHotspotAvgGbps),
		"all":    g9(res.Summary.AllAvgGbps),
		"total":  g9(res.Summary.TotalGbps),
	}
	rec.WindyEvents = res.Events
	rec.ObsDigest = dig.Sum()
	rec.ObsRecords = dig.Records()
	rec.FECNMarked = res.CCStats.FECNMarked
	rec.BECNReceived = res.CCStats.BECNReceived
	rec.CNPSent = res.CCStats.CNPSent
	return rec
}

// TestDeterminismGolden verifies the simulation trajectory is
// byte-identical to the recorded seed trajectory across the whole
// stack: kernel event order, packet lifecycle, CC behaviour and the
// flight-recorder stream.
func TestDeterminismGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden trajectory run is not short")
	}
	got := buildGolden(t)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", goldenPath)
		return
	}

	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	var want goldenRecord
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}

	for k, w := range want.TableII {
		if g := got.TableII[k]; g != w {
			t.Errorf("Table II %s: got %s, golden %s", k, g, w)
		}
	}
	for k, w := range want.WindySummary {
		if g := got.WindySummary[k]; g != w {
			t.Errorf("windy %s: got %s, golden %s", k, g, w)
		}
	}
	if got.WindyEvents != want.WindyEvents {
		t.Errorf("windy events: got %d, golden %d", got.WindyEvents, want.WindyEvents)
	}
	if got.ObsDigest != want.ObsDigest || got.ObsRecords != want.ObsRecords {
		t.Errorf("obs stream: got %s over %d records, golden %s over %d",
			got.ObsDigest, got.ObsRecords, want.ObsDigest, want.ObsRecords)
	}
	if got.FECNMarked != want.FECNMarked || got.BECNReceived != want.BECNReceived || got.CNPSent != want.CNPSent {
		t.Errorf("cc stats: got fecn=%d becn=%d cnp=%d, golden fecn=%d becn=%d cnp=%d",
			got.FECNMarked, got.BECNReceived, got.CNPSent,
			want.FECNMarked, want.BECNReceived, want.CNPSent)
	}
}
