package core

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestDefaultScenario(t *testing.T) {
	s := Default(36)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumNodes() != 648 {
		t.Fatalf("NumNodes = %d", s.NumNodes())
	}
	// At the paper's scale the CCTI limit stays at Table I's 127:
	// 2 x 64 contributors per hotspot - 1.
	if s.CC.CCTILimit != 127 {
		t.Fatalf("CCTILimit = %d at radix 36", s.CC.CCTILimit)
	}
	// Reduced scale shrinks the table with the contributor count.
	// Radix 12: 7 contributors per hotspot -> limit 2*7-1 = 13.
	s12 := Default(12)
	if s12.CC.CCTILimit != 13 {
		t.Fatalf("CCTILimit = %d at radix 12, want 13", s12.CC.CCTILimit)
	}
}

func TestScenarioValidate(t *testing.T) {
	bad := []func(*Scenario){
		func(s *Scenario) { s.Radix = 3 },
		func(s *Scenario) { s.Radix = 0 },
		func(s *Scenario) { s.FracBPct = 101 },
		func(s *Scenario) { s.FracBPct = -1 },
		func(s *Scenario) { s.PPercent = 101 },
		func(s *Scenario) { s.FracCOfRestPct = -2 },
		func(s *Scenario) { s.NumHotspots = 0 },
		func(s *Scenario) { s.NumHotspots = s.NumNodes() },
		func(s *Scenario) { s.Measure = 0 },
		func(s *Scenario) { s.Warmup = -1 },
		func(s *Scenario) { s.HotspotLifetime = -1 },
		func(s *Scenario) { s.CC.CCT = nil },
		func(s *Scenario) { s.Fabric.NumVLs = 0 },
	}
	for i, mut := range bad {
		s := Default(12)
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid scenario accepted", i)
		}
	}
	// CC config errors are ignored when CC is off.
	s := Default(12)
	s.CCOn = false
	s.CC.CCT = nil
	if err := s.Validate(); err != nil {
		t.Errorf("CC-off scenario rejected: %v", err)
	}
}

func TestTMaxMatchesPaperValues(t *testing.T) {
	// Figure 5(a): 25% B nodes at p=0 has tmax 5.4 Gbit/s; the paper
	// quotes 5.4 and our closed form gives (162+98)*13.5/647.
	s := Default(36)
	s.FracBPct = 25
	s.PPercent = 0
	got := s.TMaxNonHotspotGbps()
	if math.Abs(got-5.425) > 0.01 {
		t.Fatalf("tmax(25%%B, p=0) = %.4f, want ~5.425", got)
	}
	// At p=100 only the V nodes feed the non-hotspots.
	s.PPercent = 100
	got = s.TMaxNonHotspotGbps()
	want := 98.0 * 13.5 / 647
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("tmax(25%%B, p=100) = %.4f, want %.4f", got, want)
	}
	// 100% B at p=0 offers 648*13.5/647 per non-hotspot, just under
	// the sink cap.
	s.FracBPct = 100
	s.PPercent = 0
	if got = s.TMaxNonHotspotGbps(); math.Abs(got-648*13.5/647) > 0.01 {
		t.Fatalf("tmax = %.4f, want %.4f", got, 648*13.5/647)
	}
	// In a tiny network the offered load exceeds the end-node receive
	// rate and tmax saturates at the sink cap.
	tiny := Default(4)
	tiny.FracBPct = 100
	tiny.PPercent = 0
	if got = tiny.TMaxNonHotspotGbps(); got != 13.6 {
		t.Fatalf("tmax cap = %.4f, want 13.6", got)
	}
	// 100% B at p=100 leaves nothing for the non-hotspots.
	s.PPercent = 100
	if got = s.TMaxNonHotspotGbps(); got != 0 {
		t.Fatalf("tmax = %.4f, want 0", got)
	}
}

func TestTMaxDecreasesInP(t *testing.T) {
	s := Default(18)
	s.FracBPct = 50
	prev := math.Inf(1)
	for p := 0; p <= 100; p += 10 {
		s.PPercent = p
		cur := s.TMaxNonHotspotGbps()
		if cur > prev {
			t.Fatalf("tmax increased at p=%d", p)
		}
		prev = cur
	}
}

func TestPaperPValues(t *testing.T) {
	ps := PaperPValues()
	if len(ps) != 11 || ps[0] != 0 || ps[10] != 100 {
		t.Fatalf("p values = %v", ps)
	}
}

func TestPaperLifetimes(t *testing.T) {
	lts := PaperLifetimes(1)
	if len(lts) != 8 {
		t.Fatalf("lifetimes = %v", lts)
	}
	if lts[0] != 10*sim.Millisecond || lts[len(lts)-1] != sim.Millisecond {
		t.Fatalf("range = %v .. %v", lts[0], lts[len(lts)-1])
	}
	for i := 1; i < len(lts); i++ {
		if lts[i] >= lts[i-1] {
			t.Fatal("lifetimes must decrease")
		}
	}
	half := PaperLifetimes(0.5)
	if half[0] != 5*sim.Millisecond {
		t.Fatalf("scaled lifetime = %v", half[0])
	}
}
