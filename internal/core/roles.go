package core

import (
	"fmt"

	"repro/internal/ib"
	"repro/internal/sim"
)

// Role classifies a node per section III of the paper.
type Role uint8

const (
	// RoleV nodes send purely uniform traffic (potential victims).
	RoleV Role = iota
	// RoleC nodes send all their traffic to their subset's hotspot.
	RoleC
	// RoleB nodes send p% to their subset's hotspot, the rest uniform.
	RoleB
)

func (r Role) String() string {
	switch r {
	case RoleV:
		return "V"
	case RoleC:
		return "C"
	default:
		return "B"
	}
}

// Population is the node-role assignment of one run.
type Population struct {
	// Roles holds each node's role, indexed by LID.
	Roles []Role
	// Subset holds the hotspot-subset index of each C or B node
	// (-1 for V nodes).
	Subset []int
	// Hotspots are the static hotspot nodes, one per subset.
	Hotspots []ib.LID
	// HotspotSet is the membership map of Hotspots.
	HotspotSet map[ib.LID]bool
}

// assignRoles draws the population: NumHotspots distinct hotspot nodes,
// FracBPct B nodes, and the remainder split FracCOfRestPct C /
// (100-FracCOfRestPct) V — all uniformly at random, matching the paper's
// "randomly distributed in the topology". Contributors are divided
// evenly into one subset per hotspot; a contributor never targets
// itself.
func assignRoles(s *Scenario, rng *sim.RNG) Population {
	n := s.NumNodes()
	p := Population{
		Roles:      make([]Role, n),
		Subset:     make([]int, n),
		HotspotSet: make(map[ib.LID]bool, s.NumHotspots),
	}
	perm := rng.Perm(n)

	// Hotspots first: distinct random nodes.
	p.Hotspots = make([]ib.LID, s.NumHotspots)
	for i := 0; i < s.NumHotspots; i++ {
		p.Hotspots[i] = ib.LID(perm[i])
		p.HotspotSet[p.Hotspots[i]] = true
	}

	// Roles over a fresh shuffle so hotspot nodes also get roles.
	perm = rng.Perm(n)
	numB := n * s.FracBPct / 100
	numC := (n - numB) * s.FracCOfRestPct / 100
	for i, node := range perm {
		switch {
		case i < numB:
			p.Roles[node] = RoleB
		case i < numB+numC:
			p.Roles[node] = RoleC
		default:
			p.Roles[node] = RoleV
		}
	}

	// Deal contributors round-robin into subsets, skipping a subset
	// whose hotspot is the node itself.
	next := 0
	for node := 0; node < n; node++ {
		if p.Roles[node] == RoleV {
			p.Subset[node] = -1
			continue
		}
		sub := next % s.NumHotspots
		if p.Hotspots[sub] == ib.LID(node) {
			next++
			sub = next % s.NumHotspots
		}
		p.Subset[node] = sub
		next++
	}
	return p
}

// Counts returns how many nodes hold each role.
func (p *Population) Counts() (b, c, v int) {
	for _, r := range p.Roles {
		switch r {
		case RoleB:
			b++
		case RoleC:
			c++
		default:
			v++
		}
	}
	return
}

func (p *Population) String() string {
	b, c, v := p.Counts()
	return fmt.Sprintf("pop{B=%d C=%d V=%d hotspots=%d}", b, c, v, len(p.Hotspots))
}
