package core

import (
	"testing"

	"repro/internal/telemetry"
)

// TestTelemetryDoesNotPerturbSweep asserts the acceptance criterion at
// the sweep level: a sweep with a telemetry hub and span tracker
// attached produces bit-identical results to a bare one — the sampler
// is a pure bus consumer, so the trajectory cannot move.
func TestTelemetryDoesNotPerturbSweep(t *testing.T) {
	s := quick(8)
	seeds := []uint64{1, 2}
	base, err := RunSeedsOpts(s, seeds, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	hub := telemetry.NewHub(0)
	tr := telemetry.NewTracker()
	got, err := RunSeedsOpts(s, seeds, Opts{Workers: 2, Telemetry: hub, Spans: tr})
	if err != nil {
		t.Fatal(err)
	}
	if base.Events.Mean() != got.Events.Mean() || base.Events.Max() != got.Events.Max() {
		t.Fatalf("event counts changed under telemetry: %v != %v", base.Events.Mean(), got.Events.Mean())
	}
	if base.Total.Mean() != got.Total.Mean() || base.Hotspot.Mean() != got.Hotspot.Mean() {
		t.Fatalf("throughput changed under telemetry: %v != %v", base.Total.Mean(), got.Total.Mean())
	}

	snap := hub.Snapshot()
	if snap.Runs != len(seeds) || snap.Active != 0 {
		t.Fatalf("hub folded %d runs (%d active), want %d", snap.Runs, snap.Active, len(seeds))
	}
	if snap.Completion.Count == 0 {
		t.Fatal("no message completions aggregated")
	}
	if len(snap.HotPorts) == 0 {
		t.Fatal("no hot ports ranked")
	}
	if snap.Live == nil || !snap.LiveDone {
		t.Fatalf("idle hub should expose the last run: %+v", snap.Live)
	}
	if len(snap.Live.HotspotGbps.V) == 0 && len(snap.Live.OtherGbps.V) == 0 {
		t.Fatal("live snapshot has no rate series")
	}

	st := tr.Stats()
	if st.Done != len(seeds) || st.Failed != 0 {
		t.Fatalf("span stats: %+v", st)
	}
	if st.Events == 0 {
		t.Fatal("spans recorded no events")
	}
}

// TestTelemetryWithCheckedTreedBatch exercises the tournament path: the
// sampler shares the bus with the tree analyzer and invariant checker.
func TestTelemetryWithCheckedTreedBatch(t *testing.T) {
	s := quick(8)
	hub := telemetry.NewHub(0)
	tr := telemetry.NewTracker()
	tr.SetTotal(2)
	s2 := s
	s2.Seed = 7
	res, err := RunTreedBatch(Opts{Check: true, Telemetry: hub, Spans: tr}, []Scenario{s, s2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Trees == nil {
		t.Fatalf("treed results: %+v", res)
	}
	snap := hub.Snapshot()
	if snap.Runs != 2 {
		t.Fatalf("hub runs = %d", snap.Runs)
	}
	if st := tr.Stats(); st.Done != 2 || st.Total != 2 {
		t.Fatalf("span stats: %+v", st)
	}
}

// TestObserveTelemetryOption covers the single-run attachment path the
// inspection CLI uses.
func TestObserveTelemetryOption(t *testing.T) {
	in, err := Build(tiny())
	if err != nil {
		t.Fatal(err)
	}
	smp := telemetry.NewSampler(in.Scenario.Name, 0)
	in.Observe(ObserveOpts{Telemetry: smp})
	in.Execute()
	smp.Finish()
	snap := smp.Snapshot()
	if snap.Completion.Count == 0 {
		t.Fatal("sampler saw no message completions")
	}
	if len(snap.QueuedKB.V) == 0 {
		t.Fatal("sampler produced no queue series")
	}
}
