package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// tiny returns a very short, very small scenario for streaming-consumer
// tests where every event is serialized.
func tiny() Scenario {
	s := Default(4)
	s.NumHotspots = 2
	s.Warmup = 100 * sim.Microsecond
	s.Measure = 200 * sim.Microsecond
	return s
}

func TestObserveTreeClassifiesContributorsAndVictims(t *testing.T) {
	// Windy forest: every node is a B node sending p% into its subset's
	// hotspot — the paper's figure-5 population — so every source owns
	// both a contributor flow (into the hotspot) and victim flows
	// (uniform remainder).
	s := quick(8)
	s.FracBPct, s.PPercent = 100, 60
	in, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	ob := in.Observe(ObserveOpts{Tree: true, Counters: true, CCTILog: true})
	in.Execute()

	rep := ob.TreeReport()
	if rep == nil || len(rep.Trees) == 0 {
		t.Fatal("no congestion trees reconstructed")
	}

	// Every reconstructed tree must sit at a true hotspot, and all the
	// paper's hotspots endure enough marking over the run to be found.
	hot := rep.HotspotSet()
	for dst := range hot {
		if !in.Pop.HotspotSet[dst] {
			t.Errorf("tree at %d is not a real hotspot", dst)
		}
	}
	if len(rep.Trees) != len(in.Pop.Hotspots) {
		t.Errorf("reconstructed %d trees, want %d", len(rep.Trees), len(in.Pop.Hotspots))
	}

	// Classification: a flow is a contributor iff it feeds a hotspot.
	if rep.Contributors == 0 || rep.Victims == 0 {
		t.Fatalf("contributors=%d victims=%d, want both > 0", rep.Contributors, rep.Victims)
	}
	for f, class := range rep.Flows {
		want := obs.FlowVictim
		if in.Pop.HotspotSet[f.Dst] {
			want = obs.FlowContributor
		}
		if class != want {
			t.Fatalf("flow %d->%d classified %v, want %v", f.Src, f.Dst, class, want)
		}
	}

	// Tree structure: the root of each tree is the congested host-facing
	// port, and recorded contributors all target that tree's hotspot.
	for _, tr := range rep.Trees {
		if !tr.Root.HostPort {
			t.Errorf("tree at %d rooted at fabric-internal port %v", tr.Dst, tr.Root.Key)
		}
		if tr.Root.Marks == 0 {
			t.Errorf("tree at %d root has no marks", tr.Dst)
		}
		for _, f := range tr.Contributors {
			if f.Dst != tr.Dst {
				t.Errorf("tree at %d lists contributor %d->%d", tr.Dst, f.Src, f.Dst)
			}
		}
	}

	// The counter registry saw the same congestion.
	marks, _, fwd, _ := ob.Registry.Totals()
	if marks == 0 || fwd == 0 {
		t.Fatalf("registry totals: marks=%d fwd=%d", marks, fwd)
	}
	if _, hottest := ob.Registry.HottestPort(); hottest == nil || hottest.FECNMarks == 0 {
		t.Fatal("no hottest port")
	}
	if len(ob.CCTI.Samples) == 0 {
		t.Fatal("CCTI log is empty despite CC activity")
	}

	var sb strings.Builder
	rep.WriteTo(&sb)
	if !strings.Contains(sb.String(), "contributors") {
		t.Fatalf("report text missing summary: %q", sb.String())
	}
}

func TestObserveSilentForestContributorsAreCNodes(t *testing.T) {
	// Silent forest (Table II): C nodes aim everything at their subset's
	// hotspot, V nodes are purely uniform. Every C-node flow must come
	// out a contributor.
	s := quick(8)
	in, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	ob := in.Observe(ObserveOpts{Tree: true})
	in.Execute()
	rep := ob.TreeReport()
	if rep == nil || len(rep.Trees) == 0 {
		t.Fatal("no congestion trees reconstructed")
	}
	for f, class := range rep.Flows {
		if in.Pop.Roles[f.Src] == RoleC && class != obs.FlowContributor {
			t.Fatalf("C-node flow %d->%d classified %v", f.Src, f.Dst, class)
		}
	}
	// Every C node is a contributor source (V nodes may additionally
	// graze a hotspot with uniform traffic, so >= rather than ==).
	nC := 0
	for _, role := range in.Pop.Roles {
		if role == RoleC {
			nC++
		}
	}
	if rep.ContributorSrcs < nC {
		t.Fatalf("contributor sources %d < %d C nodes", rep.ContributorSrcs, nC)
	}
	if rep.VictimSrcs == 0 {
		t.Fatal("no victim sources")
	}
}

func TestObserveStreamsAndClose(t *testing.T) {
	s := tiny()
	in, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	var events, chrome bytes.Buffer
	ob := in.Observe(ObserveOpts{Events: &events, ChromeTrace: &chrome})
	in.Execute()
	if err := ob.Close(); err != nil {
		t.Fatal(err)
	}
	nj, nc := ob.EventsWritten()
	if nj == 0 || nc == 0 {
		t.Fatalf("events written: jsonl=%d chrome=%d", nj, nc)
	}

	// Every JSONL line is a standalone JSON object with a known kind.
	lines := strings.Split(strings.TrimRight(events.String(), "\n"), "\n")
	if uint64(len(lines)) != nj {
		t.Fatalf("jsonl lines=%d, counter=%d", len(lines), nj)
	}
	kinds := make(map[string]bool)
	for _, ln := range lines {
		var e struct {
			Kind string  `json:"kind"`
			TUs  float64 `json:"t_us"`
		}
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		if e.Kind == "" {
			t.Fatalf("line missing kind: %q", ln)
		}
		kinds[e.Kind] = true
	}
	for _, want := range []string{"packet_sent", "packet_delivered", "queue_sampled"} {
		if !kinds[want] {
			t.Errorf("no %s events in log (kinds: %v)", want, kinds)
		}
	}

	// The Chrome trace is one valid trace_event document.
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace empty")
	}
	for _, ev := range doc.TraceEvents {
		if _, ok := ev["ph"].(string); !ok {
			t.Fatalf("trace event missing phase: %v", ev)
		}
	}
}

func TestObserveEventLogDeterministic(t *testing.T) {
	run := func() string {
		s := tiny()
		s.Seed = 7
		in, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		ob := in.Observe(ObserveOpts{Events: &buf})
		in.Execute()
		if err := ob.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatal("event log differs between identical runs")
	}
}

func TestObserveDoesNotPerturbResult(t *testing.T) {
	// Attaching the full flight recorder must not change the simulated
	// trajectory: same seed, same result, observed or not.
	base := func() *Result {
		s := tiny()
		r, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()
	in, err := Build(tiny())
	if err != nil {
		t.Fatal(err)
	}
	var events, chrome bytes.Buffer
	ob := in.Observe(ObserveOpts{
		Events: &events, ChromeTrace: &chrome,
		Tree: true, Counters: true, CCTILog: true,
	})
	got := in.Execute()
	if err := ob.Close(); err != nil {
		t.Fatal(err)
	}
	if got.Events != base.Events {
		t.Fatalf("event count changed under observation: %d != %d", got.Events, base.Events)
	}
	if got.Summary.TotalGbps != base.Summary.TotalGbps {
		t.Fatalf("throughput changed under observation: %v != %v", got.Summary.TotalGbps, base.Summary.TotalGbps)
	}
}

func TestObserveAfterExecutePanics(t *testing.T) {
	in, err := Build(tiny())
	if err != nil {
		t.Fatal(err)
	}
	in.Execute()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	in.Observe(ObserveOpts{})
}
