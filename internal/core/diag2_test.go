package core

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/cc"
	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// TestDiagThresholdSweep compares threshold reference multiples.
func TestDiagThresholdSweep(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic")
	}
	for _, factor := range []int{2, 3, 4} {
		for _, radix := range []int{12, 18} {
			s := Default(radix)
			contribs := s.NumNodes() * 80 / 100 / s.NumHotspots
			s.CC.CCTILimit = uint16(factor*contribs - 1)
			s.CC.ThresholdRefMultiple = 4
			s.Warmup = 4 * sim.Millisecond
			s.Measure = 8 * sim.Millisecond
			s.CCOn = true
			on, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Printf("limit=%3d radix=%2d: hot=%6.3fG non=%6.3fG total=%7.1fG maxCCTI=%d marks=%d\n",
				s.CC.CCTILimit, radix, on.Summary.HotspotAvgGbps, on.Summary.NonHotspotAvgGbps,
				on.Summary.TotalGbps, on.CCStats.MaxCCTI, on.CCStats.FECNMarked)
		}
	}
}

// TestDiagWindy prints a reduced figure-8-style sweep (100% B nodes).
func TestDiagWindy(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic")
	}
	base := Default(18)
	for _, fracB := range []int{25, 100} {
		pts, err := RunWindySweep(base, fracB, []int{0, 30, 60, 90, 100})
		if err != nil {
			t.Fatal(err)
		}
		PrintWindy(os.Stdout, "diag", fracB, pts)
	}
}

// TestDiagMoving prints a reduced figure-9(a)-style sweep.
func TestDiagMoving(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic")
	}
	base := Default(12)
	lts := []sim.Duration{2 * sim.Millisecond, 1 * sim.Millisecond, 500 * sim.Microsecond, 250 * sim.Microsecond}
	pts, err := RunMovingSweep(base, lts)
	if err != nil {
		t.Fatal(err)
	}
	PrintMoving(os.Stdout, "diag", "80% C / 20% V", pts)
}

// TestDiagHotspot traces one hotspot's rate and its contributors' CCTI.
func TestDiagHotspot(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic")
	}
	s := Default(12)
	s.CCOn = true

	tp, _ := topo.FatTree(s.Radix)
	lft, _ := topo.ComputeLFT(tp)
	simr := sim.New()
	net, _ := fabric.New(simr, tp, lft, s.Fabric, fabric.Hooks{})
	mgr, _ := cc.New(net, s.CC)
	net.SetHooks(mgr.Hooks())

	root := sim.NewRNG(s.Seed)
	pop := assignRoles(&s, root.Derive(1))
	targeters := buildTargeters(&s, &pop, root.Derive(2))
	var contributors []ib.LID
	h0 := pop.Hotspots[0]
	for node := 0; node < s.NumNodes(); node++ {
		role := pop.Roles[node]
		p := 0
		var hs traffic.Targeter
		if role != RoleV {
			p = 100
			hs = targeters[pop.Subset[node]]
			if pop.Subset[node] == 0 {
				contributors = append(contributors, ib.LID(node))
			}
		}
		gen, err := traffic.NewGenerator(traffic.NodeConfig{
			LID: ib.LID(node), NumNodes: s.NumNodes(), PPercent: p, Hotspot: hs,
			InjectionRate: s.Fabric.InjectionRate, Throttle: mgr,
			RNG: root.Derive(1000 + uint64(node)),
		})
		if err != nil {
			t.Fatal(err)
		}
		net.HCA(ib.LID(node)).SetSource(gen)
	}
	t.Logf("hotspot %d has %d contributors; fair share %.2fG -> CCTI ~%.0f",
		h0, len(contributors), 13.6/float64(len(contributors)),
		20.0/(13.6/float64(len(contributors)))-1)
	net.Start()
	var prev uint64
	step := 100 * sim.Microsecond
	for i := 1; i <= 60; i++ {
		simr.RunUntil(sim.Time(0).Add(sim.Duration(i) * step))
		cur := net.HCA(h0).Counters().RxBytes
		sum, maxc, minc := 0, uint16(0), uint16(9999)
		for _, c := range contributors {
			v := mgr.CCTI(c, h0)
			sum += int(v)
			if v > maxc {
				maxc = v
			}
			if v < minc {
				minc = v
			}
		}
		st := mgr.Stats()
		fmt.Printf("t=%6v rate=%6.2fG ccti(avg=%4.1f min=%d max=%d) marks=%d becn=%d\n",
			sim.Duration(i)*step, float64(cur-prev)*8/step.Seconds()/1e9,
			float64(sum)/float64(len(contributors)), minc, maxc, st.FECNMarked, st.BECNReceived)
		prev = cur
	}
	_ = metrics.Gbps
}
