package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestRunSeedsParallelDeterminism is the determinism guarantee of the
// experiment harness: fanning the per-seed runs out across a worker
// pool must produce bit-identical aggregates to the serial path.
func TestRunSeedsParallelDeterminism(t *testing.T) {
	s := quick(6)
	seeds := []uint64{1, 2, 3, 4, 5, 6}
	serial, err := RunSeedsOpts(s, seeds, Opts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSeedsOpts(s, seeds, Opts{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The accumulators must match exactly: the same samples were added
	// in the same (submission) order.
	check := func(name string, a, b float64) {
		if a != b {
			t.Errorf("%s: serial %v != parallel %v", name, a, b)
		}
	}
	check("hotspot mean", serial.Hotspot.Mean(), parallel.Hotspot.Mean())
	check("hotspot var", serial.Hotspot.Var(), parallel.Hotspot.Var())
	check("nonhotspot mean", serial.NonHotspot.Mean(), parallel.NonHotspot.Mean())
	check("nonhotspot var", serial.NonHotspot.Var(), parallel.NonHotspot.Var())
	check("all mean", serial.All.Mean(), parallel.All.Mean())
	check("total mean", serial.Total.Mean(), parallel.Total.Mean())
	check("total min", serial.Total.Min(), parallel.Total.Min())
	check("total max", serial.Total.Max(), parallel.Total.Max())
	check("total ci95", serial.Total.CI95(), parallel.Total.CI95())
	check("events mean", serial.Events.Mean(), parallel.Events.Mean())
}

// TestWindySweepParallelDeterminism covers the paired (CC off/on)
// reduction: point order and improvement factors must not depend on
// the worker count.
func TestWindySweepParallelDeterminism(t *testing.T) {
	s := quick(6)
	ps := []int{0, 50, 100}
	serial, err := RunWindySweepOpts(s, 100, ps, Opts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunWindySweepOpts(s, 100, ps, Opts{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("point %d: serial %+v != parallel %+v", i, serial[i], parallel[i])
		}
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: no run should execute
	ran := 0
	_, err := RunSeedsOpts(quick(6), []uint64{1, 2, 3}, Opts{
		Ctx:      ctx,
		OnResult: func(Scenario, *Result, bool) { ran++ },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran != 0 {
		t.Fatalf("%d runs executed under a cancelled context", ran)
	}
}

func TestSweepLookupAndOnResult(t *testing.T) {
	s := quick(6)
	seeds := []uint64{1, 2}
	// Prime a cache with the real results.
	cache := map[uint64]*Result{}
	want, err := RunSeedsOpts(s, seeds, Opts{
		OnResult: func(sc Scenario, r *Result, cached bool) {
			if cached {
				t.Error("fresh run reported as cached")
			}
			cache[sc.Seed] = r
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cache) != len(seeds) {
		t.Fatalf("OnResult saw %d runs", len(cache))
	}
	// Re-run via Lookup only: no simulation may execute, and the
	// aggregates must be identical.
	hits := 0
	got, err := RunSeedsOpts(s, seeds, Opts{
		Workers: 2,
		Lookup: func(sc Scenario) (*Result, bool) {
			r, ok := cache[sc.Seed]
			if !ok {
				t.Errorf("lookup miss for seed %d", sc.Seed)
			}
			return r, ok
		},
		OnResult: func(sc Scenario, r *Result, cached bool) {
			if !cached {
				t.Error("cache hit reported as fresh")
			}
			hits++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hits != len(seeds) {
		t.Fatalf("OnResult saw %d cache hits", hits)
	}
	if got.Total.Mean() != want.Total.Mean() || got.Events.Mean() != want.Events.Mean() {
		t.Fatal("resumed aggregates differ from fresh ones")
	}
}

func TestScanEmptyBestAndPrint(t *testing.T) {
	s := &Scan{Name: "threshold"}
	if best := s.Best(); best != (ScanPoint{}) {
		t.Fatalf("Best of empty scan = %+v", best)
	}
	var sb strings.Builder
	s.Print(&sb) // must not panic
	if strings.Contains(sb.String(), "best total") {
		t.Fatalf("empty scan printed a best line:\n%s", sb.String())
	}
	one := &Scan{Name: "threshold", Points: []ScanPoint{{Value: 5, Total: 10}}}
	sb.Reset()
	one.Print(&sb)
	if !strings.Contains(sb.String(), "best total at threshold=5") {
		t.Fatalf("best line missing:\n%s", sb.String())
	}
}

func TestTableIIOptsMatchesSerial(t *testing.T) {
	base := quick(6)
	want, err := RunTableII(base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunTableIIOpts(base, Opts{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if *want != *got {
		t.Fatalf("serial %+v != parallel %+v", want, got)
	}
}

func TestMovingSweepOptsMatchesSerial(t *testing.T) {
	base := quick(6)
	lts := []sim.Duration{200 * sim.Microsecond, 400 * sim.Microsecond}
	want, err := RunMovingSweep(base, lts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunMovingSweepOpts(base, lts, Opts{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("point %d: %+v != %+v", i, want[i], got[i])
		}
	}
}
