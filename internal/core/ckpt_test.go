package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// The acceptance oracle of checkpoint/restore: run a scenario straight
// through with the trajectory digest attached, then run it again but
// "crash" mid-flight — checkpoint, discard the instance, restore from
// the bytes — and compare complete KernelSignatures. Byte-identical
// digests over the full event stream mean the continuation is
// indistinguishable from never having stopped.

func ckptSig(dig *obs.Digest, res *Result) KernelSignature {
	return KernelSignature{
		Digest:          dig.Sum(),
		Records:         dig.Records(),
		Events:          res.Events,
		HotGbps:         res.Summary.HotspotAvgGbps,
		NonHotGbps:      res.Summary.NonHotspotAvgGbps,
		AllGbps:         res.Summary.AllAvgGbps,
		TotalGbps:       res.Summary.TotalGbps,
		FECNMarked:      res.CCStats.FECNMarked,
		BECNReceived:    res.CCStats.BECNReceived,
		CNPSent:         res.CCStats.CNPSent,
		ACKSent:         res.CCStats.ACKSent,
		TimerDecrements: res.CCStats.TimerDecrements,
		MaxCCTI:         res.CCStats.MaxCCTI,
	}
}

// straightSig runs s to completion with a digest attached.
func straightSig(t *testing.T, s Scenario) KernelSignature {
	t.Helper()
	in, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	dig := in.AttachDigest()
	res := in.Execute()
	return ckptSig(dig, res)
}

// resumedSig runs s until cut, checkpoints, abandons the instance, and
// finishes the run on the restored copy.
func resumedSig(t *testing.T, s Scenario, cut sim.Time) KernelSignature {
	t.Helper()
	in, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	in.AttachDigest()
	in.executed = true
	in.start()
	in.Net.Sim().RunUntil(cut)
	var buf bytes.Buffer
	if err := in.Checkpoint(&buf); err != nil {
		t.Fatalf("checkpoint at %v: %v", cut, err)
	}
	re, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !re.Restored() {
		t.Fatal("restored instance not marked restored")
	}
	if re.dig == nil {
		t.Fatal("restored instance lost the trajectory digest")
	}
	res := re.Execute()
	return ckptSig(re.dig, res)
}

func requireIdentical(t *testing.T, name string, straight, resumed KernelSignature) {
	t.Helper()
	if straight.Records == 0 {
		t.Fatalf("%s: empty event stream; the digest comparison would prove nothing", name)
	}
	if straight != resumed {
		d := &DiffReport{Wheel: straight, Ref: resumed}
		t.Errorf("%s: continuation diverges from uninterrupted run:\n  %s",
			name, strings.Join(d.Mismatches(), "\n  "))
	}
}

// TestCheckpointRestoreContinuation covers the Table II corpus at radix
// 8 (CC on/off, hotspots on/off, silent C nodes) with cuts both before
// and after the warmup boundary, so both a pending and a fired metrics
// snapshot round-trip.
func TestCheckpointRestoreContinuation(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint corpus is not short")
	}
	base := faultBase(1)
	cuts := []sim.Time{
		sim.Time(0).Add(100 * sim.Microsecond), // inside warmup
		sim.Time(0).Add(350 * sim.Microsecond), // inside measurement
	}
	for _, s := range TableIIScenarios(base) {
		straight := straightSig(t, s)
		for _, cut := range cuts {
			requireIdentical(t, s.Name, straight, resumedSig(t, s, cut))
		}
	}
}

// TestCheckpointRestoreVariants covers the model features whose state
// lives outside the Table II defaults: moving hotspots, SL-level
// throttling, the separate hotspot VL, and the rcm backend.
func TestCheckpointRestoreVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint variants are not short")
	}
	cut := sim.Time(0).Add(350 * sim.Microsecond)

	moving := faultBase(2)
	moving.Name = "ckpt moving hotspots"
	moving.HotspotLifetime = 150 * sim.Microsecond

	sl := faultBase(3)
	sl.Name = "ckpt SL-level throttling"
	sl.CC.SLLevel = true

	vl := faultBase(4)
	vl.Name = "ckpt separate hotspot VL"
	vl.SeparateHotspotVL = true

	rcm := faultBase(5)
	rcm.Name = "ckpt rcm backend"
	rcm.Backend = "rcm"

	windy := faultBase(6)
	windy.Name = "ckpt windy B=25% p=60"
	windy.FracBPct = 25
	windy.PPercent = 60

	for _, s := range []Scenario{moving, sl, vl, rcm, windy} {
		requireIdentical(t, s.Name, straightSig(t, s), resumedSig(t, s, cut))
	}
}

// TestCheckpointRestoreFaulted cuts through the middle of an active
// fault plan, so overlapping link-down depths, in-flight degrade
// factors, pending transition events, the sample cursor and all five
// drop-RNG stream positions must survive the round trip.
func TestCheckpointRestoreFaulted(t *testing.T) {
	if testing.Short() {
		t.Skip("faulted checkpoint runs are not short")
	}
	s := faultBase(7)
	s.Faults = synthFor(t, &s, 77, 0.7)
	s.Name = "ckpt faulted"
	straight := straightSig(t, s)
	for _, cut := range []sim.Time{
		sim.Time(0).Add(150 * sim.Microsecond),
		sim.Time(0).Add(300 * sim.Microsecond),
		sim.Time(0).Add(450 * sim.Microsecond),
	} {
		requireIdentical(t, s.Name, straight, resumedSig(t, s, cut))
	}
}

// TestExecuteWithCheckpoints: the cadence-stepped run produces the same
// result as a plain one, writes a bounded rolling series, and resuming
// from the newest file on disk completes to the identical signature.
func TestExecuteWithCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("cadence checkpoint run is not short")
	}
	s := faultBase(8)
	s.Name = "ckpt cadence"
	straight := straightSig(t, s)

	dir := t.TempDir()
	in, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	in.AttachDigest()
	var saves int
	res, err := in.ExecuteWithCheckpoints(CkptOpts{
		Every: 100 * sim.Microsecond,
		Dir:   dir,
		Keep:  2,
		OnSave: func(path string, at sim.Time) {
			saves++
			if filepath.Dir(path) != dir {
				t.Errorf("checkpoint outside dir: %s", path)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "cadence run", straight, ckptSig(in.dig, res))
	// 600µs window at 100µs cadence: boundaries 100..500 (600 == end is
	// not checkpointed).
	if saves != 5 {
		t.Errorf("wrote %d checkpoints, want 5", saves)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Errorf("rolling series kept %d files, want 2", len(ents))
	}

	// Resume from the newest on-disk checkpoint (t=500µs) and finish.
	re, err := RestoreFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "resume from disk", straight, ckptSig(re.dig, re.Execute()))
}

// TestCheckpointRejectsChecker: cadence checkpointing and the invariant
// checker both want the run loop; combining them must fail loudly.
func TestCheckpointRejectsChecker(t *testing.T) {
	s := Default(4)
	s.NumHotspots = 2
	s.Warmup = 50 * sim.Microsecond
	s.Measure = 100 * sim.Microsecond
	in, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	in.Check(CheckOpts{})
	if _, err := in.ExecuteWithCheckpoints(CkptOpts{Every: 10 * sim.Microsecond, Dir: t.TempDir()}); err == nil {
		t.Fatal("checker + cadence checkpointing accepted")
	}
}
