package core

import (
	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/trace"
)

// AttachStandardTrace registers the study's standard telemetry on a
// built instance and starts it for the whole run: per-class receive
// rates, total throughput, congestion-control activity and throttle
// depth, sampled every interval. Call between Build and Execute; the
// returned recorder's series are complete after Execute.
func (in *Instance) AttachStandardTrace(interval sim.Duration) *trace.Recorder {
	rec := trace.NewRecorder(in.Net.Sim(), interval)
	hot, non := splitByHotspot(in)

	rec.Probe("hotspot_rx_gbps_avg", perNodeRxRate(in, hot, interval))
	rec.Probe("nonhotspot_rx_gbps_avg", perNodeRxRate(in, non, interval))
	rec.Probe("total_rx_gbps", perNodeRxRate(in, all(in), interval, scaleTotal))
	rec.Probe("max_switch_queue_bytes", func() float64 {
		return float64(maxSwitchQueue(in))
	})

	if in.CC != nil {
		mgr := in.CC
		var prevMarks, prevBECN uint64
		secs := interval.Seconds()
		rec.Probe("fecn_marks_per_s", func() float64 {
			cur := mgr.Stats().FECNMarked
			v := float64(cur-prevMarks) / secs
			prevMarks = cur
			return v
		})
		rec.Probe("becn_per_s", func() float64 {
			cur := mgr.Stats().BECNReceived
			v := float64(cur-prevBECN) / secs
			prevBECN = cur
			return v
		})
		rec.Probe("throttled_flows", func() float64 {
			flows, _ := mgr.ThrottleSummary()
			return float64(flows)
		})
		rec.Probe("mean_ccti", func() float64 {
			_, mean := mgr.ThrottleSummary()
			return mean
		})
	}
	rec.Start(sim.Time(0).Add(in.Scenario.Warmup + in.Scenario.Measure))
	return rec
}

// maxSwitchQueue returns the deepest per-output-port VL-0 queue in the
// fabric — the height of the tallest congestion tree root at this
// instant.
func maxSwitchQueue(in *Instance) int {
	max := 0
	tp := in.Net.Topology()
	for _, sw := range in.Net.Switches() {
		for port := range tp.Nodes[sw.NodeID()].Ports {
			if q := sw.QueuedBytes(port, 0); q > max {
				max = q
			}
		}
	}
	return max
}

func splitByHotspot(in *Instance) (hot, non []ib.LID) {
	for i := 0; i < in.Net.NumHosts(); i++ {
		if in.Pop.HotspotSet[ib.LID(i)] {
			hot = append(hot, ib.LID(i))
		} else {
			non = append(non, ib.LID(i))
		}
	}
	return
}

func all(in *Instance) []ib.LID {
	out := make([]ib.LID, in.Net.NumHosts())
	for i := range out {
		out[i] = ib.LID(i)
	}
	return out
}

const scaleTotal = true

// perNodeRxRate builds a gauge returning the receive-payload rate of
// the node set over the last interval, in Gbit/s — per-node average by
// default, or the set total when total is given.
func perNodeRxRate(in *Instance, lids []ib.LID, interval sim.Duration, total ...bool) func() float64 {
	var prev uint64
	for _, l := range lids {
		prev += in.Net.HCA(l).Counters().RxDataPayload
	}
	div := float64(len(lids))
	if len(total) > 0 && total[0] {
		div = 1
	}
	secs := interval.Seconds()
	return func() float64 {
		var cur uint64
		for _, l := range lids {
			cur += in.Net.HCA(l).Counters().RxDataPayload
		}
		v := float64(cur-prev) * 8 / secs / div / 1e9
		prev = cur
		return v
	}
}
