package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
)

// The pluggable-backend selector must not move any existing artifact
// key: Scenario.Backend is tagged omitempty precisely so the default
// backend's canonical JSON — and with it exp.Fingerprint — stays
// byte-identical to the pre-backend encoding. These hashes were
// captured from the tree immediately before the backend field existed;
// if one changes, every stored artifact silently stops matching its
// scenario. This test lives outside package core because exp imports
// core.
func TestDefaultBackendFingerprintUnchanged(t *testing.T) {
	pre := map[int]string{
		8:  "37670d83ffb8109cba7c6a78305225e163f8520ed81336a96524bb7673ec3b3a",
		12: "3729fe9772fde76509801f701fc2eff7d94d82313850cfde5f94090b5a31ce6e",
	}
	for radix, want := range pre {
		if got := exp.Fingerprint(core.Default(radix)); got != want {
			t.Errorf("radix %d default fingerprint drifted:\n got %s\nwant %s", radix, got, want)
		}
	}
}

func TestBackendSelectorKeysFingerprint(t *testing.T) {
	base := core.Default(8)
	named := base
	named.Backend = "nocc"
	if exp.Fingerprint(named) == exp.Fingerprint(base) {
		t.Error("distinct backends share a fingerprint: artifacts would alias")
	}
	// An explicit "ibcc" is the same mechanism as the default "" but a
	// different scenario encoding; both must simulate identically (the
	// signature test covers that), yet they may key differently — what
	// matters is that "" keys exactly like the pre-backend encoding.
	empty := base
	empty.Backend = ""
	if exp.Fingerprint(empty) != exp.Fingerprint(base) {
		t.Error("empty selector altered the fingerprint")
	}
}
