package core

import (
	"io"

	"repro/internal/check"
	"repro/internal/ib"
	"repro/internal/sim"
)

// CheckOpts configures the runtime invariant checker attached to a run.
// It is the CheckOpts sibling of ObserveOpts: the zero value enables the
// full invariant suite at its defaults (50 µs sweep window, 1 ms
// watchdog, no diagnostics stream).
type CheckOpts struct {
	// Window is the simulated time between invariant sweeps (default
	// 50 µs).
	Window sim.Duration
	// WatchdogAfter is the forward-progress watchdog horizon: 0 means
	// 1 ms, negative disables the watchdog.
	WatchdogAfter sim.Duration
	// Diagnostics, when non-nil, receives a structured model-state dump
	// on the run's first violation and on a watchdog trip.
	Diagnostics io.Writer
	// MaxViolations bounds how many violations are recorded in full
	// (default 32); further ones are only counted.
	MaxViolations int
}

// Check attaches the runtime invariant checker to a built-but-not-
// executed instance and returns it; Execute then runs the simulation in
// sweep windows under the checker. Call between Build and Execute;
// inspect the checker's Report after Execute. The checker never perturbs
// the trajectory — a checked run is bit-identical to an unchecked one.
func (in *Instance) Check(o CheckOpts) *check.Checker {
	if in.executed {
		panic("core: Check after Execute")
	}
	t := check.Target{
		Sim:            in.Net.Sim(),
		Net:            in.Net,
		Pool:           in.Net.PacketPool(),
		SourcesPending: in.sourcesPending,
	}
	if in.Backend != nil {
		// Assign only a live backend: a nil cc.Backend stuffed into the
		// interface would read as non-nil to the checker.
		t.CC = in.Backend
	}
	ck := check.New(t, check.Config{
		Window:        o.Window,
		WatchdogAfter: o.WatchdogAfter,
		Diagnostics:   o.Diagnostics,
		MaxViolations: o.MaxViolations,
	})
	ck.Attach(in.bus())
	in.checker = ck
	return ck
}

// sourcesPending sums the generated-but-not-injected packets across the
// instance's traffic generators; the checker balances them against the
// fabric's custody census.
func (in *Instance) sourcesPending() int {
	n := 0
	for _, g := range in.sources {
		if g != nil {
			n += g.PendingPackets()
		}
	}
	return n
}

// DeliveredPackets sums the packets consumed by every host sink; the
// differential and invariant tests use it as a model-level progress
// measure.
func (in *Instance) DeliveredPackets() uint64 {
	var rx uint64
	for lid := 0; lid < in.Net.NumHosts(); lid++ {
		rx += in.Net.HCA(ib.LID(lid)).Counters().RxPackets
	}
	return rx
}

// RunChecked executes one scenario end to end under the runtime
// invariant checker and returns the result alongside the checker's
// report. The result is identical to Run's: checking does not perturb
// the trajectory.
func RunChecked(s Scenario, o CheckOpts) (*Result, *check.Report, error) {
	in, err := Build(s)
	if err != nil {
		return nil, nil, err
	}
	ck := in.Check(o)
	res := in.Execute()
	return res, ck.Report(), nil
}
