package core

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/check"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/ib"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Result collects everything a single run produced.
type Result struct {
	// Name echoes the scenario label.
	Name string
	// CCOn echoes whether congestion control ran.
	CCOn bool
	// Backend is the resolved congestion-control backend name ("" when
	// CC is off).
	Backend string
	// Summary holds the class-aggregated receive rates.
	Summary metrics.Summary
	// Rates holds the per-node rates behind the summary.
	Rates metrics.NodeRates
	// TMaxGbps is the theoretical non-hotspot maximum for the
	// scenario (figures 5–8 plot it alongside the measurements).
	TMaxGbps float64
	// CCStats reports congestion-control activity (zero when off).
	CCStats cc.Stats
	// Latency is the network-wide packet latency distribution over the
	// measurement window.
	Latency metrics.LatencySummary
	// Events is the number of simulation events executed.
	Events uint64
	// Hotspots is the static hotspot set of the run.
	Hotspots []ib.LID
	// PopB/PopC/PopV count the node roles.
	PopB, PopC, PopV int
	// RoleRxGbps is the average receive-payload rate per role
	// (indexed by Role), for fairness inspection across classes.
	RoleRxGbps [3]float64
	// RoleTxGbps is the average injected-payload rate per role.
	RoleTxGbps [3]float64
	// Faults reports what the fault injector did, nil when the scenario
	// carried no plan.
	Faults *fault.Stats
}

// Instance is a fully assembled but not yet executed scenario. Build
// creates it; callers may attach instrumentation (hooks are already
// installed, so use the network's and manager's accessors) before
// calling Execute. Run covers the common build-and-execute path.
type Instance struct {
	Scenario Scenario
	// Net is the assembled fabric.
	Net *fabric.Network
	// Backend is the congestion control backend, nil when CC is off.
	Backend cc.Backend
	// CC is the classic IB CCA manager when the scenario runs the
	// default ibcc backend; nil for every other backend and when CC is
	// off. It exposes the manager-specific accessors (CCTI, Params) the
	// inspection tools read.
	CC *cc.Manager
	// Pop is the node-role assignment.
	Pop Population

	collector *metrics.Collector
	executed  bool
	// restored marks an instance rebuilt from a checkpoint: its pending
	// events came from the snapshot, so Execute must not Start the
	// fabric again.
	restored bool
	// dig is the optional trajectory digest riding the run (AttachDigest
	// or a restored snapshot's digest state).
	dig *obs.Digest
	// sources holds the generators in LID order (nil entries for idle
	// nodes); the invariant checker's custody census walks them.
	sources []*traffic.Generator
	// busv is the lazily created flight-recorder bus shared by Observe
	// and Check.
	busv *obs.Bus
	// checker, when non-nil, drives Execute's run loop in sweep windows.
	checker *check.Checker
	// injector, when non-nil, executes the scenario's fault plan.
	injector *fault.Injector
}

// Run executes one scenario end to end.
func Run(s Scenario) (*Result, error) {
	in, err := Build(s)
	if err != nil {
		return nil, err
	}
	return in.Execute(), nil
}

// Build assembles the topology, fabric, congestion control, population
// and generators for a scenario without running it.
func Build(s Scenario) (*Instance, error) {
	if s.SeparateHotspotVL && s.Fabric.NumVLs < 2 {
		s.Fabric.NumVLs = 2
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tp, err := topo.FatTree(s.Radix)
	if err != nil {
		return nil, err
	}
	lft, err := topo.ComputeLFT(tp)
	if err != nil {
		return nil, err
	}
	simr := sim.New()
	net, err := fabric.New(simr, tp, lft, s.Fabric, fabric.Hooks{})
	if err != nil {
		return nil, err
	}

	// The population and targeters are drawn before the backend is
	// created so the clairvoyant oracle can read its ground truth;
	// neither the backend constructors nor the draws consume the other's
	// randomness, so the order swap leaves every trajectory untouched
	// (the golden kernel-signature tests pin this).
	root := sim.NewRNG(s.Seed)
	pop := assignRoles(&s, root.Derive(1))
	targeters := buildTargeters(&s, &pop, root.Derive(2))

	var throttle traffic.Throttle
	var backend cc.Backend
	var mgr *cc.Manager
	if s.CCOn {
		bcfg := cc.BackendConfig{Params: s.CC, InjectionRate: s.Fabric.InjectionRate}
		if s.Backend == "oracle" {
			bcfg.OracleShares = oracleShares(&s, &pop, targeters)
		}
		backend, err = cc.NewBackend(s.Backend, net, bcfg)
		if err != nil {
			return nil, err
		}
		net.SetHooks(backend.Hooks())
		if th := backend.Throttle(); th != nil {
			throttle = th
		}
		mgr, _ = backend.(*cc.Manager)
	}

	sources := make([]*traffic.Generator, s.NumNodes())
	for node := 0; node < s.NumNodes(); node++ {
		role := pop.Roles[node]
		if role == RoleC && !s.CNodesActive {
			continue
		}
		p := 0
		var hs traffic.Targeter
		switch role {
		case RoleC:
			p = 100
			hs = targeters[pop.Subset[node]]
		case RoleB:
			p = s.PPercent
			hs = targeters[pop.Subset[node]]
		}
		gen, err := traffic.NewGenerator(traffic.NodeConfig{
			LID:           ib.LID(node),
			NumNodes:      s.NumNodes(),
			PPercent:      p,
			Hotspot:       hs,
			InjectionRate: s.Fabric.InjectionRate,
			BacklogCap:    s.BacklogCap,
			Throttle:      throttle,
			SLThrottle:    s.CCOn && s.CC.SLLevel,
			HotspotVL:     hotspotVL(&s),
			Pool:          net.PacketPool(),
			RNG:           root.Derive(1000 + uint64(node)),
		})
		if err != nil {
			return nil, fmt.Errorf("core: node %d: %w", node, err)
		}
		net.HCA(ib.LID(node)).SetSource(gen)
		sources[node] = gen
	}

	// A nil or zero plan takes the exact code path a fault-free build
	// always took: no injector, no dropper, bit-identical trajectory.
	var inj *fault.Injector
	if !s.Faults.Zero() {
		inj, err = fault.NewInjector(net, s.Faults)
		if err != nil {
			return nil, err
		}
	}

	collector := metrics.NewCollector(net, sim.Time(0).Add(s.Warmup))
	return &Instance{
		Scenario:  s,
		Net:       net,
		Backend:   backend,
		CC:        mgr,
		Pop:       pop,
		collector: collector,
		sources:   sources,
		injector:  inj,
	}, nil
}

// Execute runs the assembled scenario to the end of its measurement
// window and reduces the counters. It may be called once.
func (in *Instance) Execute() *Result {
	if in.executed {
		panic("core: instance executed twice")
	}
	in.executed = true
	s := &in.Scenario
	simr := in.Net.Sim()
	in.start()
	end := sim.Time(0).Add(s.Warmup + s.Measure)
	if in.checker != nil {
		in.checker.Run(end)
	} else {
		simr.RunUntil(end)
	}
	return in.reduce()
}

// start kicks the fabric's sources exactly once. A restored instance
// skips the kick: its HCA wake/tx events were rebuilt from the
// checkpoint, and starting again would double-schedule them.
func (in *Instance) start() {
	if !in.restored {
		in.Net.Start()
	}
}

// reduce turns the run's counters into a Result once the simulation has
// reached the end of the measurement window.
func (in *Instance) reduce() *Result {
	s := &in.Scenario
	simr := in.Net.Sim()
	rates := in.collector.Rates()
	res := &Result{
		Name:     s.Name,
		CCOn:     s.CCOn,
		Summary:  metrics.Summarize(rates, in.Pop.HotspotSet),
		Rates:    rates,
		TMaxGbps: s.TMaxNonHotspotGbps(),
		Latency:  in.collector.Latency(),
		Events:   simr.Processed(),
		Hotspots: in.Pop.Hotspots,
	}
	res.PopB, res.PopC, res.PopV = in.Pop.Counts()
	var counts [3]int
	for node, role := range in.Pop.Roles {
		counts[role]++
		res.RoleRxGbps[role] += rates.RxPayload[node] / 1e9
		res.RoleTxGbps[role] += rates.TxPayload[node] / 1e9
	}
	for r := range counts {
		if counts[r] > 0 {
			res.RoleRxGbps[r] /= float64(counts[r])
			res.RoleTxGbps[r] /= float64(counts[r])
		}
	}
	if in.Backend != nil {
		res.Backend = in.Backend.Name()
		res.CCStats = in.Backend.Stats()
	}
	if in.injector != nil {
		res.Faults = in.injector.Stats()
	}
	return res
}

// hotspotVL returns the VL carrying hotspot traffic: 1 under
// SeparateHotspotVL, otherwise the shared lane 0.
func hotspotVL(s *Scenario) ib.VL {
	if s.SeparateHotspotVL {
		return 1
	}
	return 0
}

// buildTargeters creates one hotspot targeter per subset: static targets
// for the silent/windy forests, shared moving sequences for the moving
// forests.
func buildTargeters(s *Scenario, pop *Population, rng *sim.RNG) []traffic.Targeter {
	out := make([]traffic.Targeter, s.NumHotspots)
	if s.HotspotLifetime <= 0 {
		for i, h := range pop.Hotspots {
			out[i] = traffic.StaticTarget(h)
		}
		return out
	}
	slots := int((s.Warmup+s.Measure)/s.HotspotLifetime) + 2
	for i := range out {
		mt := traffic.NewMovingTarget(s.HotspotLifetime, slots, s.NumNodes(), rng.Derive(uint64(i)))
		// Slot 0 starts at the subset's drawn hotspot, so a moving run
		// degenerates to the static one as the lifetime grows.
		mt.Seq[0] = pop.Hotspots[i]
		out[i] = mt
	}
	return out
}
