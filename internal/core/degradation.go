package core

import (
	"fmt"
	"io"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// degradationPlanSalt decorrelates the synthesized fault-plan seed from
// the scenario's traffic seed: both RNG trees are rooted in NewRNG(seed)
// derivations, so handing the raw scenario seed to the plan would alias
// the injector's low drop-class labels with the traffic tree's low
// labels. The salt (plus an intensity-index stride) keeps every
// (seed, intensity) cell on its own plan while the plan stays identical
// across the CC-off and CC-on legs of the cell.
const degradationPlanSalt = 0x5fa017ba5e

// degradationSamples is how many rate-sampler windows the synthesized
// plans spread over the run; enough resolution for the recovery metric
// without swamping Stats with samples.
const degradationSamples = 64

// FaultLinks returns the faultable link set of the scenario's fat-tree:
// the universe a hand-written or synthesized plan may reference.
func FaultLinks(s Scenario) ([]fault.LinkRef, error) {
	tp, err := topo.FatTree(s.Radix)
	if err != nil {
		return nil, err
	}
	return fault.FabricLinks(tp), nil
}

// DegradationLeg aggregates one CC setting of one sweep point across
// seeds: the receive-rate aggregates, the intentional-loss tallies, and
// the recovery behaviour.
type DegradationLeg struct {
	// AllGbps / TotalGbps are mean receive rate over all nodes and mean
	// total throughput (Gbit/s), with 95% confidence half-widths.
	AllGbps   float64 `json:"all_gbps"`
	AllCI95   float64 `json:"all_ci95"`
	TotalGbps float64 `json:"total_gbps"`
	TotalCI95 float64 `json:"total_ci95"`
	// DroppedPackets / DroppedCredits are the mean per-run counts of
	// intentionally lost packets and deferred credit updates.
	DroppedPackets float64 `json:"dropped_packets"`
	DroppedCredits float64 `json:"dropped_credits"`
	// RecoveryUS is the mean recovery time (µs) over the runs that
	// recovered; Recovered of Seeds runs did. Runs without scheduled
	// faults (intensity 0) report Recovered == Seeds trivially.
	RecoveryUS float64 `json:"recovery_us"`
	Recovered  int     `json:"recovered"`
	Seeds      int     `json:"seeds"`
}

// DegradationPoint is one fault intensity of a graceful-degradation
// sweep: the same synthesized fault plans run with CC off and on.
type DegradationPoint struct {
	Intensity float64        `json:"intensity"`
	Off       DegradationLeg `json:"cc_off"`
	On        DegradationLeg `json:"cc_on"`
}

// RunDegradation sweeps fault intensity × CC on/off over the base
// scenario: at each intensity a fault plan is synthesized per seed
// (identical across the two CC legs, so the legs differ only in the
// mechanism under test) and the receive-rate and recovery curves are
// aggregated across seeds. Intensity 0 synthesizes a zero plan, which
// the runner treats as absent — that point is the unfaulted baseline.
func RunDegradation(base Scenario, intensities []float64, seeds []uint64) ([]DegradationPoint, error) {
	return RunDegradationOpts(base, intensities, seeds, Opts{})
}

// RunDegradationOpts is RunDegradation with execution options; the
// 2*len(intensities)*len(seeds) runs are independent and fan out across
// the worker pool.
func RunDegradationOpts(base Scenario, intensities []float64, seeds []uint64, o Opts) ([]DegradationPoint, error) {
	if len(intensities) == 0 || len(seeds) == 0 {
		return nil, fmt.Errorf("core: degradation sweep needs intensities and seeds")
	}
	// One topology build serves every plan synthesis: the link set
	// depends only on the radix.
	tp, err := topo.FatTree(base.Radix)
	if err != nil {
		return nil, err
	}
	links := fault.FabricLinks(tp)
	horizon := sim.Time(0).Add(base.Warmup + base.Measure)

	scenarios := make([]Scenario, 0, 2*len(intensities)*len(seeds))
	for ii, in := range intensities {
		for _, seed := range seeds {
			plan, err := fault.Synth(fault.SynthConfig{
				Seed:        seed ^ (degradationPlanSalt + uint64(ii)*0x9e3779b97f4a7c15),
				Intensity:   in,
				Links:       links,
				Horizon:     horizon,
				SampleEvery: (base.Warmup + base.Measure) / degradationSamples,
			})
			if err != nil {
				return nil, err
			}
			s := base
			s.Seed = seed
			s.Faults = plan
			s.CCOn = false
			s.Name = fmt.Sprintf("degradation in=%.2f seed=%d ccOff", in, seed)
			scenarios = append(scenarios, s)
			s.CCOn = true
			s.Name = fmt.Sprintf("degradation in=%.2f seed=%d ccOn", in, seed)
			scenarios = append(scenarios, s)
		}
	}
	results, err := runBatch(o, scenarios)
	if err != nil {
		return nil, err
	}

	out := make([]DegradationPoint, 0, len(intensities))
	idx := 0
	for _, in := range intensities {
		pt := DegradationPoint{Intensity: in}
		var acc [2]struct {
			all, total, dropped, credits, recovery stats.Acc
			recovered, seeds                       int
		}
		for range seeds {
			for leg := 0; leg < 2; leg++ {
				r := results[idx]
				idx++
				a := &acc[leg]
				a.seeds++
				a.all.Add(r.Summary.AllAvgGbps)
				a.total.Add(r.Summary.TotalGbps)
				if r.Faults != nil {
					a.dropped.Add(float64(r.Faults.DroppedPackets()))
					a.credits.Add(float64(r.Faults.DroppedCredits))
				}
				if r.Faults.Recovered() {
					a.recovered++
					if r.Faults != nil && r.Faults.Recovery > 0 {
						a.recovery.Add(r.Faults.Recovery.Seconds() * 1e6)
					}
				}
			}
		}
		for leg, dst := range []*DegradationLeg{&pt.Off, &pt.On} {
			a := &acc[leg]
			dst.AllGbps, dst.AllCI95 = a.all.Mean(), a.all.CI95()
			dst.TotalGbps, dst.TotalCI95 = a.total.Mean(), a.total.CI95()
			dst.DroppedPackets = a.dropped.Mean()
			dst.DroppedCredits = a.credits.Mean()
			dst.RecoveryUS = a.recovery.Mean()
			dst.Recovered, dst.Seeds = a.recovered, a.seeds
		}
		out = append(out, pt)
	}
	return out, nil
}

// PrintDegradation writes the sweep as a graceful-degradation table:
// receive rate and recovery per intensity, CC off versus on.
func PrintDegradation(w io.Writer, pts []DegradationPoint) {
	fmt.Fprintf(w, "Graceful degradation under injected faults\n")
	fmt.Fprintf(w, "  %9s  %9s %9s  %10s %10s  %11s %11s  %9s %9s\n",
		"intensity", "allOff", "allOn", "dropOff", "dropOn", "recovOff", "recovOn", "okOff", "okOn")
	for _, pt := range pts {
		fmt.Fprintf(w, "  %9.2f  %9.3f %9.3f  %10.1f %10.1f  %9.1fus %9.1fus  %5d/%-3d %5d/%-3d\n",
			pt.Intensity,
			pt.Off.AllGbps, pt.On.AllGbps,
			pt.Off.DroppedPackets, pt.On.DroppedPackets,
			pt.Off.RecoveryUS, pt.On.RecoveryUS,
			pt.Off.Recovered, pt.Off.Seeds, pt.On.Recovered, pt.On.Seeds)
	}
}
