package core

import (
	"strings"
	"testing"
)

func TestScanCC(t *testing.T) {
	// Radix 12 is the smallest scale where the aggressive threshold
	// reliably beats no-CC (at radix 8 the 3 contributors per hotspot
	// make the harmonic CCT too coarse).
	base := quick(12)
	sc, err := ScanCC(base, "threshold", []int{0, 15}, func(s *Scenario, v int) {
		s.CC.Threshold = uint8(v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Points) != 2 {
		t.Fatalf("points = %d", len(sc.Points))
	}
	if sc.Baseline.Total <= 0 {
		t.Fatal("no baseline")
	}
	// Threshold 0 disables marking: its outcome must match the
	// baseline closely, while 15 must beat it.
	p0, p15 := sc.Points[0], sc.Points[1]
	if p0.FECNMarked != 0 {
		t.Fatalf("threshold 0 marked %d packets", p0.FECNMarked)
	}
	if p0.Improvement < 0.95 || p0.Improvement > 1.05 {
		t.Fatalf("threshold 0 improvement = %.3f", p0.Improvement)
	}
	if p15.Improvement <= p0.Improvement {
		t.Fatalf("threshold 15 (%.3f) not above 0 (%.3f)", p15.Improvement, p0.Improvement)
	}
	if sc.Best().Value != 15 {
		t.Fatalf("best = %d", sc.Best().Value)
	}
	var sb strings.Builder
	sc.Print(&sb)
	out := sb.String()
	for _, want := range []string{"parameter scan: threshold", "best total at threshold=15"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Print missing %q:\n%s", want, out)
		}
	}
}

func TestScanCCErrors(t *testing.T) {
	base := quick(8)
	if _, err := ScanCC(base, "x", nil, func(*Scenario, int) {}); err == nil {
		t.Fatal("empty values accepted")
	}
	if _, err := ScanCC(base, "x", []int{1}, nil); err == nil {
		t.Fatal("nil apply accepted")
	}
	if _, err := ScanCC(base, "x", []int{1}, func(s *Scenario, v int) {
		s.CC.CCT = nil
	}); err == nil {
		t.Fatal("invalid mutation accepted")
	}
}
