package core

import (
	"io"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// ObserveOpts selects the flight-recorder consumers to attach to a
// built instance. Any combination may be enabled; the zero value
// attaches a bare bus with no consumers (events are skipped at the
// publish site, so it is as free as not observing at all).
type ObserveOpts struct {
	// Events streams every event as one JSON line.
	Events io.Writer
	// ChromeTrace streams a Chrome trace_event document viewable in
	// chrome://tracing or Perfetto.
	ChromeTrace io.Writer
	// Tree attaches the congestion-tree analyzer.
	Tree bool
	// Counters attaches the per-switch-port counter registry.
	Counters bool
	// CCTILog records every CCTI step for later tabulation.
	CCTILog bool
	// Telemetry attaches a pre-built time-series sampler (nil skips it —
	// the sampler's own nil guard makes the wiring unconditional).
	Telemetry *telemetry.Sampler
}

// Observation is the handle to a run's attached flight recorder. The
// analytical consumers are ready after Execute; Close must run before
// the Events/ChromeTrace outputs are read.
type Observation struct {
	// Bus is the event bus wired into the fabric and the CC manager.
	Bus *obs.Bus
	// Registry holds the per-switch-port counters (Counters option).
	Registry *obs.Registry
	// Tree is the congestion-tree analyzer (Tree option).
	Tree *obs.TreeAnalyzer
	// CCTI is the CCTI step log (CCTILog option).
	CCTI *obs.CCTILog

	jsonl  *obs.JSONLWriter
	chrome *obs.ChromeTracer
}

// Observe attaches the flight recorder to a built-but-not-executed
// instance: it creates the event bus, subscribes the consumers selected
// in o, and wires the bus into the fabric and (when CC is on) the CC
// manager. Call between Build and Execute.
func (in *Instance) Observe(o ObserveOpts) *Observation {
	if in.executed {
		panic("core: Observe after Execute")
	}
	bus := in.bus()
	ob := &Observation{Bus: bus}
	if o.Events != nil {
		ob.jsonl = obs.NewJSONLWriter(o.Events)
		ob.jsonl.Attach(bus)
	}
	if o.ChromeTrace != nil {
		ob.chrome = obs.NewChromeTracer(o.ChromeTrace)
		ob.chrome.Attach(bus)
	}
	if o.Tree {
		ob.Tree = obs.NewTreeAnalyzer()
		ob.Tree.Attach(bus)
	}
	if o.Counters {
		ob.Registry = obs.NewRegistry(in.Net.Config().NumVLs)
		ob.Registry.Attach(bus)
	}
	if o.CCTILog {
		ob.CCTI = obs.NewCCTILog()
		ob.CCTI.Attach(bus)
	}
	o.Telemetry.Attach(bus)
	return ob
}

// bus returns the instance's flight-recorder bus, creating and wiring it
// into the fabric and the CC manager on first use. Observe and Check
// share it, so a run may attach both.
func (in *Instance) bus() *obs.Bus {
	if in.busv == nil {
		in.busv = obs.New()
		in.Net.SetBus(in.busv)
		if in.Backend != nil {
			in.Backend.SetBus(in.busv)
		}
	}
	return in.busv
}

// TreeReport reconstructs the congestion trees observed by the run.
// It requires the Tree option.
func (ob *Observation) TreeReport() *obs.TreeReport {
	if ob.Tree == nil {
		return nil
	}
	return ob.Tree.Report()
}

// Close finalizes the streaming consumers (flushing the JSONL log and
// terminating the Chrome trace document) and returns the first write
// error any of them hit. Call after Execute.
func (ob *Observation) Close() error {
	var err error
	if ob.jsonl != nil {
		err = ob.jsonl.Close()
	}
	if ob.chrome != nil {
		if cerr := ob.chrome.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// EventsWritten reports how many events the JSONL and Chrome consumers
// emitted (zero for unattached consumers).
func (ob *Observation) EventsWritten() (jsonl, chrome uint64) {
	if ob.jsonl != nil {
		jsonl = ob.jsonl.Events()
	}
	if ob.chrome != nil {
		chrome = ob.chrome.Events()
	}
	return
}
