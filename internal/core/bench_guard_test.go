package core

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/sim"
)

// The bench guards assert the backend abstraction stayed off the hot
// path: interface dispatch through cc.Backend must not regress the
// kernel number recorded in BENCH_kernel.json, and stripping the
// mechanism out (nocc) must show up as a strict speedup over running it
// (ibcc) on an otherwise identical workload. Wall-clock tests are
// meaningless under the race detector or -short, so both guards skip
// there (`make check` runs the suite under -race; the plain `make test`
// and CI's untagged `go test ./...` exercise them).

// kernelBenchBaseline reads kernel.ns_per_event from the repo-root
// artifact.
func kernelBenchBaseline(t *testing.T) float64 {
	t.Helper()
	raw, err := os.ReadFile("../../BENCH_kernel.json")
	if err != nil {
		t.Skipf("no bench baseline: %v", err)
	}
	var doc struct {
		Kernel struct {
			NsPerEvent float64 `json:"ns_per_event"`
		} `json:"kernel"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_kernel.json: %v", err)
	}
	if doc.Kernel.NsPerEvent <= 0 {
		t.Fatal("BENCH_kernel.json: kernel.ns_per_event missing")
	}
	return doc.Kernel.NsPerEvent
}

// TestKernelBenchGuard re-measures the BenchmarkKernelSteadyState
// workload and holds it within 10% of the recorded baseline. Best-of-4
// filters scheduler noise; a genuine dispatch regression slows every
// attempt.
func TestKernelBenchGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock guard is not short")
	}
	if raceEnabled {
		t.Skip("wall-clock guard is meaningless under -race")
	}
	baseline := kernelBenchBaseline(t)
	const events = 4_000_000
	best := 0.0
	for i := 0; i < 4; i++ {
		start := time.Now()
		s := sim.SteadyStateWorkload(4096, events, 1)
		ns := float64(time.Since(start).Nanoseconds()) / float64(s.Processed())
		if best == 0 || ns < best {
			best = ns
		}
	}
	if limit := 1.10 * baseline; best > limit {
		t.Errorf("kernel steady state %.2f ns/event, limit %.2f (baseline %.2f +10%%)",
			best, limit, baseline)
	}
}

// TestNoCCFasterThanIbccGuard times the per-event backend hot path —
// the exact call-site pattern the fabric and generators execute: a
// nil-guarded SwitchEnqueue hook, a nil-guarded Deliver hook, and a
// nil-guarded injection-gate IRD lookup. nocc resolves every one to a
// nil check; ibcc pays dispatch plus threshold compares and CCT
// bookkeeping, so doing nothing must come out strictly faster. (Whole-
// run wall time cannot express this: ibcc's throttling changes the
// event stream itself, usually shrinking it.)
func TestNoCCFasterThanIbccGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock guard is not short")
	}
	if raceEnabled {
		t.Skip("wall-clock guard is meaningless under -race")
	}
	hotPathNs := func(backend string) float64 {
		s := Default(8)
		s.CCOn = true
		s.Backend = backend
		in, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		hooks := in.Backend.Hooks()
		th := in.Backend.Throttle()
		pkt := &ib.Packet{Type: ib.DataPacket, Src: 1, Dst: 2, PayloadBytes: 2048}
		// Below-threshold queue state: the common (unmarked) case every
		// packet pays on every switch hop.
		st := fabric.PortVLState{QueuedBytes: 512, CreditBytes: 1 << 16, CapacityBytes: 1 << 17}
		const iters = 4_000_000
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				if hooks.SwitchEnqueue != nil {
					hooks.SwitchEnqueue(0, 0, pkt, st)
				}
				if hooks.Deliver != nil {
					hooks.Deliver(pkt.Dst, pkt)
				}
				if th != nil {
					_ = th.IRD(pkt.Src, pkt.Dst, pkt.WireBytes())
				}
			}
			ns := float64(time.Since(start).Nanoseconds()) / iters
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	nocc := hotPathNs("nocc")
	ibcc := hotPathNs("ibcc")
	if nocc >= ibcc {
		t.Errorf("nocc hot path %.3f ns/event not strictly faster than ibcc %.3f", nocc, ibcc)
	}
}
