package core

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/obs"
)

// The differential kernel check runs the same scenario twice — once on
// the production timing-wheel future-event list, once on
// sim.ReferenceFEL, a deliberately independent textbook binary heap —
// and compares complete trajectory signatures. Any divergence between
// the two kernels (an ordering bug in either) shows up as a digest
// mismatch long before it would corrupt an aggregate visibly.

// KernelSignature fingerprints one run's complete observable trajectory:
// the order-sensitive digest of the full flight-recorder event stream
// plus the aggregates a paper table would report. It is a comparable
// struct, so two signatures are compared with ==.
type KernelSignature struct {
	// Digest is the obs.Digest over the full event stream, Records its
	// event count.
	Digest  string
	Records uint64
	// Events is the number of simulation events executed.
	Events uint64
	// Summary aggregates (Gbit/s).
	HotGbps, NonHotGbps, AllGbps, TotalGbps float64
	// CC activity counters.
	FECNMarked, BECNReceived, CNPSent, ACKSent, TimerDecrements uint64
	MaxCCTI                                                     uint16
}

func (k KernelSignature) String() string {
	return fmt.Sprintf("digest=%s records=%d events=%d total=%.6g fecn=%d becn=%d",
		k.Digest, k.Records, k.Events, k.TotalGbps, k.FECNMarked, k.BECNReceived)
}

// DiffReport is the outcome of one differential kernel run.
type DiffReport struct {
	// Wheel is the production timing-wheel signature, Ref the
	// ReferenceFEL one.
	Wheel, Ref KernelSignature
}

// Match reports whether the two kernels produced byte-identical
// trajectories.
func (d *DiffReport) Match() bool { return d.Wheel == d.Ref }

// Mismatches describes every differing signature field.
func (d *DiffReport) Mismatches() []string {
	var out []string
	add := func(field string, w, r interface{}) {
		if w != r {
			out = append(out, fmt.Sprintf("%s: wheel %v, ref %v", field, w, r))
		}
	}
	add("digest", d.Wheel.Digest, d.Ref.Digest)
	add("records", d.Wheel.Records, d.Ref.Records)
	add("events", d.Wheel.Events, d.Ref.Events)
	add("hot", d.Wheel.HotGbps, d.Ref.HotGbps)
	add("nonhot", d.Wheel.NonHotGbps, d.Ref.NonHotGbps)
	add("all", d.Wheel.AllGbps, d.Ref.AllGbps)
	add("total", d.Wheel.TotalGbps, d.Ref.TotalGbps)
	add("fecn", d.Wheel.FECNMarked, d.Ref.FECNMarked)
	add("becn", d.Wheel.BECNReceived, d.Ref.BECNReceived)
	add("cnp", d.Wheel.CNPSent, d.Ref.CNPSent)
	add("ack", d.Wheel.ACKSent, d.Ref.ACKSent)
	add("decr", d.Wheel.TimerDecrements, d.Ref.TimerDecrements)
	add("maxccti", d.Wheel.MaxCCTI, d.Ref.MaxCCTI)
	return out
}

// signedRun executes s and returns its trajectory signature. refKernel
// selects the ReferenceFEL kernel; a non-nil co runs under the invariant
// checker and returns its report.
func signedRun(s Scenario, refKernel bool, co *CheckOpts) (KernelSignature, *check.Report, error) {
	in, err := Build(s)
	if err != nil {
		return KernelSignature{}, nil, err
	}
	if refKernel {
		in.Net.Sim().UseReferenceFEL()
	}
	dig := obs.NewDigest()
	in.bus().Subscribe(dig)
	var ck *check.Checker
	if co != nil {
		ck = in.Check(*co)
	}
	res := in.Execute()
	sig := KernelSignature{
		Digest:          dig.Sum(),
		Records:         dig.Records(),
		Events:          res.Events,
		HotGbps:         res.Summary.HotspotAvgGbps,
		NonHotGbps:      res.Summary.NonHotspotAvgGbps,
		AllGbps:         res.Summary.AllAvgGbps,
		TotalGbps:       res.Summary.TotalGbps,
		FECNMarked:      res.CCStats.FECNMarked,
		BECNReceived:    res.CCStats.BECNReceived,
		CNPSent:         res.CCStats.CNPSent,
		ACKSent:         res.CCStats.ACKSent,
		TimerDecrements: res.CCStats.TimerDecrements,
		MaxCCTI:         res.CCStats.MaxCCTI,
	}
	var rep *check.Report
	if ck != nil {
		rep = ck.Report()
	}
	return sig, rep, nil
}

// RunDifferential executes s on both event-list kernels and returns the
// signature pair. The wheel run is plain; use RunChecked separately to
// combine differential and invariant checking.
func RunDifferential(s Scenario) (*DiffReport, error) {
	wheel, _, err := signedRun(s, false, nil)
	if err != nil {
		return nil, err
	}
	ref, _, err := signedRun(s, true, nil)
	if err != nil {
		return nil, err
	}
	return &DiffReport{Wheel: wheel, Ref: ref}, nil
}
