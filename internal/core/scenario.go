// Package core assembles complete experiments: it builds the fat-tree
// fabric, populates it with the paper's node mixes (C contributors, V
// victims, B nodes with hotspot share p), installs the congestion
// control manager when enabled, runs the simulation, and reduces the
// counters to the quantities the paper's tables and figures report.
package core

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/sim"
)

// Scenario describes one simulation run. The zero value is not valid;
// start from Default and adjust.
type Scenario struct {
	// Name labels the run in reports.
	Name string
	// Radix is the fat-tree crossbar radix; 36 is the paper's Sun DCS
	// 648 (648 nodes), smaller radices scale the same family down.
	Radix int
	// Seed drives every random choice (roles, hotspots, destinations).
	Seed uint64

	// CCOn enables the congestion control mechanism.
	CCOn bool
	// Backend selects the congestion-control backend by registry name
	// when CCOn is set; empty resolves to cc.DefaultBackend (the classic
	// IB CCA manager). The omitempty tag keeps the canonical JSON — and
	// with it exp.Fingerprint — identical to pre-backend scenarios
	// whenever the default is in effect.
	Backend string `json:"Backend,omitempty"`
	// CC are the congestion control parameters (Table I by default).
	// They configure the default ibcc backend only; the other backends
	// carry their own calibration.
	CC cc.Params
	// Fabric is the network configuration.
	Fabric fabric.Config

	// FracBPct is the percentage of nodes that are B nodes (the windy
	// scenarios exchange 25/50/75/100% of the population).
	FracBPct int
	// PPercent is the hotspot share p of every B node.
	PPercent int
	// FracCOfRestPct splits the non-B population into C contributors
	// and V victims (the paper uses 80% C / 20% V unless stated).
	FracCOfRestPct int
	// CNodesActive lets Table II's baseline rows keep the C nodes
	// silent while the V nodes run.
	CNodesActive bool

	// NumHotspots is the number of hotspots (8 in every experiment).
	NumHotspots int
	// HotspotLifetime, when positive, moves each subset's hotspot to a
	// fresh random node every lifetime (the moving forests); zero
	// keeps hotspots static.
	HotspotLifetime sim.Duration

	// Warmup runs before measurement starts; Measure is the window the
	// reported rates cover.
	Warmup  sim.Duration
	Measure sim.Duration

	// BacklogCap is the per-stream outstanding-message bound of each
	// generator.
	BacklogCap int

	// SeparateHotspotVL carries hotspot traffic on its own virtual
	// lane (the set-aside-queue alternative to throttling discussed in
	// the paper's introduction). The fabric is given a second VL
	// automatically.
	SeparateHotspotVL bool

	// Faults, when non-nil and non-zero, is the deterministic fault-
	// injection plan executed alongside the traffic (its own RNG
	// stream, so traffic draws are untouched). The omitempty tag keeps
	// the canonical JSON — and with it exp.Fingerprint — identical to
	// pre-fault scenarios whenever no plan is set.
	Faults *fault.Plan `json:"Faults,omitempty"`
}

// Default returns the paper's baseline configuration at the given radix:
// 80% C / 20% V, 8 static hotspots, CC parameters from Table I, fabric
// calibration from section IV. Below the full radix 36, the CCTI limit
// is scaled down with the contributor count per hotspot, following the
// paper's own practice ("the CCT values have been increased to reflect
// the larger number of possible contributors ... compared to our
// earlier hardware experiments"): the table must cover fair shares a
// factor beyond the expected contributor count, and an oversized table
// only lengthens recovery from the startup transient.
func Default(radix int) Scenario {
	s := Scenario{
		Name:           fmt.Sprintf("fattree-%d", radix),
		Radix:          radix,
		Seed:           1,
		CCOn:           true,
		CC:             cc.PaperParams(),
		Fabric:         fabric.DefaultConfig(),
		FracBPct:       0,
		PPercent:       0,
		FracCOfRestPct: 80,
		CNodesActive:   true,
		NumHotspots:    8,
		Warmup:         4 * sim.Millisecond,
		Measure:        8 * sim.Millisecond,
	}
	contribs := s.NumNodes() * 80 / 100 / s.NumHotspots
	if limit := 2*contribs - 1; limit < int(s.CC.CCTILimit) && limit >= 7 {
		s.CC.CCTILimit = uint16(limit)
	}
	return s
}

// NumNodes returns the end-node count of the scenario's fat-tree.
func (s *Scenario) NumNodes() int { return s.Radix * s.Radix / 2 }

// Validate reports configuration errors.
func (s *Scenario) Validate() error {
	switch {
	case s.Radix < 4 || s.Radix%2 != 0:
		return fmt.Errorf("core: radix %d invalid (even, >= 4)", s.Radix)
	case s.FracBPct < 0 || s.FracBPct > 100:
		return fmt.Errorf("core: B fraction %d%% out of range", s.FracBPct)
	case s.PPercent < 0 || s.PPercent > 100:
		return fmt.Errorf("core: p %d out of range", s.PPercent)
	case s.FracCOfRestPct < 0 || s.FracCOfRestPct > 100:
		return fmt.Errorf("core: C fraction %d%% out of range", s.FracCOfRestPct)
	case s.NumHotspots < 1 || s.NumHotspots > s.NumNodes()/2:
		return fmt.Errorf("core: %d hotspots in a %d-node network", s.NumHotspots, s.NumNodes())
	case s.Warmup < 0 || s.Measure <= 0:
		return fmt.Errorf("core: warmup/measure invalid")
	case s.HotspotLifetime < 0:
		return fmt.Errorf("core: negative hotspot lifetime")
	}
	if s.CCOn {
		if !cc.Known(s.Backend) {
			return fmt.Errorf("core: unknown cc backend %q (registered: %v)", s.Backend, cc.Names())
		}
		// The IB CCA parameter set configures the default backend only;
		// other backends may run with a zero Params.
		if s.Backend == "" || s.Backend == cc.DefaultBackend {
			if err := s.CC.Validate(); err != nil {
				return err
			}
		}
	}
	if s.Faults != nil {
		// Structural validation only here; Build re-validates against
		// the concrete link set once the fabric exists.
		if err := s.Faults.Validate(nil); err != nil {
			return err
		}
	}
	return s.Fabric.Validate()
}

// TMaxNonHotspotGbps is the theoretical maximum average receive rate of
// the non-hotspot nodes if the hotspots were absent (the tmax curve of
// figures 5–8): all uniformly-destined offered load, spread evenly over
// the other nodes, capped by the end-node receive rate.
func (s *Scenario) TMaxNonHotspotGbps() float64 {
	n := s.NumNodes()
	inj := s.Fabric.InjectionRate.Gbps()
	numB := n * s.FracBPct / 100
	rest := n - numB
	numC := rest * s.FracCOfRestPct / 100
	numV := rest - numC
	uniform := float64(numB)*inj*float64(100-s.PPercent)/100 + float64(numV)*inj
	perNode := uniform / float64(n-1)
	if cap := s.Fabric.SinkRate.Gbps(); perNode > cap {
		perNode = cap
	}
	return perNode
}
