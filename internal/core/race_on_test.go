//go:build race

package core

// raceEnabled reports whether the race detector instruments this build;
// the bench guards skip under it — instrumented wall times say nothing
// about the production hot path.
const raceEnabled = true
