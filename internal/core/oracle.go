package core

import (
	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// oracleHeadroom keeps the oracle's aggregate hotspot allocation just
// under the sink capacity left by the uniform background: at 100%
// planned utilization the sink queue random-walks into the switch
// buffers and backpressure transiently spreads congestion upstream —
// exactly the damage the oracle exists to avoid — while every point of
// headroom is hotspot throughput given away. 95% balances the two.
const oracleHeadroom = 0.95

// oracleShares derives the clairvoyant per-flow fair-share allocation
// the oracle backend paces against, from the scenario's ground truth:
// the drawn role assignment and hotspot targeters. Each hotspot's sink
// capacity is split max-min fairly over the subset's contributors (the
// C nodes when active, plus the B nodes when they carry a hotspot
// share), and every contributor→target flow is pinned to that share.
// For moving forests, every slot of the shared target sequence is
// gated the same way — a contributor's uniform traffic to a past or
// future hotspot is a 1/(N−1) sliver, so over-gating it is noise.
// Victims appear nowhere in the map and are never delayed, which is
// exactly the selectivity an ideal mechanism has.
func oracleShares(s *Scenario, pop *Population, targeters []traffic.Targeter) map[ib.FlowKey]sim.Rate {
	shares := make(map[ib.FlowKey]sim.Rate)
	subsetContribs := make([][]ib.LID, s.NumHotspots)
	for node, role := range pop.Roles {
		sub := pop.Subset[node]
		if sub < 0 {
			continue // victim
		}
		switch role {
		case RoleC:
			if !s.CNodesActive {
				continue
			}
		case RoleB:
			if s.PPercent == 0 {
				continue
			}
		default:
			continue
		}
		subsetContribs[sub] = append(subsetContribs[sub], ib.LID(node))
	}
	// The hotspot sink also absorbs the uniform background: every node
	// spreads its non-hotspot load over the other N−1 nodes, and the
	// oracle must leave room for that sliver or its "fair" shares stand
	// a permanent queue at the sink. uniformBits is the total uniform
	// offered load (ground truth from the role mix), so each sink sees
	// uniformBits/(N−1) of it in expectation.
	n := s.NumNodes()
	var uniformBits float64
	for _, role := range pop.Roles {
		switch role {
		case RoleV:
			uniformBits += float64(s.Fabric.InjectionRate)
		case RoleB:
			uniformBits += float64(s.Fabric.InjectionRate) * float64(100-s.PPercent) / 100
		}
	}
	background := sim.Rate(uniformBits / float64(n-1))
	for sub, contribs := range subsetContribs {
		if len(contribs) == 0 {
			continue
		}
		// Split what the background leaves of the sink, with a little
		// headroom so transient bursts drain instead of standing.
		capacity := (s.Fabric.SinkRate - background) * oracleHeadroom
		if capacity <= 0 {
			capacity = s.Fabric.SinkRate / 100
		}
		share := capacity / sim.Rate(len(contribs))
		for _, target := range targeterLIDs(targeters[sub]) {
			for _, c := range contribs {
				if c == target {
					continue // generators never send to themselves
				}
				shares[ib.FlowKey{Src: c, Dst: target}] = share
			}
		}
	}
	return shares
}

// targeterLIDs returns the distinct hotspot LIDs a targeter will ever
// aim at.
func targeterLIDs(t traffic.Targeter) []ib.LID {
	switch tg := t.(type) {
	case traffic.StaticTarget:
		return []ib.LID{ib.LID(tg)}
	case *traffic.MovingTarget:
		seen := make(map[ib.LID]bool, len(tg.Seq))
		out := make([]ib.LID, 0, len(tg.Seq))
		for _, lid := range tg.Seq {
			if !seen[lid] {
				seen[lid] = true
				out = append(out, lid)
			}
		}
		return out
	default:
		return nil
	}
}
