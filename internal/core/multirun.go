package core

import (
	"fmt"
	"io"

	"repro/internal/stats"
)

// MultiResult aggregates one scenario's headline metrics across seeds.
type MultiResult struct {
	Seeds []uint64
	// Hotspot, NonHotspot, All and Total accumulate the Summary fields
	// of each run (Gbit/s).
	Hotspot, NonHotspot, All, Total stats.Acc
	// Events accumulates simulation effort.
	Events stats.Acc
}

// RunSeeds executes the scenario once per seed and aggregates the
// results; the population and every random draw differ per seed.
func RunSeeds(s Scenario, seeds []uint64) (*MultiResult, error) {
	return RunSeedsOpts(s, seeds, Opts{})
}

// RunSeedsOpts is RunSeeds with execution options: the per-seed runs
// are independent and fan out across Opts.Workers goroutines, and the
// aggregation happens afterwards in seed order, so the aggregates are
// bit-identical for any worker count.
func RunSeedsOpts(s Scenario, seeds []uint64, o Opts) (*MultiResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("core: no seeds")
	}
	scenarios := make([]Scenario, len(seeds))
	for i, seed := range seeds {
		scenarios[i] = s
		scenarios[i].Seed = seed
	}
	results, err := runBatch(o, scenarios)
	if err != nil {
		return nil, err
	}
	out := &MultiResult{Seeds: append([]uint64(nil), seeds...)}
	for _, r := range results {
		out.Hotspot.Add(r.Summary.HotspotAvgGbps)
		out.NonHotspot.Add(r.Summary.NonHotspotAvgGbps)
		out.All.Add(r.Summary.AllAvgGbps)
		out.Total.Add(r.Summary.TotalGbps)
		out.Events.Add(float64(r.Events))
	}
	return out, nil
}

// Seeds returns 1..n as a convenience seed list.
func Seeds(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i + 1)
	}
	return out
}

// Print writes the aggregated metrics with 95% confidence intervals.
func (m *MultiResult) Print(w io.Writer, label string) {
	fmt.Fprintf(w, "%s over %d seeds (mean ±95%% CI):\n", label, len(m.Seeds))
	fmt.Fprintf(w, "  hotspots     %8.3f ±%.3f Gbps\n", m.Hotspot.Mean(), m.Hotspot.CI95())
	fmt.Fprintf(w, "  non-hotspots %8.3f ±%.3f Gbps\n", m.NonHotspot.Mean(), m.NonHotspot.CI95())
	fmt.Fprintf(w, "  all nodes    %8.3f ±%.3f Gbps\n", m.All.Mean(), m.All.CI95())
	fmt.Fprintf(w, "  total        %8.1f ±%.1f Gbps\n", m.Total.Mean(), m.Total.CI95())
}
