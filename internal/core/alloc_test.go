package core

import (
	"testing"

	"repro/internal/ib"
	"repro/internal/sim"
)

// allocScenario is the steady-state lifecycle workload: uniform traffic
// on a radix-8 fat tree, observation and congestion control off, so the
// only per-packet costs are the generator, the fabric, and the sink.
func allocScenario() Scenario {
	s := Default(8)
	s.Name = "alloc-budget"
	s.CCOn = false // the budget covers the data path: gen → fabric → sink
	return s
}

// allocWarm runs the instance until every pool has reached steady state:
// packet pool primed by sink releases, event pool at the pending
// high-water mark, wheel slots, flow queues and staging rings grown to
// their working sizes. Two full wheel wraps (~67 us each) plus flow-map
// completion are comfortably inside 1 ms.
const allocWarm = 1000 * sim.Microsecond

// TestPacketLifecycleZeroAlloc is the PR's headline budget: after
// warm-up, a steady-state data packet travels generator → fabric → sink
// with zero heap allocations. Any regression — a closure on the hot
// path, a pool bypass, an observability retain — fails the budget.
func TestPacketLifecycleZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window simulation")
	}
	in, err := Build(allocScenario())
	if err != nil {
		t.Fatal(err)
	}
	simr := in.Net.Sim()
	in.Net.Start()
	simr.RunUntil(sim.Time(0).Add(allocWarm))

	preEvents := simr.Processed()
	end := simr.Now()
	avg := testing.AllocsPerRun(10, func() {
		end = end.Add(50 * sim.Microsecond)
		simr.RunUntil(end)
	})
	if simr.Processed() == preEvents {
		t.Fatal("measurement windows executed no events")
	}
	if avg != 0 {
		t.Fatalf("steady state allocates: %.1f allocs per 50 us window, want 0", avg)
	}

	stats := in.Net.PacketPool().Stats()
	if stats.Gets == 0 || stats.Puts == 0 {
		t.Fatalf("packet pool unused: %+v", stats)
	}
}

// BenchmarkPacketLifecycle measures the end-to-end per-packet cost of
// the pooled lifecycle: wall time divided by data packets delivered
// across fixed simulated windows. paperbench republishes the numbers in
// BENCH_kernel.json.
func BenchmarkPacketLifecycle(b *testing.B) {
	in, err := Build(allocScenario())
	if err != nil {
		b.Fatal(err)
	}
	simr := in.Net.Sim()
	in.Net.Start()
	simr.RunUntil(sim.Time(0).Add(allocWarm))

	rxBytes := func() uint64 {
		var sum uint64
		for lid := 0; lid < in.Scenario.NumNodes(); lid++ {
			sum += in.Net.HCA(ib.LID(lid)).Counters().RxDataPayload
		}
		return sum
	}

	pre := rxBytes()
	end := simr.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		end = end.Add(10 * sim.Microsecond)
		simr.RunUntil(end)
	}
	b.StopTimer()
	pkts := float64(rxBytes()-pre) / float64(ib.MTU)
	if pkts > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/pkts, "ns/pkt")
		b.ReportMetric(pkts/float64(b.N), "pkts/op")
	}
}
