package core

import (
	"strings"
	"testing"

	"repro/internal/ib"
	"repro/internal/sim"
)

func TestAssignRolesCounts(t *testing.T) {
	s := Default(18) // 162 nodes
	s.FracBPct = 50
	pop := assignRoles(&s, sim.NewRNG(3))
	b, c, v := pop.Counts()
	if b != 81 {
		t.Fatalf("B = %d, want 81", b)
	}
	// Rest: 81 nodes, 80% C.
	if c != 64 || v != 17 {
		t.Fatalf("C/V = %d/%d, want 64/17", c, v)
	}
	if len(pop.Hotspots) != 8 {
		t.Fatalf("hotspots = %d", len(pop.Hotspots))
	}
}

func TestAssignRolesHotspotsDistinct(t *testing.T) {
	s := Default(12)
	pop := assignRoles(&s, sim.NewRNG(9))
	seen := map[ib.LID]bool{}
	for _, h := range pop.Hotspots {
		if seen[h] {
			t.Fatalf("duplicate hotspot %d", h)
		}
		seen[h] = true
		if int(h) < 0 || int(h) >= s.NumNodes() {
			t.Fatalf("hotspot %d out of range", h)
		}
	}
	if len(pop.HotspotSet) != len(pop.Hotspots) {
		t.Fatal("hotspot set inconsistent")
	}
}

func TestAssignRolesSubsets(t *testing.T) {
	s := Default(18)
	s.FracBPct = 30
	pop := assignRoles(&s, sim.NewRNG(5))
	sizes := make([]int, s.NumHotspots)
	for node, r := range pop.Roles {
		sub := pop.Subset[node]
		if r == RoleV {
			if sub != -1 {
				t.Fatalf("V node %d in subset %d", node, sub)
			}
			continue
		}
		if sub < 0 || sub >= s.NumHotspots {
			t.Fatalf("node %d subset %d out of range", node, sub)
		}
		// A contributor never targets itself.
		if pop.Hotspots[sub] == ib.LID(node) {
			t.Fatalf("node %d targets itself", node)
		}
		sizes[sub]++
	}
	// Round-robin dealing keeps subsets balanced within a couple.
	min, max := sizes[0], sizes[0]
	for _, v := range sizes {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min > 2 {
		t.Fatalf("unbalanced subsets: %v", sizes)
	}
}

func TestAssignRolesDeterministic(t *testing.T) {
	s := Default(12)
	s.FracBPct = 40
	a := assignRoles(&s, sim.NewRNG(7))
	b := assignRoles(&s, sim.NewRNG(7))
	for i := range a.Roles {
		if a.Roles[i] != b.Roles[i] || a.Subset[i] != b.Subset[i] {
			t.Fatal("role assignment not deterministic")
		}
	}
	for i := range a.Hotspots {
		if a.Hotspots[i] != b.Hotspots[i] {
			t.Fatal("hotspots not deterministic")
		}
	}
}

func TestRoleStrings(t *testing.T) {
	if RoleV.String() != "V" || RoleC.String() != "C" || RoleB.String() != "B" {
		t.Fatal("role strings")
	}
	s := Default(12)
	pop := assignRoles(&s, sim.NewRNG(1))
	str := pop.String()
	for _, want := range []string{"B=", "C=", "V=", "hotspots=8"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String = %q", str)
		}
	}
}

func TestBuildTargeters(t *testing.T) {
	s := Default(12)
	pop := assignRoles(&s, sim.NewRNG(2))

	// Static: one fixed target per subset.
	ts := buildTargeters(&s, &pop, sim.NewRNG(3))
	for i, tg := range ts {
		if got := tg.Target(0); got != pop.Hotspots[i] {
			t.Fatalf("static target %d = %d, want %d", i, got, pop.Hotspots[i])
		}
		if got := tg.Target(sim.Time(sim.Second)); got != pop.Hotspots[i] {
			t.Fatal("static target moved")
		}
	}

	// Moving: slot 0 anchored at the drawn hotspot, then random.
	s.HotspotLifetime = sim.Millisecond
	ts = buildTargeters(&s, &pop, sim.NewRNG(3))
	for i, tg := range ts {
		if got := tg.Target(0); got != pop.Hotspots[i] {
			t.Fatalf("moving slot 0 target %d = %d, want %d", i, got, pop.Hotspots[i])
		}
	}
	// Over the run's slots, targets must actually move for at least
	// most subsets.
	moved := 0
	for _, tg := range ts {
		first := tg.Target(0)
		for slot := 1; slot < 10; slot++ {
			if tg.Target(sim.Time(slot)*sim.Time(sim.Millisecond)) != first {
				moved++
				break
			}
		}
	}
	if moved < len(ts)-1 {
		t.Fatalf("only %d of %d targeters moved", moved, len(ts))
	}
}
