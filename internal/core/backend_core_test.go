package core

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// signedBackendRun executes a reduced radix-8 scenario with the given
// CC setting and returns the ordered flight-recorder digest plus the
// headline aggregates — the same trajectory comparator the golden and
// differential tests use.
func signedBackendRun(t *testing.T, ccOn bool, backend string) (digest string, records uint64, res *Result) {
	t.Helper()
	s := Default(8)
	s.Warmup = 200 * sim.Microsecond
	s.Measure = 400 * sim.Microsecond
	s.CCOn = ccOn
	s.Backend = backend
	in, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	ob := in.Observe(ObserveOpts{})
	dig := obs.NewDigest()
	ob.Bus.Subscribe(dig)
	res = in.Execute()
	return dig.Sum(), dig.Records(), res
}

func TestNoCCBackendMatchesCCOff(t *testing.T) {
	// The nocc backend installs zero hooks and a nil throttle, so a
	// CCOn run under it must take the exact code path of a CCOff run:
	// identical event stream, identical aggregates.
	offDig, offRec, offRes := signedBackendRun(t, false, "")
	noDig, noRec, noRes := signedBackendRun(t, true, "nocc")
	if offDig != noDig || offRec != noRec {
		t.Errorf("trajectories diverged: cc-off %s/%d events vs nocc %s/%d events",
			offDig, offRec, noDig, noRec)
	}
	if offRes.Summary != noRes.Summary {
		t.Errorf("summaries diverged:\n cc-off %+v\n nocc   %+v", offRes.Summary, noRes.Summary)
	}
	if noRes.CCStats != (offRes.CCStats) {
		t.Errorf("nocc reported CC activity: %+v", noRes.CCStats)
	}
	if noRes.Backend != "nocc" || offRes.Backend != "" {
		t.Errorf("result backend labels: cc-off %q, nocc %q", offRes.Backend, noRes.Backend)
	}
}

func TestExplicitIbccMatchesDefault(t *testing.T) {
	// Selecting "ibcc" by name must be the same mechanism as the empty
	// default selector, event for event.
	defDig, defRec, defRes := signedBackendRun(t, true, "")
	ibDig, ibRec, ibRes := signedBackendRun(t, true, "ibcc")
	if defDig != ibDig || defRec != ibRec {
		t.Errorf("trajectories diverged: default %s/%d events vs ibcc %s/%d events",
			defDig, defRec, ibDig, ibRec)
	}
	if defRes.CCStats != ibRes.CCStats {
		t.Errorf("cc stats diverged: %+v vs %+v", defRes.CCStats, ibRes.CCStats)
	}
	if defRes.Backend != "ibcc" || ibRes.Backend != "ibcc" {
		t.Errorf("resolved backend names: %q and %q, want ibcc", defRes.Backend, ibRes.Backend)
	}
}

func TestBuildRejectsUnknownBackend(t *testing.T) {
	s := Default(8)
	s.Backend = "no-such-mechanism"
	if _, err := Build(s); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestOracleBackendBuildsAndGates(t *testing.T) {
	// The oracle must come out of Build with ground truth attached: a
	// hotspot scenario has contributors, so its share table is non-empty
	// and the instance carries a live throttle.
	s := Default(8)
	s.Warmup = 200 * sim.Microsecond
	s.Measure = 400 * sim.Microsecond
	s.Backend = "oracle"
	in, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if in.Backend == nil || in.Backend.Name() != "oracle" {
		t.Fatalf("instance backend = %v", in.Backend)
	}
	if in.CC != nil {
		t.Error("oracle run must leave the ibcc manager handle nil")
	}
	flows, mean := in.Backend.ThrottleSummary()
	if flows == 0 || mean <= 1 {
		t.Errorf("oracle gates %d flows at mean depth %v; expected a populated share table", flows, mean)
	}
	res := in.Execute()
	if res.Backend != "oracle" {
		t.Errorf("result backend = %q", res.Backend)
	}
}
