package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cc"
	"repro/internal/ckpt"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Checkpoint/restore for whole runs. A Snapshot captures everything the
// scenario cannot rebuild: the kernel clock/sequence/pending events,
// every packet in custody, the fabric's queue/credit/link state, the CC
// backend's tables, each generator's cursors and RNG position, the
// fault injector's bookkeeping and drop streams, and the metrics
// warmup snapshot. Restore re-runs Build from the stored scenario —
// recreating topology, wiring, action bindings and every build-time RNG
// draw deterministically — then overlays that mutable state, so the
// continuation is byte-identical to never having stopped (the
// checkpoint differential tests pin this against KernelSignature).

// Snapshot captures the instance's complete mutable state. The
// simulator must be between events (never call from inside a running
// event handler's stack via a hook).
func (in *Instance) Snapshot() (*ckpt.Snapshot, error) {
	scen, err := json.Marshal(&in.Scenario)
	if err != nil {
		return nil, fmt.Errorf("core: encoding scenario: %w", err)
	}
	simr := in.Net.Sim()
	tab := ckpt.NewPacketTable()
	fabBlob, err := json.Marshal(in.Net.ExportState(tab))
	if err != nil {
		return nil, fmt.Errorf("core: encoding fabric state: %w", err)
	}
	snap := &ckpt.Snapshot{
		Version:  ckpt.Version,
		Scenario: scen,
		Kernel:   simr.ExportKernel(),
		Fabric:   fabBlob,
	}
	if in.Backend != nil {
		snap.Backend = in.Backend.Name()
		if cp, ok := in.Backend.(cc.Checkpointable); ok {
			blob, err := cp.ExportState()
			if err != nil {
				return nil, fmt.Errorf("core: backend %s: %w", snap.Backend, err)
			}
			snap.CC = blob
		}
	}
	snap.Traffic = make([]json.RawMessage, len(in.sources))
	for i, gen := range in.sources {
		if gen == nil {
			continue // marshals as null: the node is idle by scenario
		}
		blob, err := gen.ExportState(tab)
		if err != nil {
			return nil, fmt.Errorf("core: generator %d: %w", i, err)
		}
		snap.Traffic[i] = blob
	}
	if in.injector != nil {
		if snap.Fault, err = in.injector.ExportState(); err != nil {
			return nil, fmt.Errorf("core: fault injector: %w", err)
		}
	}
	if snap.Metrics, err = in.collector.ExportState(); err != nil {
		return nil, fmt.Errorf("core: metrics collector: %w", err)
	}

	fc := in.Net.Codec(tab)
	for _, e := range simr.PendingEvents() {
		rec, err := in.encodeAction(e.Action(), fc)
		if err != nil {
			return nil, err
		}
		rec.T = int64(e.Time())
		rec.Seq = e.Seq()
		snap.Events = append(snap.Events, rec)
	}
	snap.Pkts = tab.Records()
	if in.dig != nil {
		sum, n := in.dig.State()
		snap.Digest = &ckpt.DigestState{Sum: sum, Records: n}
	}
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	return snap, nil
}

// encodeAction routes a pending action to the codec that owns it.
func (in *Instance) encodeAction(a sim.Action, fc *fabric.Codec) (ckpt.EventRecord, error) {
	if rec, ok := fc.EncodeAction(a); ok {
		return rec, nil
	}
	if cp, ok := in.Backend.(cc.Checkpointable); ok {
		if rec, ok := cp.EncodeAction(a); ok {
			return rec, nil
		}
	}
	if in.injector != nil {
		if rec, ok := in.injector.EncodeAction(a); ok {
			return rec, nil
		}
	}
	if rec, ok := in.collector.EncodeAction(a); ok {
		return rec, nil
	}
	return ckpt.EventRecord{}, fmt.Errorf(
		"core: pending event %T has no checkpoint codec (runs with trace or telemetry consumers scheduling their own events cannot be checkpointed)", a)
}

// decodeAction routes a record to the codec that owns its kind.
func (in *Instance) decodeAction(rec ckpt.EventRecord, fc *fabric.Codec) (sim.Action, func(*sim.Event), error) {
	act, attach, ok, err := fc.DecodeAction(rec)
	if ok || err != nil {
		return act, attach, err
	}
	if cp, cok := in.Backend.(cc.Checkpointable); cok {
		if act, attach, ok, err = cp.DecodeAction(rec); ok || err != nil {
			return act, attach, err
		}
	}
	if in.injector != nil {
		if act, attach, ok, err = in.injector.DecodeAction(rec); ok || err != nil {
			return act, attach, err
		}
	}
	if act, attach, ok, err = in.collector.DecodeAction(rec); ok || err != nil {
		return act, attach, err
	}
	return nil, nil, fmt.Errorf("unknown event kind %q", rec.Kind)
}

// Checkpoint writes the instance's full state to w in the versioned,
// CRC-protected envelope format.
func (in *Instance) Checkpoint(w io.Writer) error {
	snap, err := in.Snapshot()
	if err != nil {
		return err
	}
	return ckpt.Encode(w, snap)
}

// AttachDigest subscribes (once) an order-sensitive digest over the
// run's full event stream and returns it. Snapshot records the digest's
// position, so a restored continuation's digest equals an uninterrupted
// run's — the acceptance oracle of checkpoint/restore.
func (in *Instance) AttachDigest() *obs.Digest {
	if in.dig == nil {
		in.dig = obs.NewDigest()
		in.bus().Subscribe(in.dig)
	}
	return in.dig
}

// Restored reports whether the instance was rebuilt from a checkpoint.
func (in *Instance) Restored() bool { return in.restored }

// Restore reads a checkpoint envelope and rebuilds the run it captured,
// ready for Execute (which continues from the snapshot instant).
func Restore(r io.Reader) (*Instance, error) {
	snap, err := ckpt.Decode(r)
	if err != nil {
		return nil, err
	}
	return RestoreSnapshot(snap)
}

// RestoreFile restores from a checkpoint file (or the newest checkpoint
// under a directory).
func RestoreFile(path string) (*Instance, error) {
	file, err := ckpt.Latest(path)
	if err != nil {
		return nil, err
	}
	snap, err := ckpt.Load(file)
	if err != nil {
		return nil, err
	}
	return RestoreSnapshot(snap)
}

// RestoreSnapshot rebuilds a run from a validated snapshot: Build from
// the stored scenario, then overlay every piece of mutable state and
// re-insert the pending events in (time, seq) order.
func RestoreSnapshot(snap *ckpt.Snapshot) (*Instance, error) {
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	var s Scenario
	if err := json.Unmarshal(snap.Scenario, &s); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint scenario: %w", err)
	}
	in, err := Build(s)
	if err != nil {
		return nil, fmt.Errorf("core: rebuilding checkpoint scenario: %w", err)
	}
	var name string
	if in.Backend != nil {
		name = in.Backend.Name()
	}
	if snap.Backend != name {
		return nil, fmt.Errorf("core: checkpoint backend %q, scenario builds %q", snap.Backend, name)
	}

	tab := ckpt.RestoreTable(snap.Pkts)
	var fst fabric.State
	if err := json.Unmarshal(snap.Fabric, &fst); err != nil {
		return nil, fmt.Errorf("core: decoding fabric state: %w", err)
	}
	if err := in.Net.RestoreState(&fst, tab); err != nil {
		return nil, err
	}
	if len(snap.CC) > 0 {
		cp, ok := in.Backend.(cc.Checkpointable)
		if !ok {
			return nil, fmt.Errorf("core: checkpoint carries cc state but backend %q cannot restore it", name)
		}
		if err := cp.RestoreState(snap.CC); err != nil {
			return nil, err
		}
	}
	if len(snap.Traffic) != len(in.sources) {
		return nil, fmt.Errorf("core: checkpoint has %d generator states, scenario builds %d", len(snap.Traffic), len(in.sources))
	}
	for i, blob := range snap.Traffic {
		null := len(blob) == 0 || string(blob) == "null"
		if in.sources[i] == nil {
			if !null {
				return nil, fmt.Errorf("core: checkpoint has generator state for idle node %d", i)
			}
			continue
		}
		if null {
			return nil, fmt.Errorf("core: checkpoint missing generator state for node %d", i)
		}
		if err := in.sources[i].RestoreState(blob, tab); err != nil {
			return nil, err
		}
	}
	switch {
	case in.injector != nil && len(snap.Fault) == 0:
		return nil, fmt.Errorf("core: checkpoint missing fault-injector state")
	case in.injector == nil && len(snap.Fault) > 0:
		return nil, fmt.Errorf("core: checkpoint has fault state but scenario builds no injector")
	case in.injector != nil:
		if err := in.injector.RestoreState(snap.Fault); err != nil {
			return nil, err
		}
	}
	if len(snap.Metrics) > 0 {
		if err := in.collector.RestoreState(snap.Metrics); err != nil {
			return nil, err
		}
	}

	simr := in.Net.Sim()
	simr.BeginRestore(snap.Kernel)
	fc := in.Net.Codec(tab)
	for i, rec := range snap.Events {
		act, attach, err := in.decodeAction(rec, fc)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint event %d (%s): %w", i, rec.Kind, err)
		}
		e := simr.RestoreEvent(sim.Time(rec.T), rec.Seq, act)
		if attach != nil {
			attach(e)
		}
	}

	if snap.Digest != nil {
		in.dig = obs.NewDigest()
		in.dig.RestoreState(snap.Digest.Sum, snap.Digest.Records)
		in.bus().Subscribe(in.dig)
	}
	in.restored = true
	return in, nil
}

// CkptOpts configures periodic checkpointing during Execute.
type CkptOpts struct {
	// Every is the sim-time cadence between checkpoints (<= 0 disables
	// them, making ExecuteWithCheckpoints equivalent to Execute).
	Every sim.Duration
	// Dir receives the rolling checkpoint files; Base prefixes their
	// names (default "ckpt").
	Dir  string
	Base string
	// Keep bounds the rolling series (minimum 1).
	Keep int
	// OnSave, when set, observes each written checkpoint path.
	OnSave func(path string, at sim.Time)
}

// ExecuteWithCheckpoints runs the instance like Execute, pausing at
// every cadence boundary to write a crash-safe rolling checkpoint.
// Stepping the simulator is trajectory-preserving (the invariant
// checker's windowed sweeps pin that), so the result is identical to a
// plain Execute. Incompatible with the invariant checker's own run
// loop; attach one or the other.
func (in *Instance) ExecuteWithCheckpoints(o CkptOpts) (*Result, error) {
	if o.Every <= 0 {
		return in.Execute(), nil
	}
	if in.checker != nil {
		return nil, fmt.Errorf("core: cadence checkpointing cannot be combined with the invariant checker")
	}
	if in.executed {
		panic("core: instance executed twice")
	}
	in.executed = true
	s := &in.Scenario
	simr := in.Net.Sim()
	in.start()
	end := sim.Time(0).Add(s.Warmup + s.Measure)
	keeper := &ckpt.Keeper{Dir: o.Dir, Base: o.Base, Keep: o.Keep}
	for {
		next := ckpt.NextCadence(simr.Now(), o.Every)
		if next >= end {
			simr.RunUntil(end)
			break
		}
		simr.RunUntil(next)
		snap, err := in.Snapshot()
		if err != nil {
			return nil, err
		}
		path, err := keeper.Save(snap)
		if err != nil {
			return nil, err
		}
		if o.OnSave != nil {
			o.OnSave(path, simr.Now())
		}
	}
	return in.reduce(), nil
}
