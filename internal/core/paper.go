package core

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// TableII holds the five row groups of the paper's Table II (silent
// congestion trees on the full population): rates in Gbit/s.
type TableII struct {
	// NoHotspotsNoCC / NoHotspotsCC: only the V nodes send, uniformly.
	NoHotspotsNoCC float64
	NoHotspotsCC   float64
	// HotspotsNoCC / HotspotsCC: the C nodes flood the 8 hotspots.
	HotspotsNoCC struct{ Hot, NonHot float64 }
	HotspotsCC   struct{ Hot, NonHot float64 }
	// Totals are the total network throughput with hotspots active.
	TotalNoCC float64
	TotalCC   float64
}

// RunTableII reproduces Table II: four configurations of the silent
// forest scenario plus total-throughput rows, from one base scenario
// (use Default(radix) and adjust Warmup/Measure/Seed).
func RunTableII(base Scenario) (*TableII, error) {
	return RunTableIIOpts(base, Opts{})
}

// TableIIScenarios derives Table II's four configurations (hotspots
// off/on × CC off/on, in the table's row order) from one base scenario.
// The differential kernel check reuses them as its validation corpus.
func TableIIScenarios(base Scenario) []Scenario {
	configs := []struct{ ccOn, cActive bool }{
		{false, false}, {true, false}, {false, true}, {true, true},
	}
	scenarios := make([]Scenario, len(configs))
	for i, c := range configs {
		s := base
		s.FracBPct = 0
		s.CCOn = c.ccOn
		s.CNodesActive = c.cActive
		s.Name = fmt.Sprintf("tableII cc=%v hotspots=%v", c.ccOn, c.cActive)
		scenarios[i] = s
	}
	return scenarios
}

// RunTableIIOpts is RunTableII with execution options; the table's four
// configurations are independent and run concurrently under Workers>1.
func RunTableIIOpts(base Scenario, o Opts) (*TableII, error) {
	results, err := runBatch(o, TableIIScenarios(base))
	if err != nil {
		return nil, err
	}
	t := &TableII{}
	t.NoHotspotsNoCC = results[0].Summary.AllAvgGbps
	t.NoHotspotsCC = results[1].Summary.AllAvgGbps
	t.HotspotsNoCC.Hot = results[2].Summary.HotspotAvgGbps
	t.HotspotsNoCC.NonHot = results[2].Summary.NonHotspotAvgGbps
	t.TotalNoCC = results[2].Summary.TotalGbps
	t.HotspotsCC.Hot = results[3].Summary.HotspotAvgGbps
	t.HotspotsCC.NonHot = results[3].Summary.NonHotspotAvgGbps
	t.TotalCC = results[3].Summary.TotalGbps
	return t, nil
}

// Print writes the table in the paper's row order.
func (t *TableII) Print(w io.Writer) {
	fmt.Fprintf(w, "Table II: performance numbers (Gbps), silent congestion trees\n")
	fmt.Fprintf(w, "  No hotspots, no CC : avg receive rate        %7.3f\n", t.NoHotspotsNoCC)
	fmt.Fprintf(w, "  No hotspots, CC on : avg receive rate        %7.3f\n", t.NoHotspotsCC)
	fmt.Fprintf(w, "  Hotspots, no CC    : hotspots avg rcv        %7.3f\n", t.HotspotsNoCC.Hot)
	fmt.Fprintf(w, "                       non-hotspots avg rcv    %7.3f\n", t.HotspotsNoCC.NonHot)
	fmt.Fprintf(w, "  Hotspots, CC on    : hotspots avg rcv        %7.3f\n", t.HotspotsCC.Hot)
	fmt.Fprintf(w, "                       non-hotspots avg rcv    %7.3f\n", t.HotspotsCC.NonHot)
	fmt.Fprintf(w, "  Total throughput   : without CC              %7.1f\n", t.TotalNoCC)
	fmt.Fprintf(w, "                       with CC                 %7.1f\n", t.TotalCC)
	if t.TotalNoCC > 0 {
		fmt.Fprintf(w, "  Improvement by enabling CC: %.2fx\n", t.TotalCC/t.TotalNoCC)
	}
}

// WindyPoint is one p-value of a windy-forest sweep (figures 5–8): all
// rates in Gbit/s, Improvement is the total-throughput factor plotted in
// sub-figure (c).
type WindyPoint struct {
	P           int
	NonHotOff   float64
	NonHotOn    float64
	HotOff      float64
	HotOn       float64
	TotalOff    float64
	TotalOn     float64
	TMax        float64
	Improvement float64
}

// RunWindySweep reproduces one of figures 5–8: the base scenario with
// fracB percent B nodes, swept over the given p values, with CC off and
// on at each point.
func RunWindySweep(base Scenario, fracB int, ps []int) ([]WindyPoint, error) {
	return RunWindySweepOpts(base, fracB, ps, Opts{})
}

// RunWindySweepOpts is RunWindySweep with execution options; the
// 2*len(ps) runs (CC off and on per p) are independent and fan out
// across the worker pool.
func RunWindySweepOpts(base Scenario, fracB int, ps []int, o Opts) ([]WindyPoint, error) {
	scenarios := make([]Scenario, 0, 2*len(ps))
	for _, p := range ps {
		s := base
		s.FracBPct = fracB
		s.PPercent = p
		s.CNodesActive = true
		s.CCOn = false
		s.Name = fmt.Sprintf("windy B=%d%% p=%d ccOff", fracB, p)
		scenarios = append(scenarios, s)
		s.CCOn = true
		s.Name = fmt.Sprintf("windy B=%d%% p=%d ccOn", fracB, p)
		scenarios = append(scenarios, s)
	}
	results, err := runBatch(o, scenarios)
	if err != nil {
		return nil, err
	}
	out := make([]WindyPoint, 0, len(ps))
	for i, p := range ps {
		off, on := results[2*i], results[2*i+1]
		pt := WindyPoint{
			P:         p,
			TMax:      scenarios[2*i].TMaxNonHotspotGbps(),
			NonHotOff: off.Summary.NonHotspotAvgGbps,
			HotOff:    off.Summary.HotspotAvgGbps,
			TotalOff:  off.Summary.TotalGbps,
			NonHotOn:  on.Summary.NonHotspotAvgGbps,
			HotOn:     on.Summary.HotspotAvgGbps,
			TotalOn:   on.Summary.TotalGbps,
		}
		if pt.TotalOff > 0 {
			pt.Improvement = pt.TotalOn / pt.TotalOff
		}
		out = append(out, pt)
	}
	return out, nil
}

// PrintWindy writes a windy sweep as the three series of one paper
// figure: (a) non-hotspot receive rates with tmax, (b) hotspot receive
// rates, (c) total throughput improvement.
func PrintWindy(w io.Writer, fig string, fracB int, pts []WindyPoint) {
	fmt.Fprintf(w, "Figure %s: windy forest, %d%% B nodes\n", fig, fracB)
	fmt.Fprintf(w, "  %4s  %9s %9s %9s  %9s %9s  %12s\n",
		"p", "nonhotOff", "nonhotOn", "tmax", "hotOff", "hotOn", "improvement")
	for _, pt := range pts {
		fmt.Fprintf(w, "  %4d  %9.3f %9.3f %9.3f  %9.3f %9.3f  %11.2fx\n",
			pt.P, pt.NonHotOff, pt.NonHotOn, pt.TMax, pt.HotOff, pt.HotOn, pt.Improvement)
	}
}

// MovingPoint is one hotspot lifetime of a moving-forest sweep
// (figures 9–10): the average receive rate over all nodes, CC off/on.
type MovingPoint struct {
	Lifetime sim.Duration
	AllOff   float64
	AllOn    float64
}

// RunMovingSweep reproduces one series of figures 9 or 10: the base
// scenario (node mix and p already set) swept over hotspot lifetimes.
func RunMovingSweep(base Scenario, lifetimes []sim.Duration) ([]MovingPoint, error) {
	return RunMovingSweepOpts(base, lifetimes, Opts{})
}

// RunMovingSweepOpts is RunMovingSweep with execution options; the
// 2*len(lifetimes) runs are independent and fan out across the worker
// pool.
func RunMovingSweepOpts(base Scenario, lifetimes []sim.Duration, o Opts) ([]MovingPoint, error) {
	scenarios := make([]Scenario, 0, 2*len(lifetimes))
	for _, lt := range lifetimes {
		s := base
		s.HotspotLifetime = lt
		s.CNodesActive = true
		// The window must span several hotspot lifetimes for the
		// average to be meaningful.
		if min := 6 * lt; s.Measure < min {
			s.Measure = min
		}
		s.CCOn = false
		s.Name = fmt.Sprintf("moving lt=%v ccOff", lt)
		scenarios = append(scenarios, s)
		s.CCOn = true
		s.Name = fmt.Sprintf("moving lt=%v ccOn", lt)
		scenarios = append(scenarios, s)
	}
	results, err := runBatch(o, scenarios)
	if err != nil {
		return nil, err
	}
	out := make([]MovingPoint, 0, len(lifetimes))
	for i, lt := range lifetimes {
		out = append(out, MovingPoint{
			Lifetime: lt,
			AllOff:   results[2*i].Summary.AllAvgGbps,
			AllOn:    results[2*i+1].Summary.AllAvgGbps,
		})
	}
	return out, nil
}

// PrintMoving writes a moving sweep as one series of figures 9–10.
func PrintMoving(w io.Writer, fig, label string, pts []MovingPoint) {
	fmt.Fprintf(w, "Figure %s: moving congestion trees, %s\n", fig, label)
	fmt.Fprintf(w, "  %12s  %10s %10s  %8s\n", "lifetime", "allOff", "allOn", "gain")
	for _, pt := range pts {
		gain := 0.0
		if pt.AllOff > 0 {
			gain = pt.AllOn / pt.AllOff
		}
		fmt.Fprintf(w, "  %12v  %10.3f %10.3f  %7.2fx\n", pt.Lifetime, pt.AllOff, pt.AllOn, gain)
	}
}

// PaperPValues are the p values the paper sweeps in figures 5–8.
func PaperPValues() []int {
	return []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
}

// PaperLifetimes returns the paper's hotspot lifetimes (10 ms down to
// 1 ms), optionally scaled by a factor for reduced-scale runs.
func PaperLifetimes(scale float64) []sim.Duration {
	base := []float64{10, 8, 6, 5, 4, 3, 2, 1}
	out := make([]sim.Duration, len(base))
	for i, ms := range base {
		out[i] = sim.Duration(ms * scale * float64(sim.Millisecond))
	}
	return out
}
