package core

import (
	"sync"

	"repro/internal/check"
	"repro/internal/obs"
	"repro/internal/par"
)

// TreedResult pairs a run's result with the congestion-tree report its
// flight recorder reconstructed — the unit the tournament scorer
// consumes.
type TreedResult struct {
	Result *Result
	// Trees is the congestion-tree analyzer's report over the run.
	Trees *obs.TreeReport
	// Check is the invariant checker's report, nil for unchecked runs.
	Check *check.Report
}

// RunTreed executes one scenario with the congestion-tree analyzer
// attached (and, when checked, under the runtime invariant checker; a
// run with violations returns the report alongside the error).
func RunTreed(s Scenario, checked bool) (*TreedResult, error) {
	in, err := Build(s)
	if err != nil {
		return nil, err
	}
	ob := in.Observe(ObserveOpts{Tree: true})
	var ck *check.Checker
	if checked {
		ck = in.Check(CheckOpts{})
	}
	res := in.Execute()
	tr := &TreedResult{Result: res, Trees: ob.TreeReport()}
	if ck != nil {
		tr.Check = ck.Report()
		if err := tr.Check.Err(); err != nil {
			return tr, err
		}
	}
	return tr, nil
}

// RunTreedBatch executes the scenarios on the sweep worker pool with
// the tree analyzer attached to every run, returning results in
// submission order. Opts.Lookup is not consulted: stored artifacts
// carry no flight-recorder stream, so a tree-scored sweep always
// simulates.
func RunTreedBatch(o Opts, scenarios []Scenario) ([]*TreedResult, error) {
	var mu sync.Mutex
	return par.Map(o.Ctx, o.workers(), len(scenarios), func(i int) (*TreedResult, error) {
		tr, err := RunTreed(scenarios[i], o.Check)
		if err != nil {
			return nil, err
		}
		if o.OnResult != nil {
			mu.Lock()
			o.OnResult(scenarios[i], tr.Result, false)
			mu.Unlock()
		}
		return tr, nil
	})
}
