package core

import (
	"sync"

	"repro/internal/check"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/telemetry"
)

// TreedResult pairs a run's result with the congestion-tree report its
// flight recorder reconstructed — the unit the tournament scorer
// consumes.
type TreedResult struct {
	Result *Result
	// Trees is the congestion-tree analyzer's report over the run.
	Trees *obs.TreeReport
	// Check is the invariant checker's report, nil for unchecked runs.
	Check *check.Report
}

// RunTreed executes one scenario with the congestion-tree analyzer
// attached (and, when checked, under the runtime invariant checker; a
// run with violations returns the report alongside the error).
func RunTreed(s Scenario, checked bool) (*TreedResult, error) {
	return runTreed(s, checked, nil)
}

// runTreed is RunTreed with an optional telemetry hub: the sampler
// shares the run's flight-recorder bus with the tree analyzer (and the
// checker), so one run feeds all three without extra event cost.
func runTreed(s Scenario, checked bool, hub *telemetry.Hub) (*TreedResult, error) {
	in, err := Build(s)
	if err != nil {
		return nil, err
	}
	ob := in.Observe(ObserveOpts{Tree: true})
	smp := hub.StartRun(s.Name)
	smp.Attach(in.bus())
	var ck *check.Checker
	if checked {
		ck = in.Check(CheckOpts{})
	}
	res := in.Execute()
	hub.FinishRun(smp)
	tr := &TreedResult{Result: res, Trees: ob.TreeReport()}
	if ck != nil {
		tr.Check = ck.Report()
		if err := tr.Check.Err(); err != nil {
			return tr, err
		}
	}
	return tr, nil
}

// RunTreedBatch executes the scenarios on the sweep worker pool with
// the tree analyzer attached to every run, returning results in
// submission order. Opts.Lookup is not consulted: stored artifacts
// carry no flight-recorder stream, so a tree-scored sweep always
// simulates.
func RunTreedBatch(o Opts, scenarios []Scenario) ([]*TreedResult, error) {
	var mu sync.Mutex
	return par.MapWorker(o.Ctx, o.workers(), len(scenarios), func(worker, i int) (*TreedResult, error) {
		s := scenarios[i]
		span := o.Spans.Begin(s.Name, worker)
		tr, err := runTreed(s, o.Check, o.Telemetry)
		if err != nil {
			o.Spans.End(span, 0, false, err.Error())
			return nil, err
		}
		o.Spans.End(span, tr.Result.Events, false, "")
		if o.OnResult != nil {
			mu.Lock()
			o.OnResult(s, tr.Result, false)
			mu.Unlock()
		}
		return tr, nil
	})
}
