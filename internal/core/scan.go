package core

import (
	"fmt"
	"io"
)

// ScanPoint is one configuration of a parameter scan: the swept value
// and the headline rates it produced (Gbit/s), plus the improvement over
// the shared CC-off baseline.
type ScanPoint struct {
	Value       int
	Hot         float64
	NonHot      float64
	Total       float64
	Improvement float64
	MaxCCTI     uint16
	FECNMarked  uint64
}

// Scan is the result of a one-dimensional parameter scan.
type Scan struct {
	Name string
	// Baseline is the CC-off run every point is compared against.
	Baseline struct{ Hot, NonHot, Total float64 }
	Points   []ScanPoint
}

// ScanCC sweeps one congestion-control (or scenario) parameter: for each
// value, apply mutates a copy of the base scenario, which then runs with
// CC on. A single CC-off baseline of the unmutated scenario anchors the
// improvement factors. This reproduces the kind of tuning study the
// authors' earlier hardware work performed, and which the paper says
// "remains a highly specialized task".
func ScanCC(base Scenario, name string, values []int, apply func(*Scenario, int)) (*Scan, error) {
	return ScanCCOpts(base, name, values, apply, Opts{})
}

// ScanCCOpts is ScanCC with execution options; the baseline and every
// scan point are independent and fan out across the worker pool, with
// the improvement factors computed afterwards in value order.
func ScanCCOpts(base Scenario, name string, values []int, apply func(*Scenario, int), o Opts) (*Scan, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("core: empty scan")
	}
	if apply == nil {
		return nil, fmt.Errorf("core: nil apply")
	}
	// Scenario 0 is the shared CC-off baseline, then one per value.
	scenarios := make([]Scenario, 0, 1+len(values))
	off := base
	off.CCOn = false
	off.Name = name + " baseline"
	scenarios = append(scenarios, off)
	for _, v := range values {
		s := base
		s.CCOn = true
		s.Name = fmt.Sprintf("%s=%d", name, v)
		apply(&s, v)
		scenarios = append(scenarios, s)
	}
	results, err := runBatch(o, scenarios)
	if err != nil {
		return nil, fmt.Errorf("core: scan %s: %w", name, err)
	}

	out := &Scan{Name: name}
	out.Baseline.Hot = results[0].Summary.HotspotAvgGbps
	out.Baseline.NonHot = results[0].Summary.NonHotspotAvgGbps
	out.Baseline.Total = results[0].Summary.TotalGbps
	for i, v := range values {
		r := results[1+i]
		pt := ScanPoint{
			Value:      v,
			Hot:        r.Summary.HotspotAvgGbps,
			NonHot:     r.Summary.NonHotspotAvgGbps,
			Total:      r.Summary.TotalGbps,
			MaxCCTI:    r.CCStats.MaxCCTI,
			FECNMarked: r.CCStats.FECNMarked,
		}
		if out.Baseline.Total > 0 {
			pt.Improvement = pt.Total / out.Baseline.Total
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// Best returns the point with the highest total throughput, or the
// zero ScanPoint when the scan has no points.
func (s *Scan) Best() ScanPoint {
	if len(s.Points) == 0 {
		return ScanPoint{}
	}
	best := s.Points[0]
	for _, p := range s.Points[1:] {
		if p.Total > best.Total {
			best = p
		}
	}
	return best
}

// Print writes the scan as a table.
func (s *Scan) Print(w io.Writer) {
	fmt.Fprintf(w, "parameter scan: %s (baseline without CC: hot %.3f, non-hot %.3f, total %.1f)\n",
		s.Name, s.Baseline.Hot, s.Baseline.NonHot, s.Baseline.Total)
	fmt.Fprintf(w, "  %8s %9s %9s %9s %9s %9s %10s\n",
		"value", "hot", "nonhot", "total", "gain", "maxCCTI", "marks")
	for _, p := range s.Points {
		fmt.Fprintf(w, "  %8d %9.3f %9.3f %9.1f %8.2fx %9d %10d\n",
			p.Value, p.Hot, p.NonHot, p.Total, p.Improvement, p.MaxCCTI, p.FECNMarked)
	}
	if len(s.Points) > 0 {
		best := s.Best()
		fmt.Fprintf(w, "  best total at %s=%d (%.1f Gbps, %.2fx)\n", s.Name, best.Value, best.Total, best.Improvement)
	}
}
