package core

import (
	"os"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestDiagTableII prints a reduced-scale Table II; run manually with
// -run TestDiagTableII -v while tuning.
func TestDiagTableII(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic")
	}
	for _, radix := range []int{12, 18} {
		base := Default(radix)
		base.Warmup = 2 * sim.Millisecond
		base.Measure = 4 * sim.Millisecond
		start := time.Now()
		tab, err := RunTableII(base)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("radix %d (%d nodes) took %v", radix, base.NumNodes(), time.Since(start))
		tab.Print(os.Stdout)
	}
}
