package core

import (
	"strings"
	"testing"
)

func TestRunSeeds(t *testing.T) {
	s := quick(8)
	m, err := RunSeeds(s, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Total.N() != 3 || len(m.Seeds) != 3 {
		t.Fatalf("n = %d", m.Total.N())
	}
	if m.Total.Mean() <= 0 {
		t.Fatal("no throughput")
	}
	if m.Total.Min() > m.Total.Mean() || m.Total.Max() < m.Total.Mean() {
		t.Fatal("mean outside [min,max]")
	}
	// Seeds genuinely vary the outcome.
	if m.Total.Min() == m.Total.Max() {
		t.Fatal("seeds produced identical totals")
	}
	var sb strings.Builder
	m.Print(&sb, "table II, CC on")
	out := sb.String()
	for _, want := range []string{"3 seeds", "hotspots", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Print missing %q:\n%s", want, out)
		}
	}
}

func TestRunSeedsErrors(t *testing.T) {
	if _, err := RunSeeds(quick(8), nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
	bad := quick(8)
	bad.Radix = 3
	if _, err := RunSeeds(bad, []uint64{1}); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

func TestSeedsHelper(t *testing.T) {
	s := Seeds(4)
	if len(s) != 4 || s[0] != 1 || s[3] != 4 {
		t.Fatalf("Seeds = %v", s)
	}
}
