package core

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestAttachStandardTrace(t *testing.T) {
	s := quick(8)
	in, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	rec := in.AttachStandardTrace(100 * sim.Microsecond)
	res := in.Execute()
	if res == nil {
		t.Fatal("no result")
	}
	series := rec.Series()
	names := map[string]bool{}
	for _, sr := range series {
		names[sr.Name] = true
		want := int((s.Warmup + s.Measure) / (100 * sim.Microsecond))
		if len(sr.Values) != want {
			t.Fatalf("series %s has %d samples, want %d", sr.Name, len(sr.Values), want)
		}
	}
	for _, want := range []string{
		"hotspot_rx_gbps_avg", "nonhotspot_rx_gbps_avg", "total_rx_gbps",
		"max_switch_queue_bytes", "fecn_marks_per_s", "becn_per_s",
		"throttled_flows", "mean_ccti",
	} {
		if !names[want] {
			t.Fatalf("series %q missing (have %v)", want, names)
		}
	}
	// The hotspot rate series must be in the right ballpark once
	// saturated.
	for _, sr := range series {
		switch sr.Name {
		case "hotspot_rx_gbps_avg":
			if sr.Max() < 5 || sr.Max() > 14 {
				t.Fatalf("hotspot series max = %v", sr.Max())
			}
		case "max_switch_queue_bytes":
			if sr.Max() <= 0 {
				t.Fatal("no queue growth observed under congestion")
			}
		case "mean_ccti":
			if sr.Max() <= 0 {
				t.Fatal("no throttling observed")
			}
		}
	}
	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mean_ccti") {
		t.Fatal("CSV missing series")
	}
}

func TestStandardTraceDeltaProbes(t *testing.T) {
	// The CC activity probes differentiate cumulative counters: every
	// sample must be non-negative (the counters are monotone and the
	// probes must keep their interval state straight), and the samples
	// must sum back to the run's final counter values.
	s := quick(8)
	interval := 100 * sim.Microsecond
	in, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	rec := in.AttachStandardTrace(interval)
	res := in.Execute()

	secs := interval.Seconds()
	sums := map[string]float64{}
	for _, sr := range rec.Series() {
		switch sr.Name {
		case "fecn_marks_per_s", "becn_per_s":
			for i, v := range sr.Values {
				if v < 0 {
					t.Fatalf("%s sample %d = %v, negative delta", sr.Name, i, v)
				}
				sums[sr.Name] += v * secs
			}
		}
	}
	if res.CCStats.FECNMarked == 0 {
		t.Fatal("scenario produced no marks; test is vacuous")
	}
	for name, total := range map[string]uint64{
		"fecn_marks_per_s": res.CCStats.FECNMarked,
		"becn_per_s":       res.CCStats.BECNReceived,
	} {
		got := sums[name]
		// The last grid point coincides with the end of the run, so the
		// integrated rate may miss at most the events of that final
		// instant.
		if got > float64(total)+0.5 || got < float64(total)*0.99-5 {
			t.Fatalf("%s integrates to %.1f, final counter %d", name, got, total)
		}
	}
}

func TestTraceWithoutCC(t *testing.T) {
	s := quick(8)
	s.CCOn = false
	in, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	rec := in.AttachStandardTrace(200 * sim.Microsecond)
	in.Execute()
	for _, sr := range rec.Series() {
		if strings.Contains(sr.Name, "ccti") || strings.Contains(sr.Name, "becn") {
			t.Fatalf("CC series %q present with CC off", sr.Name)
		}
	}
}

func TestRoleBreakdown(t *testing.T) {
	s := quick(12)
	s.FracBPct = 50
	s.PPercent = 60
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// All three roles are present and active.
	if res.PopB == 0 || res.PopC == 0 || res.PopV == 0 {
		t.Fatalf("population = %d/%d/%d", res.PopB, res.PopC, res.PopV)
	}
	for _, role := range []Role{RoleB, RoleC, RoleV} {
		if res.RoleTxGbps[role] <= 0 {
			t.Fatalf("role %v injected nothing", role)
		}
	}
	// V nodes send only uniform traffic; C nodes only hotspot traffic.
	// Every class must achieve a sane rate below the injection cap.
	for r, v := range res.RoleTxGbps {
		if v > 13.6 {
			t.Fatalf("role %d tx = %.3f above injection cap", r, v)
		}
	}
}
