// Package cliflag holds the numeric flag validation shared by the
// command-line tools: count-like flags reject zero/negative values with
// a one-line error (and a non-zero exit at the caller) instead of
// hanging a worker pool or panicking deep inside a sweep.
package cliflag

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Positive validates a count flag that must be at least 1 (seeds,
// sweep steps, bench iteration counts).
func Positive(name string, v int) error {
	if v < 1 {
		return fmt.Errorf("%s must be >= 1, got %d", name, v)
	}
	return nil
}

// Workers validates a worker-pool size flag where 0 means "one per
// CPU": negative values are the only rejects.
func Workers(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("%s must be >= 0 (0 = one per CPU), got %d", name, v)
	}
	return nil
}

// Intensities parses a comma-separated fault-intensity grid and
// validates every value into [0, 1]; the list must be non-empty.
func Intensities(name, s string) ([]float64, error) {
	var ins []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if math.IsNaN(v) || v < 0 || v > 1 {
			return nil, fmt.Errorf("%s: intensity %v outside [0, 1]", name, v)
		}
		ins = append(ins, v)
	}
	if len(ins) == 0 {
		return nil, fmt.Errorf("%s: empty intensity list", name)
	}
	return ins, nil
}
