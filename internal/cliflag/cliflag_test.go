package cliflag

import (
	"strings"
	"testing"
)

func TestPositive(t *testing.T) {
	if err := Positive("-seeds", 1); err != nil {
		t.Fatalf("Positive(1): %v", err)
	}
	for _, v := range []int{0, -1, -100} {
		err := Positive("-seeds", v)
		if err == nil {
			t.Fatalf("Positive(%d) accepted", v)
		}
		if !strings.Contains(err.Error(), "-seeds") {
			t.Fatalf("error does not name the flag: %v", err)
		}
	}
}

func TestWorkers(t *testing.T) {
	for _, v := range []int{0, 1, 64} {
		if err := Workers("-jobs", v); err != nil {
			t.Fatalf("Workers(%d): %v", v, err)
		}
	}
	if Workers("-jobs", -1) == nil {
		t.Fatal("Workers(-1) accepted")
	}
}

func TestIntensities(t *testing.T) {
	ins, err := Intensities("-intensities", "0, 0.25,0.5,1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 4 || ins[0] != 0 || ins[3] != 1 {
		t.Fatalf("parsed %v", ins)
	}
	for _, bad := range []string{"-0.1", "1.5", "abc", "", "0,,nan", "0.5,2"} {
		if _, err := Intensities("-intensities", bad); err == nil {
			t.Fatalf("Intensities(%q) accepted", bad)
		}
	}
}
