package ib

// Packet memory lifecycle. The simulator moves tens of millions of
// packets per run and every one of them dies at a host sink, so packets
// are recycled through a freelist instead of being handed to the
// garbage collector: generators and the CC manager acquire with Get,
// the delivering sink releases with Put once every delivery consumer
// has returned. Ownership is single-holder and transfers with the
// packet: whoever holds the pointer owns it, and no component may keep
// a *Packet past the call that handed it over (observability consumers
// copy the fields they need into value events). The `debug` build tag
// turns ownership violations into panics; see poolcheck_debug.go.

// Reset returns p to the zero state a freshly allocated packet has.
// Get calls it on every recycled packet, so stale FECN/BECN bits or
// message identity can never leak between packet lifetimes.
func (p *Packet) Reset() { *p = Packet{} }

// PoolStats counts a pool's traffic; tests and the kernel benchmark
// harness use it to prove steady-state runs stop allocating.
type PoolStats struct {
	// Gets counts acquisitions; Misses the subset that had to allocate
	// because the freelist was empty.
	Gets, Misses uint64
	// Puts counts releases.
	Puts uint64
}

// PacketPool is a freelist of packets. It is not safe for concurrent
// use — like the simulator that drives it, the packet lifecycle is
// strictly sequential within a run (parallel experiments use one pool
// per network). A nil *PacketPool is valid and degrades to plain heap
// allocation, so components can be wired with or without pooling.
type PacketPool struct {
	free  []*Packet
	stats PoolStats
	check poolChecker
}

// NewPacketPool returns an empty pool.
func NewPacketPool() *PacketPool { return &PacketPool{} }

// Get returns a reset packet, recycling a released one when available.
func (pp *PacketPool) Get() *Packet {
	if pp == nil {
		return &Packet{}
	}
	pp.stats.Gets++
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		pp.check.onGet(p)
		p.Reset()
		return p
	}
	pp.stats.Misses++
	return &Packet{}
}

// Put releases p back to the pool. The caller must be the packet's sole
// owner and must not touch p afterwards; under the debug build tag a
// double release panics and released packets are poisoned so stale
// readers see garbage instead of plausible data. Packets that were
// allocated outside the pool are adopted. Put(nil) is a no-op, as is
// any Put on a nil pool.
func (pp *PacketPool) Put(p *Packet) {
	if pp == nil || p == nil {
		return
	}
	pp.check.onPut(p)
	pp.stats.Puts++
	pp.free = append(pp.free, p)
}

// Stats returns a snapshot of the pool's traffic counters.
func (pp *PacketPool) Stats() PoolStats {
	if pp == nil {
		return PoolStats{}
	}
	return pp.stats
}

// Live reports how many acquired packets are currently outstanding
// (Gets − Puts): every packet some model component owns right now. The
// runtime invariant checker balances it against a walk of all holding
// sites to detect leaks and double releases.
func (pp *PacketPool) Live() int {
	if pp == nil {
		return 0
	}
	return int(pp.stats.Gets - pp.stats.Puts)
}

// RestoreStats overwrites the traffic counters with a checkpointed
// snapshot. Restore rebuilds live packets directly (never through Get),
// so the books must be installed wholesale for Live() to keep matching
// the custody census the invariant checker runs.
func (pp *PacketPool) RestoreStats(st PoolStats) {
	if pp == nil {
		return
	}
	pp.stats = st
}

// FreeLen reports how many released packets the pool currently holds.
func (pp *PacketPool) FreeLen() int {
	if pp == nil {
		return 0
	}
	return len(pp.free)
}
