package ib

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestWireBytesData(t *testing.T) {
	p := &Packet{Type: DataPacket, PayloadBytes: MTU}
	if got := p.WireBytes(); got != MTU+HeaderBytes {
		t.Fatalf("WireBytes = %d", got)
	}
}

func TestWireBytesCNP(t *testing.T) {
	p := &Packet{Type: CNPPacket, PayloadBytes: 9999} // payload ignored
	if got := p.WireBytes(); got != CNPBytes+HeaderBytes {
		t.Fatalf("WireBytes = %d", got)
	}
}

func TestFlowKey(t *testing.T) {
	p := &Packet{Src: 5, Dst: 9}
	if p.Flow() != (FlowKey{5, 9}) {
		t.Fatalf("Flow = %v", p.Flow())
	}
	if s := (FlowKey{5, 9}).String(); s != "5->9" {
		t.Fatalf("String = %q", s)
	}
}

func TestFlowKeyIsComparableMapKey(t *testing.T) {
	m := map[FlowKey]int{}
	m[FlowKey{1, 2}]++
	m[FlowKey{1, 2}]++
	m[FlowKey{2, 1}]++
	if m[FlowKey{1, 2}] != 2 || m[FlowKey{2, 1}] != 1 {
		t.Fatalf("map = %v", m)
	}
}

func TestMessageConstants(t *testing.T) {
	if MessageBytes != 2*MTU {
		t.Fatalf("a message must be exactly two MTU packets (paper §IV)")
	}
}

func TestDefaultRates(t *testing.T) {
	if DefaultLinkRate().Gbps() != 20 {
		t.Fatalf("link rate = %v", DefaultLinkRate().Gbps())
	}
	if DefaultInjectionRate().Gbps() != 13.5 {
		t.Fatalf("injection rate = %v", DefaultInjectionRate().Gbps())
	}
	// Serialization of one MTU data packet must exceed the pure-payload
	// time because of header framing.
	withHdr := DefaultLinkRate().TxTime(MTU + HeaderBytes)
	bare := DefaultLinkRate().TxTime(MTU)
	if withHdr <= bare {
		t.Fatal("header overhead not accounted")
	}
}

func TestPacketTypeString(t *testing.T) {
	if DataPacket.String() != "data" || CNPPacket.String() != "cnp" {
		t.Fatal("type strings wrong")
	}
	if s := PacketType(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("unknown type string = %q", s)
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{ID: 7, Type: DataPacket, Src: 1, Dst: 2, SL: 0, VL: 0,
		PayloadBytes: MTU, FECN: true, InjectTime: sim.Time(0)}
	s := p.String()
	for _, want := range []string{"data#7", "1->2", "fecn=true"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestNoLID(t *testing.T) {
	if NoLID >= 0 {
		t.Fatal("NoLID must be negative so it never collides with a real LID")
	}
}
