// Package ib defines the InfiniBand-level data types shared by the fabric
// model: local identifiers, virtual lanes, packets and messages, and the
// architectural constants the paper's simulation uses (IB spec 1.2.1
// terminology throughout).
package ib

import (
	"fmt"

	"repro/internal/sim"
)

// LID is a local identifier addressing an end port within a subnet. The
// model assigns LIDs densely: end nodes first (0..N-1), then switches.
type LID int32

// NoLID marks an unset or invalid LID.
const NoLID LID = -1

// VL is a virtual lane number. The paper's experiments run all data
// traffic on a single data VL; the model nevertheless carries VLs
// end-to-end because the CC state machine is defined per (port, VL).
type VL uint8

// SL is a service level. The model maps SL n to VL n.
type SL uint8

// Architectural and calibration constants. Rates are the values the
// paper's simulator is tuned to (Mellanox MTS3600 / PCIe v1.1 hosts).
const (
	// MTU is the maximum transfer unit used in all experiments.
	MTU = 2048
	// MessageBytes is the application message size: two MTU packets.
	MessageBytes = 4096
	// CNPBytes is the size of an explicit congestion notification
	// packet carrying a BECN back to the source.
	CNPBytes = 64
	// HeaderBytes approximates LRH+BTH+CRC framing on the wire per
	// packet. It is accounted for in serialization time so that goodput
	// saturates slightly below line rate, as on hardware.
	HeaderBytes = 46
)

// DefaultLinkRate is the 4x DDR signalling data rate used in the paper.
func DefaultLinkRate() sim.Rate { return sim.Gbps(20) }

// DefaultInjectionRate is the maximum host injection rate (13.5 Gbit/s,
// limited by PCIe v1.1 protocol overhead in the calibration hardware).
func DefaultInjectionRate() sim.Rate { return sim.Gbps(13.5) }

// PacketType distinguishes the packet kinds the model carries.
type PacketType uint8

const (
	// DataPacket carries application payload and may be FECN-marked.
	DataPacket PacketType = iota
	// CNPPacket is an explicit congestion notification packet carrying
	// a BECN (the unconnected-transport notification path).
	CNPPacket
	// AckPacket is a reliable-connection acknowledgement; a BECN may
	// piggyback on it (the spec's other notification path).
	AckPacket
)

func (t PacketType) String() string {
	switch t {
	case DataPacket:
		return "data"
	case CNPPacket:
		return "cnp"
	case AckPacket:
		return "ack"
	default:
		return fmt.Sprintf("PacketType(%d)", uint8(t))
	}
}

// FlowKey identifies a flow for congestion-control purposes. The paper
// runs CC at the QP level; the generator model opens one QP per
// source/destination pair, so (Src, Dst) is the QP identity.
type FlowKey struct {
	Src LID
	Dst LID
}

func (k FlowKey) String() string { return fmt.Sprintf("%d->%d", k.Src, k.Dst) }

// Packet is a single IB packet in flight. Packets are allocated by the
// generators and passed by pointer through the fabric; the struct is kept
// small and flat for allocation efficiency.
type Packet struct {
	ID   uint64
	Type PacketType
	Src  LID
	Dst  LID
	SL   SL
	VL   VL

	// PayloadBytes is the application payload carried (0 for CNPs'
	// logical payload; their wire size is CNPBytes).
	PayloadBytes int

	// FECN and BECN are the explicit congestion notification bits.
	FECN bool
	BECN bool

	// Hotspot marks packets whose destination was chosen as the
	// generator's hotspot target; it exists purely for measurement.
	Hotspot bool

	// MsgID groups the packets of one application message.
	MsgID uint64
	// MsgSeq is the packet's index within its message.
	MsgSeq uint8
	// MsgPackets is the number of packets in the message.
	MsgPackets uint8

	// InjectTime is when the first byte entered the source HCA port.
	InjectTime sim.Time
}

// WireBytes is the packet's size on the wire, including framing overhead.
func (p *Packet) WireBytes() int {
	if p.Type == CNPPacket || p.Type == AckPacket {
		return CNPBytes + HeaderBytes
	}
	return p.PayloadBytes + HeaderBytes
}

// Flow returns the packet's CC flow identity.
func (p *Packet) Flow() FlowKey { return FlowKey{Src: p.Src, Dst: p.Dst} }

func (p *Packet) String() string {
	return fmt.Sprintf("%s#%d %v sl%d vl%d %dB fecn=%v becn=%v",
		p.Type, p.ID, p.Flow(), p.SL, p.VL, p.WireBytes(), p.FECN, p.BECN)
}
