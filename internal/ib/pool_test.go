package ib

import "testing"

func TestPacketPoolRecycles(t *testing.T) {
	pp := NewPacketPool()
	p1 := pp.Get()
	p1.ID = 42
	p1.FECN = true
	p1.PayloadBytes = MTU
	pp.Put(p1)
	if pp.FreeLen() != 1 {
		t.Fatalf("FreeLen = %d", pp.FreeLen())
	}
	p2 := pp.Get()
	if p2 != p1 {
		t.Fatal("pool did not recycle the released packet")
	}
	if *p2 != (Packet{}) {
		t.Fatalf("recycled packet not reset: %+v", *p2)
	}
	st := pp.Stats()
	if st.Gets != 2 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPacketPoolSteadyStateStopsAllocating(t *testing.T) {
	pp := NewPacketPool()
	// Warm the pool with the working set, then churn: misses must not
	// grow once the freelist covers the concurrency level.
	var live []*Packet
	for i := 0; i < 64; i++ {
		live = append(live, pp.Get())
	}
	for _, p := range live {
		pp.Put(p)
	}
	missesAfterWarm := pp.Stats().Misses
	for round := 0; round < 100; round++ {
		live = live[:0]
		for i := 0; i < 64; i++ {
			live = append(live, pp.Get())
		}
		for _, p := range live {
			pp.Put(p)
		}
	}
	if m := pp.Stats().Misses; m != missesAfterWarm {
		t.Fatalf("steady-state churn allocated: misses %d -> %d", missesAfterWarm, m)
	}
}

func TestPacketPoolNilSafe(t *testing.T) {
	var pp *PacketPool
	p := pp.Get()
	if p == nil {
		t.Fatal("nil pool must fall back to allocation")
	}
	pp.Put(p) // no-op
	if pp.Stats() != (PoolStats{}) || pp.FreeLen() != 0 {
		t.Fatal("nil pool must report zero state")
	}
	pool := NewPacketPool()
	pool.Put(nil) // no-op
	if pool.FreeLen() != 0 {
		t.Fatal("Put(nil) must not enqueue")
	}
}

func TestPacketPoolAdoptsForeignPackets(t *testing.T) {
	pp := NewPacketPool()
	p := &Packet{ID: 7}
	pp.Put(p)
	if got := pp.Get(); got != p {
		t.Fatal("adopted packet not recycled")
	}
}

func TestPacketReset(t *testing.T) {
	p := &Packet{ID: 9, Type: AckPacket, Src: 3, Dst: 4, FECN: true, BECN: true,
		Hotspot: true, MsgID: 8, MsgSeq: 1, MsgPackets: 2, PayloadBytes: 100, InjectTime: 55}
	p.Reset()
	if *p != (Packet{}) {
		t.Fatalf("Reset left state: %+v", *p)
	}
}
