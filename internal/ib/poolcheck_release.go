//go:build !debug

package ib

// poolChecker is the release-build ownership checker: a zero-size
// no-op, so pooling costs nothing beyond the freelist operations. Build
// with -tags debug to enable the checking variant.
type poolChecker struct{}

func (poolChecker) onGet(*Packet) {}
func (poolChecker) onPut(*Packet) {}
