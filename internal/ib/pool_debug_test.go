//go:build debug

package ib

import "testing"

func TestDebugDoubleReleasePanics(t *testing.T) {
	pp := NewPacketPool()
	p := pp.Get()
	pp.Put(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double release must panic under -tags debug")
		}
	}()
	pp.Put(p)
}

func TestDebugReleasePoisons(t *testing.T) {
	pp := NewPacketPool()
	p := pp.Get()
	p.Src, p.Dst, p.ID = 1, 2, 3
	pp.Put(p)
	if p.Src != NoLID || p.Dst != NoLID || p.ID != ^uint64(0) {
		t.Fatalf("released packet not poisoned: %+v", *p)
	}
	// Re-acquiring clears the poison again.
	if q := pp.Get(); q != p || *q != (Packet{}) {
		t.Fatal("reacquired packet must be reset")
	}
}

func TestDebugReleaseThenReacquireAllowsRelease(t *testing.T) {
	// A packet's next lifetime gets a fresh release permit.
	pp := NewPacketPool()
	p := pp.Get()
	pp.Put(p)
	q := pp.Get()
	pp.Put(q) // must not panic: new lifetime
}
