//go:build debug

package ib

// Debug-build ownership enforcement for the packet lifecycle. The rules
// it checks:
//
//   - a packet may be released at most once per lifetime (double Put is
//     the two-owners bug and panics immediately);
//   - a released packet must not be read: Put poisons every field with
//     garbage, so a consumer that retained a *Packet past its delivery
//     callback sees impossible values (negative LIDs, a screaming ID)
//     instead of plausibly stale ones.
//
// The checker lives entirely behind the `debug` build tag; release
// builds compile the no-op variant in poolcheck_release.go.
type poolChecker struct {
	free map[*Packet]struct{}
}

func (c *poolChecker) onGet(p *Packet) {
	delete(c.free, p)
}

func (c *poolChecker) onPut(p *Packet) {
	if c.free == nil {
		c.free = make(map[*Packet]struct{})
	}
	if _, dup := c.free[p]; dup {
		panic("ib: double release of packet to pool")
	}
	c.free[p] = struct{}{}
	poison(p)
}

// poison overwrites p with values no live packet can carry.
func poison(p *Packet) {
	*p = Packet{
		ID:           ^uint64(0),
		Type:         PacketType(0xee),
		Src:          NoLID,
		Dst:          NoLID,
		PayloadBytes: -1,
		MsgID:        ^uint64(0),
	}
}
