package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/sim"
)

// On-disk envelope: an 8-byte magic, a fixed little-endian header
// (version, payload length, payload CRC-32), then the JSON snapshot.
// The CRC is verified before the JSON is even parsed, so a truncated or
// bit-flipped file from a crash mid-write is detected outright instead
// of feeding half a state into a restore.
var fileMagic = [8]byte{'I', 'B', 'C', 'K', 'P', 'T', '0', '1'}

// Ext is the checkpoint file extension.
const Ext = ".ibckpt"

// Encode writes the snapshot envelope to w.
func Encode(w io.Writer, s *Snapshot) error {
	s.Version = Version
	payload, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("ckpt: encoding snapshot: %w", err)
	}
	var hdr [20]byte
	copy(hdr[:8], fileMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// Decode reads and fully validates a snapshot envelope: magic, version,
// length, CRC, then schema.
func Decode(r io.Reader) (*Snapshot, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("ckpt: reading header: %w", err)
	}
	if !bytes.Equal(hdr[:8], fileMagic[:]) {
		return nil, fmt.Errorf("ckpt: bad magic (not a checkpoint file)")
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != Version {
		return nil, fmt.Errorf("ckpt: file version %d, want %d", v, Version)
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[12:16])
	n := binary.LittleEndian.Uint32(hdr[16:20])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("ckpt: truncated payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("ckpt: payload CRC %08x, want %08x (corrupt file)", got, wantCRC)
	}
	snap := new(Snapshot)
	if err := json.Unmarshal(payload, snap); err != nil {
		return nil, fmt.Errorf("ckpt: decoding snapshot: %w", err)
	}
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	return snap, nil
}

// SaveAtomic writes the snapshot to path crash-safely: temp file in the
// same directory, write, fsync the file, rename over path, fsync the
// directory. A crash at any instant leaves either the old file or the
// new one, never a torn mix; the CRC in the envelope catches the
// storage-level remainder.
func SaveAtomic(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := Encode(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so a just-renamed entry survives a crash.
// Filesystems that refuse directory fsync (some CI tmpfs mounts) are
// tolerated: the rename itself is still atomic there.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return fmt.Errorf("ckpt: fsync %s: %w", dir, err)
	}
	return nil
}

// Load reads and validates the checkpoint at path.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// Keeper writes a rolling series of checkpoints into a directory,
// keeping the newest Keep files (plus whatever was there before it
// started) and deleting its own older ones.
type Keeper struct {
	// Dir receives the files; Base prefixes their names.
	Dir  string
	Base string
	// Keep bounds the series; values below 1 keep exactly 1.
	Keep int

	written []string
}

// Save writes the snapshot as <Base>-<sim time>.ibckpt and rotates the
// series. It returns the written path.
func (k *Keeper) Save(s *Snapshot) (string, error) {
	base := k.Base
	if base == "" {
		base = "ckpt"
	}
	path := filepath.Join(k.Dir, fmt.Sprintf("%s-%020d%s", base, int64(s.Kernel.Now), Ext))
	if err := SaveAtomic(path, s); err != nil {
		return "", err
	}
	k.written = append(k.written, path)
	keep := k.Keep
	if keep < 1 {
		keep = 1
	}
	for len(k.written) > keep {
		old := k.written[0]
		k.written = k.written[1:]
		if old != path {
			os.Remove(old)
		}
	}
	return path, nil
}

// Latest returns the newest checkpoint file under dir (by the zero-
// padded sim-time in the name, which sorts lexicographically), or an
// error when none exists. Passing a file path returns it unchanged, so
// -resume-from accepts either a directory or a specific checkpoint.
func Latest(dir string) (string, error) {
	fi, err := os.Stat(dir)
	if err != nil {
		return "", err
	}
	if !fi.IsDir() {
		return dir, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), Ext) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return "", fmt.Errorf("ckpt: no %s files under %s", Ext, dir)
	}
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1]), nil
}

// NextCadence returns the first checkpoint instant at or after now on
// an every-spaced grid from time zero. A non-positive cadence returns
// sim.MaxTime (checkpointing off).
func NextCadence(now sim.Time, every sim.Duration) sim.Time {
	if every <= 0 {
		return sim.MaxTime
	}
	n := int64(now)/int64(every) + 1
	return sim.Time(n * int64(every))
}
