// Package ckpt defines the versioned checkpoint format for crash-safe
// simulation runs: a schema-validated snapshot of the full mutable
// simulator state — kernel clock/sequence/event list, fabric custody,
// congestion-control state, traffic cursors, fault-injector state, RNG
// stream positions — from which core.Restore rebuilds a run whose
// continuation is byte-identical to never having stopped.
//
// The package sits below the model layers: it imports only sim and ib,
// and each model package (fabric, cc, traffic, fault, metrics) exports
// and restores its own state as either typed records or an opaque
// package-owned JSON blob. Pending events are serialized as
// (time, seq, kind, args) records; packets referenced by events and by
// custody sites are interned once in a shared packet table and referred
// to by 1-based index.
package ckpt

import (
	"encoding/json"
	"fmt"

	"repro/internal/ib"
	"repro/internal/sim"
)

// Version is the checkpoint schema version. Load rejects any other
// value: the format carries exact kernel state, so silently accepting a
// foreign layout would corrupt a continuation instead of failing it.
const Version = 1

// EventRecord is one pending future-event-list entry. Kind names the
// action codec that owns it; the A/F/B/Pkt fields are that codec's
// positional arguments (documented at each codec). Records are stored
// in ascending (time, seq) order so restore re-inserts them without
// ever rewinding the timing-wheel cursor.
type EventRecord struct {
	T    int64  `json:"t"`
	Seq  uint64 `json:"q"`
	Kind string `json:"k"`

	A0 int64   `json:"a0,omitempty"`
	A1 int64   `json:"a1,omitempty"`
	A2 int64   `json:"a2,omitempty"`
	A3 int64   `json:"a3,omitempty"`
	F0 float64 `json:"f0,omitempty"`
	B0 bool    `json:"b0,omitempty"`
	B1 bool    `json:"b1,omitempty"`
	B2 bool    `json:"b2,omitempty"`
	// Pkt is a 1-based index into the snapshot's packet table; 0 means
	// no packet.
	Pkt int `json:"pkt,omitempty"`
}

// PacketRecord mirrors every field of ib.Packet, so a restored packet
// is indistinguishable from the original to the model.
type PacketRecord struct {
	ID           uint64   `json:"id"`
	Type         uint8    `json:"ty,omitempty"`
	Src          ib.LID   `json:"s"`
	Dst          ib.LID   `json:"d"`
	SL           uint8    `json:"sl,omitempty"`
	VL           uint8    `json:"vl,omitempty"`
	PayloadBytes int      `json:"pb,omitempty"`
	FECN         bool     `json:"fe,omitempty"`
	BECN         bool     `json:"be,omitempty"`
	Hotspot      bool     `json:"h,omitempty"`
	MsgID        uint64   `json:"mi,omitempty"`
	MsgSeq       uint8    `json:"ms,omitempty"`
	MsgPackets   uint8    `json:"mp,omitempty"`
	InjectTime   sim.Time `json:"it,omitempty"`
}

// PacketTable interns live packets during export and materializes them
// during restore. Indices are 1-based; 0 is the nil packet.
type PacketTable struct {
	recs []PacketRecord
	idx  map[*ib.Packet]int
	pkts []*ib.Packet
}

// NewPacketTable returns an empty export-side table.
func NewPacketTable() *PacketTable {
	return &PacketTable{idx: make(map[*ib.Packet]int)}
}

// Ref interns p and returns its 1-based index (0 for nil). Interning is
// idempotent: every custody site and event referring to one packet gets
// the same index, so restore rebuilds the exact aliasing structure.
func (t *PacketTable) Ref(p *ib.Packet) int {
	if p == nil {
		return 0
	}
	if i, ok := t.idx[p]; ok {
		return i
	}
	t.recs = append(t.recs, PacketRecord{
		ID: p.ID, Type: uint8(p.Type), Src: p.Src, Dst: p.Dst,
		SL: uint8(p.SL), VL: uint8(p.VL), PayloadBytes: p.PayloadBytes,
		FECN: p.FECN, BECN: p.BECN, Hotspot: p.Hotspot,
		MsgID: p.MsgID, MsgSeq: p.MsgSeq, MsgPackets: p.MsgPackets,
		InjectTime: p.InjectTime,
	})
	t.idx[p] = len(t.recs)
	return len(t.recs)
}

// Records returns the interned packet records in index order.
func (t *PacketTable) Records() []PacketRecord { return t.recs }

// RestoreTable materializes every packet of a snapshot for the restore
// side. Packets are allocated directly — never through a pool — because
// the pool's traffic counters are restored wholesale from the snapshot.
func RestoreTable(recs []PacketRecord) *PacketTable {
	t := &PacketTable{recs: recs, pkts: make([]*ib.Packet, len(recs))}
	for i, r := range recs {
		t.pkts[i] = &ib.Packet{
			ID: r.ID, Type: ib.PacketType(r.Type), Src: r.Src, Dst: r.Dst,
			SL: ib.SL(r.SL), VL: ib.VL(r.VL), PayloadBytes: r.PayloadBytes,
			FECN: r.FECN, BECN: r.BECN, Hotspot: r.Hotspot,
			MsgID: r.MsgID, MsgSeq: r.MsgSeq, MsgPackets: r.MsgPackets,
			InjectTime: r.InjectTime,
		}
	}
	return t
}

// Packet returns the materialized packet for a 1-based index (nil for
// 0). It panics on an out-of-range index: that is a corrupt snapshot
// the envelope CRC should have caught.
func (t *PacketTable) Packet(i int) *ib.Packet {
	if i == 0 {
		return nil
	}
	return t.pkts[i-1]
}

// Len returns the number of interned packets.
func (t *PacketTable) Len() int { return len(t.recs) }

// DigestState is the exported position of an obs.Digest attached to the
// run (optional; present only for signed runs).
type DigestState struct {
	Sum     uint64 `json:"sum"`
	Records uint64 `json:"records"`
}

// Snapshot is the complete checkpoint document. The Scenario blob (the
// run's full configuration) plus the mutable state below determine the
// continuation exactly; everything derivable from the scenario
// (topology, routing, wiring, RNG derivations made at build time) is
// rebuilt by core.Build rather than stored.
type Snapshot struct {
	Version int `json:"version"`

	// Scenario is the core.Scenario JSON the run was built from.
	Scenario json.RawMessage `json:"scenario"`

	Kernel sim.KernelState `json:"kernel"`
	Events []EventRecord   `json:"events"`
	Pkts   []PacketRecord  `json:"packets,omitempty"`

	// Fabric is fabric.State (typed custody/credit/link state).
	Fabric json.RawMessage `json:"fabric"`
	// Backend names the CC backend the CC blob belongs to ("" when CC
	// is off); CC is that backend's package-owned state blob.
	Backend string          `json:"backend,omitempty"`
	CC      json.RawMessage `json:"cc,omitempty"`
	// Traffic holds one generator state blob per node LID (null for
	// idle nodes).
	Traffic []json.RawMessage `json:"traffic,omitempty"`
	// Fault is the injector's state blob (absent without a fault plan).
	Fault json.RawMessage `json:"fault,omitempty"`
	// Metrics is the collector's state blob.
	Metrics json.RawMessage `json:"metrics,omitempty"`

	Digest *DigestState `json:"digest,omitempty"`
}

// Validate checks the snapshot's internal consistency: version, event
// ordering, and packet references. It is called by Load and again by
// core.Restore before any state is applied.
func (s *Snapshot) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("ckpt: snapshot version %d, want %d", s.Version, Version)
	}
	if len(s.Scenario) == 0 {
		return fmt.Errorf("ckpt: snapshot carries no scenario")
	}
	if len(s.Fabric) == 0 {
		return fmt.Errorf("ckpt: snapshot carries no fabric state")
	}
	var lastT int64
	var lastSeq uint64
	for i, e := range s.Events {
		if e.Kind == "" {
			return fmt.Errorf("ckpt: event %d has no kind", i)
		}
		if e.T < int64(s.Kernel.Now) {
			return fmt.Errorf("ckpt: event %d (%s) at %d before snapshot clock %d", i, e.Kind, e.T, int64(s.Kernel.Now))
		}
		if e.Seq >= s.Kernel.Seq {
			return fmt.Errorf("ckpt: event %d (%s) seq %d at or beyond next seq %d", i, e.Kind, e.Seq, s.Kernel.Seq)
		}
		if i > 0 && (e.T < lastT || (e.T == lastT && e.Seq <= lastSeq)) {
			return fmt.Errorf("ckpt: events out of (time, seq) order at %d", i)
		}
		lastT, lastSeq = e.T, e.Seq
		if e.Pkt < 0 || e.Pkt > len(s.Pkts) {
			return fmt.Errorf("ckpt: event %d (%s) references packet %d of %d", i, e.Kind, e.Pkt, len(s.Pkts))
		}
	}
	return nil
}
