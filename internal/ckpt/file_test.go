package ckpt

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

// testSnapshot builds a minimal valid snapshot with a couple of events
// and one interned packet, clocked at now.
func testSnapshot(now sim.Time) *Snapshot {
	return &Snapshot{
		Version:  Version,
		Scenario: json.RawMessage(`{"name":"t"}`),
		Kernel:   sim.KernelState{Now: now, Seq: 10, Processed: 4},
		Events: []EventRecord{
			{T: int64(now), Seq: 3, Kind: "a", A0: 7, Pkt: 1},
			{T: int64(now) + 100, Seq: 5, Kind: "b", F0: 0.5, B1: true},
		},
		Pkts:   []PacketRecord{{ID: 42, Src: 1, Dst: 2, PayloadBytes: 2048}},
		Fabric: json.RawMessage(`{"links":[]}`),
		Digest: &DigestState{Sum: 0xdeadbeef, Records: 9},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := testSnapshot(1000)
	if err := Encode(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip changed the snapshot:\n%s\n%s", a, b)
	}
}

// corrupt encodes a snapshot and hands the bytes to mangle before
// decoding, asserting Decode rejects the result with wantErr.
func corrupt(t *testing.T, mangle func([]byte) []byte, wantErr string) {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	data := mangle(buf.Bytes())
	_, err := Decode(bytes.NewReader(data))
	if err == nil {
		t.Fatalf("Decode accepted a corrupt file, wanted %q", wantErr)
	}
	if !strings.Contains(err.Error(), wantErr) {
		t.Fatalf("Decode error %q, wanted it to mention %q", err, wantErr)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	corrupt(t, func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic")
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	corrupt(t, func(b []byte) []byte { b[8] = 0xFF; return b }, "version")
}

func TestDecodeRejectsTruncatedPayload(t *testing.T) {
	corrupt(t, func(b []byte) []byte { return b[:len(b)-5] }, "truncated")
}

func TestDecodeRejectsFlippedPayloadByte(t *testing.T) {
	corrupt(t, func(b []byte) []byte { b[len(b)-3] ^= 0x40; return b }, "CRC")
}

func TestSaveAtomicLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "snap"+Ext)
	want := testSnapshot(5000)
	if err := SaveAtomic(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kernel.Now != want.Kernel.Now || len(got.Events) != 2 || got.Digest == nil {
		t.Fatalf("loaded snapshot lost state: %+v", got)
	}
	// No temp litter left behind in the checkpoint directory.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("checkpoint dir holds %d entries, want just the snapshot", len(ents))
	}
}

func TestValidateRejectsInconsistentSnapshots(t *testing.T) {
	cases := []struct {
		name    string
		mut     func(*Snapshot)
		wantErr string
	}{
		{"no scenario", func(s *Snapshot) { s.Scenario = nil }, "no scenario"},
		{"no fabric", func(s *Snapshot) { s.Fabric = nil }, "no fabric"},
		{"kindless event", func(s *Snapshot) { s.Events[0].Kind = "" }, "no kind"},
		{"event before clock", func(s *Snapshot) { s.Events[0].T = -1 }, "before snapshot clock"},
		{"seq beyond kernel", func(s *Snapshot) { s.Events[1].Seq = 10 }, "beyond next seq"},
		{"events out of order", func(s *Snapshot) { s.Events[1].T = s.Events[0].T; s.Events[1].Seq = s.Events[0].Seq }, "out of (time, seq) order"},
		{"dangling packet ref", func(s *Snapshot) { s.Events[0].Pkt = 2 }, "references packet"},
	}
	for _, tc := range cases {
		s := testSnapshot(0)
		tc.mut(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: Validate() = %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestKeeperRotatesOwnFilesOnly(t *testing.T) {
	dir := t.TempDir()
	// A pre-existing checkpoint the keeper must never delete.
	foreign := filepath.Join(dir, "old"+Ext)
	if err := SaveAtomic(foreign, testSnapshot(1)); err != nil {
		t.Fatal(err)
	}

	k := &Keeper{Dir: dir, Base: "run", Keep: 2}
	var paths []string
	for _, now := range []sim.Time{100, 200, 300, 400} {
		p, err := k.Save(testSnapshot(now))
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}

	for _, p := range paths[:2] {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("rotated-out checkpoint %s still exists", p)
		}
	}
	for _, p := range paths[2:] {
		if _, err := Load(p); err != nil {
			t.Errorf("kept checkpoint %s: %v", p, err)
		}
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Errorf("keeper deleted a file it did not write: %v", err)
	}

	latest, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if latest != paths[3] {
		t.Errorf("Latest(%s) = %s, want newest %s", dir, latest, paths[3])
	}
}

func TestLatest(t *testing.T) {
	dir := t.TempDir()
	if _, err := Latest(dir); err == nil {
		t.Error("Latest on an empty dir should fail")
	}
	// Non-checkpoint files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Latest(dir); err == nil {
		t.Error("Latest should ignore files without the checkpoint extension")
	}
	file := filepath.Join(dir, "only"+Ext)
	if err := SaveAtomic(file, testSnapshot(7)); err != nil {
		t.Fatal(err)
	}
	if got, err := Latest(dir); err != nil || got != file {
		t.Errorf("Latest(dir) = %s, %v; want %s", got, err, file)
	}
	// A file path passes through unchanged (-resume-from a specific file).
	if got, err := Latest(file); err != nil || got != file {
		t.Errorf("Latest(file) = %s, %v; want passthrough", got, err)
	}
}

func TestNextCadence(t *testing.T) {
	cases := []struct {
		now   sim.Time
		every sim.Duration
		want  sim.Time
	}{
		{0, 100, 100},          // first tick is one cadence in, not at zero
		{99, 100, 100},         // rounds up to the grid
		{100, 100, 200},        // exactly on the grid advances to the next slot
		{250, 100, 300},        //
		{123, 0, sim.MaxTime},  // cadence off
		{123, -5, sim.MaxTime}, // defensive: negative means off too
	}
	for _, tc := range cases {
		if got := NextCadence(tc.now, tc.every); got != tc.want {
			t.Errorf("NextCadence(%d, %d) = %d, want %d", tc.now, tc.every, got, tc.want)
		}
	}
}
