package telemetry

import (
	"math"
	"testing"
)

// TestHistIndexUpperRoundTrip asserts every bucket's upper bound maps
// back into that bucket, and that consecutive values never map to an
// earlier bucket.
func TestHistIndexUpperRoundTrip(t *testing.T) {
	// Buckets past histIndex(MaxInt64) are unreachable: no int64 value
	// maps to them.
	maxIdx := histIndex(math.MaxInt64)
	for idx := 0; idx <= maxIdx; idx++ {
		u := histUpper(idx)
		if got := histIndex(u); got != idx {
			t.Fatalf("histIndex(histUpper(%d)) = %d (upper %d)", idx, got, u)
		}
	}
	prev := -1
	for v := int64(0); v < 1<<20; v += 17 {
		idx := histIndex(v)
		if idx < prev {
			t.Fatalf("histIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if u := histUpper(idx); u < v {
			t.Fatalf("histUpper(%d) = %d < value %d", idx, u, v)
		}
	}
}

// TestHistQuantileErrorBound reconstructs p50/p90/p99 from known value
// distributions and asserts the log-linear error bound: the reported
// quantile is an upper bound within 2^-histSubBits (6.25%) of the true
// order statistic.
func TestHistQuantileErrorBound(t *testing.T) {
	distributions := map[string]func(i int) int64{
		"uniform":   func(i int) int64 { return int64(i + 1) },
		"geometric": func(i int) int64 { return int64(1) << uint(i%30) },
		"bimodal": func(i int) int64 {
			if i%2 == 0 {
				return int64(1000 + i)
			}
			return int64(1_000_000 + i)
		},
		"heavy-tail": func(i int) int64 {
			v := float64(i+1) / 10000.0
			return int64(800 * math.Exp(5*v))
		},
	}
	const n = 10000
	for name, gen := range distributions {
		var h Hist
		vals := make([]int64, n)
		for i := 0; i < n; i++ {
			vals[i] = gen(i)
			h.Record(vals[i])
		}
		// Exact order statistics by counting sort over the sorted copy.
		sorted := append([]int64(nil), vals...)
		for i := 1; i < len(sorted); i++ { // insertion sort is fine at this size
			for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
				sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
			}
		}
		for _, q := range []float64{0.50, 0.90, 0.99} {
			rank := int(q*float64(n)) - 1
			if rank < 0 {
				rank = 0
			}
			exact := sorted[rank]
			got := h.Quantile(q)
			if got < exact {
				t.Errorf("%s p%.0f: reported %d below exact %d", name, q*100, got, exact)
			}
			bound := float64(exact) * (1 + 1.0/float64(histSubBuckets))
			if float64(got) > bound+1 {
				t.Errorf("%s p%.0f: reported %d exceeds error bound %.0f (exact %d)", name, q*100, got, bound, exact)
			}
		}
		if h.Count() != n {
			t.Fatalf("%s: count = %d", name, h.Count())
		}
	}
}

func TestHistMergeAndStats(t *testing.T) {
	var a, b Hist
	for i := int64(1); i <= 100; i++ {
		a.Record(i)
	}
	for i := int64(101); i <= 200; i++ {
		b.Record(i)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 200 {
		t.Fatalf("merged max = %d", a.Max())
	}
	if m := a.Mean(); m < 95 || m > 106 {
		t.Fatalf("merged mean = %d, want ~100.5", m)
	}
	if q := a.Quantile(1.0); q != 200 {
		t.Fatalf("p100 = %d, want clamped to max 200", q)
	}
	var empty Hist
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatalf("empty hist stats not zero")
	}
	a.Reset()
	if a.Count() != 0 || a.Max() != 0 {
		t.Fatalf("reset did not clear")
	}
}

// TestHistQuantileEndpoints pins the exact-endpoint contract: a
// single-value histogram reports that value at every quantile, and
// Quantile(0)/Quantile(1) return the exact recorded minimum and
// maximum. The two-value case is the regression: the minimum's bucket
// upper bound (e.g. 103 for 100) used to leak out of Quantile(0).
func TestHistQuantileEndpoints(t *testing.T) {
	var single Hist
	single.Record(12345)
	for _, q := range []float64{0, 0.5, 1} {
		if got := single.Quantile(q); got != 12345 {
			t.Fatalf("single-value Quantile(%v) = %d, want 12345", q, got)
		}
	}

	var h Hist
	h.Record(100) // bucket upper bound is 103: Quantile(0) must not report it
	h.Record(200)
	if got := h.Quantile(0); got != 100 {
		t.Fatalf("Quantile(0) = %d, want exact min 100", got)
	}
	if got := h.Quantile(1); got != 200 {
		t.Fatalf("Quantile(1) = %d, want exact max 200", got)
	}
	if got := h.Min(); got != 100 {
		t.Fatalf("Min() = %d, want 100", got)
	}
	// Out-of-range q clamps to the endpoints.
	if h.Quantile(-3) != 100 || h.Quantile(7) != 200 {
		t.Fatalf("out-of-range q not clamped: %d, %d", h.Quantile(-3), h.Quantile(7))
	}
	// No quantile may exceed the recorded maximum or undershoot the
	// recorded minimum.
	for q := 0.0; q <= 1.0; q += 0.01 {
		if v := h.Quantile(q); v < 100 || v > 200 {
			t.Fatalf("Quantile(%v) = %d outside [100, 200]", q, v)
		}
	}

	var empty Hist
	if empty.Quantile(0) != 0 || empty.Quantile(1) != 0 || empty.Min() != 0 {
		t.Fatal("empty histogram endpoints not zero")
	}
}

// TestHistMergeMin pins min propagation through Merge, including from
// and into empty histograms.
func TestHistMergeMin(t *testing.T) {
	var a, b, empty Hist
	a.Record(500)
	b.Record(50)
	a.Merge(&empty) // merging empty must not fabricate a 0 minimum
	if a.Min() != 500 {
		t.Fatalf("min after empty merge = %d, want 500", a.Min())
	}
	a.Merge(&b)
	if a.Min() != 50 {
		t.Fatalf("merged min = %d, want 50", a.Min())
	}
	var fresh Hist
	fresh.Merge(&a)
	if fresh.Min() != 50 || fresh.Count() != 2 {
		t.Fatalf("merge into empty: min=%d count=%d", fresh.Min(), fresh.Count())
	}
}

// TestHistIndexUpperTable is the table-driven round-trip sweep over the
// major-bucket rows up to and including the MaxInt64 boundary and the
// overflow clamp: histUpper(histIndex(v)) must bound v from above
// within one sub-bucket (1/16 relative error).
func TestHistIndexUpperTable(t *testing.T) {
	cases := []int64{
		0, 1, 15, // exact sub-bucket row
		16, 17, 31, // first log-linear row
		100, 103, 1000, 4096, 65535, 65536,
		1 << 20, 1<<20 + 1, 1<<30 - 1, 1 << 40, 1 << 50, 1 << 62,
		math.MaxInt64 - 1, math.MaxInt64,
	}
	// Every power-of-two row boundary and its neighbors.
	for s := uint(4); s < 63; s++ {
		cases = append(cases, int64(1)<<s-1, int64(1)<<s, int64(1)<<s+1)
	}
	for _, v := range cases {
		idx := histIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", v, idx)
		}
		u := histUpper(idx)
		if u < v {
			t.Fatalf("histUpper(histIndex(%d)) = %d below value", v, u)
		}
		// Relative error bound: the bucket top is within 1/16 of the
		// value (the overflow row clamps to MaxInt64 and is exempt
		// from the bound only insofar as the clamp itself caps it).
		if v >= histSubBuckets && u != math.MaxInt64 {
			if float64(u-v) > float64(v)/float64(histSubBuckets)+1 {
				t.Fatalf("histUpper(histIndex(%d)) = %d exceeds 1/16 relative error", v, u)
			}
		}
		if got := histIndex(u); got != idx {
			t.Fatalf("histIndex(histUpper(%d)) = %d, want %d (v=%d)", idx, got, idx, v)
		}
	}
	// The overflow clamp: the top row's upper bound is exactly MaxInt64.
	if u := histUpper(histIndex(math.MaxInt64)); u != math.MaxInt64 {
		t.Fatalf("top bucket upper = %d, want MaxInt64", u)
	}
}

func TestHistNegativeClamps(t *testing.T) {
	var h Hist
	h.Record(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("negative value not clamped: count=%d max=%d", h.Count(), h.Max())
	}
}
