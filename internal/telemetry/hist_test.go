package telemetry

import (
	"math"
	"testing"
)

// TestHistIndexUpperRoundTrip asserts every bucket's upper bound maps
// back into that bucket, and that consecutive values never map to an
// earlier bucket.
func TestHistIndexUpperRoundTrip(t *testing.T) {
	// Buckets past histIndex(MaxInt64) are unreachable: no int64 value
	// maps to them.
	maxIdx := histIndex(math.MaxInt64)
	for idx := 0; idx <= maxIdx; idx++ {
		u := histUpper(idx)
		if got := histIndex(u); got != idx {
			t.Fatalf("histIndex(histUpper(%d)) = %d (upper %d)", idx, got, u)
		}
	}
	prev := -1
	for v := int64(0); v < 1<<20; v += 17 {
		idx := histIndex(v)
		if idx < prev {
			t.Fatalf("histIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if u := histUpper(idx); u < v {
			t.Fatalf("histUpper(%d) = %d < value %d", idx, u, v)
		}
	}
}

// TestHistQuantileErrorBound reconstructs p50/p90/p99 from known value
// distributions and asserts the log-linear error bound: the reported
// quantile is an upper bound within 2^-histSubBits (6.25%) of the true
// order statistic.
func TestHistQuantileErrorBound(t *testing.T) {
	distributions := map[string]func(i int) int64{
		"uniform":   func(i int) int64 { return int64(i + 1) },
		"geometric": func(i int) int64 { return int64(1) << uint(i%30) },
		"bimodal": func(i int) int64 {
			if i%2 == 0 {
				return int64(1000 + i)
			}
			return int64(1_000_000 + i)
		},
		"heavy-tail": func(i int) int64 {
			v := float64(i+1) / 10000.0
			return int64(800 * math.Exp(5*v))
		},
	}
	const n = 10000
	for name, gen := range distributions {
		var h Hist
		vals := make([]int64, n)
		for i := 0; i < n; i++ {
			vals[i] = gen(i)
			h.Record(vals[i])
		}
		// Exact order statistics by counting sort over the sorted copy.
		sorted := append([]int64(nil), vals...)
		for i := 1; i < len(sorted); i++ { // insertion sort is fine at this size
			for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
				sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
			}
		}
		for _, q := range []float64{0.50, 0.90, 0.99} {
			rank := int(q*float64(n)) - 1
			if rank < 0 {
				rank = 0
			}
			exact := sorted[rank]
			got := h.Quantile(q)
			if got < exact {
				t.Errorf("%s p%.0f: reported %d below exact %d", name, q*100, got, exact)
			}
			bound := float64(exact) * (1 + 1.0/float64(histSubBuckets))
			if float64(got) > bound+1 {
				t.Errorf("%s p%.0f: reported %d exceeds error bound %.0f (exact %d)", name, q*100, got, bound, exact)
			}
		}
		if h.Count() != n {
			t.Fatalf("%s: count = %d", name, h.Count())
		}
	}
}

func TestHistMergeAndStats(t *testing.T) {
	var a, b Hist
	for i := int64(1); i <= 100; i++ {
		a.Record(i)
	}
	for i := int64(101); i <= 200; i++ {
		b.Record(i)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 200 {
		t.Fatalf("merged max = %d", a.Max())
	}
	if m := a.Mean(); m < 95 || m > 106 {
		t.Fatalf("merged mean = %d, want ~100.5", m)
	}
	if q := a.Quantile(1.0); q != 200 {
		t.Fatalf("p100 = %d, want clamped to max 200", q)
	}
	var empty Hist
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatalf("empty hist stats not zero")
	}
	a.Reset()
	if a.Count() != 0 || a.Max() != 0 {
		t.Fatalf("reset did not clear")
	}
}

func TestHistNegativeClamps(t *testing.T) {
	var h Hist
	h.Record(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("negative value not clamped: count=%d max=%d", h.Count(), h.Max())
	}
}
