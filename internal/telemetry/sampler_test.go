package telemetry

import (
	"testing"

	"repro/internal/ib"
	"repro/internal/obs"
	"repro/internal/sim"
)

func dataPacket(src, dst ib.LID, msgID uint64, seq, total uint8, inject sim.Time, hotspot bool) *ib.Packet {
	return &ib.Packet{
		ID: msgID<<8 | uint64(seq), Type: ib.DataPacket, Src: src, Dst: dst,
		PayloadBytes: ib.MTU, Hotspot: hotspot,
		MsgID: msgID, MsgSeq: seq, MsgPackets: total, InjectTime: inject,
	}
}

func TestSamplerSeries(t *testing.T) {
	b := obs.New()
	s := NewSampler("run-a", 10*sim.Microsecond)
	s.Attach(b)

	// Two delivered data packets in bin 0 (one hotspot), a control packet,
	// a queue movement, and a CCTI ramp.
	p1 := dataPacket(1, 9, 1, 0, 2, sim.Time(0), true)
	b.PacketDelivered(sim.Time(2*sim.Microsecond), 9, p1)
	p2 := dataPacket(2, 8, 5, 0, 1, sim.Time(1*sim.Microsecond), false)
	b.PacketDelivered(sim.Time(3*sim.Microsecond), 8, p2)
	cnp := &ib.Packet{Type: ib.CNPPacket, Src: 9, Dst: 1}
	b.PacketDelivered(sim.Time(4*sim.Microsecond), 1, cnp)
	b.QueueSampled(sim.Time(5*sim.Microsecond), 3, 2, true, 0, 6000)
	b.CCTIChanged(sim.Time(6*sim.Microsecond), 1, 9, 0, 4)
	b.CreditStalled(sim.Time(7*sim.Microsecond), true, 3, 2, 0, 10, 2094)

	// Crossing into bin 1 flushes bin 0.
	p3 := dataPacket(1, 9, 1, 1, 2, sim.Time(500*sim.Nanosecond), true)
	b.MsgCompleted(sim.Time(14*sim.Microsecond), 9, p3)
	s.Finish()

	snap := s.Snapshot()
	if snap.Name != "run-a" || snap.CadenceUS != 10 {
		t.Fatalf("identity wrong: %+v", snap)
	}
	if n := snap.HotspotGbps.V; len(n) < 1 {
		t.Fatalf("no hotspot rate points")
	}
	// Bin 0: one hotspot MTU payload in 10 µs = 2048*8/10e-6 bits/s.
	wantHot := float64(ib.MTU) * 8 / 10e-6 / 1e9
	if got := snap.HotspotGbps.V[0]; !near(got, wantHot, 1e-9) {
		t.Fatalf("hotspot rate = %v, want %v", got, wantHot)
	}
	if got := snap.OtherGbps.V[0]; !near(got, wantHot, 1e-9) {
		t.Fatalf("other rate = %v, want %v", got, wantHot)
	}
	wantCtl := float64(ib.CNPBytes+ib.HeaderBytes) * 8 / 10e-6 / 1e9
	if got := snap.ControlGbps.V[0]; !near(got, wantCtl, 1e-9) {
		t.Fatalf("control rate = %v, want %v", got, wantCtl)
	}
	if got := snap.QueuedKB.V[0]; !near(got, 6000.0/1024, 1e-9) {
		t.Fatalf("queued = %v", got)
	}
	if got := snap.Throttled.V[0]; got != 1 {
		t.Fatalf("throttled = %v", got)
	}
	if got := snap.MaxCCTI.V[0]; got != 4 {
		t.Fatalf("max ccti = %v", got)
	}
	if got := snap.Stalls.V[0]; got != 1 {
		t.Fatalf("stalls = %v", got)
	}

	// The message span runs from the seq-0 packet's injection (t=0) to
	// the completion delivery at 14 µs.
	if snap.Completion.Count != 1 {
		t.Fatalf("completion count = %d", snap.Completion.Count)
	}
	if p50 := snap.Completion.P50; p50 < 14 || p50 > 15 {
		t.Fatalf("completion p50 = %v µs, want ~14 (within bucket bound)", p50)
	}

	if len(snap.HotPorts) != 1 || snap.HotPorts[0].Switch != 3 || snap.HotPorts[0].Port != 2 || !snap.HotPorts[0].HostPort {
		t.Fatalf("hot ports = %+v", snap.HotPorts)
	}
}

func near(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func TestSamplerFallbackCompletionSpan(t *testing.T) {
	b := obs.New()
	s := NewSampler("run-b", 0)
	s.Attach(b)
	// A completion whose seq-0 delivery was never seen falls back to the
	// final packet's own injection time.
	p := dataPacket(2, 7, 9, 1, 2, sim.Time(3*sim.Microsecond), false)
	b.MsgCompleted(sim.Time(8*sim.Microsecond), 7, p)
	s.Finish()
	c := s.Completion()
	if c.Count != 1 {
		t.Fatalf("count = %d", c.Count)
	}
	if c.P50 < 5 || c.P50 > 5.5 {
		t.Fatalf("fallback span p50 = %v µs, want ~5", c.P50)
	}
}

func TestSamplerLinkState(t *testing.T) {
	b := obs.New()
	s := NewSampler("run-c", 0)
	s.Attach(b)
	b.LinkDown(sim.Time(1), true, 0, 1)
	b.LinkDown(sim.Time(2), true, 0, 2)
	b.LinkUp(sim.Time(3), true, 0, 1)
	p := &ib.Packet{ID: 1, Type: ib.DataPacket}
	b.PacketDropped(sim.Time(4), true, 0, 2, p, 0, 2094)
	s.Finish()
	snap := s.Snapshot()
	if snap.LinksDown != 1 {
		t.Fatalf("links down = %d", snap.LinksDown)
	}
	if got := snap.Drops.V[len(snap.Drops.V)-1]; got != 1 {
		t.Fatalf("drops = %v", got)
	}
}

// TestSamplerDetachedZeroCost asserts the acceptance criterion: with no
// sampler attached, the fabric's telemetry publish sites cost nothing —
// the bus mask check returns before event construction, 0 allocs/op.
func TestSamplerDetachedZeroCost(t *testing.T) {
	bus := obs.New() // no subscribers at all
	p := dataPacket(1, 2, 3, 1, 2, sim.Time(10), false)
	if a := testing.AllocsPerRun(200, func() {
		bus.PacketDelivered(sim.Time(100), 2, p)
		bus.MsgCompleted(sim.Time(100), 2, p)
		bus.QueueSampled(sim.Time(100), 0, 1, false, 0, 512)
	}); a != 0 {
		t.Fatalf("detached-sampler publish allocated %v/op", a)
	}
	var nilBus *obs.Bus
	if a := testing.AllocsPerRun(200, func() {
		nilBus.MsgCompleted(sim.Time(100), 2, p)
	}); a != 0 {
		t.Fatalf("nil-bus publish allocated %v/op", a)
	}
}

// BenchmarkSamplerDetached is the bench-guarded form of the zero-cost
// criterion; run with -benchmem and expect 0 B/op, 0 allocs/op.
func BenchmarkSamplerDetached(b *testing.B) {
	bus := obs.New()
	p := dataPacket(1, 2, 3, 1, 2, sim.Time(10), false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.PacketDelivered(sim.Time(100), 2, p)
		bus.MsgCompleted(sim.Time(100), 2, p)
		bus.QueueSampled(sim.Time(100), 0, 1, false, 0, 512)
	}
}

// BenchmarkSamplerAttached measures the per-event cost with a live
// sampler, for the DESIGN.md overhead table.
func BenchmarkSamplerAttached(b *testing.B) {
	bus := obs.New()
	s := NewSampler("bench", 0)
	s.Attach(bus)
	p := dataPacket(1, 2, 3, 0, 2, sim.Time(10), false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.PacketDelivered(sim.Time(int64(i)*1000), 2, p)
	}
}
