// Package telemetry is the live observability layer above the flight
// recorder: fixed-cadence ring-buffer time series sampled from the
// internal/obs event bus, an HDR-style log-linear histogram for
// per-message completion times, orchestration spans over sweep jobs,
// and a serving layer (JSON snapshots plus a self-contained HTML
// dashboard) that watches a long sweep while it runs.
//
// The package deliberately sits beside internal/obs, not inside the
// simulation: samplers are pure bus consumers, so attaching one never
// schedules an event, never perturbs a trajectory, and a run with
// telemetry off pays only the bus's disabled-publish mask check —
// the same zero-cost-when-off argument the flight recorder makes
// (BenchmarkSamplerDetached asserts 0 allocs/op).
package telemetry

import (
	"math"
	"math/bits"
)

// histSubBits is the log-linear resolution: every power-of-two major
// bucket splits into 2^histSubBits linear sub-buckets, bounding the
// relative quantile error at 2^-histSubBits = 6.25%.
const histSubBits = 4

const (
	histSubBuckets = 1 << histSubBits
	histBuckets    = 64 * histSubBuckets
)

// Hist is an HDR-style log-linear histogram over non-negative int64
// values (the telemetry layer records picoseconds of simulated time and
// nanoseconds of wall time). Recording is a shift, a mask and two adds;
// quantiles reconstruct bucket upper bounds, so any reported percentile
// is within one sub-bucket (≤ 6.25% relative error) of the true value.
// The zero value is ready to use.
type Hist struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     uint64
	min     int64 // exact smallest recorded value; valid when count > 0
	max     int64 // exact largest recorded value
}

// histIndex maps a value to its bucket.
func histIndex(v int64) int {
	if v < histSubBuckets {
		// Values below one full sub-bucket row are exact.
		return int(v)
	}
	major := bits.Len64(uint64(v)) - 1 // >= histSubBits
	shift := uint(major - histSubBits)
	return (major-histSubBits+1)*histSubBuckets + int((uint64(v)>>shift)&(histSubBuckets-1))
}

// histUpper returns the largest value a bucket holds — the bound the
// quantiles report. The top bucket row (major 63) exceeds int64 and
// clamps to MaxInt64.
func histUpper(idx int) int64 {
	if idx < histSubBuckets {
		return int64(idx)
	}
	major := idx/histSubBuckets + histSubBits - 1
	sub := uint64(idx % histSubBuckets)
	width := uint64(1) << uint(major-histSubBits)
	u := uint64(1)<<uint(major) + (sub+1)*width - 1
	if major > 63 || u > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(u)
}

// Record adds one value (negative values clamp to zero).
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[histIndex(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	h.count++
	h.sum += uint64(v)
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded values.
func (h *Hist) Count() uint64 { return h.count }

// Mean returns the mean recorded value (0 when empty).
func (h *Hist) Mean() int64 {
	if h.count == 0 {
		return 0
	}
	return int64(h.sum / h.count)
}

// Max returns the largest recorded value.
func (h *Hist) Max() int64 { return h.max }

// Min returns the smallest recorded value (0 when empty).
func (h *Hist) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]): the
// top of the bucket where the cumulative count crosses q·count, within
// one sub-bucket of the true order statistic. The endpoints are exact:
// Quantile(0) is the recorded minimum and Quantile(1) the recorded
// maximum, and every result is clamped into [min, max] so a reported
// percentile never exceeds a value that was actually recorded (a bucket
// upper bound can otherwise overshoot). Out-of-range q clamps to the
// endpoints; an empty histogram returns 0.
func (h *Hist) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		cum += n
		if cum >= target {
			u := histUpper(i)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// Merge adds other's samples into h.
func (h *Hist) Merge(other *Hist) {
	if other.count == 0 {
		return
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears the histogram.
func (h *Hist) Reset() { *h = Hist{} }

// HistSnapshot is the JSON form of a histogram: the percentile summary
// the dashboard tiles and the RunReport carry. Values are microseconds
// when the histogram recorded picoseconds of simulated time (the
// caller scales; see Sampler and Tracker).
type HistSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// snapshot summarizes the histogram with every value scaled by scale.
func (h *Hist) snapshot(scale float64) HistSnapshot {
	return HistSnapshot{
		Count: h.count,
		Mean:  float64(h.Mean()) * scale,
		P50:   float64(h.Quantile(0.50)) * scale,
		P90:   float64(h.Quantile(0.90)) * scale,
		P99:   float64(h.Quantile(0.99)) * scale,
		Max:   float64(h.max) * scale,
	}
}
