package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ReportSchema is the schema marker every RunReport carries; bump the
// suffix on breaking changes so downstream tooling can refuse documents
// it does not understand.
const ReportSchema = "ibcc.run-report/1"

// Report kinds.
const (
	ReportExperiments = "experiments"
	ReportDegradation = "degradation"
	ReportTournament  = "tournament"
	ReportSingle      = "single"
)

// BenchPoint is one kernel-benchmark measurement: the shape of a
// BENCH_history.json entry and of the trend comparison points. Fields
// mirror the kernel section of BENCH_kernel.json.
type BenchPoint struct {
	GeneratedAt  string  `json:"generated_at"`
	GoVersion    string  `json:"go_version,omitempty"`
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup_steady,omitempty"`
}

// HistoryKeep is how many entries BENCH_history.json retains.
const HistoryKeep = 20

// Trend situates a sweep against the committed kernel benchmarks: the
// pinned BENCH_kernel.json measurement, the BENCH_history.json ring, and
// the ratio of this sweep's full-model event rate to the synthetic
// kernel ceiling (a utilization-style figure — the full model does real
// per-event work, so well under 100% is normal; a collapse flags a
// model-layer regression the kernel bench cannot see).
type Trend struct {
	Baseline        *BenchPoint  `json:"baseline,omitempty"`
	History         []BenchPoint `json:"history,omitempty"`
	SweepEventsPerS float64      `json:"sweep_events_per_sec,omitempty"`
	// SweepVsKernelPct = 100 · sweep events/s ÷ kernel events/s.
	SweepVsKernelPct float64 `json:"sweep_vs_kernel_pct,omitempty"`
	// HistoryDriftPct = 100 · (latest − oldest) ÷ oldest ns/event over
	// the history ring (positive means the kernel got slower).
	HistoryDriftPct float64 `json:"history_drift_pct,omitempty"`
}

// RunReport is the unified machine-readable artifact a sweep writes:
// orchestration stats, aggregated telemetry, and the raw payloads of
// whatever mode ran, plus the kernel-bench trend. Mode payloads stay
// json.RawMessage so the telemetry layer does not import the packages
// that produce them.
type RunReport struct {
	Schema      string `json:"schema"`
	GeneratedAt string `json:"generated_at"`
	// Kind is one of the Report* constants.
	Kind  string `json:"kind"`
	Name  string `json:"name"`
	Radix int    `json:"radix,omitempty"`
	Seeds int    `json:"seeds,omitempty"`

	Sweep     *SweepStats  `json:"sweep,omitempty"`
	Telemetry *HubSnapshot `json:"telemetry,omitempty"`

	Degradation    json.RawMessage `json:"degradation,omitempty"`
	Tournament     json.RawMessage `json:"tournament,omitempty"`
	KernelBaseline json.RawMessage `json:"kernel_baseline,omitempty"`

	Trend *Trend `json:"trend,omitempty"`
}

// validKinds is the closed set Validate accepts.
var validKinds = map[string]bool{
	ReportExperiments: true,
	ReportDegradation: true,
	ReportTournament:  true,
	ReportSingle:      true,
}

// Validate checks the report's structural invariants: the schema marker,
// the kind taxonomy, and that the mode named by Kind actually carries
// its payload.
func (r *RunReport) Validate() error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("run-report: schema %q, want %q", r.Schema, ReportSchema)
	}
	if r.GeneratedAt == "" {
		return fmt.Errorf("run-report: missing generated_at")
	}
	if !validKinds[r.Kind] {
		return fmt.Errorf("run-report: unknown kind %q", r.Kind)
	}
	if r.Name == "" {
		return fmt.Errorf("run-report: missing name")
	}
	switch r.Kind {
	case ReportDegradation:
		if len(r.Degradation) == 0 {
			return fmt.Errorf("run-report: kind degradation without degradation payload")
		}
	case ReportTournament:
		if len(r.Tournament) == 0 {
			return fmt.Errorf("run-report: kind tournament without tournament payload")
		}
	case ReportExperiments:
		if r.Sweep == nil {
			return fmt.Errorf("run-report: kind experiments without sweep stats")
		}
	}
	for _, raw := range []json.RawMessage{r.Degradation, r.Tournament, r.KernelBaseline} {
		if len(raw) == 0 {
			continue
		}
		var v any
		if err := json.Unmarshal(raw, &v); err != nil {
			return fmt.Errorf("run-report: embedded payload is not valid JSON: %v", err)
		}
	}
	return nil
}

// ValidateReport parses data as a RunReport and validates it — the CI
// smoke check's entry point.
func ValidateReport(data []byte) (*RunReport, error) {
	var r RunReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("run-report: %v", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Write validates the report and writes it as indented JSON.
func (r *RunReport) Write(path string) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchKernelFile mirrors the slice of BENCH_kernel.json the trend
// needs.
type benchKernelFile struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	Kernel      struct {
		NsPerEvent   float64 `json:"ns_per_event"`
		EventsPerSec float64 `json:"events_per_sec"`
	} `json:"kernel"`
	SpeedupSteady float64 `json:"speedup_steady"`
}

// LoadTrend builds the trend block from the committed benchmark
// artifacts in dir (BENCH_kernel.json, BENCH_history.json). Missing or
// unreadable files are tolerated — the trend reports whatever exists —
// and nil is returned when nothing does and no sweep rate was measured.
func LoadTrend(dir string, sweepEventsPerSec float64) *Trend {
	t := &Trend{SweepEventsPerS: sweepEventsPerSec}
	if data, err := os.ReadFile(filepath.Join(dir, "BENCH_kernel.json")); err == nil {
		var f benchKernelFile
		if json.Unmarshal(data, &f) == nil && f.Kernel.NsPerEvent > 0 {
			t.Baseline = &BenchPoint{
				GeneratedAt:  f.GeneratedAt,
				GoVersion:    f.GoVersion,
				NsPerEvent:   f.Kernel.NsPerEvent,
				EventsPerSec: f.Kernel.EventsPerSec,
				Speedup:      f.SpeedupSteady,
			}
			if f.Kernel.EventsPerSec > 0 && sweepEventsPerSec > 0 {
				t.SweepVsKernelPct = 100 * sweepEventsPerSec / f.Kernel.EventsPerSec
			}
		}
	}
	if data, err := os.ReadFile(filepath.Join(dir, "BENCH_history.json")); err == nil {
		var hist []BenchPoint
		if json.Unmarshal(data, &hist) == nil && len(hist) > 0 {
			t.History = hist
			first, last := hist[0], hist[len(hist)-1]
			if first.NsPerEvent > 0 {
				t.HistoryDriftPct = 100 * (last.NsPerEvent - first.NsPerEvent) / first.NsPerEvent
			}
		}
	}
	if t.Baseline == nil && t.History == nil && sweepEventsPerSec == 0 {
		return nil
	}
	return t
}

// AppendHistory appends p to the BENCH_history.json ring at path,
// keeping the last HistoryKeep entries. A missing or corrupt file starts
// a fresh ring.
func AppendHistory(path string, p BenchPoint) error {
	var hist []BenchPoint
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &hist) // corrupt history restarts the ring
	}
	hist = append(hist, p)
	if len(hist) > HistoryKeep {
		hist = hist[len(hist)-HistoryKeep:]
	}
	data, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
