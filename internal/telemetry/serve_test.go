package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestServerMetricsJSON(t *testing.T) {
	hub := NewHub(0)
	tr := NewTracker()
	tr.SetTotal(2)
	id := tr.Begin("cell-1", 0)
	s := hub.StartRun("cell-1")
	s.completion.Record(2_000_000) // 2 µs
	hub.FinishRun(s)
	tr.End(id, 123, false, "")

	srv := httptest.NewServer(NewServer(hub, tr).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if m.GeneratedAt == "" {
		t.Fatalf("no timestamp")
	}
	if m.Sweep == nil || m.Sweep.Done != 1 || m.Sweep.Total != 2 || m.Sweep.Events != 123 {
		t.Fatalf("sweep section: %+v", m.Sweep)
	}
	if m.Telemetry == nil || m.Telemetry.Runs != 1 || m.Telemetry.Completion.Count != 1 {
		t.Fatalf("telemetry section: %+v", m.Telemetry)
	}
	if m.Telemetry.Live == nil || !m.Telemetry.LiveDone {
		t.Fatalf("live section: %+v", m.Telemetry)
	}
}

func TestServerDashboard(t *testing.T) {
	srv := httptest.NewServer(NewServer(nil, nil).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"<!doctype html>", "/metrics.json", "hotspot_gbps", "hottest ports"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
	if resp, err := http.Get(srv.URL + "/nope"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path not 404")
	}
}

func TestServerStartEphemeral(t *testing.T) {
	sv := NewServer(nil, NewTracker())
	addr, err := sv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer sv.Close()
	resp, err := http.Get("http://" + addr + "/metrics.json")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if m.Sweep == nil || m.Telemetry != nil {
		t.Fatalf("sections: %+v", m)
	}
}
