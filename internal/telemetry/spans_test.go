package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker()
	tr.SetTotal(3)

	id1 := tr.Begin("cell-a", 0)
	id2 := tr.Begin("cell-b", 1)
	st := tr.Stats()
	if st.Active != 2 || st.Total != 3 || st.Done != 0 {
		t.Fatalf("mid-flight stats: %+v", st)
	}
	if len(st.ActiveJobs) != 2 {
		t.Fatalf("active jobs: %+v", st.ActiveJobs)
	}

	tr.End(id1, 1000, false, "")
	tr.End(id2, 0, true, "")
	if mid := tr.Stats(); mid.ETAMS <= 0 {
		t.Fatalf("eta = %v with %d/%d finished", mid.ETAMS, mid.Done+mid.Failed, mid.Total)
	}
	// cell-a re-runs: counted as a retry.
	id3 := tr.Begin("cell-a", 0)
	tr.End(id3, 500, false, "boom")

	st = tr.Stats()
	if st.Done != 2 || st.Failed != 1 || st.Cached != 1 || st.Retries != 1 {
		t.Fatalf("final stats: %+v", st)
	}
	if st.Events != 1500 {
		t.Fatalf("events = %d", st.Events)
	}
	if st.Workers != 2 {
		t.Fatalf("workers = %d", st.Workers)
	}
	if st.WorkerUtil <= 0 || st.WorkerUtil > 1 {
		t.Fatalf("util = %v", st.WorkerUtil)
	}
	if st.JobMS.Count != 3 {
		t.Fatalf("job hist count = %d", st.JobMS.Count)
	}
	if len(st.Recent) != 3 {
		t.Fatalf("recent = %+v", st.Recent)
	}
	last := st.Recent[2]
	if last.Name != "cell-a" || !last.Retry || last.Err != "boom" {
		t.Fatalf("recent tail: %+v", last)
	}
	if st.ETAMS != 0 {
		t.Fatalf("eta = %v after every job finished", st.ETAMS)
	}
}

func TestTrackerRecentRingBounded(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < recentJobs+50; i++ {
		id := tr.Begin("job", 0)
		tr.End(id, 0, false, "")
	}
	st := tr.Stats()
	if len(st.Recent) != recentJobs {
		t.Fatalf("recent len = %d, want %d", len(st.Recent), recentJobs)
	}
	if st.Done != recentJobs+50 {
		t.Fatalf("done = %d", st.Done)
	}
	// Every re-entry of the same name after the first is a retry.
	if st.Retries != recentJobs+49 {
		t.Fatalf("retries = %d", st.Retries)
	}
}

func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	tr.SetTotal(5)
	id := tr.Begin("x", 0)
	if id != -1 {
		t.Fatalf("nil Begin = %d", id)
	}
	tr.End(id, 0, false, "")
	st := tr.Stats()
	if st.Total != 0 || st.Done != 0 {
		t.Fatalf("nil stats: %+v", st)
	}
}

func TestTrackerEndUnknownID(t *testing.T) {
	tr := NewTracker()
	tr.End(99, 0, false, "") // unknown id must be ignored
	if st := tr.Stats(); st.Done != 0 || st.Failed != 0 {
		t.Fatalf("unknown end counted: %+v", st)
	}
}

func TestHubAggregation(t *testing.T) {
	h := NewHub(0)
	s1 := h.StartRun("cell-1")
	s2 := h.StartRun("cell-2")
	if s1 == nil || s2 == nil {
		t.Fatalf("StartRun returned nil on a live hub")
	}
	snap := h.Snapshot()
	if snap.Active != 2 || snap.Runs != 0 {
		t.Fatalf("active snapshot: %+v", snap)
	}
	if snap.Live == nil || snap.Live.Name != "cell-1" {
		t.Fatalf("live should be the oldest active run: %+v", snap.Live)
	}

	s1.completion.Record(int64(1000))
	h.FinishRun(s1)
	s2.completion.Record(int64(3000))
	h.FinishRun(s2)

	snap = h.Snapshot()
	if snap.Runs != 2 || snap.Active != 0 {
		t.Fatalf("finished snapshot: %+v", snap)
	}
	if snap.Completion.Count != 2 {
		t.Fatalf("aggregate completion count = %d", snap.Completion.Count)
	}
	if snap.Live == nil || !snap.LiveDone || snap.Live.Name != "cell-2" {
		t.Fatalf("idle hub should serve the last finished run: live=%+v done=%v", snap.Live, snap.LiveDone)
	}
}

func TestHubNilSafe(t *testing.T) {
	var h *Hub
	s := h.StartRun("x")
	if s != nil {
		t.Fatalf("nil hub handed out a sampler")
	}
	h.FinishRun(s)
	if snap := h.Snapshot(); snap.Runs != 0 || snap.Live != nil {
		t.Fatalf("nil hub snapshot: %+v", snap)
	}
}

// TestFreshTrackerStatsMarshal polls a just-created tracker the way
// /metrics.json does: zero finished jobs and near-zero elapsed time
// must still produce finite, marshalable stats — encoding/json errors
// on ±Inf/NaN, so a bad division here fails the whole poll.
func TestFreshTrackerStatsMarshal(t *testing.T) {
	tr := NewTracker()
	tr.SetTotal(100)
	st := tr.Stats()
	if _, err := json.Marshal(st); err != nil {
		t.Fatalf("fresh tracker stats do not marshal: %v", err)
	}
	if st.ETAMS != 0 {
		t.Fatalf("ETA with zero finished jobs = %v, want 0", st.ETAMS)
	}
	for name, v := range map[string]float64{
		"elapsed_ms": st.ElapsedMS, "events_per_sec": st.EventsPerSec,
		"eta_ms": st.ETAMS, "worker_util": st.WorkerUtil,
	} {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("%s = %v not finite", name, v)
		}
	}

	// A tracker with active-but-unfinished work: still finished == 0.
	tr2 := NewTracker()
	tr2.SetTotal(4)
	tr2.Begin("job-a", 0)
	st2 := tr2.Stats()
	if _, err := json.Marshal(st2); err != nil {
		t.Fatalf("active tracker stats do not marshal: %v", err)
	}
	if st2.ETAMS != 0 || math.IsNaN(st2.WorkerUtil) {
		t.Fatalf("active tracker: eta=%v util=%v", st2.ETAMS, st2.WorkerUtil)
	}
}

// TestSweepStatsSanitize pins the defense-in-depth scrub: non-finite
// fields zero out rather than reaching the encoder.
func TestSweepStatsSanitize(t *testing.T) {
	st := SweepStats{
		ElapsedMS:    math.Inf(1),
		EventsPerSec: math.Inf(-1),
		ETAMS:        math.NaN(),
		WorkerUtil:   0.5,
	}
	st.sanitize()
	if st.ElapsedMS != 0 || st.EventsPerSec != 0 || st.ETAMS != 0 {
		t.Fatalf("sanitize left non-finite fields: %+v", st)
	}
	if st.WorkerUtil != 0.5 {
		t.Fatalf("sanitize clobbered finite field: %v", st.WorkerUtil)
	}
	if _, err := json.Marshal(st); err != nil {
		t.Fatalf("sanitized stats do not marshal: %v", err)
	}
}

func TestJobSpanErrStrings(t *testing.T) {
	tr := NewTracker()
	id := tr.Begin(strings.Repeat("n", 10), 3)
	tr.End(id, 42, false, "scenario failed: check")
	st := tr.Stats()
	if st.Recent[0].Worker != 3 || st.Recent[0].Events != 42 {
		t.Fatalf("span fields: %+v", st.Recent[0])
	}
}
