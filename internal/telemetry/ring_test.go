package telemetry

import "testing"

func TestRingWraps(t *testing.T) {
	var r Ring
	if r.Len() != 0 || r.Last() != 0 {
		t.Fatalf("zero ring not empty")
	}
	n := ringCap + 100
	for i := 0; i < n; i++ {
		r.Push(float64(i), float64(i)*2)
	}
	if r.Len() != ringCap {
		t.Fatalf("len = %d, want %d", r.Len(), ringCap)
	}
	s := r.Snapshot()
	if len(s.TUS) != ringCap || len(s.V) != ringCap {
		t.Fatalf("snapshot lengths %d/%d", len(s.TUS), len(s.V))
	}
	// Oldest surviving point is n-ringCap; newest is n-1.
	if s.TUS[0] != float64(n-ringCap) || s.TUS[ringCap-1] != float64(n-1) {
		t.Fatalf("window [%v, %v], want [%d, %d]", s.TUS[0], s.TUS[ringCap-1], n-ringCap, n-1)
	}
	for i := 1; i < len(s.TUS); i++ {
		if s.TUS[i] != s.TUS[i-1]+1 {
			t.Fatalf("gap at %d", i)
		}
		if s.V[i] != s.TUS[i]*2 {
			t.Fatalf("value mismatch at %d", i)
		}
	}
	if r.Last() != float64(n-1)*2 {
		t.Fatalf("last = %v", r.Last())
	}
}
