package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"time"
)

// Metrics is the /metrics.json document: one poll of the sweep's
// orchestration stats and telemetry aggregates.
type Metrics struct {
	GeneratedAt string       `json:"generated_at"`
	Sweep       *SweepStats  `json:"sweep,omitempty"`
	Telemetry   *HubSnapshot `json:"telemetry,omitempty"`
}

// Server exposes a running sweep over HTTP: /metrics.json for tooling
// and / for the self-contained HTML dashboard. Both sources may be nil;
// the corresponding sections are simply absent.
type Server struct {
	hub     *Hub
	tracker *Tracker
	ln      net.Listener
	srv     *http.Server
}

// NewServer returns a server over the given sources.
func NewServer(hub *Hub, tracker *Tracker) *Server {
	return &Server{hub: hub, tracker: tracker}
}

// Metrics builds the current /metrics.json document.
func (s *Server) Metrics() Metrics {
	m := Metrics{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	if s.tracker != nil {
		st := s.tracker.Stats()
		m.Sweep = &st
	}
	if s.hub != nil {
		h := s.hub.Snapshot()
		m.Telemetry = &h
	}
	return m
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		_ = json.NewEncoder(w).Encode(s.Metrics())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(dashboardHTML))
	})
	return mux
}

// Start listens on addr (":0" picks an ephemeral port) and serves in a
// background goroutine; it returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener immediately, dropping in-flight requests.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// Shutdown stops the server gracefully: the listener closes at once, and
// in-flight requests (a dashboard poll mid-render) get until ctx expires
// to finish. Nil-server safe, like Close.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

// dashboardHTML is the entire dashboard: no external assets, so it works
// from an air-gapped machine watching a long sweep. It polls
// /metrics.json once a second and renders inline SVG sparklines.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>ibcc sweep</title>
<style>
 body{font:13px/1.4 -apple-system,Segoe UI,Roboto,sans-serif;margin:0;background:#0d1117;color:#c9d1d9}
 header{padding:10px 16px;background:#161b22;border-bottom:1px solid #30363d;display:flex;gap:24px;align-items:baseline;flex-wrap:wrap}
 header h1{font-size:15px;margin:0;color:#e6edf3}
 .bar{position:relative;width:260px;height:10px;background:#21262d;border-radius:5px;overflow:hidden}
 .bar i{position:absolute;left:0;top:0;bottom:0;background:#238636;display:block}
 main{padding:16px;display:grid;gap:16px;grid-template-columns:repeat(auto-fill,minmax(300px,1fr))}
 .card{background:#161b22;border:1px solid #30363d;border-radius:6px;padding:10px 12px}
 .card h2{font-size:11px;margin:0 0 6px;color:#8b949e;text-transform:uppercase;letter-spacing:.05em}
 .big{font-size:22px;color:#e6edf3}
 svg{display:block;width:100%;height:48px}
 polyline{fill:none;stroke:#58a6ff;stroke-width:1.5}
 .h polyline{stroke:#f85149}.q polyline{stroke:#d29922}.c polyline{stroke:#3fb950}
 table{width:100%;border-collapse:collapse;font-size:12px}
 td,th{padding:2px 6px;text-align:right;border-bottom:1px solid #21262d}
 th{color:#8b949e;font-weight:500}
 td:first-child,th:first-child{text-align:left}
 .err{color:#f85149}.ok{color:#3fb950}.dim{color:#8b949e}
 #stale{color:#f85149;display:none}
</style>
</head>
<body>
<header>
 <h1>ibcc sweep</h1>
 <span class="bar"><i id="prog"></i></span>
 <span id="progtxt" class="dim"></span>
 <span id="eta" class="dim"></span>
 <span id="eps" class="dim"></span>
 <span id="util" class="dim"></span>
 <span id="live" class="dim"></span>
 <span id="stale">stale — sweep gone?</span>
</header>
<main id="main"></main>
<script>
function spark(s,cls){
 if(!s||!s.v||s.v.length<2)return'<svg class="'+(cls||'')+'"></svg>';
 var v=s.v,n=v.length,mx=Math.max.apply(null,v),mn=Math.min.apply(null,v);
 if(mx===mn){mx=mn+1}
 var pts=[];
 for(var i=0;i<n;i++)pts.push((i/(n-1)*100).toFixed(2)+','+(46-(v[i]-mn)/(mx-mn)*44).toFixed(2));
 return'<svg class="'+(cls||'')+'" viewBox="0 0 100 48" preserveAspectRatio="none"><polyline points="'+pts.join(' ')+'"/></svg>';
}
function card(title,body){return'<div class="card"><h2>'+title+'</h2>'+body+'</div>'}
function last(s){return s&&s.v&&s.v.length?s.v[s.v.length-1]:0}
function f(x,d){return(x==null?0:x).toFixed(d==null?1:d)}
function ms(x){return x>=60000?(x/60000).toFixed(1)+'m':x>=1000?(x/1000).toFixed(1)+'s':f(x,0)+'ms'}
function render(m){
 var sw=m.sweep||{},t=m.telemetry||{},lv=t.live;
 var fin=(sw.done||0)+(sw.failed||0),tot=sw.total||0;
 document.getElementById('prog').style.width=(tot?100*fin/tot:0)+'%';
 document.getElementById('progtxt').textContent=fin+'/'+tot+' jobs'+(sw.failed?' ('+sw.failed+' failed)':'')+(sw.cached?' ('+sw.cached+' cached)':'')+(sw.quarantined?' ('+sw.quarantined+' quarantined)':'');
 document.getElementById('eta').textContent=sw.eta_ms?'eta '+ms(sw.eta_ms):'';
 document.getElementById('eps').textContent=sw.events_per_sec?f(sw.events_per_sec/1e6,2)+' M events/s':'';
 document.getElementById('util').textContent=sw.workers?sw.workers+' workers, '+f(100*(sw.worker_util||0),0)+'% busy':'';
 document.getElementById('live').textContent=lv?('watching: '+lv.name+(t.live_done?' (done)':' @ '+f(lv.now_us,0)+'µs')):'';
 var h='';
 var c=t.completion||{};
 h+=card('message completion µs (all runs)','<span class="big">p50 '+f(c.p50)+'</span> <span class="dim">p99 '+f(c.p99)+' · max '+f(c.max)+' · n='+(c.count||0)+'</span>');
 var j=sw.job_ms||{};
 h+=card('job wall ms','<span class="big">p50 '+f(j.p50,0)+'</span> <span class="dim">p99 '+f(j.p99,0)+' · retries '+(sw.retries||0)+'</span>');
 if(lv){
  h+=card('hotspot Gbit/s · '+f(last(lv.hotspot_gbps),2),spark(lv.hotspot_gbps,'h'));
  h+=card('other Gbit/s · '+f(last(lv.other_gbps),2),spark(lv.other_gbps));
  h+=card('control Gbit/s · '+f(last(lv.control_gbps),3),spark(lv.control_gbps,'c'));
  h+=card('queued KB (fabric) · '+f(last(lv.queued_kb)),spark(lv.queued_kb,'q'));
  h+=card('max port KB · '+f(last(lv.max_port_kb)),spark(lv.max_port_kb,'q'));
  h+=card('throttled flows · '+f(last(lv.throttled),0),spark(lv.throttled,'h'));
  h+=card('max CCTI · '+f(last(lv.max_ccti),0),spark(lv.max_ccti,'h'));
  h+=card('drops/bin · '+f(last(lv.drops),0)+' · stalls/bin · '+f(last(lv.stalls),0),spark(lv.drops,'h')+spark(lv.stalls,'q'));
 }
 var hp=(t.hot_ports||[]).map(function(p){return'<tr><td>sw'+p.switch+':p'+p.port+(p.host_port?' (host)':'')+'</td><td>'+f(p.peak_kb)+'</td></tr>'}).join('');
 if(hp)h+=card('hottest ports (peak KB)','<table><tr><th>port</th><th>peak</th></tr>'+hp+'</table>');
 var rec=(sw.recent||[]).slice(-12).reverse().map(function(r){
  return'<tr><td>'+r.name+(r.retry?' <span class="err">retry</span>':'')+'</td><td>w'+r.worker+'</td><td>'+ms(r.ms)+'</td><td>'+(r.err?'<span class="err">fail</span>':r.cached?'<span class="dim">cache</span>':'<span class="ok">ok</span>')+'</td></tr>'}).join('');
 if(rec)h+=card('recent jobs','<table><tr><th>job</th><th>wkr</th><th>wall</th><th></th></tr>'+rec+'</table>');
 var act=(sw.active_jobs||[]).map(function(r){return'<tr><td>'+r.name+'</td><td>w'+r.worker+'</td><td>'+ms(r.ms)+'</td></tr>'}).join('');
 if(act)h+=card('running now','<table><tr><th>job</th><th>wkr</th><th>for</th></tr>'+act+'</table>');
 document.getElementById('main').innerHTML=h;
}
function tick(){
 fetch('/metrics.json').then(function(r){return r.json()}).then(function(m){
  document.getElementById('stale').style.display='none';render(m);
 }).catch(function(){document.getElementById('stale').style.display='inline'});
}
tick();setInterval(tick,1000);
</script>
</body>
</html>
`
