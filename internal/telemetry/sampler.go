package telemetry

import (
	"sort"
	"sync"

	"repro/internal/ib"
	"repro/internal/obs"
	"repro/internal/sim"
)

// DefaultCadence is the sampling bin width: event timestamps are bucketed
// into bins of this simulated width and each completed bin becomes one
// time-series point. 10 µs resolves the paper's congestion transients
// (CCTI ramps play out over hundreds of microseconds) while a millisecond
// of simulated time costs only 100 points.
const DefaultCadence = 10 * sim.Microsecond

// Traffic classes for the delivered-rate series.
const (
	classHotspot = iota // data payload addressed to the hotspot victim
	classOther          // all other data payload
	classControl        // CNP + ACK wire bytes
	numClasses
)

// hotPortsTopK bounds the hottest-ports table in snapshots.
const hotPortsTopK = 8

type portVL struct {
	sw, port int
	vl       ib.VL
}

type portID struct {
	sw, port int
}

type msgKey struct {
	src ib.LID
	id  uint64
}

// HotPort is one row of the hottest-ports table: a switch output port
// ranked by its peak queued bytes over the run.
type HotPort struct {
	Switch   int     `json:"switch"`
	Port     int     `json:"port"`
	HostPort bool    `json:"host_port"`
	PeakKB   float64 `json:"peak_kb"`
}

// SamplerSnapshot is the JSON view of one run's live time series.
type SamplerSnapshot struct {
	Name      string  `json:"name"`
	CadenceUS float64 `json:"cadence_us"`
	NowUS     float64 `json:"now_us"`

	// Delivered goodput per traffic class, Gbit/s per bin.
	HotspotGbps Series `json:"hotspot_gbps"`
	OtherGbps   Series `json:"other_gbps"`
	ControlGbps Series `json:"control_gbps"`

	// Fabric occupancy at each bin boundary.
	QueuedKB  Series `json:"queued_kb"`
	MaxPortKB Series `json:"max_port_kb"`

	// Congestion-control state at each bin boundary.
	Throttled Series `json:"throttled"`
	MaxCCTI   Series `json:"max_ccti"`

	// Fault-layer activity per bin.
	Drops  Series `json:"drops"`
	Stalls Series `json:"stalls"`

	LinksDown int `json:"links_down"`

	// Completion is the per-message completion-time histogram summary in
	// microseconds (first packet injected → last packet delivered).
	Completion HistSnapshot `json:"completion"`

	HotPorts []HotPort `json:"hot_ports"`
}

// Sampler turns one run's event stream into fixed-cadence time series.
// It is a pure bus consumer: attaching it never schedules a simulation
// event, so the observed trajectory is byte-identical to the unobserved
// one. Consume runs on the simulation goroutine; Snapshot may be called
// concurrently from the HTTP server, so both take the mutex.
type Sampler struct {
	mu      sync.Mutex
	name    string
	cadence sim.Duration

	// Per-bin accumulators, flushed when an event crosses a bin boundary.
	curBin     int64
	binStarted bool
	binBytes   [numClasses]int64
	binDrops   int
	binStalls  int

	rates     [numClasses]Ring
	queued    Ring
	maxPort   Ring
	throttled Ring
	maxCCTI   Ring
	drops     Ring
	stalls    Ring

	// Continuous state read at each bin boundary.
	vlDepth   map[portVL]int
	portDepth map[portID]int
	portPeak  map[portID]int
	portHost  map[portID]bool
	ccti      map[ib.FlowKey]uint16
	linksDown int

	// Message spans: first-packet injection time by (source, message id),
	// recorded when the MsgSeq-0 packet is delivered.
	msgStart   map[msgKey]sim.Time
	completion Hist

	lastTime sim.Time
}

// NewSampler returns a sampler for one run; cadence <= 0 selects
// DefaultCadence.
func NewSampler(name string, cadence sim.Duration) *Sampler {
	if cadence <= 0 {
		cadence = DefaultCadence
	}
	return &Sampler{
		name:      name,
		cadence:   cadence,
		curBin:    -1,
		vlDepth:   make(map[portVL]int),
		portDepth: make(map[portID]int),
		portPeak:  make(map[portID]int),
		portHost:  make(map[portID]bool),
		ccti:      make(map[ib.FlowKey]uint16),
		msgStart:  make(map[msgKey]sim.Time),
	}
}

// Attach subscribes the sampler to the kinds it derives series from. A
// nil sampler (telemetry off) attaches nothing, so call sites stay a
// single unconditional line.
func (s *Sampler) Attach(b *obs.Bus) {
	if s == nil {
		return
	}
	b.Subscribe(s,
		obs.KindPacketDelivered, obs.KindQueueSampled, obs.KindCCTIChanged,
		obs.KindCreditStalled, obs.KindLinkDown, obs.KindLinkUp,
		obs.KindPacketDropped, obs.KindMsgCompleted,
	)
}

// Consume implements obs.Consumer.
func (s *Sampler) Consume(e obs.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advance(e.Time)
	switch e.Kind {
	case obs.KindPacketDelivered:
		s.delivered(e)
	case obs.KindQueueSampled:
		s.queueSampled(e)
	case obs.KindCCTIChanged:
		s.ccti[e.Flow()] = e.NewCCTI
	case obs.KindCreditStalled:
		s.binStalls++
	case obs.KindLinkDown:
		s.linksDown++
	case obs.KindLinkUp:
		if s.linksDown > 0 {
			s.linksDown--
		}
	case obs.KindPacketDropped:
		s.binDrops++
	case obs.KindMsgCompleted:
		s.msgCompleted(e)
	}
}

func (s *Sampler) delivered(e obs.Event) {
	switch e.Type {
	case ib.DataPacket:
		// Track payload, the goodput the paper's throughput plots use.
		payload := e.Bytes - ib.HeaderBytes
		if e.Hotspot {
			s.binBytes[classHotspot] += int64(payload)
		} else {
			s.binBytes[classOther] += int64(payload)
		}
		if e.MsgSeq == 0 {
			s.msgStart[msgKey{e.Src, e.MsgID}] = e.Inject
		}
	default:
		s.binBytes[classControl] += int64(e.Bytes)
	}
}

func (s *Sampler) queueSampled(e obs.Event) {
	k := portVL{e.Node, e.Port, e.VL}
	p := portID{e.Node, e.Port}
	old := s.vlDepth[k]
	s.vlDepth[k] = e.QueuedBytes
	d := s.portDepth[p] + e.QueuedBytes - old
	s.portDepth[p] = d
	if d > s.portPeak[p] {
		s.portPeak[p] = d
		s.portHost[p] = e.HostPort
	}
}

func (s *Sampler) msgCompleted(e obs.Event) {
	k := msgKey{e.Src, e.MsgID}
	start, ok := s.msgStart[k]
	if !ok {
		// Single-tracked fallback: the final packet's own injection time
		// (exact for one-packet messages, a lower bound otherwise).
		start = e.Inject
	} else {
		delete(s.msgStart, k)
	}
	s.completion.Record(int64(e.Time.Sub(start)))
}

// advance flushes the current bin when t has crossed its boundary.
func (s *Sampler) advance(t sim.Time) {
	if t > s.lastTime {
		s.lastTime = t
	}
	bin := int64(t) / int64(s.cadence)
	if s.curBin < 0 {
		s.curBin = bin
		return
	}
	if bin > s.curBin {
		s.flushBin()
		s.curBin = bin
	}
}

// flushBin turns the accumulated bin into one point per series, stamped
// at the bin's end.
func (s *Sampler) flushBin() {
	endUS := float64(s.curBin+1) * sim.Duration(s.cadence).Seconds() * 1e6
	binSec := sim.Duration(s.cadence).Seconds()
	for c := 0; c < numClasses; c++ {
		s.rates[c].Push(endUS, float64(s.binBytes[c])*8/binSec/1e9)
		s.binBytes[c] = 0
	}
	s.drops.Push(endUS, float64(s.binDrops))
	s.stalls.Push(endUS, float64(s.binStalls))
	s.binDrops, s.binStalls = 0, 0

	var total, maxP int
	for _, d := range s.portDepth {
		total += d
		if d > maxP {
			maxP = d
		}
	}
	s.queued.Push(endUS, float64(total)/1024)
	s.maxPort.Push(endUS, float64(maxP)/1024)

	var nThrottled int
	var maxCCTI uint16
	for _, c := range s.ccti {
		if c > 0 {
			nThrottled++
		}
		if c > maxCCTI {
			maxCCTI = c
		}
	}
	s.throttled.Push(endUS, float64(nThrottled))
	s.maxCCTI.Push(endUS, float64(maxCCTI))
}

// Finish flushes the final partial bin. Call it once when the run ends;
// a nil sampler is a no-op.
func (s *Sampler) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.curBin >= 0 {
		s.flushBin()
		s.curBin = -1
	}
}

// Completion returns a summary of the completion-time histogram in
// microseconds.
func (s *Sampler) Completion() HistSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completion.snapshot(1e-6)
}

// mergeInto folds the sampler's cross-run aggregates (completion
// histogram, port peaks) into the hub's accumulators. Caller holds no
// lock on s.
func (s *Sampler) mergeInto(h *Hist, peaks map[portID]int, hosts map[portID]bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h.Merge(&s.completion)
	for p, d := range s.portPeak {
		if d > peaks[p] {
			peaks[p] = d
			hosts[p] = s.portHost[p]
		}
	}
}

func hotPorts(peaks map[portID]int, hosts map[portID]bool) []HotPort {
	hp := make([]HotPort, 0, len(peaks))
	for p, d := range peaks {
		hp = append(hp, HotPort{Switch: p.sw, Port: p.port, HostPort: hosts[p], PeakKB: float64(d) / 1024})
	}
	sort.Slice(hp, func(i, j int) bool {
		if hp[i].PeakKB != hp[j].PeakKB {
			return hp[i].PeakKB > hp[j].PeakKB
		}
		if hp[i].Switch != hp[j].Switch {
			return hp[i].Switch < hp[j].Switch
		}
		return hp[i].Port < hp[j].Port
	})
	if len(hp) > hotPortsTopK {
		hp = hp[:hotPortsTopK]
	}
	return hp
}

// Snapshot copies the current series out for serving. It is safe to call
// while the run is still consuming events.
func (s *Sampler) Snapshot() SamplerSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := SamplerSnapshot{
		Name:        s.name,
		CadenceUS:   sim.Duration(s.cadence).Seconds() * 1e6,
		NowUS:       s.lastTime.Seconds() * 1e6,
		HotspotGbps: s.rates[classHotspot].Snapshot(),
		OtherGbps:   s.rates[classOther].Snapshot(),
		ControlGbps: s.rates[classControl].Snapshot(),
		QueuedKB:    s.queued.Snapshot(),
		MaxPortKB:   s.maxPort.Snapshot(),
		Throttled:   s.throttled.Snapshot(),
		MaxCCTI:     s.maxCCTI.Snapshot(),
		Drops:       s.drops.Snapshot(),
		Stalls:      s.stalls.Snapshot(),
		LinksDown:   s.linksDown,
		Completion:  s.completion.snapshot(1e-6),
		HotPorts:    hotPorts(s.portPeak, s.portHost),
	}
	return snap
}

var _ obs.Consumer = (*Sampler)(nil)
