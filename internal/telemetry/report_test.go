package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func validReport() *RunReport {
	return &RunReport{
		Schema:      ReportSchema,
		GeneratedAt: "2026-08-07T00:00:00Z",
		Kind:        ReportTournament,
		Name:        "smoke",
		Radix:       8,
		Seeds:       2,
		Sweep:       &SweepStats{Total: 4, Done: 4},
		Tournament:  json.RawMessage(`{"cells":[]}`),
	}
}

func TestReportValidate(t *testing.T) {
	if err := validReport().Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	cases := map[string]func(r *RunReport){
		"bad schema":        func(r *RunReport) { r.Schema = "ibcc.run-report/0" },
		"no generated_at":   func(r *RunReport) { r.GeneratedAt = "" },
		"bad kind":          func(r *RunReport) { r.Kind = "sweep" },
		"no name":           func(r *RunReport) { r.Name = "" },
		"missing payload":   func(r *RunReport) { r.Tournament = nil },
		"corrupt payload":   func(r *RunReport) { r.Tournament = json.RawMessage(`{"cells":`) },
		"degradation empty": func(r *RunReport) { r.Kind = ReportDegradation },
		"experiments sweep": func(r *RunReport) { r.Kind = ReportExperiments; r.Sweep = nil },
	}
	for name, mutate := range cases {
		r := validReport()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReportWriteAndValidateBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	if err := validReport().Write(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	r, err := ValidateReport(data)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if r.Kind != ReportTournament || r.Radix != 8 {
		t.Fatalf("round-tripped report: %+v", r)
	}
	bad := &RunReport{Schema: ReportSchema}
	if err := bad.Write(filepath.Join(t.TempDir(), "bad.json")); err == nil {
		t.Fatalf("invalid report written without error")
	}
	if _, err := ValidateReport([]byte("{")); err == nil {
		t.Fatalf("truncated JSON accepted")
	}
}

func TestLoadTrend(t *testing.T) {
	dir := t.TempDir()
	if tr := LoadTrend(dir, 0); tr != nil {
		t.Fatalf("empty dir with no sweep rate should yield nil trend, got %+v", tr)
	}
	if tr := LoadTrend(dir, 5e6); tr == nil || tr.SweepEventsPerS != 5e6 {
		t.Fatalf("sweep-only trend: %+v", tr)
	}

	kernel := `{
	  "generated_at": "2026-08-05T21:09:07Z",
	  "go_version": "go1.24.0",
	  "kernel": {"ns_per_event": 66.3, "events_per_sec": 15086630},
	  "speedup_steady": 3.12
	}`
	if err := os.WriteFile(filepath.Join(dir, "BENCH_kernel.json"), []byte(kernel), 0o644); err != nil {
		t.Fatal(err)
	}
	tr := LoadTrend(dir, 7543315) // exactly half the kernel rate
	if tr == nil || tr.Baseline == nil {
		t.Fatalf("trend missing baseline: %+v", tr)
	}
	if tr.Baseline.NsPerEvent != 66.3 || tr.Baseline.Speedup != 3.12 {
		t.Fatalf("baseline fields: %+v", tr.Baseline)
	}
	if tr.SweepVsKernelPct < 49.9 || tr.SweepVsKernelPct > 50.1 {
		t.Fatalf("sweep vs kernel = %v%%, want ~50", tr.SweepVsKernelPct)
	}

	histPath := filepath.Join(dir, "BENCH_history.json")
	for i := 0; i < HistoryKeep+5; i++ {
		p := BenchPoint{
			GeneratedAt:  "2026-08-07T00:00:00Z",
			NsPerEvent:   60 + float64(i),
			EventsPerSec: 1e9 / (60 + float64(i)),
		}
		if err := AppendHistory(histPath, p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	tr = LoadTrend(dir, 0)
	if tr == nil || len(tr.History) != HistoryKeep {
		t.Fatalf("history not capped: %+v", tr)
	}
	// Ring keeps the last HistoryKeep points: ns/event 65..84, drift
	// 100·(84−65)/65.
	if tr.History[0].NsPerEvent != 65 || tr.History[HistoryKeep-1].NsPerEvent != 84 {
		t.Fatalf("ring window: first %v last %v", tr.History[0].NsPerEvent, tr.History[HistoryKeep-1].NsPerEvent)
	}
	want := 100 * (84.0 - 65.0) / 65.0
	if !near(tr.HistoryDriftPct, want, 1e-9) {
		t.Fatalf("drift = %v, want %v", tr.HistoryDriftPct, want)
	}
}

func TestAppendHistoryCorruptRestarts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, BenchPoint{GeneratedAt: "x", NsPerEvent: 50}); err != nil {
		t.Fatalf("append over corrupt file: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var hist []BenchPoint
	if err := json.Unmarshal(data, &hist); err != nil || len(hist) != 1 {
		t.Fatalf("restarted ring: %v %+v", err, hist)
	}
}
