package telemetry

import (
	"math"
	"sync"
	"time"
)

// recentJobs bounds the finished-jobs ring in SweepStats.
const recentJobs = 64

// JobSpan is one finished job in the recent ring.
type JobSpan struct {
	Name   string  `json:"name"`
	Worker int     `json:"worker"`
	MS     float64 `json:"ms"`
	Events uint64  `json:"events,omitempty"`
	Cached bool    `json:"cached,omitempty"`
	Retry  bool    `json:"retry,omitempty"`
	Err    string  `json:"err,omitempty"`
}

// ActiveJob is one currently running job.
type ActiveJob struct {
	Name   string  `json:"name"`
	Worker int     `json:"worker"`
	MS     float64 `json:"ms"`
}

// SweepStats is the orchestration view of a sweep: progress, throughput,
// worker utilization and the job-latency distribution.
type SweepStats struct {
	Total   int `json:"total"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	Cached  int `json:"cached"`
	Active  int `json:"active"`
	Retries int `json:"retries"`
	// Quarantined counts jobs the self-healing runner gave up on after
	// exhausting retries (they no longer block the sweep).
	Quarantined int `json:"quarantined,omitempty"`
	// CorruptArtifacts counts stored artifacts that failed validation
	// and were moved aside instead of being trusted.
	CorruptArtifacts int `json:"corrupt_artifacts,omitempty"`

	Events       uint64  `json:"events"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	// ETAMS extrapolates the remaining jobs at the observed completion
	// rate; 0 until at least one job finishes or when Total is unset.
	ETAMS float64 `json:"eta_ms"`

	// Job wall-time distribution (ms), cached hits included.
	JobMS HistSnapshot `json:"job_ms"`

	Workers int `json:"workers"`
	// WorkerUtil is the busy fraction across all workers since the
	// tracker started, in [0,1].
	WorkerUtil float64 `json:"worker_util"`

	ActiveJobs []ActiveJob `json:"active_jobs,omitempty"`
	Recent     []JobSpan   `json:"recent,omitempty"`
}

type span struct {
	name   string
	worker int
	start  time.Time
	retry  bool
}

// Tracker collects orchestration spans: every sweep job reports Begin
// when a worker picks it up and End when it finishes. A name beginning a
// second time counts as a retry (the fault-tolerant runner re-queues
// failed scenarios). All methods are safe for concurrent use and no-ops
// on a nil *Tracker, so wiring it through the runners costs one nil
// check per job.
type Tracker struct {
	mu          sync.Mutex
	start       time.Time
	total       int
	done        int
	failed      int
	cached      int
	retries     int
	quarantined int
	corrupt     int
	events      uint64
	nextID      int
	active      map[int]*span
	begun       map[string]int
	jobHist     Hist // nanoseconds of wall time
	busy        map[int]time.Duration
	recent      []JobSpan
}

// NewTracker returns an empty tracker; the elapsed clock starts now.
func NewTracker() *Tracker {
	return &Tracker{
		start:  time.Now(),
		active: make(map[int]*span),
		begun:  make(map[string]int),
		busy:   make(map[int]time.Duration),
	}
}

// SetTotal declares how many jobs the sweep holds (for progress and ETA).
func (t *Tracker) SetTotal(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.total = n
	t.mu.Unlock()
}

// Begin opens a span for job name on the given worker and returns its
// id (-1 on a nil tracker; End ignores it).
func (t *Tracker) Begin(name string, worker int) int {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	id := t.nextID
	sp := &span{name: name, worker: worker, start: time.Now()}
	if t.begun[name] > 0 {
		sp.retry = true
		t.retries++
	}
	t.begun[name]++
	t.active[id] = sp
	return id
}

// End closes span id: events is the run's executed event count, cached
// marks an artifact-cache hit, err is empty on success.
func (t *Tracker) End(id int, events uint64, cached bool, err string) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp, ok := t.active[id]
	if !ok {
		return
	}
	delete(t.active, id)
	wall := time.Since(sp.start)
	t.busy[sp.worker] += wall
	t.jobHist.Record(wall.Nanoseconds())
	t.events += events
	if err != "" {
		t.failed++
	} else {
		t.done++
	}
	if cached {
		t.cached++
	}
	t.recent = append(t.recent, JobSpan{
		Name: sp.name, Worker: sp.worker, MS: wall.Seconds() * 1e3,
		Events: events, Cached: cached, Retry: sp.retry, Err: err,
	})
	if len(t.recent) > recentJobs {
		t.recent = t.recent[len(t.recent)-recentJobs:]
	}
}

// Quarantined records that the runner gave up on a job after exhausting
// its retries and moved it out of the sweep's way.
func (t *Tracker) Quarantined(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.quarantined++
	t.mu.Unlock()
}

// CorruptArtifact records that a stored artifact failed validation and
// was quarantined instead of being substituted for a run.
func (t *Tracker) CorruptArtifact(path string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.corrupt++
	t.mu.Unlock()
}

// Stats returns the current sweep view; nil trackers return the zero
// value.
func (t *Tracker) Stats() SweepStats {
	if t == nil {
		return SweepStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	elapsed := time.Since(t.start)
	workers := make(map[int]bool, len(t.busy))
	for w := range t.busy {
		workers[w] = true
	}
	for _, sp := range t.active {
		workers[sp.worker] = true
	}
	st := SweepStats{
		Total: t.total, Done: t.done, Failed: t.failed, Cached: t.cached,
		Active: len(t.active), Retries: t.retries,
		Quarantined: t.quarantined, CorruptArtifacts: t.corrupt,
		Events:    t.events,
		ElapsedMS: elapsed.Seconds() * 1e3,
		JobMS:     t.jobHist.snapshot(1e-6),
		Workers:   len(workers),
	}
	// Rate and ETA guards: a fresh tracker has elapsed ≈ 0 and
	// finished == 0, and encoding/json refuses ±Inf/NaN, so an
	// unguarded division here would break every /metrics.json poll
	// against a just-started sweep. Divide only when both denominators
	// are strictly positive, and sanitize the end result regardless.
	if sec := elapsed.Seconds(); sec > 0 {
		st.EventsPerSec = float64(t.events) / sec
		finished := t.done + t.failed
		if t.total > 0 && finished > 0 && finished < t.total {
			st.ETAMS = sec * 1e3 * float64(t.total-finished) / float64(finished)
		}
	}
	if st.Workers > 0 && elapsed > 0 {
		var busy time.Duration
		for _, b := range t.busy {
			busy += b
		}
		// Active spans count as busy time too.
		for _, sp := range t.active {
			busy += time.Since(sp.start)
		}
		if util := busy.Seconds() / (elapsed.Seconds() * float64(st.Workers)); util < 1 {
			st.WorkerUtil = util
		} else {
			st.WorkerUtil = 1
		}
	}
	for _, sp := range t.active {
		st.ActiveJobs = append(st.ActiveJobs, ActiveJob{
			Name: sp.name, Worker: sp.worker, MS: time.Since(sp.start).Seconds() * 1e3,
		})
	}
	st.Recent = append([]JobSpan(nil), t.recent...)
	st.sanitize()
	return st
}

// sanitize zeroes any non-finite float field so the stats always
// marshal: encoding/json errors on ±Inf/NaN, and a monitoring endpoint
// must degrade to a zero reading, never to a failed poll.
func (st *SweepStats) sanitize() {
	for _, f := range []*float64{&st.ElapsedMS, &st.EventsPerSec, &st.ETAMS, &st.WorkerUtil} {
		if math.IsInf(*f, 0) || math.IsNaN(*f) {
			*f = 0
		}
	}
}
