package telemetry

import (
	"sync"

	"repro/internal/sim"
)

// HubSnapshot is the sweep-level telemetry view: cross-run aggregates
// plus one live run's series for the dashboard sparklines.
type HubSnapshot struct {
	// Runs counts finished runs folded into the aggregates; Active
	// counts runs currently consuming events.
	Runs   int `json:"runs"`
	Active int `json:"active"`

	// Completion aggregates the per-message completion-time histogram
	// (µs) across every finished run.
	Completion HistSnapshot `json:"completion"`

	// HotPorts ranks switch output ports by peak queued bytes across
	// every finished run.
	HotPorts []HotPort `json:"hot_ports"`

	// Live is the series of the oldest still-active run, or the last
	// finished run when the sweep is idle; LiveDone says which.
	Live     *SamplerSnapshot `json:"live,omitempty"`
	LiveDone bool             `json:"live_done"`
}

// Hub aggregates per-run samplers into sweep-level telemetry. Parallel
// runs have independent simulated clocks, so each run gets its own
// Sampler (StartRun) and the hub folds finished runs into cross-run
// aggregates (FinishRun). Snapshot is safe to call concurrently from the
// HTTP server while workers start and finish runs. A nil *Hub is a valid
// disabled hub: StartRun returns a nil sampler and every attach point
// stays a single nil check.
type Hub struct {
	mu      sync.Mutex
	cadence sim.Duration
	seq     uint64
	active  map[*Sampler]uint64
	done    int

	completion Hist
	peaks      map[portID]int
	hosts      map[portID]bool
	last       *SamplerSnapshot
}

// NewHub returns an empty hub; cadence <= 0 selects DefaultCadence for
// the samplers it hands out.
func NewHub(cadence sim.Duration) *Hub {
	if cadence <= 0 {
		cadence = DefaultCadence
	}
	return &Hub{
		cadence: cadence,
		active:  make(map[*Sampler]uint64),
		peaks:   make(map[portID]int),
		hosts:   make(map[portID]bool),
	}
}

// StartRun registers a new run and returns its sampler (nil when the hub
// is nil, which every consumer treats as telemetry-off).
func (h *Hub) StartRun(name string) *Sampler {
	if h == nil {
		return nil
	}
	s := NewSampler(name, h.cadence)
	h.mu.Lock()
	h.seq++
	h.active[s] = h.seq
	h.mu.Unlock()
	return s
}

// FinishRun flushes the sampler and folds it into the aggregates. It is
// a no-op on a nil hub or sampler. Lock order is hub before sampler
// everywhere (here and in Snapshot), and samplers never take the hub
// lock, so the nesting cannot deadlock.
func (h *Hub) FinishRun(s *Sampler) {
	if h == nil || s == nil {
		return
	}
	s.Finish()
	snap := s.Snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.active, s)
	h.done++
	h.last = &snap
	s.mergeInto(&h.completion, h.peaks, h.hosts)
}

// Snapshot returns the sweep-level view. Safe for concurrent use.
func (h *Hub) Snapshot() HubSnapshot {
	if h == nil {
		return HubSnapshot{}
	}
	h.mu.Lock()
	var live *Sampler
	var liveSeq uint64
	for s, q := range h.active {
		if live == nil || q < liveSeq {
			live, liveSeq = s, q
		}
	}
	snap := HubSnapshot{
		Runs:       h.done,
		Active:     len(h.active),
		Completion: h.completion.snapshot(1e-6),
		HotPorts:   hotPorts(h.peaks, h.hosts),
	}
	if live != nil {
		ls := live.Snapshot()
		snap.Live = &ls
	} else if h.last != nil {
		snap.Live = h.last
		snap.LiveDone = true
	}
	h.mu.Unlock()
	return snap
}
