package telemetry

// ringCap is the fixed capacity of every time-series ring: enough points
// for a smooth dashboard sparkline, bounded so that an arbitrarily long
// run holds a sliding window rather than growing without limit.
const ringCap = 512

// Ring is a fixed-capacity time-series ring buffer of (time, value)
// points. Pushing beyond capacity overwrites the oldest point. The zero
// value is ready to use.
type Ring struct {
	t     [ringCap]float64 // microseconds of simulated time
	v     [ringCap]float64
	start int
	n     int
}

// Push appends one point (tUS in simulated microseconds).
func (r *Ring) Push(tUS, v float64) {
	i := (r.start + r.n) % ringCap
	if r.n == ringCap {
		r.start = (r.start + 1) % ringCap
		r.n--
	}
	r.t[i], r.v[i] = tUS, v
	r.n++
}

// Len returns the number of held points.
func (r *Ring) Len() int { return r.n }

// Last returns the most recent value (0 when empty).
func (r *Ring) Last() float64 {
	if r.n == 0 {
		return 0
	}
	return r.v[(r.start+r.n-1)%ringCap]
}

// Series is the JSON form of a ring: parallel time/value arrays ordered
// oldest to newest, ready for a sparkline.
type Series struct {
	TUS []float64 `json:"t_us"`
	V   []float64 `json:"v"`
}

// Snapshot copies the ring's points out in chronological order.
func (r *Ring) Snapshot() Series {
	s := Series{TUS: make([]float64, r.n), V: make([]float64, r.n)}
	for i := 0; i < r.n; i++ {
		j := (r.start + i) % ringCap
		s.TUS[i] = r.t[j]
		s.V[i] = r.v[j]
	}
	return s
}
