package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccBasics(t *testing.T) {
	var a Acc
	if a.N() != 0 || a.Mean() != 0 || a.Var() != 0 || a.CI95() != 0 || a.SE() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Mean() != 5 {
		t.Fatalf("mean = %v", a.Mean())
	}
	// Population variance of this classic set is 4; sample variance
	// = 32/7.
	if math.Abs(a.Var()-32.0/7) > 1e-12 {
		t.Fatalf("var = %v", a.Var())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
	if a.CI95() <= 0 {
		t.Fatal("CI must be positive with spread")
	}
}

func TestAccSingleSample(t *testing.T) {
	var a Acc
	a.Add(3.5)
	if a.Mean() != 3.5 || a.Var() != 0 || a.CI95() != 0 {
		t.Fatal("single-sample stats wrong")
	}
	if a.Min() != 3.5 || a.Max() != 3.5 {
		t.Fatal("single-sample min/max wrong")
	}
}

// Property: Welford matches the two-pass formulas.
func TestAccMatchesTwoPass(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var a Acc
		var sum float64
		for _, v := range raw {
			a.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, v := range raw {
			d := float64(v) - mean
			ss += d * d
		}
		wantVar := ss / float64(len(raw)-1)
		return math.Abs(a.Mean()-mean) < 1e-9*(1+math.Abs(mean)) &&
			math.Abs(a.Var()-wantVar) < 1e-6*(1+wantVar)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTCrit(t *testing.T) {
	if !math.IsNaN(tCrit95(0)) {
		t.Fatal("df=0 must be NaN")
	}
	cases := map[int]float64{1: 12.706, 5: 2.571, 10: 2.228, 29: 2.045}
	for df, want := range cases {
		if got := tCrit95(df); got != want {
			t.Fatalf("t(%d) = %v, want %v", df, got, want)
		}
	}
	// Large df approaches the normal quantile from above.
	if got := tCrit95(1000); got < 1.960 || got > 1.97 {
		t.Fatalf("t(1000) = %v", got)
	}
	if tCrit95(30) >= tCrit95(29) {
		t.Fatal("t must decrease in df")
	}
}

func TestCI95Coverage(t *testing.T) {
	// Sanity: for a known sample the CI equals t * s/sqrt(n).
	var a Acc
	for _, x := range []float64{1, 2, 3, 4, 5} {
		a.Add(x)
	}
	want := 2.776 * a.Std() / math.Sqrt(5)
	if math.Abs(a.CI95()-want) > 1e-12 {
		t.Fatalf("ci = %v, want %v", a.CI95(), want)
	}
}

func TestAccString(t *testing.T) {
	var a Acc
	a.Add(1)
	a.Add(3)
	s := a.String()
	if !strings.Contains(s, "n=2") || !strings.Contains(s, "2") {
		t.Fatalf("String = %q", s)
	}
}

func TestSummary(t *testing.T) {
	s := NewSummary()
	s.Add("x", 1)
	s.Add("y", 10)
	s.Add("x", 3)
	if got := s.Get("x").Mean(); got != 2 {
		t.Fatalf("x mean = %v", got)
	}
	if got := s.Get("y").N(); got != 1 {
		t.Fatalf("y n = %d", got)
	}
	if s.Get("absent") != nil {
		t.Fatal("absent metric not nil")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Fatalf("names = %v", names)
	}
	// Returned slice is a copy.
	names[0] = "mutated"
	if s.Names()[0] != "x" {
		t.Fatal("Names leaked internal slice")
	}
}
