// Package stats provides the small statistical toolkit the experiment
// harness uses to report multi-seed results: streaming mean/variance
// accumulation (Welford) and Student-t confidence intervals, with no
// dependencies beyond the standard library.
package stats

import (
	"fmt"
	"math"
)

// Acc accumulates samples streaming-fashion.
type Acc struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one sample.
func (a *Acc) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the sample count.
func (a *Acc) N() int { return a.n }

// Mean returns the sample mean (0 with no samples).
func (a *Acc) Mean() float64 { return a.mean }

// Min returns the smallest sample.
func (a *Acc) Min() float64 { return a.min }

// Max returns the largest sample.
func (a *Acc) Max() float64 { return a.max }

// Var returns the unbiased sample variance (0 for n < 2).
func (a *Acc) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Acc) Std() float64 { return math.Sqrt(a.Var()) }

// SE returns the standard error of the mean.
func (a *Acc) SE() float64 {
	if a.n < 1 {
		return 0
	}
	return a.Std() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of the 95% Student-t confidence interval
// for the mean (0 for n < 2).
func (a *Acc) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return tCrit95(a.n-1) * a.SE()
}

// String formats "mean ±ci95 (n=N)".
func (a *Acc) String() string {
	return fmt.Sprintf("%.4g ±%.2g (n=%d)", a.Mean(), a.CI95(), a.n)
}

// tCrit95 returns the two-sided 95% critical value of Student's t with
// df degrees of freedom. Values for small df are tabulated; beyond the
// table the normal approximation is used (error < 0.3%).
func tCrit95(df int) float64 {
	table := []float64{
		0, // df=0 unused
		12.706, 4.303, 3.182, 2.776, 2.571,
		2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131,
		2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060,
		2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.NaN()
	}
	if df < len(table) {
		return table[df]
	}
	// Interpolate towards the normal quantile 1.960.
	return 1.960 + 2.5/float64(df)
}

// Summary condenses several named accumulators; the harness uses it to
// report a metric per scenario across seeds.
type Summary struct {
	names []string
	accs  map[string]*Acc
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{accs: make(map[string]*Acc)}
}

// Add records a sample for the named metric, creating it on first use.
func (s *Summary) Add(name string, x float64) {
	a, ok := s.accs[name]
	if !ok {
		a = &Acc{}
		s.accs[name] = a
		s.names = append(s.names, name)
	}
	a.Add(x)
}

// Get returns the accumulator for name, or nil.
func (s *Summary) Get(name string) *Acc { return s.accs[name] }

// Names returns the metric names in first-use order.
func (s *Summary) Names() []string { return append([]string(nil), s.names...) }
