package stats

import (
	"math"
	"testing"
)

// TestTCrit95ApproximationBoundary pins the exact-vs-approximation
// boundary of the Student-t critical value: the table ends at df=30, and
// everything beyond uses 1.960 + 2.5/df, documented as accurate to
// 0.3%. The reference values are the true two-sided 95% quantiles
// (Abramowitz & Stegun / R qt(0.975, df) to 4 decimals), so this test
// fails if either the cutoff moves without re-validating the claim or
// the approximation degrades.
func TestTCrit95ApproximationBoundary(t *testing.T) {
	truth := map[int]float64{
		31:   2.0395,
		40:   2.0211,
		50:   2.0086,
		60:   2.0003,
		80:   1.9901,
		100:  1.9840,
		120:  1.9799,
		200:  1.9719,
		500:  1.9647,
		1000: 1.9623,
	}
	for df, want := range truth {
		got := tCrit95(df)
		if relErr := math.Abs(got-want) / want; relErr > 0.003 {
			t.Errorf("tCrit95(%d) = %.5f, true %.5f: error %.3f%% exceeds the documented 0.3%%",
				df, got, want, relErr*100)
		}
	}
}

// TestTCrit95TableValues spot-checks the tabulated small-df region
// against the standard table.
func TestTCrit95TableValues(t *testing.T) {
	truth := map[int]float64{1: 12.706, 2: 4.303, 5: 2.571, 10: 2.228, 20: 2.086, 30: 2.042}
	for df, want := range truth {
		if got := tCrit95(df); got != want {
			t.Errorf("tCrit95(%d) = %v, table says %v", df, got, want)
		}
	}
}

// TestTCrit95ContinuityAndMonotonicity verifies no jump at the
// table-to-approximation handoff and that the critical value decreases
// monotonically toward the normal quantile.
func TestTCrit95ContinuityAndMonotonicity(t *testing.T) {
	if gap := tCrit95(30) - tCrit95(31); gap < 0 || gap > 0.01 {
		t.Errorf("handoff gap tCrit95(30)-tCrit95(31) = %.5f, want a small positive step", gap)
	}
	prev := tCrit95(1)
	for df := 2; df <= 2000; df++ {
		cur := tCrit95(df)
		if cur > prev {
			t.Fatalf("tCrit95 not monotone: df=%d gives %.5f > %.5f at df=%d", df, cur, prev, df-1)
		}
		prev = cur
	}
	if lim := tCrit95(1 << 20); math.Abs(lim-1.960) > 0.002 {
		t.Errorf("large-df limit %.5f, want ~1.960", lim)
	}
}

// TestTCrit95InvalidDF pins the degenerate contract.
func TestTCrit95InvalidDF(t *testing.T) {
	if !math.IsNaN(tCrit95(0)) || !math.IsNaN(tCrit95(-3)) {
		t.Error("non-positive df must return NaN")
	}
}
