//go:build debug

package cc

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Debug-build audit of the CC notification path's packet lifecycle. The
// CNP and ACK frames the manager generates are pool packets with two
// custody handoffs the data path doesn't have — CA control queue in,
// BECN consumption at the far CA before the sink releases — so a
// double-release or retained-pointer bug would live here. Under the
// `debug` tag every Put poisons the packet and a second Put panics, so
// running the complete FECN→CNP/ACK→BECN loop on pooled packets is the
// sweep: any ownership violation aborts the test.

// pooledFlood is throttledFlood acquiring from the network's pool, so
// the debug pool checker sees every data packet's lifetime too.
type pooledFlood struct {
	m           *Manager
	cfg         fabric.Config
	pool        *ib.PacketPool
	src, dst    ib.LID
	nextAllowed sim.Time
	nextID      uint64
}

func (f *pooledFlood) Pull(now sim.Time) (*ib.Packet, sim.Time) {
	if now < f.nextAllowed {
		return nil, f.nextAllowed
	}
	p := f.pool.Get()
	p.ID = f.nextID
	p.Type = ib.DataPacket
	p.Src, p.Dst = f.src, f.dst
	p.PayloadBytes = ib.MTU
	p.MsgID = f.nextID / 2
	p.MsgSeq = uint8(f.nextID % 2)
	p.MsgPackets = 2
	f.nextID++
	ird := f.m.IRD(f.src, f.dst, p.WireBytes())
	f.nextAllowed = now.Add(f.cfg.InjectionRate.TxTime(p.WireBytes()) + ird)
	return p, 0
}

// runPoisonedLoop floods one hotspot through a single crossbar with the
// given parameters and verifies, besides the loop activity itself, that
// the pool's books balance after the run: every acquired packet is
// either still in fabric custody or was released exactly once by a sink.
func runPoisonedLoop(t *testing.T, params Params) Stats {
	t.Helper()
	tp, _ := topo.SingleSwitch(5)
	tn := buildCC(t, tp, params, nil)
	tn.net.EnableAudit()
	pool := tn.net.PacketPool()
	for s := ib.LID(1); s <= 4; s++ {
		tn.net.HCA(s).SetSource(&pooledFlood{
			m: tn.m, cfg: tn.net.Config(), pool: pool, src: s, dst: 0,
		})
	}
	tn.net.Start()
	tn.net.Sim().RunUntil(sim.Time(0).Add(2 * sim.Millisecond))

	if live, held := pool.Live(), tn.net.HeldPackets(); live != held {
		t.Errorf("pool live %d != fabric held %d after run (%v)", live, held, tn.net.Census())
	}
	var rx uint64
	for lid := 0; lid < tn.net.NumHosts(); lid++ {
		rx += tn.net.HCA(ib.LID(lid)).Counters().RxPackets
	}
	if puts := pool.Stats().Puts; puts != rx {
		t.Errorf("pool puts %d != sink deliveries %d", puts, rx)
	}
	return tn.m.Stats()
}

// TestDebugCNPPathNoDoubleRelease drives the default (immediate CNP)
// notification loop under pool poisoning: FECN-marked data packets at
// the hotspot, CNP frames carrying the BECN back, source CAs consuming
// them.
func TestDebugCNPPathNoDoubleRelease(t *testing.T) {
	st := runPoisonedLoop(t, PaperParams())
	if st.CNPSent == 0 || st.BECNReceived == 0 {
		t.Fatalf("CNP loop never exercised: %+v", st)
	}
}

// TestDebugBECNOnACKPathNoDoubleRelease drives the piggybacked variant:
// every completed message is acknowledged, marked messages carry the
// BECN on the ACK frame.
func TestDebugBECNOnACKPathNoDoubleRelease(t *testing.T) {
	p := PaperParams()
	p.BECNOnACK = true
	st := runPoisonedLoop(t, p)
	if st.ACKSent == 0 {
		t.Fatal("no ACK frames generated in BECNOnACK mode")
	}
	if st.BECNReceived == 0 {
		t.Fatalf("no BECN returned on ACKs: %+v", st)
	}
}
