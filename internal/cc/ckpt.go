package cc

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/ib"
	"repro/internal/sim"
)

// Checkpointable is the optional backend extension the checkpoint layer
// uses: a backend that holds mutable state or schedules its own events
// exports both here. Stateless backends (nocc, oracle — immutable share
// tables, no timers) simply do not implement it and need nothing saved.
type Checkpointable interface {
	// ExportState returns the backend's mutable state as a
	// package-owned JSON blob.
	ExportState() ([]byte, error)
	// RestoreState overlays an exported blob onto a freshly built
	// backend of the same scenario.
	RestoreState([]byte) error
	// EncodeAction maps a pending event action owned by this backend to
	// a checkpoint record; ok is false for foreign actions.
	EncodeAction(a sim.Action) (rec ckpt.EventRecord, ok bool)
	// DecodeAction rebuilds an action from a record of this backend's
	// kind; attach re-links any held event handle (the CA timer slots).
	DecodeAction(rec ckpt.EventRecord) (act sim.Action, attach func(*sim.Event), ok bool, err error)
}

// Checkpoint action kinds.
const (
	kindCCTick  = "ccTick"
	kindRCMTick = "rcmTick"
)

// mgrFlowState is one throttled flow in the manager's export. Key is
// the CA table key (destination LID, or -1 at SL level).
type mgrFlowState struct {
	Key  int    `json:"key"`
	CCTI uint16 `json:"ccti"`
}

type mgrCAState struct {
	Flows []mgrFlowState `json:"flows,omitempty"`
	// FECNPending lists remote sources with a FECN remembered for the
	// in-progress message (BECNOnACK mode).
	FECNPending []int `json:"fecn_pending,omitempty"`
}

type mgrState struct {
	CAs   []mgrCAState `json:"cas"`
	Mark  [][]uint16   `json:"mark"`
	Stats Stats        `json:"stats"`
}

// ExportState implements Checkpointable for the classic IB CCA manager.
// Maps are emitted sorted so the blob is deterministic for a given
// state (restore does not depend on the order).
func (m *Manager) ExportState() ([]byte, error) {
	st := mgrState{CAs: make([]mgrCAState, len(m.ca)), Mark: m.mark, Stats: m.stats}
	for i := range m.ca {
		ca := &m.ca[i]
		cs := &st.CAs[i]
		for key, fl := range ca.flows {
			cs.Flows = append(cs.Flows, mgrFlowState{Key: int(key), CCTI: fl.ccti})
		}
		sort.Slice(cs.Flows, func(a, b int) bool { return cs.Flows[a].Key < cs.Flows[b].Key })
		for src, pend := range ca.fecnPending {
			if pend {
				cs.FECNPending = append(cs.FECNPending, int(src))
			}
		}
		sort.Ints(cs.FECNPending)
	}
	return json.Marshal(&st)
}

// RestoreState implements Checkpointable.
func (m *Manager) RestoreState(blob []byte) error {
	var st mgrState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("cc: decoding manager state: %w", err)
	}
	if len(st.CAs) != len(m.ca) || len(st.Mark) != len(m.mark) {
		return fmt.Errorf("cc: manager state shape %d CAs/%d switches, want %d/%d",
			len(st.CAs), len(st.Mark), len(m.ca), len(m.mark))
	}
	for i := range m.mark {
		if len(st.Mark[i]) != len(m.mark[i]) {
			return fmt.Errorf("cc: manager mark table %d length %d, want %d", i, len(st.Mark[i]), len(m.mark[i]))
		}
		copy(m.mark[i], st.Mark[i])
	}
	for i := range m.ca {
		ca := &m.ca[i]
		ca.flows = make(map[ib.LID]*caFlow, len(st.CAs[i].Flows))
		for _, fs := range st.CAs[i].Flows {
			ca.flows[ib.LID(fs.Key)] = &caFlow{ccti: fs.CCTI}
		}
		ca.fecnPending = nil
		if pend := st.CAs[i].FECNPending; len(pend) > 0 {
			ca.fecnPending = make(map[ib.LID]bool, len(pend))
			for _, src := range pend {
				ca.fecnPending[ib.LID(src)] = true
			}
		}
		ca.timer = nil // re-linked by the tick event's decode, if pending
	}
	m.stats = st.Stats
	return nil
}

// EncodeAction implements Checkpointable (kind ccTick, A0 = CA LID).
func (m *Manager) EncodeAction(a sim.Action) (ckpt.EventRecord, bool) {
	if t, ok := a.(*caTickAct); ok && t.m == m {
		return ckpt.EventRecord{Kind: kindCCTick, A0: int64(t.src)}, true
	}
	return ckpt.EventRecord{}, false
}

// DecodeAction implements Checkpointable.
func (m *Manager) DecodeAction(rec ckpt.EventRecord) (sim.Action, func(*sim.Event), bool, error) {
	if rec.Kind != kindCCTick {
		return nil, nil, false, nil
	}
	if rec.A0 < 0 || int(rec.A0) >= len(m.ca) {
		return nil, nil, true, fmt.Errorf("cc: checkpoint references CA %d of %d", rec.A0, len(m.ca))
	}
	ca := &m.ca[rec.A0]
	if ca.tick == nil {
		ca.tick = &caTickAct{m: m, src: ib.LID(rec.A0)}
	}
	return ca.tick, func(e *sim.Event) { ca.timer = e }, true, nil
}

var _ Checkpointable = (*Manager)(nil)

// rcmFlowState is one rate-limited flow in the RCM export.
type rcmFlowState struct {
	Dst   int      `json:"dst"`
	RC    sim.Rate `json:"rc"`
	RT    sim.Rate `json:"rt"`
	Alpha float64  `json:"alpha"`
	Ticks int      `json:"ticks"`
}

type rcmCAState struct {
	Flows []rcmFlowState `json:"flows,omitempty"`
}

type rcmState struct {
	CAs   []rcmCAState `json:"cas"`
	Acc   [][]float64  `json:"acc"`
	Stats Stats        `json:"stats"`
}

// ExportState implements Checkpointable for the DCQCN-style backend.
func (r *RCM) ExportState() ([]byte, error) {
	st := rcmState{CAs: make([]rcmCAState, len(r.ca)), Acc: r.acc, Stats: r.stats}
	for i := range r.ca {
		cs := &st.CAs[i]
		for dst, fl := range r.ca[i].flows {
			cs.Flows = append(cs.Flows, rcmFlowState{
				Dst: int(dst), RC: fl.rc, RT: fl.rt, Alpha: fl.alpha, Ticks: fl.ticks,
			})
		}
		sort.Slice(cs.Flows, func(a, b int) bool { return cs.Flows[a].Dst < cs.Flows[b].Dst })
	}
	return json.Marshal(&st)
}

// RestoreState implements Checkpointable.
func (r *RCM) RestoreState(blob []byte) error {
	var st rcmState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("cc: decoding rcm state: %w", err)
	}
	if len(st.CAs) != len(r.ca) || len(st.Acc) != len(r.acc) {
		return fmt.Errorf("cc: rcm state shape %d CAs/%d switches, want %d/%d",
			len(st.CAs), len(st.Acc), len(r.ca), len(r.acc))
	}
	for i := range r.acc {
		if len(st.Acc[i]) != len(r.acc[i]) {
			return fmt.Errorf("cc: rcm accumulator table %d length %d, want %d", i, len(st.Acc[i]), len(r.acc[i]))
		}
		copy(r.acc[i], st.Acc[i])
	}
	for i := range r.ca {
		ca := &r.ca[i]
		ca.flows = make(map[ib.LID]*rcmFlow, len(st.CAs[i].Flows))
		for _, fs := range st.CAs[i].Flows {
			ca.flows[ib.LID(fs.Dst)] = &rcmFlow{rc: fs.RC, rt: fs.RT, alpha: fs.Alpha, ticks: fs.Ticks}
		}
		ca.timer = nil
	}
	r.stats = st.Stats
	return nil
}

// EncodeAction implements Checkpointable (kind rcmTick, A0 = CA LID).
func (r *RCM) EncodeAction(a sim.Action) (ckpt.EventRecord, bool) {
	if t, ok := a.(*rcmTickAct); ok && t.r == r {
		return ckpt.EventRecord{Kind: kindRCMTick, A0: int64(t.src)}, true
	}
	return ckpt.EventRecord{}, false
}

// DecodeAction implements Checkpointable.
func (r *RCM) DecodeAction(rec ckpt.EventRecord) (sim.Action, func(*sim.Event), bool, error) {
	if rec.Kind != kindRCMTick {
		return nil, nil, false, nil
	}
	if rec.A0 < 0 || int(rec.A0) >= len(r.ca) {
		return nil, nil, true, fmt.Errorf("cc: checkpoint references rcm CA %d of %d", rec.A0, len(r.ca))
	}
	ca := &r.ca[rec.A0]
	if ca.tick == nil {
		ca.tick = &rcmTickAct{r: r, src: ib.LID(rec.A0)}
	}
	return ca.tick, func(e *sim.Event) { ca.timer = e }, true, nil
}

var _ Checkpointable = (*RCM)(nil)
