package cc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPaperParamsMatchTableI(t *testing.T) {
	p := PaperParams()
	if p.CCTIIncrease != 1 || p.CCTILimit != 127 || p.CCTIMin != 0 ||
		p.CCTITimer != 150 || p.Threshold != 15 || p.MarkingRate != 0 ||
		p.PacketSize != 0 {
		t.Fatalf("PaperParams = %+v does not match Table I", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.VictimMaskHostPorts {
		t.Fatal("victim mask must default on for HCA-facing ports")
	}
}

func TestLinearCCT(t *testing.T) {
	cct := LinearCCT(128)
	if len(cct) != 128 {
		t.Fatalf("len = %d", len(cct))
	}
	for i, v := range cct {
		if int(v) != i {
			t.Fatalf("CCT[%d] = %d", i, v)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.CCT = nil },
		func(p *Params) { p.CCT = []uint16{5} },
		func(p *Params) { p.CCTILimit = uint16(len(p.CCT)) },
		func(p *Params) { p.CCTIMin = p.CCTILimit + 1 },
		func(p *Params) { p.Threshold = 16 },
		func(p *Params) { p.RootMinCreditBytes = -1 },
		func(p *Params) { p.PacketSize = -1 },
	}
	for i, mut := range bad {
		p := PaperParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestThresholdBytesMapping(t *testing.T) {
	const capacity = 16000
	p := PaperParams()
	p.ThresholdRefMultiple = 1
	p.Threshold = 0
	if got := p.ThresholdBytes(capacity); got != -1 {
		t.Fatalf("weight 0: %d", got)
	}
	p.Threshold = 1
	if got := p.ThresholdBytes(capacity); got != 15000 {
		t.Fatalf("weight 1 (highest threshold): %d", got)
	}
	p.Threshold = 15
	if got := p.ThresholdBytes(capacity); got != 1000 {
		t.Fatalf("weight 15 (lowest threshold): %d", got)
	}
	// Uniformly decreasing in the weight, per the spec.
	prev := capacity + 1
	for w := uint8(1); w <= 15; w++ {
		p.Threshold = w
		got := p.ThresholdBytes(capacity)
		if got >= prev {
			t.Fatalf("threshold not decreasing at weight %d", w)
		}
		prev = got
	}
	// The reference multiple scales the whole mapping.
	p.Threshold = 15
	p.ThresholdRefMultiple = 4
	if got := p.ThresholdBytes(capacity); got != 4000 {
		t.Fatalf("weight 15, multiple 4: %d", got)
	}
	// A zero multiple (unset) behaves as 1.
	p.ThresholdRefMultiple = 0
	if got := p.ThresholdBytes(capacity); got != 1000 {
		t.Fatalf("unset multiple: %d", got)
	}
}

func TestThresholdBytesProperty(t *testing.T) {
	f := func(w uint8, capRaw uint16, multRaw uint8) bool {
		p := PaperParams()
		p.Threshold = w % 16
		p.ThresholdRefMultiple = int(multRaw%8) + 1
		capacity := int(capRaw) + 16
		got := p.ThresholdBytes(capacity)
		if p.Threshold == 0 {
			return got == -1
		}
		return got >= 0 && got <= capacity*p.ThresholdRefMultiple
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParamsString(t *testing.T) {
	s := PaperParams().String()
	for _, want := range []string{"thr=15", "lim=127", "timer=150"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
