package cc

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/topo"
)

// throttledFlood floods a destination while honouring the manager's
// injection rate delay — a miniature of what internal/traffic does.
type throttledFlood struct {
	m           *Manager
	cfg         fabric.Config
	src, dst    ib.LID
	payload     int
	nextAllowed sim.Time
	nextID      uint64
}

func (f *throttledFlood) Pull(now sim.Time) (*ib.Packet, sim.Time) {
	if now < f.nextAllowed {
		return nil, f.nextAllowed
	}
	payload := f.payload
	if payload == 0 {
		payload = ib.MTU
	}
	p := &ib.Packet{
		ID: f.nextID, Type: ib.DataPacket,
		Src: f.src, Dst: f.dst, PayloadBytes: payload,
		MsgID: f.nextID / 2, MsgSeq: uint8(f.nextID % 2), MsgPackets: 2,
	}
	f.nextID++
	ird := f.m.IRD(f.src, f.dst, p.WireBytes())
	f.nextAllowed = now.Add(f.cfg.InjectionRate.TxTime(p.WireBytes()) + ird)
	return p, 0
}

type testNet struct {
	net *fabric.Network
	m   *Manager
}

// buildCC assembles a network with the CC manager installed, optionally
// wrapping the departure hook to observe marking per switch.
func buildCC(t *testing.T, tp *topo.Topology, params Params, markBySwitch map[int]int) *testNet {
	t.Helper()
	r, err := topo.ComputeLFT(tp)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fabric.DefaultConfig()
	cfg.Check = true
	n, err := fabric.New(sim.New(), tp, r, cfg, fabric.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(n, params)
	if err != nil {
		t.Fatal(err)
	}
	hooks := m.Hooks()
	if markBySwitch != nil && hooks.SwitchEnqueue != nil {
		inner := hooks.SwitchEnqueue
		hooks.SwitchEnqueue = func(sw, out int, p *ib.Packet, st fabric.PortVLState) {
			before := p.FECN
			inner(sw, out, p, st)
			if !before && p.FECN {
				markBySwitch[sw]++
			}
		}
	}
	n.SetHooks(hooks)
	return &testNet{net: n, m: m}
}

func (tn *testNet) flood(src, dst ib.LID) {
	tn.net.HCA(src).SetSource(&throttledFlood{
		m: tn.m, cfg: tn.net.Config(), src: src, dst: dst,
	})
}

func TestNewRejectsBadParams(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	r, _ := topo.ComputeLFT(tp)
	n, _ := fabric.New(sim.New(), tp, r, fabric.DefaultConfig(), fabric.Hooks{})
	p := PaperParams()
	p.CCT = nil
	if _, err := New(n, p); err == nil {
		t.Fatal("expected error")
	}
}

func TestHotspotTriggersFullCCLoop(t *testing.T) {
	// Four senders overload one receiver behind a single crossbar: the
	// host-facing output port crosses the threshold (Victim Mask set),
	// FECNs flow to the hotspot, CNPs return, CCTIs rise.
	tp, _ := topo.SingleSwitch(5)
	tn := buildCC(t, tp, PaperParams(), nil)
	for s := ib.LID(1); s <= 4; s++ {
		tn.flood(s, 0)
	}
	tn.net.Start()
	tn.net.Sim().RunUntil(sim.Time(0).Add(2 * sim.Millisecond))

	st := tn.m.Stats()
	if st.FECNMarked == 0 {
		t.Fatal("no FECN marks under clear congestion")
	}
	if st.CNPSent == 0 || st.BECNReceived == 0 {
		t.Fatalf("notification loop broken: %+v", st)
	}
	if st.MaxCCTI == 0 {
		t.Fatal("no flow was ever throttled")
	}
	// Each sender should hold congestion state for its flow to host 0.
	for s := ib.LID(1); s <= 4; s++ {
		if tn.m.CCTI(s, 0) == 0 && tn.m.ThrottledFlows(s) == 0 {
			t.Errorf("sender %d never throttled", s)
		}
	}
	// Equilibrium check: four contributors into a 13.6G sink need each
	// to run at ~3.4G ≈ 1/6 of line rate, i.e. CCTI around 5 with the
	// linear CCT. Allow a broad band; collapse or runaway would leave it
	// at 0 or 127.
	if st.MaxCCTI > 40 {
		t.Errorf("MaxCCTI = %d: throttling overshoot", st.MaxCCTI)
	}
}

func TestCCRemovesHOLBlockingFatTree(t *testing.T) {
	// Congestion spreading on the fat-tree: three contributors on
	// distinct leaves flood host 6. All of them route via the same
	// spine, whose input buffers fill with hotspot-bound packets; an
	// innocent victim (host 1 on leaf 0 sending to host 4 via that
	// spine) is HOL-blocked behind them. With the paper's parameters
	// the contributors throttle, the tree is pruned, and the victim
	// must recover near-full rate. This is the paper's core claim in
	// miniature.
	run := func(ccOn bool) (victim, hot float64, m *Manager) {
		tp, _ := topo.FatTree(4) // 8 hosts, 2 per leaf
		params := PaperParams()
		// Three contributors per hotspot: size the CCT accordingly, as
		// the paper sizes its CCT to the contributor count.
		params.CCTILimit = 7
		if !ccOn {
			params.Threshold = 0 // detection disabled = CC off
		}
		tn := buildCC(t, tp, params, nil)
		for _, s := range []ib.LID{0, 2, 4} {
			tn.flood(s, 6)
		}
		tn.flood(1, 4) // victim: leaf0 -> spine0 -> leaf2
		tn.net.Start()
		// Measure after a warmup that covers the initial transient.
		warmup, window := 2*sim.Millisecond, 6*sim.Millisecond
		tn.net.Sim().RunUntil(sim.Time(0).Add(warmup))
		v0 := tn.net.HCA(4).Counters().RxDataPayload
		h0 := tn.net.HCA(6).Counters().RxBytes
		tn.net.Sim().RunUntil(sim.Time(0).Add(warmup + window))
		victim = float64(tn.net.HCA(4).Counters().RxDataPayload-v0) * 8 / window.Seconds()
		hot = float64(tn.net.HCA(6).Counters().RxBytes-h0) * 8 / window.Seconds()
		return victim, hot, tn.m
	}

	vOff, hotOff, _ := run(false)
	vOn, hotOn, m := run(true)
	if vOff > 8e9 {
		t.Fatalf("victim rate %.4g without CC — scenario creates no HOL blocking", vOff)
	}
	if vOn < 11e9 {
		t.Errorf("victim rate %.4g with CC on; HOL blocking not removed (off: %.4g)", vOn, vOff)
	}
	if vOn < 2*vOff {
		t.Errorf("CC improved victim only %.4g -> %.4g", vOff, vOn)
	}
	// The bottleneck may pay a small price but must stay well utilized.
	if hotOn < 0.75*hotOff {
		t.Errorf("hotspot rate %.4g with CC vs %.4g without: bottleneck starved", hotOn, hotOff)
	}
	// The victim's flow must never have been throttled.
	if got := m.CCTI(1, 4); got != 0 {
		t.Errorf("victim flow CCTI = %d, want 0", got)
	}
}

func TestRootVictimClassification(t *testing.T) {
	// Direct unit tests of the Port VL state machine using synthetic
	// departure states.
	tp, _ := topo.SingleSwitch(2)
	tn := buildCC(t, tp, PaperParams(), nil)
	capacity := tn.net.Config().SwitchIbufBytes
	pkt := func() *ib.Packet {
		return &ib.Packet{Type: ib.DataPacket, Src: 0, Dst: 1, PayloadBytes: ib.MTU}
	}
	mark := func(st fabric.PortVLState) bool {
		p := pkt()
		tn.m.OnSwitchDeparture(0, 0, p, st)
		return p.FECN
	}
	pp := PaperParams()
	thr := pp.ThresholdBytes(capacity)

	// Below threshold: never mark.
	if mark(fabric.PortVLState{QueuedBytes: thr - 1, CreditBytes: capacity, CapacityBytes: capacity, HostPort: true}) {
		t.Error("marked below threshold")
	}
	// Above threshold, credits available: root, marks.
	if !mark(fabric.PortVLState{QueuedBytes: thr + 1, CreditBytes: capacity, CapacityBytes: capacity}) {
		t.Error("root with credits did not mark")
	}
	// Above threshold, starved, inner port: victim, must not mark.
	if mark(fabric.PortVLState{QueuedBytes: thr + 1, CreditBytes: 0, CapacityBytes: capacity}) {
		t.Error("victim port marked")
	}
	// Above threshold, starved, host port: Victim Mask applies, marks.
	if !mark(fabric.PortVLState{QueuedBytes: thr + 1, CreditBytes: 0, CapacityBytes: capacity, HostPort: true}) {
		t.Error("victim-masked host port did not mark")
	}
	// Victim Mask disabled: starved host port must not mark.
	p2 := PaperParams()
	p2.VictimMaskHostPorts = false
	tn2 := buildCC(t, tp, p2, nil)
	probe := pkt()
	tn2.m.OnSwitchDeparture(0, 0, probe, fabric.PortVLState{
		QueuedBytes: thr + 1, CreditBytes: 0, CapacityBytes: capacity, HostPort: true})
	if probe.FECN {
		t.Error("host port marked with Victim Mask off")
	}
}

func TestMarkingRateSpacing(t *testing.T) {
	p := PaperParams()
	p.MarkingRate = 3 // mark every 4th eligible packet
	tp, _ := topo.SingleSwitch(5)
	tn := buildCC(t, tp, p, nil)
	for s := ib.LID(1); s <= 4; s++ {
		tn.flood(s, 0)
	}
	tn.net.Start()
	tn.net.Sim().RunUntil(sim.Time(0).Add(2 * sim.Millisecond))
	marked := tn.m.Stats().FECNMarked
	delivered := tn.net.HCA(0).Counters().RxPackets
	if marked == 0 {
		t.Fatal("no marks")
	}
	ratio := float64(delivered) / float64(marked)
	// Not all departures happen while congested, so the observed ratio
	// is at least 4; it must not drop below the configured spacing.
	if ratio < 3.9 {
		t.Fatalf("marking ratio %.2f below configured spacing 4", ratio)
	}
}

func TestPacketSizeEligibility(t *testing.T) {
	p := PaperParams()
	p.PacketSize = 1024
	tp, _ := topo.SingleSwitch(5)
	tn := buildCC(t, tp, p, nil)
	for s := ib.LID(1); s <= 4; s++ {
		src := &throttledFlood{m: tn.m, cfg: tn.net.Config(), src: s, dst: 0, payload: 512}
		tn.net.HCA(s).SetSource(src)
	}
	tn.net.Start()
	tn.net.Sim().RunUntil(sim.Time(0).Add(1 * sim.Millisecond))
	if got := tn.m.Stats().FECNMarked; got != 0 {
		t.Fatalf("%d sub-threshold packets marked", got)
	}
}

func TestThresholdZeroNeverMarks(t *testing.T) {
	p := PaperParams()
	p.Threshold = 0
	tp, _ := topo.SingleSwitch(5)
	tn := buildCC(t, tp, p, nil)
	for s := ib.LID(1); s <= 4; s++ {
		tn.flood(s, 0)
	}
	tn.net.Start()
	tn.net.Sim().RunUntil(sim.Time(0).Add(1 * sim.Millisecond))
	if got := tn.m.Stats().FECNMarked; got != 0 {
		t.Fatalf("threshold 0 marked %d packets", got)
	}
}

func TestCCTILimitRespected(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	tn := buildCC(t, tp, PaperParams(), nil)
	// Inject synthetic BECNs directly at the source CA.
	for i := 0; i < 500; i++ {
		tn.m.OnDeliver(0, &ib.Packet{Type: ib.CNPPacket, BECN: true, Src: 1, Dst: 0})
	}
	if got := tn.m.CCTI(0, 1); got != 127 {
		t.Fatalf("CCTI = %d, want clamped at 127", got)
	}
	if tn.m.Stats().BECNReceived != 500 {
		t.Fatal("BECN counter wrong")
	}
}

func TestCCTIIncreaseStep(t *testing.T) {
	p := PaperParams()
	p.CCTIIncrease = 5
	p.CCTITimer = 0 // freeze recovery for exactness
	tp, _ := topo.SingleSwitch(2)
	tn := buildCC(t, tp, p, nil)
	for i := 0; i < 3; i++ {
		tn.m.OnDeliver(0, &ib.Packet{Type: ib.CNPPacket, BECN: true, Src: 1, Dst: 0})
	}
	if got := tn.m.CCTI(0, 1); got != 15 {
		t.Fatalf("CCTI = %d, want 15", got)
	}
}

func TestCCTITimerDecay(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	tn := buildCC(t, tp, PaperParams(), nil)
	simr := tn.net.Sim()
	for i := 0; i < 10; i++ {
		tn.m.OnDeliver(0, &ib.Packet{Type: ib.CNPPacket, BECN: true, Src: 1, Dst: 0})
	}
	if got := tn.m.CCTI(0, 1); got != 10 {
		t.Fatalf("CCTI = %d after 10 BECNs", got)
	}
	period := sim.Duration(150) * TimerUnit // 153.6 µs
	// The timer is free-running with a per-CA phase, so after 5.5
	// periods the flow has seen 5 or 6 decrements.
	simr.RunUntil(sim.Time(0).Add(5*period + period/2))
	if got := tn.m.CCTI(0, 1); got < 4 || got > 5 {
		t.Fatalf("CCTI = %d after 5.5 timer periods, want 4..5", got)
	}
	// After enough periods the flow fully recovers and leaves the table.
	simr.RunUntil(sim.Time(0).Add(20 * period))
	if got := tn.m.CCTI(0, 1); got != 0 {
		t.Fatalf("CCTI = %d, want fully recovered", got)
	}
	if tn.m.ThrottledFlows(0) != 0 {
		t.Fatal("recovered flow still in table")
	}
	if tn.m.Stats().TimerDecrements != 10 {
		t.Fatalf("decrements = %d", tn.m.Stats().TimerDecrements)
	}
}

func TestTimerDisabled(t *testing.T) {
	p := PaperParams()
	p.CCTITimer = 0
	tp, _ := topo.SingleSwitch(2)
	tn := buildCC(t, tp, p, nil)
	tn.m.OnDeliver(0, &ib.Packet{Type: ib.CNPPacket, BECN: true, Src: 1, Dst: 0})
	tn.net.Sim().RunUntil(sim.Time(0).Add(10 * sim.Millisecond))
	if got := tn.m.CCTI(0, 1); got != 1 {
		t.Fatalf("CCTI = %d, want frozen at 1", got)
	}
}

func TestIRDValues(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	tn := buildCC(t, tp, PaperParams(), nil)
	wire := ib.MTU + ib.HeaderBytes
	if got := tn.m.IRD(0, 1, wire); got != 0 {
		t.Fatalf("unthrottled IRD = %v", got)
	}
	for i := 0; i < 4; i++ {
		tn.m.OnDeliver(0, &ib.Packet{Type: ib.CNPPacket, BECN: true, Src: 1, Dst: 0})
	}
	want := sim.Duration(4) * tn.net.Config().LinkRate.TxTime(wire)
	if got := tn.m.IRD(0, 1, wire); got != want {
		t.Fatalf("IRD = %v, want %v (4 packet times)", got, want)
	}
	// Monotone in CCTI.
	prev := sim.Duration(0)
	for i := 0; i < 100; i++ {
		tn.m.OnDeliver(0, &ib.Packet{Type: ib.CNPPacket, BECN: true, Src: 1, Dst: 0})
		cur := tn.m.IRD(0, 1, wire)
		if cur < prev {
			t.Fatalf("IRD decreased at step %d", i)
		}
		prev = cur
	}
}

func TestBECNOnACKMode(t *testing.T) {
	p := PaperParams()
	p.BECNOnACK = true
	tp, _ := topo.SingleSwitch(5)
	tn := buildCC(t, tp, p, nil)
	for s := ib.LID(1); s <= 4; s++ {
		tn.flood(s, 0)
	}
	tn.net.Start()
	tn.net.Sim().RunUntil(sim.Time(0).Add(2 * sim.Millisecond))

	st := tn.m.Stats()
	if st.CNPSent != 0 {
		t.Fatalf("ACK mode sent %d CNPs", st.CNPSent)
	}
	if st.ACKSent == 0 || st.BECNReceived == 0 || st.MaxCCTI == 0 {
		t.Fatalf("ACK notification loop broken: %+v", st)
	}
	// Every completed message is acknowledged exactly once.
	delivered := tn.net.HCA(0).Counters().RxDataPayload / uint64(ib.MessageBytes)
	if st.ACKSent < delivered-1 || st.ACKSent > delivered+1 {
		t.Fatalf("acks = %d for %d delivered messages", st.ACKSent, delivered)
	}
	// The senders received those acknowledgements.
	var acks uint64
	for s := ib.LID(1); s <= 4; s++ {
		acks += tn.net.HCA(s).Counters().RxAck
	}
	if acks == 0 {
		t.Fatal("no ACKs delivered to sources")
	}
	// Coalescing: BECNs cannot exceed one per message.
	if st.BECNReceived > st.ACKSent {
		t.Fatalf("BECNs %d exceed ACKs %d", st.BECNReceived, st.ACKSent)
	}
	// The loop must still resolve congestion comparably to CNP mode.
	for s := ib.LID(1); s <= 4; s++ {
		if tn.m.CCTI(s, 0) == 0 && tn.m.ThrottledFlows(s) == 0 {
			t.Errorf("sender %d never throttled in ACK mode", s)
		}
	}
}

func TestSLLevelSharesThrottleState(t *testing.T) {
	p := PaperParams()
	p.SLLevel = true
	tp, _ := topo.SingleSwitch(4)
	tn := buildCC(t, tp, p, nil)
	// BECNs for the flow to host 1 ...
	for i := 0; i < 10; i++ {
		tn.m.OnDeliver(0, &ib.Packet{Type: ib.CNPPacket, BECN: true, Src: 1, Dst: 0})
	}
	// ... raise the CCTI seen by every destination of host 0.
	if got := tn.m.CCTI(0, 1); got != 10 {
		t.Fatalf("CCTI(0,1) = %d", got)
	}
	if got := tn.m.CCTI(0, 2); got != 10 {
		t.Fatalf("CCTI(0,2) = %d: SL-level state not shared", got)
	}
	wire := ib.MTU + ib.HeaderBytes
	if tn.m.IRD(0, 2, wire) == 0 {
		t.Fatal("unrelated flow not throttled at SL level")
	}
	// Other hosts are unaffected.
	if got := tn.m.CCTI(2, 1); got != 0 {
		t.Fatalf("CCTI(2,1) = %d", got)
	}
	// At QP level the same BECNs leave other destinations alone.
	q := PaperParams()
	tn2 := buildCC(t, tp, q, nil)
	tn2.m.OnDeliver(0, &ib.Packet{Type: ib.CNPPacket, BECN: true, Src: 1, Dst: 0})
	if got := tn2.m.CCTI(0, 2); got != 0 {
		t.Fatalf("QP-level leaked state: CCTI(0,2) = %d", got)
	}
}

func TestDegradedFatTreeInnerRootCongestion(t *testing.T) {
	// Kill two of three spines: uniform all-to-all traffic then
	// oversubscribes the surviving uplinks — congestion whose roots
	// are inner switch ports, not endpoints (the intro's re-routing
	// scenario). CC must detect it via the root-credit test (the
	// Victim Mask does not apply to switch-to-switch ports) and help.
	run := func(ccOn bool) (total float64, marks uint64) {
		tp, err := topo.FatTreeDegraded(6, topo.DeadSpines(0, 1))
		if err != nil {
			t.Fatal(err)
		}
		r, err := topo.ComputeLFT(tp)
		if err != nil {
			t.Fatal(err)
		}
		cfg := fabric.DefaultConfig()
		cfg.Check = true
		n, err := fabric.New(sim.New(), tp, r, cfg, fabric.Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		params := PaperParams()
		params.CCTILimit = 15
		if !ccOn {
			params.Threshold = 0
		}
		m, err := New(n, params)
		if err != nil {
			t.Fatal(err)
		}
		n.SetHooks(m.Hooks())
		// Every host floods the host "opposite" it on another leaf.
		nh := tp.NumHosts
		for s := 0; s < nh; s++ {
			dst := ib.LID((s + nh/2) % nh)
			src := &throttledFlood{m: m, cfg: cfg, src: ib.LID(s), dst: dst}
			n.HCA(ib.LID(s)).SetSource(src)
		}
		n.Start()
		window := 4 * sim.Millisecond
		n.Sim().RunUntil(sim.Time(0).Add(window))
		var delivered uint64
		for s := 0; s < nh; s++ {
			delivered += n.HCA(ib.LID(s)).Counters().RxDataPayload
		}
		return float64(delivered) * 8 / window.Seconds() / 1e9, m.Stats().FECNMarked
	}
	totalOff, _ := run(false)
	totalOn, marks := run(true)
	if marks == 0 {
		t.Fatal("no inner-root marking under rerouting congestion")
	}
	// This scenario is purely fabric-limited: there are no victim
	// flows to rescue, so throttling cannot help and costs throughput
	// relative to plain backpressure — the "can congestion control be
	// harmful" concern the paper's conclusion raises, answered
	// positively here for a case outside the paper's scope (see
	// EXPERIMENTS.md). The assertions pin that the effect exists but
	// stays bounded.
	if totalOn > totalOff {
		t.Fatalf("unexpected: CC beat backpressure on a bisection-limited fabric (%.1f vs %.1f)",
			totalOn, totalOff)
	}
	if totalOn < 0.35*totalOff {
		t.Fatalf("CC collapsed degraded fabric beyond the documented effect: %.1f vs %.1f Gbps",
			totalOn, totalOff)
	}
}

func TestCCDeterminism(t *testing.T) {
	run := func() Stats {
		tp, _ := topo.LinearChain(2, 5)
		tn := buildCC(t, tp, PaperParams(), nil)
		for s := ib.LID(0); s < 4; s++ {
			tn.flood(s, 5)
		}
		tn.flood(4, 6)
		tn.net.Start()
		tn.net.Sim().RunUntil(sim.Time(0).Add(1 * sim.Millisecond))
		return tn.m.Stats()
	}
	if run() != run() {
		t.Fatal("CC runs diverged")
	}
}

func TestMarkingCounterPerPortVL(t *testing.T) {
	// The marking-rate counter is maintained per (port, VL): spacing on
	// one output must not consume the budget of another.
	p := PaperParams()
	p.MarkingRate = 1 // mark every 2nd eligible packet
	tp, _ := topo.SingleSwitch(3)
	tn := buildCC(t, tp, p, nil)
	capacity := tn.net.Config().SwitchIbufBytes
	pp := PaperParams()
	st := fabric.PortVLState{
		QueuedBytes:   pp.ThresholdBytes(capacity) + 1,
		CreditBytes:   capacity,
		CapacityBytes: capacity,
	}
	mark := func(out int) bool {
		pkt := &ib.Packet{Type: ib.DataPacket, Src: 0, Dst: 1, PayloadBytes: ib.MTU}
		tn.m.OnSwitchEnqueue(0, out, pkt, st)
		return pkt.FECN
	}
	// Port 0: skip, mark, skip, mark...
	if mark(0) {
		t.Fatal("first eligible packet marked with rate 1")
	}
	if !mark(0) {
		t.Fatal("second eligible packet not marked")
	}
	// Port 1 has its own counter, unaffected by port 0's state.
	if mark(1) {
		t.Fatal("port 1 counter contaminated by port 0")
	}
	if !mark(1) {
		t.Fatal("port 1 spacing broken")
	}
}

func TestCCWithStoreAndForwardFabric(t *testing.T) {
	// The CC loop is timing-sensitive; it must still converge when the
	// fabric uses store-and-forward switching.
	tp, _ := topo.SingleSwitch(5)
	r, _ := topo.ComputeLFT(tp)
	cfg := fabric.DefaultConfig()
	cfg.Check = true
	cfg.CutThrough = false
	n, err := fabric.New(sim.New(), tp, r, cfg, fabric.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(n, PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	n.SetHooks(m.Hooks())
	for s := ib.LID(1); s <= 4; s++ {
		n.HCA(s).SetSource(&throttledFlood{m: m, cfg: cfg, src: s, dst: 0})
	}
	n.Start()
	n.Sim().RunUntil(sim.Time(0).Add(2 * sim.Millisecond))
	if m.Stats().BECNReceived == 0 || m.Stats().MaxCCTI == 0 {
		t.Fatalf("CC loop dead under store-and-forward: %+v", m.Stats())
	}
}

func TestHooksWired(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	tn := buildCC(t, tp, PaperParams(), nil)
	h := tn.m.Hooks()
	if h.SwitchEnqueue == nil || h.Deliver == nil {
		t.Fatal("hooks missing")
	}
	if h.SwitchDeparture != nil {
		t.Fatal("departure hook installed in arrival mode")
	}
	if tn.m.Params().Threshold != 15 {
		t.Fatal("params accessor wrong")
	}
	// Departure sampling swaps the hook points.
	p := PaperParams()
	p.MarkOnDeparture = true
	tp2, _ := topo.SingleSwitch(2)
	tn2 := buildCC(t, tp2, p, nil)
	h = tn2.m.Hooks()
	if h.SwitchDeparture == nil || h.SwitchEnqueue != nil {
		t.Fatal("departure mode hooks wrong")
	}
}
