package cc

import (
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/topo"
)

func backendNet(t *testing.T) *fabric.Network {
	t.Helper()
	tp, _ := topo.SingleSwitch(4)
	r, err := topo.ComputeLFT(tp)
	if err != nil {
		t.Fatal(err)
	}
	n, err := fabric.New(sim.New(), tp, r, fabric.DefaultConfig(), fabric.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	for _, want := range []string{"ibcc", "nocc", "oracle", "rcm"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q: %v", want, names)
		}
		if !Known(want) {
			t.Errorf("Known(%q) = false", want)
		}
	}
	if !Known("") {
		t.Error("empty selector must resolve to the default backend")
	}
	if Known("bogus") {
		t.Error("Known(bogus) = true")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(DefaultBackend, func(*fabric.Network, BackendConfig) (Backend, error) {
		return NoCC{}, nil
	})
}

func TestNewBackendDefaultIsManager(t *testing.T) {
	n := backendNet(t)
	b, err := NewBackend("", n, BackendConfig{Params: PaperParams()})
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != DefaultBackend {
		t.Fatalf("default backend name = %q, want %q", b.Name(), DefaultBackend)
	}
	if _, ok := b.(*Manager); !ok {
		t.Fatalf("default backend is %T, want *Manager", b)
	}
	if b.Throttle() == nil {
		t.Fatal("ibcc backend must expose an injection gate")
	}
}

func TestNewBackendUnknownListsRegistry(t *testing.T) {
	n := backendNet(t)
	_, err := NewBackend("does-not-exist", n, BackendConfig{})
	if err == nil {
		t.Fatal("expected error for unknown backend")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered backend %q", err, name)
		}
	}
}

func TestNoCCBackendIsInert(t *testing.T) {
	n := backendNet(t)
	b, err := NewBackend("nocc", n, BackendConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h := b.Hooks()
	if h.SwitchEnqueue != nil || h.SwitchDeparture != nil || h.Deliver != nil || h.SelectVL != nil {
		t.Error("nocc installs fabric hooks")
	}
	if b.Throttle() != nil {
		t.Error("nocc gates injection")
	}
	if b.Stats() != (Stats{}) {
		t.Errorf("nocc stats = %+v, want zero", b.Stats())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Errorf("nocc invariants: %v", err)
	}
	if flows, mean := b.ThrottleSummary(); flows != 0 || mean != 0 {
		t.Errorf("nocc throttle summary = (%d, %v)", flows, mean)
	}
	b.SetBus(nil) // must be a no-op, not a panic
}

func TestOracleIRD(t *testing.T) {
	inj := sim.Gbps(13.6)
	wire := (&ib.Packet{Type: ib.DataPacket, PayloadBytes: ib.MTU}).WireBytes()
	shares := map[ib.FlowKey]sim.Rate{
		{Src: 1, Dst: 0}: inj / 4,
		{Src: 2, Dst: 0}: inj * 2, // above line: never delayed
	}
	o, err := NewOracle(shares, inj)
	if err != nil {
		t.Fatal(err)
	}
	// A flow paced to a quarter of line rate needs spacing 4×wire-time:
	// the gate adds the 3×wire-time the generator does not (modulo the
	// integer truncation of each TxTime).
	want := 3 * inj.TxTime(wire)
	if got := o.IRD(1, 0, wire); got < want-sim.Nanosecond || got > want+sim.Nanosecond {
		t.Errorf("gated flow IRD = %v, want ~%v", got, want)
	}
	if got := o.IRD(2, 0, wire); got != 0 {
		t.Errorf("above-line share IRD = %v, want 0", got)
	}
	if got := o.IRD(3, 0, wire); got != 0 {
		t.Errorf("unlisted flow IRD = %v, want 0", got)
	}
	flows, mean := o.ThrottleSummary()
	if flows != 2 {
		t.Errorf("flows = %d, want 2", flows)
	}
	if want := (4.0 + 0.5) / 2; mean < want-1e-9 || mean > want+1e-9 {
		t.Errorf("mean pacing depth = %v, want %v", mean, want)
	}
}

func TestOracleValidation(t *testing.T) {
	if _, err := NewOracle(nil, 0); err == nil {
		t.Error("zero injection rate accepted")
	}
	bad := map[ib.FlowKey]sim.Rate{{Src: 1, Dst: 0}: 0}
	if _, err := NewOracle(bad, sim.Gbps(13.6)); err == nil {
		t.Error("zero share accepted")
	}
	o, err := NewOracle(nil, sim.Gbps(13.6))
	if err != nil {
		t.Fatal(err)
	}
	if o.Throttle() != nil {
		t.Error("empty oracle must expose a nil throttle, not a typed-nil interface")
	}
}
