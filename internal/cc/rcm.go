package cc

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/obs"
	"repro/internal/sim"
)

// RCMParams tune the DCQCN-style RoCEv2 congestion management backend.
type RCMParams struct {
	// KminBytes / KmaxBytes bound the ECN marking ramp on the output
	// Port VL's queued bytes: below Kmin nothing is marked, above Kmax
	// every data packet is, and in between the marking fraction rises
	// linearly to PMax.
	KminBytes, KmaxBytes int
	// PMax is the marking fraction at KmaxBytes (RED-style ceiling of
	// the linear ramp).
	PMax float64
	// G is the EWMA gain of the congestion estimate alpha
	// (DCQCN's g): alpha ← (1−G)·alpha + G on each CNP, decaying by
	// (1−G) per timer period otherwise.
	G float64
	// Timer is the rate/alpha update period in units of TimerUnit
	// (1.024 µs); the DCQCN reference uses ~55 µs.
	Timer uint16
	// FastRecovery is the number of timer periods after a rate decrease
	// during which the current rate only halves its gap to the target
	// rate; afterwards the target itself rises additively.
	FastRecovery int
	// AIRate is the additive increase applied to the target rate per
	// timer period once fast recovery ends.
	AIRate sim.Rate
	// MinRate floors the current rate so a flow can always probe.
	MinRate sim.Rate
}

// DefaultRCMParams returns the backend's calibration for this model's
// 13.5 Gbit/s hosts and 16 KiB switch buffers: the marking ramp sits in
// the same occupancy band the IB CCA threshold (weight 15 ≈ 4 KiB)
// watches, and the 55 µs timer matches the DCQCN reference.
func DefaultRCMParams() RCMParams {
	return RCMParams{
		KminBytes:    4 << 10,
		KmaxBytes:    32 << 10,
		PMax:         0.1,
		G:            1.0 / 16,
		Timer:        54, // 54 × 1.024 µs ≈ 55.3 µs
		FastRecovery: 5,
		AIRate:       sim.Gbps(0.4),
		MinRate:      sim.Gbps(0.2),
	}
}

// Validate reports parameter errors.
func (p *RCMParams) Validate() error {
	switch {
	case p.KminBytes < 0 || p.KmaxBytes <= p.KminBytes:
		return fmt.Errorf("cc: rcm marking ramp [%d, %d) invalid", p.KminBytes, p.KmaxBytes)
	case p.PMax <= 0 || p.PMax > 1:
		return fmt.Errorf("cc: rcm PMax %v outside (0, 1]", p.PMax)
	case p.G <= 0 || p.G >= 1:
		return fmt.Errorf("cc: rcm gain %v outside (0, 1)", p.G)
	case p.Timer == 0:
		return fmt.Errorf("cc: rcm timer must be positive")
	case p.FastRecovery < 0:
		return fmt.Errorf("cc: rcm negative fast-recovery period count")
	case p.AIRate <= 0 || p.MinRate <= 0:
		return fmt.Errorf("cc: rcm rates must be positive")
	}
	return nil
}

// rcmFlow is the per-flow rate state at a source CA: the current rate
// RC paces injection, the target rate RT remembers the pre-decrease
// rate recovery climbs back toward, and alpha estimates congestion.
// The invariant MinRate ≤ RC ≤ RT ≤ line holds throughout.
type rcmFlow struct {
	rc, rt sim.Rate
	alpha  float64
	// ticks counts timer periods since the last rate decrease; it
	// selects fast recovery vs additive increase.
	ticks int
}

// rcmCA is the per-host CA state: the rate-limited flow table and the
// free-running update timer (fixed grid with a per-CA phase, like the
// ibcc CCTI timer, so sources desynchronize deterministically).
type rcmCA struct {
	flows map[ib.LID]*rcmFlow
	timer *sim.Event
	tick  sim.Action
	phase sim.Duration
}

// RCM is the DCQCN-style RoCEv2 congestion management backend: switches
// ECN-mark a deterministic fraction of departing data packets that
// rises with output-queue occupancy (no root/victim test — RCM marks on
// queue depth alone); destination CAs bounce each mark as a CNP;
// source CAs react with a multiplicative rate decrease
// RC ← RC·(1−alpha/2) and recover through hyperbolic fast recovery
// followed by additive increase, paced by a per-CA timer. The
// PFC-pause role of lossless RoCE is played by the fabric's existing
// credit-stall path: a full downstream buffer withholds credits, which
// is exactly a pause frame's effect, so no extra machinery is needed.
//
// Marking uses a per-Port-VL fractional accumulator instead of a coin
// flip: the marking fraction accrues per eligible packet and a packet
// is marked each time the accumulator crosses 1. The long-run marking
// rate equals the probabilistic version's, deterministically.
//
// RCM publishes FECNMarked and BECNReturned flight-recorder events (so
// the congestion-tree analyzer reconstructs its trees) but never
// CCTIChanged: there is no CCT, and the checker's ccti-step rule
// validates transitions against ibcc parameters only.
type RCM struct {
	net  *fabric.Network
	simr *sim.Simulator
	p    RCMParams
	line sim.Rate

	// acc[switchIndex][port*numVLs+vl] is the marking accumulator.
	acc [][]float64

	// numVLs caches Config().NumVLs: the accessor copies the whole
	// Config struct, too heavy for the per-enqueue marking path.
	numVLs int

	ca []rcmCA

	stats Stats
	bus   *obs.Bus
}

// NewRCM builds the backend bound to net, pacing against the given
// injection line rate.
func NewRCM(net *fabric.Network, p RCMParams, line sim.Rate) (*RCM, error) {
	if p == (RCMParams{}) {
		p = DefaultRCMParams()
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if line <= 0 {
		return nil, fmt.Errorf("cc: rcm needs a positive line rate")
	}
	if p.MinRate >= line {
		return nil, fmt.Errorf("cc: rcm MinRate %v at or above line rate %v", p.MinRate, line)
	}
	r := &RCM{net: net, simr: net.Sim(), p: p, line: line}
	nv := net.Config().NumVLs
	r.numVLs = nv
	tp := net.Topology()
	r.acc = make([][]float64, len(net.Switches()))
	for _, sw := range net.Switches() {
		r.acc[sw.Index()] = make([]float64, len(tp.Nodes[sw.NodeID()].Ports)*nv)
	}
	r.ca = make([]rcmCA, net.NumHosts())
	period := sim.Duration(p.Timer) * TimerUnit
	for i := range r.ca {
		r.ca[i].flows = make(map[ib.LID]*rcmFlow)
		r.ca[i].phase = sim.Duration(sim.NewRNG(uint64(i)+1).Uint64() % uint64(period))
	}
	return r, nil
}

// Name implements Backend.
func (r *RCM) Name() string { return "rcm" }

// Params returns the active parameter set.
func (r *RCM) Params() RCMParams { return r.p }

// SetBus implements Backend.
func (r *RCM) SetBus(b *obs.Bus) { r.bus = b }

// Stats implements Backend. FECNMarked counts ECN marks, CNPSent /
// BECNReceived the notification loop, and TimerDecrements the per-flow
// recovery updates applied; MaxCCTI stays 0 (there is no CCT).
func (r *RCM) Stats() Stats { return r.stats }

// Hooks implements Backend: arrival-sampled ECN marking plus the
// destination/source CNP loop.
func (r *RCM) Hooks() fabric.Hooks {
	return fabric.Hooks{SwitchEnqueue: r.onEnqueue, Deliver: r.onDeliver}
}

// Throttle implements Backend.
func (r *RCM) Throttle() Throttle { return r }

// onEnqueue marks a deterministic, occupancy-proportional fraction of
// data packets joining a switch output queue.
func (r *RCM) onEnqueue(sw, out int, p *ib.Packet, st fabric.PortVLState) {
	if p.Type != ib.DataPacket {
		return // ECN marks ride data packets only
	}
	q := st.QueuedBytes
	if q < r.p.KminBytes {
		return
	}
	frac := 1.0
	if q < r.p.KmaxBytes {
		frac = r.p.PMax * float64(q-r.p.KminBytes) / float64(r.p.KmaxBytes-r.p.KminBytes)
	}
	acc := &r.acc[sw][out*r.numVLs+int(p.VL)]
	*acc += frac
	if *acc < 1 {
		return
	}
	*acc--
	p.FECN = true
	r.stats.FECNMarked++
	r.bus.FECNMarked(r.simr.Now(), sw, out, st.HostPort, p, st.QueuedBytes, st.CreditBytes)
}

// onDeliver implements both CA roles: a destination CA bounces each
// delivered ECN-marked data packet as an immediate CNP; a source CA
// consumes the CNP (its BECN bit) with a rate decrease.
func (r *RCM) onDeliver(lid ib.LID, p *ib.Packet) {
	if p.Type == ib.DataPacket && p.FECN {
		cnp := r.net.PacketPool().Get()
		cnp.Type = ib.CNPPacket
		cnp.Src = lid
		cnp.Dst = p.Src
		cnp.SL = p.SL
		cnp.VL = p.VL
		cnp.BECN = true
		r.net.HCA(lid).SendControl(cnp)
		r.stats.CNPSent++
	}
	if p.BECN {
		// The CNP's source is the congested destination; the flow being
		// slowed is lid -> p.Src.
		r.bus.BECNReturned(r.simr.Now(), lid, p.Src, p)
		r.onCNP(lid, p.Src)
	}
}

// onCNP applies DCQCN's congestion reaction to flow src→dst: bump the
// congestion estimate, remember the current rate as the recovery
// target, and cut the current rate by alpha/2.
func (r *RCM) onCNP(src, dst ib.LID) {
	r.stats.BECNReceived++
	ca := &r.ca[src]
	fl := ca.flows[dst]
	if fl == nil {
		// DCQCN initializes alpha to 1, so a fresh flow's first CNP cuts
		// it straight to line/2.
		fl = &rcmFlow{rc: r.line, rt: r.line, alpha: 1}
		ca.flows[dst] = fl
	}
	fl.alpha = (1-r.p.G)*fl.alpha + r.p.G
	fl.rt = fl.rc
	fl.rc = fl.rc * sim.Rate(1-fl.alpha/2)
	if fl.rc < r.p.MinRate {
		fl.rc = r.p.MinRate
	}
	fl.ticks = 0
	r.armTimer(src)
}

// armTimer starts the CA's free-running update timer if it is not
// already running; ticks always land on the CA's fixed grid.
func (r *RCM) armTimer(src ib.LID) {
	ca := &r.ca[src]
	if ca.timer != nil {
		return
	}
	if ca.tick == nil {
		ca.tick = &rcmTickAct{r: r, src: src}
	}
	period := sim.Duration(r.p.Timer) * TimerUnit
	ca.timer = r.simr.ScheduleActionAt(nextGridTick(r.simr.Now(), ca.phase, period), ca.tick)
}

// rcmTickAct is a CA's pre-bound timer callback.
type rcmTickAct struct {
	r   *RCM
	src ib.LID
}

// Act implements sim.Action.
func (a *rcmTickAct) Act() { a.r.timerTick(a.src) }

// timerTick is one firing of a CA's update timer: every rate-limited
// flow decays its congestion estimate and climbs toward its target
// (fast recovery halves the gap; afterwards the target also rises
// additively). Fully recovered flows leave the table. Each flow's
// update touches only that flow, so the map iteration order cannot
// influence the trajectory.
func (r *RCM) timerTick(src ib.LID) {
	ca := &r.ca[src]
	ca.timer = nil
	for dst, fl := range ca.flows {
		fl.alpha *= 1 - r.p.G
		fl.ticks++
		if fl.ticks > r.p.FastRecovery {
			fl.rt += r.p.AIRate
			if fl.rt > r.line {
				fl.rt = r.line
			}
		}
		fl.rc = (fl.rc + fl.rt) / 2
		r.stats.TimerDecrements++
		if r.line-fl.rc < r.p.AIRate/1024 && r.line-fl.rt < r.p.AIRate/1024 {
			delete(ca.flows, dst)
		}
	}
	if len(ca.flows) > 0 {
		period := sim.Duration(r.p.Timer) * TimerUnit
		ca.timer = r.simr.ScheduleAction(period, ca.tick)
	}
}

// Rate returns the current injection rate of flow src→dst (the line
// rate when the flow holds no congestion state).
func (r *RCM) Rate(src, dst ib.LID) sim.Rate {
	if fl := r.ca[src].flows[dst]; fl != nil {
		return fl.rc
	}
	return r.line
}

// IRD implements Throttle: a rate-limited flow's packets are spaced at
// wire/RC — the delay returned here stretches the generator's base
// line-rate spacing by the difference.
func (r *RCM) IRD(src, dst ib.LID, wireBytes int) sim.Duration {
	fl := r.ca[src].flows[dst]
	if fl == nil {
		return 0
	}
	d := fl.rc.TxTime(wireBytes) - r.line.TxTime(wireBytes)
	if d < 0 {
		return 0
	}
	return d
}

// CheckInvariants implements Backend: every tabled flow's rates within
// MinRate ≤ RC ≤ RT ≤ line, its congestion estimate within [0, 1], and
// a live timer on every CA that still holds rate-limited flows.
func (r *RCM) CheckInvariants() error {
	const slack = 1e-6
	for i := range r.ca {
		ca := &r.ca[i]
		for dst, fl := range ca.flows {
			if fl.rc < r.p.MinRate*(1-slack) || fl.rc > fl.rt*(1+slack) || fl.rt > r.line*(1+slack) {
				return fmt.Errorf("cc: rcm ca %d flow->%d rates rc=%v rt=%v outside [%v, %v]",
					i, dst, fl.rc, fl.rt, r.p.MinRate, r.line)
			}
			if fl.alpha < 0 || fl.alpha > 1 {
				return fmt.Errorf("cc: rcm ca %d flow->%d alpha %v outside [0, 1]", i, dst, fl.alpha)
			}
		}
		if len(ca.flows) > 0 && ca.timer == nil {
			return fmt.Errorf("cc: rcm ca %d holds %d rate-limited flows with no update timer armed",
				i, len(ca.flows))
		}
	}
	return nil
}

// ThrottleSummary implements Backend: tabled flows and their mean
// pacing depth in line-rate multiples (line/RC; 0 when none).
func (r *RCM) ThrottleSummary() (flows int, mean float64) {
	var sum float64
	for i := range r.ca {
		for _, fl := range r.ca[i].flows {
			flows++
			sum += float64(r.line) / float64(fl.rc)
		}
	}
	if flows == 0 {
		return 0, 0
	}
	return flows, sum / float64(flows)
}

var _ Backend = (*RCM)(nil)

func init() {
	Register("rcm", func(net *fabric.Network, cfg BackendConfig) (Backend, error) {
		return NewRCM(net, cfg.RCM, cfg.InjectionRate)
	})
}
