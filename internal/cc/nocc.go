package cc

import (
	"repro/internal/fabric"
	"repro/internal/obs"
)

// NoCC is the lower-bound backend: no marking, no notifications, no
// injection gating. Running a scenario with CCOn and the "nocc" backend
// takes exactly the code path a CC-off build takes (zero fabric hooks,
// nil throttle), so its trajectory is byte-identical to CCOn=false —
// the tournament's floor on every congestion metric.
type NoCC struct{}

// Name implements Backend.
func (NoCC) Name() string { return "nocc" }

// Hooks implements Backend: no hook points are installed.
func (NoCC) Hooks() fabric.Hooks { return fabric.Hooks{} }

// Throttle implements Backend: injection is never gated.
func (NoCC) Throttle() Throttle { return nil }

// SetBus implements Backend: nothing is published.
func (NoCC) SetBus(*obs.Bus) {}

// Stats implements Backend.
func (NoCC) Stats() Stats { return Stats{} }

// CheckInvariants implements Backend: there is no state to break.
func (NoCC) CheckInvariants() error { return nil }

// ThrottleSummary implements Backend.
func (NoCC) ThrottleSummary() (int, float64) { return 0, 0 }

var _ Backend = NoCC{}

func init() {
	Register("nocc", func(*fabric.Network, BackendConfig) (Backend, error) {
		return NoCC{}, nil
	})
}
