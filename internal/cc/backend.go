package cc

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Throttle is the injection-gate hook a backend exposes to the traffic
// generators: the extra inter-packet delay to insert after a packet of
// the given wire size on flow src→dst. It mirrors (and is assignable
// to) the traffic package's Throttle interface; declaring it here keeps
// cc free of a traffic import.
type Throttle interface {
	IRD(src, dst ib.LID, wireBytes int) sim.Duration
}

// Backend is one pluggable congestion-control mechanism. A backend owns
// three hook points of the control loop:
//
//   - switch-mark: Hooks() installs the fabric hooks that sample queue
//     state and mark packets (FECN/ECN) at switch output ports;
//   - source-notify: the same hooks' Deliver path turns marks into
//     notifications (CNPs) and consumes them at the source CA;
//   - injection-gate: Throttle() paces the marked flows at the
//     generators.
//
// Backends must be deterministic: for a given scenario seed, the same
// trajectory every run, independent of map iteration order or wall
// clock. Everything else (Stats, CheckInvariants, ThrottleSummary)
// serves observability and the runtime invariant checker.
type Backend interface {
	// Name returns the registry name the backend was created under.
	Name() string
	// Hooks returns the fabric hooks implementing the mechanism; the
	// core runner installs them before the network starts. A zero
	// Hooks value is valid (a backend may be gate-only, or nothing).
	Hooks() fabric.Hooks
	// Throttle returns the injection gate, or nil when the backend
	// never delays injection.
	Throttle() Throttle
	// SetBus attaches the flight-recorder event bus (nil disables
	// publication; backends must be nil-safe).
	SetBus(*obs.Bus)
	// Stats returns a snapshot of the activity counters.
	Stats() Stats
	// CheckInvariants verifies the backend's structural invariants at
	// an event boundary (the invariant checker's cc-state sweep).
	CheckInvariants() error
	// ThrottleSummary reports how many flows currently hold congestion
	// state and the mean throttle depth (mechanism-defined units).
	ThrottleSummary() (flows int, mean float64)
}

// BackendConfig carries the per-scenario inputs a backend factory may
// consume; each backend reads only its own fields.
type BackendConfig struct {
	// Params is the IB CCA parameter set (the ibcc backend).
	Params Params
	// RCM tunes the DCQCN-style backend; the zero value selects
	// DefaultRCMParams.
	RCM RCMParams
	// OracleShares is the clairvoyant per-flow fair-share allocation of
	// the oracle backend: flows absent from the map are never gated.
	OracleShares map[ib.FlowKey]sim.Rate
	// InjectionRate is the host injection line rate, the reference the
	// rate-based backends (oracle, rcm) compute pacing against.
	InjectionRate sim.Rate
}

// Factory builds a backend instance bound to a network.
type Factory func(net *fabric.Network, cfg BackendConfig) (Backend, error)

// DefaultBackend is the name an empty scenario selector resolves to:
// the classic IB CCA manager.
const DefaultBackend = "ibcc"

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Factory)
)

// Register adds a backend factory under a unique name. It is intended
// for init-time registration; duplicate names panic.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || f == nil {
		panic("cc: Register needs a name and a factory")
	}
	if _, dup := registry[name]; dup {
		panic("cc: duplicate backend " + name)
	}
	registry[name] = f
}

// Known reports whether a backend name is registered ("" counts: it is
// the default).
func Known(name string) bool {
	if name == "" {
		name = DefaultBackend
	}
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names returns the registered backend names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewBackend creates the named backend ("" selects DefaultBackend)
// bound to net. Unknown names list the registry in the error.
func NewBackend(name string, net *fabric.Network, cfg BackendConfig) (Backend, error) {
	if name == "" {
		name = DefaultBackend
	}
	registryMu.RLock()
	f := registry[name]
	registryMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("cc: unknown backend %q (registered: %v)", name, Names())
	}
	return f(net, cfg)
}

func init() {
	Register(DefaultBackend, func(net *fabric.Network, cfg BackendConfig) (Backend, error) {
		return New(net, cfg.Params)
	})
}
