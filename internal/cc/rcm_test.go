package cc

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
)

// gatedFlood floods a destination while honouring an arbitrary backend
// injection gate — the Throttle-interface twin of throttledFlood.
type gatedFlood struct {
	g           Throttle
	cfg         fabric.Config
	src, dst    ib.LID
	nextAllowed sim.Time
	nextID      uint64
}

func (f *gatedFlood) Pull(now sim.Time) (*ib.Packet, sim.Time) {
	if now < f.nextAllowed {
		return nil, f.nextAllowed
	}
	p := &ib.Packet{
		ID: f.nextID, Type: ib.DataPacket,
		Src: f.src, Dst: f.dst, PayloadBytes: ib.MTU,
		MsgID: f.nextID / 2, MsgSeq: uint8(f.nextID % 2), MsgPackets: 2,
	}
	f.nextID++
	f.nextAllowed = now.Add(f.cfg.InjectionRate.TxTime(p.WireBytes()) + f.g.IRD(f.src, f.dst, p.WireBytes()))
	return p, 0
}

func buildRCM(t *testing.T, hosts int) (*fabric.Network, *RCM) {
	t.Helper()
	tp, _ := topo.SingleSwitch(hosts)
	r, err := topo.ComputeLFT(tp)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fabric.DefaultConfig()
	cfg.Check = true
	n, err := fabric.New(sim.New(), tp, r, cfg, fabric.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	rcm, err := NewRCM(n, DefaultRCMParams(), cfg.InjectionRate)
	if err != nil {
		t.Fatal(err)
	}
	n.SetHooks(rcm.Hooks())
	return n, rcm
}

func TestRCMParamsValidate(t *testing.T) {
	mutations := map[string]func(*RCMParams){
		"inverted ramp":     func(p *RCMParams) { p.KminBytes, p.KmaxBytes = p.KmaxBytes, p.KminBytes },
		"zero-width ramp":   func(p *RCMParams) { p.KmaxBytes = p.KminBytes },
		"pmax above one":    func(p *RCMParams) { p.PMax = 1.5 },
		"zero pmax":         func(p *RCMParams) { p.PMax = 0 },
		"gain at one":       func(p *RCMParams) { p.G = 1 },
		"zero timer":        func(p *RCMParams) { p.Timer = 0 },
		"negative recovery": func(p *RCMParams) { p.FastRecovery = -1 },
		"zero ai rate":      func(p *RCMParams) { p.AIRate = 0 },
		"zero min rate":     func(p *RCMParams) { p.MinRate = 0 },
	}
	for name, mutate := range mutations {
		p := DefaultRCMParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	p := DefaultRCMParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	// The constructor guards the line rate relation itself.
	n, _ := buildRCM(t, 2)
	if _, err := NewRCM(n, p, 0); err == nil {
		t.Error("zero line rate accepted")
	}
	if _, err := NewRCM(n, p, p.MinRate/2); err == nil {
		t.Error("MinRate above line rate accepted")
	}
}

func TestRCMMarkingAccumulator(t *testing.T) {
	// The accumulator turns the marking fraction into a deterministic
	// stream: below Kmin nothing, on the ramp exactly floor(n·frac) of n
	// packets, at or above Kmax every packet.
	_, r := buildRCM(t, 2)
	p := r.Params()
	marks := func(queued, n int) int {
		before := r.stats.FECNMarked
		for i := 0; i < n; i++ {
			pkt := &ib.Packet{Type: ib.DataPacket, Src: 0, Dst: 1, PayloadBytes: ib.MTU}
			r.onEnqueue(0, 0, pkt, fabric.PortVLState{QueuedBytes: queued})
		}
		return int(r.stats.FECNMarked - before)
	}
	if got := marks(p.KminBytes-1, 100); got != 0 {
		t.Errorf("below Kmin: %d marks", got)
	}
	// Midpoint of the ramp: fraction PMax/2 = 1/20 with the defaults.
	mid := (p.KminBytes + p.KmaxBytes) / 2
	if got := marks(mid, 100); got != 100/20 {
		t.Errorf("ramp midpoint: %d marks of 100, want %d", got, 100/20)
	}
	if got := marks(p.KmaxBytes, 50); got != 50 {
		t.Errorf("at Kmax: %d marks of 50, want every packet", got)
	}
	// Control packets use the same queue but must never be marked.
	cnp := &ib.Packet{Type: ib.CNPPacket, Src: 0, Dst: 1}
	before := r.stats.FECNMarked
	r.onEnqueue(0, 0, cnp, fabric.PortVLState{QueuedBytes: p.KmaxBytes})
	if r.stats.FECNMarked != before || cnp.FECN {
		t.Error("control packet was ECN-marked")
	}
}

func TestRCMRateDecreaseAndRecovery(t *testing.T) {
	n, r := buildRCM(t, 2)
	line := n.Config().InjectionRate
	if got := r.Rate(0, 1); got != line {
		t.Fatalf("idle flow rate %v, want line %v", got, line)
	}
	// First CNP: alpha starts at 1, so the rate is cut to line/2 and the
	// pre-cut rate becomes the recovery target.
	r.onCNP(0, 1)
	if got, want := r.Rate(0, 1), line/2; got < want*0.999 || got > want*1.001 {
		t.Fatalf("rate after first CNP = %v, want %v", got, want)
	}
	wire := (&ib.Packet{Type: ib.DataPacket, PayloadBytes: ib.MTU}).WireBytes()
	// At half rate the gate must double the spacing: one extra wire time.
	if got, want := r.IRD(0, 1, wire), line.TxTime(wire); got != want {
		t.Errorf("IRD at line/2 = %v, want %v", got, want)
	}
	if flows, mean := r.ThrottleSummary(); flows != 1 || mean < 1.99 || mean > 2.01 {
		t.Errorf("throttle summary = (%d, %v), want (1, ~2)", flows, mean)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Recovery: each timer period halves the gap to the target (and the
	// target itself rises additively after fast recovery, already at
	// line here). The rate must climb monotonically and the flow must
	// eventually leave the table, disarming the timer.
	prev := r.Rate(0, 1)
	period := sim.Duration(r.Params().Timer) * TimerUnit
	for i := 0; i < 8; i++ {
		n.Sim().RunUntil(n.Sim().Now().Add(period))
		now := r.Rate(0, 1)
		if now < prev {
			t.Fatalf("rate fell during recovery: %v -> %v", prev, now)
		}
		prev = now
	}
	n.Sim().RunUntil(sim.Time(0).Add(4 * sim.Millisecond))
	if flows, _ := r.ThrottleSummary(); flows != 0 {
		t.Errorf("%d flows still tabled after full recovery", flows)
	}
	if got := r.Rate(0, 1); got != line {
		t.Errorf("recovered rate %v, want line %v", got, line)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRCMAlphaDecaysBetweenCNPs(t *testing.T) {
	// A second CNP long after the first must cut less than the first
	// did: alpha decays by (1-G) per timer period in between.
	n, r := buildRCM(t, 2)
	r.onCNP(0, 1)
	first := r.ca[0].flows[1].alpha
	period := sim.Duration(r.Params().Timer) * TimerUnit
	n.Sim().RunUntil(n.Sim().Now().Add(4 * period))
	decayed := r.ca[0].flows[1].alpha
	if decayed >= first {
		t.Fatalf("alpha did not decay: %v -> %v", first, decayed)
	}
	want := first
	g := r.Params().G
	for i := 0; i < 4; i++ {
		want *= 1 - g
	}
	if decayed < want*0.999 || decayed > want*1.001 {
		t.Errorf("alpha after 4 periods = %v, want %v", decayed, want)
	}
}

func TestRCMFullLoopHotspot(t *testing.T) {
	// Four senders overload one receiver: the output queue crosses the
	// marking ramp, ECN marks flow to the receiver, CNPs return, rates
	// drop. The rcm analogue of TestHotspotTriggersFullCCLoop.
	n, r := buildRCM(t, 5)
	bus := obs.New()
	var cctiEvents, fecnEvents int
	bus.Subscribe(obs.ConsumerFunc(func(e obs.Event) {
		switch e.Kind {
		case obs.KindCCTIChanged:
			cctiEvents++
		case obs.KindFECNMarked:
			fecnEvents++
		}
	}), obs.KindCCTIChanged, obs.KindFECNMarked)
	r.SetBus(bus)
	for s := ib.LID(1); s <= 4; s++ {
		n.HCA(s).SetSource(&gatedFlood{g: r, cfg: n.Config(), src: s, dst: 0})
	}
	n.Start()
	n.Sim().RunUntil(sim.Time(0).Add(2 * sim.Millisecond))

	st := r.Stats()
	if st.FECNMarked == 0 {
		t.Fatal("no ECN marks under clear congestion")
	}
	if st.CNPSent == 0 || st.BECNReceived == 0 {
		t.Fatalf("notification loop broken: %+v", st)
	}
	if st.TimerDecrements == 0 {
		t.Fatal("recovery timer never fired")
	}
	if st.MaxCCTI != 0 {
		t.Errorf("rcm reported MaxCCTI %d; it has no CCT", st.MaxCCTI)
	}
	if fecnEvents == 0 {
		t.Error("marks were not published to the flight recorder")
	}
	// There is no CCT: the ccti-step checker rule validates CCTIChanged
	// transitions against ibcc parameters, so rcm must never publish it.
	if cctiEvents != 0 {
		t.Errorf("rcm published %d CCTIChanged events", cctiEvents)
	}
	// Every contributor must have been slowed below line rate.
	for s := ib.LID(1); s <= 4; s++ {
		if got := r.Rate(s, 0); got >= n.Config().InjectionRate {
			t.Errorf("sender %d never rate-limited (rate %v)", s, got)
		}
	}
	if err := r.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRCMDeterministic(t *testing.T) {
	// Two identical runs must agree exactly on the activity counters and
	// final per-flow rates: the mechanism has no hidden randomness.
	run := func() (Stats, []sim.Rate) {
		n, r := buildRCM(t, 5)
		for s := ib.LID(1); s <= 4; s++ {
			n.HCA(s).SetSource(&gatedFlood{g: r, cfg: n.Config(), src: s, dst: 0})
		}
		n.Start()
		n.Sim().RunUntil(sim.Time(0).Add(1 * sim.Millisecond))
		rates := make([]sim.Rate, 0, 4)
		for s := ib.LID(1); s <= 4; s++ {
			rates = append(rates, r.Rate(s, 0))
		}
		return r.Stats(), rates
	}
	st1, r1 := run()
	st2, r2 := run()
	if st1 != st2 {
		t.Errorf("stats diverged: %+v vs %+v", st1, st2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Errorf("flow %d rate diverged: %v vs %v", i+1, r1[i], r2[i])
		}
	}
}
