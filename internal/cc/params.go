// Package cc implements the InfiniBand congestion control mechanism of
// spec release 1.2.1 as the paper describes it: switches detect
// congestion per output Port VL via a threshold and root/victim test and
// FECN-mark departing packets; destination channel adapters bounce each
// FECN as a BECN-carrying CNP; source channel adapters throttle the
// marked flow through a Congestion Control Table indexed by a per-flow
// CCTI that BECNs increase and a periodic timer decays. CC operates at
// the QP (source–destination flow) level throughout, as in the paper.
package cc

import (
	"fmt"

	"repro/internal/sim"
)

// TimerUnit is the granularity of the CCTI Timer field (IB spec: the
// timer period is the field value in units of 1.024 µs).
const TimerUnit = 1024 * sim.Nanosecond

// Params are the congestion control parameters a Congestion Control
// Manager distributes to switches and channel adapters.
type Params struct {
	// CCTIIncrease is added to a flow's CCTI for every BECN received.
	CCTIIncrease uint16
	// CCTILimit caps the CCTI.
	CCTILimit uint16
	// CCTIMin is the floor the timer decays the CCTI towards.
	CCTIMin uint16
	// CCTITimer is the decay period in units of TimerUnit (1.024 µs);
	// zero disables recovery.
	CCTITimer uint16
	// Threshold is the switch congestion threshold weight, 0–15.
	// 0 never marks; 1 is the highest (most tolerant) threshold, 15 the
	// lowest (most aggressive), uniformly spaced per the spec.
	Threshold uint8
	// MarkingRate is the mean number of eligible packets sent between
	// FECN marks; 0 marks every eligible packet.
	MarkingRate uint16
	// PacketSize is the minimum payload, in bytes, for a packet to be
	// eligible for marking; 0 marks all sizes.
	PacketSize int
	// VictimMaskHostPorts sets the Victim Mask on switch ports that
	// attach HCAs, so those ports enter the congestion state without
	// the root-credit test — an HCA never detects congestion itself.
	VictimMaskHostPorts bool
	// RootMinCreditBytes is the credit level at or above which a Port
	// VL counts as a congestion root (it "has available credits to
	// output data"); below it the port is treated as a victim. The
	// default is one full-size packet.
	RootMinCreditBytes int
	// ThresholdRefMultiple scales the reference capacity the threshold
	// weight is applied to. The congestion a switch must detect spans
	// the VoQs of several input ports, so the reference is a multiple
	// of one input buffer (the exact semantics are implementation-
	// defined by the spec; this is this switch model's definition).
	ThresholdRefMultiple int
	// BECNOnACK returns BECNs on reliable-connection acknowledgements
	// instead of explicit CNPs: the destination CA acknowledges every
	// message, setting the ACK's BECN bit when any packet of the
	// message carried a FECN. The spec allows either path; ACKs add a
	// constant reverse-direction message stream but coalesce the
	// congestion feedback to one notification per message.
	BECNOnACK bool
	// SLLevel makes the source CA throttle at the service-level
	// granularity instead of per QP: one CCTI per (CA, SL) shared by
	// every flow of that SL. The paper warns this "will have a negative
	// impact on both fairness and performance" because one congested
	// flow then slows unrelated flows from the same host; the ablation
	// benchmark quantifies it. All study traffic runs on SL 0.
	SLLevel bool
	// MarkOnDeparture samples the Port VL congestion state when a
	// packet leaves the output queue instead of when it joins it
	// (the more literal spec reading; the default samples at arrival,
	// RED-style). With the model's shallow IB-like buffers the two
	// measure equivalently; the ablation benchmark compares them.
	MarkOnDeparture bool
	// CCT is the Congestion Control Table: CCT[CCTI] is the
	// inter-packet delay in units of the departing packet's own
	// serialization time (the paper notes the IRD computation is
	// relative to the packet length). Index 0 must be 0.
	CCT []uint16
}

// PaperParams returns Table I of the paper: the single parameter set the
// whole study runs with, with a linear CCT of 128 entries.
func PaperParams() Params {
	return Params{
		CCTIIncrease:         1,
		CCTILimit:            127,
		CCTIMin:              0,
		CCTITimer:            150,
		Threshold:            15,
		MarkingRate:          0,
		PacketSize:           0,
		VictimMaskHostPorts:  true,
		RootMinCreditBytes:   2048 + 46,
		ThresholdRefMultiple: 4,
		CCT:                  LinearCCT(128),
	}
}

// LinearCCT builds a CCT where entry i delays i packet-times, giving a
// throttle factor of 1/(1+i) of line rate at index i. With 128 entries
// it spans fair shares down to 1/128 of the link — covering the ~64
// contributors per hotspot of the 648-node scenarios, which is why the
// paper enlarged its CCT relative to the earlier hardware study.
func LinearCCT(n int) []uint16 {
	t := make([]uint16, n)
	for i := range t {
		t[i] = uint16(i)
	}
	return t
}

// Validate reports parameter errors.
func (p *Params) Validate() error {
	switch {
	case len(p.CCT) == 0:
		return fmt.Errorf("cc: empty CCT")
	case p.CCT[0] != 0:
		return fmt.Errorf("cc: CCT[0] must be 0")
	case int(p.CCTILimit) >= len(p.CCT):
		return fmt.Errorf("cc: CCTI limit %d outside CCT of %d entries", p.CCTILimit, len(p.CCT))
	case p.CCTIMin > p.CCTILimit:
		return fmt.Errorf("cc: CCTI min %d above limit %d", p.CCTIMin, p.CCTILimit)
	case p.Threshold > 15:
		return fmt.Errorf("cc: threshold weight %d out of range", p.Threshold)
	case p.RootMinCreditBytes < 0:
		return fmt.Errorf("cc: negative root credit floor")
	case p.PacketSize < 0:
		return fmt.Errorf("cc: negative packet size")
	case p.ThresholdRefMultiple < 1:
		return fmt.Errorf("cc: threshold reference multiple must be >= 1")
	}
	return nil
}

// ThresholdBytes translates the threshold weight into an occupancy level
// against the reference capacity (one input buffer's VL space times
// ThresholdRefMultiple): weight 1 → 15/16 of the reference (high
// threshold, marks late), weight 15 → 1/16 (low threshold, marks
// early), uniformly spaced. Weight 0 returns -1 (never marks).
func (p *Params) ThresholdBytes(capacity int) int {
	if p.Threshold == 0 {
		return -1
	}
	m := p.ThresholdRefMultiple
	if m < 1 {
		m = 1
	}
	return capacity * m * (16 - int(p.Threshold)) / 16
}
