package cc

import (
	"fmt"
	"testing"

	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/topo"
)

// TestDiagChain prints the time evolution of the chain scenario; run
// manually with -run TestDiagChain -v while tuning.
func TestDiagChain(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic")
	}
	tp, _ := topo.FatTree(4)
	tn := buildCC(t, tp, PaperParams(), nil)
	for _, s := range []ib.LID{0, 2, 4} {
		tn.flood(s, 6)
	}
	tn.flood(1, 4)
	tn.net.Start()
	var prevHot, prevVic uint64
	step := 200 * sim.Microsecond
	for i := 1; i <= 40; i++ {
		tn.net.Sim().RunUntil(sim.Time(0).Add(sim.Duration(i) * step))
		hot := tn.net.HCA(6).Counters().RxDataPayload
		vic := tn.net.HCA(4).Counters().RxDataPayload
		fmt.Printf("t=%5v hot=%5.2fG vic=%5.2fG ccti=[%d %d %d] vicCCTI=%d marks=%d becn=%d\n",
			sim.Duration(i)*step,
			float64(hot-prevHot)*8/step.Seconds()/1e9,
			float64(vic-prevVic)*8/step.Seconds()/1e9,
			tn.m.CCTI(0, 6), tn.m.CCTI(2, 6), tn.m.CCTI(4, 6),
			tn.m.CCTI(1, 4),
			tn.m.Stats().FECNMarked, tn.m.Stats().BECNReceived)
		prevHot, prevVic = hot, vic
	}
}
