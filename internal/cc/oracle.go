package cc

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Oracle is the clairvoyant upper-bound backend: it knows, from the
// scenario's ground truth, which flows feed each congestion tree and
// what their max-min fair share of the hotspot's sink capacity is, and
// it paces exactly those flows to their share from time zero. There is
// no detection, no notification traffic and no control-loop transient —
// victims are never gated, contributors never overshoot — so it bounds
// what any reactive mechanism (ibcc, rcm) can achieve on the fairness
// and victim-throughput scores. The idiom follows the NoCC/OracleCC
// baseline pair common in CC evaluation harnesses.
type Oracle struct {
	shares map[ib.FlowKey]sim.Rate
	inj    sim.Rate
}

// NewOracle builds the oracle gate from a per-flow fair-share map
// (flows absent from the map are never delayed) and the host injection
// line rate the extra spacing is computed against.
func NewOracle(shares map[ib.FlowKey]sim.Rate, inj sim.Rate) (*Oracle, error) {
	if inj <= 0 {
		return nil, fmt.Errorf("cc: oracle needs a positive injection rate")
	}
	for k, r := range shares {
		if r <= 0 {
			return nil, fmt.Errorf("cc: oracle share for flow %v must be positive, got %v", k, r)
		}
	}
	return &Oracle{shares: shares, inj: inj}, nil
}

// Name implements Backend.
func (o *Oracle) Name() string { return "oracle" }

// Hooks implements Backend: the oracle needs no fabric feedback.
func (o *Oracle) Hooks() fabric.Hooks { return fabric.Hooks{} }

// Throttle implements Backend.
func (o *Oracle) Throttle() Throttle {
	if len(o.shares) == 0 {
		return nil
	}
	return o
}

// SetBus implements Backend: the oracle publishes nothing.
func (o *Oracle) SetBus(*obs.Bus) {}

// Stats implements Backend: no marks, notifications or timer activity.
func (o *Oracle) Stats() Stats { return Stats{} }

// CheckInvariants implements Backend: the share table is immutable, so
// the construction-time validation cannot rot.
func (o *Oracle) CheckInvariants() error { return nil }

// ThrottleSummary implements Backend: every tabled flow is permanently
// gated; the mean reports the average pacing depth in line-rate
// multiples (inj/share), comparable in spirit to a mean CCT multiple.
func (o *Oracle) ThrottleSummary() (int, float64) {
	if len(o.shares) == 0 {
		return 0, 0
	}
	var sum float64
	for _, r := range o.shares {
		sum += float64(o.inj) / float64(r)
	}
	return len(o.shares), sum / float64(len(o.shares))
}

// IRD implements Throttle: gated flows are paced at their fair share —
// the extra delay stretches the generator's base spacing (wire/inj) to
// wire/share; ungated flows and shares at or above the line rate get 0.
func (o *Oracle) IRD(src, dst ib.LID, wireBytes int) sim.Duration {
	share, ok := o.shares[ib.FlowKey{Src: src, Dst: dst}]
	if !ok {
		return 0
	}
	d := share.TxTime(wireBytes) - o.inj.TxTime(wireBytes)
	if d < 0 {
		return 0
	}
	return d
}

var _ Backend = (*Oracle)(nil)

func init() {
	Register("oracle", func(_ *fabric.Network, cfg BackendConfig) (Backend, error) {
		return NewOracle(cfg.OracleShares, cfg.InjectionRate)
	})
}
