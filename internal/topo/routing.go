package topo

import (
	"fmt"
	"sort"

	"repro/internal/ib"
)

// Routing holds the linear forwarding tables: for every switch, the
// output port towards every destination host LID. Hosts always transmit
// on their single port and need no table.
type Routing struct {
	// lft[nodeID][dstLID] = output port; nil for hosts.
	lft [][]int16
}

// OutPort returns the output port switch n uses towards dst.
func (r *Routing) OutPort(n NodeID, dst ib.LID) int {
	return int(r.lft[n][dst])
}

// ComputeLFT builds destination-routed minimum-hop forwarding tables with
// a deterministic destination-modulo tie-break among equal-cost ports.
// On the fat-tree this degenerates to the classic balanced oblivious
// scheme (up-path spine = dst mod numSpines, unique down-path), matching
// the routing the paper's simulator uses; on arbitrary topologies it
// yields deterministic min-hop routing with load spreading.
func ComputeLFT(t *Topology) (*Routing, error) {
	n := len(t.Nodes)
	r := &Routing{lft: make([][]int16, n)}
	for i := range t.Nodes {
		if t.Nodes[i].Kind == Switch {
			row := make([]int16, t.NumHosts)
			for j := range row {
				row[j] = -1
			}
			r.lft[i] = row
		}
	}

	dist := make([]int32, n)
	queue := make([]NodeID, 0, n)
	for dstLID := 0; dstLID < t.NumHosts; dstLID++ {
		dstNode := t.hostByLID[dstLID]
		// BFS over the full node graph from the destination host.
		for i := range dist {
			dist[i] = -1
		}
		dist[dstNode] = 0
		queue = queue[:0]
		queue = append(queue, dstNode)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, p := range t.Nodes[cur].Ports {
				if !p.Connected() || dist[p.Peer] != -1 {
					continue
				}
				dist[p.Peer] = dist[cur] + 1
				queue = append(queue, p.Peer)
			}
		}
		for i := range t.Nodes {
			sw := &t.Nodes[i]
			if sw.Kind != Switch {
				continue
			}
			if dist[sw.ID] < 0 {
				if !hasLinks(sw) {
					continue // fully failed switch: carries no traffic
				}
				return nil, fmt.Errorf("topo: switch %q cannot reach host LID %d", sw.Name, dstLID)
			}
			var cands []int
			for pi, p := range sw.Ports {
				if p.Connected() && dist[p.Peer] == dist[sw.ID]-1 {
					cands = append(cands, pi)
				}
			}
			if len(cands) == 0 {
				return nil, fmt.Errorf("topo: no forwarding port on %q towards LID %d", sw.Name, dstLID)
			}
			sort.Ints(cands)
			r.lft[sw.ID][dstLID] = int16(cands[dstLID%len(cands)])
		}
	}
	return r, nil
}

// hasLinks reports whether any port of the node is connected.
func hasLinks(n *Node) bool {
	for _, p := range n.Ports {
		if p.Connected() {
			return true
		}
	}
	return false
}

// Trace follows the forwarding tables from src to dst and returns the
// node sequence visited, including both hosts. It fails on forwarding
// loops or missing table entries, so tests can assert route sanity.
func Trace(t *Topology, r *Routing, src, dst ib.LID) ([]NodeID, error) {
	if src == dst {
		return []NodeID{t.hostByLID[src]}, nil
	}
	cur := t.hostByLID[src]
	path := []NodeID{cur}
	// First hop: the host's single port.
	cur = t.Nodes[cur].Ports[0].Peer
	for hops := 0; ; hops++ {
		if hops > len(t.Nodes) {
			return nil, fmt.Errorf("topo: forwarding loop from %d to %d: %v", src, dst, path)
		}
		path = append(path, cur)
		node := &t.Nodes[cur]
		if node.Kind == Host {
			if node.LID != dst {
				return nil, fmt.Errorf("topo: route from %d to %d arrived at host %d", src, dst, node.LID)
			}
			return path, nil
		}
		out := r.OutPort(cur, dst)
		if out < 0 || out >= len(node.Ports) || !node.Ports[out].Connected() {
			return nil, fmt.Errorf("topo: switch %q has no valid port towards %d", node.Name, dst)
		}
		cur = node.Ports[out].Peer
	}
}
