package topo

import (
	"strings"
	"testing"

	"repro/internal/ib"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("t")
	h0 := b.AddHost("h0")
	h1 := b.AddHost("h1")
	sw := b.AddSwitch("sw", 4)
	b.Connect(h0, 0, sw, 0)
	b.Connect(h1, 0, sw, 1)
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts != 2 || tp.NumSwitches() != 1 {
		t.Fatalf("counts: %d hosts %d switches", tp.NumHosts, tp.NumSwitches())
	}
	if tp.Nodes[h0].LID != 0 || tp.Nodes[h1].LID != 1 {
		t.Fatal("host LIDs not dense from 0")
	}
	if tp.Nodes[sw].LID != 2 {
		t.Fatalf("switch LID = %d", tp.Nodes[sw].LID)
	}
	if tp.Host(1).ID != h1 {
		t.Fatal("Host lookup wrong")
	}
	// Link symmetry.
	if tp.Nodes[sw].Ports[0].Peer != h0 || tp.Nodes[h0].Ports[0].Peer != sw {
		t.Fatal("connect not symmetric")
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("unconnected host", func(t *testing.T) {
		b := NewBuilder("t")
		b.AddHost("h")
		if _, err := b.Build(); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("double connect", func(t *testing.T) {
		b := NewBuilder("t")
		h := b.AddHost("h")
		s := b.AddSwitch("s", 2)
		b.Connect(h, 0, s, 0)
		b.Connect(h, 0, s, 1)
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "already connected") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("port out of range", func(t *testing.T) {
		b := NewBuilder("t")
		h := b.AddHost("h")
		s := b.AddSwitch("s", 2)
		b.Connect(h, 5, s, 0)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("node out of range", func(t *testing.T) {
		b := NewBuilder("t")
		h := b.AddHost("h")
		b.Connect(h, 0, NodeID(99), 0)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("self loop", func(t *testing.T) {
		b := NewBuilder("t")
		s := b.AddSwitch("s", 2)
		b.Connect(s, 0, s, 1)
		if _, err := b.Build(); err == nil {
			t.Fatal("expected error")
		}
	})
}

func TestLinksEnumeration(t *testing.T) {
	tp, err := SingleSwitch(4)
	if err != nil {
		t.Fatal(err)
	}
	links := tp.Links()
	if len(links) != 4 {
		t.Fatalf("links = %d, want 4", len(links))
	}
	seen := map[[2][2]int]bool{}
	for _, l := range links {
		if seen[l] {
			t.Fatalf("duplicate link %v", l)
		}
		seen[l] = true
	}
}

func TestNodeKindString(t *testing.T) {
	if Host.String() != "host" || Switch.String() != "switch" {
		t.Fatal("kind strings")
	}
}

func TestFatTreeShape648(t *testing.T) {
	hosts, leaves, spines := FatTreeShape(SunDCS648Radix)
	if hosts != 648 || leaves != 36 || spines != 18 {
		t.Fatalf("shape = %d/%d/%d", hosts, leaves, spines)
	}
	if leaves+spines != 54 {
		t.Fatal("Sun DCS 648 must be 54 crossbars")
	}
}

func TestFatTreeBuild(t *testing.T) {
	for _, radix := range []int{2, 4, 6, 12, 18} {
		tp, err := FatTree(radix)
		if err != nil {
			t.Fatalf("radix %d: %v", radix, err)
		}
		wantHosts := radix * radix / 2
		if tp.NumHosts != wantHosts {
			t.Fatalf("radix %d: %d hosts, want %d", radix, tp.NumHosts, wantHosts)
		}
		if tp.NumSwitches() != radix+radix/2 {
			t.Fatalf("radix %d: %d switches", radix, tp.NumSwitches())
		}
		// Every leaf fully wired: half hosts + half spines.
		for _, n := range tp.Nodes {
			if n.Kind != Switch {
				if !n.Ports[0].Connected() {
					t.Fatalf("host %s unconnected", n.Name)
				}
				continue
			}
			for pi, p := range n.Ports {
				if !p.Connected() {
					t.Fatalf("radix %d: %s port %d unconnected", radix, n.Name, pi)
				}
			}
		}
	}
}

func TestFatTreeRejectsBadRadix(t *testing.T) {
	for _, radix := range []int{0, 1, 3, 7, -4} {
		if _, err := FatTree(radix); err == nil {
			t.Errorf("radix %d accepted", radix)
		}
	}
}

func TestFatTree648Full(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size topology in -short mode")
	}
	tp, err := FatTree(SunDCS648Radix)
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts != 648 || tp.NumSwitches() != 54 {
		t.Fatalf("DCS 648 shape wrong: %d hosts %d switches", tp.NumHosts, tp.NumSwitches())
	}
	if _, err := ComputeLFT(tp); err != nil {
		t.Fatal(err)
	}
}

func TestSingleSwitch(t *testing.T) {
	tp, err := SingleSwitch(8)
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts != 8 || tp.NumSwitches() != 1 {
		t.Fatal("shape wrong")
	}
	if _, err := SingleSwitch(1); err == nil {
		t.Fatal("accepted degenerate crossbar")
	}
}

func TestLinearChain(t *testing.T) {
	tp, err := LinearChain(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts != 8 || tp.NumSwitches() != 4 {
		t.Fatal("shape wrong")
	}
	if _, err := LinearChain(0, 1); err == nil {
		t.Fatal("accepted empty chain")
	}
	r, err := ComputeLFT(tp)
	if err != nil {
		t.Fatal(err)
	}
	// End-to-end route crosses all four switches.
	path, err := Trace(tp, r, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	sw := 0
	for _, n := range path {
		if tp.Nodes[n].Kind == Switch {
			sw++
		}
	}
	if sw != 4 {
		t.Fatalf("route 0->7 crossed %d switches, want 4 (%v)", sw, path)
	}
}

func TestLFTAllRoutesReach(t *testing.T) {
	tp, err := FatTree(6) // 18 hosts, 9 switches
	if err != nil {
		t.Fatal(err)
	}
	r, err := ComputeLFT(tp)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < tp.NumHosts; s++ {
		for d := 0; d < tp.NumHosts; d++ {
			path, err := Trace(tp, r, ib.LID(s), ib.LID(d))
			if err != nil {
				t.Fatalf("route %d->%d: %v", s, d, err)
			}
			// Fat-tree up/down: at most 3 switch hops (leaf-spine-leaf).
			swHops := 0
			for _, n := range path {
				if tp.Nodes[n].Kind == Switch {
					swHops++
				}
			}
			if s != d && (swHops < 1 || swHops > 3) {
				t.Fatalf("route %d->%d has %d switch hops", s, d, swHops)
			}
			// Same-leaf pairs must not leave the leaf.
			if s != d && s/3 == d/3 && swHops != 1 {
				t.Fatalf("intra-leaf route %d->%d used %d switches", s, d, swHops)
			}
		}
	}
}

func TestLFTSpineBalance(t *testing.T) {
	// The destination-modulo tie-break must spread destinations evenly
	// over spines: for radix r, each leaf's uplink s carries exactly the
	// destinations with dst mod (r/2) == s among remote hosts.
	tp, err := FatTree(8) // 32 hosts, 8 leaves, 4 spines
	if err != nil {
		t.Fatal(err)
	}
	r, err := ComputeLFT(tp)
	if err != nil {
		t.Fatal(err)
	}
	half := 4
	for l := 0; l < 8; l++ {
		leafID := NodeID(tp.NumHosts + l) // leaves added right after hosts
		if tp.Nodes[leafID].Kind != Switch {
			t.Fatal("leaf indexing assumption broken")
		}
		counts := make(map[int]int)
		for d := 0; d < tp.NumHosts; d++ {
			if d/half == l {
				continue // local destination goes down, not up
			}
			counts[r.OutPort(leafID, ib.LID(d))]++
		}
		for port, c := range counts {
			if port < half {
				t.Fatalf("leaf %d routes remote dst out host port %d", l, port)
			}
			if c != (tp.NumHosts-half)/half {
				t.Fatalf("leaf %d uplink %d carries %d destinations, want %d",
					l, port, c, (tp.NumHosts-half)/half)
			}
		}
	}
}

func TestLFTDeterministic(t *testing.T) {
	tp, _ := FatTree(6)
	r1, err := ComputeLFT(tp)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := ComputeLFT(tp)
	for n := range tp.Nodes {
		if tp.Nodes[n].Kind != Switch {
			continue
		}
		for d := 0; d < tp.NumHosts; d++ {
			if r1.OutPort(NodeID(n), ib.LID(d)) != r2.OutPort(NodeID(n), ib.LID(d)) {
				t.Fatal("LFT computation not deterministic")
			}
		}
	}
}

func TestTraceSelf(t *testing.T) {
	tp, _ := SingleSwitch(4)
	r, _ := ComputeLFT(tp)
	path, err := Trace(tp, r, 2, 2)
	if err != nil || len(path) != 1 {
		t.Fatalf("self trace = %v, %v", path, err)
	}
}

func TestTraceDownPathUnique(t *testing.T) {
	// From any spine, the route to a host must exit towards that host's
	// leaf: property of folded-Clos down-routing.
	tp, _ := FatTree(6)
	r, _ := ComputeLFT(tp)
	half := 3
	numLeaves := 6
	for s := 0; s < half; s++ {
		spineID := NodeID(tp.NumHosts + numLeaves + s)
		for d := 0; d < tp.NumHosts; d++ {
			out := r.OutPort(spineID, ib.LID(d))
			if out != d/half {
				t.Fatalf("spine %d routes dst %d out port %d, want %d", s, d, out, d/half)
			}
		}
	}
}

func TestComputeLFTDisconnected(t *testing.T) {
	b := NewBuilder("t")
	h0 := b.AddHost("h0")
	h1 := b.AddHost("h1")
	s0 := b.AddSwitch("s0", 2)
	s1 := b.AddSwitch("s1", 2)
	b.Connect(h0, 0, s0, 0)
	b.Connect(h1, 0, s1, 0)
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ComputeLFT(tp); err == nil {
		t.Fatal("expected error for disconnected fabric")
	}
}
