// Package topo builds the network topologies used in the study and
// computes their linear forwarding tables (LFTs). The headline topology is
// the three-stage folded-Clos fat-tree of the Sun Datacenter InfiniBand
// Switch 648 (36 leaf and 18 spine 36-port crossbars, 648 end nodes); the
// package also provides a single crossbar and a linear switch chain for
// unit tests and the fairness example.
package topo

import (
	"fmt"

	"repro/internal/ib"
)

// NodeID indexes a node (host or switch) within a Topology.
type NodeID int32

// NoNode marks an unconnected port.
const NoNode NodeID = -1

// NodeKind distinguishes end nodes from switches.
type NodeKind uint8

const (
	// Host is an end node with a single HCA port.
	Host NodeKind = iota
	// Switch is a crossbar forwarding node.
	Switch
)

func (k NodeKind) String() string {
	if k == Host {
		return "host"
	}
	return "switch"
}

// Port describes one side of a link.
type Port struct {
	Peer     NodeID // NoNode when unconnected
	PeerPort int
}

// Connected reports whether the port has a link attached.
func (p Port) Connected() bool { return p.Peer != NoNode }

// Node is a host or switch within a topology.
type Node struct {
	ID    NodeID
	Kind  NodeKind
	LID   ib.LID
	Name  string
	Ports []Port
}

// Topology is an immutable description of nodes and links. Host LIDs are
// assigned densely from zero in the order hosts were added; switches get
// LIDs after all hosts.
type Topology struct {
	Name     string
	Nodes    []Node
	NumHosts int

	// hostByLID maps a host LID to its NodeID.
	hostByLID []NodeID
}

// Host returns the node for a host LID.
func (t *Topology) Host(lid ib.LID) *Node {
	return &t.Nodes[t.hostByLID[lid]]
}

// NumSwitches returns the number of switch nodes.
func (t *Topology) NumSwitches() int { return len(t.Nodes) - t.NumHosts }

// Links returns every link once, as pairs of (node, port) endpoints with
// the lower NodeID (or lower port on ties) first.
func (t *Topology) Links() [][2][2]int {
	var out [][2][2]int
	for _, n := range t.Nodes {
		for pi, p := range n.Ports {
			if !p.Connected() {
				continue
			}
			if p.Peer > n.ID || (p.Peer == n.ID && p.PeerPort > pi) {
				out = append(out, [2][2]int{{int(n.ID), pi}, {int(p.Peer), p.PeerPort}})
			}
		}
	}
	return out
}

// Builder assembles a Topology incrementally.
type Builder struct {
	name  string
	nodes []Node
	hosts int
	err   error
}

// NewBuilder returns an empty builder for a topology with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// AddHost appends an end node with one port and returns its NodeID.
func (b *Builder) AddHost(name string) NodeID {
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{
		ID:    id,
		Kind:  Host,
		Name:  name,
		Ports: []Port{{Peer: NoNode}},
	})
	b.hosts++
	return id
}

// AddSwitch appends a switch with the given port count and returns its
// NodeID.
func (b *Builder) AddSwitch(name string, ports int) NodeID {
	id := NodeID(len(b.nodes))
	ps := make([]Port, ports)
	for i := range ps {
		ps[i].Peer = NoNode
	}
	b.nodes = append(b.nodes, Node{ID: id, Kind: Switch, Name: name, Ports: ps})
	return id
}

// Connect links port ap of node a to port bp of node b (full duplex).
// Errors are deferred to Build.
func (b *Builder) Connect(a NodeID, ap int, bn NodeID, bp int) {
	if b.err != nil {
		return
	}
	check := func(n NodeID, p int) bool {
		if int(n) < 0 || int(n) >= len(b.nodes) {
			b.err = fmt.Errorf("topo: connect: node %d out of range", n)
			return false
		}
		if p < 0 || p >= len(b.nodes[n].Ports) {
			b.err = fmt.Errorf("topo: connect: node %d port %d out of range", n, p)
			return false
		}
		if b.nodes[n].Ports[p].Connected() {
			b.err = fmt.Errorf("topo: connect: node %d port %d already connected", n, p)
			return false
		}
		return true
	}
	if !check(a, ap) || !check(bn, bp) {
		return
	}
	if a == bn {
		b.err = fmt.Errorf("topo: connect: self-loop on node %d", a)
		return
	}
	b.nodes[a].Ports[ap] = Port{Peer: bn, PeerPort: bp}
	b.nodes[bn].Ports[bp] = Port{Peer: a, PeerPort: ap}
}

// Build validates the assembled topology and assigns LIDs. Every host
// port must be connected; switch ports may be left unused.
func (b *Builder) Build() (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	t := &Topology{Name: b.name, Nodes: b.nodes, NumHosts: b.hosts}
	t.hostByLID = make([]NodeID, 0, b.hosts)
	lid := ib.LID(0)
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.Kind == Host {
			if !n.Ports[0].Connected() {
				return nil, fmt.Errorf("topo: host %q has no link", n.Name)
			}
			n.LID = lid
			t.hostByLID = append(t.hostByLID, n.ID)
			lid++
		}
	}
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.Kind == Switch {
			n.LID = lid
			lid++
		}
	}
	return t, nil
}
