package topo

import "fmt"

// FatTree constructs the folded-Clos "three-stage" fat-tree the paper
// simulates, parameterized by crossbar radix. A radix-r fat-tree has r
// leaf switches (r/2 host ports + r/2 uplinks each) and r/2 spine
// switches (one port per leaf), supporting r*r/2 end nodes with full
// bisection bandwidth. Radix 36 yields the Sun Datacenter InfiniBand
// Switch 648: 648 end nodes from 54 36-port crossbars.
//
// Leaf port convention: ports 0..r/2-1 attach hosts, port r/2+s attaches
// spine s. Spine port l attaches leaf l. Host h (LID h) hangs off leaf
// h/(r/2), port h mod (r/2).
func FatTree(radix int) (*Topology, error) {
	if radix < 2 || radix%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree radix must be even and >= 2, got %d", radix)
	}
	half := radix / 2
	b := NewBuilder(fmt.Sprintf("fattree-%d (%d nodes)", radix, radix*half))

	hosts := make([]NodeID, radix*half)
	for i := range hosts {
		hosts[i] = b.AddHost(fmt.Sprintf("node%d", i))
	}
	leaves := make([]NodeID, radix)
	for l := range leaves {
		leaves[l] = b.AddSwitch(fmt.Sprintf("leaf%d", l), radix)
	}
	spines := make([]NodeID, half)
	for s := range spines {
		spines[s] = b.AddSwitch(fmt.Sprintf("spine%d", s), radix)
	}

	for h, hn := range hosts {
		b.Connect(hn, 0, leaves[h/half], h%half)
	}
	for l, ln := range leaves {
		for s, sn := range spines {
			b.Connect(ln, half+s, sn, l)
		}
	}
	return b.Build()
}

// FatTreeShape reports the dimensions of a radix-r fat-tree without
// building it.
func FatTreeShape(radix int) (hosts, leaves, spines int) {
	return radix * radix / 2, radix, radix / 2
}

// SunDCS648Radix is the crossbar radix of the paper's topology.
const SunDCS648Radix = 36

// SingleSwitch builds one crossbar with n attached hosts, the smallest
// topology that exhibits endpoint congestion.
func SingleSwitch(n int) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: single switch needs >= 2 hosts, got %d", n)
	}
	b := NewBuilder(fmt.Sprintf("xbar-%d", n))
	sw := b.AddSwitch("sw0", n)
	for i := 0; i < n; i++ {
		h := b.AddHost(fmt.Sprintf("node%d", i))
		b.Connect(h, 0, sw, i)
	}
	return b.Build()
}

// LinearChain builds k switches in a line with hostsPerSwitch hosts on
// each — the parking-lot topology from the authors' earlier hardware
// study, used by the fairness example.
func LinearChain(k, hostsPerSwitch int) (*Topology, error) {
	if k < 1 || hostsPerSwitch < 1 {
		return nil, fmt.Errorf("topo: chain needs k >= 1 switches and >= 1 host each")
	}
	b := NewBuilder(fmt.Sprintf("chain-%dx%d", k, hostsPerSwitch))
	// Switch port convention: ports 0..hostsPerSwitch-1 hosts,
	// port hostsPerSwitch to previous switch, hostsPerSwitch+1 to next.
	sws := make([]NodeID, k)
	for i := range sws {
		sws[i] = b.AddSwitch(fmt.Sprintf("sw%d", i), hostsPerSwitch+2)
	}
	for i := 0; i < k; i++ {
		for h := 0; h < hostsPerSwitch; h++ {
			hn := b.AddHost(fmt.Sprintf("node%d", i*hostsPerSwitch+h))
			b.Connect(hn, 0, sws[i], h)
		}
		if i+1 < k {
			b.Connect(sws[i], hostsPerSwitch+1, sws[i+1], hostsPerSwitch)
		}
	}
	return b.Build()
}
