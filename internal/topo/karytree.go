package topo

import "fmt"

// KAryNTree builds the classic k-ary n-tree: k^n end nodes, n levels of
// k^(n-1) switches, every switch with k down and k up ports (the top
// level leaves its up ports unused). The folded-Clos FatTree in this
// package is the n=2 member of the same family with asymmetric radix;
// this generalization covers deeper fabrics such as the three-level
// trees large installations build when a two-level Clos runs out of
// ports.
//
// Wiring follows the standard digit rule: switch ⟨w, l⟩ (w written in
// base k with n−1 digits) connects upward to every switch ⟨w', l+1⟩
// whose digits agree with w except at position l. Host h attaches to
// leaf switch h/k via its down port h mod k.
func KAryNTree(k, n int) (*Topology, error) {
	if k < 2 || n < 1 {
		return nil, fmt.Errorf("topo: k-ary n-tree needs k >= 2, n >= 1 (got k=%d n=%d)", k, n)
	}
	hosts := 1
	for i := 0; i < n; i++ {
		hosts *= k
		if hosts > 1<<20 {
			return nil, fmt.Errorf("topo: k=%d n=%d exceeds the supported size", k, n)
		}
	}
	perLevel := hosts / k // k^(n-1)
	b := NewBuilder(fmt.Sprintf("%d-ary-%d-tree (%d nodes)", k, n, hosts))

	hostIDs := make([]NodeID, hosts)
	for i := range hostIDs {
		hostIDs[i] = b.AddHost(fmt.Sprintf("node%d", i))
	}
	// switches[l][w]
	switches := make([][]NodeID, n)
	for l := 0; l < n; l++ {
		switches[l] = make([]NodeID, perLevel)
		for w := 0; w < perLevel; w++ {
			switches[l][w] = b.AddSwitch(fmt.Sprintf("sw%d.%d", l, w), 2*k)
		}
	}

	// Hosts onto leaves.
	for h := 0; h < hosts; h++ {
		b.Connect(hostIDs[h], 0, switches[0][h/k], h%k)
	}
	// digit returns digit position pos of w in base k.
	digit := func(w, pos int) int {
		for ; pos > 0; pos-- {
			w /= k
		}
		return w % k
	}
	// setDigit returns w with digit position pos replaced by v.
	setDigit := func(w, pos, v int) int {
		scale := 1
		for p := 0; p < pos; p++ {
			scale *= k
		}
		return w + (v-digit(w, pos))*scale
	}
	// Inter-level links: switch (l, w) up-port j goes to (l+1, w with
	// digit l = j), arriving at that switch's down-port digit_l(w).
	for l := 0; l+1 < n; l++ {
		for w := 0; w < perLevel; w++ {
			for j := 0; j < k; j++ {
				up := setDigit(w, l, j)
				b.Connect(switches[l][w], k+j, switches[l+1][up], digit(w, l))
			}
		}
	}
	return b.Build()
}
