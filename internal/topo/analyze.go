package topo

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/ib"
)

// Analysis summarizes a routed topology: path-length distribution and
// static link load under all-to-all traffic. The experiment tooling uses
// it to sanity-check new topologies and to locate structural bottlenecks
// before simulating.
type Analysis struct {
	// Hosts and Switches count the nodes.
	Hosts, Switches int
	// Links counts undirected links.
	Links int
	// PathLenHist[h] counts host pairs whose route crosses h switches
	// (self-pairs excluded).
	PathLenHist map[int]int
	// LinkLoad maps each directed link (by its transmit endpoint) to
	// the number of host pairs whose route uses it.
	LinkLoad map[DirectedLink]int
	// MaxLoad and MinLoad are the extreme directed inter-switch link
	// loads (0 when there are no inter-switch links).
	MaxLoad, MinLoad int
}

// DirectedLink identifies one direction of a link by its transmitting
// endpoint.
type DirectedLink struct {
	Node NodeID
	Port int
}

// Analyze traces every ordered host pair through the forwarding tables.
// It is O(H² · pathlen), fine for the topology sizes the tests and
// tools inspect.
func Analyze(t *Topology, r *Routing) (*Analysis, error) {
	a := &Analysis{
		Hosts:       t.NumHosts,
		Switches:    t.NumSwitches(),
		Links:       len(t.Links()),
		PathLenHist: make(map[int]int),
		LinkLoad:    make(map[DirectedLink]int),
	}
	for s := 0; s < t.NumHosts; s++ {
		for d := 0; d < t.NumHosts; d++ {
			if s == d {
				continue
			}
			path, err := Trace(t, r, ib.LID(s), ib.LID(d))
			if err != nil {
				return nil, err
			}
			swHops := 0
			// Walk the path again to attribute directed link loads.
			for i := 0; i+1 < len(path); i++ {
				cur := &t.Nodes[path[i]]
				if cur.Kind == Switch {
					swHops++
				}
				var port int
				if cur.Kind == Host {
					port = 0
				} else {
					port = r.OutPort(cur.ID, ib.LID(d))
				}
				a.LinkLoad[DirectedLink{Node: cur.ID, Port: port}]++
			}
			a.PathLenHist[swHops]++
		}
	}
	first := true
	for l, load := range a.LinkLoad {
		if t.Nodes[l.Node].Kind != Switch {
			continue
		}
		if t.Nodes[t.Nodes[l.Node].Ports[l.Port].Peer].Kind != Switch {
			continue
		}
		if first || load > a.MaxLoad {
			a.MaxLoad = load
		}
		if first || load < a.MinLoad {
			a.MinLoad = load
		}
		first = false
	}
	return a, nil
}

// AvgPathLen returns the mean number of switch hops per route.
func (a *Analysis) AvgPathLen() float64 {
	var sum, n int
	for h, c := range a.PathLenHist {
		sum += h * c
		n += c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Balance returns MinLoad/MaxLoad over inter-switch links: 1.0 is a
// perfectly balanced fabric, smaller values indicate hot links.
func (a *Analysis) Balance() float64 {
	if a.MaxLoad == 0 {
		return 1
	}
	return float64(a.MinLoad) / float64(a.MaxLoad)
}

// Print writes a human-readable report.
func (a *Analysis) Print(w io.Writer) {
	fmt.Fprintf(w, "hosts %d, switches %d, links %d\n", a.Hosts, a.Switches, a.Links)
	fmt.Fprintf(w, "path length (switch hops) over %d routes, avg %.2f:\n",
		a.Hosts*(a.Hosts-1), a.AvgPathLen())
	var lens []int
	for h := range a.PathLenHist {
		lens = append(lens, h)
	}
	sort.Ints(lens)
	for _, h := range lens {
		fmt.Fprintf(w, "  %2d hops: %6d routes\n", h, a.PathLenHist[h])
	}
	fmt.Fprintf(w, "inter-switch link load: min %d, max %d, balance %.3f\n",
		a.MinLoad, a.MaxLoad, a.Balance())
}

// WriteDOT emits the topology as a Graphviz graph, hosts as boxes and
// switches as ellipses.
func WriteDOT(w io.Writer, t *Topology) error {
	if _, err := fmt.Fprintf(w, "graph %q {\n", t.Name); err != nil {
		return err
	}
	for i := range t.Nodes {
		n := &t.Nodes[i]
		shape := "ellipse"
		if n.Kind == Host {
			shape = "box"
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q shape=%s];\n", n.ID, n.Name, shape); err != nil {
			return err
		}
	}
	for _, l := range t.Links() {
		if _, err := fmt.Fprintf(w, "  n%d -- n%d;\n", l[0][0], l[1][0]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
