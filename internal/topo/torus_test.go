package topo

import (
	"testing"
	"testing/quick"

	"repro/internal/ib"
)

func TestGridShapes(t *testing.T) {
	m, err := Mesh2D(3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumHosts != 24 || m.NumSwitches() != 12 || m.Wrap {
		t.Fatalf("mesh shape wrong: %d hosts %d switches", m.NumHosts, m.NumSwitches())
	}
	tor, err := Torus2D(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tor.NumHosts != 16 || tor.NumSwitches() != 16 || !tor.Wrap {
		t.Fatal("torus shape wrong")
	}
	// Torus switches are fully wired: hosts + 4 ring ports.
	for _, n := range tor.Nodes {
		if n.Kind != Switch {
			continue
		}
		for pi, p := range n.Ports {
			if !p.Connected() {
				t.Fatalf("torus switch %s port %d unconnected", n.Name, pi)
			}
		}
	}
	// Mesh borders leave ring ports open.
	open := 0
	for _, n := range m.Nodes {
		if n.Kind != Switch {
			continue
		}
		for _, p := range n.Ports {
			if !p.Connected() {
				open++
			}
		}
	}
	if open != 2*3+2*4 {
		t.Fatalf("mesh open ports = %d, want 14", open)
	}
}

func TestGridRejectsBadShape(t *testing.T) {
	for _, c := range [][3]int{{1, 2, 1}, {2, 1, 1}, {2, 2, 0}} {
		if _, err := Mesh2D(c[0], c[1], c[2]); err == nil {
			t.Errorf("mesh %v accepted", c)
		}
		if _, err := Torus2D(c[0], c[1], c[2]); err == nil {
			t.Errorf("torus %v accepted", c)
		}
	}
}

func TestSwitchAt(t *testing.T) {
	g, _ := Torus2D(3, 3, 2)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			id := g.SwitchAt(x, y)
			if g.Nodes[id].Kind != Switch {
				t.Fatalf("SwitchAt(%d,%d) = %d is not a switch", x, y, id)
			}
			gx, gy := g.coordOf(id)
			if gx != x || gy != y {
				t.Fatalf("coord round trip (%d,%d) -> (%d,%d)", x, y, gx, gy)
			}
		}
	}
}

func TestDORRoutesReachMesh(t *testing.T) {
	g, _ := Mesh2D(4, 3, 2)
	r := g.DOR()
	for s := 0; s < g.NumHosts; s++ {
		for d := 0; d < g.NumHosts; d++ {
			path, err := Trace(g.Topology, r, ib.LID(s), ib.LID(d))
			if err != nil {
				t.Fatalf("route %d->%d: %v", s, d, err)
			}
			// Minimality: switch hops = |dx| + |dy| + 1.
			sx, sy := g.hostSwitch(ib.LID(s))
			tx, ty := g.hostSwitch(ib.LID(d))
			want := abs(sx-tx) + abs(sy-ty) + 1
			sw := 0
			for _, n := range path {
				if g.Nodes[n].Kind == Switch {
					sw++
				}
			}
			if s != d && sw != want {
				t.Fatalf("route %d->%d: %d switch hops, want %d", s, d, sw, want)
			}
		}
	}
}

func TestDORRoutesReachTorus(t *testing.T) {
	g, _ := Torus2D(4, 4, 1)
	r := g.DOR()
	for s := 0; s < g.NumHosts; s++ {
		for d := 0; d < g.NumHosts; d++ {
			path, err := Trace(g.Topology, r, ib.LID(s), ib.LID(d))
			if err != nil {
				t.Fatalf("route %d->%d: %v", s, d, err)
			}
			// Minimality with wraparound: ring distance per dimension.
			sx, sy := g.hostSwitch(ib.LID(s))
			tx, ty := g.hostSwitch(ib.LID(d))
			want := ringDist(sx, tx, 4) + ringDist(sy, ty, 4) + 1
			sw := 0
			for _, n := range path {
				if g.Nodes[n].Kind == Switch {
					sw++
				}
			}
			if s != d && sw != want {
				t.Fatalf("route %d->%d: %d switch hops, want %d", s, d, sw, want)
			}
		}
	}
}

func TestDORDimensionOrder(t *testing.T) {
	// X must be fully resolved before Y moves: along any route the Y
	// coordinate only changes after the X coordinate has reached the
	// target column.
	g, _ := Torus2D(5, 4, 1)
	r := g.DOR()
	f := func(sRaw, dRaw uint16) bool {
		s := int(sRaw) % g.NumHosts
		d := int(dRaw) % g.NumHosts
		path, err := Trace(g.Topology, r, ib.LID(s), ib.LID(d))
		if err != nil {
			return false
		}
		tx, _ := g.hostSwitch(ib.LID(d))
		movedY := false
		var px int
		first := true
		for _, n := range path {
			if g.Nodes[n].Kind != Switch {
				continue
			}
			x, _ := g.coordOf(n)
			if !first && x != px && movedY {
				return false // X changed after Y started
			}
			if !first && x == px && x == tx {
				movedY = true
			}
			px, first = x, false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTorusVLPolicy(t *testing.T) {
	g, _ := Torus2D(4, 4, 1)
	policy := g.TorusVLPolicy()
	hp := g.HostsPer
	swIdx := func(x, y int) int { return int(g.SwitchAt(x, y) - g.firstSwitch) }
	pkt := func(vl ib.VL) *ib.Packet { return &ib.Packet{VL: vl} }

	// Crossing the +X wrap link from the last column: dateline, VL 1.
	if got := policy(swIdx(3, 0), 0, hp+gridPlusX, pkt(0)); got != 1 {
		t.Fatalf("+X dateline: VL %d", got)
	}
	// Crossing the -X wrap link from column 0: dateline, VL 1.
	if got := policy(swIdx(0, 0), 0, hp+gridMinusX, pkt(0)); got != 1 {
		t.Fatalf("-X dateline: VL %d", got)
	}
	// Continuing the same ring keeps VL 1.
	if got := policy(swIdx(1, 0), hp+gridMinusX, hp+gridPlusX, pkt(1)); got != 1 {
		t.Fatalf("same ring: VL %d", got)
	}
	// Turning into the Y dimension resets to VL 0.
	if got := policy(swIdx(1, 1), hp+gridMinusX, hp+gridPlusY, pkt(1)); got != 0 {
		t.Fatalf("dimension turn: VL %d", got)
	}
	// A fresh injection (host input) rides VL 0 on a non-wrap link.
	if got := policy(swIdx(1, 1), 0, hp+gridPlusX, pkt(0)); got != 0 {
		t.Fatalf("fresh injection: VL %d", got)
	}
	// Y dateline from the last row.
	if got := policy(swIdx(2, 3), 0, hp+gridPlusY, pkt(0)); got != 1 {
		t.Fatalf("+Y dateline: VL %d", got)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func ringDist(a, b, n int) int {
	d := abs(a - b)
	if n-d < d {
		return n - d
	}
	return d
}
