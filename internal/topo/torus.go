package topo

import (
	"fmt"

	"repro/internal/ib"
)

// The paper's conclusion leaves congestion control on tori and meshes as
// an open question ("Regarding Tori or Meshes, the picture is more
// unclear, thus this question should form the basis for further
// research"). This file provides the substrate to explore it: 2D mesh
// and torus topologies with dimension-order routing, and — for the torus,
// whose wraparound rings create cyclic channel dependencies — a dateline
// virtual-lane policy that keeps the network deadlock-free with two VLs.

// Grid describes a 2D mesh or torus of switches with hosts attached.
type Grid struct {
	*Topology
	// W, H are the grid dimensions; HostsPer the hosts per switch.
	W, H, HostsPer int
	// Wrap reports whether the grid has wraparound links (torus).
	Wrap bool
	// firstSwitch is the NodeID of switch (0,0); switches are laid out
	// row-major after all hosts.
	firstSwitch NodeID
}

// Grid switch port conventions, after the HostsPer host ports.
const (
	gridPlusX = iota
	gridMinusX
	gridPlusY
	gridMinusY
)

// Mesh2D builds a w×h mesh (no wraparound) with hostsPer hosts per
// switch. Dimension-order routing on a mesh is deadlock-free with a
// single VL.
func Mesh2D(w, h, hostsPer int) (*Grid, error) {
	return buildGrid(w, h, hostsPer, false)
}

// Torus2D builds a w×h torus (wraparound in both dimensions). Use
// TorusVLPolicy (and a fabric with 2 VLs) to break the ring channel
// cycles.
func Torus2D(w, h, hostsPer int) (*Grid, error) {
	return buildGrid(w, h, hostsPer, true)
}

func buildGrid(w, h, hostsPer int, wrap bool) (*Grid, error) {
	if w < 2 || h < 2 || hostsPer < 1 {
		return nil, fmt.Errorf("topo: grid needs w,h >= 2 and hosts >= 1 (got %dx%dx%d)", w, h, hostsPer)
	}
	kind := "mesh"
	if wrap {
		kind = "torus"
	}
	b := NewBuilder(fmt.Sprintf("%s-%dx%dx%d", kind, w, h, hostsPer))

	// Hosts first so LIDs are dense from zero: host LID = switch
	// index * hostsPer + local index.
	hosts := make([]NodeID, w*h*hostsPer)
	for i := range hosts {
		hosts[i] = b.AddHost(fmt.Sprintf("node%d", i))
	}
	sw := make([]NodeID, w*h)
	for i := range sw {
		sw[i] = b.AddSwitch(fmt.Sprintf("sw%d.%d", i%w, i/w), hostsPer+4)
	}
	at := func(x, y int) NodeID { return sw[y*w+x] }

	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := at(x, y)
			for hp := 0; hp < hostsPer; hp++ {
				b.Connect(hosts[(y*w+x)*hostsPer+hp], 0, s, hp)
			}
			// +X link to the right neighbour (wrapping on a torus).
			if x+1 < w {
				b.Connect(s, hostsPer+gridPlusX, at(x+1, y), hostsPer+gridMinusX)
			} else if wrap {
				b.Connect(s, hostsPer+gridPlusX, at(0, y), hostsPer+gridMinusX)
			}
			// +Y link downward.
			if y+1 < h {
				b.Connect(s, hostsPer+gridPlusY, at(x, y+1), hostsPer+gridMinusY)
			} else if wrap {
				b.Connect(s, hostsPer+gridPlusY, at(x, 0), hostsPer+gridMinusY)
			}
		}
	}
	tp, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Grid{Topology: tp, W: w, H: h, HostsPer: hostsPer, Wrap: wrap,
		firstSwitch: hosts[len(hosts)-1] + 1}, nil
}

// SwitchAt returns the NodeID of the switch at grid position (x, y).
func (g *Grid) SwitchAt(x, y int) NodeID {
	return g.firstSwitch + NodeID(y*g.W+x)
}

// coordOf returns the grid position of a switch.
func (g *Grid) coordOf(n NodeID) (x, y int) {
	i := int(n - g.firstSwitch)
	return i % g.W, i / g.W
}

// hostSwitch returns the grid position of the switch a host attaches to.
func (g *Grid) hostSwitch(lid ib.LID) (x, y int) {
	i := int(lid) / g.HostsPer
	return i % g.W, i / g.W
}

// DOR computes dimension-order (X then Y) forwarding tables. On the
// torus each dimension takes the shorter way around, breaking ties
// towards the positive direction.
func (g *Grid) DOR() *Routing {
	r := &Routing{lft: make([][]int16, len(g.Nodes))}
	for i := range g.Nodes {
		if g.Nodes[i].Kind != Switch {
			continue
		}
		row := make([]int16, g.NumHosts)
		x, y := g.coordOf(g.Nodes[i].ID)
		for dst := 0; dst < g.NumHosts; dst++ {
			tx, ty := g.hostSwitch(ib.LID(dst))
			row[dst] = int16(g.dorPort(x, y, tx, ty, dst))
		}
		r.lft[i] = row
	}
	return r
}

// dorPort picks the output port at (x,y) towards host dst at (tx,ty).
func (g *Grid) dorPort(x, y, tx, ty, dst int) int {
	if x == tx && y == ty {
		return dst % g.HostsPer
	}
	if x != tx {
		return g.HostsPer + g.ringStep(x, tx, g.W, gridPlusX, gridMinusX)
	}
	return g.HostsPer + g.ringStep(y, ty, g.H, gridPlusY, gridMinusY)
}

// ringStep picks the direction along one dimension: on a mesh simply
// towards the target, on a torus the shorter way around.
func (g *Grid) ringStep(from, to, size, plus, minus int) int {
	if !g.Wrap {
		if to > from {
			return plus
		}
		return minus
	}
	fwd := (to - from + size) % size
	if fwd <= size-fwd {
		return plus
	}
	return minus
}

// TorusVLPolicy returns a virtual-lane selection function implementing
// dateline deadlock avoidance on the torus: a packet travels its current
// ring on VL 0 until it crosses the wraparound link (the dateline),
// continues on VL 1 for the rest of that ring, and drops back to VL 0
// when it turns into the next dimension or exits to a host. Minimal
// routing never crosses a dateline twice per ring, so neither VL carries
// a channel cycle. The fabric must be configured with at least 2 VLs.
func (g *Grid) TorusVLPolicy() func(sw int, inPort, outPort int, p *ib.Packet) ib.VL {
	hp := g.HostsPer
	dim := func(port int) int { // 0 = host, 1 = X, 2 = Y
		switch {
		case port < hp:
			return 0
		case port < hp+2:
			return 1
		default:
			return 2
		}
	}
	return func(sw int, inPort, outPort int, p *ib.Packet) ib.VL {
		swNode := g.firstSwitch + NodeID(sw)
		x, y := g.coordOf(swNode)
		// Dateline crossings: the +X link out of the last column, the
		// -X link out of column 0, and the Y equivalents.
		crossing := false
		switch outPort - hp {
		case gridPlusX:
			crossing = x == g.W-1
		case gridMinusX:
			crossing = x == 0
		case gridPlusY:
			crossing = y == g.H-1
		case gridMinusY:
			crossing = y == 0
		}
		if crossing {
			return 1
		}
		// Staying in the same ring keeps the current VL; turning into
		// a new dimension (or leaving a host port) restarts on VL 0.
		if dim(outPort) == dim(inPort) && dim(inPort) != 0 {
			return p.VL
		}
		return 0
	}
}
