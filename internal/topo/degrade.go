package topo

import "fmt"

// FatTreeDegraded builds the folded-Clos fat-tree of FatTree(radix) with
// some leaf–spine links removed, modeling link or spine failures — the
// "re-routing around faulty regions" congestion source of the paper's
// introduction. skip reports whether the link between a leaf and a spine
// is dead; killing every link of one spine models a full spine failure.
// The destination-modulo LFT computation then spreads the displaced
// traffic over the surviving spines, concentrating load exactly the way
// degraded real installations do.
func FatTreeDegraded(radix int, skip func(leaf, spine int) bool) (*Topology, error) {
	if radix < 2 || radix%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree radix must be even and >= 2, got %d", radix)
	}
	if skip == nil {
		return FatTree(radix)
	}
	half := radix / 2
	b := NewBuilder(fmt.Sprintf("fattree-%d-degraded", radix))

	hosts := make([]NodeID, radix*half)
	for i := range hosts {
		hosts[i] = b.AddHost(fmt.Sprintf("node%d", i))
	}
	leaves := make([]NodeID, radix)
	for l := range leaves {
		leaves[l] = b.AddSwitch(fmt.Sprintf("leaf%d", l), radix)
	}
	spines := make([]NodeID, half)
	for s := range spines {
		spines[s] = b.AddSwitch(fmt.Sprintf("spine%d", s), radix)
	}
	for h, hn := range hosts {
		b.Connect(hn, 0, leaves[h/half], h%half)
	}
	alive := 0
	for l, ln := range leaves {
		for s, sn := range spines {
			if skip(l, s) {
				continue
			}
			alive++
			b.Connect(ln, half+s, sn, l)
		}
	}
	if alive == 0 {
		return nil, fmt.Errorf("topo: every leaf-spine link removed")
	}
	return b.Build()
}

// DeadSpines returns a skip function removing every link of the given
// spines.
func DeadSpines(spines ...int) func(leaf, spine int) bool {
	dead := make(map[int]bool, len(spines))
	for _, s := range spines {
		dead[s] = true
	}
	return func(leaf, spine int) bool { return dead[spine] }
}
