package topo

import (
	"strings"
	"testing"
)

func analyze(t *testing.T, tp *Topology) *Analysis {
	t.Helper()
	r, err := ComputeLFT(tp)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(tp, r)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAnalyzeSingleSwitch(t *testing.T) {
	tp, _ := SingleSwitch(6)
	a := analyze(t, tp)
	if a.Hosts != 6 || a.Switches != 1 || a.Links != 6 {
		t.Fatalf("counts: %+v", a)
	}
	// Every route crosses exactly the one crossbar.
	if a.PathLenHist[1] != 30 || len(a.PathLenHist) != 1 {
		t.Fatalf("hist = %v", a.PathLenHist)
	}
	if a.AvgPathLen() != 1 {
		t.Fatalf("avg = %v", a.AvgPathLen())
	}
	// No inter-switch links: balance degenerates to 1.
	if a.Balance() != 1 || a.MaxLoad != 0 {
		t.Fatalf("balance = %v max %d", a.Balance(), a.MaxLoad)
	}
}

func TestAnalyzeFatTreeBalance(t *testing.T) {
	tp, _ := FatTree(6)
	a := analyze(t, tp)
	// The destination-modulo LFT balances the fat-tree exactly: every
	// directed inter-switch link carries the same number of routes.
	if a.Balance() != 1.0 {
		t.Fatalf("fat-tree balance = %.3f (min %d max %d)", a.Balance(), a.MinLoad, a.MaxLoad)
	}
	// Paths: intra-leaf (1 hop) and leaf-spine-leaf (3 hops) only.
	if a.PathLenHist[2] != 0 || a.PathLenHist[1] == 0 || a.PathLenHist[3] == 0 {
		t.Fatalf("hist = %v", a.PathLenHist)
	}
	if avg := a.AvgPathLen(); avg <= 1 || avg >= 3 {
		t.Fatalf("avg = %v", avg)
	}
}

func TestAnalyzeDegradedImbalance(t *testing.T) {
	full, _ := FatTree(6)
	af := analyze(t, full)
	// Killing one spine leaves fewer uplinks carrying more routes each;
	// max directed load must rise.
	deg, _ := FatTreeDegraded(6, DeadSpines(0))
	ad := analyze(t, deg)
	if ad.MaxLoad <= af.MaxLoad {
		t.Fatalf("degraded max load %d not above intact %d", ad.MaxLoad, af.MaxLoad)
	}
}

func TestAnalyzeHostLinkLoad(t *testing.T) {
	tp, _ := SingleSwitch(4)
	a := analyze(t, tp)
	// Each host transmits to 3 destinations: its uplink carries 3
	// routes; each switch-to-host link carries 3 (one per source).
	for l, load := range a.LinkLoad {
		if load != 3 {
			t.Fatalf("link %v load %d, want 3", l, load)
		}
	}
}

func TestAnalysisPrint(t *testing.T) {
	tp, _ := FatTree(4)
	a := analyze(t, tp)
	var sb strings.Builder
	a.Print(&sb)
	out := sb.String()
	for _, want := range []string{"hosts 8", "switches 6", "hops", "balance"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Print missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	tp, _ := SingleSwitch(3)
	var sb strings.Builder
	if err := WriteDOT(&sb, tp); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph", "shape=box", "shape=ellipse", "--"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "--") != 3 {
		t.Fatalf("edge count wrong:\n%s", out)
	}
}
