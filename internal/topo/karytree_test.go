package topo

import (
	"testing"

	"repro/internal/ib"
)

func TestKAryNTreeShapes(t *testing.T) {
	cases := []struct {
		k, n             int
		hosts, perSwitch int
	}{
		{2, 2, 4, 2},
		{2, 3, 8, 4},
		{3, 2, 9, 3},
		{4, 3, 64, 16},
	}
	for _, c := range cases {
		tp, err := KAryNTree(c.k, c.n)
		if err != nil {
			t.Fatalf("k=%d n=%d: %v", c.k, c.n, err)
		}
		if tp.NumHosts != c.hosts {
			t.Fatalf("k=%d n=%d: %d hosts, want %d", c.k, c.n, tp.NumHosts, c.hosts)
		}
		if tp.NumSwitches() != c.n*c.perSwitch {
			t.Fatalf("k=%d n=%d: %d switches, want %d", c.k, c.n, tp.NumSwitches(), c.n*c.perSwitch)
		}
	}
}

func TestKAryNTreeRejectsBadArgs(t *testing.T) {
	for _, c := range [][2]int{{1, 2}, {2, 0}, {0, 3}, {2, 25}} {
		if _, err := KAryNTree(c[0], c[1]); err == nil {
			t.Errorf("k=%d n=%d accepted", c[0], c[1])
		}
	}
}

func TestKAryNTreeRoutesReach(t *testing.T) {
	tp, err := KAryNTree(2, 3) // 8 hosts, 12 switches, 3 levels
	if err != nil {
		t.Fatal(err)
	}
	r, err := ComputeLFT(tp)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < tp.NumHosts; s++ {
		for d := 0; d < tp.NumHosts; d++ {
			path, err := Trace(tp, r, ib.LID(s), ib.LID(d))
			if err != nil {
				t.Fatalf("route %d->%d: %v", s, d, err)
			}
			sw := 0
			for _, n := range path {
				if tp.Nodes[n].Kind == Switch {
					sw++
				}
			}
			// Up-down routing in an n-level tree crosses at most
			// 2n-1 switches.
			if s != d && (sw < 1 || sw > 5) {
				t.Fatalf("route %d->%d crosses %d switches", s, d, sw)
			}
			// Same-leaf pairs stay on the leaf.
			if s != d && s/2 == d/2 && sw != 1 {
				t.Fatalf("intra-leaf route %d->%d used %d switches", s, d, sw)
			}
		}
	}
}

func TestKAryNTreeFullBisection(t *testing.T) {
	// Every level must carry hosts*k ports of capacity upward except
	// the top: count inter-level links.
	tp, _ := KAryNTree(3, 3) // 27 hosts
	interSwitch := 0
	for _, l := range tp.Links() {
		a := tp.Nodes[l[0][0]]
		b := tp.Nodes[l[1][0]]
		if a.Kind == Switch && b.Kind == Switch {
			interSwitch++
		}
	}
	// n-1 = 2 level gaps, each with k^(n-1) * k = 27 links.
	if interSwitch != 54 {
		t.Fatalf("inter-switch links = %d, want 54", interSwitch)
	}
}

func TestFatTreeDegradedRoutesAroundDeadSpine(t *testing.T) {
	tp, err := FatTreeDegraded(6, DeadSpines(0))
	if err != nil {
		t.Fatal(err)
	}
	r, err := ComputeLFT(tp)
	if err != nil {
		t.Fatal(err)
	}
	deadSpine := tp.Nodes[tp.NumHosts+6] // spines follow the 6 leaves
	if deadSpine.Kind != Switch || deadSpine.Name != "spine0" {
		t.Fatalf("layout assumption broken: %s", deadSpine.Name)
	}
	for s := 0; s < tp.NumHosts; s++ {
		for d := 0; d < tp.NumHosts; d++ {
			path, err := Trace(tp, r, ib.LID(s), ib.LID(d))
			if err != nil {
				t.Fatalf("route %d->%d: %v", s, d, err)
			}
			for _, n := range path {
				if n == deadSpine.ID {
					t.Fatalf("route %d->%d crosses the dead spine", s, d)
				}
			}
		}
	}
}

func TestFatTreeDegradedSurvivingLoadRises(t *testing.T) {
	// With spine 0 dead, its destinations shift to the survivors: the
	// per-uplink destination spread becomes uneven.
	full, _ := FatTree(6)
	rFull, _ := ComputeLFT(full)
	deg, _ := FatTreeDegraded(6, DeadSpines(0))
	rDeg, _ := ComputeLFT(deg)

	counts := func(tp *Topology, r *Routing) map[int]int {
		leaf := NodeID(tp.NumHosts) // leaf0
		m := map[int]int{}
		for d := 0; d < tp.NumHosts; d++ {
			if d/3 == 0 {
				continue // local
			}
			m[r.OutPort(leaf, ib.LID(d))]++
		}
		return m
	}
	cFull, cDeg := counts(full, rFull), counts(deg, rDeg)
	if len(cFull) != 3 || len(cDeg) != 2 {
		t.Fatalf("uplinks used: full %v degraded %v", cFull, cDeg)
	}
	for port, n := range cDeg {
		if n <= cFull[port] {
			t.Fatalf("surviving uplink %d load did not rise: %d vs %d", port, n, cFull[port])
		}
	}
}

func TestFatTreeDegradedRejectsTotalFailure(t *testing.T) {
	if _, err := FatTreeDegraded(4, func(l, s int) bool { return true }); err == nil {
		t.Fatal("accepted fabric with no spine links")
	}
	if _, err := FatTreeDegraded(3, nil); err == nil {
		t.Fatal("accepted odd radix")
	}
	// nil skip degenerates to the full fat-tree.
	tp, err := FatTreeDegraded(4, nil)
	if err != nil || tp.NumHosts != 8 {
		t.Fatalf("nil skip: %v", err)
	}
}
