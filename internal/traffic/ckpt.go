package traffic

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/ib"
	"repro/internal/sim"
)

// streamState is one traffic class's generation cursor.
type streamState struct {
	Hotspot   bool  `json:"hotspot,omitempty"`
	Generated int64 `json:"generated"`
	Backlog   int   `json:"backlog"`
}

// flowState is one destination (QP) queue. Pkts are 1-based packet-table
// refs in queue order.
type flowState struct {
	Dst         int      `json:"dst"`
	Pkts        []int    `json:"pkts,omitempty"`
	NextAllowed sim.Time `json:"next_allowed,omitempty"`
}

// genState is the generator's full mutable state. Active preserves the
// round-robin order of the active list (dst per entry): the arbiter's
// lazy compaction makes that order part of the trajectory.
type genState struct {
	Streams   []streamState `json:"streams"`
	Flows     []flowState   `json:"flows,omitempty"`
	Active    []int         `json:"active,omitempty"`
	RR        int           `json:"rr,omitempty"`
	SLGate    sim.Time      `json:"sl_gate,omitempty"`
	NextMsgID uint64        `json:"next_msg_id,omitempty"`
	PktSeq    uint64        `json:"pkt_seq,omitempty"`
	RNG       [4]uint64     `json:"rng"`
}

// ExportState returns the generator's mutable state as a package-owned
// JSON blob, interning queued packets into tab. Flows are emitted
// sorted by destination; the active list's round-robin order is kept
// separately and exactly.
func (g *Generator) ExportState(tab *ckpt.PacketTable) ([]byte, error) {
	st := genState{
		Streams:   make([]streamState, len(g.streams)),
		RR:        g.rr,
		SLGate:    g.slGate,
		NextMsgID: g.nextMsgID,
		PktSeq:    g.pktSeq,
		RNG:       g.cfg.RNG.State(),
	}
	for i, s := range g.streams {
		st.Streams[i] = streamState{Hotspot: s.hotspot, Generated: s.generated, Backlog: s.backlog}
	}
	for dst, fl := range g.flows {
		fs := flowState{Dst: int(dst), NextAllowed: fl.nextAllowed}
		for _, p := range fl.q {
			fs.Pkts = append(fs.Pkts, tab.Ref(p))
		}
		st.Flows = append(st.Flows, fs)
	}
	sort.Slice(st.Flows, func(a, b int) bool { return st.Flows[a].Dst < st.Flows[b].Dst })
	for _, fl := range g.active {
		st.Active = append(st.Active, int(fl.dst))
	}
	return json.Marshal(&st)
}

// RestoreState overlays an exported blob onto a freshly built generator
// of the same config, resolving packet refs through tab.
func (g *Generator) RestoreState(blob []byte, tab *ckpt.PacketTable) error {
	var st genState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("traffic: decoding generator state: %w", err)
	}
	if len(st.Streams) != len(g.streams) {
		return fmt.Errorf("traffic: state has %d streams, generator has %d", len(st.Streams), len(g.streams))
	}
	for i, ss := range st.Streams {
		s := g.streams[i]
		if s.hotspot != ss.Hotspot {
			return fmt.Errorf("traffic: stream %d hotspot mismatch (state %v)", i, ss.Hotspot)
		}
		s.generated = ss.Generated
		s.backlog = ss.Backlog
	}
	g.flows = make(map[ib.LID]*flow, len(st.Flows))
	for _, fs := range st.Flows {
		fl := &flow{dst: ib.LID(fs.Dst), q: make([]*ib.Packet, 0, g.flowCap), nextAllowed: fs.NextAllowed}
		for _, ref := range fs.Pkts {
			if ref < 1 || ref > tab.Len() {
				return fmt.Errorf("traffic: flow %d references packet %d of %d", fs.Dst, ref, tab.Len())
			}
			fl.q = append(fl.q, tab.Packet(ref))
		}
		g.flows[fl.dst] = fl
	}
	g.active = g.active[:0]
	for _, dst := range st.Active {
		fl := g.flows[ib.LID(dst)]
		if fl == nil {
			return fmt.Errorf("traffic: active list references unknown flow %d", dst)
		}
		g.active = append(g.active, fl)
	}
	g.rr = st.RR
	g.slGate = st.SLGate
	g.nextMsgID = st.NextMsgID
	g.pktSeq = st.PktSeq
	g.cfg.RNG.SetState(st.RNG)
	return nil
}
