package traffic

import (
	"fmt"

	"repro/internal/ib"
	"repro/internal/sim"
)

// Throttle is the congestion-control injection-rate-delay oracle; the CC
// manager implements it. A nil Throttle means CC is off.
type Throttle interface {
	// IRD returns the delay to insert after a packet of the given wire
	// size on flow src→dst.
	IRD(src, dst ib.LID, wireBytes int) sim.Duration
}

// NodeConfig parameterizes one node's generator.
type NodeConfig struct {
	// LID is the sending node.
	LID ib.LID
	// NumNodes is the network size; uniform destinations are drawn from
	// [0, NumNodes) excluding LID.
	NumNodes int
	// PPercent is the hotspot share p of the offered load, 0–100.
	PPercent int
	// Hotspot supplies the hotspot destination; required when
	// PPercent > 0.
	Hotspot Targeter
	// InjectionRate is the node's total offered load (the paper's
	// nodes offer 13.5 Gbit/s, their maximum injection capacity).
	InjectionRate sim.Rate
	// MsgBytes is the application message size (default 4096 = two MTU
	// packets, as in all the paper's experiments).
	MsgBytes int
	// BacklogCap bounds, per stream, how many messages may sit in the
	// flow queues awaiting injection (default 8). It models the finite
	// set of outstanding work requests of a real HCA: enough to keep
	// unthrottled flows busy, small enough that a throttled flow's
	// backlog cannot grow without bound.
	BacklogCap int
	// Throttle applies CC injection delays; nil disables throttling.
	Throttle Throttle
	// SLThrottle applies the CC delay to the whole service level: one
	// shared injection gate spaces consecutive packets of the node
	// regardless of flow, modeling CC operating at the SL level
	// (paired with cc.Params.SLLevel). The default is per-QP gating.
	SLThrottle bool
	// HotspotVL carries the hotspot stream on this virtual lane
	// (uniform traffic stays on VL 0), modeling the set-aside-queue
	// family of congestion management the paper's introduction
	// contrasts with throttling: victim flows bypass the congestion
	// tree on their own lane while its root cause persists. The fabric
	// must be configured with enough VLs.
	HotspotVL ib.VL
	// Pool supplies packet memory; wire the network's pool
	// (fabric.Network.PacketPool) so the sink's releases feed the
	// generator's acquisitions and steady state allocates nothing. A
	// nil pool falls back to plain heap allocation.
	Pool *ib.PacketPool
	// RNG drives destination choice; required.
	RNG *sim.RNG
}

// stream is one of the node's two independently paced traffic classes.
type stream struct {
	rate      sim.Rate // budget accrual rate
	hotspot   bool
	generated int64 // bytes handed to flow queues since t=0
	backlog   int   // messages currently queued awaiting injection
}

// flow carries per-destination (QP) state: the queue of packets awaiting
// injection and the CC-imposed earliest next injection time.
type flow struct {
	dst         ib.LID
	q           []*ib.Packet
	nextAllowed sim.Time
}

// Generator implements fabric.Source for one node. It owns per-flow (QP)
// queues and schedules among them: a packet is eligible when its flow's
// CC delay has elapsed; eligible flows are served round-robin. The two
// streams refill the queues under their cumulative budgets, so hotspot
// and non-hotspot traffic stay independent per Frame I.
type Generator struct {
	cfg     NodeConfig
	streams []*stream
	flows   map[ib.LID]*flow
	active  []*flow // flows with queued packets, round-robin order
	rr      int
	// flowCap bounds any one flow's queue: every stream's full message
	// backlog aimed at the same destination. Queues are pre-sized to it
	// so steady state never grows them.
	flowCap int

	// slGate is the shared next-injection time under SLThrottle.
	slGate sim.Time

	nextMsgID uint64
	pktSeq    uint64
}

// NewGenerator validates cfg and builds the node's generator.
func NewGenerator(cfg NodeConfig) (*Generator, error) {
	if cfg.NumNodes < 2 {
		return nil, fmt.Errorf("traffic: need >= 2 nodes")
	}
	if cfg.PPercent < 0 || cfg.PPercent > 100 {
		return nil, fmt.Errorf("traffic: p = %d out of [0,100]", cfg.PPercent)
	}
	if cfg.PPercent > 0 && cfg.Hotspot == nil {
		return nil, fmt.Errorf("traffic: p > 0 requires a hotspot targeter")
	}
	if cfg.RNG == nil {
		return nil, fmt.Errorf("traffic: RNG required")
	}
	if cfg.InjectionRate <= 0 {
		return nil, fmt.Errorf("traffic: non-positive injection rate")
	}
	if cfg.MsgBytes == 0 {
		cfg.MsgBytes = ib.MessageBytes
	}
	if cfg.MsgBytes < 1 || cfg.MsgBytes > 64*ib.MTU {
		return nil, fmt.Errorf("traffic: message size %d out of range", cfg.MsgBytes)
	}
	if cfg.BacklogCap == 0 {
		cfg.BacklogCap = 8
	}
	if cfg.BacklogCap < 1 {
		return nil, fmt.Errorf("traffic: backlog cap must be positive")
	}
	g := &Generator{cfg: cfg, flows: make(map[ib.LID]*flow)}
	if cfg.PPercent > 0 {
		g.streams = append(g.streams, &stream{
			rate:    cfg.InjectionRate * sim.Rate(cfg.PPercent) / 100,
			hotspot: true,
		})
	}
	if cfg.PPercent < 100 {
		g.streams = append(g.streams, &stream{
			rate: cfg.InjectionRate * sim.Rate(100-cfg.PPercent) / 100,
		})
	}
	pktsPerMsg := (cfg.MsgBytes + ib.MTU - 1) / ib.MTU
	g.flowCap = cfg.BacklogCap * pktsPerMsg * len(g.streams)
	g.active = make([]*flow, 0, cfg.NumNodes-1)
	return g, nil
}

// GeneratedBytes returns the bytes each stream has handed to the flow
// queues (hotspot stream first when present); tests use it to verify the
// Frame I budget invariant.
func (g *Generator) GeneratedBytes() (hotspot, uniform int64) {
	for _, s := range g.streams {
		if s.hotspot {
			hotspot = s.generated
		} else {
			uniform = s.generated
		}
	}
	return
}

// PendingPackets returns how many generated packets sit in the flow
// queues awaiting injection. Together with the fabric's custody census
// it closes the packet conservation law the runtime invariant checker
// sweeps: every live pool packet is either here or held by the fabric.
func (g *Generator) PendingPackets() int {
	n := 0
	for _, fl := range g.flows {
		n += len(fl.q)
	}
	return n
}

// Pull implements fabric.Source.
func (g *Generator) Pull(now sim.Time) (*ib.Packet, sim.Time) {
	g.refill(now)

	// Round-robin over flows with queued packets whose CC delay has
	// elapsed. The active list is small: it holds at most the flows
	// with a queued backlog (bounded by the backlog caps).
	n := len(g.active)
	if n > 0 {
		g.rr %= n
	}
	for i := 0; i < n; i++ {
		k := (g.rr + i) % n
		fl := g.active[k]
		if len(fl.q) == 0 {
			// Lazily drop drained flows from the active list.
			g.active[k] = g.active[n-1]
			g.active = g.active[:n-1]
			n--
			i--
			if g.rr >= n && n > 0 {
				g.rr = 0
			}
			continue
		}
		if g.gate(fl).After(now) {
			continue
		}
		p := fl.q[0]
		copy(fl.q, fl.q[1:])
		fl.q[len(fl.q)-1] = nil
		fl.q = fl.q[:len(fl.q)-1]
		g.rr = k + 1
		if g.rr >= len(g.active) {
			g.rr = 0
		}
		// A message leaves the backlog when its last packet goes.
		if int(p.MsgSeq) == int(p.MsgPackets)-1 {
			g.streamOf(p).backlog--
		}
		delay := g.cfg.InjectionRate.TxTime(p.WireBytes())
		if g.cfg.Throttle != nil {
			delay += g.cfg.Throttle.IRD(g.cfg.LID, fl.dst, p.WireBytes())
		}
		if g.cfg.SLThrottle {
			g.slGate = now.Add(delay)
		} else {
			fl.nextAllowed = now.Add(delay)
		}
		return p, 0
	}

	return nil, g.nextWake(now)
}

// gate returns the earliest injection time applying to fl: the shared
// service-level gate under SLThrottle, the flow's own otherwise.
func (g *Generator) gate(fl *flow) sim.Time {
	if g.cfg.SLThrottle {
		return g.slGate
	}
	return fl.nextAllowed
}

// streamOf maps a packet back to the stream that generated it.
func (g *Generator) streamOf(p *ib.Packet) *stream {
	for _, s := range g.streams {
		if s.hotspot == p.Hotspot {
			return s
		}
	}
	panic("traffic: packet from unknown stream")
}

// refill lets each stream generate messages its cumulative budget and
// backlog cap allow at the current time.
func (g *Generator) refill(now sim.Time) {
	for _, s := range g.streams {
		for s.backlog < g.cfg.BacklogCap && s.generated <= s.rate.BytesIn(now.Sub(0)) {
			if !g.generate(s, now) {
				break
			}
		}
	}
}

// generate creates one message on stream s and queues its packets on the
// destination's flow. It reports false when no destination is available
// (the hotspot targeter pointed at the node itself).
func (g *Generator) generate(s *stream, now sim.Time) bool {
	var dst ib.LID
	if s.hotspot {
		dst = g.cfg.Hotspot.Target(now)
		if dst == g.cfg.LID {
			// A node cannot be its own hotspot; it stays idle for
			// this slot (the budget keeps accruing).
			return false
		}
	} else {
		r := g.cfg.RNG.Intn(g.cfg.NumNodes - 1)
		if r >= int(g.cfg.LID) {
			r++
		}
		dst = ib.LID(r)
	}
	fl := g.flows[dst]
	if fl == nil {
		fl = &flow{dst: dst, q: make([]*ib.Packet, 0, g.flowCap)}
		g.flows[dst] = fl
	}
	if len(fl.q) == 0 {
		g.active = append(g.active, fl)
	}
	msgID := g.nextMsgID
	g.nextMsgID++
	remaining := g.cfg.MsgBytes
	var nPkts uint8
	for remaining > 0 {
		nPkts++
		remaining -= min(remaining, ib.MTU)
	}
	var vl ib.VL
	if s.hotspot {
		vl = g.cfg.HotspotVL
	}
	remaining = g.cfg.MsgBytes
	for seq := uint8(0); seq < nPkts; seq++ {
		size := min(remaining, ib.MTU)
		remaining -= size
		p := g.cfg.Pool.Get()
		p.ID = g.pktSeq
		p.Type = ib.DataPacket
		p.Src = g.cfg.LID
		p.Dst = dst
		p.VL = vl
		p.SL = ib.SL(vl)
		p.PayloadBytes = size
		p.Hotspot = s.hotspot
		p.MsgID = msgID
		p.MsgSeq = seq
		p.MsgPackets = nPkts
		fl.q = append(fl.q, p)
		g.pktSeq++
	}
	s.generated += int64(g.cfg.MsgBytes)
	s.backlog++
	return true
}

// nextWake computes the earliest future instant anything can become
// eligible: a queued flow's CC delay expiring, a stream's budget
// allowing its next message, or a moving hotspot slot boundary freeing a
// self-targeted stream.
func (g *Generator) nextWake(now sim.Time) sim.Time {
	wake := sim.MaxTime
	for _, fl := range g.active {
		if t := g.gate(fl); len(fl.q) > 0 && t.After(now) && t.Before(wake) {
			wake = t
		}
	}
	for _, s := range g.streams {
		if s.backlog >= g.cfg.BacklogCap {
			continue // replenished by a later Pull draining the queue
		}
		t := sim.Time(0).Add(s.rate.TxTime(int(s.generated)))
		if !t.After(now) {
			if s.generated <= s.rate.BytesIn(now.Sub(0)) {
				// Budget is available now but generate() declined —
				// the hotspot points at this node; retry at the slot
				// change (a static self-target never clears).
				if mt, ok := g.cfg.Hotspot.(*MovingTarget); ok && s.hotspot {
					t = mt.SlotEnd(now)
				} else {
					continue
				}
			} else {
				// TxTime rounding placed the crossing a hair before
				// the true budget boundary; nudge past it.
				t = now.Add(sim.Picosecond)
			}
		}
		if t.Before(wake) {
			wake = t
		}
	}
	return wake
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
