package traffic

import (
	"testing"
	"testing/quick"

	"repro/internal/ib"
	"repro/internal/sim"
)

func baseCfg(p int) NodeConfig {
	return NodeConfig{
		LID:           0,
		NumNodes:      16,
		PPercent:      p,
		Hotspot:       StaticTarget(5),
		InjectionRate: ib.DefaultInjectionRate(),
		RNG:           sim.NewRNG(42),
	}
}

func mustGen(t *testing.T, cfg NodeConfig) *Generator {
	t.Helper()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// drain pulls every packet eligible at successive instants spaced by the
// injection time, emulating a fabric that never backpressures.
func drain(g *Generator, until sim.Time) []*ib.Packet {
	var out []*ib.Packet
	now := sim.Time(0)
	for now <= until {
		p, wake := g.Pull(now)
		if p != nil {
			out = append(out, p)
			now = now.Add(ib.DefaultInjectionRate().TxTime(p.WireBytes()))
			continue
		}
		if wake == sim.MaxTime || wake > until {
			break
		}
		now = wake
	}
	return out
}

func TestNewGeneratorValidation(t *testing.T) {
	cases := []func(*NodeConfig){
		func(c *NodeConfig) { c.NumNodes = 1 },
		func(c *NodeConfig) { c.PPercent = -1 },
		func(c *NodeConfig) { c.PPercent = 101 },
		func(c *NodeConfig) { c.Hotspot = nil }, // p>0 without targeter
		func(c *NodeConfig) { c.RNG = nil },
		func(c *NodeConfig) { c.InjectionRate = 0 },
		func(c *NodeConfig) { c.MsgBytes = -1 },
		func(c *NodeConfig) { c.MsgBytes = 65 * ib.MTU },
		func(c *NodeConfig) { c.BacklogCap = -1 },
	}
	for i, mut := range cases {
		cfg := baseCfg(50)
		mut(&cfg)
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// p == 0 without a targeter is fine.
	cfg := baseCfg(0)
	cfg.Hotspot = nil
	mustGen(t, cfg)
}

func TestPureUniformNode(t *testing.T) {
	g := mustGen(t, baseCfg(0))
	pkts := drain(g, sim.Time(2*sim.Millisecond))
	if len(pkts) == 0 {
		t.Fatal("no packets")
	}
	counts := map[ib.LID]int{}
	for _, p := range pkts {
		if p.Hotspot {
			t.Fatal("p=0 node produced hotspot traffic")
		}
		if p.Dst == 0 {
			t.Fatal("node sent to itself")
		}
		if p.Src != 0 {
			t.Fatal("wrong source")
		}
		counts[p.Dst]++
	}
	// All 15 other nodes must be hit by a 2ms full-rate uniform stream.
	if len(counts) != 15 {
		t.Fatalf("uniform stream reached %d destinations, want 15", len(counts))
	}
}

func TestPureHotspotNode(t *testing.T) {
	g := mustGen(t, baseCfg(100))
	pkts := drain(g, sim.Time(1*sim.Millisecond))
	if len(pkts) == 0 {
		t.Fatal("no packets")
	}
	for _, p := range pkts {
		if !p.Hotspot || p.Dst != 5 {
			t.Fatalf("C node produced %v", p)
		}
	}
}

func TestFullRateOfferedLoad(t *testing.T) {
	// An unthrottled, unbackpressured node must offer exactly its
	// injection rate (within one message of pacing).
	for _, p := range []int{0, 30, 50, 100} {
		g := mustGen(t, baseCfg(p))
		until := sim.Time(5 * sim.Millisecond)
		pkts := drain(g, until)
		var bytes int64
		for _, pk := range pkts {
			bytes += int64(pk.PayloadBytes)
		}
		want := ib.DefaultInjectionRate().BytesIn(until.Sub(0))
		// Wire overhead makes goodput slightly lower than the budget
		// accrual; allow 5%.
		if f := float64(bytes) / float64(want); f < 0.90 || f > 1.01 {
			t.Errorf("p=%d: offered %d of budget %d (%.2f)", p, bytes, want, f)
		}
	}
}

// Property: Frame I budget invariant — at any time, each stream has
// generated at most its rate share times elapsed time plus one message.
func TestBudgetInvariantProperty(t *testing.T) {
	f := func(pRaw uint8, steps []uint16) bool {
		p := int(pRaw) % 101
		cfg := baseCfg(p)
		g, err := NewGenerator(cfg)
		if err != nil {
			return false
		}
		now := sim.Time(0)
		hotRate := cfg.InjectionRate * sim.Rate(p) / 100
		uniRate := cfg.InjectionRate * sim.Rate(100-p) / 100
		for _, s := range steps {
			pk, wake := g.Pull(now)
			hot, uni := g.GeneratedBytes()
			slack := int64(ib.MessageBytes)
			if hot > hotRate.BytesIn(now.Sub(0))+slack {
				return false
			}
			if uni > uniRate.BytesIn(now.Sub(0))+slack {
				return false
			}
			if pk == nil && wake != sim.MaxTime && wake <= now {
				return false // wake must be in the future
			}
			now = now.Add(sim.Duration(s) * sim.Nanosecond)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamsShareByP(t *testing.T) {
	g := mustGen(t, baseCfg(60))
	drain(g, sim.Time(10*sim.Millisecond))
	hot, uni := g.GeneratedBytes()
	total := hot + uni
	share := float64(hot) / float64(total)
	if share < 0.58 || share > 0.62 {
		t.Fatalf("hotspot share = %.3f, want ~0.60", share)
	}
}

// hugeIRD throttles the hotspot destination only.
type hugeIRD struct{ dst ib.LID }

func (h hugeIRD) IRD(src, dst ib.LID, wire int) sim.Duration {
	if dst == h.dst {
		return sim.Second
	}
	return 0
}

func TestThrottledFlowDoesNotBlockOthers(t *testing.T) {
	// In a large network (so uniform messages rarely target the
	// throttled hotspot), stalling the hotspot flow must leave the
	// uniform stream's share untouched — the Frame I independence
	// requirement.
	cfg := baseCfg(50)
	cfg.NumNodes = 648
	cfg.Throttle = hugeIRD{dst: 5}
	g := mustGen(t, cfg)
	until := sim.Time(5 * sim.Millisecond)
	pkts := drain(g, until)
	var hotPkts, uniPkts int
	for _, p := range pkts {
		if p.Hotspot {
			hotPkts++
		} else {
			uniPkts++
		}
	}
	// The hotspot flow emits its first message then stalls for 1s.
	if hotPkts > 2 {
		t.Fatalf("throttled flow emitted %d packets", hotPkts)
	}
	// The uniform stream must still deliver its full half share:
	// 13.5G/2 over 5ms ≈ 4.2 MB ≈ 1030 two-packet messages.
	uniBytes := int64(uniPkts) * int64(ib.MTU)
	want := (cfg.InjectionRate / 2).BytesIn(until.Sub(0))
	if f := float64(uniBytes) / float64(want); f < 0.90 {
		t.Fatalf("uniform stream achieved only %.2f of its share", f)
	}
}

func TestFiniteBacklogSlotsExhaustUnderPathologicalThrottle(t *testing.T) {
	// With few destinations, uniform messages regularly target the
	// infinitely-throttled hotspot and pin backlog slots, eventually
	// stalling the stream — the documented finite-WQE behaviour of the
	// generator model.
	cfg := baseCfg(50)
	cfg.NumNodes = 4
	cfg.BacklogCap = 2
	cfg.Throttle = hugeIRD{dst: 5}
	cfg.Hotspot = StaticTarget(3)
	cfg.Throttle = hugeIRD{dst: 3}
	g := mustGen(t, cfg)
	pkts := drain(g, sim.Time(5*sim.Millisecond))
	uni := 0
	for _, p := range pkts {
		if !p.Hotspot {
			uni++
		}
	}
	// The stream must stall long before delivering its full share
	// (~1030 messages).
	if uni > 600 {
		t.Fatalf("uniform stream delivered %d packets despite slot exhaustion", uni)
	}
}

func TestSLThrottleGatesAllFlows(t *testing.T) {
	// Under SL-level throttling, one congested destination's IRD must
	// pace the whole node: unlike the QP-level test above, the uniform
	// stream collapses with the hotspot flow.
	cfg := baseCfg(50)
	cfg.NumNodes = 648
	cfg.SLThrottle = true
	cfg.Throttle = hugeIRD{dst: 5}
	g := mustGen(t, cfg)
	until := sim.Time(5 * sim.Millisecond)
	pkts := drain(g, until)
	// The first hotspot packet arms a 1s shared gate; nothing else may
	// leave this node within the window (at most the few packets sent
	// before the hotspot flow is scheduled).
	if len(pkts) > 4 {
		t.Fatalf("SL gate leaked %d packets", len(pkts))
	}
}

func TestSLThrottleUnthrottledBehavesNormally(t *testing.T) {
	cfg := baseCfg(50)
	cfg.SLThrottle = true // no Throttle attached: gate is just pacing
	g := mustGen(t, cfg)
	pkts := drain(g, sim.Time(2*sim.Millisecond))
	var bytes int64
	for _, p := range pkts {
		bytes += int64(p.PayloadBytes)
	}
	want := cfg.InjectionRate.BytesIn(2 * sim.Millisecond)
	if f := float64(bytes) / float64(want); f < 0.90 || f > 1.01 {
		t.Fatalf("SL-gated node offered %.2f of its rate", f)
	}
}

func TestBacklogCapBoundsQueues(t *testing.T) {
	// Throttle everything: after the caps fill, generation must stop.
	cfg := baseCfg(50)
	cfg.BacklogCap = 3
	cfg.Throttle = hugeIRD{dst: 5}
	g := mustGen(t, cfg)
	// Make the uniform stream unthrottled but never pull packets:
	// repeatedly call Pull at t=0 only.
	p, _ := g.Pull(0)
	if p == nil {
		t.Fatal("first pull empty")
	}
	for i := 0; i < 100; i++ {
		g.Pull(0) // no time passes; budgets don't grow
	}
	hot, uni := g.GeneratedBytes()
	capBytes := int64(3 * ib.MessageBytes)
	if hot > capBytes || uni > capBytes {
		t.Fatalf("backlog cap breached: hot=%d uni=%d cap=%d", hot, uni, capBytes)
	}
}

func TestPacketization(t *testing.T) {
	cases := []struct {
		msgBytes int
		sizes    []int
	}{
		{4096, []int{2048, 2048}},
		{2048, []int{2048}},
		{5000, []int{2048, 2048, 904}},
		{100, []int{100}},
	}
	for _, c := range cases {
		cfg := baseCfg(100)
		cfg.MsgBytes = c.msgBytes
		g := mustGen(t, cfg)
		var pkts []*ib.Packet
		now := sim.Time(0)
		for len(pkts) < len(c.sizes) {
			p, wake := g.Pull(now)
			if p == nil {
				now = wake
				continue
			}
			pkts = append(pkts, p)
		}
		for i, p := range pkts {
			if p.PayloadBytes != c.sizes[i] {
				t.Errorf("msg %d pkt %d: %d bytes, want %d", c.msgBytes, i, p.PayloadBytes, c.sizes[i])
			}
			if int(p.MsgPackets) != len(c.sizes) || int(p.MsgSeq) != i {
				t.Errorf("msg %d pkt %d: seq %d/%d", c.msgBytes, i, p.MsgSeq, p.MsgPackets)
			}
			if p.MsgID != 0 {
				t.Errorf("first message ID = %d", p.MsgID)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	seq := func() []ib.LID {
		cfg := baseCfg(30)
		cfg.RNG = sim.NewRNG(7)
		g := mustGen(t, cfg)
		var dsts []ib.LID
		for _, p := range drain(g, sim.Time(sim.Millisecond)) {
			dsts = append(dsts, p.Dst)
		}
		return dsts
	}
	a, b := seq(), seq()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestStaticTarget(t *testing.T) {
	if StaticTarget(9).Target(sim.Time(12345)) != 9 {
		t.Fatal("static target moved")
	}
}

func TestMovingTargetSlots(t *testing.T) {
	mt := &MovingTarget{Lifetime: sim.Millisecond, Seq: []ib.LID{3, 7, 11}}
	cases := []struct {
		at   sim.Time
		want ib.LID
	}{
		{0, 3},
		{sim.Time(sim.Millisecond) - 1, 3},
		{sim.Time(sim.Millisecond), 7},
		{sim.Time(2 * sim.Millisecond), 11},
		{sim.Time(3 * sim.Millisecond), 3}, // cycles
	}
	for _, c := range cases {
		if got := mt.Target(c.at); got != c.want {
			t.Errorf("Target(%v) = %d, want %d", c.at, got, c.want)
		}
	}
	if got := mt.SlotEnd(sim.Time(1500 * sim.Microsecond)); got != sim.Time(2*sim.Millisecond) {
		t.Errorf("SlotEnd = %v", got)
	}
	if got := mt.SlotEnd(0); got != sim.Time(sim.Millisecond) {
		t.Errorf("SlotEnd(0) = %v", got)
	}
}

func TestNewMovingTargetRandom(t *testing.T) {
	rng := sim.NewRNG(3)
	mt := NewMovingTarget(sim.Millisecond, 100, 648, rng)
	seen := map[ib.LID]bool{}
	for _, l := range mt.Seq {
		if l < 0 || l >= 648 {
			t.Fatalf("target %d out of range", l)
		}
		seen[l] = true
	}
	if len(seen) < 50 {
		t.Fatalf("only %d distinct targets in 100 slots", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad args")
		}
	}()
	NewMovingTarget(0, 1, 10, rng)
}

func TestSelfTargetedSlotIdles(t *testing.T) {
	// Slot 0 targets the node itself: the hotspot stream must stay
	// silent during it and resume in slot 1.
	cfg := baseCfg(100)
	cfg.Hotspot = &MovingTarget{Lifetime: sim.Millisecond, Seq: []ib.LID{0, 5}}
	g := mustGen(t, cfg)

	p, wake := g.Pull(0)
	if p != nil {
		t.Fatal("emitted while self-targeted")
	}
	if wake != sim.Time(sim.Millisecond) {
		t.Fatalf("wake = %v, want the slot boundary", wake)
	}
	pkts := drain(g, sim.Time(2*sim.Millisecond-1))
	if len(pkts) == 0 {
		t.Fatal("never resumed after self-targeted slot")
	}
	for _, pk := range pkts {
		if pk.Dst != 5 {
			t.Fatalf("packet to %d during slot 1", pk.Dst)
		}
	}
}

func TestMovingTargetChangesDestinations(t *testing.T) {
	cfg := baseCfg(100)
	cfg.Hotspot = &MovingTarget{Lifetime: 500 * sim.Microsecond, Seq: []ib.LID{2, 9, 13}}
	g := mustGen(t, cfg)
	byDst := map[ib.LID]int{}
	for _, p := range drain(g, sim.Time(1490*sim.Microsecond)) {
		byDst[p.Dst]++
	}
	for _, want := range []ib.LID{2, 9, 13} {
		if byDst[want] == 0 {
			t.Fatalf("hotspot %d never targeted: %v", want, byDst)
		}
	}
	if len(byDst) != 3 {
		t.Fatalf("unexpected destinations: %v", byDst)
	}
}

func TestMovingBudgetContinuity(t *testing.T) {
	// A hotspot move must not reset or double the hotspot budget: the
	// total hotspot bytes over a window spanning several slots stays
	// within the Frame I bound.
	cfg := baseCfg(70)
	cfg.Hotspot = &MovingTarget{Lifetime: 300 * sim.Microsecond, Seq: []ib.LID{2, 9, 13, 4}}
	g := mustGen(t, cfg)
	until := sim.Time(2 * sim.Millisecond)
	drain(g, until)
	hot, uni := g.GeneratedBytes()
	hotCap := (cfg.InjectionRate * 70 / 100).BytesIn(until.Sub(0)) + int64(ib.MessageBytes)
	uniCap := (cfg.InjectionRate * 30 / 100).BytesIn(until.Sub(0)) + int64(ib.MessageBytes)
	if hot > hotCap {
		t.Fatalf("hotspot stream over budget across moves: %d > %d", hot, hotCap)
	}
	if uni > uniCap {
		t.Fatalf("uniform stream over budget: %d > %d", uni, uniCap)
	}
	// And the stream must actually use most of its budget (no stall at
	// slot boundaries).
	if float64(hot) < 0.9*float64(hotCap) {
		t.Fatalf("hotspot stream stalled across moves: %d of %d", hot, hotCap)
	}
}

func TestHotspotVLAssignment(t *testing.T) {
	cfg := baseCfg(50)
	cfg.HotspotVL = 1
	g := mustGen(t, cfg)
	pkts := drain(g, sim.Time(sim.Millisecond))
	var sawHot, sawUni bool
	for _, p := range pkts {
		if p.Hotspot {
			sawHot = true
			if p.VL != 1 || p.SL != 1 {
				t.Fatalf("hotspot packet on VL %d SL %d", p.VL, p.SL)
			}
		} else {
			sawUni = true
			if p.VL != 0 {
				t.Fatalf("uniform packet on VL %d", p.VL)
			}
		}
	}
	if !sawHot || !sawUni {
		t.Fatal("both streams must emit")
	}
}

func TestGeneratedBytesAccessors(t *testing.T) {
	g := mustGen(t, baseCfg(100))
	if h, u := g.GeneratedBytes(); h != 0 || u != 0 {
		t.Fatal("fresh generator generated bytes")
	}
	g.Pull(0)
	if h, _ := g.GeneratedBytes(); h == 0 {
		t.Fatal("no hotspot bytes after pull")
	}
}
