// Package traffic implements the study's workload generators. Every end
// node is a generalized B node that directs p% of its offered load at a
// hotspot and the remaining (1−p)% at uniformly random destinations; the
// paper's C nodes are p=100 and its V nodes p=0. Generation follows
// Frame I of the paper: the hotspot and non-hotspot streams are paced by
// independent cumulative budgets tied to simulation time (never to each
// other), so neither stream can exceed its fraction of the offered load
// and non-hotspot traffic is never head-of-line blocked inside the
// generator when hotspot traffic is throttled.
package traffic

import (
	"fmt"

	"repro/internal/ib"
	"repro/internal/sim"
)

// Targeter yields the hotspot destination a node's hotspot stream aims
// at, as a function of time. Implementations must be deterministic.
type Targeter interface {
	// Target returns the hotspot LID at the given instant.
	Target(now sim.Time) ib.LID
}

// StaticTarget is a fixed hotspot (silent and windy forests).
type StaticTarget ib.LID

// Target implements Targeter.
func (s StaticTarget) Target(sim.Time) ib.LID { return ib.LID(s) }

// MovingTarget cycles through a precomputed sequence of hotspots, one
// per lifetime slot — the moving congestion trees of section III-C. All
// members of a contributor subset share one MovingTarget so they change
// focus simultaneously at each slot boundary.
type MovingTarget struct {
	// Lifetime is the duration of each hotspot.
	Lifetime sim.Duration
	// Seq is the hotspot for each consecutive slot, cycled when the
	// simulation outlives it.
	Seq []ib.LID
}

// NewMovingTarget draws a hotspot sequence of the given length uniformly
// at random over the nodes of the network.
func NewMovingTarget(lifetime sim.Duration, slots, numNodes int, rng *sim.RNG) *MovingTarget {
	if slots < 1 || lifetime <= 0 {
		panic("traffic: moving target needs slots >= 1 and positive lifetime")
	}
	seq := make([]ib.LID, slots)
	for i := range seq {
		seq[i] = ib.LID(rng.Intn(numNodes))
	}
	return &MovingTarget{Lifetime: lifetime, Seq: seq}
}

// Target implements Targeter.
func (m *MovingTarget) Target(now sim.Time) ib.LID {
	slot := int(int64(now) / int64(m.Lifetime))
	return m.Seq[slot%len(m.Seq)]
}

// SlotEnd returns when the hotspot active at now expires.
func (m *MovingTarget) SlotEnd(now sim.Time) sim.Time {
	slot := int64(now)/int64(m.Lifetime) + 1
	return sim.Time(slot * int64(m.Lifetime))
}

func (m *MovingTarget) String() string {
	return fmt.Sprintf("moving(%v x%d)", m.Lifetime, len(m.Seq))
}
