// Package obs is the simulation flight recorder: a typed event bus the
// fabric and the congestion-control manager publish to, plus consumers
// that turn the event stream into artifacts — per-switch-port counters,
// a JSONL event log, a Chrome trace_event export viewable in Perfetto,
// and a congestion-tree analyzer that labels contributor and victim
// flows from the FECN topology.
//
// The bus is built so that a simulation with observability disabled pays
// nothing for it: every publish helper is a method on a possibly-nil
// *Bus that returns before constructing the event unless the kind has a
// subscriber, so the packet-forward hot path adds a nil check and a
// mask test but no allocation (BenchmarkBusDisabled asserts this).
package obs

import (
	"fmt"

	"repro/internal/ib"
	"repro/internal/sim"
)

// Kind enumerates the event types the simulation publishes.
type Kind uint8

const (
	// KindPacketSent fires when a link transmitter (HCA send port or
	// switch output port) puts a packet on the wire.
	KindPacketSent Kind = iota
	// KindPacketDelivered fires when a host sink consumes a packet.
	KindPacketDelivered
	// KindFECNMarked fires when the CC manager FECN-marks a data packet
	// at a switch output Port VL.
	KindFECNMarked
	// KindBECNReturned fires when a source CA consumes a BECN (the end
	// of the FECN→CNP/ACK→BECN notification loop).
	KindBECNReturned
	// KindCCTIChanged fires when a flow's congestion control table
	// index moves: up on a BECN, down on a recovery-timer tick.
	KindCCTIChanged
	// KindCreditStalled fires when a transmitter has a packet ready but
	// the downstream VL lacks credits for it — one event per failed
	// grant attempt, so a long stall under event pressure repeats.
	KindCreditStalled
	// KindQueueSampled fires when a switch output Port VL's queued-byte
	// count changes (a packet joins or leaves), carrying the new depth.
	KindQueueSampled
	// KindLinkDown fires when the fault layer takes a transmitter down
	// (a link flap or a switch-port stall beginning).
	KindLinkDown
	// KindLinkUp fires when a downed transmitter comes back.
	KindLinkUp
	// KindPacketDropped fires when the fault layer discards a packet at
	// the end of its wire flight (PktID > 0, full packet identity) or a
	// flow-control credit update (PktID 0, CreditBytes = lost credit).
	KindPacketDropped
	// KindMsgCompleted fires when a host sink consumes the final packet
	// of an application message — the per-message completion signal the
	// telemetry layer feeds its completion-time histogram from. The
	// event carries the last packet's identity; Time − Inject is that
	// packet's network latency, and the message's own span starts at
	// the Inject of its MsgSeq-0 packet.
	KindMsgCompleted

	// NumKinds is the number of event kinds. Kinds are strictly
	// appended (the fault kinds after the original seven, the telemetry
	// kinds after those) so that recorded streams of the earlier kinds
	// keep their digests; obs.Digest additionally excludes kinds beyond
	// digestKindLimit, pinning the golden trajectories for good.
	NumKinds
)

func (k Kind) String() string {
	switch k {
	case KindPacketSent:
		return "packet_sent"
	case KindPacketDelivered:
		return "packet_delivered"
	case KindFECNMarked:
		return "fecn_marked"
	case KindBECNReturned:
		return "becn_returned"
	case KindCCTIChanged:
		return "ccti_changed"
	case KindCreditStalled:
		return "credit_stalled"
	case KindQueueSampled:
		return "queue_sampled"
	case KindLinkDown:
		return "link_down"
	case KindLinkUp:
		return "link_up"
	case KindPacketDropped:
		return "packet_dropped"
	case KindMsgCompleted:
		return "msg_completed"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one flight-recorder record. It is a flat value struct —
// consumers receive it by value, so publishing never allocates. Fields
// beyond Kind and Time are populated per kind; see the publish helpers.
type Event struct {
	Kind Kind
	// Switch reports whether the location is a switch (Node = dense
	// switch index) or a host (Node = LID, Port 0).
	Switch bool
	// Hotspot mirrors the packet's hotspot-destination marker.
	Hotspot bool
	// HostPort reports, for switch-port events, whether the port faces
	// an HCA (where congestion-tree roots form).
	HostPort bool
	// FECN/BECN mirror the packet's notification bits at event time.
	FECN, BECN bool
	Type       ib.PacketType
	VL         ib.VL

	Time sim.Time
	Node int
	Port int

	// Packet identity, for packet-scoped kinds.
	PktID    uint64
	Src, Dst ib.LID
	// Bytes is the packet's wire size (or the bytes a stalled grant
	// needed).
	Bytes int

	// QueuedBytes is the output Port VL queue depth: the depth joined
	// (after enqueue) or left behind (after departure) for
	// KindQueueSampled, and the depth that triggered the mark for
	// KindFECNMarked.
	QueuedBytes int
	// CreditBytes is the downstream free space known to the
	// transmitter (KindFECNMarked, KindCreditStalled).
	CreditBytes int

	// OldCCTI and NewCCTI bracket a KindCCTIChanged step.
	OldCCTI, NewCCTI uint16

	// Inject is when the packet's first byte entered the source HCA
	// port (packet-scoped kinds); Time − Inject is its network latency.
	Inject sim.Time
	// MsgID, MsgSeq and MsgPackets identify the packet's position in
	// its application message (packet-scoped kinds).
	MsgID              uint64
	MsgSeq, MsgPackets uint8
}

// Flow returns the event's flow identity.
func (e *Event) Flow() ib.FlowKey { return ib.FlowKey{Src: e.Src, Dst: e.Dst} }

// Consumer receives published events. Consume runs synchronously inside
// the simulation event that published; it must not mutate model state.
type Consumer interface {
	Consume(e Event)
}

// ConsumerFunc adapts a function to the Consumer interface.
type ConsumerFunc func(e Event)

// Consume implements Consumer.
func (f ConsumerFunc) Consume(e Event) { f(e) }

// Bus fans events out to subscribers, dispatching per kind. The zero
// value is usable; a nil *Bus is a valid always-disabled bus, which is
// how a simulation runs unobserved.
type Bus struct {
	mask uint32
	subs [NumKinds][]Consumer
}

// New returns an empty bus.
func New() *Bus { return &Bus{} }

// Subscribe registers c for the given kinds (all kinds when none are
// given). Subscription order is delivery order.
func (b *Bus) Subscribe(c Consumer, kinds ...Kind) {
	if len(kinds) == 0 {
		for k := Kind(0); k < NumKinds; k++ {
			kinds = append(kinds, k)
		}
	}
	for _, k := range kinds {
		b.subs[k] = append(b.subs[k], c)
		b.mask |= 1 << k
	}
}

// Wants reports whether any subscriber listens for kind k. Publishers
// with expensive event construction may use it to skip work; the
// standard helpers below already check it.
func (b *Bus) Wants(k Kind) bool { return b != nil && b.mask&(1<<k) != 0 }

// Publish delivers e to the subscribers of its kind.
func (b *Bus) Publish(e Event) {
	for _, c := range b.subs[e.Kind] {
		c.Consume(e)
	}
}

// packet copies the identity fields of p into e.
func (e *Event) packet(p *ib.Packet) {
	e.PktID = p.ID
	e.Src, e.Dst = p.Src, p.Dst
	e.Type = p.Type
	e.VL = p.VL
	e.Bytes = p.WireBytes()
	e.FECN, e.BECN = p.FECN, p.BECN
	e.Hotspot = p.Hotspot
	e.Inject = p.InjectTime
	e.MsgID, e.MsgSeq, e.MsgPackets = p.MsgID, p.MsgSeq, p.MsgPackets
}

// PacketSent publishes a wire transmission at (node, port); sw selects
// the switch/host namespace for node.
func (b *Bus) PacketSent(t sim.Time, sw bool, node, port int, p *ib.Packet) {
	if b == nil || b.mask&(1<<KindPacketSent) == 0 {
		return
	}
	e := Event{Kind: KindPacketSent, Time: t, Switch: sw, Node: node, Port: port}
	e.packet(p)
	b.Publish(e)
}

// PacketDelivered publishes a sink consumption at host lid.
func (b *Bus) PacketDelivered(t sim.Time, lid ib.LID, p *ib.Packet) {
	if b == nil || b.mask&(1<<KindPacketDelivered) == 0 {
		return
	}
	e := Event{Kind: KindPacketDelivered, Time: t, Node: int(lid)}
	e.packet(p)
	b.Publish(e)
}

// FECNMarked publishes a FECN mark of p at switch sw port out, with the
// queue depth and credit state that triggered it.
func (b *Bus) FECNMarked(t sim.Time, sw, out int, hostPort bool, p *ib.Packet, queued, credits int) {
	if b == nil || b.mask&(1<<KindFECNMarked) == 0 {
		return
	}
	e := Event{
		Kind: KindFECNMarked, Time: t, Switch: true, Node: sw, Port: out,
		HostPort: hostPort, QueuedBytes: queued, CreditBytes: credits,
	}
	e.packet(p)
	b.Publish(e)
}

// BECNReturned publishes the consumption of a BECN at source CA src,
// throttling flow src→dst.
func (b *Bus) BECNReturned(t sim.Time, src, dst ib.LID, p *ib.Packet) {
	if b == nil || b.mask&(1<<KindBECNReturned) == 0 {
		return
	}
	e := Event{Kind: KindBECNReturned, Time: t, Node: int(src), Src: src, Dst: dst}
	if p != nil {
		e.PktID, e.Type, e.VL = p.ID, p.Type, p.VL
		e.Bytes = p.WireBytes()
		e.FECN, e.BECN = p.FECN, p.BECN
	}
	b.Publish(e)
}

// CCTIChanged publishes a CCTI step of flow src→dst from old to new.
// dst is the CA table key: the destination LID at QP-level CC, or -1
// when CC operates per service level.
func (b *Bus) CCTIChanged(t sim.Time, src, dst ib.LID, old, new uint16) {
	if b == nil || b.mask&(1<<KindCCTIChanged) == 0 {
		return
	}
	b.Publish(Event{
		Kind: KindCCTIChanged, Time: t, Node: int(src), Src: src, Dst: dst,
		OldCCTI: old, NewCCTI: new,
	})
}

// CreditStalled publishes a failed grant: the transmitter at
// (node, port) held a packet of wire size need on vl but only credits
// bytes of downstream space.
func (b *Bus) CreditStalled(t sim.Time, sw bool, node, port int, vl ib.VL, credits, need int) {
	if b == nil || b.mask&(1<<KindCreditStalled) == 0 {
		return
	}
	b.Publish(Event{
		Kind: KindCreditStalled, Time: t, Switch: sw, Node: node, Port: port,
		VL: vl, CreditBytes: credits, Bytes: need,
	})
}

// LinkDown publishes a transmitter going down at (node, port); sw
// selects the switch/host namespace for node.
func (b *Bus) LinkDown(t sim.Time, sw bool, node, port int) {
	if b == nil || b.mask&(1<<KindLinkDown) == 0 {
		return
	}
	b.Publish(Event{Kind: KindLinkDown, Time: t, Switch: sw, Node: node, Port: port})
}

// LinkUp publishes a transmitter coming back up at (node, port).
func (b *Bus) LinkUp(t sim.Time, sw bool, node, port int) {
	if b == nil || b.mask&(1<<KindLinkUp) == 0 {
		return
	}
	b.Publish(Event{Kind: KindLinkUp, Time: t, Switch: sw, Node: node, Port: port})
}

// PacketDropped publishes a fault-layer discard at transmitter
// (node, port). A nil p records a dropped credit update instead: vl and
// bytes describe the lost flow-control update and CreditBytes doubles as
// the credit marker.
func (b *Bus) PacketDropped(t sim.Time, sw bool, node, port int, p *ib.Packet, vl ib.VL, bytes int) {
	if b == nil || b.mask&(1<<KindPacketDropped) == 0 {
		return
	}
	e := Event{Kind: KindPacketDropped, Time: t, Switch: sw, Node: node, Port: port}
	if p != nil {
		e.packet(p)
	} else {
		e.VL, e.Bytes, e.CreditBytes = vl, bytes, bytes
	}
	b.Publish(e)
}

// MsgCompleted publishes the delivery of an application message's final
// packet at host lid. The message-boundary test lives here, after the
// mask gate, so an unobserved run pays only the standard disabled-bus
// check at the delivery site.
func (b *Bus) MsgCompleted(t sim.Time, lid ib.LID, p *ib.Packet) {
	if b == nil || b.mask&(1<<KindMsgCompleted) == 0 {
		return
	}
	if p.Type != ib.DataPacket || p.MsgSeq+1 != p.MsgPackets {
		return
	}
	e := Event{Kind: KindMsgCompleted, Time: t, Node: int(lid)}
	e.packet(p)
	b.Publish(e)
}

// QueueSampled publishes a switch output Port VL depth change.
func (b *Bus) QueueSampled(t sim.Time, sw, port int, hostPort bool, vl ib.VL, queued int) {
	if b == nil || b.mask&(1<<KindQueueSampled) == 0 {
		return
	}
	b.Publish(Event{
		Kind: KindQueueSampled, Time: t, Switch: true, Node: sw, Port: port,
		HostPort: hostPort, VL: vl, QueuedBytes: queued,
	})
}
