package obs

import (
	"testing"

	"repro/internal/ib"
	"repro/internal/sim"
)

// legacyKindEvent builds one fully populated event of kind k, with every
// field derived from the kind and a salt so that any change to the
// digested field list or byte packing moves the pinned digest below.
func legacyKindEvent(k Kind, salt int) Event {
	return Event{
		Kind:        k,
		Switch:      salt%2 == 0,
		Hotspot:     salt%3 == 0,
		HostPort:    salt%5 == 0,
		FECN:        salt%2 == 1,
		BECN:        salt%7 == 0,
		Type:        ib.PacketType(salt % 3),
		VL:          ib.VL(salt % 2),
		Time:        sim.Time(1000*int64(k) + int64(salt)),
		Node:        int(k)*7 + salt,
		Port:        salt % 4,
		PktID:       uint64(k)<<32 | uint64(salt),
		Src:         ib.LID(salt),
		Dst:         ib.LID(salt + 1),
		Bytes:       2048 + salt,
		QueuedBytes: 4096 * salt,
		CreditBytes: 128 * salt,
		OldCCTI:     uint16(salt),
		NewCCTI:     uint16(salt + 1),
		// Fields beyond the digest limit: present so the test fails if
		// they ever leak into the legacy fingerprint.
		Inject:     sim.Time(42 * int64(salt)),
		MsgID:      uint64(salt) * 13,
		MsgSeq:     uint8(salt % 4),
		MsgPackets: 4,
	}
}

// TestDigestFieldListPinned pins the digest of a synthetic stream
// covering every pre-telemetry kind. The constant was recorded when the
// telemetry kinds were introduced; it must never change, because every
// committed golden trajectory (internal/core/testdata) and every stored
// KernelSignature depends on the exact field list and byte packing of
// these ten kinds. New Event fields and new kinds are fine — hashing
// them here is not.
func TestDigestFieldListPinned(t *testing.T) {
	const pinned = "857a64672999a0e5"
	d := NewDigest()
	for k := Kind(0); k < digestKindLimit; k++ {
		for salt := 0; salt < 3; salt++ {
			d.Consume(legacyKindEvent(k, salt))
		}
	}
	if got := d.Sum(); got != pinned {
		t.Fatalf("legacy-kind digest changed: got %s, pinned %s — the obs.Digest field list for existing kinds must stay frozen", got, pinned)
	}
	if want := uint64(digestKindLimit) * 3; d.Records() != want {
		t.Fatalf("records = %d, want %d", d.Records(), want)
	}
}

// TestDigestExcludesTelemetryKinds asserts that interleaving telemetry
// kinds into a stream leaves the digest and record count untouched: a
// telemetry-observed run fingerprints identically to an unobserved one.
func TestDigestExcludesTelemetryKinds(t *testing.T) {
	plain, mixed := NewDigest(), NewDigest()
	for salt := 0; salt < 8; salt++ {
		e := legacyKindEvent(KindPacketDelivered, salt)
		plain.Consume(e)
		mixed.Consume(e)
		mc := legacyKindEvent(KindMsgCompleted, salt)
		mixed.Consume(mc)
	}
	if plain.Sum() != mixed.Sum() {
		t.Fatalf("msg_completed events changed the digest: %s vs %s", plain.Sum(), mixed.Sum())
	}
	if plain.Records() != mixed.Records() {
		t.Fatalf("msg_completed events changed the record count: %d vs %d", plain.Records(), mixed.Records())
	}
	if digestKindLimit != 10 {
		t.Fatalf("digestKindLimit = %d, want 10: the digested kind set is pinned to the pre-telemetry taxonomy", digestKindLimit)
	}
}

// TestMsgCompletedPublish exercises the message-boundary gate of the
// MsgCompleted helper: only the final data packet of a message
// publishes, and the event carries the message identity fields.
func TestMsgCompletedPublish(t *testing.T) {
	b := New()
	var got []Event
	b.Subscribe(ConsumerFunc(func(e Event) { got = append(got, e) }), KindMsgCompleted)

	p := &ib.Packet{
		ID: 7, Type: ib.DataPacket, Src: 3, Dst: 9, PayloadBytes: ib.MTU,
		MsgID: 41, MsgSeq: 0, MsgPackets: 2, InjectTime: sim.Time(100),
	}
	b.MsgCompleted(sim.Time(500), 9, p) // not the final packet
	if len(got) != 0 {
		t.Fatalf("non-final packet published a completion")
	}
	p.MsgSeq = 1
	b.MsgCompleted(sim.Time(900), 9, p)
	if len(got) != 1 {
		t.Fatalf("final packet published %d events, want 1", len(got))
	}
	e := got[0]
	if e.Kind != KindMsgCompleted || e.Node != 9 || e.MsgID != 41 ||
		e.MsgSeq != 1 || e.MsgPackets != 2 || e.Inject != sim.Time(100) {
		t.Fatalf("completion event fields wrong: %+v", e)
	}

	cnp := &ib.Packet{Type: ib.CNPPacket, MsgSeq: 0, MsgPackets: 1}
	b.MsgCompleted(sim.Time(1000), 9, cnp)
	if len(got) != 1 {
		t.Fatalf("control packet published a completion")
	}

	var nilBus *Bus
	nilBus.MsgCompleted(sim.Time(1), 0, p) // must not panic
}
