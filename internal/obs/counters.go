package obs

import (
	"fmt"
	"sort"
)

// PortKey addresses one switch output port.
type PortKey struct {
	Switch int
	Port   int
}

func (k PortKey) String() string { return fmt.Sprintf("sw%d.p%d", k.Switch, k.Port) }

// PortCounters accumulates the flight-recorder counters of one switch
// output port.
type PortCounters struct {
	// FECNMarks counts data packets FECN-marked at this port.
	FECNMarks uint64
	// CreditStalls counts failed grant attempts for lack of downstream
	// credits.
	CreditStalls uint64
	// PeakQueuedBytes is the highest queued-byte depth observed on any
	// VL of the port.
	PeakQueuedBytes int
	// FwdPackets counts packets put on the wire.
	FwdPackets uint64
	// Dropped counts packets and credit updates the fault layer
	// discarded after leaving this port.
	Dropped uint64
	// FwdBytesVL counts wire bytes forwarded per VL.
	FwdBytesVL []uint64
	// HostPort reports whether the port faces an HCA (learned from the
	// first event that says so).
	HostPort bool
}

// Registry is a bus consumer maintaining per-switch-port counters. Ports
// materialize lazily on their first event, so an idle port costs
// nothing. Subscribe it with Attach.
type Registry struct {
	numVLs int
	ports  map[PortKey]*PortCounters
}

// NewRegistry returns a registry for fabrics with numVLs virtual lanes.
func NewRegistry(numVLs int) *Registry {
	if numVLs < 1 {
		numVLs = 1
	}
	return &Registry{numVLs: numVLs, ports: make(map[PortKey]*PortCounters)}
}

// Attach subscribes the registry to the kinds it consumes.
func (r *Registry) Attach(b *Bus) {
	b.Subscribe(r, KindPacketSent, KindFECNMarked, KindCreditStalled, KindQueueSampled, KindPacketDropped)
}

func (r *Registry) port(sw, port int, hostPort bool) *PortCounters {
	k := PortKey{Switch: sw, Port: port}
	c := r.ports[k]
	if c == nil {
		c = &PortCounters{FwdBytesVL: make([]uint64, r.numVLs)}
		r.ports[k] = c
	}
	if hostPort {
		c.HostPort = true
	}
	return c
}

// Consume implements Consumer.
func (r *Registry) Consume(e Event) {
	if !e.Switch {
		return // HCA-side events carry no switch port
	}
	switch e.Kind {
	case KindPacketSent:
		c := r.port(e.Node, e.Port, false)
		c.FwdPackets++
		if int(e.VL) < len(c.FwdBytesVL) {
			c.FwdBytesVL[e.VL] += uint64(e.Bytes)
		}
	case KindFECNMarked:
		r.port(e.Node, e.Port, e.HostPort).FECNMarks++
	case KindCreditStalled:
		r.port(e.Node, e.Port, false).CreditStalls++
	case KindQueueSampled:
		c := r.port(e.Node, e.Port, e.HostPort)
		if e.QueuedBytes > c.PeakQueuedBytes {
			c.PeakQueuedBytes = e.QueuedBytes
		}
	case KindPacketDropped:
		r.port(e.Node, e.Port, false).Dropped++
	}
}

// Port returns the counters of (sw, port), or nil when the port never
// produced an event.
func (r *Registry) Port(sw, port int) *PortCounters {
	return r.ports[PortKey{Switch: sw, Port: port}]
}

// Ports returns the keys of every materialized port in (switch, port)
// order.
func (r *Registry) Ports() []PortKey {
	out := make([]PortKey, 0, len(r.ports))
	for k := range r.ports {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Switch != out[j].Switch {
			return out[i].Switch < out[j].Switch
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// Totals sums the counters across all ports.
func (r *Registry) Totals() (marks, stalls, fwdPackets uint64, fwdBytes uint64) {
	for _, c := range r.ports {
		marks += c.FECNMarks
		stalls += c.CreditStalls
		fwdPackets += c.FwdPackets
		for _, b := range c.FwdBytesVL {
			fwdBytes += b
		}
	}
	return
}

// HottestPort returns the port with the most FECN marks (ties broken by
// key order), or a zero key and nil when nothing was marked.
func (r *Registry) HottestPort() (PortKey, *PortCounters) {
	var bestK PortKey
	var best *PortCounters
	for _, k := range r.Ports() {
		c := r.ports[k]
		if best == nil || c.FECNMarks > best.FECNMarks {
			bestK, best = k, c
		}
	}
	if best == nil || best.FECNMarks == 0 {
		return PortKey{}, nil
	}
	return bestK, best
}

var _ Consumer = (*Registry)(nil)
