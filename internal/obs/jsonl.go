package obs

import (
	"bufio"
	"encoding/json"
	"io"

	"repro/internal/ib"
)

// JSONLWriter is a bus consumer streaming every event as one JSON line —
// the raw flight-recorder log, greppable and loadable by any tooling.
// Close flushes the underlying buffer; the first write error sticks and
// is returned from Close.
type JSONLWriter struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
	n   uint64
}

// eventJSON is the wire form of an Event. Zero-valued optional fields
// are elided to keep lines short.
type eventJSON struct {
	Kind     string  `json:"kind"`
	TimeUS   float64 `json:"t_us"`
	Switch   bool    `json:"switch,omitempty"`
	Node     int     `json:"node"`
	Port     int     `json:"port,omitempty"`
	VL       ib.VL   `json:"vl,omitempty"`
	HostPort bool    `json:"host_port,omitempty"`

	PktID   uint64 `json:"pkt,omitempty"`
	PktType string `json:"type,omitempty"`
	Src     ib.LID `json:"src,omitempty"`
	Dst     ib.LID `json:"dst,omitempty"`
	Bytes   int    `json:"bytes,omitempty"`
	FECN    bool   `json:"fecn,omitempty"`
	BECN    bool   `json:"becn,omitempty"`
	Hotspot bool   `json:"hotspot,omitempty"`

	QueuedBytes int    `json:"queued,omitempty"`
	CreditBytes int    `json:"credits,omitempty"`
	OldCCTI     uint16 `json:"ccti_old,omitempty"`
	NewCCTI     uint16 `json:"ccti_new,omitempty"`

	MsgID uint64 `json:"msg,omitempty"`
	// LatUS is the packet's network latency (delivery time minus source
	// injection), on delivery-scoped kinds.
	LatUS float64 `json:"lat_us,omitempty"`
}

// NewJSONLWriter returns a writer streaming to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriterSize(w, 64<<10)
	return &JSONLWriter{w: bw, enc: json.NewEncoder(bw)}
}

// Attach subscribes the writer to every kind.
func (j *JSONLWriter) Attach(b *Bus) { b.Subscribe(j) }

// Consume implements Consumer.
func (j *JSONLWriter) Consume(e Event) {
	if j.err != nil {
		return
	}
	rec := eventJSON{
		Kind:        e.Kind.String(),
		TimeUS:      e.Time.Seconds() * 1e6,
		Switch:      e.Switch,
		Node:        e.Node,
		Port:        e.Port,
		VL:          e.VL,
		HostPort:    e.HostPort,
		PktID:       e.PktID,
		Src:         e.Src,
		Dst:         e.Dst,
		Bytes:       e.Bytes,
		FECN:        e.FECN,
		BECN:        e.BECN,
		Hotspot:     e.Hotspot,
		QueuedBytes: e.QueuedBytes,
		CreditBytes: e.CreditBytes,
		OldCCTI:     e.OldCCTI,
		NewCCTI:     e.NewCCTI,
	}
	// The packet type is meaningful only on packet-scoped events.
	switch e.Kind {
	case KindPacketSent, KindFECNMarked, KindBECNReturned:
		rec.PktType = e.Type.String()
	case KindPacketDelivered:
		rec.PktType = e.Type.String()
		if e.Type == ib.DataPacket {
			rec.LatUS = e.Time.Sub(e.Inject).Seconds() * 1e6
		}
	case KindMsgCompleted:
		rec.PktType = e.Type.String()
		rec.MsgID = e.MsgID
		rec.LatUS = e.Time.Sub(e.Inject).Seconds() * 1e6
	case KindPacketDropped:
		if e.PktID > 0 {
			rec.PktType = e.Type.String()
		} else {
			rec.PktType = "credit"
		}
	}
	j.err = j.enc.Encode(&rec)
	if j.err == nil {
		j.n++
	}
}

// Events returns how many events were written.
func (j *JSONLWriter) Events() uint64 { return j.n }

// Close flushes buffered output and returns the first error seen.
func (j *JSONLWriter) Close() error {
	if err := j.w.Flush(); j.err == nil {
		j.err = err
	}
	return j.err
}

var _ Consumer = (*JSONLWriter)(nil)
