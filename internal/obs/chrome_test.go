package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// emitAllKinds drives one event of every kind through the bus.
func emitAllKinds(b *Bus) {
	p := pkt(1, 2)
	b.QueueSampled(1000, 3, 4, true, 0, 8192)
	b.PacketSent(2000, true, 3, 4, p)
	b.FECNMarked(3000, 3, 4, true, p, 9000, 64)
	b.PacketDelivered(4000, 2, p)
	b.BECNReturned(5000, 1, 2, nil)
	b.CCTIChanged(6000, 1, 2, 0, 4)
	b.CreditStalled(7000, true, 3, 4, 0, 10, 2094)
	b.PacketSent(8000, false, 1, 0, p)
	b.LinkDown(9000, true, 3, 4)
	b.LinkUp(10000, true, 3, 4)
	b.PacketDropped(11000, true, 3, 4, p, 0, p.WireBytes())
	b.PacketDropped(12000, true, 3, 4, nil, 1, 2094) // lost credit update
	last := pkt(1, 2)
	last.MsgID, last.MsgSeq, last.MsgPackets = 5, 0, 1
	last.InjectTime = 12500
	b.MsgCompleted(13000, 2, last)
}

// TestChromeTraceValid checks the exporter structurally: the output is
// one valid JSON document in the trace_event format Perfetto loads —
// a traceEvents array whose entries all carry a name, a known phase,
// and (for non-metadata phases) a numeric timestamp.
func TestChromeTraceValid(t *testing.T) {
	var sb strings.Builder
	b := New()
	tr := NewChromeTracer(&sb)
	tr.Attach(b)
	emitAllKinds(b)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	phases := map[string]int{}
	for i, ev := range doc.TraceEvents {
		name, _ := ev["name"].(string)
		ph, _ := ev["ph"].(string)
		if name == "" {
			t.Fatalf("event %d has no name: %v", i, ev)
		}
		switch ph {
		case "M": // metadata: needs pid and an args.name
			if _, ok := ev["pid"].(float64); !ok {
				t.Fatalf("metadata event %d without pid: %v", i, ev)
			}
		case "C", "i":
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("event %d without numeric ts: %v", i, ev)
			}
			if _, ok := ev["pid"].(float64); !ok {
				t.Fatalf("event %d without pid: %v", i, ev)
			}
		default:
			t.Fatalf("event %d has unexpected phase %q", i, ph)
		}
		phases[ph]++
	}
	// All three shapes must be present: track naming, counters,
	// instants.
	for _, ph := range []string{"M", "C", "i"} {
		if phases[ph] == 0 {
			t.Fatalf("no %q events in trace (%v)", ph, phases)
		}
	}
	if tr.Events() == 0 {
		t.Fatal("event counter not advanced")
	}
}

// TestChromeTraceTracks checks the port/HCA → process/thread mapping:
// switch and host ids live in disjoint pid spaces and each port gets a
// named thread track.
func TestChromeTraceTracks(t *testing.T) {
	var sb strings.Builder
	b := New()
	tr := NewChromeTracer(&sb)
	tr.Attach(b)
	p := pkt(1, 2)
	b.PacketSent(1, true, 5, 2, p)  // switch 5 port 2
	b.PacketSent(2, false, 5, 0, p) // hca 5: same node id, distinct pid
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"switch 5"`, `"hca 5"`, `"port 2"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %s:\n%s", want, out)
		}
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	pids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		if pid, ok := ev["pid"].(float64); ok {
			pids[pid] = true
		}
	}
	if !pids[float64(chromeSwitchPIDBase+5)] || !pids[5] {
		t.Fatalf("pid namespaces collapsed: %v", pids)
	}
}

// TestChromeTraceEmpty: a trace with no events is still a loadable
// document.
func TestChromeTraceEmpty(t *testing.T) {
	var sb strings.Builder
	tr := NewChromeTracer(&sb)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("empty trace invalid: %v\n%s", err, sb.String())
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("unexpected events: %v", doc.TraceEvents)
	}
}

func TestJSONLWriter(t *testing.T) {
	var sb strings.Builder
	b := New()
	w := NewJSONLWriter(&sb)
	w.Attach(b)
	emitAllKinds(b)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 13 {
		t.Fatalf("lines = %d, want 13:\n%s", len(lines), sb.String())
	}
	if w.Events() != 13 {
		t.Fatalf("Events() = %d", w.Events())
	}
	kinds := map[string]bool{}
	for i, ln := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line %d invalid JSON: %v: %s", i, err, ln)
		}
		k, _ := rec["kind"].(string)
		if k == "" {
			t.Fatalf("line %d has no kind: %s", i, ln)
		}
		kinds[k] = true
		if _, ok := rec["t_us"].(float64); !ok {
			t.Fatalf("line %d has no t_us: %s", i, ln)
		}
	}
	for k := Kind(0); k < NumKinds; k++ {
		if !kinds[k.String()] {
			t.Fatalf("kind %v missing from log (%v)", k, kinds)
		}
	}
	// Packet-scoped lines carry the packet type; the FECN mark line
	// carries the queue state that triggered it.
	if !strings.Contains(sb.String(), `"type":"data"`) {
		t.Fatal("no packet type recorded")
	}
	if !strings.Contains(sb.String(), `"queued":9000`) {
		t.Fatal("mark queue depth not recorded")
	}
}

func TestCCTILogTable(t *testing.T) {
	b := New()
	l := NewCCTILog()
	l.Attach(b)
	// Flow 1->9 ramps to 3 then decays; flow 2->9 reaches 1 and decays.
	b.CCTIChanged(1000, 1, 9, 0, 2)
	b.CCTIChanged(1500, 2, 9, 0, 1)
	b.CCTIChanged(2500, 1, 9, 2, 3)
	b.CCTIChanged(3500, 1, 9, 3, 2)
	b.CCTIChanged(3600, 2, 9, 1, 0)

	if len(l.Samples) != 5 {
		t.Fatalf("samples = %d", len(l.Samples))
	}
	var sb strings.Builder
	if err := l.WriteTable(&sb, 1000, 3000); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// Header + buckets up to the last sample (3600ps -> 4 buckets).
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), sb.String())
	}
	// Bucket 1 (<=1000): one increase, one flow at CCTI 2.
	if !strings.Contains(lines[1], " 1 ") || !strings.Contains(lines[1], "2.00") {
		t.Fatalf("bucket 1 = %q", lines[1])
	}
	// Final bucket: flow 2->9 fully recovered, flow 1->9 at 2.
	last := lines[len(lines)-1]
	if !strings.Contains(last, "2.00") {
		t.Fatalf("last bucket = %q", last)
	}
	if err := l.WriteTable(&sb, 0, 1000); err == nil {
		t.Fatal("zero interval accepted")
	}
}
