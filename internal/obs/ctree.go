package obs

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/ib"
)

// FlowClass is the congestion-tree role of a flow.
type FlowClass uint8

const (
	// FlowUnknown means the flow sent no data the analyzer saw.
	FlowUnknown FlowClass = iota
	// FlowContributor flows feed a congestion tree: their destination
	// is a reconstructed tree root destination (the hotspot).
	FlowContributor
	// FlowVictim flows carry data but feed no tree; any throughput they
	// lose is head-of-line blocking damage, the paper's victim class.
	FlowVictim
)

func (c FlowClass) String() string {
	switch c {
	case FlowContributor:
		return "contributor"
	case FlowVictim:
		return "victim"
	default:
		return "unknown"
	}
}

// TreePort is one switch port of a reconstructed congestion tree.
type TreePort struct {
	Key PortKey
	// HostPort reports whether the port faces an HCA.
	HostPort bool
	// Marks counts FECN marks the port applied to this tree's flows.
	Marks uint64
	// PeakQueuedBytes is the deepest queue observed at the port.
	PeakQueuedBytes int
}

// Tree is one reconstructed congestion tree: the set of marking ports
// whose dominant marked destination is Dst.
type Tree struct {
	// Dst is the tree's destination — the hotspot the contributors
	// oversubscribe.
	Dst ib.LID
	// Root is the marking port closest to the destination: the
	// host-facing marking port when one exists (where the paper's
	// trees root), otherwise the port with the most marks.
	Root TreePort
	// Branches are the remaining marking ports of the tree, where
	// congestion has spread toward the sources.
	Branches []TreePort
	// Marks is the total FECN marks across root and branches.
	Marks uint64
	// Contributors lists the flows marked into or throttled toward
	// this destination.
	Contributors []ib.FlowKey
	// BECNs counts BECNs consumed by the tree's contributors.
	BECNs uint64
	// MaxCCTI is the deepest throttle any contributor reached.
	MaxCCTI uint16
}

// TreeReport is the analyzer's result over a whole run.
type TreeReport struct {
	// Trees, sorted by total marks descending.
	Trees []Tree
	// Minor lists marked destinations that fell below the significance
	// cut: transiently marked, not sustained congestion trees. Flows to
	// them classify as victims.
	Minor []Tree
	// Contributors and Victims count classified flows.
	Contributors, Victims int
	// ContributorSrcs and VictimSrcs count source nodes with at least
	// one flow of the class (a windy B node appears in both).
	ContributorSrcs, VictimSrcs int
	// Flows is the per-flow classification.
	Flows map[ib.FlowKey]FlowClass
	// Faults summarizes fault-layer activity seen on the bus, separating
	// throughput loss the fault plan caused from congestion damage; all
	// zero when no fault plan was active.
	Faults FaultSummary
}

// FaultSummary is the fault-attribution section of a TreeReport.
type FaultSummary struct {
	// DroppedPackets counts packets the fault layer discarded;
	// DroppedCredits counts discarded credit updates.
	DroppedPackets, DroppedCredits uint64
	// DroppedToTrees is the subset of DroppedPackets destined for a
	// reconstructed tree destination — loss inside the congestion trees
	// rather than on victim paths.
	DroppedToTrees uint64
	// LinkDowns and LinkUps count transmitter outage transitions.
	LinkDowns, LinkUps int
}

// Any reports whether any fault activity was observed.
func (f FaultSummary) Any() bool {
	return f.DroppedPackets > 0 || f.DroppedCredits > 0 || f.LinkDowns > 0 || f.LinkUps > 0
}

// HotspotSet returns the tree destinations as a membership map.
func (r *TreeReport) HotspotSet() map[ib.LID]bool {
	out := make(map[ib.LID]bool, len(r.Trees))
	for _, t := range r.Trees {
		out[t.Dst] = true
	}
	return out
}

// Class returns the classification of flow f.
func (r *TreeReport) Class(f ib.FlowKey) FlowClass { return r.Flows[f] }

// PureVictimSources returns, sorted, the source nodes classified as
// pure victims: at least one victim flow and no contributor flow. With
// zero reconstructed trees every observed source is a victim — nothing
// marked, so nothing contributed — which is exactly what a markless
// congestion-control backend looks like from the FECN record.
func (r *TreeReport) PureVictimSources() []ib.LID {
	contrib := make(map[ib.LID]bool)
	victim := make(map[ib.LID]bool)
	for f, class := range r.Flows {
		switch class {
		case FlowContributor:
			contrib[f.Src] = true
		case FlowVictim:
			victim[f.Src] = true
		}
	}
	out := make([]ib.LID, 0, len(victim))
	for src := range victim {
		if !contrib[src] {
			out = append(out, src)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteTo renders the report as the table ibccsim -ctree prints.
func (r *TreeReport) WriteTo(w io.Writer) (int64, error) {
	var n int64
	pf := func(format string, args ...any) error {
		k, err := fmt.Fprintf(w, format, args...)
		n += int64(k)
		return err
	}
	if err := pf("congestion trees: %d, flows: %d contributors / %d victims (sources: %d / %d)\n",
		len(r.Trees), r.Contributors, r.Victims, r.ContributorSrcs, r.VictimSrcs); err != nil {
		return n, err
	}
	for i, t := range r.Trees {
		root := fmt.Sprintf("%v", t.Root.Key)
		if t.Root.HostPort {
			root += " (host-facing)"
		}
		if err := pf("  tree %d -> dst %d: root %s, %d branch ports, %d marks, %d becns, %d contributors, maxCCTI %d\n",
			i, t.Dst, root, len(t.Branches), t.Marks, t.BECNs, len(t.Contributors), t.MaxCCTI); err != nil {
			return n, err
		}
		for _, b := range t.Branches {
			if err := pf("    branch %v: %d marks, peak queue %d B\n", b.Key, b.Marks, b.PeakQueuedBytes); err != nil {
				return n, err
			}
		}
	}
	if len(r.Minor) > 0 {
		var marks uint64
		for _, t := range r.Minor {
			marks += t.Marks
		}
		if err := pf("  (%d transiently marked destinations below the significance cut, %d marks total)\n",
			len(r.Minor), marks); err != nil {
			return n, err
		}
	}
	if r.Faults.Any() {
		if err := pf("  faults: %d packets dropped (%d into trees), %d credit updates dropped, %d link downs / %d ups\n",
			r.Faults.DroppedPackets, r.Faults.DroppedToTrees, r.Faults.DroppedCredits,
			r.Faults.LinkDowns, r.Faults.LinkUps); err != nil {
			return n, err
		}
	}
	return n, nil
}

// portAgg accumulates per-port evidence during the run.
type portAgg struct {
	hostPort bool
	marks    uint64
	markDst  map[ib.LID]uint64
	peak     int
}

// flowAgg accumulates per-flow evidence during the run.
type flowAgg struct {
	dataPkts uint64
	marked   uint64
	becns    uint64
	maxCCTI  uint16
}

// TreeAnalyzer is a bus consumer reconstructing congestion trees from
// the FECN topology: which ports marked packets of which destinations,
// which flows were marked or throttled, and which flows merely carried
// data. Call Report after the run.
type TreeAnalyzer struct {
	ports map[PortKey]*portAgg
	flows map[ib.FlowKey]*flowAgg
	// Fault evidence: aggregate counters plus dropped data packets per
	// destination, resolved against the tree set at Report time.
	faults     FaultSummary
	droppedDst map[ib.LID]uint64
}

// NewTreeAnalyzer returns an empty analyzer.
func NewTreeAnalyzer() *TreeAnalyzer {
	return &TreeAnalyzer{
		ports:      make(map[PortKey]*portAgg),
		flows:      make(map[ib.FlowKey]*flowAgg),
		droppedDst: make(map[ib.LID]uint64),
	}
}

// Attach subscribes the analyzer to the kinds it consumes.
func (a *TreeAnalyzer) Attach(b *Bus) {
	b.Subscribe(a, KindPacketSent, KindFECNMarked, KindBECNReturned,
		KindCCTIChanged, KindQueueSampled, KindPacketDropped, KindLinkDown, KindLinkUp)
}

func (a *TreeAnalyzer) flow(f ib.FlowKey) *flowAgg {
	fl := a.flows[f]
	if fl == nil {
		fl = &flowAgg{}
		a.flows[f] = fl
	}
	return fl
}

// Consume implements Consumer.
func (a *TreeAnalyzer) Consume(e Event) {
	switch e.Kind {
	case KindPacketSent:
		// Flow inventory comes from HCA injections only; switch
		// forwards would multiply-count each packet per hop.
		if !e.Switch && e.Type == ib.DataPacket {
			a.flow(e.Flow()).dataPkts++
		}
	case KindFECNMarked:
		k := PortKey{Switch: e.Node, Port: e.Port}
		p := a.ports[k]
		if p == nil {
			p = &portAgg{markDst: make(map[ib.LID]uint64)}
			a.ports[k] = p
		}
		p.marks++
		p.markDst[e.Dst]++
		if e.HostPort {
			p.hostPort = true
		}
		if e.QueuedBytes > p.peak {
			p.peak = e.QueuedBytes
		}
		a.flow(e.Flow()).marked++
	case KindBECNReturned:
		a.flow(e.Flow()).becns++
	case KindCCTIChanged:
		fl := a.flow(e.Flow())
		if e.NewCCTI > fl.maxCCTI {
			fl.maxCCTI = e.NewCCTI
		}
	case KindQueueSampled:
		if p := a.ports[PortKey{Switch: e.Node, Port: e.Port}]; p != nil && e.QueuedBytes > p.peak {
			p.peak = e.QueuedBytes
		}
	case KindPacketDropped:
		if e.PktID == 0 {
			a.faults.DroppedCredits++
			return
		}
		a.faults.DroppedPackets++
		if e.Type == ib.DataPacket {
			a.droppedDst[e.Dst]++
		}
	case KindLinkDown:
		a.faults.LinkDowns++
	case KindLinkUp:
		a.faults.LinkUps++
	}
}

// Report reconstructs the trees and classifies every observed flow.
//
// Reconstruction: each marking port is assigned to the destination that
// dominates its marks; the ports of one destination form that
// destination's tree. The root is the host-facing marking port (the
// port feeding the hotspot HCA — where the paper's trees grow from),
// falling back to the most-marking port; the rest are branches, sorted
// by marks. A flow is a contributor when its destination is a tree
// destination, and a victim otherwise — exactly the paper's taxonomy,
// recovered here purely from the FECN record rather than from the
// scenario's ground-truth role assignment.
//
// Under heavy uniform load, destinations that are not oversubscribed
// still pick up occasional marks when bursts momentarily cross the
// marking threshold. A sustained tree keeps marking for the whole run,
// so its count sits well above that noise: the candidates are cut at
// the largest consecutive gap of their sorted mark counts, provided the
// gap is wide (>= 1.5x) and everything below it is under a third of the
// strongest tree. Cut candidates are reported as Minor.
func (a *TreeAnalyzer) Report() *TreeReport {
	// Group marking ports by dominant destination.
	byDst := make(map[ib.LID][]PortKey)
	for k, p := range a.ports {
		if p.marks == 0 {
			continue
		}
		var dst ib.LID
		var best uint64
		for d, c := range p.markDst {
			if c > best || (c == best && d < dst) {
				dst, best = d, c
			}
		}
		byDst[dst] = append(byDst[dst], k)
	}

	rep := &TreeReport{Flows: make(map[ib.FlowKey]FlowClass, len(a.flows))}
	for dst, keys := range byDst {
		t := Tree{Dst: dst}
		ports := make([]TreePort, 0, len(keys))
		for _, k := range keys {
			p := a.ports[k]
			ports = append(ports, TreePort{Key: k, HostPort: p.hostPort, Marks: p.markDst[dst], PeakQueuedBytes: p.peak})
			t.Marks += p.markDst[dst]
		}
		// Root: host-facing port with the most marks, else most marks
		// overall; deterministic tie-break on the key.
		sort.Slice(ports, func(i, j int) bool {
			pi, pj := ports[i], ports[j]
			if pi.HostPort != pj.HostPort {
				return pi.HostPort
			}
			if pi.Marks != pj.Marks {
				return pi.Marks > pj.Marks
			}
			return lessPortKey(pi.Key, pj.Key)
		})
		t.Root = ports[0]
		t.Branches = ports[1:]
		sort.Slice(t.Branches, func(i, j int) bool {
			if t.Branches[i].Marks != t.Branches[j].Marks {
				return t.Branches[i].Marks > t.Branches[j].Marks
			}
			return lessPortKey(t.Branches[i].Key, t.Branches[j].Key)
		})
		rep.Trees = append(rep.Trees, t)
	}
	sort.Slice(rep.Trees, func(i, j int) bool {
		if rep.Trees[i].Marks != rep.Trees[j].Marks {
			return rep.Trees[i].Marks > rep.Trees[j].Marks
		}
		return rep.Trees[i].Dst < rep.Trees[j].Dst
	})
	if cut := significanceCut(rep.Trees); cut > 0 {
		rep.Minor = rep.Trees[cut:]
		rep.Trees = rep.Trees[:cut]
	}

	// Classify flows against the reconstructed hotspot set.
	hot := rep.HotspotSet()
	treeIdx := make(map[ib.LID]int, len(rep.Trees))
	for i := range rep.Trees {
		treeIdx[rep.Trees[i].Dst] = i
	}
	contribSrc := make(map[ib.LID]bool)
	victimSrc := make(map[ib.LID]bool)
	for f, fl := range a.flows {
		if fl.dataPkts == 0 && fl.marked == 0 && fl.becns == 0 {
			continue
		}
		if hot[f.Dst] {
			rep.Flows[f] = FlowContributor
			rep.Contributors++
			contribSrc[f.Src] = true
			t := &rep.Trees[treeIdx[f.Dst]]
			t.Contributors = append(t.Contributors, f)
			t.BECNs += fl.becns
			if fl.maxCCTI > t.MaxCCTI {
				t.MaxCCTI = fl.maxCCTI
			}
		} else {
			rep.Flows[f] = FlowVictim
			rep.Victims++
			victimSrc[f.Src] = true
		}
	}
	for i := range rep.Trees {
		sort.Slice(rep.Trees[i].Contributors, func(a, b int) bool {
			c := rep.Trees[i].Contributors
			if c[a].Src != c[b].Src {
				return c[a].Src < c[b].Src
			}
			return c[a].Dst < c[b].Dst
		})
	}
	rep.ContributorSrcs = len(contribSrc)
	rep.VictimSrcs = len(victimSrc)
	rep.Faults = a.faults
	for dst, n := range a.droppedDst {
		if hot[dst] {
			rep.Faults.DroppedToTrees += n
		}
	}
	return rep
}

// significanceCut returns the index separating sustained trees from
// transient marking noise in a marks-descending candidate list, or 0
// when no cut is warranted (every candidate is kept).
func significanceCut(trees []Tree) int {
	if len(trees) < 2 {
		return 0
	}
	best, bestRatio := 0, 0.0
	for i := 1; i < len(trees); i++ {
		r := float64(trees[i-1].Marks) / float64(trees[i].Marks)
		if r > bestRatio {
			best, bestRatio = i, r
		}
	}
	if bestRatio < 1.5 || trees[best].Marks*3 > trees[0].Marks {
		return 0
	}
	return best
}

func lessPortKey(a, b PortKey) bool {
	if a.Switch != b.Switch {
		return a.Switch < b.Switch
	}
	return a.Port < b.Port
}

var _ Consumer = (*TreeAnalyzer)(nil)
