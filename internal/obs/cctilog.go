package obs

import (
	"fmt"
	"io"

	"repro/internal/ib"
	"repro/internal/sim"
)

// CCTISample is one recorded CCTI step.
type CCTISample struct {
	Time     sim.Time
	Src, Dst ib.LID
	Old, New uint16
}

// CCTILog is a bus consumer recording every CCTI step, and rendering
// them as a CCTI-over-time table (cctinspect -run). Because the log
// keeps the full step sequence, the table can reconstruct the exact
// throttle state at any instant without sampling error.
type CCTILog struct {
	Samples []CCTISample
}

// NewCCTILog returns an empty log.
func NewCCTILog() *CCTILog { return &CCTILog{} }

// Attach subscribes the log to CCTI changes.
func (l *CCTILog) Attach(b *Bus) { b.Subscribe(l, KindCCTIChanged) }

// Consume implements Consumer.
func (l *CCTILog) Consume(e Event) {
	if e.Kind != KindCCTIChanged {
		return
	}
	l.Samples = append(l.Samples, CCTISample{Time: e.Time, Src: e.Src, Dst: e.Dst, Old: e.OldCCTI, New: e.NewCCTI})
}

// WriteTable renders the log bucketed on the given interval up to end:
// per bucket the number of increases and decreases, the number of flows
// holding congestion state at the bucket's close, and the max and mean
// CCTI across them. The step sequence is replayed in order, so the
// "flows/max/mean" columns are exact instantaneous state, not samples.
func (l *CCTILog) WriteTable(w io.Writer, interval sim.Duration, end sim.Time) error {
	if interval <= 0 {
		return fmt.Errorf("obs: non-positive table interval")
	}
	if _, err := fmt.Fprintf(w, "%12s %8s %8s %8s %8s %8s\n",
		"t", "incr", "decr", "flows", "maxCCTI", "meanCCTI"); err != nil {
		return err
	}
	if n := len(l.Samples); n > 0 && l.Samples[n-1].Time > end {
		end = l.Samples[n-1].Time
	}
	state := make(map[ib.FlowKey]uint16)
	i := 0
	for t := sim.Time(0).Add(interval); ; t = t.Add(interval) {
		var incr, decr int
		for i < len(l.Samples) && l.Samples[i].Time <= t {
			s := l.Samples[i]
			if s.New > s.Old {
				incr++
			} else if s.New < s.Old {
				decr++
			}
			key := ib.FlowKey{Src: s.Src, Dst: s.Dst}
			if s.New == 0 {
				delete(state, key)
			} else {
				state[key] = s.New
			}
			i++
		}
		var max uint16
		var sum uint64
		for _, c := range state {
			if c > max {
				max = c
			}
			sum += uint64(c)
		}
		mean := 0.0
		if len(state) > 0 {
			mean = float64(sum) / float64(len(state))
		}
		if _, err := fmt.Fprintf(w, "%12v %8d %8d %8d %8d %8.2f\n",
			t, incr, decr, len(state), max, mean); err != nil {
			return err
		}
		if t >= end {
			return nil
		}
	}
}

var _ Consumer = (*CCTILog)(nil)
