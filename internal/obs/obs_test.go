package obs

import (
	"strings"
	"testing"

	"repro/internal/ib"
	"repro/internal/sim"
)

func pkt(src, dst ib.LID) *ib.Packet {
	return &ib.Packet{ID: 7, Type: ib.DataPacket, Src: src, Dst: dst, PayloadBytes: 2048}
}

func TestBusDispatchPerKind(t *testing.T) {
	b := New()
	var sent, marked, all int
	b.Subscribe(ConsumerFunc(func(e Event) { sent++ }), KindPacketSent)
	b.Subscribe(ConsumerFunc(func(e Event) { marked++ }), KindFECNMarked)
	b.Subscribe(ConsumerFunc(func(e Event) { all++ }))

	b.PacketSent(0, true, 3, 1, pkt(1, 2))
	b.PacketSent(1, false, 4, 0, pkt(4, 2))
	b.FECNMarked(2, 3, 1, true, pkt(1, 2), 9000, 100)
	b.BECNReturned(3, 1, 2, nil)
	b.CCTIChanged(4, 1, 2, 0, 4)
	b.CreditStalled(5, true, 3, 1, 0, 10, 2094)
	b.QueueSampled(6, 3, 1, false, 0, 4096)
	b.PacketDelivered(7, 2, pkt(1, 2))

	if sent != 2 || marked != 1 || all != 8 {
		t.Fatalf("dispatch counts sent=%d marked=%d all=%d", sent, marked, all)
	}
}

func TestBusEventFields(t *testing.T) {
	b := New()
	var got []Event
	b.Subscribe(ConsumerFunc(func(e Event) { got = append(got, e) }))

	p := pkt(5, 9)
	p.FECN = true
	b.FECNMarked(42, 2, 6, true, p, 12000, 64)
	b.CCTIChanged(43, 5, 9, 3, 7)

	if len(got) != 2 {
		t.Fatalf("events = %d", len(got))
	}
	m := got[0]
	if m.Kind != KindFECNMarked || !m.Switch || m.Node != 2 || m.Port != 6 ||
		!m.HostPort || m.Src != 5 || m.Dst != 9 || m.QueuedBytes != 12000 ||
		m.CreditBytes != 64 || !m.FECN || m.Time != 42 {
		t.Fatalf("mark event = %+v", m)
	}
	if f := m.Flow(); f.Src != 5 || f.Dst != 9 {
		t.Fatalf("flow = %v", f)
	}
	c := got[1]
	if c.Kind != KindCCTIChanged || c.OldCCTI != 3 || c.NewCCTI != 7 || c.Node != 5 {
		t.Fatalf("ccti event = %+v", c)
	}
}

func TestNilBusIsDisabled(t *testing.T) {
	var b *Bus
	if b.Wants(KindPacketSent) {
		t.Fatal("nil bus wants events")
	}
	// Every helper must be a no-op on a nil bus.
	b.PacketSent(0, true, 0, 0, pkt(0, 1))
	b.PacketDelivered(0, 0, pkt(0, 1))
	b.FECNMarked(0, 0, 0, false, pkt(0, 1), 0, 0)
	b.BECNReturned(0, 0, 1, nil)
	b.CCTIChanged(0, 0, 1, 0, 1)
	b.CreditStalled(0, false, 0, 0, 0, 0, 0)
	b.QueueSampled(0, 0, 0, false, 0, 0)
}

func TestWantsFollowsSubscriptions(t *testing.T) {
	b := New()
	if b.Wants(KindPacketSent) {
		t.Fatal("fresh bus wants events")
	}
	b.Subscribe(ConsumerFunc(func(Event) {}), KindQueueSampled)
	if !b.Wants(KindQueueSampled) || b.Wants(KindPacketSent) {
		t.Fatal("mask wrong after subscribe")
	}
}

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < NumKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") || seen[s] {
			t.Fatalf("kind %d string %q", k, s)
		}
		seen[s] = true
	}
}

// forwardPath mimics the per-hop publish sequence of the fabric's
// packet-forward path: an enqueue sample, a departure sample, a wire
// transmission, and the occasional stall probe.
func forwardPath(b *Bus, p *ib.Packet, t sim.Time) {
	b.QueueSampled(t, 3, 1, false, p.VL, 4096)
	b.QueueSampled(t, 3, 1, false, p.VL, 2048)
	b.PacketSent(t, true, 3, 1, p)
	b.CreditStalled(t, true, 3, 2, p.VL, 10, 2094)
	b.PacketDelivered(t, p.Dst, p)
}

// TestDisabledBusAllocs enforces the flight recorder's core contract in
// the ordinary test run: with no bus (and with a bus nobody subscribed
// to) the forward-path publish sequence performs zero allocations.
func TestDisabledBusAllocs(t *testing.T) {
	p := pkt(1, 2)
	var nilBus *Bus
	if a := testing.AllocsPerRun(200, func() { forwardPath(nilBus, p, 5) }); a != 0 {
		t.Fatalf("nil bus: %v allocs/op on the forward path", a)
	}
	empty := New()
	if a := testing.AllocsPerRun(200, func() { forwardPath(empty, p, 5) }); a != 0 {
		t.Fatalf("subscriber-less bus: %v allocs/op on the forward path", a)
	}
}

// BenchmarkBusDisabled measures the disabled-bus overhead of the
// packet-forward publish sequence; run with -benchmem to see the
// enforced 0 allocs/op.
func BenchmarkBusDisabled(b *testing.B) {
	p := pkt(1, 2)
	var bus *Bus
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		forwardPath(bus, p, sim.Time(i))
	}
}

// BenchmarkBusCounters is the enabled counterpart: the same sequence
// fanned into the counter registry, for overhead comparison.
func BenchmarkBusCounters(b *testing.B) {
	bus := New()
	NewRegistry(1).Attach(bus)
	p := pkt(1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		forwardPath(bus, p, sim.Time(i))
	}
}

func TestRegistryCounters(t *testing.T) {
	b := New()
	r := NewRegistry(2)
	r.Attach(b)

	p := pkt(1, 2)
	b.PacketSent(1, true, 0, 3, p)
	b.PacketSent(2, true, 0, 3, p)
	p2 := pkt(1, 2)
	p2.VL = 1
	b.PacketSent(3, true, 0, 3, p2)
	b.PacketSent(4, false, 7, 0, p) // host transmit: not a switch port
	b.FECNMarked(5, 0, 3, true, p, 9000, 10)
	b.CreditStalled(6, true, 0, 3, 0, 0, 2094)
	b.QueueSampled(7, 0, 3, true, 0, 12345)
	b.QueueSampled(8, 0, 3, true, 0, 99)
	b.QueueSampled(9, 1, 0, false, 0, 5)

	c := r.Port(0, 3)
	if c == nil {
		t.Fatal("port missing")
	}
	wire := uint64(p.WireBytes())
	if c.FwdPackets != 3 || c.FwdBytesVL[0] != 2*wire || c.FwdBytesVL[1] != wire {
		t.Fatalf("forward counters = %+v", c)
	}
	if c.FECNMarks != 1 || c.CreditStalls != 1 || c.PeakQueuedBytes != 12345 || !c.HostPort {
		t.Fatalf("counters = %+v", c)
	}
	if got := r.Ports(); len(got) != 2 || got[0] != (PortKey{0, 3}) || got[1] != (PortKey{1, 0}) {
		t.Fatalf("ports = %v", got)
	}
	marks, stalls, fp, fb := r.Totals()
	if marks != 1 || stalls != 1 || fp != 3 || fb != 3*wire {
		t.Fatalf("totals = %d %d %d %d", marks, stalls, fp, fb)
	}
	if k, hc := r.HottestPort(); hc == nil || k != (PortKey{0, 3}) {
		t.Fatalf("hottest = %v %v", k, hc)
	}
}

func TestRegistryHottestPortEmpty(t *testing.T) {
	r := NewRegistry(1)
	if _, c := r.HottestPort(); c != nil {
		t.Fatal("hottest port on empty registry")
	}
}
