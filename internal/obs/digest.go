package obs

import "fmt"

// fnvOffset64 and fnvPrime64 are the FNV-1a 64-bit parameters
// (hash/fnv's constants, restated here so the running sum is a plain
// uint64 the checkpoint layer can export and restore).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Digest is an order-sensitive FNV-1a fingerprint over every consumed
// event, hashed field by field in a fixed order: two runs produce the
// same digest iff their event streams are identical in content and
// order. It is the trajectory comparator shared by the determinism
// golden test and the differential kernel check (timing wheel vs
// sim.ReferenceFEL).
//
// The field order and byte packing below are pinned by the committed
// golden file (internal/core/testdata/determinism_golden.json):
// changing either invalidates every recorded digest. The hash state is
// held as a raw uint64 rather than a hash.Hash64 — FNV-1a's running
// state IS its current sum, byte-identical to hash/fnv's output — so a
// checkpoint can export the exact position (State) and a restored run's
// digest continues as if never interrupted (RestoreState).
type Digest struct {
	h uint64
	n uint64
}

// NewDigest returns an empty digest.
func NewDigest() *Digest { return &Digest{h: fnvOffset64} }

func (d *Digest) hash8(v uint64) {
	h := d.h
	for i := 0; i < 8; i++ {
		h = (h ^ (v >> (8 * i) & 0xff)) * fnvPrime64
	}
	d.h = h
}

func digestBool(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// digestKindLimit pins the digested kind set: kinds at or beyond it are
// excluded from the fingerprint. The limit sits where the taxonomy stood
// when the golden trajectories were recorded (the first ten kinds), so
// later, derived telemetry kinds — msg_completed and anything appended
// after it — can be published without invalidating every committed
// digest. The underlying packet trajectory those kinds are derived from
// is still fully covered by the digested kinds.
const digestKindLimit = KindMsgCompleted

// Consume implements Consumer.
func (d *Digest) Consume(e Event) {
	if e.Kind >= digestKindLimit {
		return
	}
	d.n++
	d.hash8(uint64(e.Kind))
	d.hash8(digestBool(e.Switch) | digestBool(e.Hotspot)<<1 | digestBool(e.HostPort)<<2 | digestBool(e.FECN)<<3 | digestBool(e.BECN)<<4)
	d.hash8(uint64(e.Type))
	d.hash8(uint64(e.VL))
	d.hash8(uint64(e.Time))
	d.hash8(uint64(int64(e.Node)))
	d.hash8(uint64(int64(e.Port)))
	d.hash8(e.PktID)
	d.hash8(uint64(int64(e.Src)))
	d.hash8(uint64(int64(e.Dst)))
	d.hash8(uint64(int64(e.Bytes)))
	d.hash8(uint64(int64(e.QueuedBytes)))
	d.hash8(uint64(int64(e.CreditBytes)))
	d.hash8(uint64(e.OldCCTI)<<16 | uint64(e.NewCCTI))
}

// Records returns how many events have been hashed.
func (d *Digest) Records() uint64 { return d.n }

// Sum64 returns the current digest value.
func (d *Digest) Sum64() uint64 { return d.h }

// Sum returns the digest in the fixed-width hex form the golden file
// and the differential reports store.
func (d *Digest) Sum() string { return fmt.Sprintf("%016x", d.Sum64()) }

// State exports the digest's exact position (running sum, record count)
// for a checkpoint.
func (d *Digest) State() (sum, records uint64) { return d.h, d.n }

// RestoreState resumes a digest mid-stream from an exported State, so a
// restored run's fingerprint matches the uninterrupted run's.
func (d *Digest) RestoreState(sum, records uint64) {
	d.h = sum
	d.n = records
}
