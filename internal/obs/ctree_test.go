package obs

import (
	"strings"
	"testing"

	"repro/internal/ib"
)

// synthTree drives a synthetic two-tree event history through the
// analyzer: hotspot 9 rooted at switch 0 port 1 (host-facing) with a
// branch at switch 2 port 0; hotspot 20 rooted at switch 5 port 3; and
// victim flows 3->4 and 6->7 that carried data but were never part of
// the FECN topology.
func synthTree(a *TreeAnalyzer) {
	b := New()
	a.Attach(b)

	send := func(src, dst ib.LID) {
		p := pkt(src, dst)
		b.PacketSent(0, false, int(src), 0, p)
	}
	mark := func(sw, port int, host bool, src, dst ib.LID, queued int) {
		p := pkt(src, dst)
		p.FECN = true
		b.FECNMarked(0, sw, port, host, p, queued, 64)
	}

	// Tree 9: contributors 1, 2, 5.
	for _, src := range []ib.LID{1, 2, 5} {
		send(src, 9)
	}
	mark(0, 1, true, 1, 9, 30000)
	mark(0, 1, true, 2, 9, 31000)
	mark(0, 1, true, 5, 9, 32000)
	mark(2, 0, false, 5, 9, 12000) // congestion spread: branch port
	b.BECNReturned(0, 1, 9, nil)
	b.BECNReturned(0, 2, 9, nil)
	b.CCTIChanged(0, 1, 9, 0, 4)
	b.CCTIChanged(0, 2, 9, 0, 9)

	// Tree 20: contributor 6, marked enough to clear the significance
	// cut next to tree 9.
	send(6, 20)
	mark(5, 3, true, 6, 20, 20000)
	mark(5, 3, true, 6, 20, 21000)
	mark(5, 3, true, 6, 20, 22000)
	b.BECNReturned(0, 6, 20, nil)
	b.CCTIChanged(0, 6, 20, 0, 2)

	// Victims: pure uniform senders.
	send(3, 4)
	send(6, 7)

	// Queue samples refine branch peak depth.
	b.QueueSampled(0, 2, 0, false, 0, 15000)
	b.QueueSampled(0, 3, 3, false, 0, 9999) // unmarked port: no tree membership
}

func TestTreeReconstruction(t *testing.T) {
	a := NewTreeAnalyzer()
	synthTree(a)
	rep := a.Report()

	if len(rep.Trees) != 2 {
		t.Fatalf("trees = %d", len(rep.Trees))
	}
	// Sorted by marks: tree 9 (4 marks) first.
	t9 := rep.Trees[0]
	if t9.Dst != 9 || t9.Marks != 4 {
		t.Fatalf("tree 0 = %+v", t9)
	}
	if t9.Root.Key != (PortKey{0, 1}) || !t9.Root.HostPort {
		t.Fatalf("tree 9 root = %+v", t9.Root)
	}
	if len(t9.Branches) != 1 || t9.Branches[0].Key != (PortKey{2, 0}) {
		t.Fatalf("tree 9 branches = %+v", t9.Branches)
	}
	if t9.Branches[0].PeakQueuedBytes != 15000 {
		t.Fatalf("branch peak = %d", t9.Branches[0].PeakQueuedBytes)
	}
	if len(t9.Contributors) != 3 || t9.BECNs != 2 || t9.MaxCCTI != 9 {
		t.Fatalf("tree 9 flows = %+v", t9)
	}
	t20 := rep.Trees[1]
	if t20.Dst != 20 || t20.Marks != 3 || t20.Root.Key != (PortKey{5, 3}) || len(t20.Branches) != 0 {
		t.Fatalf("tree 20 = %+v", t20)
	}
	if len(rep.Minor) != 0 {
		t.Fatalf("minor trees = %+v", rep.Minor)
	}

	if !rep.HotspotSet()[9] || !rep.HotspotSet()[20] || rep.HotspotSet()[4] {
		t.Fatalf("hotspot set = %v", rep.HotspotSet())
	}
}

func TestFlowClassification(t *testing.T) {
	a := NewTreeAnalyzer()
	synthTree(a)
	rep := a.Report()

	want := map[ib.FlowKey]FlowClass{
		{Src: 1, Dst: 9}:  FlowContributor,
		{Src: 2, Dst: 9}:  FlowContributor,
		{Src: 5, Dst: 9}:  FlowContributor,
		{Src: 6, Dst: 20}: FlowContributor,
		{Src: 3, Dst: 4}:  FlowVictim,
		{Src: 6, Dst: 7}:  FlowVictim,
	}
	for f, cls := range want {
		if got := rep.Class(f); got != cls {
			t.Fatalf("flow %v = %v, want %v", f, got, cls)
		}
	}
	if rep.Class(ib.FlowKey{Src: 99, Dst: 100}) != FlowUnknown {
		t.Fatal("unobserved flow classified")
	}
	if rep.Contributors != 4 || rep.Victims != 2 {
		t.Fatalf("counts = %d/%d", rep.Contributors, rep.Victims)
	}
	// Source 6 contributes to tree 20 and is also a victim on 6->7.
	if rep.ContributorSrcs != 4 || rep.VictimSrcs != 2 {
		t.Fatalf("source counts = %d/%d", rep.ContributorSrcs, rep.VictimSrcs)
	}
}

func TestTreeReportWrite(t *testing.T) {
	a := NewTreeAnalyzer()
	synthTree(a)
	var sb strings.Builder
	if _, err := a.Report().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"congestion trees: 2",
		"4 contributors / 2 victims",
		"dst 9: root sw0.p1 (host-facing)",
		"branch sw2.p0",
		"dst 20: root sw5.p3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSignificanceCut(t *testing.T) {
	a := NewTreeAnalyzer()
	b := New()
	a.Attach(b)

	mark := func(sw int, src, dst ib.LID, times int) {
		for i := 0; i < times; i++ {
			p := pkt(src, dst)
			p.FECN = true
			b.FECNMarked(0, sw, 0, true, p, 30000, 64)
		}
	}
	// Two sustained trees and two transiently marked destinations an
	// order of magnitude below them.
	b.PacketSent(0, false, 1, 0, pkt(1, 9))
	b.PacketSent(0, false, 2, 0, pkt(2, 20))
	b.PacketSent(0, false, 3, 0, pkt(3, 30))
	mark(0, 1, 9, 40)
	mark(1, 2, 20, 35)
	mark(2, 3, 30, 3)
	mark(3, 4, 31, 1)

	rep := a.Report()
	if len(rep.Trees) != 2 || rep.Trees[0].Dst != 9 || rep.Trees[1].Dst != 20 {
		t.Fatalf("trees = %+v", rep.Trees)
	}
	if len(rep.Minor) != 2 || rep.Minor[0].Dst != 30 || rep.Minor[1].Dst != 31 {
		t.Fatalf("minor = %+v", rep.Minor)
	}
	// Flows to minor destinations are victims, not contributors.
	if rep.Class(ib.FlowKey{Src: 3, Dst: 30}) != FlowVictim {
		t.Fatalf("minor-dst flow = %v", rep.Class(ib.FlowKey{Src: 3, Dst: 30}))
	}
	if rep.Class(ib.FlowKey{Src: 1, Dst: 9}) != FlowContributor {
		t.Fatal("sustained-tree flow not a contributor")
	}
	var sb strings.Builder
	if _, err := rep.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2 transiently marked destinations") {
		t.Fatalf("report missing minor summary:\n%s", sb.String())
	}

	// A candidate set with no wide gap is kept whole: comparable trees
	// must not be cut even when the count is large.
	a2 := NewTreeAnalyzer()
	b2 := New()
	a2.Attach(b2)
	for i := 0; i < 8; i++ {
		dst := ib.LID(40 + i)
		for j := 0; j < 20+3*i; j++ {
			p := pkt(ib.LID(i), dst)
			p.FECN = true
			b2.FECNMarked(0, i, 0, true, p, 30000, 64)
		}
	}
	rep2 := a2.Report()
	if len(rep2.Trees) != 8 || len(rep2.Minor) != 0 {
		t.Fatalf("comparable trees cut: %d kept, %d minor", len(rep2.Trees), len(rep2.Minor))
	}
}

func TestEmptyAnalyzer(t *testing.T) {
	rep := NewTreeAnalyzer().Report()
	if len(rep.Trees) != 0 || rep.Contributors != 0 || rep.Victims != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
	var sb strings.Builder
	if _, err := rep.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "congestion trees: 0") {
		t.Fatalf("empty render = %q", sb.String())
	}
}

func TestFlowClassStrings(t *testing.T) {
	if FlowContributor.String() != "contributor" || FlowVictim.String() != "victim" ||
		FlowUnknown.String() != "unknown" {
		t.Fatal("class strings wrong")
	}
}
