package obs

import (
	"bufio"
	"fmt"
	"io"
)

// ChromeTracer is a bus consumer emitting the Chrome trace_event JSON
// format, so a simulation run opens directly in chrome://tracing or
// Perfetto (ui.perfetto.dev). The mapping:
//
//   - every switch and every HCA is a process (pid); switch output
//     ports are threads (tid) of their switch, so each port is its own
//     track. Metadata events name them.
//   - KindQueueSampled becomes a counter track ("C") per port/VL —
//     the obuf occupancy curve of the paper's Figure 5 hotspot port.
//   - KindCCTIChanged becomes a counter track per source CA — the
//     throttle depth over time.
//   - packet sends, deliveries, FECN marks, BECN returns and credit
//     stalls become instant events ("i") on their port's track.
//
// Timestamps are microseconds of simulated time. Close finalizes the
// JSON document; the output is invalid until it runs.
type ChromeTracer struct {
	w     *bufio.Writer
	err   error
	first bool
	n     uint64
	// named tracks whose metadata was already emitted
	procs map[int]bool
	thrds map[[2]int]bool
}

// Switch and host ids share the pid space; hosts keep their LID and
// switches are offset, matching nothing else in the model so collisions
// are impossible.
const chromeSwitchPIDBase = 1 << 20

// NewChromeTracer starts a trace document on w.
func NewChromeTracer(w io.Writer) *ChromeTracer {
	t := &ChromeTracer{
		w:     bufio.NewWriterSize(w, 64<<10),
		first: true,
		procs: make(map[int]bool),
		thrds: make(map[[2]int]bool),
	}
	_, t.err = t.w.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	return t
}

// Attach subscribes the tracer to every kind it renders.
func (t *ChromeTracer) Attach(b *Bus) {
	b.Subscribe(t, KindPacketSent, KindPacketDelivered, KindFECNMarked,
		KindBECNReturned, KindCCTIChanged, KindCreditStalled, KindQueueSampled,
		KindLinkDown, KindLinkUp, KindPacketDropped)
}

// Events returns how many trace events were emitted (excluding
// metadata).
func (t *ChromeTracer) Events() uint64 { return t.n }

func (t *ChromeTracer) emit(s string) {
	if t.err != nil {
		return
	}
	if !t.first {
		if _, t.err = t.w.WriteString(","); t.err != nil {
			return
		}
	}
	t.first = false
	_, t.err = t.w.WriteString(s)
}

// pid maps an event location to a trace process id, emitting the
// process metadata on first sight.
func (t *ChromeTracer) pid(sw bool, node int) int {
	pid := node
	name := fmt.Sprintf("hca %d", node)
	if sw {
		pid = chromeSwitchPIDBase + node
		name = fmt.Sprintf("switch %d", node)
	}
	if !t.procs[pid] {
		t.procs[pid] = true
		t.emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":"%s"}}`, pid, name))
	}
	return pid
}

// tid names a port track within its process on first sight.
func (t *ChromeTracer) tid(pid, port int, hostPort bool) int {
	key := [2]int{pid, port}
	if !t.thrds[key] {
		t.thrds[key] = true
		name := fmt.Sprintf("port %d", port)
		if hostPort {
			name += " (host-facing)"
		}
		t.emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}}`, pid, port, name))
	}
	return port
}

// Consume implements Consumer.
func (t *ChromeTracer) Consume(e Event) {
	if t.err != nil {
		return
	}
	ts := e.Time.Seconds() * 1e6
	pid := t.pid(e.Switch, e.Node)
	tid := t.tid(pid, e.Port, e.HostPort)
	switch e.Kind {
	case KindQueueSampled:
		t.emit(fmt.Sprintf(
			`{"name":"qbytes p%d vl%d","ph":"C","ts":%.4f,"pid":%d,"args":{"bytes":%d}}`,
			e.Port, e.VL, ts, pid, e.QueuedBytes))
	case KindCCTIChanged:
		t.emit(fmt.Sprintf(
			`{"name":"ccti dst%d","ph":"C","ts":%.4f,"pid":%d,"args":{"ccti":%d}}`,
			e.Dst, ts, pid, e.NewCCTI))
	case KindPacketSent, KindPacketDelivered:
		name := "tx"
		if e.Kind == KindPacketDelivered {
			name = "rx"
		}
		t.emit(fmt.Sprintf(
			`{"name":"%s %s %d->%d","ph":"i","s":"t","ts":%.4f,"pid":%d,"tid":%d,"args":{"bytes":%d,"fecn":%v}}`,
			name, e.Type, e.Src, e.Dst, ts, pid, tid, e.Bytes, e.FECN))
	case KindFECNMarked:
		t.emit(fmt.Sprintf(
			`{"name":"FECN %d->%d","ph":"i","s":"p","ts":%.4f,"pid":%d,"tid":%d,"args":{"queued":%d,"credits":%d}}`,
			e.Src, e.Dst, ts, pid, tid, e.QueuedBytes, e.CreditBytes))
	case KindBECNReturned:
		t.emit(fmt.Sprintf(
			`{"name":"BECN flow %d->%d","ph":"i","s":"p","ts":%.4f,"pid":%d,"tid":%d}`,
			e.Src, e.Dst, ts, pid, tid))
	case KindCreditStalled:
		t.emit(fmt.Sprintf(
			`{"name":"stall vl%d","ph":"i","s":"t","ts":%.4f,"pid":%d,"tid":%d,"args":{"credits":%d,"need":%d}}`,
			e.VL, ts, pid, tid, e.CreditBytes, e.Bytes))
	case KindLinkDown, KindLinkUp:
		name := "link down"
		if e.Kind == KindLinkUp {
			name = "link up"
		}
		t.emit(fmt.Sprintf(
			`{"name":"%s","ph":"i","s":"p","ts":%.4f,"pid":%d,"tid":%d}`,
			name, ts, pid, tid))
	case KindPacketDropped:
		what := fmt.Sprintf("drop %s %d->%d", e.Type, e.Src, e.Dst)
		if e.PktID == 0 {
			what = fmt.Sprintf("drop credit vl%d", e.VL)
		}
		t.emit(fmt.Sprintf(
			`{"name":"%s","ph":"i","s":"t","ts":%.4f,"pid":%d,"tid":%d,"args":{"bytes":%d}}`,
			what, ts, pid, tid, e.Bytes))
	default:
		return
	}
	t.n++
}

// Close terminates the JSON document and flushes it.
func (t *ChromeTracer) Close() error {
	if t.err == nil {
		_, t.err = t.w.WriteString("]}\n")
	}
	if err := t.w.Flush(); t.err == nil {
		t.err = err
	}
	return t.err
}

var _ Consumer = (*ChromeTracer)(nil)
