package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). The kernel carries its own
// implementation rather than math/rand so that experiment trajectories are
// reproducible byte-for-byte regardless of Go release, and so every model
// component can own an independent stream derived from a scenario seed —
// the same discipline OMNeT++ enforces with per-module RNG streams.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances *x and returns the next output. It is used both for
// seeding and for deriving independent substreams.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed. Distinct seeds give
// statistically independent streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Derive returns a new independent stream keyed by (r's seed material,
// label). It does not disturb r's own sequence position; callers use it at
// setup time to hand each model component its own stream.
func (r *RNG) Derive(label uint64) *RNG {
	x := r.s[0] ^ (r.s[2] << 1) ^ label*0x2545f4914f6cdd1d
	return NewRNG(splitmix64(&x))
}

// State returns the generator's current position as its raw xoshiro256**
// state words, for checkpointing. SetState restores it exactly, so a
// restored stream continues the identical sequence.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the generator's position with a previously
// exported State. The all-zero state is invalid for xoshiro and panics.
func (r *RNG) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		panic("sim: restoring all-zero RNG state")
	}
	r.s = s
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift with rejection for exact uniformity.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// ExpDuration returns an exponentially distributed duration with the
// given mean, useful for Poisson traffic models.
func (r *RNG) ExpDuration(mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return Duration(-float64(mean) * math.Log(u))
}
