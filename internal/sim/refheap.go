package sim

// ReferenceFEL is the binary min-heap future-event list the simulator
// used before the timing-wheel kernel. It is kept as a live, runtime-
// selectable kernel rather than dead history: because it implements the
// same (time, seq) total order with a completely different data
// structure, running a scenario on both kernels and comparing the full
// trajectories (core.RunDifferential, `paperbench -diff-kernel`) turns
// the golden-snapshot test into a continuous cross-implementation
// check — an ordering bug in either kernel shows up as a divergence.
//
// The implementation is deliberately the textbook array heap with
// swap-based sifts: simple enough to audit by eye, and sharing no code
// with the wheel (not even the wheel's overflow heap, which uses
// hole-based sifts).
type ReferenceFEL struct {
	items []*Event
}

// Len returns the number of pending events.
func (h *ReferenceFEL) Len() int { return len(h.items) }

// push inserts e, restoring the heap order by sifting it up.
func (h *ReferenceFEL) push(e *Event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(h.items[i], h.items[p]) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

// peek returns the earliest event without removing it, or nil if empty.
func (h *ReferenceFEL) peek() *Event {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

// pop removes and returns the earliest event, or nil if empty.
func (h *ReferenceFEL) pop() *Event {
	n := len(h.items)
	if n == 0 {
		return nil
	}
	top := h.items[0]
	h.items[0] = h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && eventLess(h.items[l], h.items[least]) {
			least = l
		}
		if r < n && eventLess(h.items[r], h.items[least]) {
			least = r
		}
		if least == i {
			break
		}
		h.items[i], h.items[least] = h.items[least], h.items[i]
		i = least
	}
	return top
}

// UseReferenceFEL switches the simulator from the timing wheel onto the
// reference binary-heap kernel. Events already pending (for example a
// metrics collector's warmup snapshot scheduled at build time) migrate
// across in (time, seq) order, so the switch is trajectory-neutral at
// any point outside Run. Switching is one-way and idempotent.
func (s *Simulator) UseReferenceFEL() {
	if s.running {
		panic("sim: UseReferenceFEL while running")
	}
	if s.ref != nil {
		return
	}
	ref := &ReferenceFEL{}
	for {
		e := s.queue.pop()
		if e == nil {
			break
		}
		ref.push(e)
	}
	s.ref = ref
}

// UsingReferenceFEL reports whether the reference kernel is active.
func (s *Simulator) UsingReferenceFEL() bool { return s.ref != nil }
