package sim

import "slices"

// Event is a scheduled callback. Events are created through the
// Simulator's Schedule methods; cancelling marks the event dead and it
// is discarded when it reaches the head of the queue. Fired and dead
// events are recycled: a held *Event is only valid until its event
// fires, so holders that may outlive it must remember Seq() and compare
// before acting on the handle.
//
// The field order is the access order of the hot paths: push touches
// (time, next), slot load/sort touches (time, seq, next), dispatch
// touches (time, dead, act). Keeping the sort key and the chain link in
// the first 24 bytes means loading a slot walks one cache line per
// event, and collapsing the old separate `fn func()` field into the act
// interface (func values are pointer-shaped, so the conversion does not
// allocate) shrinks the struct from 56 to 48 bytes — 4096 pooled events
// fit ~33 KB less cache.
type Event struct {
	time Time
	seq  uint64 // insertion order; breaks ties deterministically (FIFO)
	next *Event // intrusive wheel-slot chain; nil outside a chain
	act  Action
	dead bool
}

// Action is an allocation-free alternative to a closure callback:
// model components pre-allocate an Action and re-schedule it instead of
// capturing state in a new func value per event.
type Action interface {
	// Act runs the callback.
	Act()
}

// funcAction adapts a plain closure to the Action interface. A func
// value is a single pointer, so the interface conversion is direct —
// no boxing allocation — and every event dispatches through one code
// path (act.Act()) instead of a per-event fn-vs-act branch.
type funcAction func()

// Act runs the wrapped closure.
func (f funcAction) Act() { f() }

// Time returns the instant the event fires (or was scheduled to fire).
func (e *Event) Time() Time { return e.time }

// Seq returns the event's unique schedule sequence number; holders that
// keep an *Event across its firing use it to detect recycled handles.
func (e *Event) Seq() uint64 { return e.seq }

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.dead }

// eventLess is the future-event-list order: time, then insertion
// sequence (FIFO among equal times). It is a total order because
// sequence numbers are unique, so every correct FEL implementation
// yields the same trajectory.
func eventLess(a, b *Event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// The future-event list is a hierarchical timing wheel: near-future
// events hash into fixed-width time slots (O(1) insert, amortized O(1)
// extract with a lazy per-slot sort), far-future events wait in an
// overflow min-heap and migrate into the wheel as the cursor advances.
// The model's event horizon is overwhelmingly near-future — credit
// returns after a 10 ns propagation, serializations of 44 ns to 840 ns,
// 100 ns hop latencies — so the common case never touches the heap,
// replacing the old binary heap's O(log n) sift (and its pointer-chasing
// cache misses at tens-of-thousands pending) with chain pushes.
//
// Slots are intrusive singly-linked chains through Event.next, so a
// push is two pointer writes and never allocates; the steady-state
// zero-allocation budget depends on this (per-slot slices would keep
// growing whenever a slot sets an occupancy record). The chain entered
// by the cursor is unlinked into one shared scratch buffer and sorted
// there, so extraction cost is one pass plus a small sort amortized
// over the slot's events.
//
// Slot width is 2^wheelGranShift ps and the wheel spans wheelSlots of
// them (16.384 ns * 4096 ≈ 67 us). Only CC recovery-timer ticks
// (≈153.6 us) and idle-source wakeups reach the overflow heap.
const (
	wheelGranShift = 14             // log2 slot width in picoseconds
	wheelSlots     = 1 << 12        // slots in the wheel (power of two)
	wheelMask      = wheelSlots - 1 // index mask
	sortThreshold  = 32             // insertion sort below, pdqsort above

	// initialScratch is the pre-sized capacity of the shared slot
	// scratch buffer. Slot occupancy is bounded by how many model
	// entities can schedule within one 16 ns window, far below this;
	// the headroom keeps steady state allocation-free while append
	// doubling still guarantees correctness beyond it.
	initialScratch = 1024
)

// eventQueue is the timing-wheel future-event list. Determinism
// contract: pop yields events in exact eventLess order — byte-identical
// trajectories to the binary-heap implementation it replaced
// (TestHeapMatchesSortReference and the cross-package golden test pin
// this).
type eventQueue struct {
	// slots[s & wheelMask] chains (unordered, via Event.next) the
	// events of absolute slot s. Wheel slots cover absolute slots
	// [absSlot, absSlot+wheelSlots).
	slots []*Event
	// absSlot is the cursor: the absolute slot number (time >>
	// wheelGranShift) the queue head currently lies in.
	absSlot int64
	// cur is the sorted scratch view of the current slot once loaded;
	// curIdx is the pop position within it.
	cur       []*Event
	curIdx    int
	curLoaded bool
	// wcount is the number of events resident in the wheel (chains
	// plus the loaded scratch).
	wcount int
	// spare is sortSlot's partition buffer; retained across loads so the
	// two-timestamp fast path stays allocation-free.
	spare []*Event
	// overflow holds events at or beyond the wheel horizon.
	overflow overflowHeap
}

func (q *eventQueue) init() {
	q.slots = make([]*Event, wheelSlots)
	q.cur = make([]*Event, 0, initialScratch)
}

func (q *eventQueue) Len() int { return q.wcount + len(q.overflow.items) }

// push inserts e, keeping the horizon invariant: wheel chains hold only
// absolute slots within [absSlot, absSlot+wheelSlots). The body is the
// hot straight-line case — an in-horizon chain prepend, two pointer
// writes — sized to inline at ScheduleAction call sites; everything
// rare (cursor rewind, overflow, the mid-drain slot, empty-queue
// re-anchor) lives in pushSlow.
//
// One deliberate divergence from the original single-path push: an
// empty queue whose stale cursor is already at or behind the new
// event's in-horizon slot is NOT re-anchored — the event chains into
// its slot and peek walks the cursor forward (bounded by wheelSlots).
// Pop order is unaffected; only the walk length differs, and only on
// the empty→non-empty transition.
func (q *eventQueue) push(e *Event) {
	s := int64(e.time) >> wheelGranShift
	d := s - q.absSlot
	// One unsigned compare rejects both the behind-cursor (d < 0) and
	// beyond-horizon (d >= wheelSlots) cases.
	if uint64(d) >= wheelSlots || (d == 0 && q.curLoaded) {
		q.pushSlow(e, s, d)
		return
	}
	idx := int(s) & wheelMask
	e.next = q.slots[idx]
	q.slots[idx] = e
	q.wcount++
}

// pushSlow handles the rare push cases split out of the hot path.
func (q *eventQueue) pushSlow(e *Event, s, d int64) {
	if d == 0 && q.curLoaded {
		// The current slot is mid-drain; keep its sorted tail sorted.
		q.cur = sortedInsert(q.cur, q.curIdx, e)
		q.wcount++
		return
	}
	if q.wcount == 0 && len(q.overflow.items) == 0 {
		// Empty queue with the cursor ahead of (or far behind) the new
		// event: re-anchor the cursor at it.
		q.absSlot = s
		d = 0
	} else if d < 0 {
		// The cursor overshot: it parked on the next pending event's
		// slot when a run returned at its horizon, and a later
		// schedule landed between the clock and that event. Rewind.
		q.rewind(s)
		d = 0
	}
	if d >= wheelSlots {
		q.overflow.push(e)
		return
	}
	idx := int(s) & wheelMask
	e.next = q.slots[idx]
	q.slots[idx] = e
	q.wcount++
}

// rewind moves the cursor back to absolute slot s (s < absSlot). Any
// chain whose absolute slot would fall outside the shrunk horizon
// [s, s+wheelSlots) is evicted to the overflow heap so slot indices
// cannot alias two absolute slots.
func (q *eventQueue) rewind(s int64) {
	old := q.absSlot
	if q.curLoaded {
		// Return the undrained tail of the current slot to its chain;
		// it re-sorts when the cursor comes back.
		idx := int(old) & wheelMask
		for i := len(q.cur) - 1; i >= q.curIdx; i-- {
			ev := q.cur[i]
			ev.next = q.slots[idx]
			q.slots[idx] = ev
			q.cur[i] = nil
		}
		q.resetCur()
	}
	q.absSlot = s
	if q.wcount == 0 {
		return
	}
	span := old - s
	if span > wheelSlots {
		span = wheelSlots
	}
	for k := int64(0); k < span; k++ {
		idx := int(s+wheelSlots+k) & wheelMask
		head := q.slots[idx]
		if head == nil {
			continue
		}
		// Only evict chains actually beyond the new horizon: the index
		// may instead hold events of an in-horizon absolute slot.
		if int64(head.time)>>wheelGranShift < s+wheelSlots {
			continue
		}
		q.slots[idx] = nil
		for head != nil {
			n := head.next
			head.next = nil
			q.overflow.push(head)
			q.wcount--
			head = n
		}
	}
}

// migrate pulls overflow events that now fit the wheel horizon into
// their chains.
func (q *eventQueue) migrate() {
	horizon := q.absSlot + wheelSlots
	for len(q.overflow.items) > 0 {
		e := q.overflow.items[0]
		s := int64(e.time) >> wheelGranShift
		if s >= horizon {
			break
		}
		q.overflow.pop()
		if s == q.absSlot && q.curLoaded {
			q.cur = sortedInsert(q.cur, q.curIdx, e)
		} else {
			idx := int(s) & wheelMask
			e.next = q.slots[idx]
			q.slots[idx] = e
		}
		q.wcount++
	}
}

// load unlinks the chain at idx into the scratch buffer and sorts it;
// the slot's events are then popped by index.
//
// The chain is a LIFO prepend list, so reversing the unlinked buffer
// recovers push order — ascending seq for plain pushes. A slot whose
// events share one timestamp (the dominant case: credit returns,
// serializer completions and wakeups coincide, and a 16 ns slot rarely
// spans two distinct instants) is therefore already in (time, seq)
// order after the reversal, and the O(k log k) comparison sort collapses
// to an O(k) sortedness check. Only slots whose timestamps interleave
// out of push order (or that migrate() prepended overflow events into)
// pay for a real sort.
func (q *eventQueue) load(idx int) {
	// Callers guarantee a non-empty chain. Sortedness is checked during
	// the walk itself — strictly descending chain order is exactly
	// ascending (time, seq) order after the reversal — so the common
	// case costs one pass plus the reversal, with no separate scan.
	e := q.slots[idx]
	q.slots[idx] = nil
	cur := append(q.cur[:0], e)
	prev := e
	e = e.next
	prev.next = nil
	sorted := true
	for e != nil {
		n := e.next
		e.next = nil
		cur = append(cur, e)
		if !eventLess(e, prev) {
			sorted = false
		}
		prev = e
		e = n
	}
	for i, j := 0, len(cur)-1; i < j; i, j = i+1, j-1 {
		cur[i], cur[j] = cur[j], cur[i]
	}
	if !sorted {
		q.sortSlot(cur)
	}
	q.cur = cur
	q.curIdx = 0
	q.curLoaded = true
}

// sortSlot restores (time, seq) order in a slot buffer that failed
// load's sortedness check. The check almost only fails when a 16 ns
// slot straddles two distinct instants whose pushes interleaved: the
// buffer is then two seq-ascending runs shuffled together, and a stable
// two-way partition by timestamp re-sorts it in O(k) pointer moves with
// no comparator calls. Anything else — three or more distinct times, or
// a within-time seq inversion (rewind re-pushes reverse the chain) —
// falls back to the comparison sort.
func (q *eventQueue) sortSlot(s []*Event) {
	a := s[0].time
	b := a
	lastA, lastB := s[0].seq, uint64(0)
	ok := true
	for _, e := range s[1:] {
		switch e.time {
		case a:
			ok = ok && e.seq > lastA
			lastA = e.seq
		case b:
			ok = ok && e.seq > lastB
			lastB = e.seq
		default:
			if a != b {
				ok = false
			} else {
				b = e.time
				lastB = e.seq
			}
		}
		if !ok {
			sortEvents(s)
			return
		}
	}
	if a == b {
		// Single timestamp yet unsorted: within-time inversion.
		sortEvents(s)
		return
	}
	lo := a
	if b < a {
		lo = b
	}
	spare := q.spare[:0]
	w := 0
	for _, e := range s {
		if e.time == lo {
			s[w] = e
			w++
		} else {
			spare = append(spare, e)
		}
	}
	copy(s[w:], spare)
	for i := range spare {
		spare[i] = nil
	}
	q.spare = spare[:0]
}

// resetCur clears the scratch view of the current slot.
func (q *eventQueue) resetCur() {
	q.cur = q.cur[:0]
	q.curIdx = 0
	q.curLoaded = false
}

// peek returns the earliest event without removing it, or nil if empty.
// It advances the cursor over drained slots and loads the slot it lands
// on, so a following pop is O(1).
func (q *eventQueue) peek() *Event {
	for q.wcount > 0 || len(q.overflow.items) > 0 {
		if q.curLoaded {
			if q.curIdx < len(q.cur) {
				return q.cur[q.curIdx]
			}
			q.resetCur()
		}
		idx := int(q.absSlot) & wheelMask
		if q.slots[idx] != nil {
			q.load(idx)
			return q.cur[0]
		}
		if q.wcount == 0 {
			// Everything pending is far-future: jump the cursor to
			// the overflow minimum and pull its era in.
			q.absSlot = int64(q.overflow.items[0].time) >> wheelGranShift
			q.migrate()
			continue
		}
		q.absSlot++
		// Absolute slot absSlot+wheelSlots-1 became representable;
		// migrate any overflow events that belong in it.
		if len(q.overflow.items) > 0 {
			q.migrate()
		}
	}
	return nil
}

// pop removes and returns the earliest event, or nil if empty.
func (q *eventQueue) pop() *Event {
	e := q.peek()
	if e == nil {
		return nil
	}
	q.cur[q.curIdx] = nil
	q.curIdx++
	q.wcount--
	if q.curIdx == len(q.cur) {
		// Eagerly release the drained scratch: a re-anchoring push may
		// target this slot again before peek advances the cursor.
		q.resetCur()
	}
	return e
}

// sortedInsert places e into the sorted slice s, keeping positions
// before lo (already popped) untouched.
func sortedInsert(s []*Event, lo int, e *Event) []*Event {
	i, j := lo, len(s)
	for i < j {
		h := int(uint(i+j) >> 1)
		if eventLess(s[h], e) {
			i = h + 1
		} else {
			j = h
		}
	}
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = e
	return s
}

// sortEvents orders a slot by (time, seq): insertion sort while small
// (slots typically hold a few tens of events), pdqsort beyond.
func sortEvents(s []*Event) {
	if len(s) <= sortThreshold {
		for i := 1; i < len(s); i++ {
			e := s[i]
			j := i - 1
			for j >= 0 && eventLess(e, s[j]) {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = e
		}
		return
	}
	slices.SortFunc(s, func(a, b *Event) int {
		if eventLess(a, b) {
			return -1
		}
		if eventLess(b, a) {
			return 1
		}
		return 0
	})
}

// overflowHeap is a binary min-heap ordered by eventLess, holding the
// far-future tail of the event population. A hand-rolled heap (rather
// than container/heap) avoids interface boxing.
type overflowHeap struct {
	items []*Event
}

// push inserts e into the heap.
func (h *overflowHeap) push(e *Event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(e, h.items[parent]) {
			break
		}
		h.items[i] = h.items[parent]
		i = parent
	}
	h.items[i] = e
}

// pop removes and returns the earliest event, or nil if empty.
func (h *overflowHeap) pop() *Event {
	n := len(h.items)
	if n == 0 {
		return nil
	}
	top := h.items[0]
	last := h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	if n > 1 {
		i := 0
		n--
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			child := l
			if r := l + 1; r < n && eventLess(h.items[r], h.items[l]) {
				child = r
			}
			if !eventLess(h.items[child], last) {
				break
			}
			h.items[i] = h.items[child]
			i = child
		}
		h.items[i] = last
	}
	return top
}
