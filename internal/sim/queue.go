package sim

// Event is a scheduled callback. Events are created through the
// Simulator's Schedule methods; cancelling marks the event dead and it
// is discarded when it reaches the head of the queue. Fired and dead
// events are recycled: a held *Event is only valid until its event
// fires, so holders that may outlive it must remember Seq() and compare
// before acting on the handle.
type Event struct {
	time Time
	seq  uint64 // insertion order; breaks ties deterministically (FIFO)
	fn   func()
	act  Action
	idx  int // heap index, -1 when not queued
	dead bool
}

// Action is an allocation-free alternative to a closure callback:
// model components pre-allocate an Action and re-schedule it instead of
// capturing state in a new func value per event.
type Action interface {
	// Act runs the callback.
	Act()
}

// Time returns the instant the event fires (or was scheduled to fire).
func (e *Event) Time() Time { return e.time }

// Seq returns the event's unique schedule sequence number; holders that
// keep an *Event across its firing use it to detect recycled handles.
func (e *Event) Seq() uint64 { return e.seq }

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.dead }

// eventQueue is a binary min-heap ordered by (time, seq). A hand-rolled
// heap (rather than container/heap) avoids interface boxing on the hot
// path; the simulator processes tens of millions of events per run.
type eventQueue struct {
	items []*Event
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) less(a, b *Event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// push inserts e into the heap.
func (q *eventQueue) push(e *Event) {
	e.idx = len(q.items)
	q.items = append(q.items, e)
	q.up(e.idx)
}

// pop removes and returns the earliest event, or nil if empty.
func (q *eventQueue) pop() *Event {
	n := len(q.items)
	if n == 0 {
		return nil
	}
	top := q.items[0]
	last := q.items[n-1]
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	if n > 1 {
		q.items[0] = last
		last.idx = 0
		q.down(0)
	}
	top.idx = -1
	return top
}

// peek returns the earliest event without removing it, or nil if empty.
func (q *eventQueue) peek() *Event {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

func (q *eventQueue) up(i int) {
	item := q.items[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(item, q.items[parent]) {
			break
		}
		q.items[i] = q.items[parent]
		q.items[i].idx = i
		i = parent
	}
	q.items[i] = item
	item.idx = i
}

func (q *eventQueue) down(i int) {
	n := len(q.items)
	item := q.items[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && q.less(q.items[r], q.items[l]) {
			child = r
		}
		if !q.less(q.items[child], item) {
			break
		}
		q.items[i] = q.items[child]
		q.items[i].idx = i
		i = child
	}
	q.items[i] = item
	item.idx = i
}
