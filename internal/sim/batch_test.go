package sim

import (
	"fmt"
	"testing"
)

// The batched slot-drain loop (runWheel/drainSlot/drainSlotTo) replaces
// the per-event peek/pop loop; these tests pin its edge cases — the
// horizon landing inside a slot, callbacks mutating the draining slot,
// a hook installed mid-run — and the sortSlot partition fast path.

// TestHorizonInsideSlot puts two events in the same 16 ns wheel slot
// with the run horizon strictly between them: the first must fire, the
// second must stay queued, and the clock must park exactly at the
// horizon.
func TestHorizonInsideSlot(t *testing.T) {
	s := New()
	base := Time(1 << wheelGranShift) // slot 1 start
	var fired []string
	s.ScheduleAt(base+1, func() { fired = append(fired, "a") })
	s.ScheduleAt(base+9, func() { fired = append(fired, "b") })
	end := base + 5
	n := s.RunUntil(end)
	if n != 1 || len(fired) != 1 || fired[0] != "a" {
		t.Fatalf("first phase: n=%d fired=%v", n, fired)
	}
	if s.Now() != end {
		t.Fatalf("clock = %v, want horizon %v", s.Now(), end)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	n = s.Run()
	if n != 1 || len(fired) != 2 || fired[1] != "b" {
		t.Fatalf("second phase: n=%d fired=%v", n, fired)
	}
}

// TestCancelLaterEventInDrainingSlot cancels, from inside a callback, a
// same-timestamp event later in the slot being drained. The batched
// drain must still skip it.
func TestCancelLaterEventInDrainingSlot(t *testing.T) {
	s := New()
	tm := Time(3 << wheelGranShift)
	var fired []int
	var victim *Event
	s.ScheduleAt(tm, func() {
		fired = append(fired, 1)
		s.Cancel(victim)
	})
	victim = s.ScheduleAt(tm, func() { fired = append(fired, 2) })
	s.ScheduleAt(tm, func() { fired = append(fired, 3) })
	if n := s.Run(); n != 2 {
		t.Fatalf("executed %d events, want 2", n)
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired = %v, want [1 3]", fired)
	}
}

// TestPushIntoDrainingSlot schedules, from a draining event, more
// events into the same slot: one at the same timestamp (later seq) and
// one at a later timestamp still inside the slot. Both must execute in
// this run, in (time, seq) order.
func TestPushIntoDrainingSlot(t *testing.T) {
	s := New()
	tm := Time(5 << wheelGranShift)
	var fired []string
	s.ScheduleAt(tm, func() {
		fired = append(fired, "root")
		s.ScheduleAt(tm, func() { fired = append(fired, "same-time") })
		s.ScheduleAt(tm+3, func() { fired = append(fired, "same-slot") })
	})
	s.ScheduleAt(tm, func() { fired = append(fired, "sibling") })
	s.Run()
	want := []string{"root", "sibling", "same-time", "same-slot"}
	if fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
}

// TestExecHookInstalledMidRun installs the FEL-order probe from a
// callback. The batched loop falls back to the generic loop at the next
// slot boundary, so events in later slots must all be observed.
func TestExecHookInstalledMidRun(t *testing.T) {
	s := New()
	slotW := Time(1 << wheelGranShift)
	var hooked []Time
	for i := Time(1); i <= 4; i++ {
		at := i * 10 * slotW
		s.ScheduleAt(at, func() {})
		if i == 2 {
			s.ScheduleAt(at, func() {
				s.SetExecHook(func(tm Time, seq uint64) { hooked = append(hooked, tm) })
			})
		}
	}
	s.Run()
	// Slots after the installing slot (events at 30·slotW and 40·slotW)
	// must be hooked; the installing slot itself may complete unhooked.
	if len(hooked) != 2 || hooked[0] != 30*slotW || hooked[1] != 40*slotW {
		t.Fatalf("hooked = %v, want [30, 40] slot-widths", hooked)
	}
}

// TestStopMidSlot stops the run from the middle of a slot; the rest of
// the slot must survive for the next run.
func TestStopMidSlot(t *testing.T) {
	s := New()
	tm := Time(2 << wheelGranShift)
	var fired []int
	s.ScheduleAt(tm, func() { fired = append(fired, 1); s.Stop() })
	s.ScheduleAt(tm, func() { fired = append(fired, 2) })
	s.ScheduleAt(tm, func() { fired = append(fired, 3) })
	if n := s.Run(); n != 1 {
		t.Fatalf("first run executed %d, want 1", n)
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	if n := s.Run(); n != 2 {
		t.Fatalf("second run executed %d, want 2", n)
	}
	if fmt.Sprint(fired) != "[1 2 3]" {
		t.Fatalf("fired = %v", fired)
	}
}

// TestSortSlotTwoTimestampPartition drives the load-time partition fast
// path: two distinct timestamps in one slot, pushed interleaved so the
// reversed chain fails the sortedness check. Pop order must still be
// exact (time, seq).
func TestSortSlotTwoTimestampPartition(t *testing.T) {
	s := New()
	base := Time(7 << wheelGranShift)
	lo, hi := base+1, base+2
	var fired []string
	// Interleave hi/lo pushes: hi first so the buffer is unsorted.
	for i := 0; i < 20; i++ {
		tm, tag := hi, "hi"
		if i%2 == 1 {
			tm, tag = lo, "lo"
		}
		k := i
		s.ScheduleAt(tm, func() { fired = append(fired, fmt.Sprintf("%s%d", tag, k)) })
	}
	s.Run()
	if len(fired) != 20 {
		t.Fatalf("fired %d events", len(fired))
	}
	// All lo events (ascending schedule order) then all hi events.
	for i, f := range fired {
		wantTag := "lo"
		if i >= 10 {
			wantTag = "hi"
		}
		if f[:2] != wantTag {
			t.Fatalf("fired[%d] = %s, want tag %s (full: %v)", i, f, wantTag, fired)
		}
	}
	for i := 1; i < 10; i++ {
		if fired[i] <= fired[i-1] && len(fired[i]) == len(fired[i-1]) {
			t.Fatalf("lo group out of seq order: %v", fired[:10])
		}
	}
}

// TestSortSlotManyTimestampsFallback forces the comparison-sort
// fallback: more than two distinct timestamps in one slot, pushed in
// descending time order.
func TestSortSlotManyTimestampsFallback(t *testing.T) {
	s := New()
	base := Time(9 << wheelGranShift)
	var fired []Time
	for off := Time(8); off >= 1; off-- {
		at := base + off
		s.ScheduleAt(at, func() { fired = append(fired, at) })
	}
	s.Run()
	if len(fired) != 8 {
		t.Fatalf("fired %d", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] <= fired[i-1] {
			t.Fatalf("out of order: %v", fired)
		}
	}
}

// TestBatchedSameTimeMatchesReference cross-checks a same-timestamp-
// heavy random workload against the reference heap kernel: the batched
// wheel drain must produce a byte-identical execution trace.
func TestBatchedSameTimeMatchesReference(t *testing.T) {
	trace := func(useRef bool) []string {
		s := New()
		if useRef {
			s.UseReferenceFEL()
		}
		rng := NewRNG(42)
		var out []string
		n := 0
		var spawn func()
		spawn = func() {
			out = append(out, fmt.Sprintf("%d@%d", n, s.Now()))
			n++
			if n >= 4000 {
				return
			}
			// Cluster timestamps so slots hold many equal times plus
			// occasional two-instant straddles.
			d := Duration(rng.Intn(3)) * Duration(1<<wheelGranShift) / 2
			s.Schedule(d, spawn)
			if rng.Intn(4) == 0 {
				s.Schedule(d, spawn)
			}
		}
		s.ScheduleAt(0, spawn)
		s.RunUntil(Time(1 << 40))
		return out
	}
	a, b := trace(false), trace(true)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: wheel %d vs ref %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: wheel %s vs ref %s", i, a[i], b[i])
		}
	}
}
