package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// These tests pin the wheel's behind-cursor and at-cursor edge cases:
// a push landing exactly in the cursor's current slot — including one
// arriving mid-drain, after some of the slot's events already popped —
// must take its exact eventLess position among the events still
// pending, never behind later-time events and never lost. The paths
// under test are eventQueue.push's `d == 0 && curLoaded` branch
// (sortedInsert into the live scratch) and rewind's undrained-tail
// restoration plus out-of-horizon chain eviction.

// drain pops every remaining event and returns them in pop order.
func drain(q *eventQueue) []*Event {
	var out []*Event
	for {
		e := q.pop()
		if e == nil {
			return out
		}
		out = append(out, e)
	}
}

// requireOrder fails unless events are in strict eventLess order.
func requireOrder(t *testing.T, events []*Event) {
	t.Helper()
	for i := 1; i < len(events); i++ {
		if !eventLess(events[i-1], events[i]) {
			t.Fatalf("pop %d out of order: (t=%d,seq=%d) before (t=%d,seq=%d)",
				i, events[i-1].time, events[i-1].seq, events[i].time, events[i].seq)
		}
	}
}

// TestWheelPushAtCursorSlotMidDrain covers the exact satellite case: a
// slot is partially drained when new events land in it — one at the
// very time of an already-popped event, one between the survivors. The
// newcomers must pop in eventLess position among the survivors, not be
// parked behind the drained scratch or deferred a full wheel lap.
func TestWheelPushAtCursorSlotMidDrain(t *testing.T) {
	var q eventQueue
	q.init()
	slotW := Time(1) << wheelGranShift
	// Three events inside one slot.
	q.push(&Event{time: 5, seq: 1})
	q.push(&Event{time: slotW - 1, seq: 2})
	q.push(&Event{time: 10, seq: 3})
	if e := q.pop(); e.time != 5 || e.seq != 1 {
		t.Fatalf("first pop = (t=%d,seq=%d)", e.time, e.seq)
	}
	// Mid-drain pushes into the same (now current and loaded) slot:
	// same time as the drained event, and between the survivors.
	q.push(&Event{time: 5, seq: 4})
	q.push(&Event{time: 11, seq: 5})
	got := drain(&q)
	want := []struct {
		time Time
		seq  uint64
	}{{5, 4}, {10, 3}, {11, 5}, {slotW - 1, 2}}
	if len(got) != len(want) {
		t.Fatalf("drained %d events, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].time != w.time || got[i].seq != w.seq {
			t.Fatalf("pop %d = (t=%d,seq=%d), want (t=%d,seq=%d)",
				i, got[i].time, got[i].seq, w.time, w.seq)
		}
	}
}

// TestWheelRewindToOvershotCursorSlot covers the rewind interaction: the
// cursor has overshot (parked on a far event's slot by peek), the far
// slot is loaded, and a push lands behind it — then another lands
// exactly in the rewound cursor's slot. Order must still be global
// eventLess order, and the far slot's undrained tail must survive the
// rewind.
func TestWheelRewindToOvershotCursorSlot(t *testing.T) {
	var q eventQueue
	q.init()
	slotW := Time(1) << wheelGranShift
	far := slotW * 100
	q.push(&Event{time: far, seq: 1})
	q.push(&Event{time: far + 3, seq: 2})
	// peek advances the cursor to the far slot and loads it.
	if e := q.peek(); e.time != far {
		t.Fatalf("peek = t=%d, want %d", e.time, far)
	}
	// Behind-cursor push: rewinds, returning the far slot's (entirely
	// undrained) scratch to its chain.
	q.push(&Event{time: slotW * 2, seq: 3})
	// And one exactly at the rewound cursor's slot time.
	q.push(&Event{time: slotW * 2, seq: 4})
	got := drain(&q)
	want := []uint64{3, 4, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("drained %d events, want %d", len(got), len(want))
	}
	for i, seq := range want {
		if got[i].seq != seq {
			t.Fatalf("pop %d = seq %d, want %d", i, got[i].seq, seq)
		}
	}
	requireOrder(t, got)
}

// TestWheelRewindMidDrainWithEviction stresses the hardest composite:
// a partially drained current slot, a rewind far enough back that the
// old slot's index now aliases an out-of-horizon absolute slot (so its
// returned tail must be evicted to overflow), and a fresh push exactly
// at the new cursor slot. Everything must come back in eventLess order
// with nothing lost.
func TestWheelRewindMidDrainWithEviction(t *testing.T) {
	var q eventQueue
	q.init()
	slotW := Time(1) << wheelGranShift
	base := slotW * Time(wheelSlots) * 3 // park the cursor deep in lap 3
	q.push(&Event{time: base + 1, seq: 1})
	q.push(&Event{time: base + 2, seq: 2})
	q.push(&Event{time: base + 3, seq: 3})
	if e := q.pop(); e.seq != 1 {
		t.Fatalf("first pop = seq %d", e.seq)
	}
	// Rewind more than a full wheel span: the old slot's remaining tail
	// (seqs 2, 3) is now beyond the shrunk horizon and must be evicted.
	low := base - slotW*Time(wheelSlots)*2
	q.push(&Event{time: low, seq: 4})
	// Exactly at the rewound cursor's slot.
	q.push(&Event{time: low + 1, seq: 5})
	got := drain(&q)
	want := []uint64{4, 5, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("drained %d events, want %d", len(got), len(want))
	}
	for i, seq := range want {
		if got[i].seq != seq {
			t.Fatalf("pop %d = seq %d, want %d", i, got[i].seq, seq)
		}
	}
	requireOrder(t, got)
}

// TestWheelCursorSlotRandomized is the property form: random interleaved
// pushes and pops where pushes are biased to land exactly in the
// cursor's current slot (including exactly at the last-popped time, the
// satellite's edge case), checked against a shadow pending-set model —
// every pop must return the eventLess minimum of what is pending at
// that moment, and nothing may be lost or duplicated.
func TestWheelCursorSlotRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		var q eventQueue
		q.init()
		var seq uint64
		var lastPopped Time
		var pending []*Event // shadow model of the queue's content
		pushes, pops := 0, 0
		push := func(tm Time) {
			seq++
			e := &Event{time: tm, seq: seq}
			pending = append(pending, e)
			q.push(e)
			pushes++
		}
		for i := 0; i < 600; i++ {
			switch rng.Intn(3) {
			case 0: // push at/near the last-popped time (cursor's slot)
				push(lastPopped + Time(rng.Int63n(4)))
			case 1: // push anywhere nearby, occasionally far
				d := Time(rng.Int63n(int64(3 * Microsecond)))
				if rng.Intn(20) == 0 {
					d = Time(rng.Int63n(int64(300 * Microsecond)))
				}
				push(lastPopped + d)
			case 2:
				e := q.pop()
				if len(pending) == 0 {
					if e != nil {
						t.Fatalf("trial %d: pop from empty queue returned (t=%d,seq=%d)", trial, e.time, e.seq)
					}
					continue
				}
				min := 0
				for j := 1; j < len(pending); j++ {
					if eventLess(pending[j], pending[min]) {
						min = j
					}
				}
				want := pending[min]
				if e == nil {
					t.Fatalf("trial %d: pop returned nil with %d pending", trial, len(pending))
				}
				if e != want {
					t.Fatalf("trial %d pop %d: got (t=%d,seq=%d), want minimum (t=%d,seq=%d)",
						trial, pops, e.time, e.seq, want.time, want.seq)
				}
				pending = append(pending[:min], pending[min+1:]...)
				lastPopped = e.time
				pops++
			}
		}
		rest := drain(&q)
		if len(rest) != len(pending) {
			t.Fatalf("trial %d: %d left in queue, shadow holds %d", trial, len(rest), len(pending))
		}
		sort.Slice(pending, func(i, j int) bool { return eventLess(pending[i], pending[j]) })
		for i, e := range rest {
			if e != pending[i] {
				t.Fatalf("trial %d: final drain %d = (t=%d,seq=%d), want (t=%d,seq=%d)",
					trial, i, e.time, e.seq, pending[i].time, pending[i].seq)
			}
		}
	}
}
