package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(30*Nanosecond, func() { got = append(got, 3) })
	s.Schedule(10*Nanosecond, func() { got = append(got, 1) })
	s.Schedule(20*Nanosecond, func() { got = append(got, 2) })
	n := s.Run()
	if n != 3 {
		t.Fatalf("executed %d events", n)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("order = %v", got)
		}
	}
	if s.Now() != Time(30*Nanosecond) {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.Schedule(Microsecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: pos %d = %d", i, v)
		}
	}
}

func TestScheduleFromHandler(t *testing.T) {
	s := New()
	var fired []Time
	s.Schedule(Nanosecond, func() {
		fired = append(fired, s.Now())
		s.Schedule(2*Nanosecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != Time(Nanosecond) || fired[1] != Time(3*Nanosecond) {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New()
	var count int
	for i := 1; i <= 10; i++ {
		s.Schedule(Duration(i)*Microsecond, func() { count++ })
	}
	n := s.RunUntil(Time(5 * Microsecond))
	if n != 5 || count != 5 {
		t.Fatalf("ran %d events, count %d", n, count)
	}
	if s.Now() != Time(5*Microsecond) {
		t.Fatalf("clock = %v", s.Now())
	}
	// Remaining events still runnable.
	n = s.RunUntil(Time(100 * Microsecond))
	if n != 5 || count != 10 {
		t.Fatalf("second run: %d events, count %d", n, count)
	}
	// Clock advances to horizon when queue drains.
	if s.Now() != Time(100*Microsecond) {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestRunUntilExactBoundaryInclusive(t *testing.T) {
	s := New()
	ran := false
	s.Schedule(Microsecond, func() { ran = true })
	s.RunUntil(Time(Microsecond))
	if !ran {
		t.Fatal("event at the horizon must run")
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	e := s.Schedule(Nanosecond, func() { ran = true })
	s.Cancel(e)
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	s.Cancel(e) // double-cancel is a no-op
	s.Cancel(nil)
}

func TestCancelFromHandler(t *testing.T) {
	s := New()
	ran := false
	e := s.Schedule(2*Nanosecond, func() { ran = true })
	s.Schedule(Nanosecond, func() { s.Cancel(e) })
	s.Run()
	if ran {
		t.Fatal("event cancelled mid-run still ran")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Duration(i)*Nanosecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d after Stop", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.Schedule(Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.ScheduleAt(Time(0), func() {})
	})
	s.Run()
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Schedule(0, nil)
}

func TestProcessedCounter(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.Schedule(Duration(i)*Nanosecond, func() {})
	}
	e := s.Schedule(10*Nanosecond, func() {})
	s.Cancel(e)
	s.Run()
	if s.Processed() != 5 {
		t.Fatalf("Processed = %d", s.Processed())
	}
}

func TestZeroDelaySelfScheduleTerminatesWithStop(t *testing.T) {
	s := New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n >= 1000 {
			s.Stop()
			return
		}
		s.Schedule(0, tick)
	}
	s.Schedule(0, tick)
	s.Run()
	if n != 1000 {
		t.Fatalf("n = %d", n)
	}
	if s.Now() != 0 {
		t.Fatalf("zero-delay chain advanced clock to %v", s.Now())
	}
}

// countAction increments a counter when fired.
type countAction struct{ n *int }

func (a countAction) Act() { *a.n++ }

func TestScheduleAction(t *testing.T) {
	s := New()
	n := 0
	a := countAction{&n}
	s.ScheduleAction(2*Nanosecond, a)
	s.ScheduleAction(Nanosecond, a)
	s.Run()
	if n != 2 {
		t.Fatalf("actions fired %d times", n)
	}
	if s.Processed() != 2 {
		t.Fatalf("processed = %d", s.Processed())
	}
}

func TestScheduleActionNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().ScheduleAction(0, nil)
}

func TestActionsAndClosuresInterleaveFIFO(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(Nanosecond, func() { order = append(order, 0) })
	s.ScheduleAction(Nanosecond, appendAction{&order, 1})
	s.Schedule(Nanosecond, func() { order = append(order, 2) })
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

type appendAction struct {
	dst *[]int
	v   int
}

func (a appendAction) Act() { *a.dst = append(*a.dst, a.v) }

func TestEventRecyclingSeqGuards(t *testing.T) {
	// After an event fires its handle may be recycled for a later
	// schedule; the sequence number distinguishes the incarnations.
	s := New()
	e1 := s.Schedule(Nanosecond, func() {})
	seq1 := e1.Seq()
	s.Run()
	e2 := s.Schedule(Nanosecond, func() {})
	if e2 == e1 && e2.Seq() == seq1 {
		t.Fatal("recycled event kept its old sequence number")
	}
	if e2.Seq() <= seq1 {
		t.Fatal("sequence numbers must increase")
	}
	s.Run()
}

func TestRecyclingStressKeepsOrder(t *testing.T) {
	// Heavy schedule/fire churn through the pool must preserve the
	// (time, seq) discipline.
	s := New()
	fired := 0
	var tick func()
	depth := 0
	tick = func() {
		fired++
		depth++
		if depth < 5000 {
			s.Schedule(Duration(1+fired%7)*Nanosecond, tick)
		}
	}
	for i := 0; i < 8; i++ {
		s.Schedule(Duration(i)*Nanosecond, tick)
	}
	prev := Time(-1)
	for s.Pending() > 0 {
		before := s.Now()
		s.RunUntil(s.Now().Add(10 * Nanosecond))
		if s.Now() < before || s.Now() < prev {
			t.Fatal("clock went backwards")
		}
		prev = s.Now()
	}
	if fired < 5000 {
		t.Fatalf("fired = %d", fired)
	}
}

// Property: events always fire in nondecreasing time order, whatever the
// insertion order, and equal times fire in insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		type rec struct {
			tm  Time
			seq int
		}
		var fired []rec
		for i, d := range delays {
			i := i
			tm := Time(Duration(d) * Nanosecond)
			s.ScheduleAt(tm, func() { fired = append(fired, rec{tm, i}) })
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].tm < fired[i-1].tm {
				return false
			}
			if fired[i].tm == fired[i-1].tm && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Exhaustive heap stress: random pushes and pops always yield sorted
// output equal to a reference sort.
func TestHeapMatchesSortReference(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		q := &eventQueue{}
		n := r.Intn(500)
		times := make([]int64, n)
		for i := range times {
			tm := int64(r.Intn(100))
			times[i] = tm
			q.push(&Event{time: Time(tm), seq: uint64(i)})
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for i := 0; i < n; i++ {
			e := q.pop()
			if e == nil || int64(e.time) != times[i] {
				t.Fatalf("trial %d pos %d: heap order diverges from sort", trial, i)
			}
		}
		if q.pop() != nil {
			t.Fatal("pop from empty heap returned event")
		}
		if q.peek() != nil {
			t.Fatal("peek on empty heap returned event")
		}
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(Duration(i%1000)*Nanosecond, func() {})
		if s.Pending() > 4096 {
			s.RunUntil(s.Now().Add(500 * Nanosecond))
		}
	}
	s.Run()
}
