package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(30*Nanosecond, func() { got = append(got, 3) })
	s.Schedule(10*Nanosecond, func() { got = append(got, 1) })
	s.Schedule(20*Nanosecond, func() { got = append(got, 2) })
	n := s.Run()
	if n != 3 {
		t.Fatalf("executed %d events", n)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("order = %v", got)
		}
	}
	if s.Now() != Time(30*Nanosecond) {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.Schedule(Microsecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: pos %d = %d", i, v)
		}
	}
}

func TestScheduleFromHandler(t *testing.T) {
	s := New()
	var fired []Time
	s.Schedule(Nanosecond, func() {
		fired = append(fired, s.Now())
		s.Schedule(2*Nanosecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != Time(Nanosecond) || fired[1] != Time(3*Nanosecond) {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New()
	var count int
	for i := 1; i <= 10; i++ {
		s.Schedule(Duration(i)*Microsecond, func() { count++ })
	}
	n := s.RunUntil(Time(5 * Microsecond))
	if n != 5 || count != 5 {
		t.Fatalf("ran %d events, count %d", n, count)
	}
	if s.Now() != Time(5*Microsecond) {
		t.Fatalf("clock = %v", s.Now())
	}
	// Remaining events still runnable.
	n = s.RunUntil(Time(100 * Microsecond))
	if n != 5 || count != 10 {
		t.Fatalf("second run: %d events, count %d", n, count)
	}
	// Clock advances to horizon when queue drains.
	if s.Now() != Time(100*Microsecond) {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestRunUntilExactBoundaryInclusive(t *testing.T) {
	s := New()
	ran := false
	s.Schedule(Microsecond, func() { ran = true })
	s.RunUntil(Time(Microsecond))
	if !ran {
		t.Fatal("event at the horizon must run")
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	e := s.Schedule(Nanosecond, func() { ran = true })
	s.Cancel(e)
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	s.Cancel(e) // double-cancel is a no-op
	s.Cancel(nil)
}

func TestCancelFromHandler(t *testing.T) {
	s := New()
	ran := false
	e := s.Schedule(2*Nanosecond, func() { ran = true })
	s.Schedule(Nanosecond, func() { s.Cancel(e) })
	s.Run()
	if ran {
		t.Fatal("event cancelled mid-run still ran")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Duration(i)*Nanosecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d after Stop", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.Schedule(Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.ScheduleAt(Time(0), func() {})
	})
	s.Run()
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Schedule(0, nil)
}

func TestProcessedCounter(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.Schedule(Duration(i)*Nanosecond, func() {})
	}
	e := s.Schedule(10*Nanosecond, func() {})
	s.Cancel(e)
	s.Run()
	if s.Processed() != 5 {
		t.Fatalf("Processed = %d", s.Processed())
	}
}

func TestZeroDelaySelfScheduleTerminatesWithStop(t *testing.T) {
	s := New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n >= 1000 {
			s.Stop()
			return
		}
		s.Schedule(0, tick)
	}
	s.Schedule(0, tick)
	s.Run()
	if n != 1000 {
		t.Fatalf("n = %d", n)
	}
	if s.Now() != 0 {
		t.Fatalf("zero-delay chain advanced clock to %v", s.Now())
	}
}

// countAction increments a counter when fired.
type countAction struct{ n *int }

func (a countAction) Act() { *a.n++ }

func TestScheduleAction(t *testing.T) {
	s := New()
	n := 0
	a := countAction{&n}
	s.ScheduleAction(2*Nanosecond, a)
	s.ScheduleAction(Nanosecond, a)
	s.Run()
	if n != 2 {
		t.Fatalf("actions fired %d times", n)
	}
	if s.Processed() != 2 {
		t.Fatalf("processed = %d", s.Processed())
	}
}

func TestScheduleActionNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().ScheduleAction(0, nil)
}

func TestActionsAndClosuresInterleaveFIFO(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(Nanosecond, func() { order = append(order, 0) })
	s.ScheduleAction(Nanosecond, appendAction{&order, 1})
	s.Schedule(Nanosecond, func() { order = append(order, 2) })
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

type appendAction struct {
	dst *[]int
	v   int
}

func (a appendAction) Act() { *a.dst = append(*a.dst, a.v) }

func TestEventRecyclingSeqGuards(t *testing.T) {
	// After an event fires its handle may be recycled for a later
	// schedule; the sequence number distinguishes the incarnations.
	s := New()
	e1 := s.Schedule(Nanosecond, func() {})
	seq1 := e1.Seq()
	s.Run()
	e2 := s.Schedule(Nanosecond, func() {})
	if e2 == e1 && e2.Seq() == seq1 {
		t.Fatal("recycled event kept its old sequence number")
	}
	if e2.Seq() <= seq1 {
		t.Fatal("sequence numbers must increase")
	}
	s.Run()
}

func TestRecyclingStressKeepsOrder(t *testing.T) {
	// Heavy schedule/fire churn through the pool must preserve the
	// (time, seq) discipline.
	s := New()
	fired := 0
	var tick func()
	depth := 0
	tick = func() {
		fired++
		depth++
		if depth < 5000 {
			s.Schedule(Duration(1+fired%7)*Nanosecond, tick)
		}
	}
	for i := 0; i < 8; i++ {
		s.Schedule(Duration(i)*Nanosecond, tick)
	}
	prev := Time(-1)
	for s.Pending() > 0 {
		before := s.Now()
		s.RunUntil(s.Now().Add(10 * Nanosecond))
		if s.Now() < before || s.Now() < prev {
			t.Fatal("clock went backwards")
		}
		prev = s.Now()
	}
	if fired < 5000 {
		t.Fatalf("fired = %d", fired)
	}
}

// Property: events always fire in nondecreasing time order, whatever the
// insertion order, and equal times fire in insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		type rec struct {
			tm  Time
			seq int
		}
		var fired []rec
		for i, d := range delays {
			i := i
			tm := Time(Duration(d) * Nanosecond)
			s.ScheduleAt(tm, func() { fired = append(fired, rec{tm, i}) })
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].tm < fired[i-1].tm {
				return false
			}
			if fired[i].tm == fired[i-1].tm && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Exhaustive FEL stress: random pushes and pops always yield sorted
// output equal to a reference sort. Times span many wheel slots and
// reach past the wheel horizon, so ordering across the slot boundaries
// and through the overflow heap is covered.
func TestHeapMatchesSortReference(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	// Mix of ranges: sub-slot (dense tie-heavy), mid-wheel, and beyond
	// the ~67 us horizon into the overflow heap.
	ranges := []int64{100, 1 << wheelGranShift, 500_000, 200_000_000}
	for trial := 0; trial < 50; trial++ {
		q := &eventQueue{}
		q.init()
		span := ranges[trial%len(ranges)]
		n := r.Intn(500)
		times := make([]int64, n)
		for i := range times {
			tm := r.Int63n(span)
			times[i] = tm
			q.push(&Event{time: Time(tm), seq: uint64(i)})
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for i := 0; i < n; i++ {
			e := q.pop()
			if e == nil || int64(e.time) != times[i] {
				t.Fatalf("trial %d pos %d: FEL order diverges from sort", trial, i)
			}
		}
		if q.pop() != nil {
			t.Fatal("pop from empty FEL returned event")
		}
		if q.peek() != nil {
			t.Fatal("peek on empty FEL returned event")
		}
	}
}

// Interleaved FEL stress against a reference model: pops must always
// yield the (time, seq) minimum of the current contents, under random
// push/pop interleaving. Pushes may land behind the cursor (the
// schedule-after-horizon-return case), exercising the rewind path.
func TestWheelInterleavedMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		q := &eventQueue{}
		q.init()
		var ref []*Event
		var seq uint64
		span := int64(1+trial) * 40_000_000 // up to ~1.2 ms: deep overflow use
		for op := 0; op < 4000; op++ {
			if r.Intn(3) > 0 || len(ref) == 0 {
				e := &Event{time: Time(r.Int63n(span)), seq: seq}
				seq++
				q.push(e)
				ref = append(ref, e)
				continue
			}
			best := 0
			for i, e := range ref {
				if eventLess(e, ref[best]) {
					best = i
				}
			}
			got := q.pop()
			if got != ref[best] {
				t.Fatalf("trial %d op %d: pop = %+v, want %+v", trial, op, got, ref[best])
			}
			ref[best] = ref[len(ref)-1]
			ref = ref[:len(ref)-1]
			if q.Len() != len(ref) {
				t.Fatalf("trial %d op %d: Len = %d, want %d", trial, op, q.Len(), len(ref))
			}
		}
		for len(ref) > 0 {
			best := 0
			for i, e := range ref {
				if eventLess(e, ref[best]) {
					best = i
				}
			}
			if got := q.pop(); got != ref[best] {
				t.Fatalf("trial %d drain: pop diverges from reference", trial)
			}
			ref[best] = ref[len(ref)-1]
			ref = ref[:len(ref)-1]
		}
		if q.pop() != nil {
			t.Fatal("pop from drained FEL returned event")
		}
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(Duration(i%1000)*Nanosecond, func() {})
		if s.Pending() > 4096 {
			s.RunUntil(s.Now().Add(500 * Nanosecond))
		}
	}
	s.Run()
}

// nopAction is a reusable allocation-free callback for pool tests.
type nopAction struct{ fired int }

func (a *nopAction) Act() { a.fired++ }

// The event recycle pool sizes itself from the measured pending
// high-water mark: a burst larger than any fixed cap must be fully
// retained on drain, so an equal second burst recycles every handle
// instead of allocating.
func TestEventPoolBurstThenDrain(t *testing.T) {
	s := New()
	act := &nopAction{}
	const burst = 10000 // well above the old fixed 4096 cap
	for i := 0; i < burst; i++ {
		s.ScheduleActionAt(Time(i)*17, act)
	}
	if got := s.PeakPending(); got != burst {
		t.Fatalf("PeakPending = %d, want %d", got, burst)
	}
	s.Run()
	if len(s.pool) != burst {
		t.Fatalf("pool holds %d handles after drain, want %d", len(s.pool), burst)
	}

	// Second burst: every schedule must draw from the pool.
	base := s.Now()
	for i := 0; i < burst; i++ {
		s.ScheduleActionAt(base.Add(Duration(i+1)*Nanosecond), act)
	}
	if len(s.pool) != 0 {
		t.Fatalf("second burst left %d pooled handles unclaimed", len(s.pool))
	}
	s.Run()
	if len(s.pool) != burst {
		t.Fatalf("pool holds %d handles after second drain, want %d", len(s.pool), burst)
	}
	if act.fired != 2*burst {
		t.Fatalf("fired %d events, want %d", act.fired, 2*burst)
	}
}

// A low-concurrency workload must not hoard handles: the pool stays at
// the floor even when many more events fire sequentially.
func TestEventPoolFloorBoundsSequentialLoad(t *testing.T) {
	s := New()
	act := &nopAction{}
	for i := 0; i < 10*minEventPool; i++ {
		s.ScheduleActionAt(Time(i)*Time(Nanosecond), act)
		s.Run()
	}
	if s.PeakPending() != 1 {
		t.Fatalf("PeakPending = %d, want 1", s.PeakPending())
	}
	if len(s.pool) > minEventPool {
		t.Fatalf("pool grew to %d handles, floor is %d", len(s.pool), minEventPool)
	}
}
