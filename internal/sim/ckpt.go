package sim

import "sort"

// This file is the kernel half of the checkpoint/restore contract (see
// internal/ckpt): the Simulator exports its mutable state — clock,
// sequence counter, processed count, and the live future-event list —
// and can be rebuilt into a state whose continuation is byte-identical
// to never having stopped. The FEL's determinism contract makes this
// possible: pop order is the (time, seq) total order, so re-inserting
// the same (time, seq, action) triples reproduces the exact trajectory
// regardless of which concrete structure (wheel slot, scratch, overflow
// heap, reference heap) each event happened to sit in at snapshot time.

// KernelState is the scalar part of the simulator's mutable state.
type KernelState struct {
	// Now is the simulated clock.
	Now Time `json:"now_ps"`
	// Seq is the next event sequence number to be issued. Restoring it
	// exactly matters: sequence numbers break timestamp ties, so a
	// continuation that re-issued earlier numbers could order new
	// events differently from the uninterrupted run.
	Seq uint64 `json:"seq"`
	// Processed is the lifetime executed-event count.
	Processed uint64 `json:"processed"`
}

// ExportKernel returns the simulator's scalar state.
func (s *Simulator) ExportKernel() KernelState {
	return KernelState{Now: s.now, Seq: s.seq, Processed: s.processed}
}

// Action returns the event's callback. Checkpointing uses it to map
// pending events back to serializable model actions; a cancelled or
// fired event returns nil.
func (e *Event) Action() Action { return e.act }

// PendingEvents returns the live (non-cancelled) pending events in
// (time, seq) order. The returned events remain owned by the simulator;
// callers must not mutate or hold them across further simulation.
func (s *Simulator) PendingEvents() []*Event {
	if s.running {
		panic("sim: PendingEvents while running")
	}
	var out []*Event
	keep := func(e *Event) {
		if e != nil && !e.dead {
			out = append(out, e)
		}
	}
	if s.ref != nil {
		for _, e := range s.ref.items {
			keep(e)
		}
	} else {
		q := &s.queue
		for _, head := range q.slots {
			for e := head; e != nil; e = e.next {
				keep(e)
			}
		}
		if q.curLoaded {
			for _, e := range q.cur[q.curIdx:] {
				keep(e)
			}
		}
		for _, e := range q.overflow.items {
			keep(e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return eventLess(out[i], out[j]) })
	return out
}

// BeginRestore discards every pending event and resets the simulator's
// scalar state to ks, anchoring the wheel cursor at the restored clock.
// Events are then re-inserted with RestoreEvent in ascending (time, seq)
// order. Restoring into a running simulator panics.
func (s *Simulator) BeginRestore(ks KernelState) {
	if s.running {
		panic("sim: BeginRestore while running")
	}
	if s.ref != nil {
		s.ref.items = nil
	} else {
		s.queue = eventQueue{}
		s.queue.init()
		s.queue.absSlot = int64(ks.Now) >> wheelGranShift
	}
	// Drop the recycle pool: discarded events may still be chained or
	// referenced by stale handles from the pre-restore build.
	s.pool = nil
	s.now = ks.Now
	s.seq = ks.Seq
	s.processed = ks.Processed
	s.stopped = false
}

// RestoreEvent schedules a at absolute time t with an explicit sequence
// number, bypassing the counter (which BeginRestore already set to the
// snapshot's next value). Callers insert events in ascending (time, seq)
// order so the wheel cursor never rewinds; the first insertion re-anchors
// it via the empty-queue path.
func (s *Simulator) RestoreEvent(t Time, seq uint64, a Action) *Event {
	if a == nil {
		panic("sim: restoring nil action")
	}
	if t < s.now {
		panicPast(t, s.now)
	}
	e := &Event{time: t, seq: seq, act: a}
	s.push(e)
	return e
}
