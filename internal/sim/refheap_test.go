package sim

import (
	"math/rand"
	"testing"
)

// TestReferenceFELOrder pins the reference kernel to the same eventLess
// contract the wheel honors: random (time, seq) pushes pop in exact
// (time, then insertion) order.
func TestReferenceFELOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := &ReferenceFEL{}
	const n = 2000
	for seq := uint64(0); seq < n; seq++ {
		h.push(&Event{time: Time(rng.Int63n(50)) * Time(Microsecond), seq: seq})
	}
	var last *Event
	for i := 0; i < n; i++ {
		e := h.pop()
		if e == nil {
			t.Fatalf("heap empty after %d pops, want %d", i, n)
		}
		if last != nil && eventLess(e, last) {
			t.Fatalf("pop %d out of order: (%v,%d) after (%v,%d)", i, e.time, e.seq, last.time, last.seq)
		}
		last = e
	}
	if h.pop() != nil || h.Len() != 0 {
		t.Fatal("heap not empty after draining")
	}
}

// TestReferenceKernelIdenticalTrajectory runs the same randomized
// schedule/cancel workload on a wheel-kernel simulator and a
// reference-kernel simulator and requires identical execution
// sequences — the kernel-switch contract the differential mode
// (core.RunDifferential) relies on.
func TestReferenceKernelIdenticalTrajectory(t *testing.T) {
	run := func(useRef bool) []uint64 {
		s := New()
		if useRef {
			s.UseReferenceFEL()
			if !s.UsingReferenceFEL() {
				t.Fatal("reference kernel not active")
			}
		}
		rng := rand.New(rand.NewSource(42))
		var got []uint64
		var cancellable []*Event
		budget := 20000 // total schedules, so the workload terminates
		var step func()
		step = func() {
			// A mix of near, same-slot, and far-future (overflow-era)
			// delays, with occasional cancellations.
			for i := 0; i < 2+rng.Intn(2) && budget > 0; i++ {
				budget--
				var d Duration
				switch rng.Intn(4) {
				case 0:
					d = Duration(rng.Int63n(int64(16 * Nanosecond)))
				case 1:
					d = Duration(rng.Int63n(int64(Microsecond)))
				case 2:
					d = Duration(rng.Int63n(int64(200 * Microsecond)))
				default:
					d = 0
				}
				e := s.Schedule(d, step)
				if rng.Intn(5) == 0 {
					cancellable = append(cancellable, e)
				}
			}
			if len(cancellable) > 0 && rng.Intn(3) == 0 {
				s.Cancel(cancellable[rng.Intn(len(cancellable))])
			}
		}
		s.Schedule(0, step)
		s.SetExecHook(func(tm Time, seq uint64) {
			got = append(got, uint64(tm), seq)
		})
		s.RunUntil(Time(0).Add(400 * Microsecond))
		return got
	}
	wheel, ref := run(false), run(true)
	if len(wheel) != len(ref) {
		t.Fatalf("trajectory lengths differ: wheel %d, reference %d", len(wheel), len(ref))
	}
	if len(wheel) == 0 {
		t.Fatal("no events executed")
	}
	for i := range wheel {
		if wheel[i] != ref[i] {
			t.Fatalf("trajectories diverge at record %d: wheel %d, reference %d", i, wheel[i], ref[i])
		}
	}
}

// TestUseReferenceFELMigratesPending covers the build-time switch: an
// instance already carries scheduled events (e.g. the metrics
// collector's warmup snapshot) when the kernel is selected, and those
// must migrate across without changing the trajectory.
func TestUseReferenceFELMigratesPending(t *testing.T) {
	s := New()
	var got []int
	for i, d := range []Duration{30 * Nanosecond, 10 * Nanosecond, 500 * Microsecond, 10 * Nanosecond} {
		i := i
		s.Schedule(d, func() { got = append(got, i) })
	}
	pending := s.Pending()
	s.UseReferenceFEL()
	if s.Pending() != pending {
		t.Fatalf("migration changed pending count: %d -> %d", pending, s.Pending())
	}
	s.UseReferenceFEL() // idempotent
	s.Run()
	want := []int{1, 3, 0, 2} // (time, seq) order
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// TestUseReferenceFELWhileRunningPanics pins the guard: the kernel may
// not be swapped underneath an executing event.
func TestUseReferenceFELWhileRunningPanics(t *testing.T) {
	s := New()
	s.Schedule(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("UseReferenceFEL inside Run did not panic")
			}
		}()
		s.UseReferenceFEL()
	})
	s.Run()
}

// TestExecHookObservesFIFO verifies the exec hook reports every
// executed event in exact eventLess order and that uninstalling it
// stops the reports.
func TestExecHookObservesFIFO(t *testing.T) {
	s := New()
	act := &nopAction{}
	for i := 0; i < 500; i++ {
		s.ScheduleAction(Duration(i%7)*Microsecond, act)
	}
	var lastT Time
	var lastSeq uint64
	seen := 0
	s.SetExecHook(func(tm Time, seq uint64) {
		if seen > 0 && (tm < lastT || (tm == lastT && seq <= lastSeq)) {
			t.Fatalf("hook saw (%v,%d) after (%v,%d)", tm, seq, lastT, lastSeq)
		}
		lastT, lastSeq = tm, seq
		seen++
	})
	s.Run()
	if seen != 500 {
		t.Fatalf("hook saw %d events, want 500", seen)
	}
	s.SetExecHook(nil)
	s.ScheduleAction(Microsecond, act)
	s.Run()
	if seen != 500 {
		t.Fatal("uninstalled hook still firing")
	}
}
