package sim

// Steady-state kernel workload shared by BenchmarkKernelSteadyState and
// the paperbench -bench-kernel mode: a fixed population of actors, each
// rescheduling itself after a pseudo-random near-future delay drawn from
// the span the fabric model actually schedules over (credit returns at
// ~10 ns propagation up to ~4 us generator wakeups). The pending-event
// count holds at the actor count, so the run isolates the future-event
// list's push/pop cost at a realistic queue depth.

// steadyActor is one self-rescheduling workload element.
type steadyActor struct {
	s   *Simulator
	rng *RNG
	// stop is the shared remaining-event budget; the first actor to see
	// it exhausted stops the run.
	stop *int64
}

// Act implements Action.
func (a *steadyActor) Act() {
	*a.stop--
	if *a.stop <= 0 {
		a.s.Stop()
		return
	}
	// Delays span 16 ns .. ~4.1 us in 16 ns steps, mimicking the mix of
	// serialization, propagation and wakeup horizons of the fabric.
	d := Duration(16+16*(a.rng.Uint64()&0xff)) * Nanosecond
	a.s.ScheduleAction(d, a)
}

// SteadyStateWorkload runs `events` events through a fresh simulator
// with `actors` concurrently pending self-rescheduling events and
// returns the simulator (for Processed/Pending inspection). It is
// deterministic for a given (actors, events, seed).
func SteadyStateWorkload(actors int, events int64, seed uint64) *Simulator {
	s := New()
	rng := NewRNG(seed)
	budget := events
	for i := 0; i < actors; i++ {
		a := &steadyActor{s: s, rng: rng.Derive(uint64(i)), stop: &budget}
		d := Duration(16+16*(a.rng.Uint64()&0xff)) * Nanosecond
		s.ScheduleAction(d, a)
	}
	s.Run()
	return s
}
