package sim

import (
	"testing"
	"testing/quick"
)

func TestDurationUnits(t *testing.T) {
	if Nanosecond != 1000*Picosecond {
		t.Errorf("Nanosecond = %d ps", int64(Nanosecond))
	}
	if Second != 1e12*Picosecond {
		t.Errorf("Second = %d ps", int64(Second))
	}
}

func TestTimeAddSub(t *testing.T) {
	t0 := Time(0).Add(5 * Microsecond)
	if t0 != Time(5_000_000) {
		t.Fatalf("Add: got %d", int64(t0))
	}
	if d := t0.Sub(Time(1_000_000)); d != 4*Microsecond {
		t.Fatalf("Sub: got %v", d)
	}
	if !Time(1).Before(Time(2)) || Time(1).After(Time(2)) {
		t.Fatal("Before/After wrong")
	}
}

func TestTimeSeconds(t *testing.T) {
	tm := Time(0).Add(1500 * Millisecond)
	if got := tm.Seconds(); got != 1.5 {
		t.Fatalf("Seconds = %v", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2ns"},
		{3 * Microsecond, "3us"},
		{4 * Millisecond, "4ms"},
		{5 * Second, "5s"},
		{-2 * Nanosecond, "-2ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationFromSeconds(t *testing.T) {
	if d := DurationFromSeconds(0.001); d != Millisecond {
		t.Fatalf("got %v", d)
	}
	if d := DurationFromSeconds(0); d != 0 {
		t.Fatalf("got %v", d)
	}
}

func TestRateTxTime(t *testing.T) {
	// 2048 bytes at 20 Gbit/s = 819.2 ns exactly.
	r := Gbps(20)
	if got := r.TxTime(2048); got != Duration(819200) {
		t.Fatalf("TxTime(2048) = %d ps, want 819200", int64(got))
	}
	if got := r.TxTime(0); got != 0 {
		t.Fatalf("TxTime(0) = %v", got)
	}
}

func TestRateGbpsRoundTrip(t *testing.T) {
	if g := Gbps(13.5).Gbps(); g != 13.5 {
		t.Fatalf("round trip = %v", g)
	}
}

func TestRateBytesIn(t *testing.T) {
	r := Gbps(8) // 1 byte per ns
	if got := r.BytesIn(1 * Microsecond); got != 1000 {
		t.Fatalf("BytesIn = %d", got)
	}
	if got := r.BytesIn(-Nanosecond); got != 0 {
		t.Fatalf("negative duration BytesIn = %d", got)
	}
}

func TestTxTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Rate(0).TxTime(1)
}

// Property: TxTime is additive-ish and monotone in byte count.
func TestTxTimeMonotone(t *testing.T) {
	r := Gbps(20)
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return r.TxTime(x) <= r.TxTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: converting bytes->time->bytes is within one byte of identity
// at a rate where a byte is an integer number of picoseconds.
func TestRateRoundTrip(t *testing.T) {
	r := Gbps(8)
	f := func(n uint16) bool {
		d := r.TxTime(int(n))
		back := r.BytesIn(d)
		diff := back - int64(n)
		return diff >= -1 && diff <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
