// Package sim provides a deterministic discrete-event simulation kernel:
// an integer-picosecond clock, a future-event list implemented as a binary
// heap with stable FIFO tie-breaking, and seeded pseudo-random number
// streams. It plays the role the OMNeT++ platform plays for the original
// InfiniBand model the paper is based on.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in simulated time, measured in integer picoseconds from
// the start of the simulation. Picosecond resolution represents every
// quantity in the model exactly (a 2048-byte packet at 20 Gbit/s
// serializes in 819.2 ns = 819200 ps).
type Time int64

// Duration is a span of simulated time in picoseconds. Time and Duration
// are distinct types so that absolute instants and spans cannot be mixed
// accidentally; arithmetic between them is provided by Add and Sub.
type Duration int64

// Common duration units.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the latest representable instant. It is used as an "infinitely
// far away" sentinel for timers that are not currently scheduled.
const MaxTime = Time(math.MaxInt64)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span from u to t (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant with an adaptive unit, e.g. "12.8us".
func (t Time) String() string { return Duration(t).String() }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Picoseconds returns the duration as an integer number of picoseconds.
func (d Duration) Picoseconds() int64 { return int64(d) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	neg := ""
	if d < 0 {
		neg = "-"
		d = -d
	}
	switch {
	case d >= Second:
		return fmt.Sprintf("%s%.6gs", neg, float64(d)/float64(Second))
	case d >= Millisecond:
		return fmt.Sprintf("%s%.6gms", neg, float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%s%.6gus", neg, float64(d)/float64(Microsecond))
	case d >= Nanosecond:
		return fmt.Sprintf("%s%.6gns", neg, float64(d)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%s%dps", neg, int64(d))
	}
}

// DurationFromSeconds converts a floating-point number of seconds to a
// Duration, rounding to the nearest picosecond.
func DurationFromSeconds(s float64) Duration {
	return Duration(math.Round(s * float64(Second)))
}

// Rate is a data rate in bits per second. It converts between byte counts
// and the simulated time they occupy on a link of this rate.
type Rate float64

// Gbps constructs a Rate from gigabits per second.
func Gbps(g float64) Rate { return Rate(g * 1e9) }

// Gbps returns the rate in gigabits per second.
func (r Rate) Gbps() float64 { return float64(r) / 1e9 }

// TxTime returns the time needed to serialize n bytes at rate r.
func (r Rate) TxTime(n int) Duration {
	if r <= 0 {
		panic("sim: TxTime on non-positive rate")
	}
	// bits / (bits/s) = seconds; scale to picoseconds with rounding.
	return Duration(math.Round(float64(n) * 8 * float64(Second) / float64(r)))
}

// BytesIn returns how many whole bytes rate r transfers in d.
func (r Rate) BytesIn(d Duration) int64 {
	if d < 0 {
		return 0
	}
	return int64(float64(r) * d.Seconds() / 8)
}
