package sim

import "testing"

// BenchmarkKernelSteadyState measures raw future-event-list throughput
// at a realistic pending depth: 4096 concurrently scheduled actors,
// each rescheduling itself at a near-future pseudo-random delay. The
// benchmark's events/s (inverse of ns/op) is the kernel number recorded
// in BENCH_kernel.json; the acceptance bar for FEL changes is >= 1.3x
// the recorded pre-PR binary-heap baseline.
func BenchmarkKernelSteadyState(b *testing.B) {
	b.ReportAllocs()
	SteadyStateWorkload(4096, int64(b.N), 1)
}

// BenchmarkKernelShallow is the same workload at a shallow pending
// depth (64 actors), where a binary heap is near its best case; it
// guards against an FEL replacement that wins deep and loses shallow.
func BenchmarkKernelShallow(b *testing.B) {
	b.ReportAllocs()
	SteadyStateWorkload(64, int64(b.N), 1)
}

// TestSteadyStateWorkloadDeterministic pins the workload itself: same
// (actors, events, seed) must end at the same simulated instant with
// the same processed count, whatever the FEL implementation.
func TestSteadyStateWorkloadDeterministic(t *testing.T) {
	a := SteadyStateWorkload(256, 20000, 7)
	b := SteadyStateWorkload(256, 20000, 7)
	if a.Now() != b.Now() || a.Processed() != b.Processed() {
		t.Fatalf("workload not deterministic: %v/%d vs %v/%d",
			a.Now(), a.Processed(), b.Now(), b.Processed())
	}
	if a.Processed() < 20000 {
		t.Fatalf("processed %d < budget", a.Processed())
	}
}
