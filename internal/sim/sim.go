package sim

import "fmt"

// minEventPool is the floor on the event recycle pool: small runs keep at
// least this many handles warm regardless of their measured peak.
const minEventPool = 64

// Simulator owns the simulated clock and the future-event list. It is not
// safe for concurrent use: the discrete-event model is inherently
// sequential, and determinism (identical seed → identical trajectory) is a
// design requirement for reproducing the paper's experiments.
type Simulator struct {
	now     Time
	queue   eventQueue
	seq     uint64
	running bool
	stopped bool
	pool    []*Event

	// peakPending is the high-water mark of the future-event list. It
	// bounds the recycle pool: a pool larger than the peak number of
	// simultaneously pending events can never be fully drawn down, so
	// releases beyond it return events to the garbage collector.
	peakPending int

	// poolLimit caches max(peakPending, minEventPool) so release pays a
	// single compare instead of recomputing the floor per event.
	poolLimit int

	// Processed counts events executed since construction (dead events
	// discarded from the queue are not counted).
	processed uint64

	// ref, when non-nil, replaces the timing wheel with the reference
	// binary-heap kernel (see refheap.go). The default wheel path pays
	// one nil check per queue operation for the switch.
	ref *ReferenceFEL

	// execHook, when non-nil, observes every executed event's
	// (time, seq) just before its callback runs; the invariant checker
	// uses it to assert FIFO order out of the FEL. When unset the run
	// loop pays a single nil check per event.
	execHook func(t Time, seq uint64)
}

// New returns a Simulator with the clock at time zero.
func New() *Simulator {
	s := &Simulator{poolLimit: minEventPool}
	s.queue.init()
	return s
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events in the future-event list,
// including cancelled events not yet discarded.
func (s *Simulator) Pending() int {
	if s.ref != nil {
		return s.ref.Len()
	}
	return s.queue.Len()
}

// SetExecHook installs fn to be called with every executed event's
// (time, seq) immediately before its callback runs; nil uninstalls it.
// The hook must not touch the simulator. It exists for the runtime
// invariant checker's FEL-order probe and costs unhooked runs one nil
// check per event.
func (s *Simulator) SetExecHook(fn func(t Time, seq uint64)) { s.execHook = fn }

// PeakPending returns the high-water mark of the future-event list over
// the simulator's lifetime; it sizes the event recycle pool.
func (s *Simulator) PeakPending() int { return s.peakPending }

// Schedule runs fn after delay d. It returns the event handle, which can
// be cancelled. A negative delay is a programming error and panics.
func (s *Simulator) Schedule(d Duration, fn func()) *Event {
	return s.ScheduleAt(s.now.Add(d), fn)
}

// ScheduleAt runs fn at absolute time t. Scheduling in the past panics:
// causality violations are bugs in the model, never legitimate.
func (s *Simulator) ScheduleAt(t Time, fn func()) *Event {
	if fn == nil {
		panic("sim: scheduling nil function")
	}
	e := s.alloc(t)
	e.act = funcAction(fn)
	s.push(e)
	return e
}

// ScheduleAction runs a pre-allocated Action after delay d without
// allocating a closure — the hot-path variant the fabric uses for its
// per-packet events.
func (s *Simulator) ScheduleAction(d Duration, a Action) *Event {
	return s.ScheduleActionAt(s.now.Add(d), a)
}

// ScheduleActionAt runs a pre-allocated Action at absolute time t; the
// allocation-free counterpart of ScheduleAt.
func (s *Simulator) ScheduleActionAt(t Time, a Action) *Event {
	if a == nil {
		panic("sim: scheduling nil action")
	}
	e := s.alloc(t)
	e.act = a
	s.push(e)
	return e
}

// push inserts the event into the active kernel and tracks the pending
// high-water mark.
func (s *Simulator) push(e *Event) {
	if s.ref != nil {
		s.ref.push(e)
		if n := len(s.ref.items); n > s.peakPending {
			s.peakPending = n
			if n > s.poolLimit {
				s.poolLimit = n
			}
		}
		return
	}
	s.queue.push(e)
	if n := s.queue.wcount + len(s.queue.overflow.items); n > s.peakPending {
		s.peakPending = n
		if n > s.poolLimit {
			s.poolLimit = n
		}
	}
}

// panicPast reports a causality violation; split out of alloc so the
// format call does not weigh down alloc's inlining budget.
func panicPast(t, now Time) {
	panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, now))
}

// alloc takes an event from the recycle pool or makes a new one. Pooled
// events were part-normalized by release (act and next already nil);
// dead is cleared here, not there, so a cancelled handle keeps
// reporting Cancelled() until the event is actually reused.
func (s *Simulator) alloc(t Time) *Event {
	if t < s.now {
		panicPast(t, s.now)
	}
	var e *Event
	if n := len(s.pool); n > 0 {
		e = s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
	} else {
		e = &Event{}
	}
	e.time = t
	e.seq = s.seq
	e.dead = false
	s.seq++
	return e
}

// release recycles a fired or discarded event, dropping its callback
// reference (the caller guarantees e is unlinked, so next is already
// nil; dead is left for alloc so stale handles still read Cancelled).
// The pool is capped at the measured pending high-water mark (with a
// small floor): the number of live handles is pending + pooled, so a
// pool of peakPending events is exactly enough to make every future
// alloc a recycle — a larger one is garbage that can never drain.
func (s *Simulator) release(e *Event) {
	e.act = nil
	if len(s.pool) < s.poolLimit {
		s.pool = append(s.pool, e)
	}
}

// Cancel marks e dead so it will not fire. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Simulator) Cancel(e *Event) {
	if e != nil {
		e.dead = true
		e.act = nil
	}
}

// Stop makes the current Run return after the executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called. It
// returns the number of events executed by this call.
func (s *Simulator) Run() uint64 {
	return s.RunUntil(MaxTime)
}

// RunUntil executes events with time ≤ end, in (time, insertion) order,
// until the queue is exhausted, Stop is called, or the next event is
// beyond end. The clock is left at the later of its current value and
// end if the horizon was reached, so subsequent scheduling is relative to
// the horizon. It returns the number of events executed by this call.
//
// The loop variant is pre-selected once per call instead of branching
// per event: the default wheel kernel with no exec hook runs the
// batched slot-drain loop (runWheel), while the reference kernel and
// hooked runs take the generic peek/pop loop (runSlow). A hook
// installed by a callback mid-run takes effect at the next slot
// boundary (see runWheel); UseReferenceFEL cannot occur mid-run — it
// panics while running.
func (s *Simulator) RunUntil(end Time) uint64 {
	if s.running {
		panic("sim: Run called reentrantly")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()

	if s.ref == nil && s.execHook == nil {
		return s.runWheel(end)
	}
	return s.runSlow(end, 0)
}

// runWheel is the hot loop: one peek per timing-wheel slot, then a
// batched drain of the loaded slot's scratch buffer. Events of a slot
// strictly below the horizon's slot skip the per-event end comparison
// entirely — every event the slot holds (including ones a callback
// inserts mid-drain, which by construction land in this same slot or
// later) is known to be within the horizon.
func (s *Simulator) runWheel(end Time) uint64 {
	q := &s.queue
	endSlot := int64(end) >> wheelGranShift
	var n uint64
	for !s.stopped {
		if s.execHook != nil {
			// A callback installed the FEL-order probe mid-run; fall
			// back to the generic loop at this slot boundary.
			return s.runSlow(end, n)
		}
		e := q.peek()
		if e == nil {
			break
		}
		if e.time > end {
			if end != MaxTime && s.now < end {
				s.now = end
			}
			return n
		}
		// peek's postcondition: the cursor slot is loaded and e is
		// cur[curIdx], so the drains index the scratch directly.
		if q.absSlot < endSlot {
			n = s.drainSlot(q, n)
		} else {
			var hitEnd bool
			n, hitEnd = s.drainSlotTo(q, end, n)
			if hitEnd {
				if end != MaxTime && s.now < end {
					s.now = end
				}
				return n
			}
		}
	}
	if end != MaxTime && s.now < end && s.Pending() == 0 && !s.stopped {
		s.now = end
	}
	return n
}

// drainSlot executes the loaded slot to exhaustion (no per-event end
// checks — the caller proved the whole slot lies within the horizon),
// returning the updated executed-event count. It returns early when a
// callback stops the run; callbacks that push into this same slot grow
// the scratch mid-drain and are executed in order.
func (s *Simulator) drainSlot(q *eventQueue, n uint64) uint64 {
	for {
		e := q.cur[q.curIdx]
		q.cur[q.curIdx] = nil
		q.curIdx++
		q.wcount--
		if q.curIdx == len(q.cur) {
			// Eagerly release the drained scratch before dispatch: a
			// re-anchoring push from the callback may target this slot
			// again before peek advances the cursor.
			q.resetCur()
		}
		if e.dead {
			s.release(e)
		} else {
			s.now = e.time
			act := e.act
			s.release(e)
			act.Act()
			n++
			s.processed++
			if s.stopped {
				return n
			}
		}
		if !q.curLoaded {
			return n
		}
	}
}

// drainSlotTo is drainSlot for the slot containing the horizon: each
// event is checked against end, and hitting the horizon leaves the
// event in place (mirroring the peek-only path) and reports hitEnd.
func (s *Simulator) drainSlotTo(q *eventQueue, end Time, n uint64) (_ uint64, hitEnd bool) {
	for {
		e := q.cur[q.curIdx]
		if e.time > end {
			return n, true
		}
		q.cur[q.curIdx] = nil
		q.curIdx++
		q.wcount--
		if q.curIdx == len(q.cur) {
			q.resetCur()
		}
		if e.dead {
			s.release(e)
		} else {
			s.now = e.time
			act := e.act
			s.release(e)
			act.Act()
			n++
			s.processed++
			if s.stopped {
				return n, false
			}
		}
		if !q.curLoaded {
			return n, false
		}
	}
}

// runSlow is the generic per-event loop: it serves the reference heap
// kernel and exec-hooked runs, paying the kernel-select and hook nil
// checks per event. n is the count already executed by a preceding
// batched phase.
func (s *Simulator) runSlow(end Time, n uint64) uint64 {
	for !s.stopped {
		var e *Event
		if s.ref != nil {
			e = s.ref.peek()
		} else {
			e = s.queue.peek()
		}
		if e == nil {
			break
		}
		if e.time > end {
			if end != MaxTime && s.now < end {
				s.now = end
			}
			return n
		}
		if s.ref != nil {
			s.ref.pop()
		} else {
			s.queue.pop()
		}
		if e.dead {
			s.release(e)
			continue
		}
		s.now = e.time
		if s.execHook != nil {
			s.execHook(e.time, e.seq)
		}
		act := e.act
		s.release(e)
		act.Act()
		n++
		s.processed++
	}
	if end != MaxTime && s.now < end && s.Pending() == 0 && !s.stopped {
		s.now = end
	}
	return n
}
