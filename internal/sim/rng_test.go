package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincide %d/100 times", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestDeriveIndependence(t *testing.T) {
	base := NewRNG(99)
	s1 := base.Derive(1)
	s2 := base.Derive(2)
	s1again := NewRNG(99).Derive(1)
	if s1.Uint64() != s1again.Uint64() {
		t.Fatal("Derive not deterministic")
	}
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived streams coincide %d/100 times", same)
	}
}

func TestDeriveDoesNotAdvanceParent(t *testing.T) {
	a := NewRNG(5)
	b := NewRNG(5)
	_ = a.Derive(123)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Derive advanced the parent stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(11)
	const n, trials = 8, 80000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 4*math.Sqrt(want) {
			t.Errorf("bucket %d: %d (want ~%.0f)", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(17)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(5)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestExpDurationMean(t *testing.T) {
	r := NewRNG(23)
	mean := 100 * Nanosecond
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		d := r.ExpDuration(mean)
		if d < 0 {
			t.Fatalf("negative duration %v", d)
		}
		sum += float64(d)
	}
	got := sum / n
	if math.Abs(got-float64(mean)) > 0.02*float64(mean) {
		t.Fatalf("empirical mean %.0f ps, want ~%d", got, int64(mean))
	}
}

func TestExpDurationZeroMean(t *testing.T) {
	if d := NewRNG(1).ExpDuration(0); d != 0 {
		t.Fatalf("got %v", d)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkRNGIntn(b *testing.B) {
	r := NewRNG(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(648)
	}
	_ = sink
}
