package fabric

import (
	"fmt"

	"repro/internal/ib"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Network instantiates the fabric for a topology: one HCA per host, one
// SwitchNode per switch, and the credit-flow-controlled links between
// them, all driven by a shared simulator.
type Network struct {
	simr    *sim.Simulator
	topo    *topo.Topology
	routing *topo.Routing
	cfg     Config
	hooks   Hooks
	// bus is the flight-recorder event bus; nil (the default) disables
	// observability at zero cost on the forward path.
	bus *obs.Bus

	hcas     []*HCA        // indexed by host LID
	switches []*SwitchNode // dense switch index
	swByNode []*SwitchNode // indexed by NodeID, nil for hosts

	// pool recycles every packet the network carries: generators and
	// the CC manager acquire through it, host sinks release into it
	// after the delivery consumers return (see internal/ib/pool.go for
	// the ownership rules).
	pool *ib.PacketPool

	// Recycled per-packet event actions (see actions.go).
	arrPool []*arrivalAct
	crdPool []*creditAct

	// aud, when non-nil, maintains the wire-custody counter the runtime
	// invariant checker reads; nil (the default) keeps the transmission
	// hot path audit-free apart from the nil check (see audit.go).
	aud *AuditCounters

	// dropper, when non-nil, is the fault layer's wire-loss policy
	// (see fault.go); nil loses nothing.
	dropper Dropper
}

// New wires up the fabric. Hooks may be zero; sources are attached per
// host afterwards via HCA.SetSource, then Start launches injection.
func New(s *sim.Simulator, t *topo.Topology, r *topo.Routing, cfg Config, hooks Hooks) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{simr: s, topo: t, routing: r, cfg: cfg, hooks: hooks, pool: ib.NewPacketPool()}
	n.hcas = make([]*HCA, t.NumHosts)
	n.swByNode = make([]*SwitchNode, len(t.Nodes))

	for i := range t.Nodes {
		node := &t.Nodes[i]
		switch node.Kind {
		case topo.Host:
			n.hcas[node.LID] = newHCA(n, node)
		case topo.Switch:
			sw := newSwitchNode(n, node, len(n.switches))
			n.switches = append(n.switches, sw)
			n.swByNode[node.ID] = sw
		}
	}

	// Wire every directed link endpoint: the transmit side gets its
	// downstream packet taker and initial credits; the receive side
	// learns where to return credits.
	for i := range t.Nodes {
		node := &t.Nodes[i]
		for pi, port := range node.Ports {
			if !port.Connected() {
				continue
			}
			peer := &t.Nodes[port.Peer]
			tx, rxCredits := n.txSide(node, pi)
			taker, dstIsHost := n.rxSide(peer, port.PeerPort)
			tx.dst = taker
			tx.hostFacing = dstIsHost
			per := n.cfg.SwitchIbufBytes
			if dstIsHost {
				per = n.cfg.HostIbufBytes
			}
			tx.initCredits(n.cfg.NumVLs, per)
			// The peer's receive side returns credits to tx.
			n.setUpstream(peer, port.PeerPort, rxCredits)
		}
	}
	return n, nil
}

// txSide returns the linkOut of (node, port) and the creditTaker the
// peer's receiver must send credits to.
func (n *Network) txSide(node *topo.Node, port int) (*linkOut, creditTaker) {
	if node.Kind == topo.Host {
		h := n.hcas[node.LID]
		h.out.node = int(node.LID)
		return &h.out, h
	}
	op := n.swByNode[node.ID].out[port]
	op.linkOut.atSwitch, op.linkOut.node, op.linkOut.port = true, op.sw.index, port
	return &op.linkOut, op
}

// rxSide returns the packet taker at (node, port).
func (n *Network) rxSide(node *topo.Node, port int) (packetTaker, bool) {
	if node.Kind == topo.Host {
		return n.hcas[node.LID], true
	}
	return n.swByNode[node.ID].in[port], false
}

// setUpstream records ct as the credit destination of (node, port)'s
// receive side.
func (n *Network) setUpstream(node *topo.Node, port int, ct creditTaker) {
	if node.Kind == topo.Host {
		n.hcas[node.LID].up = ct
		return
	}
	n.swByNode[node.ID].in[port].up = ct
}

// SetHooks installs policy hooks after construction; it must be called
// before Start. It lets the congestion-control manager be built against
// the network and then attached.
func (n *Network) SetHooks(h Hooks) { n.hooks = h }

// SetBus attaches the flight-recorder event bus; it must be called
// before Start. A nil bus (the default) disables event publication.
func (n *Network) SetBus(b *obs.Bus) { n.bus = b }

// Bus returns the attached event bus (nil when observability is off).
func (n *Network) Bus() *obs.Bus { return n.bus }

// PacketPool returns the network's packet freelist. Sources attached
// via HCA.SetSource should acquire their packets from it so the
// steady-state data path allocates nothing.
func (n *Network) PacketPool() *ib.PacketPool { return n.pool }

// HCA returns the host with the given LID.
func (n *Network) HCA(lid ib.LID) *HCA { return n.hcas[lid] }

// NumHosts returns the host count.
func (n *Network) NumHosts() int { return len(n.hcas) }

// Switches returns the switch models in dense-index order.
func (n *Network) Switches() []*SwitchNode { return n.switches }

// Sim returns the driving simulator.
func (n *Network) Sim() *sim.Simulator { return n.simr }

// Config returns the fabric configuration.
func (n *Network) Config() Config { return n.cfg }

// Topology returns the underlying topology.
func (n *Network) Topology() *topo.Topology { return n.topo }

// Start kicks every HCA send path at the current simulation time.
func (n *Network) Start() {
	for _, h := range n.hcas {
		h.kickSend()
	}
}

// CheckQuiescent verifies, after a drain, that all buffers are empty and
// all credits returned — the global conservation invariant. Tests call
// it after running the event loop to completion.
func (n *Network) CheckQuiescent() error {
	for _, h := range n.hcas {
		if h.obuf.Len() != 0 || h.rxQ.Len() != 0 || h.dmaBusy || h.sinkBusy || h.out.busy {
			return fmt.Errorf("fabric: host %d not quiescent", h.lid)
		}
		for v, free := range h.rxFree {
			if free != n.cfg.HostIbufBytes {
				return fmt.Errorf("fabric: host %d rx vl %d: %d free of %d", h.lid, v, free, n.cfg.HostIbufBytes)
			}
		}
		for v, c := range h.out.credits {
			if c != n.cfg.SwitchIbufBytes {
				return fmt.Errorf("fabric: host %d credits vl %d: %d", h.lid, v, c)
			}
		}
	}
	for _, sw := range n.switches {
		for pi, op := range sw.out {
			if op == nil {
				continue
			}
			if op.pending != 0 || op.busy {
				return fmt.Errorf("fabric: switch %d port %d not quiescent", sw.index, pi)
			}
			want := n.cfg.SwitchIbufBytes
			if op.hostFacing {
				want = n.cfg.HostIbufBytes
			}
			for v, c := range op.credits {
				if c != want {
					return fmt.Errorf("fabric: switch %d port %d vl %d credits %d of %d", sw.index, pi, v, c, want)
				}
			}
		}
		for pi, ip := range sw.in {
			if ip == nil {
				continue
			}
			for v, free := range ip.free {
				if free != n.cfg.SwitchIbufBytes {
					return fmt.Errorf("fabric: switch %d in-port %d vl %d free %d", sw.index, pi, v, free)
				}
			}
		}
	}
	return nil
}
