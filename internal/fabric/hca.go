package fabric

import (
	"fmt"

	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/topo"
)

// HCACounters accumulate per-host traffic totals. The experiment harness
// snapshots them at the warmup boundary and at the end of the
// measurement window to compute rates.
type HCACounters struct {
	// TxPackets/TxBytes count everything injected (wire bytes).
	TxPackets, TxBytes uint64
	// TxDataPayload counts application payload bytes injected.
	TxDataPayload uint64
	// TxHotspotPayload counts the subset of TxDataPayload whose
	// destination was the generator's hotspot target.
	TxHotspotPayload uint64
	// TxCNP counts congestion notification packets injected.
	TxCNP uint64
	// TxAck counts acknowledgement packets injected.
	TxAck uint64
	// RxPackets/RxBytes count everything the sink consumed.
	RxPackets, RxBytes uint64
	// RxDataPayload counts application payload bytes delivered.
	RxDataPayload uint64
	// RxCNP counts congestion notification packets delivered.
	RxCNP uint64
	// RxAck counts acknowledgement packets delivered.
	RxAck uint64
	// RxFECN counts delivered data packets carrying a FECN mark.
	RxFECN uint64
	// Latency histograms data-packet network latency (injection-DMA
	// completion to sink delivery) at this receiver.
	Latency LatencyHist
}

// HCA models one end node: the send side (generator pull, injection DMA
// at the host rate, small staging buffer, link serializer under credit
// flow control) and the receive side (credit-granting input buffer and a
// rate-limited sink). It corresponds to the gen/sink/obuf/ibuf composition
// of the paper's HCA module.
type HCA struct {
	net  *Network
	node topo.NodeID
	lid  ib.LID

	// Send side.
	out       linkOut
	obuf      pktQueue
	obufBytes int
	dmaBusy   bool
	ctrl      pktQueue
	source    Source
	wake      *sim.Event
	wakeSeq   uint64

	// Receive side.
	rxFree   []int
	rxQ      pktQueue
	sinkBusy bool
	up       creditTaker

	// Pre-bound actions and their in-flight packets (one DMA and one
	// sink service at a time).
	txAct, dmaAct, sinkAct, wakeAct sim.Action
	dmaPkt, sinkPkt                 *ib.Packet

	ctr HCACounters
}

func newHCA(n *Network, node *topo.Node) *HCA {
	h := &HCA{net: n, node: node.ID, lid: node.LID}
	h.out.net = n
	h.rxFree = make([]int, n.cfg.NumVLs)
	for v := range h.rxFree {
		h.rxFree[v] = n.cfg.HostIbufBytes
	}
	h.txAct = hcaTxAct{h}
	h.dmaAct = hcaDmaAct{h}
	h.sinkAct = hcaSinkAct{h}
	h.wakeAct = hcaWakeAct{h}
	return h
}

// LID returns the host's local identifier.
func (h *HCA) LID() ib.LID { return h.lid }

// Counters returns a snapshot of the host's traffic counters.
func (h *HCA) Counters() HCACounters { return h.ctr }

// SetSource attaches the traffic generator. It may be nil for pure
// receivers.
func (h *HCA) SetSource(s Source) { h.source = s }

// SendControl enqueues a control packet (CNP) ahead of all data traffic.
// The congestion-control manager calls it when a FECN-marked packet is
// delivered.
func (h *HCA) SendControl(p *ib.Packet) {
	p.Src = h.lid
	h.ctrl.Push(p)
	h.kickSend()
}

// Kick re-evaluates the send path; the network start-up and sources with
// external state changes use it.
func (h *HCA) Kick() { h.kickSend() }

// kickSend starts the injection DMA when it is idle, the staging buffer
// has room, and either a control packet or an eligible data packet is
// available. When the source has nothing eligible, a wake-up is armed at
// the earliest time it reported something could change.
func (h *HCA) kickSend() {
	if h.dmaBusy {
		return
	}
	if h.obufBytes+h.net.cfg.maxWire() > h.net.cfg.HostObufBytes {
		return // staging full; dmaDone/txDone will kick again
	}
	var p *ib.Packet
	if h.ctrl.Len() > 0 {
		p = h.ctrl.Pop()
	} else if h.source != nil {
		var wakeAt sim.Time
		p, wakeAt = h.source.Pull(h.net.simr.Now())
		if p == nil {
			h.armWake(wakeAt)
			return
		}
		if h.net.cfg.Check && p.PayloadBytes > ib.MTU {
			panic("fabric: source produced packet above MTU")
		}
	} else {
		return
	}
	h.dmaBusy = true
	h.dmaPkt = p
	d := h.net.cfg.InjectionRate.TxTime(p.WireBytes())
	h.net.simr.ScheduleAction(d, h.dmaAct)
}

func (h *HCA) dmaDone(p *ib.Packet) {
	h.dmaBusy = false
	p.InjectTime = h.net.simr.Now()
	h.ctr.TxPackets++
	h.ctr.TxBytes += uint64(p.WireBytes())
	switch p.Type {
	case ib.DataPacket:
		h.ctr.TxDataPayload += uint64(p.PayloadBytes)
		if p.Hotspot {
			h.ctr.TxHotspotPayload += uint64(p.PayloadBytes)
		}
	case ib.CNPPacket:
		h.ctr.TxCNP++
	case ib.AckPacket:
		h.ctr.TxAck++
	}
	h.obuf.Push(p)
	h.obufBytes += p.WireBytes()
	h.tryTxOut()
	h.kickSend()
}

// tryTxOut moves staged packets onto the wire under credit flow control.
func (h *HCA) tryTxOut() {
	if h.out.busy || h.out.down {
		return
	}
	p := h.obuf.Peek()
	if p == nil {
		return
	}
	if !h.out.canSend(p.VL, p.WireBytes()) {
		h.net.bus.CreditStalled(h.net.simr.Now(), false, int(h.lid), 0, p.VL, h.out.credits[p.VL], p.WireBytes())
		return
	}
	h.obuf.Pop()
	h.obufBytes -= p.WireBytes()
	h.net.bus.PacketSent(h.net.simr.Now(), false, int(h.lid), 0, p)
	ser := h.out.transmit(p)
	h.net.simr.ScheduleAction(ser, h.txAct)
	h.kickSend() // staging space freed
}

func (h *HCA) txDone() {
	h.out.busy = false
	h.tryTxOut()
}

// addCredit is the flow-control update from the attached switch.
func (h *HCA) addCredit(vl ib.VL, bytes int) {
	h.out.credits[vl] += bytes
	if h.net.cfg.Check && h.out.credits[vl] > h.net.cfg.SwitchIbufBytes {
		panic(fmt.Sprintf("fabric: credit overflow at host %d", h.lid))
	}
	if !h.out.busy {
		h.tryTxOut()
	}
}

// armWake schedules a send re-evaluation at t unless one at least as
// early is already pending. Fired events are recycled by the kernel, so
// the held handle is validated by its sequence number before use.
func (h *HCA) armWake(t sim.Time) {
	if t == sim.MaxTime {
		return
	}
	live := h.wake != nil && h.wake.Seq() == h.wakeSeq
	if live && !h.wake.Cancelled() && h.wake.Time() > h.net.simr.Now() && h.wake.Time() <= t {
		return
	}
	if live {
		h.net.simr.Cancel(h.wake)
	}
	h.wake = h.net.simr.ScheduleActionAt(t, h.wakeAct)
	h.wakeSeq = h.wake.Seq()
}

// dropArrive implements the fault layer's discard at the host receiver:
// the rx buffer was never occupied, so the leaf switch gets its credit
// straight back.
func (h *HCA) dropArrive(p *ib.Packet) {
	h.net.sendCredit(h.up, p.VL, p.WireBytes())
}

// arrive admits a packet into the receive buffer and starts the sink if
// idle. Space is guaranteed by the credit discipline.
func (h *HCA) arrive(p *ib.Packet) {
	h.rxFree[p.VL] -= p.WireBytes()
	if h.net.cfg.Check && h.rxFree[p.VL] < 0 {
		panic(fmt.Sprintf("fabric: rx buffer overflow at host %d", h.lid))
	}
	h.rxQ.Push(p)
	if !h.sinkBusy {
		h.consumeNext()
	}
}

// consumeNext services the sink queue at the calibrated end-node receive
// rate; completion frees buffer space (credit back to the leaf switch)
// and hands the packet to the delivery hook.
func (h *HCA) consumeNext() {
	p := h.rxQ.Pop()
	if p == nil {
		h.sinkBusy = false
		return
	}
	h.sinkBusy = true
	h.sinkPkt = p
	d := h.net.cfg.SinkRate.TxTime(p.WireBytes())
	h.net.simr.ScheduleAction(d, h.sinkAct)
}

func (h *HCA) delivered(p *ib.Packet) {
	h.rxFree[p.VL] += p.WireBytes()
	h.net.sendCredit(h.up, p.VL, p.WireBytes())
	h.ctr.RxPackets++
	h.ctr.RxBytes += uint64(p.WireBytes())
	switch p.Type {
	case ib.DataPacket:
		h.ctr.RxDataPayload += uint64(p.PayloadBytes)
		h.ctr.Latency.Add(h.net.simr.Now().Sub(p.InjectTime))
		if p.FECN {
			h.ctr.RxFECN++
		}
	case ib.CNPPacket:
		h.ctr.RxCNP++
	case ib.AckPacket:
		h.ctr.RxAck++
	}
	h.net.bus.PacketDelivered(h.net.simr.Now(), h.lid, p)
	h.net.bus.MsgCompleted(h.net.simr.Now(), h.lid, p)
	if h.net.hooks.Deliver != nil {
		h.net.hooks.Deliver(h.lid, p)
	}
	// The sink is the end of every packet's life: once the delivery
	// consumers above have returned, nothing may hold the pointer and
	// the packet goes back to the freelist for the next injection.
	h.net.pool.Put(p)
	h.consumeNext()
}
