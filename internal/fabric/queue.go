package fabric

import "repro/internal/ib"

// pktQueue is a growable FIFO ring buffer of packets, used for VoQs,
// staging buffers and sink queues. It avoids per-element allocation on
// the simulator's hottest path. Capacity is always a power of two so
// index wrapping is a mask, not an integer division.
type pktQueue struct {
	buf  []*ib.Packet
	head int
	n    int
}

// Len returns the number of queued packets.
func (q *pktQueue) Len() int { return q.n }

// Push appends p to the tail.
func (q *pktQueue) Push(p *ib.Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = p
	q.n++
}

// Peek returns the head packet without removing it, or nil if empty.
func (q *pktQueue) Peek() *ib.Packet {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

// Pop removes and returns the head packet, or nil if empty.
func (q *pktQueue) Pop() *ib.Packet {
	if q.n == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return p
}

func (q *pktQueue) grow() {
	size := len(q.buf) * 2
	if size == 0 {
		size = 8
	}
	nb := make([]*ib.Packet, size)
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&mask]
	}
	q.buf = nb
	q.head = 0
}
