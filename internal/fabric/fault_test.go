package fabric

import (
	"testing"

	"repro/internal/ib"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
)

// testDropper adapts closures to the Dropper interface.
type testDropper struct {
	pkt func(atSwitch, hostFacing bool, node, port int, p *ib.Packet) bool
	crd func(vl ib.VL, bytes int) bool
}

func (d *testDropper) DropPacket(atSwitch, hostFacing bool, node, port int, p *ib.Packet) bool {
	return d.pkt != nil && d.pkt(atSwitch, hostFacing, node, port, p)
}

func (d *testDropper) DropCredit(vl ib.VL, bytes int) bool {
	return d.crd != nil && d.crd(vl, bytes)
}

// A downed link stops transmitting, queues back up behind it, and
// resumes cleanly on link-up: everything injected is eventually
// delivered and the fabric drains to quiescence.
func TestLinkDownPausesAndResumes(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	n := buildNet(t, tp, testCfg(), Hooks{})
	n.EnableAudit()
	n.HCA(0).SetSource(&floodSource{src: 0, dst: 1, remaining: 50})

	// Stall the switch's host-facing port toward LID 1 (the port is the
	// one whose peer is host 1: on SingleSwitch, port index = LID).
	var downAt, upAt sim.Time
	n.Sim().Schedule(20*sim.Microsecond, func() {
		downAt = n.Sim().Now()
		n.SetLinkDown(true, 0, 1, true)
	})
	n.Sim().Schedule(120*sim.Microsecond, func() {
		upAt = n.Sim().Now()
		n.SetLinkDown(true, 0, 1, false)
	})

	// No packet may reach host 1 strictly inside the outage window.
	var inWindow int
	n.SetHooks(Hooks{Deliver: func(lid ib.LID, p *ib.Packet) {
		now := n.Sim().Now()
		if downAt != 0 && now > downAt.Add(n.cfg.PropDelay+n.cfg.HopLatency+2*sim.Microsecond) && (upAt == 0 || now < upAt) {
			inWindow++
		}
	}})

	n.Start()
	n.Sim().Run()
	if inWindow != 0 {
		t.Fatalf("%d deliveries during link outage", inWindow)
	}
	if got := n.HCA(1).Counters().RxPackets; got != 50 {
		t.Fatalf("delivered %d packets, want 50", got)
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// A degraded link slows delivery: the same workload takes measurably
// longer wall-clock (simulated) time with a serialization multiplier.
func TestLinkSlowDegradesThroughput(t *testing.T) {
	run := func(factor float64) sim.Time {
		tp, _ := topo.SingleSwitch(2)
		n := buildNet(t, tp, testCfg(), Hooks{})
		n.HCA(0).SetSource(&floodSource{src: 0, dst: 1, remaining: 200})
		if factor > 1 {
			n.SetLinkSlow(false, 0, 0, factor)
			n.SetLinkSlow(true, 0, 1, factor)
		}
		n.Start()
		n.Sim().Run()
		if got := n.HCA(1).Counters().RxPackets; got != 200 {
			t.Fatalf("delivered %d packets, want 200", got)
		}
		if err := n.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
		return n.Sim().Now()
	}
	nominal := run(1)
	slowed := run(4)
	if slowed <= nominal {
		t.Fatalf("4x serialization did not slow the run: %v vs %v", slowed, nominal)
	}
}

// Dropped data packets keep the ledgers exact: deliveries plus drops
// account for every injection, credits all come home, and the audit
// classifies the losses.
func TestDropConservation(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	n := buildNet(t, tp, testCfg(), Hooks{})
	aud := n.EnableAudit()
	var nth int
	n.SetDropper(&testDropper{pkt: func(atSwitch, hostFacing bool, node, port int, p *ib.Packet) bool {
		nth++
		return nth%5 == 0
	}})
	n.HCA(0).SetSource(&floodSource{src: 0, dst: 1, remaining: 100})
	n.Start()
	n.Sim().Run()

	rx := n.HCA(1).Counters().RxPackets
	if int(rx)+aud.DroppedPackets != 100 {
		t.Fatalf("rx %d + dropped %d != injected 100", rx, aud.DroppedPackets)
	}
	if aud.DroppedPackets == 0 {
		t.Fatal("dropper never fired")
	}
	if aud.DroppedData != aud.DroppedPackets {
		t.Fatalf("pure data run classified %d/%d drops as data (%+v)", aud.DroppedData, aud.DroppedPackets, *aud)
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// A drop on the final hop — the packet in flight toward the sink HCA —
// still returns the leaf switch's credit and drains clean. This is the
// hardest custody case: the receiver that never sees the packet is a
// host, not a switch input port.
func TestDropFinalHop(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	n := buildNet(t, tp, testCfg(), Hooks{})
	aud := n.EnableAudit()
	var seenFinal int
	n.SetDropper(&testDropper{pkt: func(atSwitch, hostFacing bool, node, port int, p *ib.Packet) bool {
		if !hostFacing {
			return false
		}
		seenFinal++
		return seenFinal%3 == 0
	}})
	n.HCA(0).SetSource(&floodSource{src: 0, dst: 1, remaining: 60})
	n.Start()
	n.Sim().Run()

	rx := n.HCA(1).Counters().RxPackets
	if int(rx)+aud.DroppedPackets != 60 {
		t.Fatalf("rx %d + dropped %d != injected 60", rx, aud.DroppedPackets)
	}
	if aud.DroppedPackets != 20 {
		t.Fatalf("dropped %d final-hop packets, want 20", aud.DroppedPackets)
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// Per-class drop accounting: CNPs, acks, FECN-marked data and plain data
// land in their own audit columns.
func TestDropClassification(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	n := buildNet(t, tp, testCfg(), Hooks{})
	aud := n.EnableAudit()
	n.SetDropper(&testDropper{pkt: func(atSwitch, hostFacing bool, node, port int, p *ib.Packet) bool {
		return hostFacing // lose everything on its final hop
	}})
	h := n.HCA(0)
	h.SetSource(&floodSource{src: 0, dst: 1, remaining: 2})
	n.Start()
	// Inject one of each control class plus a FECN-marked data packet
	// alongside the two plain data packets.
	h.SendControl(&ib.Packet{Type: ib.CNPPacket, Dst: 1})
	h.SendControl(&ib.Packet{Type: ib.AckPacket, Dst: 1})
	h.SendControl(&ib.Packet{Type: ib.DataPacket, Dst: 1, PayloadBytes: ib.MTU, FECN: true})
	n.Sim().Run()

	if aud.DroppedCNP != 1 || aud.DroppedAck != 1 || aud.DroppedFECN != 1 || aud.DroppedData != 2 {
		t.Fatalf("drop classification off: %+v", *aud)
	}
	if aud.DroppedPackets != 5 {
		t.Fatalf("dropped %d, want 5", aud.DroppedPackets)
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// A lost credit update is deferred, not leaked: the link stays correct,
// everything is delivered, and quiescence still balances after the
// refresh delay.
func TestDropCreditUpdateDefers(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	n := buildNet(t, tp, testCfg(), Hooks{})
	aud := n.EnableAudit()
	var lost int
	n.SetDropper(&testDropper{crd: func(vl ib.VL, bytes int) bool {
		if lost < 7 {
			lost++
			return true
		}
		return false
	}})
	n.HCA(0).SetSource(&floodSource{src: 0, dst: 1, remaining: 80})
	n.Start()
	n.Sim().Run()

	if got := n.HCA(1).Counters().RxPackets; got != 80 {
		t.Fatalf("delivered %d packets, want 80", got)
	}
	if aud.DroppedCredits != 7 {
		t.Fatalf("DroppedCredits = %d, want 7", aud.DroppedCredits)
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// faultEventCount tallies fault-layer events off the bus.
type faultEventCount struct{ downs, ups, drops int }

func (c *faultEventCount) Consume(e obs.Event) {
	switch e.Kind {
	case obs.KindLinkDown:
		c.downs++
	case obs.KindLinkUp:
		c.ups++
	case obs.KindPacketDropped:
		c.drops++
	}
}

func newCountingBus(t *testing.T, n *Network) *faultEventCount {
	t.Helper()
	b := obs.New()
	c := &faultEventCount{}
	b.Subscribe(c, obs.KindLinkDown, obs.KindLinkUp, obs.KindPacketDropped)
	n.SetBus(b)
	return c
}

// Fault events reach the flight recorder with the transmitter's
// identity.
func TestFaultEventsPublished(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	n := buildNet(t, tp, testCfg(), Hooks{})
	n.EnableAudit()
	bus := newCountingBus(t, n)
	var nth int
	n.SetDropper(&testDropper{pkt: func(atSwitch, hostFacing bool, node, port int, p *ib.Packet) bool {
		nth++
		return nth == 1
	}})
	n.HCA(0).SetSource(&floodSource{src: 0, dst: 1, remaining: 10})
	n.Sim().Schedule(5*sim.Microsecond, func() { n.SetLinkDown(true, 0, 1, true) })
	n.Sim().Schedule(15*sim.Microsecond, func() { n.SetLinkDown(true, 0, 1, false) })
	n.Start()
	n.Sim().Run()
	if bus.downs != 1 || bus.ups != 1 || bus.drops != 1 {
		t.Fatalf("fault events: downs=%d ups=%d drops=%d, want 1 each", bus.downs, bus.ups, bus.drops)
	}
}
