package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/topo"
)

func TestLatencyHistBasics(t *testing.T) {
	var h LatencyHist
	if h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Add(1000) // 1 ns
	h.Add(3000)
	h.Add(2000)
	if h.Count != 3 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Mean() != 2000 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Max() != 3000 {
		t.Fatalf("max = %v", h.Max())
	}
	// Negative latencies clamp to zero rather than corrupting buckets.
	h.Add(-5)
	if h.Count != 4 {
		t.Fatal("negative sample dropped")
	}
}

func TestLatencyHistQuantileBounds(t *testing.T) {
	// The quantile is a log2 upper bound: within 2x above the true
	// value and never below it.
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h LatencyHist
		max := uint32(0)
		for _, v := range raw {
			h.Add(sim.Duration(v))
			if v > max {
				max = v
			}
		}
		q := h.Quantile(1.0)
		return uint64(q) >= uint64(max) && (max == 0 || uint64(q) <= 2*uint64(max))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyHistMergeSub(t *testing.T) {
	var a, b LatencyHist
	a.Add(100)
	a.Add(200)
	b.Add(400)
	merged := a
	merged.Merge(&b)
	if merged.Count != 3 || merged.SumPS != 700 || merged.MaxPS != 400 {
		t.Fatalf("merge = %+v", merged)
	}
	diff := merged.Sub(a)
	if diff.Count != 1 || diff.SumPS != 400 {
		t.Fatalf("sub = %+v", diff)
	}
}

func TestLatencyHistQuantileClamps(t *testing.T) {
	var h LatencyHist
	h.Add(1000)
	if h.Quantile(-1) != h.Quantile(0) {
		t.Fatal("negative q not clamped")
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Fatal("q>1 not clamped")
	}
}

func TestDeliveredLatencyUncongested(t *testing.T) {
	// A lone flow across one switch: latency = output serialization +
	// per-hop latency/propagation + sink service, a few microseconds,
	// and stable across packets.
	tp, _ := topo.SingleSwitch(2)
	n := buildNet(t, tp, testCfg(), Hooks{})
	n.HCA(0).SetSource(&floodSource{src: 0, dst: 1, remaining: 100})
	n.Start()
	n.Sim().Run()
	lat := n.HCA(1).Counters().Latency
	if lat.Count != 100 {
		t.Fatalf("samples = %d", lat.Count)
	}
	// Cut-through pipelines the hops, so the floor is roughly the two
	// hop latencies plus one sink service time (~1.5 us).
	mean := lat.Mean()
	if mean < sim.Microsecond || mean > 4*sim.Microsecond {
		t.Fatalf("uncongested latency = %v, want ~1.5us", mean)
	}
	// Stable: max within 2x of mean.
	if lat.Max() > 2*mean {
		t.Fatalf("max %v vs mean %v", lat.Max(), mean)
	}
}

func TestDeliveredLatencyGrowsUnderCongestion(t *testing.T) {
	tp, _ := topo.SingleSwitch(5)
	n := buildNet(t, tp, testCfg(), Hooks{})
	for s := 1; s <= 4; s++ {
		n.HCA(ib.LID(s)).SetSource(&floodSource{src: ib.LID(s), dst: 0, remaining: -1})
	}
	n.Start()
	n.Sim().RunUntil(sim.Time(0).Add(2 * sim.Millisecond))
	lat := n.HCA(0).Counters().Latency
	if lat.Count == 0 {
		t.Fatal("no samples")
	}
	// Queues at the hotspot push latency far beyond the uncongested
	// few microseconds.
	if lat.Quantile(0.5) < 10*sim.Microsecond {
		t.Fatalf("congested p50 = %v", lat.Quantile(0.5))
	}
}
