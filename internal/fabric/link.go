package fabric

import (
	"fmt"

	"repro/internal/ib"
	"repro/internal/sim"
)

// packetTaker is the receiving side of a link: a switch input port or a
// host receive buffer. arrive is invoked when the packet becomes
// available to the receiver (head arrival under cut-through, tail arrival
// under store-and-forward).
type packetTaker interface {
	arrive(p *ib.Packet)
	// dropArrive is invoked instead of arrive when the fault layer
	// discards the packet at the end of its wire flight: the receiver
	// never takes custody but must still return the credit the
	// transmitter spent, as if the packet had been consumed and freed
	// instantly.
	dropArrive(p *ib.Packet)
}

// creditTaker is the transmitting side of a link, which consumes credits
// the receiver returns as its buffer drains.
type creditTaker interface {
	addCredit(vl ib.VL, bytes int)
}

// linkOut is the transmit machinery shared by switch output ports and
// HCA send ports: per-VL credit counters mirroring downstream free
// buffer space, a busy flag for the serializer, and the downstream
// endpoint.
type linkOut struct {
	net     *Network
	credits []int // bytes, per VL
	busy    bool
	dst     packetTaker
	// hostFacing reports whether the downstream endpoint is an HCA.
	hostFacing bool

	// Transmitter identity in the flight-recorder namespace: atSwitch
	// selects switch vs host for node (dense switch index vs LID); port
	// is always 0 on hosts. Set once at wiring time, read only by the
	// fault layer (see fault.go).
	atSwitch   bool
	node, port int

	// Fault state, driven by SetLinkDown / SetLinkSlow. down gates the
	// arbiter entry points (not canSend, so an outage never reads as a
	// credit stall); slow > 1 multiplies serialization time.
	down bool
	slow float64

	// check caches cfg.Check so the per-packet transmit path reads one
	// local byte instead of chasing net→cfg.
	check bool
}

func (l *linkOut) initCredits(n, per int) {
	l.credits = make([]int, n)
	for i := range l.credits {
		l.credits[i] = per
	}
	l.check = l.net.cfg.Check
}

// canSend reports whether the VL has credits for a packet of wire size b.
func (l *linkOut) canSend(vl ib.VL, b int) bool {
	return l.credits[vl] >= b
}

// transmit consumes credits and schedules the downstream arrival; the
// caller must have checked canSend and the busy flag, and must arrange
// the tx-done callback via the returned serialization time.
func (l *linkOut) transmit(p *ib.Packet) sim.Duration {
	wire := p.WireBytes()
	l.credits[p.VL] -= wire
	if l.check && l.credits[p.VL] < 0 {
		panic(fmt.Sprintf("fabric: negative credits on vl %d", p.VL))
	}
	l.busy = true
	ser := l.net.cfg.LinkRate.TxTime(wire)
	if l.slow > 1 {
		ser = sim.Duration(float64(ser) * l.slow)
	}
	arrival := l.net.cfg.PropDelay + l.net.cfg.HopLatency
	if !l.net.cfg.CutThrough {
		arrival += ser
	}
	if d := l.net.dropper; d != nil && d.DropPacket(l.atSwitch, l.hostFacing, l.node, l.port, p) {
		l.net.scheduleDrop(arrival, l, p)
	} else {
		l.net.scheduleArrival(arrival, l.dst, p)
	}
	return ser
}
