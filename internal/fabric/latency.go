package fabric

import (
	"math/bits"

	"repro/internal/sim"
)

// latBuckets is the number of log2 latency buckets; bucket i holds
// samples with latency in [2^(i-1), 2^i) picoseconds, which spans from
// sub-nanosecond to ~40 hours — every latency the model can produce.
const latBuckets = 48

// LatencyHist is a log2-bucketed histogram of packet latencies
// (injection-DMA completion to sink delivery) in picoseconds. The zero
// value is ready to use; the struct is plain data so counter snapshots
// copy it by value.
type LatencyHist struct {
	Buckets [latBuckets]uint64
	Count   uint64
	SumPS   uint64
	MaxPS   uint64
}

// Add records one latency sample.
func (h *LatencyHist) Add(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	b := bits.Len64(uint64(d))
	if b >= latBuckets {
		b = latBuckets - 1
	}
	h.Buckets[b]++
	h.Count++
	h.SumPS += uint64(d)
	if uint64(d) > h.MaxPS {
		h.MaxPS = uint64(d)
	}
}

// Merge adds other's samples into h.
func (h *LatencyHist) Merge(other *LatencyHist) {
	for i, v := range other.Buckets {
		h.Buckets[i] += v
	}
	h.Count += other.Count
	h.SumPS += other.SumPS
	if other.MaxPS > h.MaxPS {
		h.MaxPS = other.MaxPS
	}
}

// Sub subtracts a baseline snapshot, yielding the histogram of samples
// recorded after it (Max is carried over conservatively).
func (h LatencyHist) Sub(base LatencyHist) LatencyHist {
	out := h
	for i := range out.Buckets {
		out.Buckets[i] -= base.Buckets[i]
	}
	out.Count -= base.Count
	out.SumPS -= base.SumPS
	return out
}

// Mean returns the mean latency (0 when empty).
func (h *LatencyHist) Mean() sim.Duration {
	if h.Count == 0 {
		return 0
	}
	return sim.Duration(h.SumPS / h.Count)
}

// Max returns the largest recorded latency.
func (h *LatencyHist) Max() sim.Duration { return sim.Duration(h.MaxPS) }

// Quantile returns an upper bound of the q-quantile (q in [0,1]): the
// top of the bucket where the cumulative count crosses q. The bound is
// within 2x of the true value by construction.
func (h *LatencyHist) Quantile(q float64) sim.Duration {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, v := range h.Buckets {
		cum += v
		if cum >= target {
			return sim.Duration(uint64(1) << uint(i))
		}
	}
	return sim.Duration(h.MaxPS)
}
