package fabric

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/ib"
	"repro/internal/sim"
)

// This file is the fabric half of the checkpoint/restore contract
// (internal/ckpt): a typed export of every piece of mutable fabric
// state — packet custody in staging/control/receive/VoQ queues and
// in-service slots, per-VL credit and free-space accounting, link
// serializer/fault state, traffic counters, pool books, audit ledger —
// and the action codec that maps the fabric's pending future-event-list
// entries to serializable (kind, args) records and back.
//
// Restore overlays this state onto a freshly Built network: the wiring
// (takers, upstream credit destinations, action bindings) is identical
// by construction, so only the mutable fields move.

// LinkOutState is the mutable state of one transmitter.
type LinkOutState struct {
	Credits []int   `json:"credits"`
	Busy    bool    `json:"busy,omitempty"`
	Down    bool    `json:"down,omitempty"`
	Slow    float64 `json:"slow,omitempty"`
}

// HCAState is the mutable state of one end node. Queue fields hold
// 1-based packet-table references in FIFO order.
type HCAState struct {
	Obuf      []int `json:"obuf,omitempty"`
	ObufBytes int   `json:"obuf_bytes,omitempty"`
	Ctrl      []int `json:"ctrl,omitempty"`
	DmaBusy   bool  `json:"dma_busy,omitempty"`
	DmaPkt    int   `json:"dma_pkt,omitempty"`
	RxFree    []int `json:"rx_free"`
	RxQ       []int `json:"rxq,omitempty"`
	SinkBusy  bool  `json:"sink_busy,omitempty"`
	SinkPkt   int   `json:"sink_pkt,omitempty"`

	Out LinkOutState `json:"out"`
	Ctr HCACounters  `json:"ctr"`
}

// VoQState is one non-empty virtual output queue, keyed by its ring
// index (inPort<<vlShift | vl — the layout is derived from the config,
// so the key is stable across rebuilds of the same scenario).
type VoQState struct {
	K    int   `json:"k"`
	Pkts []int `json:"pkts"`
}

// SwOutState is the mutable state of one switch output port.
type SwOutState struct {
	Link    LinkOutState `json:"link"`
	VoQs    []VoQState   `json:"voqs,omitempty"`
	Qbytes  []int        `json:"qbytes"`
	RR      int          `json:"rr,omitempty"`
	Pending int          `json:"pending,omitempty"`
}

// SwInState is the mutable state of one switch input port.
type SwInState struct {
	Free []int `json:"free"`
}

// SwitchState is the mutable state of one switch; nil entries mirror
// unconnected ports.
type SwitchState struct {
	In  []*SwInState  `json:"in"`
	Out []*SwOutState `json:"out"`
}

// State is the fabric's complete mutable state.
type State struct {
	HCAs     []HCAState     `json:"hcas"`
	Switches []SwitchState  `json:"switches"`
	Pool     ib.PoolStats   `json:"pool"`
	Audit    *AuditCounters `json:"audit,omitempty"`
}

func queueRefs(t *ckpt.PacketTable, q *pktQueue) []int {
	if q.n == 0 {
		return nil
	}
	out := make([]int, 0, q.n)
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		out = append(out, t.Ref(q.buf[(q.head+i)&mask]))
	}
	return out
}

func restoreQueue(t *ckpt.PacketTable, q *pktQueue, refs []int) {
	*q = pktQueue{}
	for _, r := range refs {
		q.Push(t.Packet(r))
	}
}

func exportLink(l *linkOut) LinkOutState {
	return LinkOutState{
		Credits: append([]int(nil), l.credits...),
		Busy:    l.busy, Down: l.down, Slow: l.slow,
	}
}

func restoreLink(l *linkOut, st LinkOutState, what string) error {
	if len(st.Credits) != len(l.credits) {
		return fmt.Errorf("fabric: restore %s: %d credit lanes, want %d", what, len(st.Credits), len(l.credits))
	}
	copy(l.credits, st.Credits)
	l.busy, l.down, l.slow = st.Busy, st.Down, st.Slow
	return nil
}

// ExportState captures the fabric's mutable state, interning every held
// packet into tab.
func (n *Network) ExportState(tab *ckpt.PacketTable) *State {
	st := &State{HCAs: make([]HCAState, len(n.hcas)), Switches: make([]SwitchState, len(n.switches))}
	for i, h := range n.hcas {
		st.HCAs[i] = HCAState{
			Obuf:      queueRefs(tab, &h.obuf),
			ObufBytes: h.obufBytes,
			Ctrl:      queueRefs(tab, &h.ctrl),
			DmaBusy:   h.dmaBusy,
			DmaPkt:    tab.Ref(h.dmaPkt),
			RxFree:    append([]int(nil), h.rxFree...),
			RxQ:       queueRefs(tab, &h.rxQ),
			SinkBusy:  h.sinkBusy,
			SinkPkt:   tab.Ref(h.sinkPkt),
			Out:       exportLink(&h.out),
			Ctr:       h.ctr,
		}
	}
	for i, sw := range n.switches {
		ss := SwitchState{In: make([]*SwInState, len(sw.in)), Out: make([]*SwOutState, len(sw.out))}
		for pi, ip := range sw.in {
			if ip == nil {
				continue
			}
			ss.In[pi] = &SwInState{Free: append([]int(nil), ip.free...)}
		}
		for pi, op := range sw.out {
			if op == nil {
				continue
			}
			os := &SwOutState{
				Link:    exportLink(&op.linkOut),
				Qbytes:  append([]int(nil), op.qbytes...),
				RR:      op.rr,
				Pending: op.pending,
			}
			for k := range op.voqs {
				if refs := queueRefs(tab, &op.voqs[k]); refs != nil {
					os.VoQs = append(os.VoQs, VoQState{K: k, Pkts: refs})
				}
			}
			ss.Out[pi] = os
		}
		st.Switches[i] = ss
	}
	st.Pool = n.pool.Stats()
	if n.aud != nil {
		a := *n.aud
		st.Audit = &a
	}
	return st
}

// RestoreState overlays a checkpointed fabric state onto a freshly
// built network of the same scenario.
func (n *Network) RestoreState(st *State, tab *ckpt.PacketTable) error {
	if len(st.HCAs) != len(n.hcas) || len(st.Switches) != len(n.switches) {
		return fmt.Errorf("fabric: restore shape %d hosts/%d switches, want %d/%d",
			len(st.HCAs), len(st.Switches), len(n.hcas), len(n.switches))
	}
	for i, h := range n.hcas {
		hs := &st.HCAs[i]
		restoreQueue(tab, &h.obuf, hs.Obuf)
		h.obufBytes = hs.ObufBytes
		restoreQueue(tab, &h.ctrl, hs.Ctrl)
		h.dmaBusy = hs.DmaBusy
		h.dmaPkt = tab.Packet(hs.DmaPkt)
		if len(hs.RxFree) != len(h.rxFree) {
			return fmt.Errorf("fabric: restore host %d: %d rx lanes, want %d", i, len(hs.RxFree), len(h.rxFree))
		}
		copy(h.rxFree, hs.RxFree)
		restoreQueue(tab, &h.rxQ, hs.RxQ)
		h.sinkBusy = hs.SinkBusy
		h.sinkPkt = tab.Packet(hs.SinkPkt)
		if err := restoreLink(&h.out, hs.Out, fmt.Sprintf("host %d", i)); err != nil {
			return err
		}
		h.ctr = hs.Ctr
		h.wake, h.wakeSeq = nil, 0 // re-linked by the wake event's decode, if pending
	}
	for i, sw := range n.switches {
		ss := &st.Switches[i]
		if len(ss.In) != len(sw.in) || len(ss.Out) != len(sw.out) {
			return fmt.Errorf("fabric: restore switch %d port shape mismatch", i)
		}
		for pi, ip := range sw.in {
			is := ss.In[pi]
			if (ip == nil) != (is == nil) {
				return fmt.Errorf("fabric: restore switch %d in-port %d connectivity mismatch", i, pi)
			}
			if ip == nil {
				continue
			}
			if len(is.Free) != len(ip.free) {
				return fmt.Errorf("fabric: restore switch %d in-port %d lane count", i, pi)
			}
			copy(ip.free, is.Free)
		}
		for pi, op := range sw.out {
			osrc := ss.Out[pi]
			if (op == nil) != (osrc == nil) {
				return fmt.Errorf("fabric: restore switch %d out-port %d connectivity mismatch", i, pi)
			}
			if op == nil {
				continue
			}
			if err := restoreLink(&op.linkOut, osrc.Link, fmt.Sprintf("switch %d port %d", i, pi)); err != nil {
				return err
			}
			if len(osrc.Qbytes) != len(op.qbytes) {
				return fmt.Errorf("fabric: restore switch %d port %d lane count", i, pi)
			}
			copy(op.qbytes, osrc.Qbytes)
			op.rr = osrc.RR
			op.pending = osrc.Pending
			for k := range op.voqs {
				op.voqs[k] = pktQueue{}
			}
			for _, vs := range osrc.VoQs {
				if vs.K < 0 || vs.K >= len(op.voqs) {
					return fmt.Errorf("fabric: restore switch %d port %d voq %d of %d", i, pi, vs.K, len(op.voqs))
				}
				restoreQueue(tab, &op.voqs[vs.K], vs.Pkts)
			}
		}
	}
	n.pool.RestoreStats(st.Pool)
	if st.Audit != nil {
		a := n.EnableAudit()
		*a = *st.Audit
	}
	return nil
}

// Fabric action kinds in the checkpoint event records.
const (
	kindArrival = "arrival"
	kindCredit  = "credit"
	kindSwTx    = "swTx"
	kindHCATx   = "hcaTx"
	kindHCAWake = "hcaWake"
	kindHCADma  = "hcaDma"
	kindHCASink = "hcaSink"
)

// Codec translates the fabric's pending event actions to checkpoint
// records and back. Field use per kind:
//
//	arrival: B0/A0/A1 = receiver (atSwitch, node, port), Pkt = packet,
//	         B1 = drop, B2/A2/A3 = transmitter identity when dropping
//	credit:  B0/A0/A1 = transmitter (atSwitch, node, port), A2 = VL,
//	         A3 = bytes
//	swTx:    A0/A1 = switch index, port
//	hcaTx/hcaWake/hcaDma/hcaSink: A0 = host LID
type Codec struct {
	net *Network
	tab *ckpt.PacketTable
}

// Codec returns the fabric's action codec over the given packet table.
func (n *Network) Codec(tab *ckpt.PacketTable) *Codec { return &Codec{net: n, tab: tab} }

// EncodeAction implements the checkpoint encoder for fabric actions; ok
// is false for actions the fabric does not own.
func (c *Codec) EncodeAction(a sim.Action) (rec ckpt.EventRecord, ok bool) {
	switch v := a.(type) {
	case *arrivalAct:
		rec = ckpt.EventRecord{Kind: kindArrival, Pkt: c.tab.Ref(v.p), B1: v.drop}
		switch d := v.dst.(type) {
		case *HCA:
			rec.A0 = int64(d.lid)
		case *swInPort:
			rec.B0, rec.A0, rec.A1 = true, int64(d.sw.index), int64(d.port)
		default:
			return rec, false
		}
		if v.drop {
			rec.B2 = v.src.atSwitch
			rec.A2, rec.A3 = int64(v.src.node), int64(v.src.port)
		}
		return rec, true
	case *creditAct:
		rec = ckpt.EventRecord{Kind: kindCredit, A2: int64(v.vl), A3: int64(v.bytes)}
		switch t := v.taker.(type) {
		case *HCA:
			rec.A0 = int64(t.lid)
		case *swOutPort:
			rec.B0, rec.A0, rec.A1 = true, int64(t.sw.index), int64(t.port)
		default:
			return rec, false
		}
		return rec, true
	case swTxAct:
		return ckpt.EventRecord{Kind: kindSwTx, A0: int64(v.op.sw.index), A1: int64(v.op.port)}, true
	case hcaTxAct:
		return ckpt.EventRecord{Kind: kindHCATx, A0: int64(v.h.lid)}, true
	case hcaWakeAct:
		return ckpt.EventRecord{Kind: kindHCAWake, A0: int64(v.h.lid)}, true
	case hcaDmaAct:
		return ckpt.EventRecord{Kind: kindHCADma, A0: int64(v.h.lid)}, true
	case hcaSinkAct:
		return ckpt.EventRecord{Kind: kindHCASink, A0: int64(v.h.lid)}, true
	}
	return ckpt.EventRecord{}, false
}

func (c *Codec) host(a0 int64) (*HCA, error) {
	if a0 < 0 || int(a0) >= len(c.net.hcas) {
		return nil, fmt.Errorf("fabric: checkpoint references host %d of %d", a0, len(c.net.hcas))
	}
	return c.net.hcas[a0], nil
}

func (c *Codec) swPort(a0, a1 int64) (*SwitchNode, int, error) {
	if a0 < 0 || int(a0) >= len(c.net.switches) {
		return nil, 0, fmt.Errorf("fabric: checkpoint references switch %d of %d", a0, len(c.net.switches))
	}
	sw := c.net.switches[a0]
	if a1 < 0 || int(a1) >= len(sw.out) {
		return nil, 0, fmt.Errorf("fabric: checkpoint references port %d of switch %d", a1, a0)
	}
	return sw, int(a1), nil
}

// DecodeAction implements the checkpoint decoder for fabric actions.
// attach, when non-nil, must be called with the restored event so
// holders of event handles (the HCA wake slot) re-link.
func (c *Codec) DecodeAction(rec ckpt.EventRecord) (act sim.Action, attach func(*sim.Event), ok bool, err error) {
	switch rec.Kind {
	case kindArrival:
		a := c.net.popArrival()
		a.p = c.tab.Packet(rec.Pkt)
		a.drop = rec.B1
		if rec.B0 {
			sw, port, e := c.swPort(rec.A0, rec.A1)
			if e != nil {
				return nil, nil, true, e
			}
			if sw.in[port] == nil {
				return nil, nil, true, fmt.Errorf("fabric: arrival at unconnected in-port %d of switch %d", port, rec.A0)
			}
			a.dst = sw.in[port]
		} else {
			h, e := c.host(rec.A0)
			if e != nil {
				return nil, nil, true, e
			}
			a.dst = h
		}
		if a.drop {
			if rec.B2 {
				sw, port, e := c.swPort(rec.A2, rec.A3)
				if e != nil {
					return nil, nil, true, e
				}
				a.src = &sw.out[port].linkOut
			} else {
				h, e := c.host(rec.A2)
				if e != nil {
					return nil, nil, true, e
				}
				a.src = &h.out
			}
		}
		return a, nil, true, nil
	case kindCredit:
		cr := &creditAct{net: c.net, vl: ib.VL(rec.A2), bytes: int(rec.A3)}
		if rec.B0 {
			sw, port, e := c.swPort(rec.A0, rec.A1)
			if e != nil {
				return nil, nil, true, e
			}
			if sw.out[port] == nil {
				return nil, nil, true, fmt.Errorf("fabric: credit to unconnected port %d of switch %d", port, rec.A0)
			}
			cr.taker = sw.out[port]
		} else {
			h, e := c.host(rec.A0)
			if e != nil {
				return nil, nil, true, e
			}
			cr.taker = h
		}
		return cr, nil, true, nil
	case kindSwTx:
		sw, port, e := c.swPort(rec.A0, rec.A1)
		if e != nil {
			return nil, nil, true, e
		}
		if sw.out[port] == nil {
			return nil, nil, true, fmt.Errorf("fabric: tx-done on unconnected port %d of switch %d", port, rec.A0)
		}
		return sw.out[port].txAct, nil, true, nil
	case kindHCATx, kindHCAWake, kindHCADma, kindHCASink:
		h, e := c.host(rec.A0)
		if e != nil {
			return nil, nil, true, e
		}
		switch rec.Kind {
		case kindHCATx:
			return h.txAct, nil, true, nil
		case kindHCADma:
			return h.dmaAct, nil, true, nil
		case kindHCASink:
			return h.sinkAct, nil, true, nil
		default:
			return h.wakeAct, func(e *sim.Event) { h.wake, h.wakeSeq = e, e.Seq() }, true, nil
		}
	}
	return nil, nil, false, nil
}
