package fabric

import (
	"fmt"

	"repro/internal/ib"
)

// This file is the fabric side of the runtime invariant layer
// (internal/check): a custody census of every packet the fabric holds,
// and mid-run bounds on the credit accounting. Unlike CheckQuiescent,
// which only holds after a full drain, these invariants hold at every
// event boundary, so the checker can sweep them during a run.

// AuditCounters tracks packet custody that is otherwise implicit in the
// future-event list: packets serialized onto a link whose arrival event
// has not fired yet. The counter lives behind a nil pointer so the
// unaudited hot path pays exactly one branch per link transmission.
type AuditCounters struct {
	// WirePackets counts packets currently in flight on links (arrival
	// scheduled, not yet arrived).
	WirePackets int

	// DroppedPackets counts packets the fault layer discarded on the
	// wire (see Dropper). Dropped custody is intentional, so the pool
	// accounting law becomes Puts == ΣRxPackets + DroppedPackets; the
	// per-class columns below break the total down for audit reports
	// (a FECN-marked data packet counts under DroppedFECN only).
	DroppedPackets int
	DroppedData    int
	DroppedFECN    int
	DroppedCNP     int
	DroppedAck     int
	// DroppedCredits counts discarded flow-control credit updates.
	// Each is deferred to the next refresh rather than lost (see
	// CreditRefreshDelay), so quiescence still balances.
	DroppedCredits int
}

// countDrop classifies a wire-dropped packet into the audit ledger.
func (a *AuditCounters) countDrop(p *ib.Packet) {
	a.DroppedPackets++
	switch {
	case p.Type == ib.CNPPacket:
		a.DroppedCNP++
	case p.Type == ib.AckPacket:
		a.DroppedAck++
	case p.FECN:
		a.DroppedFECN++
	default:
		a.DroppedData++
	}
}

// EnableAudit switches on the wire-custody counter and returns it. It
// must be called before Start — packets already in flight when auditing
// begins would be invisible to the census. Idempotent.
func (n *Network) EnableAudit() *AuditCounters {
	if n.aud == nil {
		n.aud = &AuditCounters{}
	}
	return n.aud
}

// Audit returns the audit counters, or nil when auditing is off.
func (n *Network) Audit() *AuditCounters { return n.aud }

// HeldCensus breaks down the fabric's packet custody by holding site.
type HeldCensus struct {
	// Staged counts HCA send-side custody: staging buffers, control
	// queues, and the packets inside the injection DMA.
	Staged int
	// RxQueued counts HCA receive-side custody: receive queues and the
	// packets inside sink service.
	RxQueued int
	// Queued counts packets in switch virtual output queues.
	Queued int
	// Wire counts packets in flight on links. It is exact only when
	// auditing is enabled (EnableAudit before Start), zero otherwise.
	Wire int
}

// Total sums the census.
func (c HeldCensus) Total() int { return c.Staged + c.RxQueued + c.Queued + c.Wire }

func (c HeldCensus) String() string {
	return fmt.Sprintf("staged=%d rx-queued=%d voq=%d wire=%d", c.Staged, c.RxQueued, c.Queued, c.Wire)
}

// Census walks every holding site and returns the custody breakdown.
// With auditing enabled, Census().Total() accounts for every packet the
// fabric owns, so pool.Live() − sources' pending == Total() is the
// packet conservation law the checker sweeps.
func (n *Network) Census() HeldCensus {
	var c HeldCensus
	for _, h := range n.hcas {
		c.Staged += h.obuf.Len() + h.ctrl.Len()
		if h.dmaPkt != nil {
			c.Staged++
		}
		c.RxQueued += h.rxQ.Len()
		if h.sinkPkt != nil {
			c.RxQueued++
		}
	}
	for _, sw := range n.switches {
		for _, op := range sw.out {
			if op != nil {
				c.Queued += op.pending
			}
		}
	}
	if n.aud != nil {
		c.Wire = n.aud.WirePackets
	}
	return c
}

// HeldPackets returns the total number of packets the fabric currently
// owns (see Census).
func (n *Network) HeldPackets() int { return n.Census().Total() }

// CheckCreditBounds verifies the credit-accounting bounds that hold at
// every event boundary, not just at quiescence: every transmitter's
// per-VL credit count within [0, downstream buffer capacity], every
// receiver's free space within [0, its capacity], and no negative
// queue accounting anywhere. It returns the first violation found.
func (n *Network) CheckCreditBounds() error {
	for _, h := range n.hcas {
		for v, cr := range h.out.credits {
			// Hosts attach to leaf switches, so the downstream buffer
			// is always a switch input buffer.
			if cr < 0 || cr > n.cfg.SwitchIbufBytes {
				return fmt.Errorf("fabric: host %d tx vl %d credits %d outside [0, %d]",
					h.lid, v, cr, n.cfg.SwitchIbufBytes)
			}
		}
		for v, free := range h.rxFree {
			if free < 0 || free > n.cfg.HostIbufBytes {
				return fmt.Errorf("fabric: host %d rx vl %d free %d outside [0, %d]",
					h.lid, v, free, n.cfg.HostIbufBytes)
			}
		}
		if h.obufBytes < 0 || h.obufBytes > n.cfg.HostObufBytes {
			return fmt.Errorf("fabric: host %d staging %d bytes outside [0, %d]",
				h.lid, h.obufBytes, n.cfg.HostObufBytes)
		}
	}
	for _, sw := range n.switches {
		for pi, op := range sw.out {
			if op == nil {
				continue
			}
			dcap := downstreamCap(op)
			for v, cr := range op.credits {
				if cr < 0 || cr > dcap {
					return fmt.Errorf("fabric: switch %d port %d vl %d credits %d outside [0, %d]",
						sw.index, pi, v, cr, dcap)
				}
			}
			if op.pending < 0 {
				return fmt.Errorf("fabric: switch %d port %d pending %d packets", sw.index, pi, op.pending)
			}
			for v, qb := range op.qbytes {
				if qb < 0 {
					return fmt.Errorf("fabric: switch %d port %d vl %d queued %d bytes", sw.index, pi, v, qb)
				}
			}
		}
		for pi, ip := range sw.in {
			if ip == nil {
				continue
			}
			for v, free := range ip.free {
				if free < 0 || free > n.cfg.SwitchIbufBytes {
					return fmt.Errorf("fabric: switch %d in-port %d vl %d free %d outside [0, %d]",
						sw.index, pi, v, free, n.cfg.SwitchIbufBytes)
				}
			}
		}
	}
	return nil
}
