package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/ib"
)

func TestPktQueueFIFO(t *testing.T) {
	var q pktQueue
	if q.Pop() != nil || q.Peek() != nil || q.Len() != 0 {
		t.Fatal("empty queue misbehaves")
	}
	pkts := make([]*ib.Packet, 20)
	for i := range pkts {
		pkts[i] = &ib.Packet{ID: uint64(i)}
		q.Push(pkts[i])
	}
	if q.Len() != 20 {
		t.Fatalf("Len = %d", q.Len())
	}
	if q.Peek() != pkts[0] {
		t.Fatal("Peek wrong")
	}
	for i := range pkts {
		if got := q.Pop(); got != pkts[i] {
			t.Fatalf("pos %d: got %v", i, got)
		}
	}
	if q.Len() != 0 {
		t.Fatal("not empty after drain")
	}
}

func TestPktQueueWraparound(t *testing.T) {
	var q pktQueue
	id := uint64(0)
	next := uint64(0)
	// Interleave pushes and pops to force head to wrap repeatedly.
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			q.Push(&ib.Packet{ID: id})
			id++
		}
		for i := 0; i < 2; i++ {
			p := q.Pop()
			if p == nil || p.ID != next {
				t.Fatalf("round %d: got %v want id %d", round, p, next)
			}
			next++
		}
	}
	for q.Len() > 0 {
		p := q.Pop()
		if p.ID != next {
			t.Fatalf("drain: got %d want %d", p.ID, next)
		}
		next++
	}
	if next != id {
		t.Fatalf("lost packets: %d of %d", next, id)
	}
}

// Property: any sequence of pushes and pops matches a reference slice
// implementation.
func TestPktQueueMatchesReference(t *testing.T) {
	f := func(ops []bool) bool {
		var q pktQueue
		var ref []*ib.Packet
		id := uint64(0)
		for _, push := range ops {
			if push {
				p := &ib.Packet{ID: id}
				id++
				q.Push(p)
				ref = append(ref, p)
			} else {
				var want *ib.Packet
				if len(ref) > 0 {
					want = ref[0]
					ref = ref[1:]
				}
				if q.Pop() != want {
					return false
				}
			}
			if q.Len() != len(ref) {
				return false
			}
			if len(ref) > 0 && q.Peek() != ref[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The mask-based index wrap requires every capacity to be a power of
// two; growth must preserve that from the initial allocation onward.
func TestPktQueuePowerOfTwoCapacity(t *testing.T) {
	var q pktQueue
	for i := 0; i < 1000; i++ {
		q.Push(&ib.Packet{ID: uint64(i)})
		if c := len(q.buf); c&(c-1) != 0 {
			t.Fatalf("after %d pushes: capacity %d not a power of two", i+1, c)
		}
	}
}

// BenchmarkPktQueue measures the steady-state push/pop cycle at a fixed
// occupancy — the pattern of every VoQ, staging buffer and sink queue on
// the per-packet path. The mask-based wrap removes two integer divisions
// per cycle relative to the previous %-len indexing.
func BenchmarkPktQueue(b *testing.B) {
	var q pktQueue
	p := &ib.Packet{}
	for i := 0; i < 24; i++ { // off power-of-two occupancy, head wraps
		q.Push(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(q.Pop())
	}
}
