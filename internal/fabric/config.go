// Package fabric implements the InfiniBand network model the study runs
// on: switches with virtual-output-queued input buffers and round-robin
// VL arbitration, HCAs with a rate-limited injection DMA and sink,
// full-duplex links, and credit-based link-level flow control. It mirrors
// the ibuf/obuf/vlarb/gen/sink module structure of the OMNeT++ model the
// paper describes, with hook points for the congestion-control manager
// (internal/cc) and the traffic generators (internal/traffic).
package fabric

import (
	"fmt"

	"repro/internal/ib"
	"repro/internal/sim"
)

// Config carries the fabric-level parameters. The defaults reproduce the
// calibration of the paper's simulator against Mellanox MTS3600 switches
// and PCIe v1.1 hosts (section IV).
type Config struct {
	// LinkRate is the data rate of every link (default 20 Gbit/s, 4x DDR).
	LinkRate sim.Rate
	// InjectionRate caps the host DMA feeding its send port
	// (default 13.5 Gbit/s, the PCIe v1.1-limited rate in the paper).
	InjectionRate sim.Rate
	// SinkRate caps host packet consumption (default 13.6 Gbit/s, the
	// calibrated end-node receive rate, slightly above injection).
	SinkRate sim.Rate

	// PropDelay is the per-link propagation delay.
	PropDelay sim.Duration
	// HopLatency is the fixed receive/forwarding pipeline latency added
	// per hop (switch port-to-port processing).
	HopLatency sim.Duration

	// NumVLs is the number of data virtual lanes carried end to end.
	// All the paper's experiments run on one data VL.
	NumVLs int

	// SwitchIbufBytes is the input-buffer capacity per switch port per
	// VL; it bounds the credits an upstream sender may hold.
	SwitchIbufBytes int
	// HostIbufBytes is the receive-buffer capacity per host per VL.
	HostIbufBytes int
	// HostObufBytes is the host's send staging buffer; the injection
	// DMA stalls when it is full (fabric backpressure reaches the
	// generator here).
	HostObufBytes int

	// CutThrough selects virtual cut-through forwarding (the paper's
	// mode); when false, store-and-forward timing is used.
	CutThrough bool

	// Check enables internal invariant assertions (used by tests;
	// costs a few percent of runtime).
	Check bool
}

// DefaultConfig returns the paper-calibrated fabric configuration.
func DefaultConfig() Config {
	return Config{
		LinkRate:        ib.DefaultLinkRate(),
		InjectionRate:   ib.DefaultInjectionRate(),
		SinkRate:        sim.Gbps(13.6),
		PropDelay:       10 * sim.Nanosecond,
		HopLatency:      100 * sim.Nanosecond,
		NumVLs:          1,
		SwitchIbufBytes: 16 << 10,
		HostIbufBytes:   16 << 10,
		HostObufBytes:   8 << 10,
		CutThrough:      true,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.LinkRate <= 0 || c.InjectionRate <= 0 || c.SinkRate <= 0:
		return fmt.Errorf("fabric: rates must be positive")
	case c.InjectionRate > c.LinkRate:
		return fmt.Errorf("fabric: injection rate above link rate")
	case c.NumVLs < 1 || c.NumVLs > 15:
		return fmt.Errorf("fabric: NumVLs %d out of range [1,15]", c.NumVLs)
	case c.SwitchIbufBytes < ib.MTU+ib.HeaderBytes:
		return fmt.Errorf("fabric: switch ibuf smaller than one packet")
	case c.HostIbufBytes < ib.MTU+ib.HeaderBytes:
		return fmt.Errorf("fabric: host ibuf smaller than one packet")
	case c.HostObufBytes < ib.MTU+ib.HeaderBytes:
		return fmt.Errorf("fabric: host obuf smaller than one packet")
	case c.PropDelay < 0 || c.HopLatency < 0:
		return fmt.Errorf("fabric: negative delays")
	}
	return nil
}

// maxWire is the largest packet the fabric will carry.
func (c *Config) maxWire() int { return ib.MTU + ib.HeaderBytes }

// PortVLState is a snapshot of a switch output Port VL handed to the
// congestion-control hook when a data packet departs. The CC manager uses
// it to evaluate the threshold and the root-vs-victim condition.
type PortVLState struct {
	// QueuedBytes is the total bytes still queued across all input VoQs
	// for this output port and VL, excluding the departing packet.
	QueuedBytes int
	// CreditBytes is the currently known downstream free space.
	CreditBytes int
	// CapacityBytes is the reference buffer capacity for the threshold
	// computation (one input buffer's VL capacity).
	CapacityBytes int
	// HostPort reports whether the port attaches an HCA (the spec's
	// Victim Mask is typically set on such ports).
	HostPort bool
}

// Hooks connects policy modules to the fabric. Any field may be nil.
type Hooks struct {
	// SwitchEnqueue fires when a data packet is routed into a switch
	// output port's VoQ; the state describes the queue it joins
	// (excluding itself). It may set the packet's FECN bit.
	SwitchEnqueue func(sw int, outPort int, pkt *ib.Packet, st PortVLState)
	// SwitchDeparture fires for every data packet granted to a switch
	// output port; it may set the packet's FECN bit.
	SwitchDeparture func(sw int, outPort int, pkt *ib.Packet, st PortVLState)
	// Deliver fires when a host sink consumes any packet.
	Deliver func(hostLID ib.LID, pkt *ib.Packet)
	// SelectVL, when set, chooses the virtual lane a packet continues
	// on when a switch forwards it (e.g. dateline VL switching on a
	// torus). It is consulted during arbitration: the grant requires
	// credits on the returned VL, and the packet leaves the switch on
	// it. Nil keeps the packet's VL end to end.
	SelectVL func(sw int, inPort, outPort int, pkt *ib.Packet) ib.VL
}

// Source supplies data packets to an HCA's send path. Implementations
// own the flow queues, the traffic-class budgets and the CC injection
// throttling; the HCA pulls whenever its DMA engine and staging buffer
// are free.
type Source interface {
	// Pull returns the next packet to inject, or nil if none is
	// currently eligible together with the earliest time one may become
	// eligible (sim.MaxTime if the source is exhausted or purely
	// reactive). Pull must not return a packet larger than the MTU.
	Pull(now sim.Time) (*ib.Packet, sim.Time)
}
