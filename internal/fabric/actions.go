package fabric

import (
	"repro/internal/ib"
	"repro/internal/sim"
)

// The fabric schedules a handful of events per packet per hop; this file
// keeps those events allocation-free. Repeating per-port callbacks
// (serializer done, DMA done, sink done) are pre-bound Actions stored on
// their owners; per-packet arrivals and credit updates use small pooled
// action structs recycled through the Network.

// arrivalAct delivers a packet to a link's receiving endpoint — or, when
// the fault layer marked it lost at transmit time, discards it at the
// same instant (src identifies the transmitter for the drop record).
type arrivalAct struct {
	net  *Network
	dst  packetTaker
	p    *ib.Packet
	src  *linkOut
	drop bool
}

// Act implements sim.Action.
func (a *arrivalAct) Act() {
	net, dst, p, src, drop := a.net, a.dst, a.p, a.src, a.drop
	a.dst, a.p, a.src, a.drop = nil, nil, nil, false
	net.arrPool = append(net.arrPool, a)
	if net.aud != nil {
		net.aud.WirePackets--
	}
	if drop {
		net.dropped(src, dst, p)
		return
	}
	dst.arrive(p)
}

func (n *Network) popArrival() *arrivalAct {
	if k := len(n.arrPool); k > 0 {
		a := n.arrPool[k-1]
		n.arrPool[k-1] = nil
		n.arrPool = n.arrPool[:k-1]
		return a
	}
	return &arrivalAct{net: n}
}

// scheduleArrival enqueues a packet arrival after d.
func (n *Network) scheduleArrival(d sim.Duration, dst packetTaker, p *ib.Packet) {
	a := n.popArrival()
	a.dst, a.p = dst, p
	if n.aud != nil {
		n.aud.WirePackets++
	}
	n.simr.ScheduleAction(d, a)
}

// scheduleDrop enqueues a faulted packet's discard at what would have
// been its arrival instant, so the wire-custody window is identical to a
// delivered packet's.
func (n *Network) scheduleDrop(d sim.Duration, src *linkOut, p *ib.Packet) {
	a := n.popArrival()
	a.dst, a.p, a.src, a.drop = src.dst, p, src, true
	if n.aud != nil {
		n.aud.WirePackets++
	}
	n.simr.ScheduleAction(d, a)
}

// creditAct returns flow-control credits to a link's transmitting
// endpoint.
type creditAct struct {
	net   *Network
	taker creditTaker
	vl    ib.VL
	bytes int
}

// Act implements sim.Action.
func (c *creditAct) Act() {
	net, taker, vl, bytes := c.net, c.taker, c.vl, c.bytes
	c.taker = nil
	net.crdPool = append(net.crdPool, c)
	taker.addCredit(vl, bytes)
}

// sendCredit schedules a credit update to arrive at taker after the link
// propagation delay, modeling the flow-control packet carrying it.
func (n *Network) sendCredit(taker creditTaker, vl ib.VL, bytes int) {
	var c *creditAct
	if k := len(n.crdPool); k > 0 {
		c = n.crdPool[k-1]
		n.crdPool[k-1] = nil
		n.crdPool = n.crdPool[:k-1]
	} else {
		c = &creditAct{net: n}
	}
	c.taker, c.vl, c.bytes = taker, vl, bytes
	d := n.cfg.PropDelay
	if n.dropper != nil && n.dropper.DropCredit(vl, bytes) {
		// The flow-control packet carrying this update is lost; the
		// credits reach the transmitter with the next refresh instead
		// (see CreditRefreshDelay).
		n.creditDropped(taker, vl, bytes)
		d += CreditRefreshDelay
	}
	n.simr.ScheduleAction(d, c)
}

// swTxAct fires a switch output port's serializer-done callback.
type swTxAct struct{ op *swOutPort }

// Act implements sim.Action.
func (a swTxAct) Act() { a.op.txDone() }

// hcaTxAct fires an HCA's serializer-done callback.
type hcaTxAct struct{ h *HCA }

// Act implements sim.Action.
func (a hcaTxAct) Act() { a.h.txDone() }

// hcaWakeAct fires an HCA's armed send re-evaluation.
type hcaWakeAct struct{ h *HCA }

// Act implements sim.Action.
func (a hcaWakeAct) Act() { a.h.kickSend() }

// hcaDmaAct fires an HCA's injection-DMA completion for h.dmaPkt.
type hcaDmaAct struct{ h *HCA }

// Act implements sim.Action.
func (a hcaDmaAct) Act() {
	p := a.h.dmaPkt
	a.h.dmaPkt = nil
	a.h.dmaDone(p)
}

// hcaSinkAct fires an HCA's sink-service completion for h.sinkPkt.
type hcaSinkAct struct{ h *HCA }

// Act implements sim.Action.
func (a hcaSinkAct) Act() {
	p := a.h.sinkPkt
	a.h.sinkPkt = nil
	a.h.delivered(p)
}
