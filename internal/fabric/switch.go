package fabric

import (
	"fmt"
	"math/bits"

	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/topo"
)

// SwitchNode models one crossbar: per-port input buffers with virtual
// output queuing over (output port, VL), and a round-robin arbiter per
// output port granting packets when the serializer is idle and the
// downstream VL has credits — the ibuf/obuf/vlarb composition of the
// paper's switch model.
type SwitchNode struct {
	net   *Network
	id    topo.NodeID
	index int // dense switch index, used by hooks and metrics
	in    []*swInPort
	out   []*swOutPort
}

// swInPort is the receiving side of a switch port: it accounts the
// per-VL buffer space the upstream sender sees as credits.
type swInPort struct {
	sw   *SwitchNode
	port int
	free []int // remaining buffer bytes per VL
	up   creditTaker
}

// swOutPort is the transmitting side of a switch port: VoQs per
// (input port, VL), per-VL queued-byte accounting for congestion
// detection, and the round-robin arbitration state.
//
// The VoQ array is a power-of-two ring indexed voqs[inPort<<vlShift|vl]
// (mirroring pktQueue's mask layout): ports and VLs are padded up to
// powers of two so the arbiter scan wraps with a mask instead of a
// compare-and-subtract, and recovering (inPort, vl) from a ring index
// is a shift/mask instead of a division. Padding slots hold permanently
// empty queues the scan skips over. Cyclic lexicographic order over the
// real (inPort, vl) pairs — and therefore the grant sequence — is
// identical to the unpadded layout; the golden trajectory tests pin
// this.
type swOutPort struct {
	linkOut
	sw      *SwitchNode
	port    int
	voqs    []pktQueue // pow2 ring: [inPort<<vlShift | vl]
	qbytes  []int      // queued bytes per VL across all inputs
	rr      int        // arbitration pointer into voqs
	vlShift uint       // log2 of the padded per-input VL stride
	voqMask int        // len(voqs) - 1
	pending int        // total queued packets
	txAct   sim.Action // pre-bound serializer-done callback
}

// pow2ceil rounds x (≥ 1) up to the next power of two.
func pow2ceil(x int) int { return 1 << bits.Len(uint(x-1)) }

func newSwitchNode(n *Network, node *topo.Node, index int) *SwitchNode {
	sw := &SwitchNode{net: n, id: node.ID, index: index}
	nports := len(node.Ports)
	sw.in = make([]*swInPort, nports)
	sw.out = make([]*swOutPort, nports)
	for p := 0; p < nports; p++ {
		if !node.Ports[p].Connected() {
			continue
		}
		ip := &swInPort{sw: sw, port: p, free: make([]int, n.cfg.NumVLs)}
		for v := range ip.free {
			ip.free[v] = n.cfg.SwitchIbufBytes
		}
		sw.in[p] = ip
		op := &swOutPort{sw: sw, port: p}
		op.net = n
		op.vlShift = uint(bits.Len(uint(n.cfg.NumVLs - 1)))
		op.voqs = make([]pktQueue, pow2ceil(nports)<<op.vlShift)
		op.voqMask = len(op.voqs) - 1
		op.qbytes = make([]int, n.cfg.NumVLs)
		op.txAct = swTxAct{op}
		sw.out[p] = op
	}
	return sw
}

// arrive admits a packet into the input buffer, routes it, and enqueues
// it on the VoQ of its output port. Buffer space is guaranteed by the
// upstream credit discipline; running out here is a model bug.
func (ip *swInPort) arrive(p *ib.Packet) {
	n := ip.sw.net
	wire := p.WireBytes()
	ip.free[p.VL] -= wire
	if n.cfg.Check && ip.free[p.VL] < 0 {
		panic(fmt.Sprintf("fabric: ibuf overflow at switch %d port %d vl %d", ip.sw.index, ip.port, p.VL))
	}
	outPort := n.routing.OutPort(ip.sw.id, p.Dst)
	op := ip.sw.out[outPort]
	if n.cfg.Check && op == nil {
		panic(fmt.Sprintf("fabric: route to %d via unconnected port %d of switch %d", p.Dst, outPort, ip.sw.index))
	}
	op.enqueue(ip.port, p)
}

// dropArrive implements the fault layer's discard at this receiver: the
// buffer slot was never occupied, so the transmitter's credit goes
// straight back upstream.
func (ip *swInPort) dropArrive(p *ib.Packet) {
	ip.sw.net.sendCredit(ip.up, p.VL, p.WireBytes())
}

func (op *swOutPort) enqueue(inPort int, p *ib.Packet) {
	n := op.net
	// Arrival-side congestion sampling: the hook sees the queue the
	// packet joins, before it is added.
	if n.hooks.SwitchEnqueue != nil && p.Type == ib.DataPacket {
		st := PortVLState{
			QueuedBytes:   op.qbytes[p.VL],
			CreditBytes:   op.credits[p.VL],
			CapacityBytes: n.cfg.SwitchIbufBytes,
			HostPort:      op.hostFacing,
		}
		n.hooks.SwitchEnqueue(op.sw.index, op.port, p, st)
	}
	op.voqs[inPort<<op.vlShift|int(p.VL)].Push(p)
	op.qbytes[p.VL] += p.WireBytes()
	op.pending++
	n.bus.QueueSampled(n.simr.Now(), op.sw.index, op.port, op.hostFacing, p.VL, op.qbytes[p.VL])
	if !op.busy {
		op.tryTx()
	}
}

// tryTx runs the output arbiter: starting from the round-robin pointer,
// grant the first VoQ whose head packet has downstream credits. The
// grant frees input-buffer space (returning a credit upstream), gives
// the congestion-control hook a chance to FECN-mark the departing
// packet, and occupies the serializer.
func (op *swOutPort) tryTx() {
	if op.busy || op.down || op.pending == 0 {
		return
	}
	n := op.net
	total := len(op.voqs)
	for i := 0; i < total; i++ {
		k := (op.rr + i) & op.voqMask
		q := &op.voqs[k]
		head := q.Peek()
		if head == nil {
			continue
		}
		// The packet may continue on a different VL (dateline
		// switching); the grant needs credits on the outgoing VL.
		vlNext := head.VL
		if n.hooks.SelectVL != nil {
			vlNext = n.hooks.SelectVL(op.sw.index, k>>op.vlShift, op.port, head)
		}
		if !op.canSend(vlNext, head.WireBytes()) {
			n.bus.CreditStalled(n.simr.Now(), true, op.sw.index, op.port, vlNext, op.credits[vlNext], head.WireBytes())
			continue
		}
		op.rr = (k + 1) & op.voqMask
		q.Pop()
		op.pending--
		wire := head.WireBytes()
		vl := int(head.VL)

		op.qbytes[vl] -= wire
		// Congestion-control hook sees the queue left behind the
		// departing packet and the credit state after this grant.
		if n.hooks.SwitchDeparture != nil && head.Type == ib.DataPacket {
			st := PortVLState{
				QueuedBytes:   op.qbytes[vl],
				CreditBytes:   op.credits[vl] - wire,
				CapacityBytes: n.cfg.SwitchIbufBytes,
				HostPort:      op.hostFacing,
			}
			n.hooks.SwitchDeparture(op.sw.index, op.port, head, st)
		}

		// Free the input buffer slot and return the credit upstream
		// on the VL the packet occupied locally, then move it to its
		// outgoing VL.
		ip := op.sw.in[k>>op.vlShift]
		ip.free[head.VL] += wire
		n.sendCredit(ip.up, head.VL, wire)
		head.VL = vlNext

		n.bus.QueueSampled(n.simr.Now(), op.sw.index, op.port, op.hostFacing, ib.VL(vl), op.qbytes[vl])
		n.bus.PacketSent(n.simr.Now(), true, op.sw.index, op.port, head)
		ser := op.transmit(head)
		n.simr.ScheduleAction(ser, op.txAct)
		return
	}
}

func (op *swOutPort) txDone() {
	op.busy = false
	op.tryTx()
}

// addCredit is the flow-control update from downstream; fresh credits
// may unblock the arbiter.
func (op *swOutPort) addCredit(vl ib.VL, bytes int) {
	op.credits[vl] += bytes
	if op.net.cfg.Check && op.credits[vl] > downstreamCap(op) {
		panic(fmt.Sprintf("fabric: credit overflow at switch %d port %d", op.sw.index, op.port))
	}
	if !op.busy {
		op.tryTx()
	}
}

// downstreamCap returns the downstream buffer capacity this output's
// credits are bounded by (only used under Check).
func downstreamCap(op *swOutPort) int {
	if op.hostFacing {
		return op.net.cfg.HostIbufBytes
	}
	return op.net.cfg.SwitchIbufBytes
}

// QueuedBytes reports the bytes queued for output port out on vl; tests
// and the CC manager's observability use it.
func (s *SwitchNode) QueuedBytes(out int, vl ib.VL) int {
	if s.out[out] == nil {
		return 0
	}
	return s.out[out].qbytes[vl]
}

// Index returns the dense switch index.
func (s *SwitchNode) Index() int { return s.index }

// NodeID returns the topology node of this switch.
func (s *SwitchNode) NodeID() topo.NodeID { return s.id }
