package fabric

import (
	"testing"

	"repro/internal/ib"
	"repro/internal/topo"
)

// TestVoQRingLayoutNonPow2 pins the padded power-of-two VoQ ring for a
// switch with a non-power-of-two port count and VL count: the ring size
// and stride must round up, every real (inPort, vl) pair must map to a
// distinct slot, and recovering inPort from a slot index must invert
// the mapping.
func TestVoQRingLayoutNonPow2(t *testing.T) {
	tp, err := topo.SingleSwitch(3) // 3 connected ports: non-pow2
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	cfg.NumVLs = 3 // non-pow2: stride must pad to 4
	n := buildNet(t, tp, cfg, Hooks{})
	op := n.switches[0].out[0]
	if op.vlShift != 2 {
		t.Fatalf("vlShift = %d, want 2", op.vlShift)
	}
	if len(op.voqs) != 16 { // pow2ceil(3 ports) << 2 = 4*4
		t.Fatalf("len(voqs) = %d, want 16", len(op.voqs))
	}
	if op.voqMask != len(op.voqs)-1 {
		t.Fatalf("voqMask = %d, want %d", op.voqMask, len(op.voqs)-1)
	}
	seen := map[int]bool{}
	for inPort := 0; inPort < 3; inPort++ {
		for vl := 0; vl < cfg.NumVLs; vl++ {
			k := inPort<<op.vlShift | vl
			if k&op.voqMask != k {
				t.Fatalf("slot %d for (%d,%d) outside ring", k, inPort, vl)
			}
			if seen[k] {
				t.Fatalf("slot %d aliases two (inPort, vl) pairs", k)
			}
			seen[k] = true
			if got := k >> op.vlShift; got != inPort {
				t.Fatalf("slot %d recovers inPort %d, want %d", k, got, inPort)
			}
		}
	}
}

func TestPow2Ceil(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 15: 16, 16: 16, 36: 64}
	for in, want := range cases {
		if got := pow2ceil(in); got != want {
			t.Fatalf("pow2ceil(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestArbiterOrderMatchesUnpaddedLayout checks that the padded ring's
// cyclic scan visits real (inPort, vl) pairs in exactly the order the
// old unpadded inPort*numVLs+vl layout did, for every starting pointer
// — the argument that grant sequences (and so trajectories) are
// byte-identical across the layout change.
func TestArbiterOrderMatchesUnpaddedLayout(t *testing.T) {
	for _, tc := range []struct{ ports, vls int }{{3, 3}, {4, 1}, {5, 2}, {36, 3}} {
		vlShift := uint(0)
		for 1<<vlShift < tc.vls {
			vlShift++
		}
		ringSize := pow2ceil(tc.ports) << vlShift
		mask := ringSize - 1

		type pair struct{ in, vl int }
		// Reference: unpadded lexicographic enumeration.
		var ref []pair
		for in := 0; in < tc.ports; in++ {
			for vl := 0; vl < tc.vls; vl++ {
				ref = append(ref, pair{in, vl})
			}
		}
		real := func(k int) (pair, bool) {
			in, vl := k>>vlShift, k&(1<<vlShift-1)
			return pair{in, vl}, in < tc.ports && vl < tc.vls
		}
		for start := 0; start < ringSize; start++ {
			var got []pair
			for i := 0; i < ringSize; i++ {
				if p, ok := real((start + i) & mask); ok {
					got = append(got, p)
				}
			}
			if len(got) != len(ref) {
				t.Fatalf("ports=%d vls=%d start=%d: visited %d pairs, want %d", tc.ports, tc.vls, start, len(got), len(ref))
			}
			// got must be a rotation of ref.
			rot := -1
			for i, p := range ref {
				if p == got[0] {
					rot = i
					break
				}
			}
			for i := range got {
				if got[i] != ref[(rot+i)%len(ref)] {
					t.Fatalf("ports=%d vls=%d start=%d: scan order %v is not a rotation of %v", tc.ports, tc.vls, start, got, ref)
				}
			}
		}
	}
}

// TestVoQTrafficNonPow2 runs real traffic through a 3-port, 3-VL switch
// so the padded ring carries packets end to end.
func TestVoQTrafficNonPow2(t *testing.T) {
	tp, err := topo.SingleSwitch(3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	cfg.NumVLs = 3
	n := buildNet(t, tp, cfg, Hooks{})
	n.HCA(0).SetSource(&floodSource{src: 0, dst: 2, remaining: 5})
	n.HCA(1).SetSource(&floodSource{src: 1, dst: 2, remaining: 5})
	n.Start()
	n.Sim().Run()
	if got := n.HCA(2).Counters().RxDataPayload; got != 10*ib.MTU {
		t.Fatalf("delivered %d bytes, want %d", got, 10*ib.MTU)
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}
