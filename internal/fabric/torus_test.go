package fabric

import (
	"testing"

	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/topo"
)

func buildTorus(t *testing.T, withPolicy bool) (*Network, *topo.Grid) {
	t.Helper()
	g, err := topo.Torus2D(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := g.DOR()
	cfg := testCfg()
	cfg.NumVLs = 2
	hooks := Hooks{}
	if withPolicy {
		hooks.SelectVL = g.TorusVLPolicy()
	}
	n, err := New(sim.New(), g.Topology, r, cfg, hooks)
	if err != nil {
		t.Fatal(err)
	}
	return n, g
}

func TestTorusDeliversAcrossDatelines(t *testing.T) {
	n, g := buildTorus(t, true)
	// Host 0 (switch 0,0) to the host diagonally half-way around:
	// both dimensions cross a wraparound link under shortest-path DOR.
	dst := ib.LID(3 + 3*g.W) // switch (3,3)
	n.HCA(0).SetSource(&floodSource{src: 0, dst: dst, remaining: 50})
	n.Start()
	n.Sim().Run()
	if got := n.HCA(dst).Counters().RxDataPayload; got != 50*ib.MTU {
		t.Fatalf("delivered %d bytes", got)
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

func TestTorusSaturationIsDeadlockFree(t *testing.T) {
	// Every host floods the host half-way around the torus — the
	// worst case for ring channel cycles. With the dateline VL policy
	// the fabric must keep delivering and drain to quiescence.
	n, g := buildTorus(t, true)
	nh := g.NumHosts
	for s := 0; s < nh; s++ {
		sx, sy := s%g.W, s/g.W
		dst := ib.LID(((sx+g.W/2)%g.W + ((sy+g.H/2)%g.H)*g.W))
		n.HCA(ib.LID(s)).SetSource(&floodSource{src: ib.LID(s), dst: dst, remaining: 400})
	}
	n.Start()
	n.Sim().RunUntil(sim.Time(0).Add(100 * sim.Millisecond))
	var delivered uint64
	for s := 0; s < nh; s++ {
		delivered += n.HCA(ib.LID(s)).Counters().RxDataPayload
	}
	want := uint64(nh * 400 * ib.MTU)
	if delivered != want {
		t.Fatalf("delivered %d of %d bytes — deadlock or starvation", delivered, want)
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

func TestTorusSustainedThroughput(t *testing.T) {
	// Continuous half-way-around flooding sustains a healthy rate per
	// node (each ring link is shared; the point is absence of
	// collapse, not an exact figure).
	n, g := buildTorus(t, true)
	nh := g.NumHosts
	for s := 0; s < nh; s++ {
		sx, sy := s%g.W, s/g.W
		dst := ib.LID(((sx+g.W/2)%g.W + ((sy+g.H/2)%g.H)*g.W))
		n.HCA(ib.LID(s)).SetSource(&floodSource{src: ib.LID(s), dst: dst, remaining: -1})
	}
	n.Start()
	window := 2 * sim.Millisecond
	n.Sim().RunUntil(sim.Time(0).Add(window))
	var delivered uint64
	for s := 0; s < nh; s++ {
		delivered += n.HCA(ib.LID(s)).Counters().RxDataPayload
	}
	perNode := float64(delivered) * 8 / window.Seconds() / float64(nh)
	if perNode < 1e9 {
		t.Fatalf("per-node rate %.3g — ring fabric collapsed", perNode)
	}
}

func TestMeshSingleVLDeliversUnderLoad(t *testing.T) {
	// Dimension-order routing on a mesh needs no VL policy at all.
	g, err := topo.Mesh2D(3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(sim.New(), g.Topology, g.DOR(), testCfg(), Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	nh := g.NumHosts
	for s := 0; s < nh; s++ {
		dst := ib.LID((s + nh/2) % nh)
		n.HCA(ib.LID(s)).SetSource(&floodSource{src: ib.LID(s), dst: dst, remaining: 300})
	}
	n.Start()
	n.Sim().RunUntil(sim.Time(0).Add(100 * sim.Millisecond))
	var delivered uint64
	for s := 0; s < nh; s++ {
		delivered += n.HCA(ib.LID(s)).Counters().RxDataPayload
	}
	if delivered != uint64(nh*300*ib.MTU) {
		t.Fatalf("delivered %d bytes — mesh DOR stalled", delivered)
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

func TestVLArbitrationShares(t *testing.T) {
	// Two senders on different VLs converge on one receiver: the
	// round-robin arbiter must serve both lanes evenly even though
	// each lane has its own credit pool.
	tp, _ := topo.SingleSwitch(3)
	cfg := testCfg()
	cfg.NumVLs = 2
	r, _ := topo.ComputeLFT(tp)
	n, err := New(sim.New(), tp, r, cfg, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(src ib.LID, vl ib.VL) *vlFlood {
		return &vlFlood{floodSource: floodSource{src: src, dst: 0, remaining: -1}, vl: vl}
	}
	n.HCA(1).SetSource(mk(1, 0))
	n.HCA(2).SetSource(mk(2, 1))
	n.Start()
	window := 2 * sim.Millisecond
	n.Sim().RunUntil(sim.Time(0).Add(window))
	rx := n.HCA(0).Counters()
	if rx.RxBytes == 0 {
		t.Fatal("nothing delivered")
	}
	a := float64(n.HCA(1).Counters().TxDataPayload)
	b := float64(n.HCA(2).Counters().TxDataPayload)
	if ratio := a / b; ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("VL service unfair: %.3f", ratio)
	}
}

// vlFlood floods on a fixed virtual lane.
type vlFlood struct {
	floodSource
	vl ib.VL
}

func (f *vlFlood) Pull(now sim.Time) (*ib.Packet, sim.Time) {
	p, wake := f.floodSource.Pull(now)
	if p != nil {
		p.VL = f.vl
	}
	return p, wake
}

func TestSelectVLHookRewritesLanes(t *testing.T) {
	// A hook that forces every switch hop onto VL 1 must deliver the
	// packet on VL 1 while the source injected on VL 0.
	tp, _ := topo.LinearChain(2, 1)
	r, _ := topo.ComputeLFT(tp)
	cfg := testCfg()
	cfg.NumVLs = 2
	var deliveredVL ib.VL = 99
	n, err := New(sim.New(), tp, r, cfg, Hooks{
		SelectVL: func(sw, in, out int, p *ib.Packet) ib.VL { return 1 },
		Deliver: func(lid ib.LID, p *ib.Packet) {
			deliveredVL = p.VL
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.HCA(0).SetSource(&floodSource{src: 0, dst: 1, remaining: 1})
	n.Start()
	n.Sim().Run()
	if deliveredVL != 1 {
		t.Fatalf("delivered on VL %d, want 1", deliveredVL)
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}
