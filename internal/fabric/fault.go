package fabric

import (
	"fmt"

	"repro/internal/ib"
	"repro/internal/obs"
	"repro/internal/sim"
)

// This file is the fabric side of the fault-injection layer
// (internal/fault): the execution of link outages, serialization-rate
// degradation and wire loss at link/transmitter granularity. The fabric
// only executes faults — what to fail and when is decided by a Dropper
// implementation and by whoever calls SetLinkDown/SetLinkSlow (the fault
// injector), so an unfaulted run pays one nil check per transmission and
// nothing else.

// CreditRefreshDelay is how long a dropped flow-control credit update is
// deferred. IB link-level flow control carries absolute credit state in
// periodic flow-control packets, so a single lost update is corrected by
// the next one rather than leaking credits forever; the model folds that
// recovery into one deferred delivery.
const CreditRefreshDelay = 10 * sim.Microsecond

// Dropper decides which wire transfers an injected fault discards. The
// fabric consults it at transmit time for packets — the loss then
// executes at what would have been the arrival instant, so wire custody
// and credit accounting stay exact — and at credit-return time for
// flow-control updates. Install with SetDropper before Start.
// Implementations must be deterministic functions of their own state;
// the fault layer gives each drop class its own seeded RNG stream.
type Dropper interface {
	// DropPacket reports whether the packet leaving the transmitter at
	// (node, port) is lost. atSwitch selects the switch/host namespace
	// for node (matching the event bus); hostFacing marks the fabric's
	// final hop into an HCA.
	DropPacket(atSwitch, hostFacing bool, node, port int, p *ib.Packet) bool
	// DropCredit reports whether a credit update of bytes on vl is
	// lost. A lost update is deferred by CreditRefreshDelay, not lost
	// forever (see the constant), so quiescence still balances.
	DropCredit(vl ib.VL, bytes int) bool
}

// SetDropper installs the fault layer's wire-loss policy; it must be
// called before Start. A nil dropper (the default) loses nothing.
func (n *Network) SetDropper(d Dropper) { n.dropper = d }

// SetLinkDown forces the transmitter at (node, port) down (a link flap
// or switch-port stall) or back up. atSwitch selects the switch/host
// namespace for node; hosts have a single transmitter, so their port is
// ignored. Coming back up re-arms the arbiter, so traffic resumes
// immediately if anything is queued.
func (n *Network) SetLinkDown(atSwitch bool, node, port int, down bool) {
	now := n.simr.Now()
	if atSwitch {
		op := n.switches[node].out[port]
		if op == nil {
			panic(fmt.Sprintf("fabric: SetLinkDown on unconnected port %d of switch %d", port, node))
		}
		op.down = down
		n.publishLink(now, down, true, node, port)
		if !down && !op.busy {
			op.tryTx()
		}
		return
	}
	h := n.hcas[node]
	h.out.down = down
	n.publishLink(now, down, false, node, 0)
	if !down && !h.out.busy {
		h.tryTxOut()
	}
}

func (n *Network) publishLink(now sim.Time, down, atSwitch bool, node, port int) {
	if down {
		n.bus.LinkDown(now, atSwitch, node, port)
	} else {
		n.bus.LinkUp(now, atSwitch, node, port)
	}
}

// SetLinkSlow degrades the transmitter at (node, port): factor > 1
// multiplies its serialization time (factor 2 halves the effective link
// rate); factor <= 1 restores the nominal rate. Packets already being
// serialized are unaffected.
func (n *Network) SetLinkSlow(atSwitch bool, node, port int, factor float64) {
	if factor <= 1 {
		factor = 0
	}
	if atSwitch {
		op := n.switches[node].out[port]
		if op == nil {
			panic(fmt.Sprintf("fabric: SetLinkSlow on unconnected port %d of switch %d", port, node))
		}
		op.slow = factor
		return
	}
	n.hcas[node].out.slow = factor
}

// dropped executes a wire loss decided at transmit time: the receiver
// returns the credit the transmitter spent (as if it had consumed and
// instantly freed the packet), the audit ledger and event bus record the
// discard, and the packet goes back to the pool — the one release site
// besides the host sink.
func (n *Network) dropped(src *linkOut, dst packetTaker, p *ib.Packet) {
	dst.dropArrive(p)
	if n.aud != nil {
		n.aud.countDrop(p)
	}
	n.bus.PacketDropped(n.simr.Now(), src.atSwitch, src.node, src.port, p, p.VL, p.WireBytes())
	n.pool.Put(p)
}

// creditDropped records a lost credit update before its deferred
// redelivery; taker is the transmitter that keeps waiting for it.
func (n *Network) creditDropped(taker creditTaker, vl ib.VL, bytes int) {
	if n.aud != nil {
		n.aud.DroppedCredits++
	}
	if !n.bus.Wants(obs.KindPacketDropped) {
		return
	}
	switch t := taker.(type) {
	case *swOutPort:
		n.bus.PacketDropped(n.simr.Now(), true, t.sw.index, t.port, nil, vl, bytes)
	case *HCA:
		n.bus.PacketDropped(n.simr.Now(), false, int(t.lid), 0, nil, vl, bytes)
	}
}
