package fabric

import (
	"testing"

	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/topo"
)

// floodSource injects MTU data packets to a fixed destination as fast as
// the HCA pulls. remaining < 0 means unbounded.
type floodSource struct {
	src, dst  ib.LID
	remaining int
	nextID    uint64
	msgID     uint64
}

func (f *floodSource) Pull(now sim.Time) (*ib.Packet, sim.Time) {
	if f.remaining == 0 {
		return nil, sim.MaxTime
	}
	if f.remaining > 0 {
		f.remaining--
	}
	p := &ib.Packet{
		ID: f.nextID, Type: ib.DataPacket,
		Src: f.src, Dst: f.dst,
		PayloadBytes: ib.MTU,
		MsgID:        f.msgID, MsgSeq: uint8(f.nextID % 2), MsgPackets: 2,
	}
	f.nextID++
	if f.nextID%2 == 0 {
		f.msgID++
	}
	return p, 0
}

// delayedSource becomes ready at a fixed time, testing the wake-up path.
type delayedSource struct {
	floodSource
	ready sim.Time
}

func (d *delayedSource) Pull(now sim.Time) (*ib.Packet, sim.Time) {
	if now < d.ready {
		return nil, d.ready
	}
	return d.floodSource.Pull(now)
}

func buildNet(t *testing.T, tp *topo.Topology, cfg Config, hooks Hooks) *Network {
	t.Helper()
	r, err := topo.ComputeLFT(tp)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(sim.New(), tp, r, cfg, hooks)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.Check = true
	return cfg
}

func TestSingleMessageDelivery(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	// Delivery consumers must not retain *ib.Packet past the hook (the
	// sink releases it to the pool right after); copy the value.
	var delivered []ib.Packet
	n := buildNet(t, tp, testCfg(), Hooks{
		Deliver: func(lid ib.LID, p *ib.Packet) {
			if lid == 1 {
				delivered = append(delivered, *p)
			}
		},
	})
	n.HCA(0).SetSource(&floodSource{src: 0, dst: 1, remaining: 2})
	n.Start()
	n.Sim().Run()
	if len(delivered) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(delivered))
	}
	for _, p := range delivered {
		if p.Src != 0 || p.Dst != 1 || p.PayloadBytes != ib.MTU {
			t.Fatalf("bad packet %v", p)
		}
	}
	c := n.HCA(1).Counters()
	if c.RxDataPayload != 2*ib.MTU || c.RxPackets != 2 {
		t.Fatalf("counters = %+v", c)
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveryAcrossFatTree(t *testing.T) {
	tp, _ := topo.FatTree(4) // 8 hosts
	n := buildNet(t, tp, testCfg(), Hooks{})
	// Host 0 (leaf 0) to host 7 (leaf 3): full up-down route.
	n.HCA(0).SetSource(&floodSource{src: 0, dst: 7, remaining: 10})
	n.Start()
	n.Sim().Run()
	if got := n.HCA(7).Counters().RxDataPayload; got != 10*ib.MTU {
		t.Fatalf("delivered %d bytes", got)
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

func TestSustainedThroughputIsInjectionLimited(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	n := buildNet(t, tp, testCfg(), Hooks{})
	n.HCA(0).SetSource(&floodSource{src: 0, dst: 1, remaining: -1})
	n.Start()
	window := 2 * sim.Millisecond
	n.Sim().RunUntil(sim.Time(0).Add(window))
	got := float64(n.HCA(1).Counters().RxDataPayload) * 8 / window.Seconds()
	// Goodput = 13.5 Gbit/s scaled by payload/wire ratio.
	want := 13.5e9 * float64(ib.MTU) / float64(ib.MTU+ib.HeaderBytes)
	if got < want*0.98 || got > want*1.02 {
		t.Fatalf("goodput = %.3g bit/s, want ~%.3g", got, want)
	}
}

func TestHotspotReceiverIsSinkLimited(t *testing.T) {
	// Four senders into one receiver: total delivery must saturate at
	// the sink rate, and round-robin arbitration must share it fairly.
	tp, _ := topo.SingleSwitch(5)
	n := buildNet(t, tp, testCfg(), Hooks{})
	for s := ib.LID(1); s <= 4; s++ {
		n.HCA(s).SetSource(&floodSource{src: s, dst: 0, remaining: -1})
	}
	n.Start()
	window := 2 * sim.Millisecond
	n.Sim().RunUntil(sim.Time(0).Add(window))
	rx := n.HCA(0).Counters()
	gotWire := float64(rx.RxBytes) * 8 / window.Seconds()
	if gotWire < 13.6e9*0.97 || gotWire > 13.6e9*1.02 {
		t.Fatalf("hotspot wire rate = %.4g, want ~13.6e9", gotWire)
	}
	// Fair shares: each sender's injected traffic within 15% of the mean.
	var tx [4]float64
	var sum float64
	for s := ib.LID(1); s <= 4; s++ {
		tx[s-1] = float64(n.HCA(s).Counters().TxDataPayload)
		sum += tx[s-1]
	}
	mean := sum / 4
	for i, v := range tx {
		if v < mean*0.85 || v > mean*1.15 {
			t.Fatalf("sender %d injected %.4g, mean %.4g — unfair", i+1, v, mean)
		}
	}
}

func TestBackpressureNeverOverflows(t *testing.T) {
	// Tiny buffers + hotspot overload: the Check assertions inside the
	// fabric verify credits/buffers never go negative.
	cfg := testCfg()
	cfg.SwitchIbufBytes = 3 * (ib.MTU + ib.HeaderBytes)
	cfg.HostIbufBytes = 2 * (ib.MTU + ib.HeaderBytes)
	cfg.HostObufBytes = ib.MTU + ib.HeaderBytes
	tp, _ := topo.LinearChain(3, 2)
	n := buildNet(t, tp, cfg, Hooks{})
	for s := 0; s < 4; s++ {
		n.HCA(ib.LID(s)).SetSource(&floodSource{src: ib.LID(s), dst: 5, remaining: -1})
	}
	n.Start()
	n.Sim().RunUntil(sim.Time(0).Add(500 * sim.Microsecond))
	if n.HCA(5).Counters().RxPackets == 0 {
		t.Fatal("nothing delivered under backpressure")
	}
}

func TestHOLBlockingVictim(t *testing.T) {
	// Chain of two switches. Four contributors on sw0 flood host C on
	// sw1; a victim on sw0 sends to another sw1 host. The shared
	// inter-switch link's input buffer fills with hotspot-bound packets
	// and head-of-line blocking collapses the victim's throughput —
	// the phenomenon the paper's CC mechanism exists to fix.
	tp, _ := topo.LinearChain(2, 5) // hosts 0-4 on sw0, 5-9 on sw1
	n := buildNet(t, tp, testCfg(), Hooks{})
	for s := 0; s < 4; s++ {
		n.HCA(ib.LID(s)).SetSource(&floodSource{src: ib.LID(s), dst: 5, remaining: -1})
	}
	n.HCA(4).SetSource(&floodSource{src: 4, dst: 6, remaining: -1}) // victim
	n.Start()
	window := 2 * sim.Millisecond
	n.Sim().RunUntil(sim.Time(0).Add(window))
	victim := float64(n.HCA(6).Counters().RxDataPayload) * 8 / window.Seconds()
	hot := float64(n.HCA(5).Counters().RxBytes) * 8 / window.Seconds()
	if hot < 13.6e9*0.95 {
		t.Fatalf("hotspot rate = %.4g, should saturate its sink", hot)
	}
	// Unimpeded the victim would get ~13.2 Gbit/s goodput; HOL blocking
	// must push it far below (analytically ~4.4 Gbit/s here).
	if victim > 8e9 {
		t.Fatalf("victim rate = %.4g — no HOL blocking observed", victim)
	}
	if victim < 0.5e9 {
		t.Fatalf("victim rate = %.4g — completely starved, arbitration broken", victim)
	}
}

func TestNoHOLWithoutOverload(t *testing.T) {
	// Two contributors cannot overload the sink (RR caps them below its
	// rate), so a victim across the same link keeps near-full rate.
	tp, _ := topo.LinearChain(2, 3) // hosts 0-2 on sw0, 3-5 on sw1
	n := buildNet(t, tp, testCfg(), Hooks{})
	n.HCA(0).SetSource(&floodSource{src: 0, dst: 3, remaining: -1})
	n.HCA(1).SetSource(&floodSource{src: 1, dst: 3, remaining: -1})
	n.HCA(2).SetSource(&floodSource{src: 2, dst: 4, remaining: -1})
	n.Start()
	window := 2 * sim.Millisecond
	n.Sim().RunUntil(sim.Time(0).Add(window))
	victim := float64(n.HCA(4).Counters().RxDataPayload) * 8 / window.Seconds()
	// Link is 20G, three flows RR -> victim gets its ~6.6G share of the
	// shared link; but since the two hotspot flows only sink 13.6G
	// combined, the victim should get the remainder, > 6G.
	if victim < 6e9 {
		t.Fatalf("victim rate = %.4g with no overload", victim)
	}
}

func TestControlPacketPriority(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	var cnpAt sim.Time = -1
	n := buildNet(t, tp, testCfg(), Hooks{
		Deliver: func(lid ib.LID, p *ib.Packet) {
			if p.Type == ib.CNPPacket && cnpAt < 0 {
				cnpAt = p.InjectTime
			}
		},
	})
	n.HCA(0).SetSource(&floodSource{src: 0, dst: 1, remaining: -1})
	n.Start()
	// Let data flow, then inject a CNP; it must be the very next packet
	// DMAed despite an infinite data backlog.
	n.Sim().Schedule(100*sim.Microsecond, func() {
		n.HCA(0).SendControl(&ib.Packet{Type: ib.CNPPacket, Dst: 1, BECN: true})
	})
	n.Sim().RunUntil(sim.Time(0).Add(200 * sim.Microsecond))
	if cnpAt < 0 {
		t.Fatal("CNP never delivered")
	}
	// Injection of an in-flight data packet takes ~1.2us; the CNP must
	// enter the wire within a few packet times of its submission.
	if d := cnpAt.Sub(sim.Time(100 * sim.Microsecond)); d > 5*sim.Microsecond {
		t.Fatalf("CNP waited %v behind data backlog", d)
	}
	if n.HCA(0).Counters().TxCNP != 1 || n.HCA(1).Counters().RxCNP != 1 {
		t.Fatal("CNP counters wrong")
	}
}

func TestSwitchDepartureHookState(t *testing.T) {
	tp, _ := topo.SingleSwitch(3)
	seen := 0
	n := buildNet(t, tp, testCfg(), Hooks{
		SwitchDeparture: func(sw, out int, p *ib.Packet, st PortVLState) {
			seen++
			if st.QueuedBytes < 0 {
				t.Errorf("QueuedBytes %d negative", st.QueuedBytes)
			}
			if st.CreditBytes < 0 {
				t.Errorf("negative credits %d", st.CreditBytes)
			}
			if !st.HostPort {
				t.Error("crossbar output ports all face hosts")
			}
			if st.CapacityBytes <= 0 {
				t.Error("capacity missing")
			}
		},
	})
	n.HCA(0).SetSource(&floodSource{src: 0, dst: 2, remaining: 20})
	n.HCA(1).SetSource(&floodSource{src: 1, dst: 2, remaining: 20})
	n.Start()
	n.Sim().Run()
	if seen != 40 {
		t.Fatalf("hook saw %d departures, want 40", seen)
	}
}

func TestFECNMarkPropagates(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	n := buildNet(t, tp, testCfg(), Hooks{
		SwitchDeparture: func(sw, out int, p *ib.Packet, st PortVLState) {
			p.FECN = true
		},
	})
	n.HCA(0).SetSource(&floodSource{src: 0, dst: 1, remaining: 5})
	n.Start()
	n.Sim().Run()
	if got := n.HCA(1).Counters().RxFECN; got != 5 {
		t.Fatalf("RxFECN = %d, want 5", got)
	}
}

func TestDelayedSourceWakeup(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	n := buildNet(t, tp, testCfg(), Hooks{})
	ready := sim.Time(50 * sim.Microsecond)
	n.HCA(0).SetSource(&delayedSource{
		floodSource: floodSource{src: 0, dst: 1, remaining: 1},
		ready:       ready,
	})
	n.Start()
	n.Sim().Run()
	c := n.HCA(1).Counters()
	if c.RxPackets != 1 {
		t.Fatalf("RxPackets = %d", c.RxPackets)
	}
	// The packet must have been injected promptly once ready.
	inj := n.HCA(0).Counters()
	if inj.TxPackets != 1 {
		t.Fatal("nothing injected")
	}
	if now := n.Sim().Now(); now < ready || now > ready.Add(10*sim.Microsecond) {
		t.Fatalf("delivery completed at %v, want shortly after %v", now, ready)
	}
}

func TestStoreAndForwardSlowerThanCutThrough(t *testing.T) {
	elapsed := func(cut bool) sim.Time {
		tp, _ := topo.LinearChain(4, 1) // maximize hop count
		cfg := testCfg()
		cfg.CutThrough = cut
		n := buildNet(t, tp, cfg, Hooks{})
		n.HCA(0).SetSource(&floodSource{src: 0, dst: 3, remaining: 1})
		n.Start()
		n.Sim().Run()
		return n.Sim().Now()
	}
	ct, sf := elapsed(true), elapsed(false)
	if ct >= sf {
		t.Fatalf("cut-through %v not faster than store-and-forward %v", ct, sf)
	}
	// SAF adds one serialization (~860ns) per switch hop (4 switches).
	if diff := sf.Sub(ct); diff < 3*sim.Microsecond {
		t.Fatalf("SAF penalty only %v over 4 hops", diff)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() [4]uint64 {
		tp, _ := topo.LinearChain(2, 4)
		n := buildNet(t, tp, testCfg(), Hooks{})
		for s := 0; s < 3; s++ {
			n.HCA(ib.LID(s)).SetSource(&floodSource{src: ib.LID(s), dst: 4, remaining: -1})
		}
		n.HCA(3).SetSource(&floodSource{src: 3, dst: 5, remaining: -1})
		n.Start()
		n.Sim().RunUntil(sim.Time(0).Add(500 * sim.Microsecond))
		return [4]uint64{
			n.HCA(4).Counters().RxBytes,
			n.HCA(5).Counters().RxBytes,
			n.HCA(0).Counters().TxBytes,
			n.Sim().Processed(),
		}
	}
	if run() != run() {
		t.Fatal("identical runs diverged")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.LinkRate = 0 },
		func(c *Config) { c.InjectionRate = c.LinkRate * 2 },
		func(c *Config) { c.NumVLs = 0 },
		func(c *Config) { c.NumVLs = 16 },
		func(c *Config) { c.SwitchIbufBytes = 10 },
		func(c *Config) { c.HostIbufBytes = 10 },
		func(c *Config) { c.HostObufBytes = 10 },
		func(c *Config) { c.PropDelay = -1 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	r, _ := topo.ComputeLFT(tp)
	cfg := DefaultConfig()
	cfg.NumVLs = 0
	if _, err := New(sim.New(), tp, r, cfg, Hooks{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestQuiescenceAfterBurst(t *testing.T) {
	tp, _ := topo.FatTree(4)
	n := buildNet(t, tp, testCfg(), Hooks{})
	for s := 0; s < 8; s++ {
		dst := ib.LID((s + 3) % 8)
		n.HCA(ib.LID(s)).SetSource(&floodSource{src: ib.LID(s), dst: dst, remaining: 50})
	}
	n.Start()
	n.Sim().Run()
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	var rx uint64
	for s := 0; s < 8; s++ {
		rx += n.HCA(ib.LID(s)).Counters().RxDataPayload
	}
	if rx != 8*50*ib.MTU {
		t.Fatalf("delivered %d bytes, want %d", rx, 8*50*ib.MTU)
	}
}

func TestAccessors(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	n := buildNet(t, tp, testCfg(), Hooks{})
	if n.NumHosts() != 2 || len(n.Switches()) != 1 {
		t.Fatal("accessors wrong")
	}
	if n.HCA(0).LID() != 0 {
		t.Fatal("LID wrong")
	}
	if n.Switches()[0].Index() != 0 {
		t.Fatal("switch index wrong")
	}
	if n.Config().LinkRate != DefaultConfig().LinkRate {
		t.Fatal("config not stored")
	}
	if n.Topology() != tp {
		t.Fatal("topology not stored")
	}
	if n.Switches()[0].QueuedBytes(0, 0) != 0 {
		t.Fatal("queued bytes on idle switch")
	}
}
