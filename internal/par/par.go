// Package par provides the ordered worker pool underneath the
// experiment harness: it fans a fixed set of independent tasks out
// across goroutines while returning results in submission order, so a
// parallel sweep reduces to bit-identical aggregates as a serial one.
// It is the shared substrate of internal/core's sweep drivers and
// internal/exp's job runner (which cannot share code directly without
// an import cycle).
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// PanicError is the structured error a recovered task panic converts
// into: the task keeps its slot in the result order and the rest of the
// batch keeps running on the pool.
type PanicError struct {
	// Index is the submission index of the task that panicked.
	Index int
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: task %d panicked: %v", e.Index, e.Value)
}

// Workers normalizes a worker-count knob: values <= 0 mean "one worker
// per available CPU" (runtime.GOMAXPROCS(0)), and the count is capped
// at n, the number of tasks.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map runs fn(0..n-1) on a pool of the given number of workers
// (<= 0 = GOMAXPROCS) and returns the n results in submission order.
//
// A task that panics is recovered and reported as a *PanicError for its
// index; other tasks are unaffected. The first failing index (lowest,
// for determinism) stops further dispatch and is returned as the error
// alongside the partial results; already-started tasks finish. Context
// cancellation likewise stops dispatch, and ctx.Err() is returned if no
// task error outranks it.
func Map[T any](ctx context.Context, workers, n int, fn func(int) (T, error)) ([]T, error) {
	return MapWorker(ctx, workers, n, func(_, i int) (T, error) { return fn(i) })
}

// MapWorker is Map with the executing worker's pool index (0..workers-1)
// exposed to the task — the hook the telemetry span tracker uses to
// attribute jobs to workers. Determinism is unaffected: the worker index
// labels execution, results still return in submission order. The serial
// path runs everything as worker 0.
func MapWorker[T any](ctx context.Context, workers, n int, fn func(worker, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]T, n)
	errs := make([]error, n)
	workers = Workers(workers, n)

	if workers == 1 {
		// Serial fast path: no goroutines, identical semantics.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			out[i], errs[i] = protect(0, i, fn)
			if errs[i] != nil {
				return out, errs[i]
			}
		}
		return out, nil
	}

	// Dispatch indices to the pool; the first failure cancels further
	// dispatch but lets in-flight tasks complete.
	dispatch, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-dispatch.Done():
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range next {
				var err error
				out[i], err = protect(worker, i, fn)
				if err != nil {
					errs[i] = err
					cancel()
				}
			}
		}(w)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return out, errs[i]
		}
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// protect runs fn(worker, i), converting a panic into a *PanicError.
func protect[T any](worker, i int, fn func(int, int) (T, error)) (out T, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(worker, i)
}
