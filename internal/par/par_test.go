package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Map(context.Background(), workers, 100, func(i int) (int, error) {
			if i%7 == 0 {
				time.Sleep(time.Millisecond) // shuffle completion order
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapRunsConcurrently(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single CPU")
	}
	var peak, cur atomic.Int32
	_, err := Map(context.Background(), 4, 16, func(i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Fatalf("no overlap observed (peak %d)", peak.Load())
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), workers, 8, func(i int) (int, error) {
			if i == 3 {
				panic("boom")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want PanicError", workers, err)
		}
		if pe.Index != 3 || pe.Value != "boom" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: PanicError = %+v", workers, pe)
		}
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	// With errors at several indices, the lowest one is reported
	// regardless of completion order.
	out, err := Map(context.Background(), 4, 20, func(i int) (int, error) {
		if i == 5 || i == 11 {
			return 0, fmt.Errorf("fail %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "fail 5" {
		t.Fatalf("err = %v", err)
	}
	if len(out) != 20 {
		t.Fatalf("partial results missing: %d", len(out))
	}
}

func TestMapErrorStopsDispatch(t *testing.T) {
	var ran atomic.Int32
	_, err := Map(context.Background(), 1, 1000, func(i int) (int, error) {
		ran.Add(1)
		if i == 2 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if n := ran.Load(); n != 3 {
		t.Fatalf("serial path ran %d tasks after error at 2", n)
	}
}

func TestMapCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		_, err := Map(ctx, workers, 1000, func(i int) (int, error) {
			if ran.Add(1) == 5 {
				cancel()
			}
			time.Sleep(100 * time.Microsecond)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if n := ran.Load(); n >= 1000 {
			t.Fatalf("workers=%d: cancellation did not stop dispatch", workers)
		}
		cancel()
	}
}

func TestMapEmptyAndNilCtx(t *testing.T) {
	out, err := Map[int](nil, 4, 0, func(i int) (int, error) { return i, nil })
	if err != nil || out != nil {
		t.Fatalf("empty: %v %v", out, err)
	}
	got, err := Map(nil, 0, 3, func(i int) (int, error) { return i + 1, nil })
	if err != nil || len(got) != 3 || got[2] != 3 {
		t.Fatalf("nil ctx: %v %v", got, err)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if w := Workers(0, 100); w != runtime.GOMAXPROCS(0) && w != 100 {
		t.Fatalf("Workers(0,100) = %d", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Fatalf("Workers(8,3) = %d", w)
	}
	if w := Workers(-1, 1); w != 1 {
		t.Fatalf("Workers(-1,1) = %d", w)
	}
}

func TestMapWorkerIndices(t *testing.T) {
	// Pool path: every callback sees a worker index in [0, workers),
	// and with enough slow jobs every worker index shows up.
	const workers, n = 4, 32
	var mu sync.Mutex
	seen := map[int]bool{}
	_, err := MapWorker(context.Background(), workers, n, func(worker, i int) (int, error) {
		if worker < 0 || worker >= workers {
			t.Errorf("job %d: worker %d out of [0,%d)", i, worker, workers)
		}
		time.Sleep(time.Millisecond)
		mu.Lock()
		seen[worker] = true
		mu.Unlock()
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != workers {
		t.Fatalf("saw workers %v, want all %d", seen, workers)
	}

	// Serial path: everything runs on worker 0.
	_, err = MapWorker(context.Background(), 1, 8, func(worker, i int) (int, error) {
		if worker != 0 {
			t.Errorf("serial job %d on worker %d", i, worker)
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapDelegatesToMapWorker(t *testing.T) {
	out, err := Map(context.Background(), 3, 10, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
