// Package check is the simulation's runtime invariant layer: an opt-in
// checker that sweeps global conservation laws and local accounting
// bounds at fixed simulated-time windows while a run executes, validates
// every congestion-control table transition as it is published, probes
// the future-event list's ordering contract on every executed event, and
// watches for forward-progress loss (deadlock or livelock) while packets
// are in flight.
//
// The checker is always compiled — there is no build tag — and costs
// nothing when not attached: the model layers it reads expose their
// state behind nil-checked audit hooks (fabric.Network.EnableAudit,
// sim.Simulator.SetExecHook), so an unchecked run pays at most one
// predictable branch per hot-path site.
//
// Crucially, the checker never perturbs the trajectory it validates: it
// only reads model state between event executions and consumes
// flight-recorder events, and it never schedules simulator events of its
// own (the sweep windows are driven by bounded RunUntil calls from the
// outside). A checked run is bit-identical to an unchecked one, which
// internal/core's differential tests assert by digest.
package check

import (
	"fmt"
	"io"

	"repro/internal/cc"
	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/obs"
	"repro/internal/sim"
)

// CCTarget is the slice of a congestion-control backend the checker
// reads: the structural self-check swept between events and the
// throttle summary shown in diagnostic dumps. Every cc.Backend
// satisfies it. When the target additionally exposes the classic IB CCA
// parameter set (the ibcc manager's Params method), published CCTI
// transitions are validated against it; rate-based backends have no CCT
// and must not publish KindCCTIChanged at all.
type CCTarget interface {
	CheckInvariants() error
	ThrottleSummary() (flows int, mean float64)
}

// Target bundles the model components one checker instance watches. Net,
// CC, Pool and SourcesPending may each be nil: the checker sweeps only
// the invariants its target supports, so unit tests can probe single
// rules in isolation.
type Target struct {
	// Sim is the driving simulator; required.
	Sim *sim.Simulator
	// Net is the fabric; enables the credit-bound and custody-census
	// sweeps. New switches its wire-custody audit on.
	Net *fabric.Network
	// CC is the congestion-control backend; enables the CC structural
	// sweep and (for the ibcc manager) gives CCTI transition validation
	// its parameter set.
	CC CCTarget
	// Pool is the packet pool the conservation law balances.
	Pool *ib.PacketPool
	// SourcesPending reports how many generated packets sit in source
	// queues awaiting injection (the non-fabric side of the custody
	// census).
	SourcesPending func() int
}

// Config tunes the checker.
type Config struct {
	// Window is the simulated time between invariant sweeps; default
	// 50 µs.
	Window sim.Duration
	// WatchdogAfter is how long the fabric may hold packets without a
	// single packet injection or delivery before the watchdog declares
	// lost forward progress; 0 means 1 ms, negative disables the
	// watchdog.
	WatchdogAfter sim.Duration
	// Diagnostics, when non-nil, receives a structured state dump when
	// the watchdog trips or the first violation of a run is recorded.
	Diagnostics io.Writer
	// MaxViolations bounds how many violations are recorded (further
	// ones are counted but dropped); default 32.
	MaxViolations int
}

// Violation is one observed invariant breach.
type Violation struct {
	// Time is the simulated time of detection.
	Time sim.Time
	// Rule names the invariant: "conservation", "pool-accounting",
	// "credit-bounds", "cc-state", "ccti-step", "fel-order",
	// "watchdog".
	Rule string
	// Detail describes the breach.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%v] %s: %s", v.Time, v.Rule, v.Detail)
}

// Report is the outcome of a checked run.
type Report struct {
	// Violations holds the recorded breaches in detection order, capped
	// at Config.MaxViolations.
	Violations []Violation
	// Total counts every detected breach, including dropped ones.
	Total int
	// Sweeps counts completed invariant sweeps.
	Sweeps int
	// EventsChecked counts executed events probed for FEL order.
	EventsChecked uint64
	// CCTISteps counts validated CCTI transitions.
	CCTISteps uint64
}

// Err returns nil for a clean report and an error summarizing the first
// violation otherwise.
func (r *Report) Err() error {
	if r.Total == 0 {
		return nil
	}
	return fmt.Errorf("check: %d invariant violation(s), first: %s", r.Total, r.Violations[0])
}

// Summary renders the one-line audit outcome every command prints, so
// a clean run reads identically whichever binary produced it.
func (r *Report) Summary() string {
	if r.Total == 0 {
		return fmt.Sprintf("clean (%d sweeps, %d events probed, %d CCTI steps validated)",
			r.Sweeps, r.EventsChecked, r.CCTISteps)
	}
	return fmt.Sprintf("%d violation(s) in %d sweeps, first: %s", r.Total, r.Sweeps, r.Violations[0])
}

// Checker validates a running simulation. Create with New, optionally
// Attach to the run's flight-recorder bus, then drive the run through
// Run instead of calling sim.Simulator.RunUntil directly.
type Checker struct {
	t   Target
	cfg Config
	rep Report

	params     cc.Params // captured from t.CC; zero when CC is off
	ccParamsOK bool

	// FEL order probe state: the (time, seq) of the last executed event.
	lastTime sim.Time
	lastSeq  uint64
	haveLast bool

	// Watchdog state: the last observed injection+delivery total and
	// when it last moved.
	lastIO     uint64
	lastIOTime sim.Time
	tripped    bool

	// reg feeds the diagnostic dump's hottest-port view when the checker
	// is attached to a bus.
	reg *obs.Registry

	// faultRing holds the most recent fault-layer events (link state
	// transitions and wire drops) so a watchdog or violation dump can
	// show what the fault injector did just before the failure.
	faultRing []obs.Event
	faultNext int
	faultSeen uint64

	dumped bool
}

// faultRingSize bounds the recent-fault-event window kept for dumps.
const faultRingSize = 16

// New builds a checker for the target, switching on the fabric's
// wire-custody audit (which therefore must happen before the network
// starts).
func New(t Target, cfg Config) *Checker {
	if t.Sim == nil {
		panic("check: target simulator required")
	}
	if cfg.Window <= 0 {
		cfg.Window = 50 * sim.Microsecond
	}
	if cfg.WatchdogAfter == 0 {
		cfg.WatchdogAfter = sim.Millisecond
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 32
	}
	c := &Checker{t: t, cfg: cfg}
	if t.Net != nil {
		t.Net.EnableAudit()
	}
	if pp, ok := t.CC.(interface{ Params() cc.Params }); ok {
		c.params = pp.Params()
		c.ccParamsOK = true
	}
	return c
}

// Attach subscribes the checker's CCTI transition validator to the run's
// flight-recorder bus. The checker only consumes events; everything the
// model publishes is independent of subscriber count, so attaching does
// not perturb the trajectory.
func (c *Checker) Attach(bus *obs.Bus) {
	bus.Subscribe(obs.ConsumerFunc(c.consumeCCTI), obs.KindCCTIChanged)
	bus.Subscribe(obs.ConsumerFunc(c.consumeFault),
		obs.KindLinkDown, obs.KindLinkUp, obs.KindPacketDropped)
	nv := 1
	if c.t.Net != nil {
		nv = c.t.Net.Config().NumVLs
	}
	c.reg = obs.NewRegistry(nv)
	c.reg.Attach(bus)
}

// consumeFault records fault-layer events into the bounded ring dumps
// read from.
func (c *Checker) consumeFault(e obs.Event) {
	c.faultSeen++
	if len(c.faultRing) < faultRingSize {
		c.faultRing = append(c.faultRing, e)
		return
	}
	c.faultRing[c.faultNext] = e
	c.faultNext = (c.faultNext + 1) % faultRingSize
}

// Run drives the simulation to end in Config.Window steps, sweeping the
// invariants between steps, and returns the number of events executed.
// The FEL-order probe is installed for the duration of the call. Because
// the sweeps run strictly between event executions and schedule nothing,
// the trajectory is identical to a single RunUntil(end).
func (c *Checker) Run(end sim.Time) uint64 {
	simr := c.t.Sim
	simr.SetExecHook(c.execEvent)
	defer simr.SetExecHook(nil)
	c.lastIOTime = simr.Now()
	var n uint64
	for {
		now := simr.Now()
		if !now.Before(end) {
			break
		}
		next := now.Add(c.cfg.Window)
		if next.After(end) {
			next = end
		}
		n += simr.RunUntil(next)
		c.sweep(simr.Now())
	}
	return n
}

// Report returns the accumulated outcome.
func (c *Checker) Report() *Report {
	rep := c.rep
	return &rep
}

// violate records one breach.
func (c *Checker) violate(t sim.Time, rule, format string, args ...interface{}) {
	c.rep.Total++
	if len(c.rep.Violations) < c.cfg.MaxViolations {
		c.rep.Violations = append(c.rep.Violations, Violation{Time: t, Rule: rule, Detail: fmt.Sprintf(format, args...)})
	}
	if c.cfg.Diagnostics != nil && !c.dumped {
		c.dumped = true
		fmt.Fprintf(c.cfg.Diagnostics, "check: first violation: %s\n", c.rep.Violations[len(c.rep.Violations)-1])
		c.dump(c.cfg.Diagnostics)
	}
}

// execEvent is the FEL-order probe, fired by the simulator after every
// event's time is committed and before its callback runs. The kernel's
// ordering contract: execution order is (time, seq) lexicographic, so
// time never decreases and, within one instant, sequence numbers
// strictly increase.
func (c *Checker) execEvent(t sim.Time, seq uint64) {
	c.rep.EventsChecked++
	if c.haveLast {
		if t.Before(c.lastTime) {
			c.violate(t, "fel-order", "event time went backwards: (%v, seq %d) after (%v, seq %d)",
				t, seq, c.lastTime, c.lastSeq)
		} else if t == c.lastTime && seq <= c.lastSeq {
			c.violate(t, "fel-order", "event seq not increasing at %v: seq %d after seq %d",
				t, seq, c.lastSeq)
		}
	}
	c.lastTime, c.lastSeq, c.haveLast = t, seq, true
}

// consumeCCTI validates one congestion-control table transition against
// the parameter set's legal moves: a BECN bump to
// min(old+CCTIIncrease, CCTILimit) that actually moved the index, or a
// recovery-timer decay of exactly one step above CCTIMin.
func (c *Checker) consumeCCTI(e obs.Event) {
	c.rep.CCTISteps++
	if !c.ccParamsOK {
		return
	}
	p := &c.params
	if e.NewCCTI > p.CCTILimit || e.NewCCTI < p.CCTIMin || e.OldCCTI > p.CCTILimit || e.OldCCTI < p.CCTIMin {
		c.violate(e.Time, "ccti-step", "flow %d->%d ccti %d->%d outside [%d, %d]",
			e.Src, e.Dst, e.OldCCTI, e.NewCCTI, p.CCTIMin, p.CCTILimit)
		return
	}
	bump := e.OldCCTI + p.CCTIIncrease
	if bump > p.CCTILimit || bump < e.OldCCTI {
		bump = p.CCTILimit
	}
	increase := e.NewCCTI == bump && e.NewCCTI != e.OldCCTI
	decay := e.OldCCTI > p.CCTIMin && e.NewCCTI == e.OldCCTI-1
	if !increase && !decay {
		c.violate(e.Time, "ccti-step", "flow %d->%d illegal ccti step %d->%d (increase=%d limit=%d min=%d)",
			e.Src, e.Dst, e.OldCCTI, e.NewCCTI, p.CCTIIncrease, p.CCTILimit, p.CCTIMin)
	}
}

// sweep checks every windowed invariant at an event boundary.
func (c *Checker) sweep(now sim.Time) {
	c.rep.Sweeps++

	live := c.t.Pool.Live()
	pending := 0
	if c.t.SourcesPending != nil {
		pending = c.t.SourcesPending()
	}

	if c.t.Net != nil {
		// Packet conservation: every live pool packet is either queued
		// at a source awaiting injection or in fabric custody (staging,
		// wire, VoQ, receive side). A surplus is a leak; a deficit is a
		// double release or custody miscount.
		if c.t.Pool != nil {
			held := c.t.Net.HeldPackets()
			if live != held+pending {
				c.violate(now, "conservation", "pool live %d != fabric held %d + source pending %d (census %v)",
					live, held, pending, c.t.Net.Census())
			}
			// Pool accounting: the host sink releases every delivered
			// packet and the fault layer releases every wire-dropped
			// one; those are the only two release sites, so releases
			// equal deliveries plus intentional drops (the Dropped
			// audit column).
			var rx uint64
			for lid := 0; lid < c.t.Net.NumHosts(); lid++ {
				rx += c.t.Net.HCA(ib.LID(lid)).Counters().RxPackets
			}
			var dropped uint64
			if aud := c.t.Net.Audit(); aud != nil {
				dropped = uint64(aud.DroppedPackets)
			}
			if puts := c.t.Pool.Stats().Puts; puts != rx+dropped {
				c.violate(now, "pool-accounting", "pool puts %d != delivered %d + fault-dropped %d",
					puts, rx, dropped)
			}
		}
		if err := c.t.Net.CheckCreditBounds(); err != nil {
			c.violate(now, "credit-bounds", "%v", err)
		}
	}
	if c.t.CC != nil {
		if err := c.t.CC.CheckInvariants(); err != nil {
			c.violate(now, "cc-state", "%v", err)
		}
	}
	c.watchdog(now, live, pending)
}

// watchdog detects lost forward progress: the fabric holds packets but
// no packet has entered or left it for WatchdogAfter of simulated time.
// Source-queued packets do not arm it — a fully throttled source is
// legal — but a packet stuck inside the fabric is not.
func (c *Checker) watchdog(now sim.Time, live, pending int) {
	if c.cfg.WatchdogAfter < 0 || c.t.Net == nil {
		return
	}
	var io uint64
	for lid := 0; lid < c.t.Net.NumHosts(); lid++ {
		ctr := c.t.Net.HCA(ib.LID(lid)).Counters()
		io += ctr.TxPackets + ctr.RxPackets
	}
	inFabric := live - pending
	if io != c.lastIO || inFabric <= 0 {
		c.lastIO, c.lastIOTime = io, now
		c.tripped = false
		return
	}
	if c.tripped || now.Sub(c.lastIOTime) < c.cfg.WatchdogAfter {
		return
	}
	c.tripped = true
	c.violate(now, "watchdog", "no packet injected or delivered for %v with %d packets in fabric custody",
		now.Sub(c.lastIOTime), inFabric)
	if c.cfg.Diagnostics != nil {
		c.dump(c.cfg.Diagnostics)
	}
}

// dump writes a structured state snapshot for diagnosing a violation.
func (c *Checker) dump(w io.Writer) {
	simr := c.t.Sim
	fmt.Fprintf(w, "check: state at %v: %d events executed, %d pending\n",
		simr.Now(), simr.Processed(), simr.Pending())
	if c.t.Pool != nil {
		st := c.t.Pool.Stats()
		fmt.Fprintf(w, "check: pool gets=%d puts=%d live=%d free=%d\n",
			st.Gets, st.Puts, c.t.Pool.Live(), c.t.Pool.FreeLen())
	}
	if c.t.Net != nil {
		fmt.Fprintf(w, "check: fabric custody %v\n", c.t.Net.Census())
	}
	if c.t.SourcesPending != nil {
		fmt.Fprintf(w, "check: source pending %d\n", c.t.SourcesPending())
	}
	if c.t.CC != nil {
		flows, mean := c.t.CC.ThrottleSummary()
		fmt.Fprintf(w, "check: cc throttled flows=%d mean throttle=%.2f\n", flows, mean)
	}
	if c.reg != nil {
		marks, stalls, fwdPkts, fwdBytes := c.reg.Totals()
		fmt.Fprintf(w, "check: ports fecn=%d stalls=%d fwd=%d pkts %d bytes\n",
			marks, stalls, fwdPkts, fwdBytes)
		if k, pc := c.reg.HottestPort(); pc != nil {
			fmt.Fprintf(w, "check: hottest port %v: %d marks, peak queue %d bytes\n",
				k, pc.FECNMarks, pc.PeakQueuedBytes)
		}
	}
	if c.faultSeen > 0 {
		if c.t.Net != nil {
			if aud := c.t.Net.Audit(); aud != nil {
				fmt.Fprintf(w, "check: fault drops data=%d fecn=%d cnp=%d ack=%d credits=%d\n",
					aud.DroppedData, aud.DroppedFECN, aud.DroppedCNP, aud.DroppedAck, aud.DroppedCredits)
			}
		}
		fmt.Fprintf(w, "check: last %d of %d fault events:\n", len(c.faultRing), c.faultSeen)
		for i := 0; i < len(c.faultRing); i++ {
			e := c.faultRing[(c.faultNext+i)%len(c.faultRing)]
			where := fmt.Sprintf("host%d", e.Node)
			if e.Switch {
				where = fmt.Sprintf("sw%d.p%d", e.Node, e.Port)
			}
			switch {
			case e.Kind != obs.KindPacketDropped:
				fmt.Fprintf(w, "check:   [%v] %s at %s\n", e.Time, e.Kind, where)
			case e.PktID > 0:
				fmt.Fprintf(w, "check:   [%v] dropped %s %d->%d (%d bytes) at %s\n",
					e.Time, e.Type, e.Src, e.Dst, e.Bytes, where)
			default:
				fmt.Fprintf(w, "check:   [%v] dropped credit update vl%d (%d bytes) at %s\n",
					e.Time, e.VL, e.CreditBytes, where)
			}
		}
	}
}
