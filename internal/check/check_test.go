package check

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
)

// newBare returns a checker over a bare simulator: enough target for the
// FEL-order and CCTI rules, with the model sweeps disabled.
func newBare(t *testing.T, cfg Config) *Checker {
	t.Helper()
	return New(Target{Sim: sim.New()}, cfg)
}

// newFabric builds a checker over a real (idle) radix-2 fabric.
func newFabric(t *testing.T, cfg Config) (*Checker, *fabric.Network) {
	t.Helper()
	tp, err := topo.FatTree(2)
	if err != nil {
		t.Fatal(err)
	}
	lft, err := topo.ComputeLFT(tp)
	if err != nil {
		t.Fatal(err)
	}
	simr := sim.New()
	net, err := fabric.New(simr, tp, lft, fabric.DefaultConfig(), fabric.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Target{Sim: simr, Net: net, Pool: net.PacketPool()}, cfg)
	return c, net
}

func wantRule(t *testing.T, c *Checker, rule string) {
	t.Helper()
	rep := c.Report()
	if rep.Total == 0 {
		t.Fatalf("expected a %q violation, report clean", rule)
	}
	if got := rep.Violations[0].Rule; got != rule {
		t.Fatalf("expected first violation rule %q, got %q (%s)", rule, got, rep.Violations[0])
	}
}

// TestExecEventOrderProbe feeds the FEL-order probe legal and illegal
// (time, seq) sequences.
func TestExecEventOrderProbe(t *testing.T) {
	c := newBare(t, Config{})
	// Legal: time strictly up, seq free to reset; equal time, seq up.
	c.execEvent(10, 5)
	c.execEvent(10, 6)
	c.execEvent(20, 1)
	if rep := c.Report(); rep.Total != 0 {
		t.Fatalf("legal sequence flagged: %v", rep.Violations)
	}

	// Time regression.
	c2 := newBare(t, Config{})
	c2.execEvent(20, 1)
	c2.execEvent(10, 2)
	wantRule(t, c2, "fel-order")

	// Seq regression within an instant.
	c3 := newBare(t, Config{})
	c3.execEvent(10, 7)
	c3.execEvent(10, 7)
	wantRule(t, c3, "fel-order")
}

// TestCCTIStepValidation covers the legal transition shapes and a range
// of illegal ones against the paper parameter set.
func TestCCTIStepValidation(t *testing.T) {
	step := func(old, new uint16) *Checker {
		c := newBare(t, Config{})
		c.params = cc.PaperParams()
		c.ccParamsOK = true
		c.consumeCCTI(obs.Event{Kind: obs.KindCCTIChanged, Time: 5, OldCCTI: old, NewCCTI: new})
		return c
	}
	p := cc.PaperParams() // CCTIIncrease=1, CCTILimit=127, CCTIMin=0

	for _, tc := range []struct{ old, new uint16 }{
		{0, 1},                                                    // plain increase
		{p.CCTILimit - 1, p.CCTILimit} /* clamped bump */, {5, 4}, // decay
	} {
		if rep := step(tc.old, tc.new).Report(); rep.Total != 0 {
			t.Errorf("legal step %d->%d flagged: %v", tc.old, tc.new, rep.Violations)
		}
	}
	for _, tc := range []struct{ old, new uint16 }{
		{3, 7},                     // jump
		{p.CCTILimit, p.CCTILimit}, // published no-op
		{0, p.CCTILimit + 1},       // above limit
		{p.CCTILimit + 2, p.CCTILimit + 1} /* outside bounds both sides */} {
		c := step(tc.old, tc.new)
		wantRule(t, c, "ccti-step")
	}
	if rep := step(3, 7).Report(); rep.CCTISteps != 1 {
		t.Errorf("CCTISteps = %d, want 1", rep.CCTISteps)
	}
}

// TestConservationSweep leaks a pool packet outside any custody site and
// expects the conservation rule to fire.
func TestConservationSweep(t *testing.T) {
	c, net := newFabric(t, Config{WatchdogAfter: -1})
	c.sweep(0)
	if rep := c.Report(); rep.Total != 0 {
		t.Fatalf("idle fabric flagged: %v", rep.Violations)
	}

	leaked := net.PacketPool().Get() // live=1, held by nobody
	_ = leaked
	c.sweep(1)
	wantRule(t, c, "conservation")
}

// TestWatchdogTrip parks packets in fabric custody with no delivery
// progress and expects the watchdog after its horizon — exactly once —
// with a diagnostic dump.
func TestWatchdogTrip(t *testing.T) {
	var diag strings.Builder
	c, net := newFabric(t, Config{WatchdogAfter: sim.Millisecond, Diagnostics: &diag})
	aud := net.EnableAudit()

	// Three packets "on the wire" forever: custody balances (so no
	// conservation noise), but no sink progress.
	for i := 0; i < 3; i++ {
		_ = net.PacketPool().Get()
	}
	aud.WirePackets = 3

	c.sweep(0)
	c.sweep(sim.Time(0).Add(500 * sim.Microsecond))
	if rep := c.Report(); rep.Total != 0 {
		t.Fatalf("watchdog tripped before horizon: %v", rep.Violations)
	}
	c.sweep(sim.Time(0).Add(1500 * sim.Microsecond))
	wantRule(t, c, "watchdog")
	c.sweep(sim.Time(0).Add(2 * sim.Millisecond))
	if rep := c.Report(); rep.Total != 1 {
		t.Fatalf("watchdog re-tripped without new progress: %d violations", rep.Total)
	}
	for _, want := range []string{"fabric custody", "pool gets=3"} {
		if !strings.Contains(diag.String(), want) {
			t.Errorf("diagnostic dump missing %q:\n%s", want, diag.String())
		}
	}
}

// TestRunSweepsWindows drives a trivial event load through Run and
// verifies the windowed execution sweeps and probes.
func TestRunSweepsWindows(t *testing.T) {
	simr := sim.New()
	c := New(Target{Sim: simr}, Config{Window: 10 * sim.Microsecond})
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 20 {
			simr.Schedule(7*sim.Microsecond, tick)
		}
	}
	simr.Schedule(0, tick)
	c.Run(sim.Time(0).Add(200 * sim.Microsecond))
	rep := c.Report()
	if n != 20 {
		t.Fatalf("executed %d ticks, want 20", n)
	}
	if rep.EventsChecked != 20 {
		t.Errorf("EventsChecked = %d, want 20", rep.EventsChecked)
	}
	if rep.Sweeps < 14 {
		t.Errorf("Sweeps = %d, want >= 14 windows", rep.Sweeps)
	}
	if rep.Total != 0 {
		t.Errorf("clean run flagged: %v", rep.Violations)
	}
}

// TestPoolAccountingWithDrops: releases by the fault layer are not
// miscounted as leaks — puts == delivered + dropped balances — while a
// release that matches neither side still fires the rule.
func TestPoolAccountingWithDrops(t *testing.T) {
	c, net := newFabric(t, Config{WatchdogAfter: -1})
	aud := net.Audit() // New enabled it

	// Two packets acquired and "wire-dropped" by the fault layer: the
	// pool sees the puts, the sink saw nothing.
	for i := 0; i < 2; i++ {
		p := net.PacketPool().Get()
		aud.DroppedPackets++
		aud.DroppedData++
		net.PacketPool().Put(p)
	}
	c.sweep(0)
	if rep := c.Report(); rep.Total != 0 {
		t.Fatalf("balanced drop ledger flagged: %v", rep.Violations)
	}

	// A put with no matching delivery or drop is a double release.
	p := net.PacketPool().Get()
	net.PacketPool().Put(p)
	c.sweep(1)
	wantRule(t, c, "pool-accounting")
}

// TestDumpShowsFaultEvents: when a fault plan was active, the watchdog
// dump includes the recent fault events and the drop ledger.
func TestDumpShowsFaultEvents(t *testing.T) {
	var diag strings.Builder
	c, net := newFabric(t, Config{WatchdogAfter: sim.Millisecond, Diagnostics: &diag})
	aud := net.Audit()
	bus := obs.New()
	c.Attach(bus)
	net.SetBus(bus)

	// A link goes down and one packet is lost, then progress stops.
	bus.LinkDown(100, true, 1, 2)
	bus.PacketDropped(200, true, 1, 2, nil, 0, 2094)
	aud.DroppedCredits++
	for i := 0; i < 2; i++ {
		_ = net.PacketPool().Get()
	}
	aud.WirePackets = 2
	c.sweep(0)
	c.sweep(sim.Time(0).Add(2 * sim.Millisecond))
	wantRule(t, c, "watchdog")
	for _, want := range []string{"link_down at sw1.p2", "dropped credit update", "credits=1", "fault events"} {
		if !strings.Contains(diag.String(), want) {
			t.Errorf("dump missing %q:\n%s", want, diag.String())
		}
	}
}

// TestFaultRingBounded: the ring keeps only the most recent events.
func TestFaultRingBounded(t *testing.T) {
	c := newBare(t, Config{})
	bus := obs.New()
	c.Attach(bus)
	for i := 0; i < faultRingSize+5; i++ {
		bus.LinkDown(sim.Time(i), false, i, 0)
	}
	if len(c.faultRing) != faultRingSize {
		t.Fatalf("ring grew to %d", len(c.faultRing))
	}
	if c.faultSeen != faultRingSize+5 {
		t.Fatalf("seen = %d", c.faultSeen)
	}
	oldest := c.faultRing[c.faultNext]
	if oldest.Node != 5 {
		t.Fatalf("oldest retained event is node %d, want 5", oldest.Node)
	}
}

// TestReportSummary: the shared one-line form for clean and dirty runs.
func TestReportSummary(t *testing.T) {
	rep := &Report{Sweeps: 3, EventsChecked: 40, CCTISteps: 7}
	if got := rep.Summary(); got != "clean (3 sweeps, 40 events probed, 7 CCTI steps validated)" {
		t.Fatalf("Summary() = %q", got)
	}
	rep.Total = 2
	rep.Violations = []Violation{{Time: 9, Rule: "watchdog", Detail: "stuck"}}
	if got := rep.Summary(); !strings.Contains(got, "2 violation(s)") || !strings.Contains(got, "watchdog") {
		t.Fatalf("Summary() = %q", got)
	}
}

// TestReportErr checks the clean/dirty error contract and the violation
// cap.
func TestReportErr(t *testing.T) {
	c := newBare(t, Config{MaxViolations: 2})
	if err := c.Report().Err(); err != nil {
		t.Fatalf("clean report errored: %v", err)
	}
	for i := 0; i < 5; i++ {
		c.violate(sim.Time(i), "fel-order", "synthetic %d", i)
	}
	rep := c.Report()
	if rep.Total != 5 || len(rep.Violations) != 2 {
		t.Fatalf("cap broken: total=%d recorded=%d", rep.Total, len(rep.Violations))
	}
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "5 invariant violation(s)") {
		t.Fatalf("Err() = %v", err)
	}
}
