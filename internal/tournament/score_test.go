package tournament

import (
	"math"
	"testing"

	"repro/internal/ib"
	"repro/internal/obs"
)

func almost(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

func TestJain(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"all-zero", []float64{0, 0, 0}, 1},
		{"equal", []float64{5, 5, 5, 5}, 1},
		{"one-takes-all", []float64{8, 0, 0, 0}, 0.25},
		{"two-to-one", []float64{2, 1}, 0.9},
		{"single", []float64{3}, 1},
	}
	for _, c := range cases {
		if got := Jain(c.xs); !almost(got, c.want) {
			t.Errorf("%s: Jain = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestVictimSources(t *testing.T) {
	// Hand-built classification: source 1 contributes, sources 2 and 4
	// are pure victims, source 3 does both (a windy B node) and must be
	// excluded from the pure-victim set.
	rep := &obs.TreeReport{Flows: map[ib.FlowKey]obs.FlowClass{
		{Src: 1, Dst: 0}: obs.FlowContributor,
		{Src: 2, Dst: 5}: obs.FlowVictim,
		{Src: 4, Dst: 6}: obs.FlowVictim,
		{Src: 3, Dst: 0}: obs.FlowContributor,
		{Src: 3, Dst: 7}: obs.FlowVictim,
	}}
	got := VictimSources(rep)
	want := []ib.LID{2, 4}
	if len(got) != len(want) {
		t.Fatalf("victims = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("victims = %v, want %v", got, want)
		}
	}
}

func TestVictimSourcesZeroTrees(t *testing.T) {
	// A markless run (nocc, oracle) reconstructs zero trees, so every
	// observed flow is a victim and every source a pure victim.
	rep := &obs.TreeReport{Flows: map[ib.FlowKey]obs.FlowClass{
		{Src: 0, Dst: 1}: obs.FlowVictim,
		{Src: 1, Dst: 2}: obs.FlowVictim,
		{Src: 2, Dst: 0}: obs.FlowVictim,
	}}
	if got := VictimSources(rep); len(got) != 3 {
		t.Errorf("zero-tree victims = %v, want all 3 sources", got)
	}
	empty := &obs.TreeReport{Flows: map[ib.FlowKey]obs.FlowClass{}}
	if got := VictimSources(empty); len(got) != 0 {
		t.Errorf("empty report victims = %v", got)
	}
}

func TestScoreRun(t *testing.T) {
	// Four nodes, node 0 the hotspot: scoring covers nodes 1..3 only.
	// sinkGbps 0 marks a shape without hotspot traffic, so the score is
	// the pure victim-side product.
	rx := []float64{99e9, 4e9, 4e9, 4e9}
	hot := []ib.LID{0}
	sc := ScoreRun(nil, rx, hot, 8.0, 0)
	if !almost(sc.Fairness, 1) {
		t.Errorf("fairness = %v, want 1 (equal non-hotspot rates)", sc.Fairness)
	}
	if !almost(sc.Efficiency, 0.5) {
		t.Errorf("efficiency = %v, want 0.5 (4 of 8 Gbit/s)", sc.Efficiency)
	}
	if !almost(sc.FairnessScore, 0.5) {
		t.Errorf("score = %v, want fairness×efficiency = 0.5", sc.FairnessScore)
	}
	if sc.TreeVictimGbps != 0 {
		t.Errorf("tree victims without a report: %v", sc.TreeVictimGbps)
	}
}

func TestScoreRunHotspotUtil(t *testing.T) {
	// With hotspot traffic offered, the sink's delivered fraction joins
	// the score at hotspotWeight: node 0 drains 6 of 12 Gbit/s.
	rx := []float64{6e9, 4e9, 4e9, 4e9}
	hot := []ib.LID{0}
	sc := ScoreRun(nil, rx, hot, 8.0, 12.0)
	if !almost(sc.HotspotUtil, 0.5) {
		t.Errorf("hotspot util = %v, want 0.5", sc.HotspotUtil)
	}
	want := 1.0 * (victimWeight*0.5 + hotspotWeight*0.5)
	if !almost(sc.FairnessScore, want) {
		t.Errorf("score = %v, want weighted blend %v", sc.FairnessScore, want)
	}
	// An idle sink zeroes the hotspot term but not the victim term.
	rx[0] = 0
	sc = ScoreRun(nil, rx, hot, 8.0, 12.0)
	if !almost(sc.HotspotUtil, 0) || !almost(sc.FairnessScore, victimWeight*0.5) {
		t.Errorf("idle-sink score = %+v", sc)
	}
}

func TestScoreRunClampsEfficiency(t *testing.T) {
	rx := []float64{20e9, 20e9}
	sc := ScoreRun(nil, rx, nil, 8.0, 0)
	if !almost(sc.Efficiency, 1) {
		t.Errorf("efficiency = %v, want clamp at 1", sc.Efficiency)
	}
}

func TestScoreRunAllVictims(t *testing.T) {
	// All-victims edge: uniform starvation is perfectly fair but scores
	// near zero through the efficiency factor.
	rx := []float64{0.1e9, 0.1e9, 0.1e9, 0.1e9}
	rep := &obs.TreeReport{Flows: map[ib.FlowKey]obs.FlowClass{
		{Src: 0, Dst: 1}: obs.FlowVictim,
		{Src: 1, Dst: 2}: obs.FlowVictim,
		{Src: 2, Dst: 3}: obs.FlowVictim,
		{Src: 3, Dst: 0}: obs.FlowVictim,
	}}
	sc := ScoreRun(rep, rx, nil, 10.0, 0)
	if !almost(sc.Fairness, 1) {
		t.Errorf("fairness = %v, want 1", sc.Fairness)
	}
	if !almost(sc.Efficiency, 0.01) {
		t.Errorf("efficiency = %v, want 0.01", sc.Efficiency)
	}
	if !almost(sc.FairnessScore, 0.01) {
		t.Errorf("score = %v, want 0.01", sc.FairnessScore)
	}
	if !almost(sc.TreeVictimGbps, 0.1) {
		t.Errorf("tree victim rate = %v, want 0.1", sc.TreeVictimGbps)
	}
}

func TestScoreRunZeroTmax(t *testing.T) {
	// A degenerate scenario with no uniform load (tmax 0) must not
	// divide by zero; it scores 0.
	sc := ScoreRun(nil, []float64{1e9}, nil, 0, 0)
	if sc.Efficiency != 0 || sc.FairnessScore != 0 {
		t.Errorf("zero-tmax score = %+v", sc)
	}
}
