package tournament

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// tournamentPlanSalt decorrelates the synthesized fault-plan seed from
// the scenario's traffic seed, exactly as the degradation sweep's salt
// does (see core.RunDegradationOpts); a distinct salt keeps tournament
// plans off the degradation sweep's plan sequence. The plan for one
// (intensity, seed) cell is shared by every backend and corpus shape,
// so cells differ only in the mechanism under test.
const tournamentPlanSalt = 0x7bc1a5e11a

// tournamentSamples matches the degradation sweep's rate-sampler
// resolution for the recovery metric.
const tournamentSamples = 64

// Shape is one corpus entry: a named mutation of the base scenario.
type Shape struct {
	Name  string
	Apply func(*core.Scenario)
}

// DefaultCorpus is the tournament's scenario corpus: the Table II
// traffic shapes (uniform background, hotspot forest) plus the paper's
// windy and moving variants.
func DefaultCorpus() []Shape {
	return []Shape{
		{Name: "uniform", Apply: func(s *core.Scenario) {
			s.CNodesActive = false
		}},
		{Name: "hotspots", Apply: func(s *core.Scenario) {
			s.CNodesActive = true
		}},
		{Name: "windy", Apply: func(s *core.Scenario) {
			s.CNodesActive = true
			s.FracBPct = 25
			s.PPercent = 60
		}},
		{Name: "moving", Apply: func(s *core.Scenario) {
			s.CNodesActive = true
			s.HotspotLifetime = (s.Warmup + s.Measure) / 6
		}},
	}
}

// Config describes one tournament.
type Config struct {
	// Base is the scenario every cell starts from (typically
	// core.Default(radix), possibly with reduced windows); the corpus
	// shapes, seeds, intensities and backends overwrite their fields.
	Base core.Scenario
	// Backends are the registry names to bracket; empty enters every
	// registered backend.
	Backends []string
	// Intensities is the fault-intensity grid (0 = unfaulted baseline).
	Intensities []float64
	// Seeds replicate every cell.
	Seeds []uint64
	// Corpus overrides DefaultCorpus when non-nil.
	Corpus []Shape
	// Opts configures sweep execution (workers, cancellation, checker).
	Opts core.Opts
}

// Cell is one aggregated (scenario shape, fault intensity, backend)
// entry of the tournament table.
type Cell struct {
	Scenario  string  `json:"scenario"`
	Intensity float64 `json:"intensity"`
	Backend   string  `json:"backend"`
	// Rank orders the backends within this (scenario, intensity) group
	// by FairnessScore, best first, 1-based.
	Rank  int `json:"rank"`
	Seeds int `json:"seeds"`

	// Seed-mean scoring block (see RunScore).
	FairnessScore float64 `json:"fairness_score"`
	// ScoreCI95 is the half-width of the 95% Student-t confidence
	// interval on FairnessScore over the cell's seeds (0 for one seed).
	ScoreCI95   float64 `json:"score_ci95"`
	Fairness    float64 `json:"fairness"`
	Efficiency  float64 `json:"efficiency"`
	HotspotUtil float64 `json:"hotspot_util"`

	// Ground-truth throughput aggregates (Gbit/s, seed means).
	VictimGbps float64 `json:"victim_gbps"`
	// VictimCI95 is the 95% CI half-width on VictimGbps over seeds.
	VictimCI95 float64 `json:"victim_ci95"`
	NonHotGbps float64 `json:"nonhot_gbps"`
	TotalGbps  float64 `json:"total_gbps"`

	// FECN-record diagnostics (seed means).
	Trees          float64 `json:"trees"`
	TreeVictimGbps float64 `json:"tree_victim_gbps"`
	FECNMarked     float64 `json:"fecn_marked"`

	// Fault recovery, mirroring the degradation sweep's semantics:
	// Recovered counts seeds that recovered (trivially when no faults
	// were scheduled), RecoveryUS the mean recovery time over them.
	RecoveryUS float64 `json:"recovery_us"`
	Recovered  int     `json:"recovered"`
}

// Table is the tournament artifact.
type Table struct {
	Radix       int       `json:"radix"`
	Backends    []string  `json:"backends"`
	Intensities []float64 `json:"intensities"`
	Seeds       []uint64  `json:"seeds"`
	Corpus      []string  `json:"corpus"`
	Checked     bool      `json:"checked"`
	// Cells in corpus order, then intensity order, then rank order.
	Cells []Cell `json:"cells"`
}

// Run executes the tournament: len(corpus) × len(intensities) ×
// len(seeds) × len(backends) independent simulations fanned out over
// the sweep worker pool, reduced to the ranked table.
func Run(cfg Config) (*Table, error) {
	if len(cfg.Seeds) == 0 || len(cfg.Intensities) == 0 {
		return nil, fmt.Errorf("tournament: needs seeds and intensities")
	}
	backends := cfg.Backends
	if len(backends) == 0 {
		backends = cc.Names()
	}
	for _, b := range backends {
		if !cc.Known(b) {
			return nil, fmt.Errorf("tournament: unknown backend %q (registered: %v)", b, cc.Names())
		}
	}
	corpus := cfg.Corpus
	if corpus == nil {
		corpus = DefaultCorpus()
	}
	if len(corpus) == 0 {
		return nil, fmt.Errorf("tournament: empty corpus")
	}

	// One fault plan per (intensity, seed), shared across shapes and
	// backends: the horizon depends only on the base windows and the
	// link set only on the radix.
	tp, err := topo.FatTree(cfg.Base.Radix)
	if err != nil {
		return nil, err
	}
	links := fault.FabricLinks(tp)
	horizon := sim.Time(0).Add(cfg.Base.Warmup + cfg.Base.Measure)
	plans := make(map[[2]int]*fault.Plan, len(cfg.Intensities)*len(cfg.Seeds))
	for ii, in := range cfg.Intensities {
		for si, seed := range cfg.Seeds {
			plan, err := fault.Synth(fault.SynthConfig{
				Seed:        seed ^ (tournamentPlanSalt + uint64(ii)*0x9e3779b97f4a7c15),
				Intensity:   in,
				Links:       links,
				Horizon:     horizon,
				SampleEvery: (cfg.Base.Warmup + cfg.Base.Measure) / tournamentSamples,
			})
			if err != nil {
				return nil, err
			}
			plans[[2]int{ii, si}] = plan
		}
	}

	scenarios := make([]core.Scenario, 0, len(corpus)*len(cfg.Intensities)*len(cfg.Seeds)*len(backends))
	for _, shape := range corpus {
		for ii, in := range cfg.Intensities {
			for si, seed := range cfg.Seeds {
				for _, backend := range backends {
					s := cfg.Base
					shape.Apply(&s)
					s.Seed = seed
					s.CCOn = true
					s.Backend = backend
					s.Faults = plans[[2]int{ii, si}]
					s.Name = fmt.Sprintf("tournament %s in=%.2f seed=%d cc=%s", shape.Name, in, seed, backend)
					scenarios = append(scenarios, s)
				}
			}
		}
	}
	results, err := core.RunTreedBatch(cfg.Opts, scenarios)
	if err != nil {
		return nil, err
	}

	tab := &Table{
		Radix:       cfg.Base.Radix,
		Backends:    backends,
		Intensities: cfg.Intensities,
		Seeds:       cfg.Seeds,
		Checked:     cfg.Opts.Check,
	}
	for _, shape := range corpus {
		tab.Corpus = append(tab.Corpus, shape.Name)
	}

	// Reduce in submission order: seeds collapse into one Cell per
	// (shape, intensity, backend).
	idx := 0
	for _, shape := range corpus {
		// Hotspot utilization only scores shapes that offer hotspot
		// traffic; pass sink capacity 0 otherwise so the factor stays
		// neutral (see ScoreRun).
		shaped := cfg.Base
		shape.Apply(&shaped)
		sinkGbps := 0.0
		if shaped.CNodesActive || shaped.PPercent > 0 {
			sinkGbps = shaped.Fabric.SinkRate.Gbps()
		}
		for _, in := range cfg.Intensities {
			group := make([]Cell, len(backends))
			acc := make([]cellAcc, len(backends))
			for range cfg.Seeds {
				for bi := range backends {
					acc[bi].add(results[idx], sinkGbps)
					idx++
				}
			}
			for bi, backend := range backends {
				group[bi] = acc[bi].cell()
				group[bi].Scenario = shape.Name
				group[bi].Intensity = in
				group[bi].Backend = backend
			}
			rank(group)
			tab.Cells = append(tab.Cells, group...)
		}
	}
	return tab, nil
}

// cellAcc accumulates one cell's runs across seeds.
type cellAcc struct {
	score, fair, eff, hotutil, victim, nonhot, total stats.Acc
	trees, treeVictim, marks, recovery               stats.Acc
	recovered, seeds                                 int
}

func (a *cellAcc) add(tr *core.TreedResult, sinkGbps float64) {
	r := tr.Result
	sc := ScoreRun(tr.Trees, r.Rates.RxPayload, r.Hotspots, r.TMaxGbps, sinkGbps)
	a.seeds++
	a.score.Add(sc.FairnessScore)
	a.fair.Add(sc.Fairness)
	a.eff.Add(sc.Efficiency)
	a.hotutil.Add(sc.HotspotUtil)
	a.victim.Add(r.RoleRxGbps[core.RoleV])
	a.nonhot.Add(r.Summary.NonHotspotAvgGbps)
	a.total.Add(r.Summary.TotalGbps)
	a.trees.Add(float64(len(tr.Trees.Trees)))
	a.treeVictim.Add(sc.TreeVictimGbps)
	a.marks.Add(float64(r.CCStats.FECNMarked))
	if r.Faults.Recovered() {
		a.recovered++
		if r.Faults != nil && r.Faults.Recovery > 0 {
			a.recovery.Add(r.Faults.Recovery.Seconds() * 1e6)
		}
	}
}

func (a *cellAcc) cell() Cell {
	return Cell{
		Seeds:          a.seeds,
		FairnessScore:  a.score.Mean(),
		ScoreCI95:      a.score.CI95(),
		VictimCI95:     a.victim.CI95(),
		Fairness:       a.fair.Mean(),
		Efficiency:     a.eff.Mean(),
		HotspotUtil:    a.hotutil.Mean(),
		VictimGbps:     a.victim.Mean(),
		NonHotGbps:     a.nonhot.Mean(),
		TotalGbps:      a.total.Mean(),
		Trees:          a.trees.Mean(),
		TreeVictimGbps: a.treeVictim.Mean(),
		FECNMarked:     a.marks.Mean(),
		RecoveryUS:     a.recovery.Mean(),
		Recovered:      a.recovered,
	}
}

// rank orders one (scenario, intensity) group best-first by
// FairnessScore (backend name breaks exact ties deterministically) and
// writes the 1-based ranks.
func rank(group []Cell) {
	sort.SliceStable(group, func(i, j int) bool {
		if group[i].FairnessScore != group[j].FairnessScore {
			return group[i].FairnessScore > group[j].FairnessScore
		}
		return group[i].Backend < group[j].Backend
	})
	for i := range group {
		group[i].Rank = i + 1
	}
}

// Cell lookup for tests and tools.
func (t *Table) Cell(scenario string, intensity float64, backend string) *Cell {
	for i := range t.Cells {
		c := &t.Cells[i]
		if c.Scenario == scenario && c.Intensity == intensity && c.Backend == backend {
			return c
		}
	}
	return nil
}

// Print renders the ranked comparison table.
func Print(w io.Writer, t *Table) {
	checked := ""
	if t.Checked {
		checked = ", invariants checked"
	}
	fmt.Fprintf(w, "CC backend tournament — radix %d, %d seeds, corpus %v%s\n",
		t.Radix, len(t.Seeds), t.Corpus, checked)
	fmt.Fprintf(w, "  %-9s %9s  %4s %-7s  %6s %6s %6s %6s %6s  %8s %6s %8s %8s  %6s %9s  %9s\n",
		"scenario", "intensity", "rank", "backend",
		"score", "±95", "fair", "eff", "hotutl", "victimG", "±95", "nonhotG", "totalG", "trees", "marks", "recov")
	var prev string
	for _, c := range t.Cells {
		group := fmt.Sprintf("%s/%v", c.Scenario, c.Intensity)
		if prev != "" && group != prev {
			fmt.Fprintln(w)
		}
		prev = group
		fmt.Fprintf(w, "  %-9s %9.2f  %4d %-7s  %6.3f %6.3f %6.3f %6.3f %6.3f  %8.3f %6.3f %8.3f %8.2f  %6.1f %9.0f  %6d/%-2d\n",
			c.Scenario, c.Intensity, c.Rank, c.Backend,
			c.FairnessScore, c.ScoreCI95, c.Fairness, c.Efficiency, c.HotspotUtil,
			c.VictimGbps, c.VictimCI95, c.NonHotGbps, c.TotalGbps,
			c.Trees, c.FECNMarked, c.Recovered, c.Seeds)
	}
}
