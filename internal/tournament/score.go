// Package tournament runs the congestion-control backend tournament:
// every registered (or selected) cc backend over a scenario corpus and
// fault-intensity grid, each cell scored from the run's ground-truth
// rates and its reconstructed congestion trees, reduced to a ranked
// comparison table. It is the evaluation harness the pluggable-backend
// layer exists for: the paper studies one mechanism's scope; the
// tournament brackets it between a clairvoyant upper bound (oracle), a
// do-nothing lower bound (nocc) and a rate-based alternative (rcm).
package tournament

import (
	"repro/internal/ib"
	"repro/internal/obs"
)

// Jain is the Jain fairness index of the sample: (Σx)²/(n·Σx²), 1 when
// every value is equal and 1/n when one value holds everything. An
// all-zero sample is perfectly (if vacuously) fair and scores 1; an
// empty sample scores 0 — there is no population to be fair to.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// VictimSources returns, sorted, the source nodes the tree report
// classifies as pure victims (at least one victim flow and no
// contributor flow); see obs.TreeReport.PureVictimSources. Kept as the
// scoring package's entry point so tests exercise the classification
// the tournament actually consumes.
func VictimSources(rep *obs.TreeReport) []ib.LID {
	return rep.PureVictimSources()
}

// Ranking-score weights: victim restoration dominates, but delivered
// hotspot throughput gets a minority stake. Without the hotspot term
// the score saturates — an over-throttling mechanism and a clairvoyant
// allocation both hit the victim-protection ceiling and rank by noise,
// even though one delivers a third more total throughput. With it, a
// backend scores highest only by protecting victims AND keeping the
// hotspot sinks busy; the 4:1 ratio keeps victim damage (the paper's
// subject) the dominant axis.
const (
	victimWeight  = 0.8
	hotspotWeight = 0.2
)

// RunScore is the per-run scoring block derived from one result and its
// tree report; Score aggregates it over seeds into a Cell.
type RunScore struct {
	// Fairness is the Jain index over the non-hotspot nodes' receive
	// rates: how evenly the surviving uniform traffic is delivered.
	Fairness float64
	// Efficiency is the non-hotspot mean receive rate as a fraction of
	// the scenario's theoretical maximum, clamped to 1.
	Efficiency float64
	// HotspotUtil is the hotspot nodes' mean receive rate as a fraction
	// of the sink capacity, clamped to 1; reported as 1 when the
	// scenario offers no hotspot traffic, in which case it is excluded
	// from the score rather than granting vacuous credit.
	HotspotUtil float64
	// FairnessScore is the ranking scalar:
	// Fairness × (victimWeight·Efficiency + hotspotWeight·HotspotUtil),
	// or plain Fairness × Efficiency when no hotspot traffic is offered.
	// A mechanism scores high only by restoring victim throughput,
	// spreading it evenly AND not strangling the hotspot — uniform
	// starvation has Jain ≈ 1 but Efficiency ≈ 0, over-throttling has
	// perfect victims but an idle sink.
	FairnessScore float64
	// TreeVictimGbps is the mean receive rate (Gbit/s) of the sources
	// the FECN record classifies as pure victims, 0 when there are none.
	TreeVictimGbps float64
}

// ScoreRun reduces one run to its scoring block from the ground-truth
// side (per-node receive rates in bits/s, the scenario's hotspot set,
// the non-hotspot theoretical maximum in Gbit/s, and the sink capacity
// in Gbit/s — pass sinkGbps 0 when the scenario offers no hotspot
// traffic) and the FECN-derived side (the tree report).
func ScoreRun(rep *obs.TreeReport, rxBits []float64, hotspots []ib.LID, tmaxGbps, sinkGbps float64) RunScore {
	hot := make(map[int]bool, len(hotspots))
	for _, h := range hotspots {
		hot[int(h)] = true
	}
	nonhot := make([]float64, 0, len(rxBits))
	var sum, hotSum float64
	hotN := 0
	for node, rx := range rxBits {
		if hot[node] {
			hotSum += rx
			hotN++
			continue
		}
		nonhot = append(nonhot, rx)
		sum += rx
	}
	var sc RunScore
	sc.Fairness = Jain(nonhot)
	if len(nonhot) > 0 && tmaxGbps > 0 {
		sc.Efficiency = sum / float64(len(nonhot)) / 1e9 / tmaxGbps
		if sc.Efficiency > 1 {
			sc.Efficiency = 1
		}
	}
	if sinkGbps > 0 && hotN > 0 {
		sc.HotspotUtil = hotSum / float64(hotN) / 1e9 / sinkGbps
		if sc.HotspotUtil > 1 {
			sc.HotspotUtil = 1
		}
		sc.FairnessScore = sc.Fairness * (victimWeight*sc.Efficiency + hotspotWeight*sc.HotspotUtil)
	} else {
		// No hotspot traffic to deliver: the axis drops out instead of
		// granting vacuous credit, and the score reduces to the pure
		// victim-side product.
		sc.HotspotUtil = 1
		sc.FairnessScore = sc.Fairness * sc.Efficiency
	}
	if rep != nil {
		victims := VictimSources(rep)
		var vsum float64
		n := 0
		for _, src := range victims {
			if int(src) < len(rxBits) {
				vsum += rxBits[src]
				n++
			}
		}
		if n > 0 {
			sc.TreeVictimGbps = vsum / float64(n) / 1e9
		}
	}
	return sc
}
