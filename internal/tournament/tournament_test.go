package tournament

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestRunValidation(t *testing.T) {
	base := core.Default(8)
	if _, err := Run(Config{Base: base}); err == nil {
		t.Error("empty seeds/intensities accepted")
	}
	if _, err := Run(Config{Base: base, Seeds: []uint64{1}, Intensities: []float64{0},
		Backends: []string{"bogus"}}); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := Run(Config{Base: base, Seeds: []uint64{1}, Intensities: []float64{0},
		Corpus: []Shape{}}); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestDefaultCorpus(t *testing.T) {
	corpus := DefaultCorpus()
	if len(corpus) < 4 {
		t.Fatalf("corpus has %d shapes, want >= 4", len(corpus))
	}
	seen := map[string]bool{}
	for _, sh := range corpus {
		if sh.Name == "" || sh.Apply == nil || seen[sh.Name] {
			t.Fatalf("bad corpus entry %q", sh.Name)
		}
		seen[sh.Name] = true
	}
	// The moving shape must actually move its hotspots.
	s := core.Default(8)
	for _, sh := range corpus {
		if sh.Name == "moving" {
			sh.Apply(&s)
			if s.HotspotLifetime <= 0 {
				t.Error("moving shape left hotspots static")
			}
		}
	}
}

// TestTournamentBracketsBackends is the subsystem's acceptance test: a
// reduced tournament over all four backends must produce a ranked table
// covering the full corpus × intensity grid with the clairvoyant
// bracket intact on the hotspot scenario — oracle ≥ ibcc ≥ nocc on the
// fairness score, the whole point of running bounds alongside the
// mechanism under study.
func TestTournamentBracketsBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("tournament run is not short")
	}
	base := core.Default(8)
	base.Warmup = 400 * sim.Microsecond
	base.Measure = 800 * sim.Microsecond
	tab, err := Run(Config{
		Base:        base,
		Backends:    []string{"ibcc", "nocc", "oracle", "rcm"},
		Intensities: []float64{0, 0.6},
		Seeds:       []uint64{1, 2},
		Opts:        core.Opts{Workers: core.WorkersAll},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tab.Cells), 4*2*4; got != want {
		t.Fatalf("%d cells, want %d (4 shapes x 2 intensities x 4 backends)", got, want)
	}
	// Every (scenario, intensity) group carries a complete 1..4 ranking.
	groups := map[string][]int{}
	for _, c := range tab.Cells {
		key := c.Scenario + "/" + strings.Repeat("i", int(c.Intensity*10))
		groups[key] = append(groups[key], c.Rank)
	}
	if len(groups) != 8 {
		t.Fatalf("%d scenario x intensity groups, want 8", len(groups))
	}
	for key, ranks := range groups {
		seen := map[int]bool{}
		for _, r := range ranks {
			seen[r] = true
		}
		for want := 1; want <= 4; want++ {
			if !seen[want] {
				t.Errorf("group %s missing rank %d (ranks %v)", key, want, ranks)
			}
		}
	}
	// The clairvoyant bracket on the hotspot forest, both intensities.
	for _, in := range tab.Intensities {
		oracle := tab.Cell("hotspots", in, "oracle")
		ibcc := tab.Cell("hotspots", in, "ibcc")
		nocc := tab.Cell("hotspots", in, "nocc")
		if oracle == nil || ibcc == nil || nocc == nil {
			t.Fatalf("hotspot cells missing at intensity %v", in)
		}
		if oracle.FairnessScore < ibcc.FairnessScore {
			t.Errorf("intensity %v: oracle score %.4f below ibcc %.4f — the upper bound lost to the mechanism",
				in, oracle.FairnessScore, ibcc.FairnessScore)
		}
		if ibcc.FairnessScore < nocc.FairnessScore {
			t.Errorf("intensity %v: ibcc score %.4f below nocc %.4f — the mechanism lost to doing nothing",
				in, ibcc.FairnessScore, nocc.FairnessScore)
		}
		// The mechanisms must actually act: ibcc marks, nocc must not.
		if ibcc.FECNMarked == 0 {
			t.Errorf("intensity %v: ibcc marked nothing on a hotspot forest", in)
		}
		if nocc.FECNMarked != 0 || oracle.FECNMarked != 0 {
			t.Errorf("intensity %v: markless backends reported marks (nocc %v, oracle %v)",
				in, nocc.FECNMarked, oracle.FECNMarked)
		}
	}
	// Every cell carries finite, non-negative CI95 half-widths, and with
	// two seeds at least one is strictly positive (seeds must disagree
	// somewhere or the replication is broken).
	anyCI := false
	for _, c := range tab.Cells {
		if c.ScoreCI95 < 0 || c.VictimCI95 < 0 ||
			math.IsNaN(c.ScoreCI95) || math.IsNaN(c.VictimCI95) ||
			math.IsInf(c.ScoreCI95, 0) || math.IsInf(c.VictimCI95, 0) {
			t.Errorf("cell %s/%v/%s has bad CI95 (score ±%v, victim ±%v)",
				c.Scenario, c.Intensity, c.Backend, c.ScoreCI95, c.VictimCI95)
		}
		if c.ScoreCI95 > 0 || c.VictimCI95 > 0 {
			anyCI = true
		}
	}
	if !anyCI {
		t.Error("every CI95 half-width is zero across the table — seed variance lost")
	}
	// The render covers every backend and shape.
	var buf bytes.Buffer
	Print(&buf, tab)
	out := buf.String()
	for _, want := range []string{"ibcc", "nocc", "oracle", "rcm", "uniform", "hotspots", "windy", "moving"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

func TestPrintCI95Columns(t *testing.T) {
	tab := &Table{
		Radix:       8,
		Backends:    []string{"ibcc"},
		Intensities: []float64{0},
		Seeds:       []uint64{1, 2, 3},
		Corpus:      []string{"hotspots"},
		Cells: []Cell{{
			Scenario: "hotspots", Backend: "ibcc", Rank: 1, Seeds: 3,
			FairnessScore: 0.812, ScoreCI95: 0.034,
			VictimGbps: 21.5, VictimCI95: 1.25,
		}},
	}
	var buf strings.Builder
	Print(&buf, tab)
	out := buf.String()
	if got := strings.Count(out, "±95"); got != 2 {
		t.Fatalf("header carries %d ±95 columns, want 2:\n%s", got, out)
	}
	for _, want := range []string{"0.034", "1.250"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CI half-width %s missing from table:\n%s", want, out)
		}
	}
}
