package fault

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// synthLabel isolates the synthesizer's RNG stream from the injector's
// per-class streams (which derive from the resulting plan's seed).
const synthLabel = 0xfa017

// SynthConfig parameterizes Synth.
type SynthConfig struct {
	// Seed drives both the synthesis choices and the resulting plan.
	Seed uint64
	// Intensity in [0, 1] scales everything: 0 synthesizes a zero plan,
	// 1 the heaviest sweep point (a sizeable fraction of links flapping
	// or degraded and aggressive control-plane loss).
	Intensity float64
	// Links is the faultable link set, typically FabricLinks(topology).
	Links []LinkRef
	// Horizon is the run end; all faults are placed in the middle of it
	// so warmup is clean and recovery is observable.
	Horizon sim.Time
	// SampleEvery is copied into the plan (see Plan.SampleEvery).
	SampleEvery sim.Duration
}

// Synth builds a fault plan deterministically from (seed, intensity):
// the same config always yields the identical plan, and intensity scales
// fault count, degradation depth, and drop probabilities together — the
// x-axis of a graceful-degradation sweep.
func Synth(cfg SynthConfig) (*Plan, error) {
	if cfg.Intensity < 0 || cfg.Intensity > 1 || cfg.Intensity != cfg.Intensity {
		return nil, fmt.Errorf("fault: intensity %v outside [0, 1]", cfg.Intensity)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("fault: synth needs a positive horizon")
	}
	p := &Plan{Seed: cfg.Seed, Horizon: cfg.Horizon, SampleEvery: cfg.SampleEvery}
	in := cfg.Intensity
	if in == 0 || len(cfg.Links) == 0 {
		return p, nil
	}

	rng := sim.NewRNG(cfg.Seed).Derive(synthLabel)
	// Fault windows live in [25%, 65%] of the horizon; durations span
	// 2–8% of it. Everything ends well before the horizon so the
	// degradation sweep can measure recovery.
	lo := sim.Time(float64(cfg.Horizon) * 0.25)
	hi := sim.Time(float64(cfg.Horizon) * 0.65)
	minDur := sim.Duration(float64(cfg.Horizon) * 0.02)
	maxDur := sim.Duration(float64(cfg.Horizon) * 0.08)
	window := func() (sim.Time, sim.Duration) {
		dur := minDur + sim.Duration(rng.Intn(int(maxDur-minDur)+1))
		span := int(hi.Sub(lo) - dur)
		at := lo
		if span > 0 {
			at = at.Add(sim.Duration(rng.Intn(span)))
		}
		return at, dur
	}

	count := func(pool int, frac float64) int {
		n := int(math.Round(in * frac * float64(pool)))
		if n > pool {
			n = pool
		}
		return n
	}

	// Flaps and degrades draw from all links, stalls from switch ports
	// only. One Perm per fault family keeps the choices independent of
	// each other's counts.
	links := cfg.Links
	for _, i := range rng.Perm(len(links))[:count(len(links), 0.15)] {
		at, dur := window()
		p.Flaps = append(p.Flaps, Flap{Link: links[i], At: at, Dur: dur})
	}
	for _, i := range rng.Perm(len(links))[:count(len(links), 0.15)] {
		at, dur := window()
		factor := 2 + 6*in*rng.Float64() // up to 8x slower at intensity 1
		p.Degrades = append(p.Degrades, Degrade{Link: links[i], At: at, Dur: dur, Factor: factor})
	}
	if sw := SwitchLinks(links); len(sw) > 0 {
		for _, i := range rng.Perm(len(sw))[:count(len(sw), 0.10)] {
			at, dur := window()
			p.Stalls = append(p.Stalls, Stall{Link: sw[i], At: at, Dur: dur})
		}
	}

	// Control-plane loss scales faster than data loss: the paper's CC
	// mechanism is exercised hardest when its signalling is unreliable
	// while the data plane mostly keeps flowing.
	p.Drop = DropProbs{
		Data:   0.005 * in,
		FECN:   0.02 * in,
		CNP:    0.30 * in,
		Ack:    0.05 * in,
		Credit: 0.01 * in,
	}
	if err := p.Validate(cfg.Links); err != nil {
		return nil, err
	}
	return p, nil
}
