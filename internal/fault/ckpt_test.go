package fault

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

// TestInjectorStateRoundTrip cuts through the middle of overlapping
// fault windows and proves the injector's full mutable state — flap
// overlap depth, the in-flight degrade factor stack, stats, and all
// five drop-RNG stream positions — survives ExportState/RestoreState
// exactly (the checkpoint layer's per-package contract).
func TestInjectorStateRoundTrip(t *testing.T) {
	flapLink := LinkRef{AtSwitch: true, Node: 0, Port: 0}
	slowLink := LinkRef{Node: 0}
	plan := &Plan{
		Seed:    23,
		Horizon: sim.Time(2 * sim.Millisecond),
		Flaps: []Flap{
			// Two overlapping windows on the same link: depth 2 at the cut.
			{Link: flapLink, At: sim.Time(10 * sim.Microsecond), Dur: 200 * sim.Microsecond},
			{Link: flapLink, At: sim.Time(50 * sim.Microsecond), Dur: 200 * sim.Microsecond},
		},
		Degrades: []Degrade{
			// Two degrades in flight on the traffic path at the cut.
			{Link: slowLink, At: sim.Time(20 * sim.Microsecond), Dur: 300 * sim.Microsecond, Factor: 4},
			{Link: slowLink, At: sim.Time(40 * sim.Microsecond), Dur: 300 * sim.Microsecond, Factor: 2},
		},
		Drop:        DropProbs{Data: 0.3, Credit: 0.2},
		SampleEvery: 25 * sim.Microsecond,
	}

	n := buildNet(t)
	inj, err := NewInjector(n, plan)
	if err != nil {
		t.Fatal(err)
	}
	freshBlob, err := inj.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	n.HCA(0).SetSource(&flood{src: 0, dst: 1, remaining: 2000})
	n.Start()
	n.Sim().RunUntil(sim.Time(60 * sim.Microsecond))

	blob, err := inj.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	var st injState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}

	// Overlap depth of the double-flapped link is 2 mid-overlap.
	foundDepth := false
	for _, ld := range st.Depth {
		if ld.Link == flapLink {
			foundDepth = true
			if ld.Depth != 2 {
				t.Errorf("flap overlap depth = %d, want 2", ld.Depth)
			}
		}
	}
	if !foundDepth {
		t.Error("exported state lost the flapped link's depth")
	}

	// Both degrade factors are in flight, in application order.
	foundFactors := false
	for _, lf := range st.Factors {
		if lf.Link == slowLink {
			foundFactors = true
			if len(lf.Factors) != 2 || lf.Factors[0] != 4 || lf.Factors[1] != 2 {
				t.Errorf("degrade factor stack = %v, want [4 2]", lf.Factors)
			}
		}
	}
	if !foundFactors {
		t.Error("exported state lost the in-flight degrade factors")
	}

	// The data drop stream actually advanced from its seeded position
	// (traffic crossed the lossy path before the cut).
	var fresh injState
	if err := json.Unmarshal(freshBlob, &fresh); err != nil {
		t.Fatal(err)
	}
	if st.RNGData == fresh.RNGData {
		t.Error("data drop-RNG position did not advance before the cut")
	}
	if st.Stats.DroppedData == 0 {
		t.Error("no data drops recorded before the cut (drop path not exercised)")
	}
	if len(st.Stats.Samples) == 0 {
		t.Error("no rate samples recorded before the cut")
	}

	// A freshly built injector for the same plan restores the blob and
	// exports it back byte-identically: nothing in the state is lost,
	// reordered, or re-derived differently.
	n2 := buildNet(t)
	inj2, err := NewInjector(n2, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	blob2, err := inj2.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("restore/export round trip changed the state:\n%s\n%s", blob, blob2)
	}
}
