// Package fault is the deterministic fault-injection layer: a Plan
// describes typed faults — link flaps, switch-port stalls, per-link rate
// degradation, and per-class probabilistic wire loss — and an Injector
// executes them against a fabric.Network on its simulator clock.
//
// Two properties anchor the design:
//
//   - Determinism. Every fault decision is a pure function of the plan.
//     Scheduled faults carry absolute times; probabilistic drops draw
//     from the plan's own RNG tree (rooted at Plan.Seed, one substream
//     per drop class), fully independent of the traffic RNG tree — so
//     the same (scenario seed, plan) pair replays the identical faulted
//     run byte for byte, and changing the fault seed never perturbs an
//     unfaulted decision.
//
//   - Zero-intensity transparency. A plan with no scheduled faults and
//     all drop probabilities zero (Plan.Zero) is semantically absent:
//     the runner skips the injector entirely, so the run takes the
//     identical code path — and produces the identical event stream —
//     as a run with no plan at all.
package fault

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// LinkRef names one transmitter in the fabric: AtSwitch selects the
// switch namespace (Node is the dense switch index, Port the output
// port) versus the host namespace (Node is the LID; hosts have a single
// transmitter, Port must be 0). The namespaces match the flight
// recorder's, so a fault in a trace lines up with its LinkRef.
type LinkRef struct {
	AtSwitch bool `json:"at_switch,omitempty"`
	Node     int  `json:"node"`
	Port     int  `json:"port,omitempty"`
}

func (l LinkRef) String() string {
	if l.AtSwitch {
		return fmt.Sprintf("sw%d.p%d", l.Node, l.Port)
	}
	return fmt.Sprintf("host%d", l.Node)
}

// Flap takes a link down at At and back up Duration later.
type Flap struct {
	Link LinkRef      `json:"link"`
	At   sim.Time     `json:"at_ps"`
	Dur  sim.Duration `json:"duration_ps"`
}

// Stall freezes a switch output port — mechanically a flap, but named
// separately in the taxonomy because it models a stuck arbiter rather
// than a dead cable, and is restricted to switch transmitters.
type Stall struct {
	Link LinkRef      `json:"link"`
	At   sim.Time     `json:"at_ps"`
	Dur  sim.Duration `json:"duration_ps"`
}

// Degrade multiplies a link's serialization time by Factor (> 1) between
// At and At+Dur; overlapping degrades on one link compound
// multiplicatively.
type Degrade struct {
	Link   LinkRef      `json:"link"`
	At     sim.Time     `json:"at_ps"`
	Dur    sim.Duration `json:"duration_ps"`
	Factor float64      `json:"factor"`
}

// DropProbs are per-class wire-loss probabilities in [0, 1], applied
// independently per packet (or credit update). The classes separate the
// congestion-control plane from the data plane: FECN covers FECN-marked
// data packets (the forward congestion signal), CNP the backward
// notification, Ack the acknowledgement stream, Credit the link-level
// flow-control updates, and Data everything else.
type DropProbs struct {
	Data   float64 `json:"data,omitempty"`
	FECN   float64 `json:"fecn,omitempty"`
	CNP    float64 `json:"cnp,omitempty"`
	Ack    float64 `json:"ack,omitempty"`
	Credit float64 `json:"credit,omitempty"`
}

func (d DropProbs) zero() bool {
	return d.Data == 0 && d.FECN == 0 && d.CNP == 0 && d.Ack == 0 && d.Credit == 0
}

// Plan is a complete, self-contained fault schedule. The zero value is a
// valid empty plan. Times and durations are integer picoseconds (the
// simulator's clock), so plans serialize exactly — no float rounding can
// make two decodes of one plan diverge.
type Plan struct {
	// Seed roots the plan's private RNG tree. Independent of the
	// traffic seed; the same plan under different traffic seeds drops
	// the same coin-flip sequence per class.
	Seed uint64 `json:"seed"`

	// Horizon bounds the plan: every fault must end by it, and the
	// rate sampler (if any) stops there. It is typically the scenario
	// horizon.
	Horizon sim.Time `json:"horizon_ps,omitempty"`

	Flaps    []Flap    `json:"flaps,omitempty"`
	Stalls   []Stall   `json:"stalls,omitempty"`
	Degrades []Degrade `json:"degrades,omitempty"`
	Drop     DropProbs `json:"drop,omitempty"`

	// SampleEvery, when nonzero, runs a receive-rate sampler with this
	// window so Stats can report a recovery time (see Stats).
	SampleEvery sim.Duration `json:"sample_every_ps,omitempty"`
}

// Zero reports whether the plan injects nothing: no scheduled faults and
// all drop probabilities zero. A zero plan is treated as absent by the
// runner (sampling alone does not make a plan non-zero — without faults
// there is nothing to recover from).
func (p *Plan) Zero() bool {
	if p == nil {
		return true
	}
	return len(p.Flaps) == 0 && len(p.Stalls) == 0 && len(p.Degrades) == 0 && p.Drop.zero()
}

// LastFaultEnd returns the latest end time of any scheduled fault, or 0
// when nothing is scheduled.
func (p *Plan) LastFaultEnd() sim.Time {
	var end sim.Time
	for _, f := range p.Flaps {
		if e := f.At.Add(f.Dur); e > end {
			end = e
		}
	}
	for _, s := range p.Stalls {
		if e := s.At.Add(s.Dur); e > end {
			end = e
		}
	}
	for _, d := range p.Degrades {
		if e := d.At.Add(d.Dur); e > end {
			end = e
		}
	}
	return end
}

func checkProb(name string, v float64) error {
	if v < 0 || v > 1 || v != v {
		return fmt.Errorf("fault: %s drop probability %v outside [0, 1]", name, v)
	}
	return nil
}

func checkWindow(what string, l LinkRef, at sim.Time, dur sim.Duration, horizon sim.Time) error {
	if at < 0 || dur <= 0 {
		return fmt.Errorf("fault: %s on %s has empty window (at=%d dur=%d)", what, l, at, dur)
	}
	if horizon > 0 && at.Add(dur) > horizon {
		return fmt.Errorf("fault: %s on %s ends at %v, past horizon %v", what, l, at.Add(dur), horizon)
	}
	return nil
}

// Validate checks ranges and, when links is non-nil, that every
// referenced link exists in it (use FabricLinks for the fabric's link
// set).
func (p *Plan) Validate(links []LinkRef) error {
	if p == nil {
		return nil
	}
	var known map[LinkRef]bool
	if links != nil {
		known = make(map[LinkRef]bool, len(links))
		for _, l := range links {
			known[l] = true
		}
	}
	checkLink := func(what string, l LinkRef) error {
		if l.Node < 0 || l.Port < 0 {
			return fmt.Errorf("fault: %s references negative link %+v", what, l)
		}
		if !l.AtSwitch && l.Port != 0 {
			return fmt.Errorf("fault: %s references host %d port %d; hosts have one transmitter", what, l.Node, l.Port)
		}
		if known != nil && !known[l] {
			return fmt.Errorf("fault: %s references unknown link %s", what, l)
		}
		return nil
	}
	for _, f := range p.Flaps {
		if err := checkLink("flap", f.Link); err != nil {
			return err
		}
		if err := checkWindow("flap", f.Link, f.At, f.Dur, p.Horizon); err != nil {
			return err
		}
	}
	for _, s := range p.Stalls {
		if !s.Link.AtSwitch {
			return fmt.Errorf("fault: stall on %s; stalls apply to switch ports only", s.Link)
		}
		if err := checkLink("stall", s.Link); err != nil {
			return err
		}
		if err := checkWindow("stall", s.Link, s.At, s.Dur, p.Horizon); err != nil {
			return err
		}
	}
	for _, d := range p.Degrades {
		if err := checkLink("degrade", d.Link); err != nil {
			return err
		}
		if err := checkWindow("degrade", d.Link, d.At, d.Dur, p.Horizon); err != nil {
			return err
		}
		if d.Factor <= 1 || d.Factor != d.Factor {
			return fmt.Errorf("fault: degrade factor %v on %s; must be > 1", d.Factor, d.Link)
		}
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"data", p.Drop.Data}, {"fecn", p.Drop.FECN}, {"cnp", p.Drop.CNP},
		{"ack", p.Drop.Ack}, {"credit", p.Drop.Credit},
	} {
		if err := checkProb(c.name, c.v); err != nil {
			return err
		}
	}
	if p.SampleEvery < 0 {
		return fmt.Errorf("fault: negative sample window %d", p.SampleEvery)
	}
	if p.SampleEvery > 0 && p.Horizon <= 0 {
		return fmt.Errorf("fault: rate sampling requires a positive horizon")
	}
	return nil
}

// Decode reads a JSON plan, rejecting unknown fields so a typo in a
// hand-written plan fails loudly instead of silently injecting nothing.
func Decode(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	p := new(Plan)
	if err := dec.Decode(p); err != nil {
		return nil, fmt.Errorf("fault: decoding plan: %w", err)
	}
	if err := p.Validate(nil); err != nil {
		return nil, err
	}
	return p, nil
}

// Encode writes the plan as indented JSON.
func (p *Plan) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}
