package fault

import "repro/internal/topo"

// FabricLinks enumerates every transmitter the fabric will instantiate
// for tp, in a deterministic order: hosts by LID first, then switch
// output ports in (dense switch index, port) order. The dense switch
// index counts switches in node order, mirroring fabric.New, so the
// refs returned here are exactly the ones the injector may fault.
func FabricLinks(tp *topo.Topology) []LinkRef {
	var hosts, sws []LinkRef
	swIndex := 0
	for i := range tp.Nodes {
		node := &tp.Nodes[i]
		switch node.Kind {
		case topo.Host:
			hosts = append(hosts, LinkRef{Node: int(node.LID)})
		case topo.Switch:
			for pi := range node.Ports {
				if !node.Ports[pi].Connected() {
					continue
				}
				sws = append(sws, LinkRef{AtSwitch: true, Node: swIndex, Port: pi})
			}
			swIndex++
		}
	}
	return append(hosts, sws...)
}

// SwitchLinks filters refs down to switch transmitters (stall-eligible).
func SwitchLinks(refs []LinkRef) []LinkRef {
	var out []LinkRef
	for _, l := range refs {
		if l.AtSwitch {
			out = append(out, l)
		}
	}
	return out
}
