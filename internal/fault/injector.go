package fault

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/sim"
)

// Per-class RNG stream labels under the plan seed. Each drop class
// consumes its own substream so, e.g., raising the CNP drop probability
// never changes which data packets are lost.
const (
	labelDropData = iota + 1
	labelDropFECN
	labelDropCNP
	labelDropAck
	labelDropCredit
)

// Injector executes a Plan against one network: it schedules the
// link-state transitions on the simulator, implements fabric.Dropper
// for the probabilistic classes, and accumulates Stats. One injector
// serves one run; build a fresh one per network.
type Injector struct {
	net  *fabric.Network
	plan *Plan

	rngData, rngFECN, rngCNP, rngAck, rngCredit *sim.RNG

	// Overlap handling: a link is down while any flap or stall covers
	// it (depth > 0), and its serialization factor is the product of
	// all active degrades — recomputed from the active set, never
	// divided back out, so float error cannot accumulate.
	depth  map[LinkRef]int
	factor map[LinkRef][]float64

	stats       Stats
	lastPayload uint64
}

// NewInjector validates the plan against the network's link set, wires
// the injector in as the network's Dropper, and schedules every
// link-state transition at its absolute time. Call before Start. Zero
// plans are rejected — the caller is expected to skip injection
// entirely so the unfaulted code path stays identical to a plan-less
// run.
func NewInjector(net *fabric.Network, plan *Plan) (*Injector, error) {
	if plan.Zero() {
		return nil, fmt.Errorf("fault: refusing to inject a zero plan; treat it as absent")
	}
	if err := plan.Validate(FabricLinks(net.Topology())); err != nil {
		return nil, err
	}
	root := sim.NewRNG(plan.Seed)
	in := &Injector{
		net:       net,
		plan:      plan,
		rngData:   root.Derive(labelDropData),
		rngFECN:   root.Derive(labelDropFECN),
		rngCNP:    root.Derive(labelDropCNP),
		rngAck:    root.Derive(labelDropAck),
		rngCredit: root.Derive(labelDropCredit),
		depth:     make(map[LinkRef]int),
		factor:    make(map[LinkRef][]float64),
	}
	in.stats.LastFaultEnd = plan.LastFaultEnd()
	in.stats.FirstFaultStart = firstFaultStart(plan)

	simr := net.Sim()
	for _, f := range plan.Flaps {
		simr.ScheduleActionAt(f.At, &pushAct{in: in, link: f.Link})
		simr.ScheduleActionAt(f.At.Add(f.Dur), &popAct{in: in, link: f.Link})
	}
	for _, s := range plan.Stalls {
		simr.ScheduleActionAt(s.At, &pushAct{in: in, link: s.Link})
		simr.ScheduleActionAt(s.At.Add(s.Dur), &popAct{in: in, link: s.Link})
	}
	for _, d := range plan.Degrades {
		simr.ScheduleActionAt(d.At, &degradeAct{in: in, link: d.Link, factor: d.Factor, on: true})
		simr.ScheduleActionAt(d.At.Add(d.Dur), &degradeAct{in: in, link: d.Link, factor: d.Factor})
	}
	if !plan.Drop.zero() {
		net.SetDropper(in)
	}
	if plan.SampleEvery > 0 && plan.Horizon > 0 {
		simr.ScheduleAction(plan.SampleEvery, &sampleAct{in: in})
	}
	return in, nil
}

// The injector's scheduled transitions are named action types (not
// closures) so pending ones can be serialized into a checkpoint and
// rebuilt on restore; see ckpt.go.
type pushAct struct {
	in   *Injector
	link LinkRef
}

func (a *pushAct) Act() { a.in.push(a.link) }

type popAct struct {
	in   *Injector
	link LinkRef
}

func (a *popAct) Act() { a.in.pop(a.link) }

type degradeAct struct {
	in     *Injector
	link   LinkRef
	factor float64
	on     bool
}

func (a *degradeAct) Act() { a.in.degrade(a.link, a.factor, a.on) }

type sampleAct struct{ in *Injector }

func (a *sampleAct) Act() { a.in.sample() }

// push/pop maintain the down-depth of a link across overlapping flaps
// and stalls; only the 0→1 and 1→0 edges touch the fabric.
func (in *Injector) push(l LinkRef) {
	in.depth[l]++
	if in.depth[l] == 1 {
		in.stats.LinkDowns++
		in.net.SetLinkDown(l.AtSwitch, l.Node, l.Port, true)
	}
}

func (in *Injector) pop(l LinkRef) {
	in.depth[l]--
	if in.depth[l] == 0 {
		in.stats.LinkUps++
		in.net.SetLinkDown(l.AtSwitch, l.Node, l.Port, false)
	}
}

// degrade adds or removes one active factor and reapplies the product
// of whatever remains.
func (in *Injector) degrade(l LinkRef, fac float64, on bool) {
	active := in.factor[l]
	if on {
		active = append(active, fac)
	} else {
		for i, f := range active {
			if f == fac {
				active = append(active[:i], active[i+1:]...)
				break
			}
		}
	}
	in.factor[l] = active
	product := 1.0
	for _, f := range active {
		product *= f
	}
	in.net.SetLinkSlow(l.AtSwitch, l.Node, l.Port, product)
}

// draw is one Bernoulli trial on the class stream. Certain outcomes
// (p <= 0, p >= 1) consume no randomness, so a plan that never needs a
// coin flip leaves its streams untouched.
func draw(rng *sim.RNG, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rng.Float64() < p
}

// DropPacket implements fabric.Dropper.
func (in *Injector) DropPacket(atSwitch, hostFacing bool, node, port int, p *ib.Packet) bool {
	switch {
	case p.Type == ib.CNPPacket:
		if draw(in.rngCNP, in.plan.Drop.CNP) {
			in.stats.DroppedCNP++
			return true
		}
	case p.Type == ib.AckPacket:
		if draw(in.rngAck, in.plan.Drop.Ack) {
			in.stats.DroppedAck++
			return true
		}
	case p.FECN:
		if draw(in.rngFECN, in.plan.Drop.FECN) {
			in.stats.DroppedFECN++
			return true
		}
	default:
		if draw(in.rngData, in.plan.Drop.Data) {
			in.stats.DroppedData++
			return true
		}
	}
	return false
}

// DropCredit implements fabric.Dropper.
func (in *Injector) DropCredit(vl ib.VL, bytes int) bool {
	if draw(in.rngCredit, in.plan.Drop.Credit) {
		in.stats.DroppedCredits++
		return true
	}
	return false
}

// sample records one receive-rate window and re-arms itself until the
// plan horizon.
func (in *Injector) sample() {
	var payload uint64
	for lid := 0; lid < in.net.NumHosts(); lid++ {
		payload += in.net.HCA(ib.LID(lid)).Counters().RxDataPayload
	}
	delta := payload - in.lastPayload
	in.lastPayload = payload
	now := in.net.Sim().Now()
	in.stats.Samples = append(in.stats.Samples, RateSample{
		T:    now,
		Gbps: float64(delta) * 8 / in.plan.SampleEvery.Seconds() / 1e9,
	})
	if next := now.Add(in.plan.SampleEvery); next <= in.plan.Horizon {
		in.net.Sim().ScheduleAction(in.plan.SampleEvery, &sampleAct{in: in})
	}
}

// Stats returns a snapshot of what the injector did, with the recovery
// metric computed from the samples.
func (in *Injector) Stats() *Stats {
	s := in.stats
	s.Samples = append([]RateSample(nil), in.stats.Samples...)
	s.Recovery = s.recovery()
	return &s
}

func firstFaultStart(p *Plan) sim.Time {
	first := sim.MaxTime
	for _, f := range p.Flaps {
		if f.At < first {
			first = f.At
		}
	}
	for _, s := range p.Stalls {
		if s.At < first {
			first = s.At
		}
	}
	for _, d := range p.Degrades {
		if d.At < first {
			first = d.At
		}
	}
	if first == sim.MaxTime {
		first = 0
	}
	return first
}

var _ fabric.Dropper = (*Injector)(nil)
