package fault

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/sim"
)

// Checkpoint action kinds. Link args: B0 = AtSwitch, A0 = Node,
// A1 = Port; degrade adds F0 = factor, B1 = apply (false = revert).
const (
	kindPush    = "fltPush"
	kindPop     = "fltPop"
	kindDegrade = "fltDegrade"
	kindSample  = "fltSample"
)

// linkDepth is one link's overlap depth.
type linkDepth struct {
	Link  LinkRef `json:"link"`
	Depth int     `json:"depth"`
}

// linkFactors is one link's stack of in-flight degrade factors, in
// application order.
type linkFactors struct {
	Link    LinkRef   `json:"link"`
	Factors []float64 `json:"factors"`
}

// injState is the injector's full mutable state: overlap bookkeeping,
// stats (including the sample curve), the sample cursor, and the five
// per-class drop stream positions.
type injState struct {
	Depth       []linkDepth   `json:"depth,omitempty"`
	Factors     []linkFactors `json:"factors,omitempty"`
	Stats       Stats         `json:"stats"`
	LastPayload uint64        `json:"last_payload,omitempty"`
	RNGData     [4]uint64     `json:"rng_data"`
	RNGFECN     [4]uint64     `json:"rng_fecn"`
	RNGCNP      [4]uint64     `json:"rng_cnp"`
	RNGAck      [4]uint64     `json:"rng_ack"`
	RNGCredit   [4]uint64     `json:"rng_credit"`
}

func linkLess(a, b LinkRef) bool {
	if a.AtSwitch != b.AtSwitch {
		return !a.AtSwitch
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Port < b.Port
}

// ExportState returns the injector's mutable state as a package-owned
// JSON blob. Maps are emitted sorted so the blob is deterministic.
func (in *Injector) ExportState() ([]byte, error) {
	st := injState{
		Stats:       in.stats,
		LastPayload: in.lastPayload,
		RNGData:     in.rngData.State(),
		RNGFECN:     in.rngFECN.State(),
		RNGCNP:      in.rngCNP.State(),
		RNGAck:      in.rngAck.State(),
		RNGCredit:   in.rngCredit.State(),
	}
	for l, d := range in.depth {
		if d != 0 {
			st.Depth = append(st.Depth, linkDepth{Link: l, Depth: d})
		}
	}
	sort.Slice(st.Depth, func(a, b int) bool { return linkLess(st.Depth[a].Link, st.Depth[b].Link) })
	for l, fs := range in.factor {
		if len(fs) > 0 {
			st.Factors = append(st.Factors, linkFactors{Link: l, Factors: fs})
		}
	}
	sort.Slice(st.Factors, func(a, b int) bool { return linkLess(st.Factors[a].Link, st.Factors[b].Link) })
	return json.Marshal(&st)
}

// RestoreState overlays an exported blob onto a freshly built injector
// for the same plan. The fabric's own link state (down flags, slow
// factors) is restored separately by the fabric layer; here only the
// injector's bookkeeping and stream positions are overlaid.
func (in *Injector) RestoreState(blob []byte) error {
	var st injState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("fault: decoding injector state: %w", err)
	}
	in.depth = make(map[LinkRef]int, len(st.Depth))
	for _, ld := range st.Depth {
		in.depth[ld.Link] = ld.Depth
	}
	in.factor = make(map[LinkRef][]float64, len(st.Factors))
	for _, lf := range st.Factors {
		in.factor[lf.Link] = append([]float64(nil), lf.Factors...)
	}
	in.stats = st.Stats
	in.stats.Samples = append([]RateSample(nil), st.Stats.Samples...)
	in.lastPayload = st.LastPayload
	in.rngData.SetState(st.RNGData)
	in.rngFECN.SetState(st.RNGFECN)
	in.rngCNP.SetState(st.RNGCNP)
	in.rngAck.SetState(st.RNGAck)
	in.rngCredit.SetState(st.RNGCredit)
	return nil
}

// EncodeAction maps a pending injector-owned action to a checkpoint
// record; ok is false for foreign actions.
func (in *Injector) EncodeAction(a sim.Action) (ckpt.EventRecord, bool) {
	switch t := a.(type) {
	case *pushAct:
		if t.in == in {
			return linkRec(kindPush, t.link), true
		}
	case *popAct:
		if t.in == in {
			return linkRec(kindPop, t.link), true
		}
	case *degradeAct:
		if t.in == in {
			rec := linkRec(kindDegrade, t.link)
			rec.F0 = t.factor
			rec.B1 = t.on
			return rec, true
		}
	case *sampleAct:
		if t.in == in {
			return ckpt.EventRecord{Kind: kindSample}, true
		}
	}
	return ckpt.EventRecord{}, false
}

func linkRec(kind string, l LinkRef) ckpt.EventRecord {
	return ckpt.EventRecord{Kind: kind, B0: l.AtSwitch, A0: int64(l.Node), A1: int64(l.Port)}
}

// DecodeAction rebuilds an action from a record of an injector kind;
// ok is false for foreign kinds.
func (in *Injector) DecodeAction(rec ckpt.EventRecord) (sim.Action, func(*sim.Event), bool, error) {
	link := LinkRef{AtSwitch: rec.B0, Node: int(rec.A0), Port: int(rec.A1)}
	switch rec.Kind {
	case kindPush:
		return &pushAct{in: in, link: link}, nil, true, nil
	case kindPop:
		return &popAct{in: in, link: link}, nil, true, nil
	case kindDegrade:
		return &degradeAct{in: in, link: link, factor: rec.F0, on: rec.B1}, nil, true, nil
	case kindSample:
		return &sampleAct{in: in}, nil, true, nil
	default:
		return nil, nil, false, nil
	}
}
