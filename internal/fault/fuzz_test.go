package fault

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzPlanDecode hardens the plan codec against arbitrary input: Decode
// must never panic, and anything it accepts must validate, re-encode,
// and decode back to the same plan.
func FuzzPlanDecode(f *testing.F) {
	// Seed corpus: the empty plan, each fault family, each failure
	// mode the validator guards, and assorted malformed JSON.
	seeds := []string{
		`{}`,
		`{"seed": 42}`,
		`{"seed": 1, "horizon_ps": 1000000000, "drop": {"cnp": 0.5}}`,
		`{"seed": 1, "horizon_ps": 1000000, "flaps": [{"link": {"at_switch": true, "node": 0, "port": 1}, "at_ps": 100, "duration_ps": 50}]}`,
		`{"seed": 1, "horizon_ps": 1000000, "stalls": [{"link": {"at_switch": true, "node": 2, "port": 3}, "at_ps": 10, "duration_ps": 10}]}`,
		`{"seed": 1, "horizon_ps": 1000000, "degrades": [{"link": {"node": 4}, "at_ps": 10, "duration_ps": 10, "factor": 2.5}]}`,
		`{"seed": 1, "horizon_ps": 1000000, "sample_every_ps": 1000, "drop": {"data": 0.01, "fecn": 0.02, "cnp": 0.3, "ack": 0.05, "credit": 0.01}}`,
		`{"drop": {"cnp": 1.5}}`,
		`{"drop": {"data": -1}}`,
		`{"flaps": [{"link": {"node": 0, "port": 7}, "at_ps": 1, "duration_ps": 1}]}`,
		`{"degrades": [{"link": {"node": 0}, "at_ps": 1, "duration_ps": 1, "factor": 0.5}]}`,
		`{"sample_every_ps": 100}`,
		`{"unknown_field": true}`,
		`{"seed": "not a number"}`,
		`{`,
		``,
		`null`,
		`[1,2,3]`,
		`{"flaps": [{"at_ps": -5, "duration_ps": -1}]}`,
		`{"seed": 18446744073709551615}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		p, err := Decode(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted plans are well-formed: they validate (Decode already
		// did range checks), encode, and round-trip exactly.
		if err := p.Validate(nil); err != nil {
			t.Fatalf("decoded plan fails validation: %v\n%s", err, data)
		}
		var buf bytes.Buffer
		if err := p.Encode(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		q, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v\n%s", err, buf.String())
		}
		var buf2 bytes.Buffer
		if err := q.Encode(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("plan not stable under re-encode:\n%s\n%s", buf.String(), buf2.String())
		}
	})
}
