package fault

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/topo"
)

func TestZeroPlan(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Zero() {
		t.Fatal("nil plan not zero")
	}
	p := &Plan{Seed: 7, Horizon: sim.Time(sim.Second), SampleEvery: sim.Microsecond}
	if !p.Zero() {
		t.Fatal("seed/horizon/sampling alone should not make a plan non-zero")
	}
	p.Drop.CNP = 0.5
	if p.Zero() {
		t.Fatal("drop probability ignored by Zero")
	}
	p = &Plan{Flaps: []Flap{{At: 1, Dur: 1}}}
	if p.Zero() {
		t.Fatal("flap ignored by Zero")
	}
}

func TestValidateRejects(t *testing.T) {
	links := []LinkRef{{Node: 0}, {AtSwitch: true, Node: 0, Port: 1}}
	cases := []struct {
		name string
		plan Plan
	}{
		{"prob out of range", Plan{Drop: DropProbs{CNP: 1.5}}},
		{"negative prob", Plan{Drop: DropProbs{Data: -0.1}}},
		{"degrade factor <= 1", Plan{Degrades: []Degrade{{Link: links[0], At: 1, Dur: 1, Factor: 1}}}},
		{"empty window", Plan{Flaps: []Flap{{Link: links[0], At: 1, Dur: 0}}}},
		{"past horizon", Plan{Horizon: 10, Flaps: []Flap{{Link: links[0], At: 5, Dur: 20}}}},
		{"unknown link", Plan{Flaps: []Flap{{Link: LinkRef{Node: 99}, At: 1, Dur: 1}}}},
		{"host with port", Plan{Flaps: []Flap{{Link: LinkRef{Node: 0, Port: 3}, At: 1, Dur: 1}}}},
		{"stall on host", Plan{Stalls: []Stall{{Link: links[0], At: 1, Dur: 1}}}},
		{"sampling without horizon", Plan{SampleEvery: 5}},
	}
	for _, c := range cases {
		if err := c.plan.Validate(links); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := Decode(strings.NewReader(`{"seed": 1, "flapz": []}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := &Plan{
		Seed:    42,
		Horizon: sim.Time(sim.Millisecond),
		Flaps:   []Flap{{Link: LinkRef{AtSwitch: true, Node: 0, Port: 2}, At: 1000, Dur: 5000}},
		Degrades: []Degrade{
			{Link: LinkRef{Node: 1}, At: 2000, Dur: 3000, Factor: 4},
		},
		Drop:        DropProbs{CNP: 0.25, Credit: 0.01},
		SampleEvery: sim.Microsecond,
	}
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip changed the plan:\n%+v\n%+v", p, got)
	}
}

func TestFabricLinks(t *testing.T) {
	tp, _ := topo.SingleSwitch(2)
	links := FabricLinks(tp)
	want := []LinkRef{
		{Node: 0}, {Node: 1},
		{AtSwitch: true, Node: 0, Port: 0}, {AtSwitch: true, Node: 0, Port: 1},
	}
	if !reflect.DeepEqual(links, want) {
		t.Fatalf("links = %+v, want %+v", links, want)
	}
}

func TestSynthDeterministicAndScaled(t *testing.T) {
	tp, _ := topo.FatTree(4)
	links := FabricLinks(tp)
	cfg := SynthConfig{Seed: 9, Intensity: 0.8, Links: links, Horizon: sim.Time(sim.Millisecond), SampleEvery: 20 * sim.Microsecond}
	a, err := Synth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("synth not deterministic")
	}
	if a.Zero() {
		t.Fatal("intensity 0.8 synthesized a zero plan")
	}
	if err := a.Validate(links); err != nil {
		t.Fatal(err)
	}
	if a.LastFaultEnd() >= cfg.Horizon {
		t.Fatalf("faults run to the horizon: %v", a.LastFaultEnd())
	}

	z, err := Synth(SynthConfig{Seed: 9, Intensity: 0, Links: links, Horizon: sim.Time(sim.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if !z.Zero() {
		t.Fatalf("intensity 0 plan not zero: %+v", z)
	}
}

// flood is a minimal unbounded-ish source for injector tests.
type flood struct {
	src, dst  ib.LID
	remaining int
	id        uint64
}

func (f *flood) Pull(now sim.Time) (*ib.Packet, sim.Time) {
	if f.remaining == 0 {
		return nil, sim.MaxTime
	}
	f.remaining--
	f.id++
	return &ib.Packet{ID: f.id, Type: ib.DataPacket, Src: f.src, Dst: f.dst, PayloadBytes: ib.MTU}, 0
}

func buildNet(t *testing.T) *fabric.Network {
	t.Helper()
	tp, _ := topo.SingleSwitch(2)
	r, err := topo.ComputeLFT(tp)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fabric.DefaultConfig()
	cfg.Check = true
	n, err := fabric.New(sim.New(), tp, r, cfg, fabric.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestInjectorEndToEnd(t *testing.T) {
	n := buildNet(t)
	aud := n.EnableAudit()
	plan := &Plan{
		Seed:    11,
		Horizon: sim.Time(10 * sim.Millisecond),
		Flaps:   []Flap{{Link: LinkRef{AtSwitch: true, Node: 0, Port: 1}, At: sim.Time(20 * sim.Microsecond), Dur: 50 * sim.Microsecond}},
		Drop:    DropProbs{Data: 0.2},
	}
	inj, err := NewInjector(n, plan)
	if err != nil {
		t.Fatal(err)
	}
	n.HCA(0).SetSource(&flood{src: 0, dst: 1, remaining: 200})
	n.Start()
	n.Sim().Run()

	st := inj.Stats()
	if st.LinkDowns != 1 || st.LinkUps != 1 {
		t.Fatalf("downs=%d ups=%d, want 1/1", st.LinkDowns, st.LinkUps)
	}
	if st.DroppedData == 0 {
		t.Fatal("20% data loss dropped nothing over 200 packets")
	}
	if got := uint64(aud.DroppedPackets); got != st.DroppedPackets() {
		t.Fatalf("audit dropped %d, injector says %d", got, st.DroppedPackets())
	}
	rx := n.HCA(1).Counters().RxPackets
	if rx+st.DroppedPackets() != 200 {
		t.Fatalf("rx %d + dropped %d != 200", rx, st.DroppedPackets())
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	run := func() *Stats {
		n := buildNet(t)
		plan := &Plan{
			Seed:    3,
			Horizon: sim.Time(10 * sim.Millisecond),
			Flaps:   []Flap{{Link: LinkRef{Node: 0}, At: sim.Time(30 * sim.Microsecond), Dur: 40 * sim.Microsecond}},
			Drop:    DropProbs{Data: 0.1, Credit: 0.05},
		}
		inj, err := NewInjector(n, plan)
		if err != nil {
			t.Fatal(err)
		}
		n.HCA(0).SetSource(&flood{src: 0, dst: 1, remaining: 300})
		n.Start()
		n.Sim().Run()
		return inj.Stats()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same plan, different stats:\n%+v\n%+v", a, b)
	}
}

func TestInjectorRejectsZeroPlan(t *testing.T) {
	n := buildNet(t)
	if _, err := NewInjector(n, &Plan{Seed: 1}); err == nil {
		t.Fatal("zero plan accepted")
	}
}

func TestOverlappingFaultsNest(t *testing.T) {
	n := buildNet(t)
	l := LinkRef{AtSwitch: true, Node: 0, Port: 1}
	plan := &Plan{
		Seed:    5,
		Horizon: sim.Time(10 * sim.Millisecond),
		Flaps: []Flap{
			{Link: l, At: sim.Time(10 * sim.Microsecond), Dur: 100 * sim.Microsecond},
			{Link: l, At: sim.Time(40 * sim.Microsecond), Dur: 30 * sim.Microsecond},
		},
		Stalls: []Stall{{Link: l, At: sim.Time(60 * sim.Microsecond), Dur: 100 * sim.Microsecond}},
	}
	inj, err := NewInjector(n, plan)
	if err != nil {
		t.Fatal(err)
	}
	n.HCA(0).SetSource(&flood{src: 0, dst: 1, remaining: 100})
	n.Start()
	n.Sim().Run()
	st := inj.Stats()
	// Three overlapping windows on one link must collapse to a single
	// down/up edge pair.
	if st.LinkDowns != 1 || st.LinkUps != 1 {
		t.Fatalf("downs=%d ups=%d, want 1/1 for nested faults", st.LinkDowns, st.LinkUps)
	}
	if got := n.HCA(1).Counters().RxPackets; got != 100 {
		t.Fatalf("delivered %d, want 100", got)
	}
	if err := n.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

func TestRateSamplerAndRecovery(t *testing.T) {
	n := buildNet(t)
	plan := &Plan{
		Seed:        2,
		Horizon:     sim.Time(400 * sim.Microsecond),
		Flaps:       []Flap{{Link: LinkRef{Node: 0}, At: sim.Time(100 * sim.Microsecond), Dur: 60 * sim.Microsecond}},
		SampleEvery: 20 * sim.Microsecond,
	}
	inj, err := NewInjector(n, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Effectively unbounded within the horizon; the source outlives it.
	n.HCA(0).SetSource(&flood{src: 0, dst: 1, remaining: 1 << 20})
	n.Start()
	n.Sim().RunUntil(plan.Horizon)

	st := inj.Stats()
	if len(st.Samples) < 10 {
		t.Fatalf("only %d samples", len(st.Samples))
	}
	if st.Recovery <= 0 {
		t.Fatalf("recovery = %v, want positive (flap ends mid-run, traffic resumes)", st.Recovery)
	}
	// The outage must be visible in the curve: some mid-run window well
	// below the pre-fault baseline.
	base := st.Samples[0].Gbps
	var dipped bool
	for _, s := range st.Samples {
		if s.T > plan.Flaps[0].At && s.Gbps < base/2 {
			dipped = true
		}
	}
	if !dipped {
		t.Fatal("link outage invisible in the rate curve")
	}
}

func TestRecoveryMetricEdgeCases(t *testing.T) {
	s := &Stats{}
	if got := s.recovery(); got != 0 {
		t.Fatalf("no samples: recovery %v, want 0", got)
	}
	s = &Stats{
		FirstFaultStart: 100,
		LastFaultEnd:    200,
		Samples: []RateSample{
			{T: 50, Gbps: 10}, {T: 150, Gbps: 1}, {T: 250, Gbps: 2}, {T: 350, Gbps: 3},
		},
	}
	if got := s.recovery(); got != -1 {
		t.Fatalf("never recovered: recovery %v, want -1", got)
	}
	s.Samples = append(s.Samples, RateSample{T: 450, Gbps: 9.5})
	if got := s.recovery(); got != 250 {
		t.Fatalf("recovery %v, want 250", got)
	}
}
