package fault

import "repro/internal/sim"

// RateSample is one window of the aggregate receive rate across all
// hosts (data payload only).
type RateSample struct {
	T    sim.Time `json:"t_ps"`
	Gbps float64  `json:"gbps"`
}

// Stats is what one injector did during a run: drop tallies per class,
// link-state transitions, and (when the plan sampled rates) the
// receive-rate curve with a recovery metric derived from it.
type Stats struct {
	DroppedData    uint64 `json:"dropped_data"`
	DroppedFECN    uint64 `json:"dropped_fecn"`
	DroppedCNP     uint64 `json:"dropped_cnp"`
	DroppedAck     uint64 `json:"dropped_ack"`
	DroppedCredits uint64 `json:"dropped_credits"`
	LinkDowns      int    `json:"link_downs"`
	LinkUps        int    `json:"link_ups"`

	// FirstFaultStart/LastFaultEnd bound the scheduled-fault window
	// (zero when the plan only drops probabilistically).
	FirstFaultStart sim.Time `json:"first_fault_start_ps,omitempty"`
	LastFaultEnd    sim.Time `json:"last_fault_end_ps,omitempty"`

	// Samples is the receive-rate curve (present only when the plan set
	// SampleEvery).
	Samples []RateSample `json:"samples,omitempty"`

	// Recovery is the time from the last scheduled fault's end until
	// the aggregate receive rate first regained 90% of its pre-fault
	// baseline: -1 means it never recovered within the horizon, 0 means
	// not applicable (no samples or no scheduled faults).
	Recovery sim.Duration `json:"recovery_ps"`
}

// DroppedPackets sums the packet classes (credit updates excluded: they
// are deferred, not lost).
func (s *Stats) DroppedPackets() uint64 {
	return s.DroppedData + s.DroppedFECN + s.DroppedCNP + s.DroppedAck
}

// Recovered reports whether the run ended recovered: either the
// receive rate regained the recovery threshold after the last
// scheduled fault (Recovery > 0), or there was nothing to recover from
// (Recovery == 0: no scheduled faults or no samples). A nil receiver —
// a run without an injector at all — is trivially recovered. Only
// Recovery < 0 (never regained within the horizon) counts as failed;
// the degradation and tournament reducers share this reading.
func (s *Stats) Recovered() bool {
	return s == nil || s.Recovery >= 0
}

// recoveryThreshold is the fraction of the pre-fault baseline rate a
// post-fault sample must reach to count as recovered.
const recoveryThreshold = 0.9

func (s *Stats) recovery() sim.Duration {
	if len(s.Samples) == 0 || s.LastFaultEnd == 0 {
		return 0
	}
	// Baseline: mean rate over the windows fully before the first
	// fault; when faults start before the first full window, fall back
	// to the peak rate ever seen so the threshold stays meaningful.
	var base float64
	var n int
	for _, smp := range s.Samples {
		if smp.T <= s.FirstFaultStart {
			base += smp.Gbps
			n++
		}
	}
	if n > 0 {
		base /= float64(n)
	} else {
		for _, smp := range s.Samples {
			if smp.Gbps > base {
				base = smp.Gbps
			}
		}
	}
	if base == 0 {
		return 0
	}
	for _, smp := range s.Samples {
		if smp.T >= s.LastFaultEnd && smp.Gbps >= recoveryThreshold*base {
			return smp.T.Sub(s.LastFaultEnd)
		}
	}
	return -1
}
