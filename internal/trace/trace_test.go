package trace

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestProbeSampling(t *testing.T) {
	simr := sim.New()
	rec := NewRecorder(simr, sim.Microsecond)
	n := 0.0
	s := rec.Probe("count", func() float64 { n++; return n })
	rec.Start(sim.Time(10 * sim.Microsecond))
	simr.Run()
	if len(s.Values) != 10 {
		t.Fatalf("samples = %d, want 10", len(s.Values))
	}
	for i, v := range s.Values {
		if v != float64(i+1) {
			t.Fatalf("sample %d = %v", i, v)
		}
	}
	if s.At(0) != sim.Time(sim.Microsecond) || s.At(9) != sim.Time(10*sim.Microsecond) {
		t.Fatalf("sample times wrong: %v %v", s.At(0), s.At(9))
	}
}

func TestRateProbe(t *testing.T) {
	simr := sim.New()
	rec := NewRecorder(simr, sim.Millisecond)
	var counter uint64
	s := rec.RateProbe("rate", func() uint64 { return counter })
	// 1000 bytes per millisecond = 8 Mbit/s.
	for i := 1; i <= 5; i++ {
		simr.ScheduleAt(sim.Time(i)*sim.Time(sim.Millisecond)-1, func() { counter += 1000 })
	}
	rec.Start(sim.Time(5 * sim.Millisecond))
	simr.Run()
	if len(s.Values) != 5 {
		t.Fatalf("samples = %d", len(s.Values))
	}
	for i, v := range s.Values {
		if math.Abs(v-8e6) > 1 {
			t.Fatalf("sample %d = %v, want 8e6", i, v)
		}
	}
}

func TestSeriesStats(t *testing.T) {
	s := &Series{Values: []float64{3, 1, 2}}
	if s.Min() != 1 || s.Max() != 3 || s.Mean() != 2 {
		t.Fatalf("stats = %v/%v/%v", s.Min(), s.Max(), s.Mean())
	}
	empty := &Series{}
	if empty.Min() != 0 || empty.Max() != 0 || empty.Mean() != 0 {
		t.Fatal("empty stats not zero")
	}
}

func TestWriteCSV(t *testing.T) {
	simr := sim.New()
	rec := NewRecorder(simr, sim.Microsecond)
	rec.Probe("a", func() float64 { return 1.5 })
	rec.Probe("b,quoted", func() float64 { return 2 })
	rec.Start(sim.Time(3 * sim.Microsecond))
	simr.Run()
	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != `time_s,a,"b,quoted"` {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "1.5") || !strings.Contains(lines[1], ",2") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteCSVNoProbes(t *testing.T) {
	// A recorder nothing was registered on still writes a valid (empty)
	// table: header only, no error, no panic.
	rec := NewRecorder(sim.New(), sim.Microsecond)
	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "time_s\n" {
		t.Fatalf("output = %q", sb.String())
	}
}

func TestWriteCSVNoSamples(t *testing.T) {
	// Probes registered but the run never reached a sample point: the
	// header names every series and there are no data rows.
	simr := sim.New()
	rec := NewRecorder(simr, sim.Millisecond)
	rec.Probe("a", func() float64 { return 1 })
	rec.Probe("b", func() float64 { return 2 })
	rec.Start(sim.Time(10 * sim.Microsecond)) // shorter than one interval
	simr.Run()
	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "time_s,a,b\n" {
		t.Fatalf("output = %q", sb.String())
	}
}

func TestSeriesAtBoundaries(t *testing.T) {
	s := &Series{Interval: sim.Microsecond, Start: sim.Time(5 * sim.Microsecond)}
	// The first sample lands one interval after Start, independent of
	// how many values were recorded.
	if got := s.At(0); got != sim.Time(6*sim.Microsecond) {
		t.Fatalf("At(0) = %v", got)
	}
	s.Values = []float64{1, 2, 3}
	if got := s.At(len(s.Values) - 1); got != sim.Time(8*sim.Microsecond) {
		t.Fatalf("At(last) = %v", got)
	}
	// A zero-started series indexes the bare grid.
	z := &Series{Interval: sim.Millisecond}
	if z.At(0) != sim.Time(sim.Millisecond) || z.At(9) != sim.Time(10*sim.Millisecond) {
		t.Fatalf("zero-start grid: %v %v", z.At(0), z.At(9))
	}
}

func TestRecorderGuards(t *testing.T) {
	simr := sim.New()
	rec := NewRecorder(simr, sim.Microsecond)
	rec.Probe("a", func() float64 { return 0 })
	rec.Start(sim.Time(sim.Microsecond))
	mustPanic(t, func() { rec.Probe("late", func() float64 { return 0 }) })
	mustPanic(t, func() { rec.Start(sim.Time(sim.Microsecond)) })
	mustPanic(t, func() { NewRecorder(simr, 0) })
}

func TestStartBeyondHorizonSamplesNothing(t *testing.T) {
	simr := sim.New()
	rec := NewRecorder(simr, sim.Millisecond)
	s := rec.Probe("a", func() float64 { return 1 })
	rec.Start(sim.Time(100 * sim.Microsecond)) // shorter than one interval
	simr.Run()
	if len(s.Values) != 0 {
		t.Fatalf("samples = %d", len(s.Values))
	}
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}
