// Package trace records time series from a running simulation: any
// float-valued probe sampled on a fixed grid, and rate probes that
// differentiate cumulative byte counters into bit rates. The recorder
// drives itself from simulator events, so it works with any model built
// on internal/sim; WriteCSV emits the collected series for plotting.
package trace

import (
	"io"
	"strconv"

	"repro/internal/sim"
)

// Series is one recorded signal: len(Values) samples taken at
// Start + (i+1)*Interval.
type Series struct {
	Name     string
	Interval sim.Duration
	Start    sim.Time
	Values   []float64
}

// At returns the sample time of Values[i].
func (s *Series) At(i int) sim.Time {
	return s.Start.Add(sim.Duration(i+1) * s.Interval)
}

// Min, Max and Mean summarize the series; they return zeros for an
// empty series.
func (s *Series) Min() float64 { m, _, _ := s.stats(); return m }

// Max returns the largest sample.
func (s *Series) Max() float64 { _, m, _ := s.stats(); return m }

// Mean returns the arithmetic mean of the samples.
func (s *Series) Mean() float64 { _, _, m := s.stats(); return m }

func (s *Series) stats() (min, max, mean float64) {
	if len(s.Values) == 0 {
		return 0, 0, 0
	}
	min, max = s.Values[0], s.Values[0]
	var sum float64
	for _, v := range s.Values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	return min, max, sum / float64(len(s.Values))
}

// probe is one registered signal source.
type probe struct {
	series *Series
	sample func() float64
}

// Recorder samples registered probes on a fixed interval.
type Recorder struct {
	simr     *sim.Simulator
	interval sim.Duration
	probes   []probe
	running  bool
}

// NewRecorder creates a recorder sampling every interval on simr.
func NewRecorder(simr *sim.Simulator, interval sim.Duration) *Recorder {
	if interval <= 0 {
		panic("trace: non-positive sampling interval")
	}
	return &Recorder{simr: simr, interval: interval}
}

// Probe registers a gauge: fn is called at every sample point and its
// value recorded. Registration must happen before Start.
func (r *Recorder) Probe(name string, fn func() float64) *Series {
	if r.running {
		panic("trace: probe added after Start")
	}
	s := &Series{Name: name, Interval: r.interval, Start: r.simr.Now()}
	r.probes = append(r.probes, probe{series: s, sample: fn})
	return s
}

// RateProbe registers a rate signal derived from a cumulative byte
// counter: each sample is the increase since the previous sample,
// converted to bits per second.
func (r *Recorder) RateProbe(name string, counter func() uint64) *Series {
	prev := counter()
	secs := r.interval.Seconds()
	return r.Probe(name, func() float64 {
		cur := counter()
		delta := float64(cur-prev) * 8 / secs
		prev = cur
		return delta
	})
}

// Start schedules sampling until the given time (inclusive of the last
// grid point not after it).
func (r *Recorder) Start(until sim.Time) {
	if r.running {
		panic("trace: started twice")
	}
	r.running = true
	var tick func()
	tick = func() {
		for _, p := range r.probes {
			p.series.Values = append(p.series.Values, p.sample())
		}
		if r.simr.Now().Add(r.interval) <= until {
			r.simr.Schedule(r.interval, tick)
		}
	}
	if r.simr.Now().Add(r.interval) <= until {
		r.simr.Schedule(r.interval, tick)
	}
}

// Series returns every registered series in registration order.
func (r *Recorder) Series() []*Series {
	out := make([]*Series, len(r.probes))
	for i, p := range r.probes {
		out[i] = p.series
	}
	return out
}

// WriteCSV writes all series as one table: a time column in seconds
// followed by one column per series. Series are aligned on their common
// sampling grid; shorter series pad with empty cells. A recorder with no
// probes, or one that never reached a sample point, writes just the
// header — an empty table, not an error.
func (r *Recorder) WriteCSV(w io.Writer) error {
	series := r.Series()
	if _, err := io.WriteString(w, "time_s"); err != nil {
		return err
	}
	maxLen := 0
	for _, s := range series {
		if _, err := io.WriteString(w, ","+csvEscape(s.Name)); err != nil {
			return err
		}
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for i := 0; i < maxLen; i++ {
		row := strconv.FormatFloat(series[0].At(i).Seconds(), 'g', 10, 64)
		for _, s := range series {
			row += ","
			if i < len(s.Values) {
				row += strconv.FormatFloat(s.Values[i], 'g', 8, 64)
			}
		}
		if _, err := io.WriteString(w, row+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// csvEscape quotes a field when it contains separators.
func csvEscape(s string) string {
	for _, c := range s {
		if c == ',' || c == '"' || c == '\n' {
			return strconv.Quote(s)
		}
	}
	return s
}
