package ibcc

import (
	"strings"
	"testing"
)

// The facade is a thin re-export layer; this smoke test pins that every
// public entry point is wired to the right implementation.
func TestFacadeSmoke(t *testing.T) {
	s := DefaultScenario(8)
	s.Warmup = 200 * Microsecond
	s.Measure = 600 * Microsecond

	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.TotalGbps <= 0 || res.Events == 0 {
		t.Fatalf("empty result: %+v", res.Summary)
	}

	in, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	rec := in.AttachStandardTrace(100 * Microsecond)
	if in.Execute() == nil {
		t.Fatal("Execute returned nil")
	}
	if len(rec.Series()) == 0 {
		t.Fatal("no trace series")
	}

	if p := PaperCCParams(); p.CCTILimit != 127 || p.Threshold != 15 {
		t.Fatalf("PaperCCParams = %+v", p)
	}
	if got := PaperPValues(); len(got) != 11 {
		t.Fatalf("PaperPValues = %v", got)
	}
	if got := PaperLifetimes(1); len(got) != 8 || got[0] != 10*Millisecond {
		t.Fatalf("PaperLifetimes = %v", got)
	}
	if got := Seeds(3); len(got) != 3 || got[2] != 3 {
		t.Fatalf("Seeds = %v", got)
	}
}

func TestFacadeSweepsAndPrinting(t *testing.T) {
	s := DefaultScenario(8)
	s.Warmup = 200 * Microsecond
	s.Measure = 600 * Microsecond

	pts, err := RunWindySweep(s, 100, []int{60})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	PrintWindy(&sb, "test", 100, pts)
	if !strings.Contains(sb.String(), "Figure test") {
		t.Fatalf("PrintWindy output: %q", sb.String())
	}

	mv, err := RunMovingSweep(s, []Duration{300 * Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	PrintMoving(&sb, "test", "label", mv)
	if !strings.Contains(sb.String(), "label") {
		t.Fatalf("PrintMoving output: %q", sb.String())
	}

	m, err := RunSeeds(s, Seeds(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Total.N() != 2 {
		t.Fatalf("RunSeeds n = %d", m.Total.N())
	}

	tab, err := RunTableII(s)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	tab.Print(&sb)
	if !strings.Contains(sb.String(), "Table II") {
		t.Fatal("TableII print wrong")
	}
}
