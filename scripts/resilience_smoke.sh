#!/bin/sh
# Crash-safety smoke over the CLIs (make resilience runs the Go suites
# first; this script is the end-to-end half):
#
#   1. ibccsim: checkpoint on a cadence, SIGKILL the process mid-flight,
#      resume from the newest checkpoint, and require the summary line
#      to be byte-identical to an uninterrupted run's.
#   2. paperbench: SIGKILL a sweep mid-flight, resume from its artifact
#      store, and require the final artifact set to equal the one an
#      uninterrupted sweep produces.
#
# Both kills are kill -9 — no handler runs, so what survives is exactly
# what the atomic-write discipline put on disk.
set -eu

GO=${GO:-go}
T=$(mktemp -d)
trap 'rm -rf "$T"' EXIT

"$GO" build -o "$T/bin/" ./cmd/ibccsim ./cmd/paperbench ./cmd/cctinspect

# --- 1. Single run: checkpoint, kill -9, resume, identical summary. ---
RUN="-radix 8 -fracb 100 -p 60 -warmup 200us -measure 10ms -q"
"$T/bin/ibccsim" $RUN > "$T/uninterrupted.txt"

"$T/bin/ibccsim" $RUN -ckpt-every 100us -ckpt-dir "$T/ck" &
pid=$!
i=0
while [ -z "$(ls "$T/ck" 2>/dev/null)" ] && [ $i -lt 200 ]; do
    sleep 0.05
    i=$((i + 1))
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
if [ -z "$(ls "$T/ck" 2>/dev/null)" ]; then
    echo "resilience: no checkpoint written before the kill" >&2
    exit 1
fi

"$T/bin/cctinspect" -ckpt "$T/ck"
"$T/bin/ibccsim" $RUN -resume-from "$T/ck" > "$T/resumed.txt"
if ! cmp -s "$T/uninterrupted.txt" "$T/resumed.txt"; then
    echo "resilience: resumed summary differs from the uninterrupted run:" >&2
    diff "$T/uninterrupted.txt" "$T/resumed.txt" >&2 || true
    exit 1
fi
echo "resilience: ibccsim kill -9 + resume reproduces the uninterrupted run"

# --- 2. Sweep: kill -9 mid-sweep, resume, identical artifact set. ---
SWEEP="-radix 8 -exp fig5 -seeds 2 -jobs 1"
"$T/bin/paperbench" $SWEEP -out "$T/full" > /dev/null

"$T/bin/paperbench" $SWEEP -out "$T/cut" > /dev/null 2>&1 &
pid=$!
i=0
while [ "$(ls "$T/cut" 2>/dev/null | grep -c "\.json$" || true)" -lt 1 ] && [ $i -lt 200 ]; do
    sleep 0.05
    i=$((i + 1))
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

"$T/bin/paperbench" $SWEEP -resume-from "$T/cut" > /dev/null
(cd "$T/full" && ls ./*.json | grep -v MANIFEST | sort) > "$T/full.list"
(cd "$T/cut" && ls ./*.json | grep -v MANIFEST | sort) > "$T/cut.list"
if ! cmp -s "$T/full.list" "$T/cut.list"; then
    echo "resilience: resumed sweep's artifact set differs from the uninterrupted sweep's:" >&2
    diff "$T/full.list" "$T/cut.list" >&2 || true
    exit 1
fi
if [ -d "$T/cut/quarantine" ] && [ -n "$(ls "$T/cut/quarantine" 2>/dev/null)" ]; then
    echo "resilience: resume quarantined artifacts unexpectedly:" >&2
    ls "$T/cut/quarantine" >&2
    exit 1
fi
echo "resilience: paperbench kill -9 + resume converges on the uninterrupted artifact set"
