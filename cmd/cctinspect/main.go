// Command cctinspect prints how the congestion control parameters map to
// concrete behaviour: the CCT-indexed injection rate delays and effective
// flow rates, the threshold weight mapping, and the recovery timer — a
// quick way to sanity-check a parameter set before simulating it.
package main

import (
	"flag"
	"fmt"

	"repro/internal/cc"
	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/sim"
)

func main() {
	var (
		limit  = flag.Int("limit", 127, "CCTI limit")
		timer  = flag.Int("timer", 150, "CCTI timer (units of 1.024us)")
		weight = flag.Int("threshold", 15, "threshold weight 0-15")
		every  = flag.Int("every", 8, "print every n-th CCT row")
	)
	flag.Parse()

	p := cc.PaperParams()
	p.CCTILimit = uint16(*limit)
	p.CCTITimer = uint16(*timer)
	p.Threshold = uint8(*weight)
	if err := p.Validate(); err != nil {
		fmt.Println("invalid parameters:", err)
		return
	}
	cfg := fabric.DefaultConfig()
	wire := ib.MTU + ib.HeaderBytes
	pktTime := cfg.LinkRate.TxTime(wire)

	fmt.Printf("parameters: %v\n", p)
	fmt.Printf("MTU packet: %d B payload, %d B wire, %v serialization at %.1f Gbps\n\n",
		ib.MTU, wire, pktTime, cfg.LinkRate.Gbps())

	fmt.Println("CCT (injection rate delay per index):")
	fmt.Printf("  %5s %12s %14s %10s\n", "CCTI", "IRD", "delay/packet", "flow rate")
	for i := 0; i <= int(p.CCTILimit); i += *every {
		ird := p.CCT[i]
		delay := sim.Duration(ird) * pktTime
		rate := cfg.LinkRate.Gbps() / float64(1+ird)
		fmt.Printf("  %5d %12d %14v %8.3fG\n", i, ird, delay, rate)
	}
	if int(p.CCTILimit)%*every != 0 {
		ird := p.CCT[p.CCTILimit]
		fmt.Printf("  %5d %12d %14v %8.3fG  (limit)\n", p.CCTILimit, ird,
			sim.Duration(ird)*pktTime, cfg.LinkRate.Gbps()/float64(1+ird))
	}

	fmt.Printf("\nrecovery: CCTI timer %d -> one decrement per %v; full recovery from the limit in %v\n",
		p.CCTITimer, sim.Duration(p.CCTITimer)*cc.TimerUnit,
		sim.Duration(int(p.CCTILimit)*int(p.CCTITimer))*cc.TimerUnit)

	fmt.Printf("\nthreshold weights (reference %d B = %dx switch ibuf):\n",
		cfg.SwitchIbufBytes*p.ThresholdRefMultiple, p.ThresholdRefMultiple)
	for w := uint8(1); w <= 15; w++ {
		q := p
		q.Threshold = w
		thr := q.ThresholdBytes(cfg.SwitchIbufBytes)
		marker := "  "
		if w == p.Threshold {
			marker = "->"
		}
		fmt.Printf("  %s weight %2d: mark above %6d B queued (~%d packets)\n",
			marker, w, thr, thr/wire)
	}
}
