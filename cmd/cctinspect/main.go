// Command cctinspect prints how the congestion control parameters map to
// concrete behaviour: the CCT-indexed injection rate delays and effective
// flow rates, the threshold weight mapping, and the recovery timer — a
// quick way to sanity-check a parameter set before simulating it.
//
// With -run it additionally simulates a scenario under the parameter set
// and prints the CCTI-over-time table recorded by the flight-recorder
// event bus: per interval the throttle increments and decrements, the
// number of flows holding congestion state, and the max and mean CCTI.
//
// With -tournament it instead renders a backend-tournament JSON
// artifact (written by paperbench -tournament) as the ranked comparison
// table, and with -report it validates and summarizes a unified
// run-report artifact (written by paperbench -report), rendering an
// embedded tournament table when one is present.
//
// With -ckpt it validates a checkpoint file (or the newest one in a
// directory) and prints its header: scenario, simulated clock, pending
// events by kind, packet custody and digest position.
//
//	cctinspect -threshold 3
//	cctinspect -run -radix 12 -fracb 100 -p 60 -interval 500us
//	cctinspect -run -check    # the same, audited by the invariant checker
//	cctinspect -tournament tour.json
//	cctinspect -report run.json
//	cctinspect -ckpt ckpts/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/cc"
	"repro/internal/check"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tournament"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cctinspect: ")
	var (
		limit    = flag.Int("limit", 127, "CCTI limit")
		timer    = flag.Int("timer", 150, "CCTI timer (units of 1.024us)")
		weight   = flag.Int("threshold", 15, "threshold weight 0-15")
		every    = flag.Int("every", 8, "print every n-th CCT row")
		run      = flag.Bool("run", false, "simulate a scenario and print the CCTI-over-time table")
		radix    = flag.Int("radix", 12, "fat-tree radix of the -run scenario")
		fracB    = flag.Int("fracb", 0, "percent of B nodes in the -run scenario")
		pShare   = flag.Int("p", 0, "hotspot share of B nodes in the -run scenario")
		measure  = flag.Duration("measure", 3*time.Millisecond, "-run measurement window (after a 2ms warmup)")
		interval = flag.Duration("interval", 500*time.Microsecond, "-run table bucket size")
		checkInv = flag.Bool("check", false, "run the -run scenario under the runtime invariant checker; exit non-zero on violations")
		tourn    = flag.String("tournament", "", "render a backend-tournament JSON artifact (from paperbench -tournament) and exit")
		report   = flag.String("report", "", "validate and summarize a run-report JSON artifact (from paperbench -report) and exit; non-zero on schema violations")
		ckptPath = flag.String("ckpt", "", "validate and summarize a checkpoint file (or the newest in a directory) and exit; non-zero on corruption")
	)
	flag.Parse()

	if *ckptPath != "" {
		if err := renderCheckpoint(*ckptPath); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *tourn != "" {
		if err := renderTournament(*tourn); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *report != "" {
		if err := renderReport(*report); err != nil {
			log.Fatal(err)
		}
		return
	}

	p := cc.PaperParams()
	p.CCTILimit = uint16(*limit)
	p.CCTITimer = uint16(*timer)
	p.Threshold = uint8(*weight)
	if err := p.Validate(); err != nil {
		fmt.Println("invalid parameters:", err)
		return
	}
	cfg := fabric.DefaultConfig()
	wire := ib.MTU + ib.HeaderBytes
	pktTime := cfg.LinkRate.TxTime(wire)

	fmt.Printf("parameters: %v\n", p)
	fmt.Printf("MTU packet: %d B payload, %d B wire, %v serialization at %.1f Gbps\n\n",
		ib.MTU, wire, pktTime, cfg.LinkRate.Gbps())

	fmt.Println("CCT (injection rate delay per index):")
	fmt.Printf("  %5s %12s %14s %10s\n", "CCTI", "IRD", "delay/packet", "flow rate")
	for i := 0; i <= int(p.CCTILimit); i += *every {
		ird := p.CCT[i]
		delay := sim.Duration(ird) * pktTime
		rate := cfg.LinkRate.Gbps() / float64(1+ird)
		fmt.Printf("  %5d %12d %14v %8.3fG\n", i, ird, delay, rate)
	}
	if int(p.CCTILimit)%*every != 0 {
		ird := p.CCT[p.CCTILimit]
		fmt.Printf("  %5d %12d %14v %8.3fG  (limit)\n", p.CCTILimit, ird,
			sim.Duration(ird)*pktTime, cfg.LinkRate.Gbps()/float64(1+ird))
	}

	fmt.Printf("\nrecovery: CCTI timer %d -> one decrement per %v; full recovery from the limit in %v\n",
		p.CCTITimer, sim.Duration(p.CCTITimer)*cc.TimerUnit,
		sim.Duration(int(p.CCTILimit)*int(p.CCTITimer))*cc.TimerUnit)

	fmt.Printf("\nthreshold weights (reference %d B = %dx switch ibuf):\n",
		cfg.SwitchIbufBytes*p.ThresholdRefMultiple, p.ThresholdRefMultiple)
	for w := uint8(1); w <= 15; w++ {
		q := p
		q.Threshold = w
		thr := q.ThresholdBytes(cfg.SwitchIbufBytes)
		marker := "  "
		if w == p.Threshold {
			marker = "->"
		}
		fmt.Printf("  %s weight %2d: mark above %6d B queued (~%d packets)\n",
			marker, w, thr, thr/wire)
	}

	if *run {
		fmt.Println()
		if err := runTable(p, *radix, *fracB, *pShare,
			sim.Duration(measure.Nanoseconds())*sim.Nanosecond,
			sim.Duration(interval.Nanoseconds())*sim.Nanosecond, *checkInv); err != nil {
			log.Fatal(err)
		}
	}
}

// renderCheckpoint validates a checkpoint (magic, CRC, schema) and
// prints its header — the fast way to answer "what run is this, how far
// along, and is the file intact" before resuming from it.
func renderCheckpoint(path string) error {
	file, err := ckpt.Latest(path)
	if err != nil {
		return err
	}
	snap, err := ckpt.Load(file)
	if err != nil {
		return err
	}
	var s core.Scenario
	if err := json.Unmarshal(snap.Scenario, &s); err != nil {
		return fmt.Errorf("%s: scenario: %w", file, err)
	}
	backend := snap.Backend
	if backend == "" {
		backend = "(cc off)"
	}
	fmt.Printf("checkpoint: %s (version %d, CRC ok)\n", file, snap.Version)
	fmt.Printf("  scenario : %s — radix %d, seed %d, backend %s\n", s.Name, s.Radix, s.Seed, backend)
	fmt.Printf("  clock    : t=%v, next seq %d, %d events processed\n",
		snap.Kernel.Now, snap.Kernel.Seq, snap.Kernel.Processed)
	kinds := map[string]int{}
	for _, e := range snap.Events {
		kinds[e.Kind]++
	}
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	fmt.Printf("  pending  : %d events, %d packets in custody\n", len(snap.Events), len(snap.Pkts))
	for _, k := range names {
		fmt.Printf("             %-10s %d\n", k, kinds[k])
	}
	if d := snap.Digest; d != nil {
		fmt.Printf("  digest   : %016x after %d records\n", d.Sum, d.Records)
	}
	return nil
}

// renderTournament reads a tournament JSON artifact and prints its
// ranked comparison table.
func renderTournament(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tab tournament.Table
	if err := json.Unmarshal(raw, &tab); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(tab.Cells) == 0 {
		return fmt.Errorf("%s: no tournament cells", path)
	}
	tournament.Print(os.Stdout, &tab)
	return nil
}

// renderReport validates a run-report artifact and prints its summary:
// orchestration stats, telemetry aggregates, the kernel-bench trend,
// and — for tournament reports — the embedded ranked table.
func renderReport(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rep, err := telemetry.ValidateReport(raw)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("run report: %s (%s), kind %s, scenario %s radix %d seeds %d\n",
		path, rep.GeneratedAt, rep.Kind, rep.Name, rep.Radix, rep.Seeds)
	if st := rep.Sweep; st != nil {
		fmt.Printf("  sweep    : %d/%d jobs (%d failed, %d cached), %d events in %.0f ms (%.1fM events/s), %d workers at %.0f%% util\n",
			st.Done, st.Total, st.Failed, st.Cached, st.Events, st.ElapsedMS,
			st.EventsPerSec/1e6, st.Workers, 100*st.WorkerUtil)
		fmt.Printf("  job wall : p50 %.1f ms, p99 %.1f ms, max %.1f ms\n",
			st.JobMS.P50, st.JobMS.P99, st.JobMS.Max)
	}
	if tl := rep.Telemetry; tl != nil {
		fmt.Printf("  runs     : %d sampled, message completion p50 %.1f us, p99 %.1f us over %d messages\n",
			tl.Runs, tl.Completion.P50, tl.Completion.P99, tl.Completion.Count)
		for i, p := range tl.HotPorts {
			if i >= 3 {
				break
			}
			kind := "switch"
			if p.HostPort {
				kind = "host"
			}
			fmt.Printf("  hot port : sw%d port%d (%s) peak %.1f KB queued\n", p.Switch, p.Port, kind, p.PeakKB)
		}
	}
	if tr := rep.Trend; tr != nil {
		if tr.Baseline != nil {
			fmt.Printf("  trend    : kernel baseline %.1f ns/event (%s); sweep at %.1f%% of kernel ceiling\n",
				tr.Baseline.NsPerEvent, tr.Baseline.GeneratedAt, tr.SweepVsKernelPct)
		}
		if len(tr.History) > 0 {
			fmt.Printf("  history  : %d bench points, drift %+.1f%% ns/event\n",
				len(tr.History), tr.HistoryDriftPct)
		}
	}
	if len(rep.Tournament) > 0 {
		var tab tournament.Table
		if err := json.Unmarshal(rep.Tournament, &tab); err != nil {
			return fmt.Errorf("%s: tournament payload: %w", path, err)
		}
		fmt.Println()
		tournament.Print(os.Stdout, &tab)
	}
	return nil
}

// runTable simulates the scenario under params and prints the
// CCTI-over-time table from the flight recorder's CCTI log, optionally
// under the runtime invariant checker.
func runTable(params cc.Params, radix, fracB, p int, measure, interval sim.Duration, checkInv bool) error {
	s := core.Default(radix)
	s.CC = params
	s.FracBPct = fracB
	s.PPercent = p
	s.Warmup = 2 * sim.Millisecond
	s.Measure = measure
	in, err := core.Build(s)
	if err != nil {
		return err
	}
	ob := in.Observe(core.ObserveOpts{CCTILog: true})
	var ck *check.Checker
	if checkInv {
		ck = in.Check(core.CheckOpts{Diagnostics: os.Stderr})
	}
	res := in.Execute()
	fmt.Printf("run: %s, B=%d%% p=%d%%, %d CCTI steps recorded (fecn=%d becn=%d maxCCTI=%d)\n",
		s.Name, fracB, p, len(ob.CCTI.Samples),
		res.CCStats.FECNMarked, res.CCStats.BECNReceived, res.CCStats.MaxCCTI)
	if ck != nil {
		rep := ck.Report()
		fmt.Printf("check: %s\n", rep.Summary())
		if err := rep.Err(); err != nil {
			for _, v := range rep.Violations {
				fmt.Printf("  %s\n", v)
			}
			return err
		}
	}
	return ob.CCTI.WriteTable(os.Stdout, interval, sim.Time(0).Add(s.Warmup+s.Measure))
}
