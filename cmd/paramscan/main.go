// Command paramscan explores the sensitivity of the congestion control
// mechanism to its parameters — the tuning problem the paper calls "a
// highly specialized task". Each scan sweeps one parameter on the
// silent-forest scenario (or a windy one with -fracb/-p), holding Table
// I values for the rest, and reports the rates against a shared CC-off
// baseline.
//
//	paramscan                          # all scans at radix 12
//	paramscan -scan threshold -radix 18
//	paramscan -scan timer -fracb 100 -p 60
//	paramscan -jobs 8 -out results/    # parallel workers + JSON artifacts
//
// Each scan's runs (the shared baseline plus one per value) are
// independent and fan out across -jobs workers (0 = one per CPU) with
// bit-identical tables to a serial run; -out persists every result as
// a fingerprint-keyed JSON artifact and resumes from it on re-run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/cliflag"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paramscan: ")

	var (
		scan    = flag.String("scan", "all", "threshold, timer, increase, markingrate, cctlimit, backlog, all")
		radix   = flag.Int("radix", 12, "fat-tree crossbar radix")
		seed    = flag.Uint64("seed", 1, "random seed")
		fracB   = flag.Int("fracb", 0, "percent of B nodes")
		p       = flag.Int("p", 0, "hotspot share of B nodes")
		warmup  = flag.Duration("warmup", 2*time.Millisecond, "warmup")
		measure = flag.Duration("measure", 4*time.Millisecond, "measurement window")
		jobs    = flag.Int("jobs", 1, "simulation workers (0 = one per CPU)")
		out     = flag.String("out", "", "artifact directory: persist every result as JSON and resume from it")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	// Reject nonsensical numeric flags with one line and a non-zero
	// exit instead of hanging a worker pool downstream.
	for _, err := range []error{
		cliflag.Workers("-jobs", *jobs),
		cliflag.Positive("-radix", *radix),
	} {
		if err != nil {
			log.Fatal(err)
		}
	}

	stopCPU := startCPUProfile(*cpuProf)
	defer stopCPU()
	defer writeMemProfile(*memProf)

	opts := core.Opts{Workers: *jobs}
	if *jobs <= 0 {
		opts.Workers = core.WorkersAll
	}
	if *out != "" {
		store, err := exp.NewStore(*out)
		if err != nil {
			log.Fatal(err)
		}
		opts.Lookup = store.Lookup
		opts.OnResult = store.SaveResult(func(err error) { log.Print(err) })
	}

	base := core.Default(*radix)
	base.Seed = *seed
	base.FracBPct = *fracB
	base.PPercent = *p
	base.Warmup = sim.Duration(warmup.Nanoseconds()) * sim.Nanosecond
	base.Measure = sim.Duration(measure.Nanoseconds()) * sim.Nanosecond

	scans := []struct {
		name   string
		values []int
		apply  func(*core.Scenario, int)
	}{
		{"threshold", []int{1, 3, 5, 7, 9, 11, 13, 15},
			func(s *core.Scenario, v int) { s.CC.Threshold = uint8(v) }},
		{"timer", []int{38, 75, 150, 300, 600, 1200},
			func(s *core.Scenario, v int) { s.CC.CCTITimer = uint16(v) }},
		{"increase", []int{1, 2, 4, 8, 16},
			func(s *core.Scenario, v int) { s.CC.CCTIIncrease = uint16(v) }},
		{"markingrate", []int{0, 1, 3, 7, 15},
			func(s *core.Scenario, v int) { s.CC.MarkingRate = uint16(v) }},
		{"cctlimit", []int{7, 13, 27, 55, 111},
			func(s *core.Scenario, v int) { s.CC.CCTILimit = uint16(v) }},
		{"backlog", []int{1, 2, 4, 8, 16},
			func(s *core.Scenario, v int) { s.BacklogCap = v }},
	}

	start := time.Now()
	ran := 0
	for _, sc := range scans {
		if *scan != "all" && *scan != sc.name {
			continue
		}
		res, err := core.ScanCCOpts(base, sc.name, sc.values, sc.apply, opts)
		if err != nil {
			log.Fatal(err)
		}
		res.Print(os.Stdout)
		fmt.Println()
		ran++
	}
	if ran == 0 {
		log.Fatalf("unknown scan %q", *scan)
	}
	fmt.Printf("paramscan: done in %v\n", time.Since(start).Round(time.Second))
}

// startCPUProfile begins CPU profiling to path (no-op when empty) and
// returns the stop function to defer.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		log.Fatal(err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// writeMemProfile dumps the post-GC heap profile to path (no-op when
// empty).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		log.Fatal(err)
	}
}
