// Command ibccsim runs a single congestion-control scenario on an
// InfiniBand fat-tree and prints the measured rates, e.g.:
//
//	ibccsim -radix 18 -fracb 100 -p 60 -cc=true
//	ibccsim -radix 12 -lifetime 1ms              # moving hotspots
//	ibccsim -radix 36 -warmup 10ms -measure 50ms # paper scale (slow)
//	ibccsim -seeds 8 -jobs 4                     # 8 seeds over 4 workers
//	ibccsim -out results/                        # save a JSON artifact
//	ibccsim -radix 12 -ctree                     # print the congestion trees
//	ibccsim -chrome-trace run.trace              # flight recording for Perfetto
//	ibccsim -faults plan.json -check             # inject a fault plan, audited
//	ibccsim -ckpt-every 1ms -ckpt-dir ckpts/     # rolling crash-safe checkpoints
//	ibccsim -resume-from ckpts/                  # continue from the newest one
//
// With -seeds N > 1 the scenario runs once per seed (seed, seed+1, ...)
// fanned out over -jobs workers, and the mean rates with 95% confidence
// intervals are reported; the aggregates are bit-identical for any
// worker count. With -out every run's result is persisted as a
// fingerprint-keyed JSON artifact, and multi-seed runs resume from
// matching artifacts.
//
// With -ckpt-every a single run writes a rolling series of crash-safe
// checkpoints (atomic rename + fsync + CRC), and -resume-from continues
// a run from a checkpoint file (or the newest one in a directory) with a
// trajectory byte-identical to never having stopped. Scenario flags are
// ignored on resume — the checkpoint carries the scenario.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	ibcc "repro"
	"repro/internal/cliflag"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ibccsim: ")

	var (
		radix    = flag.Int("radix", 18, "fat-tree crossbar radix (36 = paper's 648 nodes)")
		seed     = flag.Uint64("seed", 1, "random seed")
		ccOn     = flag.Bool("cc", true, "enable congestion control")
		fracB    = flag.Int("fracb", 0, "percent of nodes that are B nodes")
		p        = flag.Int("p", 0, "hotspot share p of B nodes (percent)")
		fracC    = flag.Int("fracc", 80, "percent of non-B nodes that are C contributors")
		hotspots = flag.Int("hotspots", 8, "number of hotspots")
		lifetime = flag.Duration("lifetime", 0, "hotspot lifetime (0 = static hotspots)")
		warmup   = flag.Duration("warmup", 4*time.Millisecond, "warmup before measurement")
		measure  = flag.Duration("measure", 8*time.Millisecond, "measurement window")
		quiet    = flag.Bool("q", false, "print only the summary line")
		traceCSV = flag.String("trace", "", "write a time-series CSV (rates, CC activity) to this file")
		traceInt = flag.Duration("traceint", 100*time.Microsecond, "trace sampling interval")
		numSeeds = flag.Int("seeds", 1, "run this many seeds (seed, seed+1, ...) and report mean ±95% CI")
		jobs     = flag.Int("jobs", 1, "simulation workers for -seeds > 1 (0 = one per CPU)")
		out      = flag.String("out", "", "artifact directory: persist results as JSON (and resume -seeds runs)")
		events   = flag.String("events", "", "write a JSONL event log of the run to this file")
		chrome   = flag.String("chrome-trace", "", "write a Chrome trace_event file (open in Perfetto) to this file")
		ctree    = flag.Bool("ctree", false, "reconstruct the congestion trees from the event bus and print them")
		checkInv = flag.Bool("check", false, "run under the runtime invariant checker; exit non-zero on violations")
		faults   = flag.String("faults", "", "JSON fault plan: inject link faults and wire loss from this file")
		telem    = flag.Bool("telemetry", false, "attach the in-sim telemetry sampler and print per-class rates, message-completion percentiles and the hottest ports")
		ckEvery  = flag.Duration("ckpt-every", 0, "write a crash-safe checkpoint every this much simulated time (0 = off)")
		ckDir    = flag.String("ckpt-dir", "checkpoints", "directory for the -ckpt-every rolling series")
		ckKeep   = flag.Int("ckpt-keep", 3, "checkpoints to keep in the -ckpt-every rolling series")
		resume   = flag.String("resume-from", "", "continue from a checkpoint file, or the newest checkpoint in a directory; scenario flags are ignored")
	)
	flag.Parse()

	// Reject nonsensical numeric flags with one line and a non-zero
	// exit: a zero worker pool hangs and zero seeds shrink a sweep.
	for _, err := range []error{
		cliflag.Workers("-jobs", *jobs),
		cliflag.Positive("-seeds", *numSeeds),
		cliflag.Positive("-radix", *radix),
	} {
		if err != nil {
			log.Fatal(err)
		}
	}
	if *ckEvery > 0 {
		if *numSeeds > 1 {
			log.Fatal("-ckpt-every checkpoints a single run; use -seeds 1")
		}
		if *checkInv {
			log.Fatal("-ckpt-every and -check both drive the run loop; pick one")
		}
		if err := cliflag.Positive("-ckpt-keep", *ckKeep); err != nil {
			log.Fatal(err)
		}
	}
	if *resume != "" {
		if *numSeeds > 1 {
			log.Fatal("-resume-from continues a single run; use -seeds 1")
		}
		if *faults != "" {
			log.Fatal("-resume-from: the checkpoint already carries the fault plan; drop -faults")
		}
		if *traceCSV != "" || *events != "" || *chrome != "" || *ctree || *telem || *checkInv {
			log.Fatal("-resume-from: instrumentation attaches at build time; drop -trace/-events/-chrome-trace/-ctree/-telemetry/-check")
		}
	}

	s := ibcc.DefaultScenario(*radix)
	s.Seed = *seed
	s.CCOn = *ccOn
	s.FracBPct = *fracB
	s.PPercent = *p
	s.FracCOfRestPct = *fracC
	s.NumHotspots = *hotspots
	s.HotspotLifetime = ibcc.Duration(lifetime.Nanoseconds()) * ibcc.Nanosecond
	s.Warmup = ibcc.Duration(warmup.Nanoseconds()) * ibcc.Nanosecond
	s.Measure = ibcc.Duration(measure.Nanoseconds()) * ibcc.Nanosecond

	if *faults != "" {
		f, err := os.Open(*faults)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := ibcc.DecodeFaultPlan(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		s.Faults = plan
	}

	var store *ibcc.ArtifactStore
	if *out != "" {
		var err error
		if store, err = ibcc.NewArtifactStore(*out); err != nil {
			log.Fatal(err)
		}
	}

	if *numSeeds > 1 {
		if *events != "" || *chrome != "" || *ctree || *telem {
			log.Fatal("-events/-chrome-trace/-ctree/-telemetry record a single run; use -seeds 1")
		}
		runSeeds(s, *numSeeds, *jobs, store, *quiet, *checkInv)
		return
	}

	start := time.Now()
	var inst *ibcc.Instance
	var err error
	if *resume != "" {
		if inst, err = ibcc.RestoreFile(*resume); err != nil {
			log.Fatal(err)
		}
		s = inst.Scenario
		if !*quiet {
			from, _ := ibcc.LatestCheckpoint(*resume)
			fmt.Printf("resume   : %s (%s)\n", from, s.Name)
		}
	} else if inst, err = ibcc.Build(s); err != nil {
		log.Fatal(err)
	}
	var rec *ibcc.TraceRecorder
	if *traceCSV != "" {
		rec = inst.AttachStandardTrace(ibcc.Duration(traceInt.Nanoseconds()) * ibcc.Nanosecond)
	}
	var smp *ibcc.TelemetrySampler
	if *telem {
		smp = ibcc.NewTelemetrySampler(s.Name, 0)
	}
	var ob *ibcc.Observation
	var obFiles []*os.File
	if *events != "" || *chrome != "" || *ctree || *telem {
		o := ibcc.ObserveOpts{Tree: *ctree, Telemetry: smp}
		if *events != "" {
			f, err := os.Create(*events)
			if err != nil {
				log.Fatal(err)
			}
			o.Events = f
			obFiles = append(obFiles, f)
		}
		if *chrome != "" {
			f, err := os.Create(*chrome)
			if err != nil {
				log.Fatal(err)
			}
			o.ChromeTrace = f
			obFiles = append(obFiles, f)
		}
		ob = inst.Observe(o)
	}
	var ck interface{ Report() *ibcc.InvariantReport }
	if *checkInv {
		ck = inst.Check(ibcc.CheckOpts{Diagnostics: os.Stderr})
	}
	var res *ibcc.Result
	if *ckEvery > 0 {
		res, err = inst.ExecuteWithCheckpoints(ibcc.CkptOpts{
			Every: ibcc.Duration(ckEvery.Nanoseconds()) * ibcc.Nanosecond,
			Dir:   *ckDir,
			Keep:  *ckKeep,
			OnSave: func(path string, at ibcc.Time) {
				if !*quiet {
					fmt.Printf("ckpt     : %s (t=%v)\n", path, at)
				}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
	} else {
		res = inst.Execute()
	}
	elapsed := time.Since(start)

	if ob != nil {
		if err := ob.Close(); err != nil {
			log.Fatal(err)
		}
		for _, f := range obFiles {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		if !*quiet {
			nj, nc := ob.EventsWritten()
			if *events != "" {
				fmt.Printf("events   : %d -> %s\n", nj, *events)
			}
			if *chrome != "" {
				fmt.Printf("trace    : %d events -> %s (open in ui.perfetto.dev)\n", nc, *chrome)
			}
		}
	}

	if store != nil {
		if err := store.Save(ibcc.Job{Name: s.Name, Scenario: s}, res, elapsed); err != nil {
			log.Print(err)
		} else if !*quiet {
			fmt.Printf("artifact : %s/%s.json\n", store.Dir(), ibcc.ScenarioFingerprint(s)[:16])
		}
	}

	if rec != nil {
		f, err := os.Create(*traceCSV)
		if err != nil {
			log.Fatal(err)
		}
		if err := rec.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		if !*quiet {
			fmt.Printf("trace    : %d series x %d samples -> %s\n",
				len(rec.Series()), len(rec.Series()[0].Values), *traceCSV)
		}
	}

	if *quiet {
		fmt.Println(res.Summary)
		reportCheck(ck, true)
		if *ctree {
			ob.TreeReport().WriteTo(os.Stdout)
		}
		return
	}
	fmt.Printf("scenario : %s (%d nodes, %d switches)\n", res.Name, s.NumNodes(), *radix+*radix/2)
	fmt.Printf("mix      : B=%d C=%d V=%d, %d hotspots, p=%d%%", res.PopB, res.PopC, res.PopV, len(res.Hotspots), *p)
	if s.HotspotLifetime > 0 {
		fmt.Printf(", moving every %v", s.HotspotLifetime)
	}
	fmt.Println()
	fmt.Printf("cc       : on=%v", res.CCOn)
	if res.CCOn {
		fmt.Printf("  fecn=%d cnp=%d becn=%d maxCCTI=%d",
			res.CCStats.FECNMarked, res.CCStats.CNPSent,
			res.CCStats.BECNReceived, res.CCStats.MaxCCTI)
	}
	fmt.Println()
	fmt.Printf("rates    : hotspots %.3f Gbps, non-hotspots %.3f Gbps, all %.3f Gbps\n",
		res.Summary.HotspotAvgGbps, res.Summary.NonHotspotAvgGbps, res.Summary.AllAvgGbps)
	fmt.Printf("total    : %.1f Gbps network throughput (tmax non-hotspot %.3f Gbps)\n",
		res.Summary.TotalGbps, res.TMaxGbps)
	fmt.Printf("latency  : %v\n", res.Latency)
	fmt.Printf("engine   : %d events in %v (%.1fM events/s)\n",
		res.Events, elapsed.Round(time.Millisecond),
		float64(res.Events)/elapsed.Seconds()/1e6)
	reportFaults(res.Faults)
	reportTelemetry(smp)
	reportCheck(ck, *quiet)
	if *ctree {
		ob.TreeReport().WriteTo(os.Stdout)
	}
}

// reportTelemetry finalizes the sampler and prints its aggregates:
// mean per-class delivered rates, message-completion percentiles, and
// the hottest output ports by peak queue depth (nil = -telemetry off).
func reportTelemetry(smp *ibcc.TelemetrySampler) {
	if smp == nil {
		return
	}
	smp.Finish()
	snap := smp.Snapshot()
	mean := func(s ibcc.TelemetrySeries) float64 {
		if len(s.V) == 0 {
			return 0
		}
		var sum float64
		for _, v := range s.V {
			sum += v
		}
		return sum / float64(len(s.V))
	}
	fmt.Printf("telemetry: %.1fus cadence, %d bins; delivered hotspot %.3f / other %.3f / control %.3f Gbps (bin means)\n",
		snap.CadenceUS, len(snap.QueuedKB.V), mean(snap.HotspotGbps), mean(snap.OtherGbps), mean(snap.ControlGbps))
	c := snap.Completion
	if c.Count > 0 {
		fmt.Printf("  messages : %d completed, latency p50 %.1f / p90 %.1f / p99 %.1f us (max %.1f)\n",
			c.Count, c.P50, c.P90, c.P99, c.Max)
	}
	for i, p := range snap.HotPorts {
		if i >= 4 {
			break
		}
		kind := "switch"
		if p.HostPort {
			kind = "host uplink"
		}
		fmt.Printf("  hot port : sw%d port%d (%s) peak %.1f KB queued\n", p.Switch, p.Port, kind, p.PeakKB)
	}
}

// reportFaults prints what the fault injector did (nil = no plan).
func reportFaults(st *ibcc.FaultStats) {
	if st == nil {
		return
	}
	fmt.Printf("faults   : dropped data=%d fecn=%d cnp=%d ack=%d, credits deferred=%d, link downs/ups=%d/%d",
		st.DroppedData, st.DroppedFECN, st.DroppedCNP, st.DroppedAck,
		st.DroppedCredits, st.LinkDowns, st.LinkUps)
	switch {
	case st.Recovery > 0:
		fmt.Printf(", recovered %v after last fault", st.Recovery)
	case st.Recovery < 0:
		fmt.Printf(", NOT recovered within horizon")
	}
	fmt.Println()
}

// reportCheck prints the invariant checker's verdict (nil ck = checker
// off) and exits non-zero on violations.
func reportCheck(ck interface{ Report() *ibcc.InvariantReport }, quiet bool) {
	if ck == nil {
		return
	}
	rep := ck.Report()
	if err := rep.Err(); err != nil {
		for _, v := range rep.Violations {
			log.Printf("  %s", v)
		}
		log.Fatal(err)
	}
	if !quiet {
		fmt.Printf("check    : %s\n", rep.Summary())
	}
}

// runSeeds executes the scenario over n consecutive seeds on a worker
// pool and reports the aggregated rates.
func runSeeds(s ibcc.Scenario, n, jobs int, store *ibcc.ArtifactStore, quiet, check bool) {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = s.Seed + uint64(i)
	}
	opts := ibcc.RunOpts{Workers: jobs, Check: check}
	if jobs <= 0 {
		opts.Workers = ibcc.WorkersAll
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if store != nil {
		opts.Lookup = store.Lookup
		opts.OnResult = store.SaveResult(func(err error) { log.Print(err) })
	}
	start := time.Now()
	m, err := ibcc.RunSeedsOpts(s, seeds, opts)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	label := fmt.Sprintf("%s, seeds %d..%d", s.Name, seeds[0], seeds[n-1])
	m.Print(os.Stdout, label)
	if quiet {
		return
	}
	events := uint64(m.Events.Mean() * float64(m.Events.N()))
	fmt.Printf("engine   : %d runs, %d workers, ~%d events in %v (%.1fM events/s)\n",
		n, jobs, events, elapsed.Round(time.Millisecond),
		float64(events)/elapsed.Seconds()/1e6)
}
