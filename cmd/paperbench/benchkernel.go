package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	ibcc "repro"
	"repro/internal/core"
	"repro/internal/ib"
	"repro/internal/sim"
)

// The pre-PR event kernel (binary-heap FEL, heap-allocated packets;
// commit 9e8294c) measured on this workload. The numbers are pinned so
// every BENCH_kernel.json carries the comparison its speedup field is
// computed against.
const (
	baselineCommit    = "9e8294c"
	baselineSteadyNs  = 207.0 // BenchmarkKernelSteadyState, 4096 actors
	baselineShallowNs = 88.0  // BenchmarkKernelShallow, 64 actors
)

const (
	steadyActors  = 4096
	shallowActors = 64
)

// benchGateRatio is the regression gate shared with
// TestKernelBenchGuard: a fresh steady-state measurement more than 10%
// slower than the committed BENCH_kernel.json fails the
// -bench-baseline compare (and `make bench-kernel-gate`).
const benchGateRatio = 1.10

// kernelReport is the machine-readable BENCH_kernel.json document.
type kernelReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	CPUs        int    `json:"cpus"`

	Baseline struct {
		Commit            string  `json:"commit"`
		FEL               string  `json:"fel"`
		SteadyNsPerEvent  float64 `json:"steady_ns_per_event"`
		SteadyEventsPerS  float64 `json:"steady_events_per_sec"`
		ShallowNsPerEvent float64 `json:"shallow_ns_per_event"`
	} `json:"baseline"`

	Kernel struct {
		FEL               string  `json:"fel"`
		Actors            int     `json:"actors"`
		Events            int64   `json:"events"`
		WallNs            int64   `json:"wall_ns"`
		NsPerEvent        float64 `json:"ns_per_event"`
		EventsPerS        float64 `json:"events_per_sec"`
		AllocsPerEvent    float64 `json:"allocs_per_event"`
		ShallowNsPerEvent float64 `json:"shallow_ns_per_event"`
	} `json:"kernel"`

	Lifecycle struct {
		Scenario      string  `json:"scenario"`
		Packets       float64 `json:"packets"`
		WallNs        int64   `json:"wall_ns"`
		NsPerPacket   float64 `json:"ns_per_packet"`
		AllocsPerPkt  float64 `json:"allocs_per_packet"`
		PoolGets      uint64  `json:"pool_gets"`
		PoolMisses    uint64  `json:"pool_misses"`
		SteadyAllocs  uint64  `json:"steady_window_allocs"`
		SteadyWindows int     `json:"steady_windows"`
	} `json:"lifecycle"`

	SpeedupSteady  float64 `json:"speedup_steady"`
	SpeedupShallow float64 `json:"speedup_shallow"`
}

// mallocs returns the cumulative heap allocation count.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// benchKernelSteady runs the synthetic steady-state workload
// (SteadyStateWorkload constructs and runs to its event budget) and
// returns wall time and allocation count. Setup — the actor population
// and the wheel — is included but amortizes to noise over the budget.
func benchKernelSteady(actors int, events int64) (wall time.Duration, allocs uint64) {
	a0 := mallocs()
	start := time.Now()
	sim.SteadyStateWorkload(actors, events, 1)
	wall = time.Since(start)
	return wall, mallocs() - a0
}

// runBenchKernel measures the event kernel and the pooled packet
// lifecycle, then writes BENCH_kernel.json to path. steadyEvents is
// the -bench-events budget (validated >= 1 at flag parse time); the
// shallow workload scales with it at a 1:4 ratio.
func runBenchKernel(path string, steadyEvents int64, baseline string) error {
	shallowEvents := steadyEvents / 4
	if shallowEvents < 1 {
		shallowEvents = 1
	}

	var rep kernelReport
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.GoVersion = runtime.Version()
	rep.CPUs = runtime.NumCPU()

	rep.Baseline.Commit = baselineCommit
	rep.Baseline.FEL = "binary heap"
	rep.Baseline.SteadyNsPerEvent = baselineSteadyNs
	rep.Baseline.SteadyEventsPerS = 1e9 / baselineSteadyNs
	rep.Baseline.ShallowNsPerEvent = baselineShallowNs

	// Warm up the process (scheduler, heap) before timing.
	benchKernelSteady(steadyActors, min(2_000_000, steadyEvents))

	wall, allocs := benchKernelSteady(steadyActors, steadyEvents)
	rep.Kernel.FEL = "timing wheel"
	rep.Kernel.Actors = steadyActors
	rep.Kernel.Events = steadyEvents
	rep.Kernel.WallNs = wall.Nanoseconds()
	rep.Kernel.NsPerEvent = float64(wall.Nanoseconds()) / float64(steadyEvents)
	rep.Kernel.EventsPerS = float64(steadyEvents) / wall.Seconds()
	rep.Kernel.AllocsPerEvent = float64(allocs) / float64(steadyEvents)

	shWall, _ := benchKernelSteady(shallowActors, shallowEvents)
	rep.Kernel.ShallowNsPerEvent = float64(shWall.Nanoseconds()) / float64(shallowEvents)

	if err := benchLifecycle(&rep); err != nil {
		return err
	}

	rep.SpeedupSteady = rep.Baseline.SteadyNsPerEvent / rep.Kernel.NsPerEvent
	rep.SpeedupShallow = rep.Baseline.ShallowNsPerEvent / rep.Kernel.ShallowNsPerEvent

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}

	// Ring-buffer history alongside the artifact: the run-report trend
	// block reads it to detect kernel drift across re-measurements.
	histPath := filepath.Join(filepath.Dir(path), "BENCH_history.json")
	if err := ibcc.AppendBenchHistory(histPath, ibcc.BenchPoint{
		GeneratedAt:  rep.GeneratedAt,
		GoVersion:    rep.GoVersion,
		NsPerEvent:   rep.Kernel.NsPerEvent,
		EventsPerSec: rep.Kernel.EventsPerS,
		Speedup:      rep.SpeedupSteady,
	}); err != nil {
		return err
	}

	fmt.Printf("kernel : %.1f ns/event (%.2fM events/s), %.4f allocs/event — %.2fx over %s baseline\n",
		rep.Kernel.NsPerEvent, rep.Kernel.EventsPerS/1e6, rep.Kernel.AllocsPerEvent,
		rep.SpeedupSteady, baselineCommit)
	fmt.Printf("shallow: %.1f ns/event — %.2fx over baseline\n",
		rep.Kernel.ShallowNsPerEvent, rep.SpeedupShallow)
	fmt.Printf("packets: %.0f ns/packet, %.4f allocs/packet (%d steady-window allocs over %d windows)\n",
		rep.Lifecycle.NsPerPacket, rep.Lifecycle.AllocsPerPkt,
		rep.Lifecycle.SteadyAllocs, rep.Lifecycle.SteadyWindows)
	fmt.Printf("wrote %s (history ring: %s)\n", path, histPath)

	if baseline != "" {
		return compareBenchBaseline(baseline, &rep, steadyEvents)
	}
	return nil
}

// compareBenchBaseline gates the fresh measurement against a committed
// BENCH_kernel.json. The comparison takes the best (lowest) of the
// recorded run and two repeats: scheduler noise on a busy box only
// ever slows a run down, so best-of damps false alarms without letting
// a genuine regression through.
func compareBenchBaseline(path string, rep *kernelReport, steadyEvents int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base kernelReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if base.Kernel.NsPerEvent <= 0 {
		return fmt.Errorf("%s: missing kernel.ns_per_event", path)
	}
	best := rep.Kernel.NsPerEvent
	for i := 0; i < 2; i++ {
		wall, _ := benchKernelSteady(steadyActors, steadyEvents)
		if ns := float64(wall.Nanoseconds()) / float64(steadyEvents); ns < best {
			best = ns
		}
	}
	limit := base.Kernel.NsPerEvent * benchGateRatio
	if best > limit {
		return fmt.Errorf("kernel regression: best-of-3 %.1f ns/event vs committed %.1f ns/event (limit %.1f, +10%%)",
			best, base.Kernel.NsPerEvent, limit)
	}
	fmt.Printf("gate   : best-of-3 %.1f ns/event within +10%% of committed %.1f (%s)\n",
		best, base.Kernel.NsPerEvent, path)
	return nil
}

// benchLifecycle measures the pooled gen → fabric → sink path: a
// radix-8 uniform-traffic scenario, warmed until every pool is primed,
// then fixed simulated windows timed and allocation-counted.
func benchLifecycle(rep *kernelReport) error {
	const (
		warm    = 1000 * sim.Microsecond
		window  = 50 * sim.Microsecond
		windows = 20
	)
	s := core.Default(8)
	s.Name = "bench-lifecycle"
	s.CCOn = false
	in, err := core.Build(s)
	if err != nil {
		return err
	}
	simr := in.Net.Sim()
	in.Net.Start()
	simr.RunUntil(sim.Time(0).Add(warm))

	rxBytes := func() uint64 {
		var sum uint64
		for lid := 0; lid < s.NumNodes(); lid++ {
			sum += in.Net.HCA(ib.LID(lid)).Counters().RxDataPayload
		}
		return sum
	}

	pre := rxBytes()
	a0 := mallocs()
	start := time.Now()
	end := simr.Now()
	for i := 0; i < windows; i++ {
		end = end.Add(window)
		simr.RunUntil(end)
	}
	wall := time.Since(start)
	allocs := mallocs() - a0
	pkts := float64(rxBytes()-pre) / float64(ib.MTU)

	rep.Lifecycle.Scenario = s.Name
	rep.Lifecycle.Packets = pkts
	rep.Lifecycle.WallNs = wall.Nanoseconds()
	if pkts > 0 {
		rep.Lifecycle.NsPerPacket = float64(wall.Nanoseconds()) / pkts
		rep.Lifecycle.AllocsPerPkt = float64(allocs) / pkts
	}
	st := in.Net.PacketPool().Stats()
	rep.Lifecycle.PoolGets = st.Gets
	rep.Lifecycle.PoolMisses = st.Misses
	rep.Lifecycle.SteadyAllocs = allocs
	rep.Lifecycle.SteadyWindows = windows
	return nil
}
