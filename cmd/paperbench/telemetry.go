package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	ibcc "repro"
)

// liveTelemetry bundles the optional observability surface of a
// paperbench invocation: the in-sim telemetry hub, the orchestration
// span tracker, the live HTTP dashboard and the end-of-run report.
// The zero struct (no -serve / -report) is a no-op everywhere, so the
// call sites wire it unconditionally.
type liveTelemetry struct {
	hub    *ibcc.TelemetryHub
	spans  *ibcc.SpanTracker
	srv    *ibcc.TelemetryServer
	addr   string
	probe  bool
	report string

	mu        sync.Mutex
	total     int
	probeOnce sync.Once
	probeErr  error
}

// newLiveTelemetry interprets the -serve / -serve-probe / -report
// flags. The hub and tracker exist whenever any of them is set; the
// HTTP server only with -serve.
func newLiveTelemetry(serveAddr string, probe bool, report string) (*liveTelemetry, error) {
	t := &liveTelemetry{probe: probe, report: report}
	if probe && serveAddr == "" {
		return nil, fmt.Errorf("-serve-probe requires -serve")
	}
	if serveAddr == "" && report == "" {
		return t, nil
	}
	t.hub = ibcc.NewTelemetryHub(0)
	t.spans = ibcc.NewSpanTracker()
	if serveAddr != "" {
		t.srv = ibcc.NewTelemetryServer(t.hub, t.spans)
		addr, err := t.srv.Start(serveAddr)
		if err != nil {
			return nil, fmt.Errorf("-serve: %w", err)
		}
		t.addr = addr
		log.Printf("telemetry: live dashboard on http://%s/", addr)
	}
	return t, nil
}

// apply wires the hub and tracker into sweep options (nil-safe fields,
// so this is unconditional).
func (t *liveTelemetry) apply(o *ibcc.RunOpts) {
	o.Telemetry = t.hub
	o.Spans = t.spans
}

// addTotal grows the declared job total (experiments run several sweeps
// against one tracker).
func (t *liveTelemetry) addTotal(n int) {
	if t.spans == nil {
		return
	}
	t.mu.Lock()
	t.total += n
	total := t.total
	t.mu.Unlock()
	t.spans.SetTotal(total)
}

// midProbe fetches /metrics.json once, mid-sweep, from an OnResult
// hook — the CI evidence that the endpoint serves live state while
// simulations are still running.
func (t *liveTelemetry) midProbe() {
	if t.srv == nil || !t.probe {
		return
	}
	t.probeOnce.Do(func() {
		if err := t.fetchMetrics(); err != nil {
			t.mu.Lock()
			t.probeErr = err
			t.mu.Unlock()
		}
	})
}

// fetchMetrics GETs and structurally validates /metrics.json.
func (t *liveTelemetry) fetchMetrics() error {
	resp, err := http.Get("http://" + t.addr + "/metrics.json")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics.json: HTTP %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var m struct {
		GeneratedAt string                     `json:"generated_at"`
		Sweep       *ibcc.SweepStats           `json:"sweep"`
		Telemetry   *ibcc.TelemetryHubSnapshot `json:"telemetry"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("/metrics.json: %v", err)
	}
	if m.GeneratedAt == "" || m.Sweep == nil || m.Telemetry == nil {
		return fmt.Errorf("/metrics.json: incomplete document: %s", data)
	}
	return nil
}

// finish runs the final probe and writes the unified run report.
// kind is one of the ibcc.Report* constants; payload is the raw
// mode-specific JSON artifact (degradation curve, tournament table).
func (t *liveTelemetry) finish(kind, name string, radix, seeds int, payload []byte) error {
	if t.hub == nil {
		return nil
	}
	if t.probe {
		t.mu.Lock()
		err := t.probeErr
		t.mu.Unlock()
		if err != nil {
			return fmt.Errorf("serve-probe: %w", err)
		}
		if err := t.fetchMetrics(); err != nil {
			return fmt.Errorf("serve-probe: %w", err)
		}
		fmt.Printf("serve-probe: /metrics.json ok (http://%s/)\n", t.addr)
	}
	return t.writeReport(kind, name, radix, seeds, payload)
}

// drain is the SIGINT/SIGTERM path: flush the final metrics snapshot
// into the report (when -report is set) so an interrupted sweep still
// leaves its telemetry behind, then shut the dashboard down gracefully.
// Best-effort by design — drain runs on the way to a non-zero exit.
func (t *liveTelemetry) drain(name string, radix, seeds int) {
	if t.hub != nil {
		if err := t.writeReport(ibcc.ReportExperiments, name, radix, seeds, nil); err != nil {
			log.Print(err)
		}
	}
	t.close()
}

// writeReport writes the unified run report from the current tracker
// and hub state (no-op without -report).
func (t *liveTelemetry) writeReport(kind, name string, radix, seeds int, payload []byte) error {
	if t.report == "" {
		return nil
	}
	st := t.spans.Stats()
	snap := t.hub.Snapshot()
	rep := &ibcc.RunReport{
		Schema:      ibcc.RunReportSchema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Kind:        kind,
		Name:        name,
		Radix:       radix,
		Seeds:       seeds,
		Sweep:       &st,
		Telemetry:   &snap,
		Trend:       ibcc.LoadPerfTrend(".", st.EventsPerSec),
	}
	switch kind {
	case ibcc.ReportDegradation:
		rep.Degradation = payload
	case ibcc.ReportTournament:
		rep.Tournament = payload
	}
	if err := rep.Write(t.report); err != nil {
		return err
	}
	fmt.Printf("report : %s (%s, %d jobs, %.1fM events/s)\n",
		t.report, kind, st.Done+st.Failed, st.EventsPerSec/1e6)
	return nil
}

// close shuts the dashboard server down gracefully, giving an in-flight
// dashboard poll a moment to finish.
func (t *liveTelemetry) close() {
	if t.srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := t.srv.Shutdown(ctx); err != nil {
		t.srv.Close()
	}
}
