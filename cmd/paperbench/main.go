// Command paperbench regenerates every table and figure of the paper's
// evaluation section (Table II and figures 5–10), printing the same rows
// and series the paper reports.
//
//	paperbench                      # every experiment at radix 18
//	paperbench -exp fig8            # one experiment
//	paperbench -radix 36 -full      # paper scale and windows (slow)
//
// At reduced radix the hotspot lifetimes of figures 9–10 are scaled by
// (radix/36)^2 so the ratio of lifetime to congestion-tree timescale is
// preserved; -full restores the paper's absolute values.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	ibcc "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")

	var (
		exp   = flag.String("exp", "all", "experiment: table2, fig5, fig6, fig7, fig8, fig9, fig10, all")
		radix = flag.Int("radix", 18, "fat-tree crossbar radix (36 = paper scale)")
		seed  = flag.Uint64("seed", 1, "random seed")
		full  = flag.Bool("full", false, "paper-scale windows: 20 ms warmup, 100 ms measure, unscaled lifetimes")
		pstep = flag.Int("pstep", 10, "p sweep step for figures 5-8")
		seeds = flag.Int("seeds", 1, "seeds per Table II configuration (>1 adds confidence intervals)")
	)
	flag.Parse()

	base := ibcc.DefaultScenario(*radix)
	base.Seed = *seed
	ltScale := float64(*radix) * float64(*radix) / (36 * 36)
	if *full {
		base.Warmup = 20 * ibcc.Millisecond
		base.Measure = 100 * ibcc.Millisecond
		ltScale = 1
	}

	var ps []int
	for p := 0; p <= 100; p += *pstep {
		ps = append(ps, p)
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	start := time.Now()

	if want("table2") {
		tab, err := ibcc.RunTableII(base)
		if err != nil {
			log.Fatal(err)
		}
		tab.Print(os.Stdout)
		fmt.Println()
		if *seeds > 1 {
			for _, ccOn := range []bool{false, true} {
				s := base
				s.CCOn = ccOn
				m, err := ibcc.RunSeeds(s, ibcc.Seeds(*seeds))
				if err != nil {
					log.Fatal(err)
				}
				label := "Table II hotspot scenario, CC off"
				if ccOn {
					label = "Table II hotspot scenario, CC on"
				}
				m.Print(os.Stdout, label)
			}
			fmt.Println()
		}
	}

	windy := []struct {
		fig   string
		fracB int
	}{{"5", 25}, {"6", 50}, {"7", 75}, {"8", 100}}
	for _, wf := range windy {
		if !want("fig" + wf.fig) {
			continue
		}
		pts, err := ibcc.RunWindySweep(base, wf.fracB, ps)
		if err != nil {
			log.Fatal(err)
		}
		ibcc.PrintWindy(os.Stdout, wf.fig, wf.fracB, pts)
		fmt.Println()
	}

	lifetimes := ibcc.PaperLifetimes(ltScale)
	if want("fig9") {
		for _, mix := range []struct {
			label string
			fracC int
		}{{"9(a) 20% V / 80% C", 80}, {"9(b) 60% V / 40% C", 40}} {
			s := base
			s.FracBPct = 0
			s.FracCOfRestPct = mix.fracC
			pts, err := ibcc.RunMovingSweep(s, lifetimes)
			if err != nil {
				log.Fatal(err)
			}
			fig, label, _ := strings.Cut(mix.label, " ")
			ibcc.PrintMoving(os.Stdout, fig, label+" (lifetimes x"+fmt.Sprintf("%.3f", ltScale)+")", pts)
			fmt.Println()
		}
	}

	if want("fig10") {
		for _, p := range []int{30, 60, 90} {
			s := base
			s.FracBPct = 100
			s.PPercent = p
			pts, err := ibcc.RunMovingSweep(s, lifetimes)
			if err != nil {
				log.Fatal(err)
			}
			label := fmt.Sprintf("100%% B nodes, p=%d (lifetimes x%.3f)", p, ltScale)
			ibcc.PrintMoving(os.Stdout, fmt.Sprintf("10 p=%d", p), label, pts)
			fmt.Println()
		}
	}

	fmt.Printf("paperbench: done in %v\n", time.Since(start).Round(time.Second))
}
