// Command paperbench regenerates every table and figure of the paper's
// evaluation section (Table II and figures 5–10), printing the same rows
// and series the paper reports.
//
//	paperbench                      # every experiment at radix 18
//	paperbench -exp fig8            # one experiment
//	paperbench -radix 36 -full      # paper scale and windows (slow)
//	paperbench -jobs 8              # fan simulations over 8 workers
//	paperbench -out results/        # persist + resume via JSON artifacts
//	paperbench -cpuprofile cpu.pb   # profile the run (go tool pprof)
//	paperbench -chrome-trace f5.trace -ctree  # flight-record the base scenario
//	paperbench -bench-kernel BENCH_kernel.json  # event-kernel + packet-lifecycle benchmark
//	paperbench -bench-kernel /tmp/fresh.json -bench-baseline BENCH_kernel.json  # >10% regression gate
//	paperbench -diff-kernel         # timing wheel vs reference heap, byte-identical check
//	paperbench -check -exp table2   # run experiments under the invariant checker
//	paperbench -degradation deg.json -seeds 3   # fault-intensity sweep, JSON artifact
//	paperbench -degradation deg.json -cc rcm    # the same, DCQCN-style backend in the CC-on leg
//	paperbench -tournament tour.json -seeds 2   # backend tournament, ranked table + JSON artifact
//	paperbench -tournament tour.json -cc ibcc,nocc  # restrict the bracket
//	paperbench -serve :8080                     # live telemetry dashboard while the sweep runs
//	paperbench -report run.json                 # unified run-report artifact (validate with cctinspect -report)
//	paperbench -progress-jsonl                  # machine-readable progress lines on stderr
//	paperbench -out results/                    # persist + resume via JSON artifacts
//	paperbench -resume-from results/            # resume an interrupted run (reads its manifest)
//
// SIGINT/SIGTERM drain the run gracefully: in-flight simulations finish,
// completed results stay in the artifact store, a resumable manifest is
// flushed next to them, the final telemetry snapshot lands in -report,
// and the dashboard server shuts down cleanly.
//
// Independent simulations fan out across -jobs workers (0 = one per
// CPU); the experiment harness guarantees the printed tables and
// figures are bit-identical to a serial (-jobs 1) run. With -out, every
// simulation's result is persisted as a JSON artifact keyed by scenario
// fingerprint, and a re-run loads matching artifacts instead of
// simulating again.
//
// At reduced radix the hotspot lifetimes of figures 9–10 are scaled by
// (radix/36)^2 so the ratio of lifetime to congestion-tree timescale is
// preserved; -full restores the paper's absolute values.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	ibcc "repro"
	"repro/internal/cliflag"
)

// tally accumulates one experiment's execution counters via the
// harness's OnResult hook.
type tally struct {
	sims   int
	events uint64
	cached int
}

// drainRecorder accumulates every completed simulation of the run so a
// graceful SIGINT/SIGTERM drain can flush a resumable manifest next to
// the artifacts.
type drainRecorder struct {
	mu      sync.Mutex
	jobs    []ibcc.Job
	results []ibcc.JobResult
	total   int
}

func (d *drainRecorder) addTotal(n int) {
	d.mu.Lock()
	d.total += n
	d.mu.Unlock()
}

func (d *drainRecorder) observe(s ibcc.Scenario, r *ibcc.Result, cached bool) {
	d.mu.Lock()
	d.jobs = append(d.jobs, ibcc.Job{Name: s.Name, Scenario: s})
	d.results = append(d.results, ibcc.JobResult{Result: r, Cached: cached})
	d.mu.Unlock()
}

// manifest writes the drain manifest into the store (nil-store no-op).
// The sweep drivers don't expose their full job lists, so the pending
// count is derived from the declared totals rather than enumerated.
func (d *drainRecorder) manifest(st *ibcc.ArtifactStore) {
	if st == nil {
		return
	}
	d.mu.Lock()
	m := ibcc.BuildSweepManifest(d.jobs, d.results, true)
	m.Total = d.total
	m.NumPending = d.total - m.NumDone
	d.mu.Unlock()
	if path, err := st.SaveManifest(m); err != nil {
		log.Print(err)
	} else {
		log.Printf("drain: manifest -> %s (%d done, ~%d pending)", path, m.NumDone, m.NumPending)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")

	var (
		exp      = flag.String("exp", "all", "experiment: table2, fig5, fig6, fig7, fig8, fig9, fig10, all")
		radix    = flag.Int("radix", 18, "fat-tree crossbar radix (36 = paper scale)")
		seed     = flag.Uint64("seed", 1, "random seed")
		full     = flag.Bool("full", false, "paper-scale windows: 20 ms warmup, 100 ms measure, unscaled lifetimes")
		pstep    = flag.Int("pstep", 10, "p sweep step for figures 5-8")
		seeds    = flag.Int("seeds", 1, "seeds per Table II configuration (>1 adds confidence intervals)")
		jobs     = flag.Int("jobs", 1, "simulation workers (0 = one per CPU)")
		out      = flag.String("out", "", "artifact directory: persist every result as JSON and resume from it")
		progress = flag.Bool("progress", stderrIsTTY(), "live progress line on stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		benchK   = flag.String("bench-kernel", "", "benchmark the event kernel + packet lifecycle, write JSON here, then exit")
		benchN   = flag.Int("bench-events", 20_000_000, "steady-state event budget for -bench-kernel")
		benchB   = flag.String("bench-baseline", "", "with -bench-kernel: compare the fresh measurement (best of 3) against this committed BENCH_kernel.json and fail on >10% regression")
		diffK    = flag.Bool("diff-kernel", false, "differential kernel validation: run the Table II corpus on both event-list kernels under the invariant checker, then exit")
		checkInv = flag.Bool("check", false, "run every simulation under the runtime invariant checker (fails on violations)")
		events   = flag.String("events", "", "flight-record the base scenario: JSONL event log to this file, then exit")
		chrome   = flag.String("chrome-trace", "", "flight-record the base scenario: Chrome trace to this file, then exit")
		ctree    = flag.Bool("ctree", false, "flight-record the base scenario: print its congestion trees, then exit")
		degrade  = flag.String("degradation", "", "graceful-degradation sweep (fault intensity x CC on/off): write the JSON artifact here, then exit")
		tourn    = flag.String("tournament", "", "congestion-control backend tournament (backends x corpus x fault intensity): write the JSON artifact here, then exit")
		intens   = flag.String("intensities", "0,0.25,0.5,0.75,1", "comma-separated fault intensities for -degradation / -tournament")
		ccName   = flag.String("cc", "", "congestion control backend selection: one registry name for the simulated backend (-degradation's CC-on leg and every experiment), or a comma-separated list for -tournament's bracket (empty = default backend / all registered)")
		serve    = flag.String("serve", "", "serve the live telemetry dashboard on this address for the duration of the run (e.g. :8080, or 127.0.0.1:0 for an ephemeral port)")
		sprobe   = flag.Bool("serve-probe", false, "with -serve: fetch and validate /metrics.json mid-sweep and again after it (CI smoke); exit non-zero on failure")
		report   = flag.String("report", "", "write the unified run-report JSON artifact (sweep stats, telemetry aggregates, mode payload, kernel-bench trend) to this file")
		progJSON = flag.Bool("progress-jsonl", false, "machine-readable progress: one JSON line per completed simulation on stderr instead of the status line")
		resume   = flag.String("resume-from", "", "artifact directory of an interrupted run: report its manifest and resume from its artifacts (same as -out, plus the manifest summary)")
	)
	flag.Parse()

	// Numeric flag validation up front: a zero worker pool hangs, a
	// zero sweep step loops forever, and zero seeds silently shrink a
	// sweep — all better rejected with one line and a non-zero exit.
	for _, err := range []error{
		cliflag.Workers("-jobs", *jobs),
		cliflag.Positive("-seeds", *seeds),
		cliflag.Positive("-pstep", *pstep),
		cliflag.Positive("-radix", *radix),
		cliflag.Positive("-bench-events", *benchN),
	} {
		if err != nil {
			log.Fatal(err)
		}
	}

	ccNames, err := parseCCNames(*ccName)
	if err != nil {
		log.Fatal(err)
	}

	stopCPU := startCPUProfile(*cpuProf)
	defer stopCPU()
	defer writeMemProfile(*memProf)

	if *benchK != "" {
		if err := runBenchKernel(*benchK, int64(*benchN), *benchB); err != nil {
			log.Fatal(err)
		}
		return
	}

	base := ibcc.DefaultScenario(*radix)
	base.Seed = *seed
	if len(ccNames) == 1 {
		base.Backend = ccNames[0]
	} else if len(ccNames) > 1 && *tourn == "" {
		log.Fatalf("-cc with multiple names (%v) only makes sense with -tournament", ccNames)
	}
	ltScale := float64(*radix) * float64(*radix) / (36 * 36)
	if *full {
		base.Warmup = 20 * ibcc.Millisecond
		base.Measure = 100 * ibcc.Millisecond
		ltScale = 1
	}

	if *events != "" || *chrome != "" || *ctree {
		if err := flightRecord(base, *events, *chrome, *ctree); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *diffK {
		if err := runDiffKernel(base, *seeds); err != nil {
			log.Fatal(err)
		}
		return
	}

	workers := *jobs
	if workers <= 0 {
		workers = ibcc.WorkersAll
	}

	// SIGINT/SIGTERM cancel the sweep context: dispatch stops, in-flight
	// simulations finish, and the fatal path below drains gracefully.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	tel, err := newLiveTelemetry(*serve, *sprobe, *report)
	if err != nil {
		log.Fatal(err)
	}
	defer tel.close()

	// fatal exits on a sweep error; an interrupt additionally flushes
	// the final telemetry snapshot into the report and shuts the
	// dashboard down before exiting non-zero.
	fatal := func(err error) {
		if errors.Is(err, context.Canceled) {
			tel.drain(base.Name, *radix, *seeds)
			log.Fatal("interrupted — completed results are saved; re-run with -resume-from to continue")
		}
		log.Fatal(err)
	}

	if *degrade != "" {
		if err := runDegradation(ctx, base, *degrade, *intens, *seeds, workers, *checkInv, tel); err != nil {
			fatal(err)
		}
		return
	}

	if *tourn != "" {
		if err := runTournament(ctx, base, *tourn, *intens, *seeds, workers, *checkInv, ccNames, tel); err != nil {
			fatal(err)
		}
		return
	}

	if *resume != "" {
		switch {
		case *out == "":
			*out = *resume
		case *out != *resume:
			log.Fatal("-resume-from and -out name different directories")
		}
	}
	var store *ibcc.ArtifactStore
	if *out != "" {
		var err error
		if store, err = ibcc.NewArtifactStore(*out); err != nil {
			log.Fatal(err)
		}
	}
	if *resume != "" {
		if m, ok, err := store.ReadManifest(); err != nil {
			log.Print(err)
		} else if ok {
			log.Printf("resume: manifest of %s — %d done, %d pending, %d failed, %d quarantined",
				m.WrittenAt, m.NumDone, m.NumPending, m.NumFailed, m.NumQuarant)
		} else {
			log.Printf("resume: no manifest in %s; resuming from %d artifacts", *out, store.Len())
		}
	}
	drain := &drainRecorder{}

	// experiment runs one experiment's sweeps through the harness with
	// shared worker/artifact options, then reports its cost: the
	// simulated-event total comes from the OnResult hook the drivers
	// invoke per completed run.
	experiment := func(name string, totalSims int, fn func(o ibcc.RunOpts) error) {
		tl := &tally{}
		var prog *ibcc.Progress
		o := ibcc.RunOpts{Ctx: ctx, Workers: workers, Check: *checkInv}
		tel.apply(&o)
		tel.addTotal(totalSims)
		drain.addTotal(totalSims)
		if store != nil {
			o.Lookup = store.Lookup
		}
		save := func(ibcc.Scenario, *ibcc.Result, bool) {}
		if store != nil {
			save = store.SaveResult(func(err error) { log.Print(err) })
		}
		switch {
		case *progJSON:
			prog = ibcc.NewProgressJSONL(os.Stderr, totalSims)
		case *progress:
			prog = ibcc.NewProgress(os.Stderr, totalSims)
		}
		o.OnResult = func(s ibcc.Scenario, r *ibcc.Result, cached bool) {
			save(s, r, cached)
			drain.observe(s, r, cached)
			tl.sims++
			tl.events += r.Events
			if cached {
				tl.cached++
			}
			if prog != nil {
				prog.Observe(r.Events, cached)
			}
			tel.midProbe()
		}
		start := time.Now()
		err := fn(o)
		if prog != nil {
			prog.Finish()
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				drain.manifest(store)
			}
			fatal(err)
		}
		wall := time.Since(start)
		line := fmt.Sprintf("experiment %s: %d sims, %d simulated events, %v wall",
			name, tl.sims, tl.events, wall.Round(time.Millisecond))
		if secs := wall.Seconds(); secs > 0 && tl.events > 0 {
			line += fmt.Sprintf(" (%.1fM events/s)", float64(tl.events)/secs/1e6)
		}
		if tl.cached > 0 {
			line += fmt.Sprintf(", %d from artifacts", tl.cached)
		}
		fmt.Println(line)
		fmt.Println()
	}

	var ps []int
	for p := 0; p <= 100; p += *pstep {
		ps = append(ps, p)
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	start := time.Now()

	if want("table2") {
		total := 4
		if *seeds > 1 {
			total += 2 * *seeds
		}
		experiment("table2", total, func(o ibcc.RunOpts) error {
			tab, err := ibcc.RunTableIIOpts(base, o)
			if err != nil {
				return err
			}
			tab.Print(os.Stdout)
			fmt.Println()
			if *seeds > 1 {
				for _, ccOn := range []bool{false, true} {
					s := base
					s.CCOn = ccOn
					m, err := ibcc.RunSeedsOpts(s, ibcc.Seeds(*seeds), o)
					if err != nil {
						return err
					}
					label := "Table II hotspot scenario, CC off"
					if ccOn {
						label = "Table II hotspot scenario, CC on"
					}
					m.Print(os.Stdout, label)
				}
				fmt.Println()
			}
			return nil
		})
	}

	windy := []struct {
		fig   string
		fracB int
	}{{"5", 25}, {"6", 50}, {"7", 75}, {"8", 100}}
	for _, wf := range windy {
		if !want("fig" + wf.fig) {
			continue
		}
		experiment("fig"+wf.fig, 2*len(ps), func(o ibcc.RunOpts) error {
			pts, err := ibcc.RunWindySweepOpts(base, wf.fracB, ps, o)
			if err != nil {
				return err
			}
			ibcc.PrintWindy(os.Stdout, wf.fig, wf.fracB, pts)
			fmt.Println()
			return nil
		})
	}

	lifetimes := ibcc.PaperLifetimes(ltScale)
	if want("fig9") {
		experiment("fig9", 2*2*len(lifetimes), func(o ibcc.RunOpts) error {
			for _, mix := range []struct {
				label string
				fracC int
			}{{"9(a) 20% V / 80% C", 80}, {"9(b) 60% V / 40% C", 40}} {
				s := base
				s.FracBPct = 0
				s.FracCOfRestPct = mix.fracC
				pts, err := ibcc.RunMovingSweepOpts(s, lifetimes, o)
				if err != nil {
					return err
				}
				fig, label, _ := strings.Cut(mix.label, " ")
				ibcc.PrintMoving(os.Stdout, fig, label+" (lifetimes x"+fmt.Sprintf("%.3f", ltScale)+")", pts)
				fmt.Println()
			}
			return nil
		})
	}

	if want("fig10") {
		experiment("fig10", 3*2*len(lifetimes), func(o ibcc.RunOpts) error {
			for _, p := range []int{30, 60, 90} {
				s := base
				s.FracBPct = 100
				s.PPercent = p
				pts, err := ibcc.RunMovingSweepOpts(s, lifetimes, o)
				if err != nil {
					return err
				}
				label := fmt.Sprintf("100%% B nodes, p=%d (lifetimes x%.3f)", p, ltScale)
				ibcc.PrintMoving(os.Stdout, fmt.Sprintf("10 p=%d", p), label, pts)
				fmt.Println()
			}
			return nil
		})
	}

	if err := tel.finish(ibcc.ReportExperiments, base.Name, *radix, *seeds, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paperbench: done in %v\n", time.Since(start).Round(time.Second))
}

// runDegradation is the graceful-degradation mode: fault plans of
// increasing intensity are synthesized per (intensity, seed), each one
// runs with CC off and on, and the receive-rate / recovery curves are
// printed and written as a JSON artifact. Intensity 0 is the unfaulted
// baseline (a zero plan is treated as absent), so the curve starts at
// the healthy operating point.
func runDegradation(ctx context.Context, base ibcc.Scenario, path, intensities string, seeds, workers int, checked bool, tel *liveTelemetry) error {
	ins, err := parseIntensities(intensities)
	if err != nil {
		return err
	}
	seedList := seedsFrom(base.Seed, seeds)

	o := ibcc.RunOpts{Ctx: ctx, Workers: workers, Check: checked}
	tel.apply(&o)
	tel.addTotal(len(ins) * len(seedList) * 2)
	o.OnResult = func(ibcc.Scenario, *ibcc.Result, bool) { tel.midProbe() }

	start := time.Now()
	pts, err := ibcc.RunDegradationOpts(base, ins, seedList, o)
	if err != nil {
		return err
	}
	ibcc.PrintDegradation(os.Stdout, pts)

	data, err := json.MarshalIndent(struct {
		Scenario string                  `json:"scenario"`
		Radix    int                     `json:"radix"`
		Seeds    []uint64                `json:"seeds"`
		Points   []ibcc.DegradationPoint `json:"points"`
	}{base.Name, base.Radix, seedList, pts}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("degradation: %d intensities x %d seeds x 2 CC legs in %v -> %s\n",
		len(ins), seeds, time.Since(start).Round(time.Millisecond), path)
	return tel.finish(ibcc.ReportDegradation, base.Name, base.Radix, seeds, data)
}

// runTournament is the backend-tournament mode: every selected backend
// runs the scenario corpus across the fault-intensity grid, each cell
// is scored and ranked, and the table is printed and written as a JSON
// artifact (render it again later with cctinspect -tournament).
func runTournament(ctx context.Context, base ibcc.Scenario, path, intensities string, seeds, workers int, checked bool, backends []string, tel *liveTelemetry) error {
	ins, err := parseIntensities(intensities)
	if err != nil {
		return err
	}
	seedList := seedsFrom(base.Seed, seeds)
	nBackends := len(backends)
	if nBackends == 0 {
		nBackends = len(ibcc.CCBackends())
	}
	o := ibcc.RunOpts{Ctx: ctx, Workers: workers, Check: checked}
	tel.apply(&o)
	tel.addTotal(len(ibcc.DefaultTournamentCorpus()) * len(ins) * len(seedList) * nBackends)

	start := time.Now()
	tab, err := ibcc.RunTournament(ibcc.TournamentConfig{
		Base:        base,
		Backends:    backends,
		Intensities: ins,
		Seeds:       seedList,
		Opts:        o,
	})
	if err != nil {
		return err
	}
	ibcc.PrintTournament(os.Stdout, tab)

	data, err := json.MarshalIndent(tab, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("tournament: %d backends x %d shapes x %d intensities x %d seeds in %v -> %s\n",
		len(tab.Backends), len(tab.Corpus), len(ins), len(seedList),
		time.Since(start).Round(time.Millisecond), path)
	return tel.finish(ibcc.ReportTournament, base.Name, base.Radix, seeds, data)
}

// parseCCNames validates the -cc flag: a comma-separated list of
// registered backend names. Unknown names are fatal and list the
// registry, so a typo cannot silently run the default mechanism.
func parseCCNames(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var names []string
	for _, n := range strings.Split(s, ",") {
		n = strings.TrimSpace(n)
		if !ibcc.CCBackendKnown(n) {
			return nil, fmt.Errorf("-cc: unknown backend %q (registered: %s)",
				n, strings.Join(ibcc.CCBackends(), ", "))
		}
		names = append(names, n)
	}
	return names, nil
}

// parseIntensities parses and validates the shared -intensities grid.
func parseIntensities(s string) ([]float64, error) {
	return cliflag.Intensities("-intensities", s)
}

// seedsFrom returns n seeds counting up from base; n is validated
// (>= 1) at flag parse time.
func seedsFrom(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

// runDiffKernel is the differential kernel validation mode: every
// Table II configuration of the base scenario, over the given number of
// seeds, runs on both event-list kernels (production timing wheel and
// reference binary heap) plus once more under the runtime invariant
// checker. Any trajectory divergence, invariant violation, or
// checker-induced perturbation is an error.
func runDiffKernel(base ibcc.Scenario, seeds int) error {
	start := time.Now()
	failures := 0
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		s0 := base
		s0.Seed = base.Seed + seed
		for _, s := range ibcc.TableIIScenarios(s0) {
			d, err := ibcc.RunDifferential(s)
			if err != nil {
				return err
			}
			_, rep, err := ibcc.RunChecked(s, ibcc.CheckOpts{Diagnostics: os.Stderr})
			if err != nil {
				return err
			}
			status := "ok"
			if !d.Match() {
				status = "KERNEL MISMATCH"
				failures++
			} else if rep.Total > 0 {
				status = fmt.Sprintf("%d VIOLATIONS", rep.Total)
				failures++
			}
			fmt.Printf("%-40s seed %-3d digest %s  %8d records  %-6s\n",
				s.Name, s0.Seed, d.Wheel.Digest, d.Wheel.Records, status)
			fmt.Printf("    check: %s\n", rep.Summary())
			if !d.Match() {
				for _, m := range d.Mismatches() {
					fmt.Printf("    %s\n", m)
				}
			}
			for _, v := range rep.Violations {
				fmt.Printf("    %s\n", v)
			}
		}
	}
	fmt.Printf("diff-kernel: %d configurations x %d seeds in %v\n",
		4, seeds, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		return fmt.Errorf("diff-kernel: %d configuration(s) failed", failures)
	}
	fmt.Println("diff-kernel: wheel and reference-heap trajectories byte-identical, zero invariant violations")
	return nil
}

// flightRecord runs the base scenario once with the flight recorder
// attached, instead of the experiment sweeps: the observability pass
// over the exact configuration the figures use.
func flightRecord(s ibcc.Scenario, eventsPath, chromePath string, ctree bool) error {
	inst, err := ibcc.Build(s)
	if err != nil {
		return err
	}
	o := ibcc.ObserveOpts{Tree: ctree}
	var files []*os.File
	if eventsPath != "" {
		f, err := os.Create(eventsPath)
		if err != nil {
			return err
		}
		o.Events = f
		files = append(files, f)
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		o.ChromeTrace = f
		files = append(files, f)
	}
	ob := inst.Observe(o)
	start := time.Now()
	res := inst.Execute()
	if err := ob.Close(); err != nil {
		return err
	}
	for _, f := range files {
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("flight recording: %s, %d events in %v\n",
		s.Name, res.Events, time.Since(start).Round(time.Millisecond))
	nj, nc := ob.EventsWritten()
	if eventsPath != "" {
		fmt.Printf("  events: %d -> %s\n", nj, eventsPath)
	}
	if chromePath != "" {
		fmt.Printf("  trace : %d events -> %s (open in ui.perfetto.dev)\n", nc, chromePath)
	}
	if ctree {
		if _, err := ob.TreeReport().WriteTo(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// startCPUProfile begins CPU profiling to path (no-op when empty) and
// returns the stop function to defer.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		log.Fatal(err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// writeMemProfile dumps the post-GC heap profile to path (no-op when
// empty).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		log.Fatal(err)
	}
}

// stderrIsTTY reports whether stderr is a character device, gating the
// default for the live progress line.
func stderrIsTTY() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
